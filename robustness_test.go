package avd_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/chaos"
	"github.com/taskpar/avd/internal/sptest"
)

// sameLocs compares two violating-location sets.
func sameLocs(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for l := range a {
		if !b[l] {
			return false
		}
	}
	return true
}

// TestChaosDifferentialViolations is the schedule-stability acceptance
// test: on random structured programs, the deduplicated set of violating
// locations must be identical between an unperturbed run and runs whose
// schedule is deliberately mangled by forced steals and injected delays.
// This is the empirical counterpart of the paper's claim that the
// checker's verdict depends only on the program and its input, never on
// the observed interleaving.
func TestChaosDifferentialViolations(t *testing.T) {
	r := rand.New(rand.NewSource(9090))
	var totalSteals, totalDelays int64
	for trial := 0; trial < 200; trial++ {
		cfg := sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 12,
			Locations: 3, MaxAccess: 4, Locks: 1, LockProb: 0.3,
		}
		p := sptest.Random(r, cfg)
		base := execProgram(p, cfg, avd.Options{Workers: 4})
		for seed := int64(1); seed <= 3; seed++ {
			got, _, cs := execProgramFull(p, cfg, avd.Options{
				Workers: 4,
				Chaos: &avd.ChaosConfig{
					Seed:          seed,
					StealProb:     0.3,
					DelayProb:     0.2,
					MaxDelaySpins: 16,
				},
			})
			totalSteals += cs.ForcedSteals
			totalDelays += cs.InjectedDelays
			if !sameLocs(base, got) {
				t.Fatalf("trial %d seed %d: perturbed run detected %v, unperturbed %v\nprogram:\n%s",
					trial, seed, got, base, p)
			}
		}
	}
	if totalSteals == 0 || totalDelays == 0 {
		t.Fatalf("perturbation never fired (steals=%d delays=%d); the chaos plane is not wired into the scheduler",
			totalSteals, totalDelays)
	}
}

// TestChaosMHPModesAgree runs the same perturbed program with the
// label-based and walk-based MHP mechanisms: forced stealing reorders
// DPST construction across workers, and both mechanisms must still
// report the same violating locations.
func TestChaosMHPModesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(3131))
	for trial := 0; trial < 60; trial++ {
		cfg := sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 12,
			Locations: 3, MaxAccess: 4, Locks: 1, LockProb: 0.3,
		}
		p := sptest.Random(r, cfg)
		ch := &avd.ChaosConfig{Seed: int64(trial), StealProb: 0.4, DelayProb: 0.2, MaxDelaySpins: 8}
		labels := execProgram(p, cfg, avd.Options{Workers: 4, MHP: avd.MHPLabels, Chaos: ch})
		walk := execProgram(p, cfg, avd.Options{Workers: 4, MHP: avd.MHPWalk, Chaos: ch})
		if !sameLocs(labels, walk) {
			t.Fatalf("trial %d: labels detected %v, walk detected %v\nprogram:\n%s",
				trial, labels, walk, p)
		}
	}
}

// TestInjectedPanicsPartialReport exercises the hardened lifecycle end to
// end: with RecoverPanics set, chaos-injected task panics are recovered
// into Report.TaskPanics, the surviving siblings still run, Run returns
// normally, and because the panic decision is a pure function of (seed,
// task ID) the crashed set is predictable in advance.
func TestInjectedPanicsPartialReport(t *testing.T) {
	const (
		seed     = int64(12)
		children = 24
		prob     = 0.4
	)
	plane := chaos.New(chaos.Config{Seed: seed, PanicProb: prob})
	predicted := map[int32]bool{}
	for id := int32(1); id <= children; id++ {
		if plane.PanicTask(id) {
			predicted[id] = true
		}
	}
	if len(predicted) == 0 || len(predicted) == children {
		t.Fatalf("seed %d predicts %d/%d crashes; pick a seed with a mixed outcome", seed, len(predicted), children)
	}

	s := avd.NewSession(avd.Options{
		Workers:       2,
		RecoverPanics: true,
		Chaos:         &avd.ChaosConfig{Seed: seed, PanicProb: prob},
	})
	defer s.Close()
	var survived atomic.Int64
	s.Run(func(t *avd.Task) {
		t.Finish(func(ft *avd.Task) {
			for i := 0; i < children; i++ {
				ft.Spawn(func(*avd.Task) { survived.Add(1) })
			}
		})
	})
	rep := s.Report()
	if got, want := rep.PanicCount, int64(len(predicted)); got != want {
		t.Fatalf("PanicCount = %d, predicted %d crashes", got, want)
	}
	if got, want := survived.Load(), int64(children-len(predicted)); got != want {
		t.Fatalf("%d children ran, want %d survivors", got, want)
	}
	for _, tp := range rep.TaskPanics {
		ip, ok := tp.Value.(avd.InjectedPanic)
		if !ok {
			t.Fatalf("recovered panic value %T (%v), want InjectedPanic", tp.Value, tp.Value)
		}
		if !predicted[ip.Task] {
			t.Fatalf("task %d crashed but was not predicted to", ip.Task)
		}
		if tp.Task != ip.Task {
			t.Fatalf("panic recorded against task %d, value names task %d", tp.Task, ip.Task)
		}
		if tp.Stack == "" {
			t.Fatal("recovered panic carries no stack")
		}
	}
	if got := s.ChaosStats().InjectedPanics; got != int64(len(predicted)) {
		t.Fatalf("plane counted %d injected panics, predicted %d", got, len(predicted))
	}
}

// TestPanicRethrownWithoutRecover checks the default contract: without
// RecoverPanics, a panic that escapes a task unwinds out of Run with its
// original value after the computation has joined.
func TestPanicRethrownWithoutRecover(t *testing.T) {
	s := avd.NewSession(avd.Options{
		Workers: 2,
		Chaos:   &avd.ChaosConfig{Seed: 1, PanicProb: 1},
	})
	defer s.Close()
	var rec any
	func() {
		defer func() { rec = recover() }()
		s.Run(func(t *avd.Task) {
			t.Finish(func(ft *avd.Task) {
				ft.Spawn(func(*avd.Task) {})
			})
		})
	}()
	ip, ok := rec.(avd.InjectedPanic)
	if !ok {
		t.Fatalf("Run panicked with %T (%v), want InjectedPanic", rec, rec)
	}
	if ip.Task == 0 {
		t.Fatal("injected panic claims the exempt root task")
	}
	// The panic is still recorded, so post-mortem reports see it too.
	if rep := s.Report(); rep.PanicCount == 0 {
		t.Fatal("re-raised panic was not recorded in the report")
	}
}

// TestMemoryBudgetSaturation is the bounded-resource acceptance test: a
// workload whose metadata demand far exceeds the budget must complete
// without panicking, report Saturated with location drops, and never
// charge more tracked bytes than the budget allows.
func TestMemoryBudgetSaturation(t *testing.T) {
	const (
		locations = 50_000
		budget    = int64(128 << 10)
	)
	s := avd.NewSession(avd.Options{Workers: 4, MemoryBudget: budget})
	defer s.Close()
	arr := s.NewIntArray("big", locations)
	s.Run(func(t *avd.Task) {
		avd.ParallelFor(t, 0, locations, 256, func(t *avd.Task, i int) {
			arr.Add(t, i, 1)
		})
	})
	rep := s.Report()
	if !rep.Saturated {
		t.Fatal("a 50k-location run against a 128KiB budget must saturate")
	}
	if rep.Drops.Locations == 0 {
		t.Fatal("saturated run shed no locations")
	}
	if rep.MemoryUsed > budget {
		t.Fatalf("tracked bytes %d exceed the %d budget", rep.MemoryUsed, budget)
	}
	if rep.MemoryUsed == 0 {
		t.Fatal("no tracked bytes charged; the gate is not wired to the budget")
	}
	// The computation itself must be unharmed by the degraded analysis.
	for _, i := range []int{0, locations / 2, locations - 1} {
		if arr.Value(i) != 1 {
			t.Fatalf("element %d = %d after the run, want 1", i, arr.Value(i))
		}
	}
}

// TestMaxViolationsCap checks the reporter bound: distinct violations
// beyond MaxViolations are counted as drops, not admitted, and the
// report says so.
func TestMaxViolationsCap(t *testing.T) {
	const elems = 20
	s := avd.NewSession(avd.Options{Workers: 1, MaxViolations: 5})
	defer s.Close()
	arr := s.NewIntArray("a", elems)
	s.Run(func(t *avd.Task) {
		t.Finish(func(ft *avd.Task) {
			for k := 0; k < 2; k++ {
				ft.Spawn(func(ct *avd.Task) {
					for i := 0; i < elems; i++ {
						arr.Add(ct, i, 1)
					}
				})
			}
		})
	})
	rep := s.Report()
	if rep.ViolationCount == 0 || rep.ViolationCount > 5 {
		t.Fatalf("ViolationCount = %d, want in [1, 5]", rep.ViolationCount)
	}
	if len(rep.Violations) > 5 {
		t.Fatalf("%d violations retained past the cap", len(rep.Violations))
	}
	if rep.Drops.Violations == 0 {
		t.Fatalf("parallel RMWs on %d elements against a cap of 5 dropped nothing", elems)
	}
	if !rep.Saturated {
		t.Fatal("a capped report must be marked Saturated")
	}
}

// TestSessionUsageErrors covers the typed-misuse contract at the public
// API: stale sessions and cross-session handles raise *UsageError, not
// raw panics or silent corruption.
func TestSessionUsageErrors(t *testing.T) {
	t.Run("run-after-close", func(t *testing.T) {
		s := avd.NewSession(avd.Options{Workers: 1})
		s.Run(func(*avd.Task) {})
		s.Close()
		var rec any
		func() {
			defer func() { rec = recover() }()
			s.Run(func(*avd.Task) {}) //avdlint:ignore deliberate misuse: exercises the runtime UsageError
		}()
		ue, ok := rec.(*avd.UsageError)
		if !ok {
			t.Fatalf("expected *UsageError, got %T: %v", rec, rec)
		}
		if ue.Op != "Scheduler.Run" || !strings.Contains(ue.Detail, "after Close") {
			t.Fatalf("unexpected error %v", ue)
		}
	})

	t.Run("cross-session-var", func(t *testing.T) {
		s1 := avd.NewSession(avd.Options{Workers: 1})
		defer s1.Close()
		s2 := avd.NewSession(avd.Options{Workers: 1})
		defer s2.Close()
		x := s1.NewIntVar("x")
		var rec any
		func() {
			defer func() { rec = recover() }()
			s2.Run(func(t *avd.Task) { x.Load(t) }) //avdlint:ignore deliberate misuse: exercises the runtime UsageError
		}()
		ue, ok := rec.(*avd.UsageError)
		if !ok {
			t.Fatalf("expected *UsageError, got %T: %v", rec, rec)
		}
		if ue.Op != "IntVar.Load" || !strings.Contains(ue.Detail, "different session") {
			t.Fatalf("unexpected error %v", ue)
		}
	})

	t.Run("cross-session-mutex", func(t *testing.T) {
		s1 := avd.NewSession(avd.Options{Workers: 1})
		defer s1.Close()
		s2 := avd.NewSession(avd.Options{Workers: 1})
		defer s2.Close()
		m := s1.NewMutex("m")
		var rec any
		func() {
			defer func() { rec = recover() }()
			s2.Run(func(t *avd.Task) { m.Lock(t) }) //avdlint:ignore deliberate misuse: exercises the runtime UsageError
		}()
		if ue, ok := rec.(*avd.UsageError); !ok || ue.Op != "Mutex.Lock" {
			t.Fatalf("expected Mutex.Lock *UsageError, got %T: %v", rec, rec)
		}
	})
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (worker shutdown is asynchronous after Close returns only in
// the sense that the runtime needs a moment to reap exited goroutines).
func waitForGoroutines(t *testing.T, baseline int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("%s: %d goroutines alive, baseline %d\n%s",
				what, runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseLeavesNoGoroutines is the leak regression test: Close must
// reap every worker after a clean run, after a recovered task panic, and
// after a panic that unwound out of Run mid-Finish.
func TestCloseLeavesNoGoroutines(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		s := avd.NewSession(avd.Options{Workers: 4})
		x := s.NewIntVar("x")
		s.Run(func(t *avd.Task) {
			t.Finish(func(ft *avd.Task) {
				for i := 0; i < 32; i++ {
					ft.Spawn(func(ct *avd.Task) { x.Add(ct, 1) })
				}
			})
		})
		s.Close()
		waitForGoroutines(t, baseline, "clean run")
	})

	t.Run("recovered-panic", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		s := avd.NewSession(avd.Options{Workers: 4, RecoverPanics: true})
		s.Run(func(t *avd.Task) {
			t.Finish(func(ft *avd.Task) {
				for i := 0; i < 8; i++ {
					ft.Spawn(func(*avd.Task) { panic(fmt.Sprintf("boom %d", i)) })
				}
			})
		})
		if rep := s.Report(); rep.PanicCount != 8 {
			t.Fatalf("PanicCount = %d, want 8", rep.PanicCount)
		}
		s.Close()
		waitForGoroutines(t, baseline, "recovered panic")
	})

	t.Run("rethrown-panic-mid-finish", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		s := avd.NewSession(avd.Options{Workers: 4})
		var rec any
		func() {
			defer func() { rec = recover() }()
			s.Run(func(t *avd.Task) {
				t.Finish(func(ft *avd.Task) {
					for i := 0; i < 8; i++ {
						ft.Spawn(func(*avd.Task) {})
					}
					panic("mid-finish")
				})
			})
		}()
		if rec != "mid-finish" {
			t.Fatalf("Run panicked with %v, want the original value", rec)
		}
		s.Close()
		waitForGoroutines(t, baseline, "rethrown panic")
	})
}

// TestBoundedHarnessConfigs smoke-tests the harness presets added for the
// robustness evaluation: a bounded and a chaotic configuration must both
// produce runnable sessions.
func TestBoundedHarnessConfigs(t *testing.T) {
	for _, opts := range []avd.Options{
		{Workers: 2, MemoryBudget: 1 << 20},
		{Workers: 2, Chaos: &avd.ChaosConfig{Seed: 5, StealProb: 0.2, DelayProb: 0.1}},
	} {
		s := avd.NewSession(opts)
		x := s.NewIntVar("x")
		s.Run(func(t *avd.Task) {
			t.Finish(func(ft *avd.Task) {
				ft.Spawn(func(ct *avd.Task) { x.Add(ct, 1) })
				ft.Spawn(func(ct *avd.Task) { x.Store(ct, 7) })
			})
		})
		if rep := s.Report(); rep.ViolationCount == 0 {
			t.Fatalf("opts %+v: the textbook violation went undetected", opts)
		}
		s.Close()
	}
}
