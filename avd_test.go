package avd_test

import (
	"testing"

	avd "github.com/taskpar/avd"
)

// runFigure1 executes the paper's Figure 1 program under the given
// options and returns the report.
func runFigure1(opts avd.Options) avd.Report {
	s := avd.NewSession(opts)
	defer s.Close()
	x := s.NewIntVar("X")
	y := s.NewIntVar("Y")
	s.Run(func(t *avd.Task) {
		x.Store(t, 10)
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) { // T2: a = X; a++; X = a
				a := x.Load(t)
				x.Store(t, a+1)
			})
			y.Add(t, 1)
			t.Spawn(func(t *avd.Task) { // T3: X = Y; Y = Y+1
				x.Store(t, y.Load(t))
				y.Add(t, 1)
			})
		})
	})
	return s.Report()
}

func TestFigure1PublicAPI(t *testing.T) {
	rep := runFigure1(avd.Options{Workers: 4})
	// Violation on X: T2's read-write pair torn by T3's parallel write.
	foundX := false
	for _, v := range rep.Violations {
		if v.Kind() == "R-W-W" {
			foundX = true
		}
	}
	if !foundX {
		t.Fatalf("missing R-W-W violation on X; got %v", rep.Violations)
	}
	// Y is also violated: T1's continuation (Y.Add: R,W) is parallel to
	// T2? No — to T3's reads/writes of Y.
	if rep.ViolationCount < 1 {
		t.Fatal("no violations counted")
	}
	if rep.Stats.Locations != 2 {
		t.Errorf("Locations = %d, want 2", rep.Stats.Locations)
	}
	if rep.Stats.DPSTNodes == 0 || rep.Stats.LCAQueries == 0 {
		t.Errorf("missing DPST stats: %+v", rep.Stats)
	}
}

func TestFigure1AllCheckers(t *testing.T) {
	for _, kind := range []avd.CheckerKind{avd.CheckerOptimized, avd.CheckerBasic} {
		rep := runFigure1(avd.Options{Workers: 2, Checker: kind})
		if rep.ViolationCount == 0 {
			t.Errorf("%v: no violations detected", kind)
		}
	}
	for _, layout := range []avd.Layout{avd.LayoutArray, avd.LayoutLinked} {
		rep := runFigure1(avd.Options{Workers: 2, Layout: layout})
		if rep.ViolationCount == 0 {
			t.Errorf("layout %v: no violations detected", layout)
		}
	}
	// Velodrome may or may not catch it depending on the schedule; the
	// run must at least complete and report stats.
	rep := runFigure1(avd.Options{Workers: 2, Checker: avd.CheckerVelodrome})
	if rep.Stats.DPSTNodes == 0 {
		t.Error("velodrome session must still build the DPST")
	}
	if len(rep.Violations) != 0 {
		t.Error("velodrome reports cycles, not triple violations")
	}
	// Baseline: no instrumentation at all.
	rep = runFigure1(avd.Options{Workers: 2, Checker: avd.CheckerNone})
	if rep.ViolationCount != 0 || rep.Stats.DPSTNodes != 0 {
		t.Errorf("baseline must not analyze: %+v", rep)
	}
}

func TestNoLCACacheOption(t *testing.T) {
	rep := runFigure1(avd.Options{Workers: 2, DisableLCACache: true})
	if rep.ViolationCount == 0 {
		t.Fatal("uncached session must still detect")
	}
	if rep.Stats.UniqueLCAs != rep.Stats.LCAQueries {
		t.Errorf("without cache every query is unique: %+v", rep.Stats)
	}
}

func TestAtomicGroup(t *testing.T) {
	s := avd.NewSession(avd.Options{Workers: 2})
	defer s.Close()
	lo := s.NewIntVar("pair.lo")
	hi := s.NewIntVar("pair.hi")
	s.Atomic(lo, hi)
	if lo.Loc() != hi.Loc() {
		t.Fatal("grouped variables must share a location")
	}
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) {
				// Reads the pair: must be atomic as a whole.
				_ = lo.Load(t)
				_ = hi.Load(t)
			})
			t.Spawn(func(t *avd.Task) {
				lo.Store(t, 1)
				hi.Store(t, 2)
			})
		})
	})
	if s.Report().ViolationCount == 0 {
		t.Fatal("multi-variable violation not detected")
	}
	if got := s.Report().Stats.Locations; got != 1 {
		t.Errorf("grouped pair must occupy one metadata cell, got %d", got)
	}
}

func TestVarsAndArrays(t *testing.T) {
	s := avd.NewSession(avd.Options{Workers: 2})
	defer s.Close()
	iv := s.NewIntVar("i")
	fv := s.NewFloatVar("f")
	ia := s.NewIntArray("ia", 4)
	fa := s.NewFloatArray("fa", 4)
	if iv.Name() != "i" || fv.Name() != "f" || ia.Name() != "ia" || fa.Name() != "fa" {
		t.Error("names lost")
	}
	if ia.Len() != 4 || fa.Len() != 4 {
		t.Error("lengths wrong")
	}
	s.Run(func(tk *avd.Task) {
		iv.Store(tk, 41)
		if iv.Add(tk, 1) != 42 || iv.Load(tk) != 42 {
			t.Error("IntVar arithmetic wrong")
		}
		fv.Store(tk, 1.5)
		if fv.Add(tk, 1.0) != 2.5 || fv.Load(tk) != 2.5 {
			t.Error("FloatVar arithmetic wrong")
		}
		ia.Store(tk, 2, 7)
		if ia.Add(tk, 2, 3) != 10 || ia.Load(tk, 2) != 10 {
			t.Error("IntArray arithmetic wrong")
		}
		fa.Store(tk, 1, 0.25)
		if fa.Add(tk, 1, 0.25) != 0.5 || fa.Load(tk, 1) != 0.5 {
			t.Error("FloatArray arithmetic wrong")
		}
	})
	if iv.Value() != 42 || fv.Value() != 2.5 || ia.Value(2) != 10 || fa.Value(1) != 0.5 {
		t.Error("uninstrumented Value accessors wrong")
	}
	if ia.LocAt(1) != ia.LocAt(0)+1 || fa.LocAt(3) != fa.LocAt(0)+3 {
		t.Error("array element locations must be contiguous")
	}
	// Single-task accesses never violate atomicity.
	if s.Report().ViolationCount != 0 {
		t.Errorf("sequential run must be violation-free: %v", s.Report().Violations)
	}
}

func TestCheckerKindStrings(t *testing.T) {
	names := map[avd.CheckerKind]string{
		avd.CheckerOptimized: "our-prototype",
		avd.CheckerBasic:     "basic",
		avd.CheckerVelodrome: "velodrome",
		avd.CheckerNone:      "baseline",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d: got %q want %q", k, k.String(), want)
		}
	}
	if avd.CheckerKind(42).String() == "" {
		t.Error("unknown kind must format")
	}
}

func TestStatsUniquePercent(t *testing.T) {
	st := avd.Stats{LCAQueries: 200, UniqueLCAs: 50}
	if st.UniquePercent() != 25 {
		t.Errorf("UniquePercent = %f, want 25", st.UniquePercent())
	}
	if (avd.Stats{}).UniquePercent() != 0 {
		t.Error("zero queries must report 0 (the paper's -NA-)")
	}
}

func TestStrictLockOption(t *testing.T) {
	run := func(strict bool) int64 {
		s := avd.NewSession(avd.Options{Workers: 2, StrictLockChecks: strict})
		defer s.Close()
		x := s.NewIntVar("X")
		l := s.NewMutex("L")
		s.Run(func(t *avd.Task) {
			t.Finish(func(t *avd.Task) {
				t.Spawn(func(t *avd.Task) {
					l.Lock(t)
					a := x.Load(t)
					x.Store(t, a+1)
					l.Unlock(t)
				})
				t.Spawn(func(t *avd.Task) {
					x.Store(t, 5) // unsynchronized parallel write
				})
			})
		})
		return s.Report().ViolationCount
	}
	if got := run(false); got != 0 {
		t.Errorf("paper mode reported %d violations for same-CS pair", got)
	}
	if got := run(true); got == 0 {
		t.Error("strict mode must report the racy tear")
	}
}
