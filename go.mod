module github.com/taskpar/avd

go 1.22
