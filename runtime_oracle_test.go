package avd_test

import (
	"fmt"
	"math/rand"
	"testing"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/oracle"
	"github.com/taskpar/avd/internal/sptest"
)

// execProgram runs a structured test program on the real work-stealing
// runtime (actual parallel execution, not deterministic replay) and
// returns the set of program locations with reported violations.
func execProgram(p *sptest.Program, cfg sptest.GenConfig, opts avd.Options) map[int]bool {
	locs, _, _ := execProgramFull(p, cfg, opts)
	return locs
}

// execProgramFull is execProgram plus the session report and chaos
// counters, for the perturbation tests.
func execProgramFull(p *sptest.Program, cfg sptest.GenConfig, opts avd.Options) (map[int]bool, avd.Report, avd.ChaosStats) {
	s := avd.NewSession(opts)
	defer s.Close()
	vars := make([]*avd.IntVar, cfg.Locations)
	locOf := make(map[avd.Loc]int, cfg.Locations)
	for i := range vars {
		vars[i] = s.NewIntVar(fmt.Sprintf("x%d", i))
		locOf[vars[i].Loc()] = i
	}
	locks := make([]*avd.Mutex, cfg.Locks)
	for i := range locks {
		locks[i] = s.NewMutex(fmt.Sprintf("L%d", i))
	}
	var exec func(t *avd.Task, items []sptest.Item)
	exec = func(t *avd.Task, items []sptest.Item) {
		for _, it := range items {
			switch v := it.(type) {
			case *sptest.StepItem:
				curCS := -1
				var held *avd.Mutex
				for _, a := range v.Accesses {
					if a.CS != curCS {
						if held != nil {
							held.Unlock(t) //avdlint:ignore lock state is driven by the generated schedule
							held = nil
						}
						if a.CS >= 0 {
							held = locks[a.Lock]
							held.Lock(t)
						}
						curCS = a.CS
					}
					if a.Write {
						vars[a.Loc].Store(t, int64(a.Loc))
					} else {
						vars[a.Loc].Load(t)
					}
				}
				if held != nil {
					held.Unlock(t)
				}
			case *sptest.SpawnItem:
				body := v.Body
				t.Spawn(func(ct *avd.Task) { exec(ct, body) })
			case *sptest.FinishItem:
				body := v.Body
				t.Finish(func(ft *avd.Task) { exec(ft, body) })
			}
		}
	}
	s.Run(func(t *avd.Task) { exec(t, p.Body) })
	rep := s.Report()
	out := make(map[int]bool)
	for _, v := range rep.Violations {
		out[locOf[v.Loc]] = true
	}
	return out, rep, s.ChaosStats()
}

// TestLiveExecutionMatchesOracle is the strongest end-to-end property:
// random structured programs executed on the real scheduler — with
// genuine work stealing, parallel metadata updates, and whatever
// schedule the machine produces — must detect exactly the violating
// locations the independent all-schedules oracle predicts.
func TestLiveExecutionMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 150; trial++ {
		locks := trial % 2
		cfg := sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 12,
			Locations: 3, MaxAccess: 4, Locks: locks, LockProb: 0.4,
		}
		if cfg.Locks == 0 {
			cfg.Locks = 1 // allocate a mutex slice even when unused
		}
		p := sptest.Random(r, cfg)
		b := sptest.Build(dpst.ArrayLayout, p)
		want := oracle.Violations(b, oracle.ModePaper)
		for round := 0; round < 3; round++ {
			got := execProgram(p, cfg, avd.Options{Workers: 4})
			if len(got) != len(want) {
				t.Fatalf("trial %d round %d: live run detected %v, oracle %v\nprogram:\n%s",
					trial, round, got, want, p)
			}
			for l := range got {
				if !want[l] {
					t.Fatalf("trial %d round %d: live run detected %v, oracle %v\nprogram:\n%s",
						trial, round, got, want, p)
				}
			}
		}
	}
}

// TestLiveExecutionStrictMatchesOracle repeats the live-execution
// property under the strict-lock extension against the full oracle.
func TestLiveExecutionStrictMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	for trial := 0; trial < 100; trial++ {
		cfg := sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 10,
			Locations: 3, MaxAccess: 4, Locks: 2, LockProb: 0.5,
		}
		p := sptest.Random(r, cfg)
		b := sptest.Build(dpst.ArrayLayout, p)
		want := oracle.Violations(b, oracle.ModeFull)
		got := execProgram(p, cfg, avd.Options{Workers: 4, StrictLockChecks: true})
		if len(got) != len(want) {
			t.Fatalf("trial %d: strict live run detected %v, oracle %v\nprogram:\n%s",
				trial, got, want, p)
		}
		for l := range got {
			if !want[l] {
				t.Fatalf("trial %d: strict live run detected %v, oracle %v\nprogram:\n%s",
					trial, got, want, p)
			}
		}
	}
}
