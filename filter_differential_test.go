package avd_test

import (
	"math/rand"
	"reflect"
	"testing"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/oracle"
	"github.com/taskpar/avd/internal/sptest"
	"github.com/taskpar/avd/internal/trace"
)

// The redundant-access filter must be invisible in the checker's output:
// an access it skips is provably a re-run of one the checker already
// dispatched for the same step under the same lockset. The tests in this
// file compare a filtered checker against one with
// Options.DisableAccessFilter on the same inputs, at three strengths:
// byte-identical violation reports on serial traces, identical violated
// location sets on random interleavings of the same trace, and identical
// location sets between live scheduler runs.

// filterCfg generates programs whose tasks run long enough to pass the
// filter's warm-up window and revisit locations often enough to keep
// the cache engaged — otherwise the filter never fires and the
// differential comparison is vacuous (hammerProgram guarantees at least
// one engaged task regardless).
func filterCfg() sptest.GenConfig {
	return sptest.GenConfig{
		MaxItems: 5, MaxDepth: 3, MaxSteps: 14,
		Locations: 2, MaxAccess: 8, Locks: 2, LockProb: 0.3,
	}
}

// replayBoth replays tr under opts with the filter on and off and
// returns both reports.
func replayBoth(t *testing.T, tr *avd.Trace, opts avd.Options) (on, off avd.Report) {
	t.Helper()
	opts.DisableAccessFilter = false
	on, err := avd.ReplayTrace(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisableAccessFilter = true
	off, err = avd.ReplayTrace(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	return on, off
}

// hammerProgram is a hand-built program that forces the filter to
// engage: one long step re-reading and re-writing two locations far past
// the warm-up threshold, with a parallel writer making the location
// genuinely racy.
func hammerProgram() *sptest.Program {
	step := &sptest.StepItem{ID: 1}
	for i := 0; i < 90; i++ {
		step.Accesses = append(step.Accesses,
			sptest.Access{Loc: 0, Write: i%4 == 3, Lock: -1, CS: -1},
			sptest.Access{Loc: 1, Write: false, Lock: -1, CS: -1})
	}
	writer := &sptest.StepItem{ID: 2, Accesses: []sptest.Access{
		{Loc: 0, Write: true, Lock: -1, CS: -1},
		{Loc: 1, Write: true, Lock: -1, CS: -1},
	}}
	return &sptest.Program{Body: []sptest.Item{
		&sptest.FinishItem{Body: []sptest.Item{
			&sptest.SpawnItem{Body: []sptest.Item{step}},
			writer,
		}},
	}}
}

// TestFilterDifferentialExactReports is the strongest form of the
// soundness property: on a serial (depth-first, one-worker) schedule,
// where every step's accesses are contiguous, the filtered and
// unfiltered checkers must produce byte-identical violation reports —
// same violations, same order, same steps and locksets — in paper mode,
// strict-lock mode, and under injected allocation failures.
func TestFilterDifferentialExactReports(t *testing.T) {
	r := rand.New(rand.NewSource(7701))
	var hits int64
	programs := []*sptest.Program{hammerProgram()}
	for trial := 0; trial < 120; trial++ {
		programs = append(programs, sptest.Random(r, filterCfg()))
	}
	for i, p := range programs {
		tr, err := trace.Compile(p).ScheduleSerial()
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		for _, opts := range []avd.Options{
			{},
			{StrictLockChecks: true},
			{Chaos: &avd.ChaosConfig{Seed: int64(i), AllocFailProb: 0.05}},
		} {
			on, off := replayBoth(t, tr, opts)
			if on.ViolationCount != off.ViolationCount ||
				!reflect.DeepEqual(on.Violations, off.Violations) {
				t.Fatalf("program %d opts %+v: filtered report differs\nfiltered:   %v\nunfiltered: %v\nprogram:\n%s",
					i, opts, on.Violations, off.Violations, p)
			}
			if off.Stats.FilterHits != 0 || off.Stats.FilterMisses != 0 {
				t.Fatalf("program %d: disabled filter reported counters %d/%d",
					i, off.Stats.FilterHits, off.Stats.FilterMisses)
			}
			hits += on.Stats.FilterHits
		}
	}
	if hits == 0 {
		t.Fatal("the filter never engaged across all trials; the differential test is vacuous")
	}
}

// TestFilterDifferentialRandomSchedules replays random interleavings of
// the same compiled programs: step accesses are no longer contiguous, so
// the metadata evolution may differ slot-by-slot, but the set of
// violated locations must not.
func TestFilterDifferentialRandomSchedules(t *testing.T) {
	r := rand.New(rand.NewSource(7702))
	for trial := 0; trial < 100; trial++ {
		p := sptest.Random(r, filterCfg())
		tr, err := trace.FromProgram(p, r)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		on, off := replayBoth(t, tr, avd.Options{})
		if !reflect.DeepEqual(violLocs(on), violLocs(off)) {
			t.Fatalf("trial %d: filtered locations %v, unfiltered %v\nprogram:\n%s",
				trial, violLocs(on), violLocs(off), p)
		}
	}
}

// TestFilterDifferentialLive runs programs on the real work-stealing
// scheduler with the filter on and off (including chaos-perturbed
// schedules): by the checker's schedule-independence, both sessions must
// report the same violated locations.
func TestFilterDifferentialLive(t *testing.T) {
	r := rand.New(rand.NewSource(7703))
	cfg := filterCfg()
	for trial := 0; trial < 40; trial++ {
		p := sptest.Random(r, cfg)
		var chaos *avd.ChaosConfig
		if trial%2 == 1 {
			chaos = &avd.ChaosConfig{Seed: int64(trial), StealProb: 0.3, DelayProb: 0.2, MaxDelaySpins: 8}
		}
		on := execProgram(p, cfg, avd.Options{Workers: 4, Chaos: chaos})
		off := execProgram(p, cfg, avd.Options{Workers: 4, Chaos: chaos, DisableAccessFilter: true})
		if !sameLocs(on, off) {
			t.Fatalf("trial %d: filtered live run detected %v, unfiltered %v\nprogram:\n%s",
				trial, on, off, p)
		}
	}
}

// TestFilterSerialReplayMatchesOracle anchors the serial-schedule
// differential in ground truth: on programs small enough for the
// all-schedules oracle, the filtered serial replay detects exactly the
// violating locations the oracle predicts (the serial interleaving loses
// no violations, because detection is DPST- not schedule-based).
func TestFilterSerialReplayMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7704))
	for trial := 0; trial < 60; trial++ {
		cfg := sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 10,
			Locations: 2, MaxAccess: 6, Locks: 1, LockProb: 0.25,
		}
		p := sptest.Random(r, cfg)
		tr, err := trace.Compile(p).ScheduleSerial()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep, err := avd.ReplayTrace(tr, avd.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := make(map[int]bool)
		for _, v := range rep.Violations {
			got[int(v.Loc-trace.LocBase)] = true
		}
		want := oracle.Violations(sptest.Build(dpst.ArrayLayout, p), oracle.ModePaper)
		if !sameLocs(got, want) {
			t.Fatalf("trial %d: serial filtered replay %v, oracle %v\nprogram:\n%s",
				trial, got, want, p)
		}
	}
}
