package avd_test

import (
	"bytes"
	"math/rand"
	"testing"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/sptest"
)

// violLocs reduces a report to the set of violated locations.
func violLocs(rep avd.Report) map[avd.Loc]bool {
	out := make(map[avd.Loc]bool)
	for _, v := range rep.Violations {
		out[v.Loc] = true
	}
	return out
}

func TestRecordAndReplayFigure1(t *testing.T) {
	s := avd.NewSession(avd.Options{Workers: 4, RecordTrace: true})
	x := s.NewIntVar("X")
	s.Run(func(tk *avd.Task) {
		x.Store(tk, 10)
		tk.Finish(func(tk *avd.Task) {
			tk.Spawn(func(t2 *avd.Task) { x.Store(t2, x.Load(t2)+1) })
			tk.Spawn(func(t3 *avd.Task) { x.Store(t3, 0) })
		})
	})
	live := s.Report()
	tr := s.RecordedTrace()
	s.Close()
	if tr == nil {
		t.Fatal("RecordTrace did not produce a trace")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// The trace survives serialization.
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}

	for _, kind := range []avd.CheckerKind{avd.CheckerOptimized, avd.CheckerBasic} {
		rep, err := avd.ReplayTrace(tr, avd.Options{Checker: kind})
		if err != nil {
			t.Fatal(err)
		}
		if rep.ViolationCount != live.ViolationCount {
			t.Fatalf("%v replay found %d violations, live found %d",
				kind, rep.ViolationCount, live.ViolationCount)
		}
	}
	// Velodrome replay must run (it may or may not see an in-trace cycle).
	if _, err := avd.ReplayTrace(tr, avd.Options{Checker: avd.CheckerVelodrome}); err != nil {
		t.Fatal(err)
	}
	// CheckerNone cannot replay.
	if _, err := avd.ReplayTrace(tr, avd.Options{Checker: avd.CheckerNone}); err == nil {
		t.Fatal("ReplayTrace must reject CheckerNone")
	}
}

// TestRecordReplayMatchesLiveDetection is the record-once/analyze-many
// property: offline replay of a recorded live run detects the same
// violated locations as the live checker did, across random programs.
func TestRecordReplayMatchesLiveDetection(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 80; trial++ {
		cfg := sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 10,
			Locations: 3, MaxAccess: 3, Locks: 1, LockProb: 0.3,
		}
		p := sptest.Random(r, cfg)

		s := avd.NewSession(avd.Options{Workers: 4, RecordTrace: true})
		vars := make([]*avd.IntVar, cfg.Locations)
		liveLoc := make(map[avd.Loc]int)
		for i := range vars {
			vars[i] = s.NewIntVar("x")
			liveLoc[vars[i].Loc()] = i
		}
		locks := []*avd.Mutex{s.NewMutex("L")}
		var exec func(t *avd.Task, items []sptest.Item)
		exec = func(t *avd.Task, items []sptest.Item) {
			for _, it := range items {
				switch v := it.(type) {
				case *sptest.StepItem:
					curCS := -1
					var held *avd.Mutex
					for _, a := range v.Accesses {
						if a.CS != curCS {
							if held != nil {
								held.Unlock(t) //avdlint:ignore lock state is driven by the recorded schedule
								held = nil
							}
							if a.CS >= 0 {
								held = locks[a.Lock]
								held.Lock(t)
							}
							curCS = a.CS
						}
						if a.Write {
							vars[a.Loc].Store(t, 1)
						} else {
							vars[a.Loc].Load(t)
						}
					}
					if held != nil {
						held.Unlock(t)
					}
				case *sptest.SpawnItem:
					body := v.Body
					t.Spawn(func(ct *avd.Task) { exec(ct, body) })
				case *sptest.FinishItem:
					body := v.Body
					t.Finish(func(ft *avd.Task) { exec(ft, body) })
				}
			}
		}
		s.Run(func(t *avd.Task) { exec(t, p.Body) })
		live := s.Report()
		tr := s.RecordedTrace()
		s.Close()

		rep, err := avd.ReplayTrace(tr, avd.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Live Locs are session Loc ids; replay preserves them (the
		// recorder stores raw Locs), so the sets compare directly.
		liveSet, replaySet := violLocs(live), violLocs(rep)
		if len(liveSet) != len(replaySet) {
			t.Fatalf("trial %d: live %v vs replay %v\nprogram:\n%s", trial, liveSet, replaySet, p)
		}
		for l := range liveSet {
			if !replaySet[l] {
				t.Fatalf("trial %d: live %v vs replay %v\nprogram:\n%s", trial, liveSet, replaySet, p)
			}
		}
	}
}
