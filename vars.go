package avd

import (
	"math"
	"sync/atomic"

	"github.com/taskpar/avd/internal/sched"
)

// guardSession panics with a UsageError when a variable handle created
// by one session is accessed from a task of another. Mixing sessions
// would silently corrupt the analysis: the location IDs and DPST nodes
// of different sessions live in unrelated namespaces.
func guardSession(op string, t *Task, sch *sched.Scheduler) {
	if t.Scheduler() != sch {
		panic(&UsageError{Op: op, Detail: "variable belongs to a different session"})
	}
}

// Shared is implemented by every instrumented variable handle; it exposes
// the location identifier the checker tracks. Variables grouped with
// Session.Atomic share one location and therefore one metadata cell,
// implementing the paper's multi-variable atomicity annotations.
type Shared interface {
	// Loc returns the current location identifier of the variable.
	Loc() Loc
	setLoc(Loc)
}

// Atomic annotates a group of variables that must be accessed atomically
// together: all of them are mapped to the metadata cell of the first.
// Call it before Run, on variables created by this session.
func (s *Session) Atomic(vars ...Shared) {
	if len(vars) < 2 {
		return
	}
	loc := vars[0].Loc()
	for _, v := range vars[1:] {
		v.setLoc(loc)
	}
}

// IntVar is an instrumented shared integer. The value itself is stored
// atomically so racy kernels remain well-defined Go; the checker sees
// the reads and writes exactly as annotated accesses.
type IntVar struct {
	loc  Loc
	sch  *sched.Scheduler
	name string
	v    atomic.Int64
}

// NewIntVar creates an instrumented integer variable.
func (s *Session) NewIntVar(name string) *IntVar {
	return &IntVar{loc: s.sch.AllocLoc(), sch: s.sch, name: name}
}

// Name returns the diagnostic name.
func (v *IntVar) Name() string { return v.name }

// Loc implements Shared.
func (v *IntVar) Loc() Loc { return v.loc }

func (v *IntVar) setLoc(l Loc) { v.loc = l }

// Load reads the variable.
func (v *IntVar) Load(t *Task) int64 {
	guardSession("IntVar.Load", t, v.sch)
	t.Access(v.loc, false)
	return v.v.Load()
}

// Store writes the variable.
func (v *IntVar) Store(t *Task, x int64) {
	guardSession("IntVar.Store", t, v.sch)
	t.Access(v.loc, true)
	v.v.Store(x)
}

// Add performs the load-modify-store idiom v = v + d: the checker sees a
// read followed by a write, the access pattern whose atomicity the paper
// targets.
func (v *IntVar) Add(t *Task, d int64) int64 {
	guardSession("IntVar.Add", t, v.sch)
	t.Access(v.loc, false)
	t.Access(v.loc, true)
	return v.v.Add(d)
}

// Value returns the current value without instrumentation (for use
// outside Run, e.g. in assertions).
func (v *IntVar) Value() int64 { return v.v.Load() }

// SetValue writes the variable without instrumentation. Together with
// Value and AddValue it is the rewrite target of avd-lint's elision
// auto-fix: a handle the elision analyzer proves single-step can use
// these accessors, skipping the checker entirely, without changing the
// analysis outcome (a single-step handle can never be part of a
// violation).
func (v *IntVar) SetValue(x int64) { v.v.Store(x) }

// AddValue performs v = v + d without instrumentation; see SetValue.
func (v *IntVar) AddValue(d int64) int64 { return v.v.Add(d) }

// FloatVar is an instrumented shared float64.
type FloatVar struct {
	loc  Loc
	sch  *sched.Scheduler
	name string
	v    atomic.Uint64
}

// NewFloatVar creates an instrumented float variable.
func (s *Session) NewFloatVar(name string) *FloatVar {
	return &FloatVar{loc: s.sch.AllocLoc(), sch: s.sch, name: name}
}

// Name returns the diagnostic name.
func (v *FloatVar) Name() string { return v.name }

// Loc implements Shared.
func (v *FloatVar) Loc() Loc { return v.loc }

func (v *FloatVar) setLoc(l Loc) { v.loc = l }

// Load reads the variable.
func (v *FloatVar) Load(t *Task) float64 {
	guardSession("FloatVar.Load", t, v.sch)
	t.Access(v.loc, false)
	return math.Float64frombits(v.v.Load())
}

// Store writes the variable.
func (v *FloatVar) Store(t *Task, x float64) {
	guardSession("FloatVar.Store", t, v.sch)
	t.Access(v.loc, true)
	v.v.Store(math.Float64bits(x))
}

// Add performs the load-modify-store idiom v = v + d (read then write).
func (v *FloatVar) Add(t *Task, d float64) float64 {
	x := v.Load(t) + d
	v.Store(t, x)
	return x
}

// Value returns the current value without instrumentation.
func (v *FloatVar) Value() float64 { return math.Float64frombits(v.v.Load()) }

// SetValue writes the variable without instrumentation (the elision
// auto-fix target; see IntVar.SetValue).
func (v *FloatVar) SetValue(x float64) { v.v.Store(math.Float64bits(x)) }

// AddValue performs v = v + d without instrumentation. Like Add it is a
// load-modify-store, fine for the single-step handles it is meant for.
func (v *FloatVar) AddValue(d float64) float64 {
	x := math.Float64frombits(v.v.Load()) + d
	v.v.Store(math.Float64bits(x))
	return x
}

// IntArray is an instrumented array of shared integers; each element is
// its own location.
type IntArray struct {
	loc0 Loc
	sch  *sched.Scheduler
	name string
	data []atomic.Int64
}

// NewIntArray creates an instrumented integer array of length n. Array
// locations are index-striped: each array's base lands on a distinct
// phase of the checker's direct-mapped caches, so equal indices of two
// power-of-two arrays (a merge's source and destination frontier, say)
// stop colliding in every filter, dedup, and window-elision slot.
func (s *Session) NewIntArray(name string, n int) *IntArray {
	return &IntArray{loc0: s.sch.AllocLocsStriped(n), sch: s.sch, name: name, data: make([]atomic.Int64, n)}
}

// Name returns the diagnostic name.
func (a *IntArray) Name() string { return a.name }

// Len returns the element count.
func (a *IntArray) Len() int { return len(a.data) }

// LocAt returns the location identifier of element i.
func (a *IntArray) LocAt(i int) Loc { return a.loc0 + Loc(i) }

// Load reads element i.
func (a *IntArray) Load(t *Task, i int) int64 {
	guardSession("IntArray.Load", t, a.sch)
	t.Access(a.LocAt(i), false)
	return a.data[i].Load()
}

// Store writes element i.
func (a *IntArray) Store(t *Task, i int, x int64) {
	guardSession("IntArray.Store", t, a.sch)
	t.Access(a.LocAt(i), true)
	a.data[i].Store(x)
}

// Add performs element i's load-modify-store (read then write).
func (a *IntArray) Add(t *Task, i int, d int64) int64 {
	guardSession("IntArray.Add", t, a.sch)
	t.Access(a.LocAt(i), false)
	t.Access(a.LocAt(i), true)
	return a.data[i].Add(d)
}

// Value returns element i without instrumentation.
func (a *IntArray) Value(i int) int64 { return a.data[i].Load() }

// SetValue writes element i without instrumentation (the elision
// auto-fix target; see IntVar.SetValue).
func (a *IntArray) SetValue(i int, x int64) { a.data[i].Store(x) }

// AddValue performs element i's v = v + d without instrumentation.
func (a *IntArray) AddValue(i int, d int64) int64 { return a.data[i].Add(d) }

// FloatArray is an instrumented array of shared float64 values.
type FloatArray struct {
	loc0 Loc
	sch  *sched.Scheduler
	name string
	data []atomic.Uint64
}

// NewFloatArray creates an instrumented float array of length n. Like
// NewIntArray, the locations are index-striped across the checker's
// direct-mapped cache phases.
func (s *Session) NewFloatArray(name string, n int) *FloatArray {
	return &FloatArray{loc0: s.sch.AllocLocsStriped(n), sch: s.sch, name: name, data: make([]atomic.Uint64, n)}
}

// Name returns the diagnostic name.
func (a *FloatArray) Name() string { return a.name }

// Len returns the element count.
func (a *FloatArray) Len() int { return len(a.data) }

// LocAt returns the location identifier of element i.
func (a *FloatArray) LocAt(i int) Loc { return a.loc0 + Loc(i) }

// Load reads element i.
func (a *FloatArray) Load(t *Task, i int) float64 {
	guardSession("FloatArray.Load", t, a.sch)
	t.Access(a.LocAt(i), false)
	return math.Float64frombits(a.data[i].Load())
}

// Store writes element i.
func (a *FloatArray) Store(t *Task, i int, x float64) {
	guardSession("FloatArray.Store", t, a.sch)
	t.Access(a.LocAt(i), true)
	a.data[i].Store(math.Float64bits(x))
}

// Add performs element i's load-modify-store (read then write).
func (a *FloatArray) Add(t *Task, i int, d float64) float64 {
	x := a.Load(t, i) + d
	a.Store(t, i, x)
	return x
}

// Value returns element i without instrumentation.
func (a *FloatArray) Value(i int) float64 { return math.Float64frombits(a.data[i].Load()) }

// SetValue writes element i without instrumentation (the elision
// auto-fix target; see IntVar.SetValue).
func (a *FloatArray) SetValue(i int, x float64) { a.data[i].Store(math.Float64bits(x)) }

// AddValue performs element i's v = v + d without instrumentation (a
// load-modify-store, fine for single-step handles).
func (a *FloatArray) AddValue(i int, d float64) float64 {
	x := math.Float64frombits(a.data[i].Load()) + d
	a.data[i].Store(math.Float64bits(x))
	return x
}
