package avd_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	avd "github.com/taskpar/avd"
)

// bigTrace records a run with enough events that the replay's periodic
// context poll (every few thousand events) fires at least once.
func bigTrace(t *testing.T) *avd.Trace {
	t.Helper()
	s := avd.NewSession(avd.Options{Workers: 2, RecordTrace: true})
	defer s.Close()
	x := s.NewIntVar("X")
	s.Run(func(tk *avd.Task) {
		avd.ParallelFor(tk, 0, 10000, 64, func(t2 *avd.Task, i int) {
			x.Add(t2, 1)
		})
	})
	tr := s.RecordedTrace()
	if tr == nil || len(tr.Events) < 10000 {
		t.Fatalf("recorded trace too small: %d events", len(tr.Events))
	}
	return tr
}

// countdownCtx is a deterministic cancellation source: Err() stays nil
// for the first n calls, then reports context.Canceled — so a test can
// pin exactly which context poll interrupts the replay, independent of
// timing.
type countdownCtx struct {
	context.Context
	n atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.n.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestReplayContextCanceledUpFront(t *testing.T) {
	tr := bigTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := avd.ReplayTraceContext(ctx, tr, avd.Options{})
	if !errors.Is(err, avd.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// The typed sentinel still satisfies errors.Is on the stdlib cause,
	// so callers can branch on either.
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ErrCanceled does not wrap context.Canceled")
	}
	if rep.ViolationCount != 0 || rep.Stats.DPSTNodes != 0 {
		t.Fatalf("pre-canceled replay produced work: %+v", rep.Stats)
	}
}

func TestReplayContextCanceledMidReplay(t *testing.T) {
	tr := bigTrace(t)
	// Let the entry check and the first periodic poll pass, cancel on a
	// later one: the replay stops partway with a partial report.
	ctx := &countdownCtx{Context: context.Background()}
	ctx.n.Store(2)
	rep, err := avd.ReplayTraceContext(ctx, tr, avd.Options{})
	if !errors.Is(err, avd.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if rep.Stats.DPSTNodes == 0 {
		t.Fatalf("mid-replay cancel returned no partial analysis state")
	}
	full, err := avd.ReplayTrace(tr, avd.Options{})
	if err != nil {
		t.Fatalf("full replay: %v", err)
	}
	if rep.Stats.DPSTNodes >= full.Stats.DPSTNodes {
		t.Fatalf("canceled replay analyzed the whole trace (%d vs %d nodes)",
			rep.Stats.DPSTNodes, full.Stats.DPSTNodes)
	}
}

func TestReplayContextDeadline(t *testing.T) {
	tr := bigTrace(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := avd.ReplayTraceContext(ctx, tr, avd.Options{})
	if !errors.Is(err, avd.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ErrDeadline does not wrap context.DeadlineExceeded")
	}
}

// TestReplayerOneShotAndSnapshot pins the Replayer contract: Snapshot
// is usable before, during (exercised by the server tests), and after
// Replay; a second Replay refuses.
func TestReplayerOneShotAndSnapshot(t *testing.T) {
	tr := bigTrace(t)
	rp, err := avd.NewReplayer(avd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if snap := rp.Snapshot(); snap.Stats.DPSTNodes != 0 {
		t.Fatalf("fresh replayer snapshot not empty: %+v", snap.Stats)
	}
	rep, err := rp.Replay(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	snap := rp.Snapshot()
	if snap.Stats.DPSTNodes != rep.Stats.DPSTNodes || snap.ViolationCount != rep.ViolationCount {
		t.Fatalf("post-replay snapshot disagrees with report: %+v vs %+v", snap.Stats, rep.Stats)
	}
	if _, err := rp.Replay(context.Background(), tr); err == nil {
		t.Fatalf("second Replay on one Replayer succeeded")
	}
	if _, err := avd.NewReplayer(avd.Options{Checker: avd.CheckerNone}); err == nil {
		t.Fatalf("NewReplayer accepted CheckerNone")
	}
}
