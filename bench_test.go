package avd_test

import (
	"math/rand"
	"testing"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/bench"
	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/harness"
	"github.com/taskpar/avd/internal/sptest"
	"github.com/taskpar/avd/internal/suite"
	"github.com/taskpar/avd/internal/trace"
	"github.com/taskpar/avd/internal/velodrome"
)

// benchScale shrinks the default problem sizes so the full `go test
// -bench=.` sweep stays in the minutes range; use cmd/avd-bench and
// cmd/avd-stats for full-size runs.
const benchScale = 0.5

func benchKernel(b *testing.B, k bench.Kernel, cfg harness.Config) {
	n := harness.Sizes(benchScale)[k.Name]
	b.ReportAllocs()
	var rep avd.Report
	for i := 0; i < b.N; i++ {
		s := avd.NewSession(cfg.Opts)
		sum := k.Run(s, n)
		rep = s.Report()
		s.Close()
		if err := k.Check(n, sum); err != nil {
			b.Fatal(err)
		}
	}
	if rep.ViolationCount != 0 {
		b.Fatalf("kernel %s reported %d violations", k.Name, rep.ViolationCount)
	}
}

// BenchmarkTable1 regenerates the Table 1 measurements: each kernel runs
// under the optimized checker (in the paper's cached-walk configuration,
// whose unique-LCA statistic is meaningful) and reports its location,
// DPST-node, and LCA-query counts as benchmark metrics.
func BenchmarkTable1(b *testing.B) {
	for _, k := range bench.All() {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			n := harness.Sizes(benchScale)[k.Name]
			var rep avd.Report
			for i := 0; i < b.N; i++ {
				s := avd.NewSession(avd.Options{MHP: avd.MHPCachedWalk})
				if sum := k.Run(s, n); k.Check(n, sum) != nil {
					b.Fatal("checksum mismatch")
				}
				rep = s.Report()
				s.Close()
			}
			b.ReportMetric(float64(rep.Stats.Locations), "locations")
			b.ReportMetric(float64(rep.Stats.DPSTNodes), "dpst-nodes")
			b.ReportMetric(float64(rep.Stats.LCAQueries), "lca-queries")
			b.ReportMetric(rep.Stats.UniquePercent(), "%unique-lca")
		})
	}
}

// BenchmarkFigure13 regenerates the Figure 13 configurations: the
// uninstrumented baseline, our prototype under label MHP and under the
// cached-walk ablation, and the Velodrome baseline. The slowdown for a
// kernel is the ratio of the checker ns/op to the baseline ns/op.
func BenchmarkFigure13(b *testing.B) {
	configs := []harness.Config{
		harness.Baseline(0),
		harness.PrototypeLabels(0),
		harness.PrototypeCachedLCA(0),
		harness.Velodrome(0),
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			for _, k := range bench.All() {
				k := k
				b.Run(k.Name, func(b *testing.B) { benchKernel(b, k, cfg) })
			}
		})
	}
}

// BenchmarkFigure14 regenerates the Figure 14 ablation: the checker on
// the array-based DPST vs the linked DPST.
func BenchmarkFigure14(b *testing.B) {
	configs := []harness.Config{
		harness.Prototype(0),
		harness.PrototypeLinked(0),
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			for _, k := range bench.All() {
				k := k
				b.Run(k.Name, func(b *testing.B) { benchKernel(b, k, cfg) })
			}
		})
	}
}

// BenchmarkDetectionSuite measures one pass of the 36-program detection
// suite (experiment E4).
func BenchmarkDetectionSuite(b *testing.B) {
	programs := suite.Programs()
	for i := 0; i < b.N; i++ {
		for _, p := range programs {
			rep := p.Execute(avd.Options{})
			if (rep.ViolationCount > 0) != p.Want {
				b.Fatalf("%s misbehaved", p.Name)
			}
		}
	}
}

// BenchmarkTraceReplay measures the trace generator plus offline replay
// pipeline (experiment E5) for both the optimized checker and Velodrome.
func BenchmarkTraceReplay(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	p := sptest.Random(r, sptest.GenConfig{
		MaxItems: 6, MaxDepth: 4, MaxSteps: 400,
		Locations: 20, MaxAccess: 6, Locks: 2, LockProb: 0.3,
	})
	tr, err := trace.FromProgram(p, r)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("optimized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tree := dpst.NewArrayTree()
			c := checker.New(checker.Options{Query: dpst.NewQuery(tree, true)})
			if err := trace.Replay(tr, tree, c, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("velodrome", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tree := dpst.NewArrayTree()
			v := velodrome.New()
			if err := trace.Replay(tr, tree, v, v); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDPSTQueries isolates the cost of Par queries on a large tree
// under each query mode: the label comparison, the raw tree walk
// (Figure 14's mechanism), and the memoized walk.
func BenchmarkDPSTQueries(b *testing.B) {
	modes := []dpst.QueryMode{dpst.ModeLabels, dpst.ModeWalk, dpst.ModeCachedWalk}
	for _, layout := range []dpst.Layout{dpst.ArrayLayout, dpst.LinkedLayout} {
		layout := layout
		b.Run(layout.String(), func(b *testing.B) {
			tree := dpst.New(layout)
			root := tree.NewNode(dpst.None, dpst.Finish, 0)
			var steps []dpst.NodeID
			// A comb of finish/async levels with steps at each depth.
			parent := root
			for d := 0; d < 200; d++ {
				a := tree.NewNode(parent, dpst.Async, 0)
				steps = append(steps, tree.NewNode(a, dpst.Step, int32(d)))
				parent = tree.NewNode(parent, dpst.Finish, 0)
			}
			for _, mode := range modes {
				mode := mode
				b.Run(mode.String(), func(b *testing.B) {
					q := dpst.NewQueryMode(tree, mode)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						a := steps[i%len(steps)]
						c := steps[(i*7+13)%len(steps)]
						_ = q.Par(a, c)
					}
				})
			}
		})
	}
}
