// Bank account: a multi-variable atomicity violation.
//
// A transfer moves money between two accounts; an audit running in a
// parallel task reads both balances. Individually every access is fine —
// there is not even a data race on either variable once the locks are
// added — but the PAIR of balances must be read atomically or the audit
// can observe money in flight. The two balances are annotated as one
// atomicity group (Session.Atomic), which gives them shared checker
// metadata exactly as the paper prescribes for multi-variable
// annotations.
//
// The program is run twice: unsynchronized (violation reported) and with
// a bank-wide lock (clean).
//
//	go run ./examples/bankaccount
package main

import (
	"fmt"

	avd "github.com/taskpar/avd"
)

func run(locked bool) {
	s := avd.NewSession(avd.Options{})
	defer s.Close()

	checking := s.NewIntVar("checking")
	savings := s.NewIntVar("savings")
	s.Atomic(checking, savings) // the pair forms one atomic unit
	bank := s.NewMutex("bank")

	s.Run(func(t *avd.Task) {
		checking.Store(t, 900)
		savings.Store(t, 100)
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) { // transfer 50 checking -> savings
				if locked {
					bank.Lock(t)
					defer bank.Unlock(t)
				}
				checking.Store(t, checking.Load(t)-50)
				savings.Store(t, savings.Load(t)+50)
			})
			t.Spawn(func(t *avd.Task) { // audit: total must be 1000
				if locked {
					bank.Lock(t)
					defer bank.Unlock(t)
				}
				_ = checking.Load(t) + savings.Load(t)
			})
		})
	})

	rep := s.Report()
	mode := "unsynchronized"
	if locked {
		mode = "bank-wide lock"
	}
	fmt.Printf("%-18s: %d violation(s)\n", mode, rep.ViolationCount)
	for _, v := range rep.Violations {
		fmt.Printf("  %s\n", v)
	}
}

func main() {
	run(false)
	run(true)
}
