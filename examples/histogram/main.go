// Histogram: a realistic violation-free parallel kernel and what its
// checker report looks like.
//
// A parallel_for over the input privatizes per-leaf bucket counts and
// merges them under a striped lock, one critical section per bucket per
// leaf — the reduction idiom all thirteen benchmark kernels use. The
// checker verifies every feasible schedule is serializable: zero
// violations, and the run prints the Table 1 style statistics (unique
// locations, DPST nodes, LCA queries) for the execution.
//
//	go run ./examples/histogram
package main

import (
	"fmt"

	avd "github.com/taskpar/avd"
)

const (
	items   = 100_000
	buckets = 32
)

func main() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()

	hist := s.NewIntArray("histogram", buckets)
	locks := make([]*avd.Mutex, buckets)
	for i := range locks {
		locks[i] = s.NewMutex(fmt.Sprintf("bucket-%d", i))
	}

	// expected is written before the parallel region and read after the
	// join: two steps, never in parallel. The static MHP engine proves
	// it serial, so `avd-lint -fix` rewrites these accesses to the
	// uninstrumented SetValue/Value accessors.
	expected := s.NewIntVar("expected")

	s.Run(func(t *avd.Task) {
		expected.Store(t, items)
		avd.ParallelRange(t, 0, items, 256, func(t *avd.Task, lo, hi int) {
			var local [buckets]int64
			for i := lo; i < hi; i++ {
				v := uint64(i) * 2654435761
				local[v%buckets]++
			}
			for b := 0; b < buckets; b++ {
				if local[b] == 0 {
					continue
				}
				locks[b].Lock(t)
				hist.Add(t, b, local[b])
				locks[b].Unlock(t)
			}
		})
		if got := expected.Load(t); got != items {
			fmt.Printf("unexpected item count %d\n", got)
		}
	})

	var total int64
	for b := 0; b < buckets; b++ {
		total += hist.Value(b)
	}
	rep := s.Report()
	fmt.Printf("histogram total = %d (want %d)\n", total, items)
	fmt.Printf("violations: %d (a correctly synchronized reduction)\n", rep.ViolationCount)
	fmt.Printf("stats: %d locations, %d DPST nodes, %d LCA queries (%.1f%% unique)\n",
		rep.Stats.Locations, rep.Stats.DPSTNodes, rep.Stats.LCAQueries, rep.Stats.UniquePercent())
}
