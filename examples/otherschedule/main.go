// Other-schedule detection: the headline difference between the paper's
// checker and Velodrome.
//
// The Figure 1 program is executed many times under both checkers.
// Velodrome only reports when the observed schedule actually interleaves
// T3's write between T2's read and write — a rare event — while the
// DPST-based checker reports the feasible violation from every single
// run, no interleaving exploration required.
//
//	go run ./examples/otherschedule
package main

import (
	"fmt"

	avd "github.com/taskpar/avd"
)

func runOnce(kind avd.CheckerKind) int64 {
	s := avd.NewSession(avd.Options{Checker: kind})
	defer s.Close()
	x := s.NewIntVar("X")
	s.Run(func(t *avd.Task) {
		x.Store(t, 10)
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) {
				a := x.Load(t)
				x.Store(t, a+1)
			})
			t.Spawn(func(t *avd.Task) {
				x.Store(t, 0)
			})
		})
	})
	return s.Report().ViolationCount
}

func main() {
	const runs = 200
	oursHits, veloHits := 0, 0
	for i := 0; i < runs; i++ {
		if runOnce(avd.CheckerOptimized) > 0 {
			oursHits++
		}
		if runOnce(avd.CheckerVelodrome) > 0 {
			veloHits++
		}
	}
	fmt.Printf("runs with the violation reported, out of %d:\n", runs)
	fmt.Printf("  our prototype (any schedule of this input): %3d\n", oursHits)
	fmt.Printf("  velodrome     (observed schedule only):     %3d\n", veloHits)
	fmt.Println("\nthe DPST checker reports the feasible violation every run;")
	fmt.Println("velodrome needs the bad interleaving to actually happen.")
}
