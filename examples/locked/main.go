// Locked: the paper's Figure 11 — a data-race free program with an
// atomicity violation, detected through lock versioning.
//
// T2 reads X inside one critical section of lock L, releases L, then
// re-acquires L to write X back. Every access to X is protected, so
// there is no data race — yet T3's locked write can slot between T2's
// two critical sections and T2 updates X from a stale value. Because the
// runtime gives each acquisition a fresh version, the checker sees that
// T2's two accesses hold *different* instances of L, forms the
// read-write pattern, and reports the feasible interleaving (Section 3.3
// of the paper).
//
// A second run keeps T2's read and write inside one critical section:
// the lock then genuinely guarantees atomicity and the checker is
// silent.
//
//	go run ./examples/locked
package main

import (
	"fmt"

	avd "github.com/taskpar/avd"
)

func run(splitCriticalSection bool) {
	s := avd.NewSession(avd.Options{})
	defer s.Close()

	x := s.NewIntVar("X")
	y := s.NewIntVar("Y")
	l := s.NewMutex("L")

	s.Run(func(t *avd.Task) {
		x.Store(t, 10)
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) { // T2
				if splitCriticalSection {
					l.Lock(t)
					a := x.Load(t)
					l.Unlock(t)
					a++
					l.Lock(t)
					x.Store(t, a)
					l.Unlock(t)
				} else {
					l.Lock(t)
					x.Store(t, x.Load(t)+1)
					l.Unlock(t)
				}
			})
			t.Spawn(func(t *avd.Task) { // T3
				l.Lock(t)
				x.Store(t, y.Value())
				l.Unlock(t)
			})
		})
	})

	rep := s.Report()
	mode := "read and write in ONE critical section "
	if splitCriticalSection {
		mode = "read and write in TWO critical sections"
	}
	fmt.Printf("%s: %d violation(s)\n", mode, rep.ViolationCount)
	for _, v := range rep.Violations {
		fmt.Printf("  %s\n", v)
	}
}

func main() {
	run(true)
	run(false)
}
