// Record / replay: capture one execution, analyze it many times.
//
// The run executes the Figure 1 program once with trace recording
// enabled (and no online checker). The recorded trace — a sequentially
// consistent schedule with all task-management, memory, and lock events
// — is then replayed offline through the optimized checker, the basic
// reference checker, and Velodrome, without re-running the program.
//
//	go run ./examples/recordreplay
package main

import (
	"fmt"
	"log"

	avd "github.com/taskpar/avd"
)

func main() {
	s := avd.NewSession(avd.Options{Checker: avd.CheckerNone, RecordTrace: true})
	x := s.NewIntVar("X")
	s.Run(func(t *avd.Task) {
		x.Store(t, 10)
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) { x.Store(t, x.Load(t)+1) })
			t.Spawn(func(t *avd.Task) { x.Store(t, 0) })
		})
	})
	tr := s.RecordedTrace()
	s.Close()
	fmt.Printf("recorded %d events from %d tasks\n", len(tr.Events), tr.Tasks)

	for _, kind := range []avd.CheckerKind{avd.CheckerOptimized, avd.CheckerBasic, avd.CheckerVelodrome} {
		rep, err := avd.ReplayTrace(tr, avd.Options{Checker: kind})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s: %d violation(s)\n", kind, rep.ViolationCount)
		for _, v := range rep.Violations {
			fmt.Printf("    %s\n", v)
		}
	}
	fmt.Println("\n(velodrome sees only this one schedule; the DPST checkers see them all)")
}
