// Quickstart: the paper's Figure 1 program.
//
// Task T1 writes X and spawns two children: T2 increments X (a read
// followed by a write) and T3 overwrites X. In the schedule the runtime
// happens to pick, T2's two accesses usually execute back to back and
// nothing looks wrong — but T3's write is logically parallel to both, so
// there IS a schedule in which it lands between them and T2's increment
// is lost. The checker reports that feasible violation from whichever
// schedule it observes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	avd "github.com/taskpar/avd"
)

func main() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()

	x := s.NewIntVar("X")
	y := s.NewIntVar("Y")

	s.Run(func(t *avd.Task) {
		x.Store(t, 10) // S11
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) { // T2: a = X; a++; X = a
				a := x.Load(t)
				x.Store(t, a+1)
			})
			t.Spawn(func(t *avd.Task) { // T3: X = Y
				x.Store(t, y.Value())
			})
		})
	})

	rep := s.Report()
	fmt.Printf("final X = %d\n", x.Value())
	fmt.Printf("%d atomicity violation(s) detected:\n", rep.ViolationCount)
	for _, v := range rep.Violations {
		fmt.Printf("  %s\n", v)
	}
	fmt.Printf("stats: %d locations, %d DPST nodes, %d LCA queries\n",
		rep.Stats.Locations, rep.Stats.DPSTNodes, rep.Stats.LCAQueries)
}
