package avd_test

import (
	"fmt"

	avd "github.com/taskpar/avd"
)

// The Figure 1 program of the paper: T2's increment of X can be torn by
// T3's parallel write in some schedule, and the checker reports it no
// matter which schedule actually ran.
func ExampleSession_Run() {
	s := avd.NewSession(avd.Options{Workers: 2})
	defer s.Close()

	x := s.NewIntVar("X")
	s.Run(func(t *avd.Task) {
		x.Store(t, 10)
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) {
				a := x.Load(t)
				x.Store(t, a+1)
			})
			t.Spawn(func(t *avd.Task) {
				x.Store(t, 0)
			})
		})
	})

	rep := s.Report()
	fmt.Println(len(rep.Violations), rep.Violations[0].Kind())
	// Output: 1 R-W-W
}

// Variables annotated as one atomic group share checker metadata: a
// torn read of the pair is reported even though each variable
// individually is accessed once per task.
func ExampleSession_Atomic() {
	s := avd.NewSession(avd.Options{Workers: 2})
	defer s.Close()

	lo := s.NewIntVar("pair.lo")
	hi := s.NewIntVar("pair.hi")
	s.Atomic(lo, hi)

	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) {
				_ = lo.Load(t)
				_ = hi.Load(t)
			})
			t.Spawn(func(t *avd.Task) {
				lo.Store(t, 1)
				hi.Store(t, 2)
			})
		})
	})

	fmt.Println(s.Report().ViolationCount > 0)
	// Output: true
}

// Cilk-style spawn/sync: the first CilkSpawn after a sync point opens
// the implicit finish scope of SPD3's spawn-sync mapping.
func ExampleTask_CilkSpawn() {
	s := avd.NewSession(avd.Options{Workers: 2})
	defer s.Close()

	sum := s.NewIntVar("sum")
	l := s.NewMutex("sum.lock")
	s.Run(func(t *avd.Task) {
		for i := 0; i < 4; i++ {
			t.CilkSpawn(func(t *avd.Task) {
				l.Lock(t)
				sum.Add(t, 1)
				l.Unlock(t)
			})
		}
		t.Sync()
		fmt.Println(sum.Load(t))
	})
	fmt.Println(s.Report().ViolationCount)
	// Output:
	// 4
	// 0
}

// ParallelRange distributes a reduction over leaf tasks that each merge
// once under a lock — the idiomatic violation-free pattern.
func ExampleParallelRange() {
	s := avd.NewSession(avd.Options{Workers: 2})
	defer s.Close()

	total := s.NewIntVar("total")
	l := s.NewMutex("total.lock")
	s.Run(func(t *avd.Task) {
		avd.ParallelRange(t, 0, 1000, 64, func(t *avd.Task, lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			l.Lock(t)
			total.Add(t, local)
			l.Unlock(t)
		})
	})
	fmt.Println(total.Value(), s.Report().ViolationCount)
	// Output: 499500 0
}
