package avd_test

import (
	"testing"

	avd "github.com/taskpar/avd"
)

// TestSteadyStateZeroAllocs pins the hot-path allocation behaviour the
// lock-free shadow table and label-based MHP are designed for: once a
// location is warm (shadow cell published, step metadata offered), an
// instrumented Load or Store must not allocate at all.
//
// testing.AllocsPerRun pins GOMAXPROCS to 1 for the duration of the
// closure, so the measurement runs inside a single-worker session and
// the measured closure never spawns or blocks.
func TestSteadyStateZeroAllocs(t *testing.T) {
	s := avd.NewSession(avd.Options{Workers: 1})
	defer s.Close()
	x := s.NewIntVar("X")
	var loadAllocs, storeAllocs float64
	s.Run(func(tk *avd.Task) {
		// Warm: publish the shadow cell and settle the per-step
		// offer-once metadata for this location.
		x.Store(tk, 1)
		_ = x.Load(tk)
		_ = x.Load(tk)
		x.Store(tk, 2)
		loadAllocs = testing.AllocsPerRun(200, func() { _ = x.Load(tk) })
		storeAllocs = testing.AllocsPerRun(200, func() { x.Store(tk, 3) })
	})
	if loadAllocs != 0 {
		t.Errorf("IntVar.Load allocates %.1f objects per op on a warm location, want 0", loadAllocs)
	}
	if storeAllocs != 0 {
		t.Errorf("IntVar.Store allocates %.1f objects per op on a warm location, want 0", storeAllocs)
	}
	if got := x.Value(); got != 3 {
		t.Fatalf("final value %d, want 3", got)
	}
}
