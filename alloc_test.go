package avd_test

import (
	"testing"

	avd "github.com/taskpar/avd"
)

// TestSteadyStateZeroAllocs pins the hot-path allocation behaviour the
// lock-free shadow table and label-based MHP are designed for: once a
// location is warm (shadow cell published, step metadata offered), an
// instrumented Load or Store must not allocate at all.
//
// testing.AllocsPerRun pins GOMAXPROCS to 1 for the duration of the
// closure, so the measurement runs inside a single-worker session and
// the measured closure never spawns or blocks.
func TestSteadyStateZeroAllocs(t *testing.T) {
	s := avd.NewSession(avd.Options{Workers: 1})
	defer s.Close()
	x := s.NewIntVar("X")
	var loadAllocs, storeAllocs float64
	s.Run(func(tk *avd.Task) {
		// Warm: publish the shadow cell and settle the per-step
		// offer-once metadata for this location.
		x.Store(tk, 1)
		_ = x.Load(tk)
		_ = x.Load(tk)
		x.Store(tk, 2)
		loadAllocs = testing.AllocsPerRun(200, func() { _ = x.Load(tk) })
		storeAllocs = testing.AllocsPerRun(200, func() { x.Store(tk, 3) })
	})
	if loadAllocs != 0 {
		t.Errorf("IntVar.Load allocates %.1f objects per op on a warm location, want 0", loadAllocs)
	}
	if storeAllocs != 0 {
		t.Errorf("IntVar.Store allocates %.1f objects per op on a warm location, want 0", storeAllocs)
	}
	if got := x.Value(); got != 3 {
		t.Fatalf("final value %d, want 3", got)
	}
}

// TestBatchedLockedRepeatZeroAllocs mirrors TestLockedRepeatZeroAllocs
// with the step-granular access coalescer in front of the checker: a
// warm lock/load/store/unlock round must stay allocation-free even
// though each lock transition drains the batch through the full
// dispatch path. The batch buffer, dedup table, and counters are all
// fixed-size per-task state allocated before the measurement.
func TestBatchedLockedRepeatZeroAllocs(t *testing.T) {
	for _, disable := range []bool{false, true} {
		name := "dedup"
		if disable {
			name = "nodedup"
		}
		t.Run(name, func(t *testing.T) {
			s := avd.NewSession(avd.Options{Workers: 1, Batch: true, DisableAccessFilter: disable})
			defer s.Close()
			x := s.NewIntVar("X")
			mu := s.NewMutex("L")
			var allocs float64
			s.Run(func(tk *avd.Task) {
				// Warm: allocate the batch space, shadow cell, local
				// entry, and lockset arenas.
				for i := 0; i < 96; i++ {
					mu.Lock(tk)
					x.Store(tk, x.Load(tk)+1)
					mu.Unlock(tk)
				}
				allocs = testing.AllocsPerRun(200, func() {
					mu.Lock(tk)
					x.Store(tk, x.Load(tk)+1)
					mu.Unlock(tk)
				})
			})
			if allocs != 0 {
				t.Errorf("batched locked load+store round allocates %.1f objects per op on a warm location, want 0", allocs)
			}
			rep := s.Report()
			if rep.Stats.BatchFlushes == 0 || rep.Stats.BatchedAccesses == 0 {
				t.Errorf("coalescer never engaged: %d flushes of %d accesses",
					rep.Stats.BatchFlushes, rep.Stats.BatchedAccesses)
			}
			if disable && (rep.Stats.FilterHits != 0 || rep.Stats.FilterMisses != 0) {
				t.Errorf("disabled dedup reported counters %d/%d",
					rep.Stats.FilterHits, rep.Stats.FilterMisses)
			}
			if !disable && rep.Stats.FilterMisses == 0 {
				t.Errorf("batched dispatch reported no misses: the dedup engine cannot have run")
			}
		})
	}
}

// TestLockedRepeatZeroAllocs extends the steady-state pin to the locked
// hot path, with the redundant-access filter both enabled and disabled:
// once a task is past the filter warm-up (its cache, counters, and
// lockset arenas are allocated) a lock/load/store/unlock round must not
// allocate. Strict lock checking is deliberately left off — that mode
// retains lockset copies in the global metadata by design.
func TestLockedRepeatZeroAllocs(t *testing.T) {
	for _, disable := range []bool{false, true} {
		name := "filter"
		if disable {
			name = "nofilter"
		}
		t.Run(name, func(t *testing.T) {
			s := avd.NewSession(avd.Options{Workers: 1, DisableAccessFilter: disable})
			defer s.Close()
			x := s.NewIntVar("X")
			mu := s.NewMutex("L")
			var allocs float64
			s.Run(func(tk *avd.Task) {
				// Warm past the filter's warm-up window with the same
				// locked load+store pairs the measurement runs: the
				// single-location working set enables the cache, and the
				// arena chunks are allocated here.
				for i := 0; i < 96; i++ {
					mu.Lock(tk)
					x.Store(tk, x.Load(tk)+1)
					mu.Unlock(tk)
				}
				allocs = testing.AllocsPerRun(200, func() {
					mu.Lock(tk)
					x.Store(tk, x.Load(tk)+1)
					mu.Unlock(tk)
				})
			})
			if allocs != 0 {
				t.Errorf("locked load+store round allocates %.1f objects per op on a warm location, want 0", allocs)
			}
			rep := s.Report()
			if disable && (rep.Stats.FilterHits != 0 || rep.Stats.FilterMisses != 0) {
				t.Errorf("disabled filter reported counters %d/%d",
					rep.Stats.FilterHits, rep.Stats.FilterMisses)
			}
			if !disable && rep.Stats.FilterMisses == 0 {
				t.Errorf("filter cache never engaged: the warm-up loop is too short for the probe window")
			}
		})
	}
}

// TestWindowElisionZeroAllocs pins the saturated-window fast path on
// both handle shapes: once a window has proven read and write repeats
// redundant for the touched locations, the measured accesses are
// answered entirely inside Task.Access by the per-task elision cache —
// no batch buffer traffic, no dedup probe, and certainly no allocation.
// Unlike TestBatchedLockedRepeatZeroAllocs, the loop holds no lock, so
// the window (and with it the saturation facts) survives across the
// whole measurement.
func TestWindowElisionZeroAllocs(t *testing.T) {
	t.Run("scalar", func(t *testing.T) {
		s := avd.NewSession(avd.Options{Workers: 1, Batch: true})
		defer s.Close()
		x := s.NewIntVar("X")
		var allocs float64
		s.Run(func(tk *avd.Task) {
			// Warm: saturate both access types for the window.
			for i := 0; i < 96; i++ {
				x.Store(tk, x.Load(tk)+1)
			}
			allocs = testing.AllocsPerRun(200, func() {
				x.Store(tk, x.Load(tk)+1)
			})
		})
		if allocs != 0 {
			t.Errorf("saturated scalar load+store allocates %.1f objects per op, want 0", allocs)
		}
		rep := s.Report()
		if rep.Stats.WindowElisions == 0 {
			t.Error("the window-elision cache never engaged on the scalar handle")
		}
	})
	t.Run("array", func(t *testing.T) {
		s := avd.NewSession(avd.Options{Workers: 1, Batch: true})
		defer s.Close()
		a := s.NewIntArray("A", 8)
		var allocs float64
		s.Run(func(tk *avd.Task) {
			for i := 0; i < 96; i++ {
				a.Store(tk, i%8, a.Load(tk, i%8)+1)
			}
			i := 0
			allocs = testing.AllocsPerRun(200, func() {
				a.Store(tk, i%8, a.Load(tk, i%8)+1)
				i++
			})
		})
		if allocs != 0 {
			t.Errorf("saturated array load+store allocates %.1f objects per op, want 0", allocs)
		}
		rep := s.Report()
		if rep.Stats.WindowElisions == 0 {
			t.Error("the window-elision cache never engaged on the array handle")
		}
	})
}
