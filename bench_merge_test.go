package avd_test

import (
	"testing"

	avd "github.com/taskpar/avd"
)

// benchMergePattern drives a merge-shaped access stream — two advancing
// read cursors and one advancing write cursor, where the non-advancing
// read side is re-read on the next iteration — through one long step.
// This is sort's dominant access mix and the worst case for batched
// dispatch: mostly first touches with a thin (~10-15%) band of window
// repeats. ns/op here isolates the checker's per-access cost from
// scheduler and GC noise in the end-to-end kernels.
func benchMergePattern(b *testing.B, opts avd.Options) {
	s := avd.NewSession(opts)
	defer s.Close()
	const m = 1 << 14
	s.Run(func(t *avd.Task) {
		src := s.NewIntArray("src", m)
		dst := s.NewIntArray("dst", m)
		for i := 0; i < m; i++ {
			src.Store(t, i, int64(i))
		}
		b.ResetTimer()
		i, j, k := 0, m/2, 0
		rng := uint64(0x9e3779b97f4a7c15)
		for n := 0; n < b.N; n++ {
			a := src.Load(t, i%(m/2))
			c := src.Load(t, m/2+j%(m/2))
			dst.Store(t, k%m, a+c)
			k++
			// Advance one side, as a merge's comparison would; the other
			// side is re-read next iteration.
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			if rng&1 == 0 {
				i++
			} else {
				j++
			}
		}
		b.StopTimer()
	})
}

func BenchmarkMergeFilter(b *testing.B) {
	benchMergePattern(b, avd.Options{Workers: 1})
}

func BenchmarkMergeBatch(b *testing.B) {
	benchMergePattern(b, avd.Options{Workers: 1, Batch: true})
}

func BenchmarkMergeBatchNoElide(b *testing.B) {
	benchMergePattern(b, avd.Options{Workers: 1, Batch: true, DisableWindowElision: true})
}
