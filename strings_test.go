package avd

import "testing"

// TestCheckerKindString pins the figure names and the default branch
// for out-of-range values.
func TestCheckerKindString(t *testing.T) {
	cases := []struct {
		k    CheckerKind
		want string
	}{
		{CheckerOptimized, "our-prototype"},
		{CheckerBasic, "basic"},
		{CheckerVelodrome, "velodrome"},
		{CheckerNone, "baseline"},
		{CheckerKind(42), "checker(42)"},
		{CheckerKind(-1), "checker(-1)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("CheckerKind(%d).String() = %q, want %q", int(c.k), got, c.want)
		}
	}
}

// TestMHPModeString pins the harness configuration names and the
// default branch for out-of-range values.
func TestMHPModeString(t *testing.T) {
	cases := []struct {
		m    MHPMode
		want string
	}{
		{MHPLabels, "labels"},
		{MHPCachedWalk, "cached-walk"},
		{MHPWalk, "walk"},
		{MHPMode(7), "mhp(7)"},
		{MHPMode(-3), "mhp(-3)"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("MHPMode(%d).String() = %q, want %q", int(c.m), got, c.want)
		}
	}
}
