package dpst_test

import (
	"math/rand"
	"testing"

	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sptest"
)

// TestLabelStructure checks the stamping invariants directly: the root
// label is empty, and every other node's label is its parent's label
// extended by one component carrying the node's rank and kind.
func TestLabelStructure(t *testing.T) {
	for _, layout := range layouts() {
		layout := layout
		t.Run(layout.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(11))
			p := sptest.Random(r, sptest.GenConfig{MaxItems: 5, MaxDepth: 4, MaxSteps: 30})
			b := sptest.Build(layout, p)
			tree := b.Tree
			for id := dpst.NodeID(0); int(id) < tree.Len(); id++ {
				lab := tree.Label(id)
				if tree.Parent(id) == dpst.None {
					if len(lab) != 0 {
						t.Fatalf("root %d has non-empty label %v", id, lab)
					}
					continue
				}
				parent := tree.Label(tree.Parent(id))
				if len(lab) != len(parent)+1 {
					t.Fatalf("node %d: label length %d, parent's %d", id, len(lab), len(parent))
				}
				for i := range parent {
					if lab[i] != parent[i] {
						t.Fatalf("node %d: label %v does not extend parent label %v", id, lab, parent)
					}
				}
				last := lab[len(lab)-1]
				if got := int32(last >> 2); got != tree.Rank(id) {
					t.Fatalf("node %d: label rank %d, tree rank %d", id, got, tree.Rank(id))
				}
				if got := dpst.Kind(last & 3); got != tree.Kind(id) {
					t.Fatalf("node %d: label kind %v, tree kind %v", id, got, tree.Kind(id))
				}
				if int32(len(lab)) != tree.Depth(id) {
					t.Fatalf("node %d: label length %d, depth %d", id, len(lab), tree.Depth(id))
				}
			}
		})
	}
}

// TestParLabelsMatchesWalk is the differential property test of the
// label-based MHP: on random structured programs, for every pair of step
// nodes and both layouts, ParLabels must agree with the ComputePar tree
// walk on parallelism and with LCADepth on the LCA depth.
func TestParLabelsMatchesWalk(t *testing.T) {
	for _, layout := range layouts() {
		layout := layout
		t.Run(layout.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			for trial := 0; trial < 150; trial++ {
				p := sptest.Random(r, sptest.GenConfig{
					MaxItems: 4, MaxDepth: 4, MaxSteps: 25,
				})
				b := sptest.Build(layout, p)
				steps := p.Steps()
				for i := range steps {
					for j := range steps {
						na, nb := b.Steps[steps[i].ID], b.Steps[steps[j].ID]
						par, depth := dpst.ParLabels(b.Tree, na, nb)
						if na != nb {
							if want := dpst.ComputePar(b.Tree, na, nb); par != want {
								t.Fatalf("trial %d: ParLabels(%d,%d) par = %v, walk says %v",
									trial, na, nb, par, want)
							}
						} else if par {
							t.Fatalf("trial %d: ParLabels(%d,%d) claims a node parallel to itself", trial, na, nb)
						}
						if want := dpst.LCADepth(b.Tree, na, nb); depth != want {
							t.Fatalf("trial %d: ParLabels(%d,%d) depth = %d, LCADepth says %d",
								trial, na, nb, depth, want)
						}
					}
				}
			}
		})
	}
}

// TestLabelQueryMatchesOracle runs a ModeLabels Query against fork-join
// DAG reachability on random programs and checks the Table 1 counters:
// every Par call is counted as an LCA query, and no uniqueness is
// tracked because no cache is consulted.
func TestLabelQueryMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		p := sptest.Random(r, sptest.GenConfig{MaxItems: 4, MaxDepth: 4, MaxSteps: 25})
		b := sptest.Build(dpst.ArrayLayout, p)
		q := dpst.NewQueryMode(b.Tree, dpst.ModeLabels)
		if q.Mode() != dpst.ModeLabels || q.Caching() {
			t.Fatal("label query must report its mode and no caching")
		}
		steps := p.Steps()
		var calls int64
		for i := range steps {
			for j := range steps {
				a, c := steps[i].ID, steps[j].ID
				got := q.Par(b.Steps[a], b.Steps[c])
				// Distinct program steps may share one DPST step node;
				// Par only counts queries over distinct nodes.
				if b.Steps[a] != b.Steps[c] {
					calls++
				}
				if want := b.Parallel(a, c); got != want {
					t.Fatalf("trial %d: Par(step %d, step %d) = %v, oracle says %v", trial, a, c, got, want)
				}
			}
		}
		st := q.Stats()
		if st.LCAQueries != calls {
			t.Fatalf("trial %d: counted %d LCA queries, want %d", trial, st.LCAQueries, calls)
		}
		if st.UniqueLCAs != 0 {
			t.Fatalf("trial %d: label mode tracked %d unique LCAs, want 0", trial, st.UniqueLCAs)
		}
	}
}

// TestPairDepthModesAgree checks the spanning-pair replacement input: the
// label-mode PairDepth equals the walk-based one for every step pair.
func TestPairDepthModesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		p := sptest.Random(r, sptest.GenConfig{MaxItems: 4, MaxDepth: 3, MaxSteps: 20})
		b := sptest.Build(dpst.ArrayLayout, p)
		ql := dpst.NewQueryMode(b.Tree, dpst.ModeLabels)
		qw := dpst.NewQueryMode(b.Tree, dpst.ModeCachedWalk)
		steps := p.Steps()
		for i := range steps {
			for j := range steps {
				na, nb := b.Steps[steps[i].ID], b.Steps[steps[j].ID]
				if dl, dw := ql.PairDepth(na, nb), qw.PairDepth(na, nb); dl != dw {
					t.Fatalf("trial %d: PairDepth(%d,%d) label %d vs walk %d", trial, na, nb, dl, dw)
				}
			}
		}
	}
}
