package dpst_test

import (
	"math/rand"
	"testing"

	"github.com/taskpar/avd/internal/chaos"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sptest"
)

// gatedTree builds a fresh tree of the given layout with an allocation
// gate attached before any node exists, so label-arena chunk carving is
// subject to the gate from the first node on.
func gatedTree(t *testing.T, layout dpst.Layout, g *chaos.Gate) dpst.Tree {
	t.Helper()
	tree := dpst.New(layout)
	gs, ok := tree.(interface{ SetGate(*chaos.Gate) })
	if !ok {
		t.Fatalf("%v tree does not accept a gate", layout)
	}
	gs.SetGate(g)
	return tree
}

// checkDegradedEquivalence asserts the degradation contract on a built
// tree: ParLabels must agree with the ComputePar/LCADepth tree walk for
// every step pair, degraded or not, and degradation must be sticky
// (every descendant of a degraded node is degraded).
func checkDegradedEquivalence(t *testing.T, b *sptest.Built, p *sptest.Program) (degraded, intact int) {
	t.Helper()
	tree := b.Tree
	for id := dpst.NodeID(0); int(id) < tree.Len(); id++ {
		lab := tree.Label(id)
		bad := len(lab) > 0 && lab[0] == ^uint32(0)
		if bad {
			degraded++
		} else {
			intact++
		}
		if par := tree.Parent(id); par != dpst.None {
			plab := tree.Label(par)
			if len(plab) > 0 && plab[0] == ^uint32(0) && !bad {
				t.Fatalf("node %d has an intact label under degraded parent %d", id, par)
			}
		}
	}
	steps := p.Steps()
	for i := range steps {
		for j := range steps {
			na, nb := b.Steps[steps[i].ID], b.Steps[steps[j].ID]
			par, depth := dpst.ParLabels(tree, na, nb)
			wantPar := na != nb && dpst.ComputePar(tree, na, nb)
			if par != wantPar {
				t.Fatalf("ParLabels(%d,%d) par = %v, walk says %v", na, nb, par, wantPar)
			}
			if want := dpst.LCADepth(tree, na, nb); depth != want {
				t.Fatalf("ParLabels(%d,%d) depth = %d, LCADepth says %d", na, nb, depth, want)
			}
			if got := b.Parallel(steps[i].ID, steps[j].ID); wantPar != got {
				t.Fatalf("walk Par(%d,%d) = %v, DAG oracle says %v", na, nb, wantPar, got)
			}
		}
	}
	return degraded, intact
}

// TestDegradedLabelsInjectedFailure drives label-arena allocation through
// a plane that denies roughly half the chunk refills: some shards lose
// their chunk and their nodes degrade to the sentinel label, others keep
// stamping. MHP answers must be unchanged either way.
func TestDegradedLabelsInjectedFailure(t *testing.T) {
	for _, layout := range layouts() {
		layout := layout
		t.Run(layout.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(17))
			totalDegraded := 0
			for trial := 0; trial < 60; trial++ {
				p := sptest.Random(r, sptest.GenConfig{MaxItems: 4, MaxDepth: 4, MaxSteps: 25})
				g := &chaos.Gate{Plane: chaos.New(chaos.Config{
					Seed: int64(trial), AllocFailProb: 0.5,
				})}
				tree := gatedTree(t, layout, g)
				b := sptest.BuildOn(tree, p)
				d, _ := checkDegradedEquivalence(t, b, p)
				totalDegraded += d
				if d > 0 && g.Drops(chaos.SiteLabelArena) == 0 {
					t.Fatal("labels degraded but no drop was counted")
				}
			}
			if totalDegraded == 0 {
				t.Fatal("AllocFailProb=0.5 degraded no label across 60 trials; the gate is not wired")
			}
		})
	}
}

// TestDegradedLabelsBudgetExhaustion degrades through the budget half of
// the gate instead: a budget big enough for a single 64KiB label chunk
// admits one shard's chunk and starves the rest.
func TestDegradedLabelsBudgetExhaustion(t *testing.T) {
	for _, layout := range layouts() {
		layout := layout
		t.Run(layout.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(23))
			totalDegraded, totalIntact := 0, 0
			for trial := 0; trial < 40; trial++ {
				p := sptest.Random(r, sptest.GenConfig{MaxItems: 5, MaxDepth: 4, MaxSteps: 30})
				g := &chaos.Gate{Budget: chaos.NewBudget(1 << 16)}
				tree := gatedTree(t, layout, g)
				b := sptest.BuildOn(tree, p)
				d, i := checkDegradedEquivalence(t, b, p)
				totalDegraded += d
				totalIntact += i
				if used := g.Budget.Used(); used > 1<<16 {
					t.Fatalf("trial %d: label arena charged %d bytes against a %d budget", trial, used, 1<<16)
				}
			}
			if totalDegraded == 0 {
				t.Fatal("one-chunk budget degraded no label; the arena is not charging the budget")
			}
			if totalIntact == 0 {
				t.Fatal("no label survived; the first chunk should fit the budget")
			}
		})
	}
}
