package dpst

import (
	"sync"
	"sync/atomic"

	"github.com/taskpar/avd/internal/chaos"
)

const (
	chunkBits = 13 // 8192 nodes per chunk
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1

	// maxChunks bounds the chunk directory. 1<<17 chunks of 1<<13 nodes
	// allow 2^30 nodes, far beyond any workload in this repository, while
	// the directory itself is only 1 MiB of pointers.
	maxChunks = 1 << 17
)

// arrayNode is a DPST node stored by value inside a chunk. Parent links
// are integer indices, so traversals touch dense memory instead of
// chasing heap pointers — the layout optimization evaluated in Figure 14
// of the paper.
type arrayNode struct {
	parent   NodeID
	label    []uint32 // path label, stamped at creation (labels.go)
	depth    int32
	rank     int32
	children int32 // child counter, maintained by the owning task
	task     int32
	kind     Kind
}

type arrayChunk [chunkSize]arrayNode

// ArrayTree is the chunked-array DPST layout. Nodes live by value in
// fixed-size chunks; the chunk directory is preallocated so readers index
// it without synchronization, and chunks are published with an atomic
// pointer store when first needed.
type ArrayTree struct {
	chunks [maxChunks]atomic.Pointer[arrayChunk]
	next   atomic.Int64
	grow   sync.Mutex
	labels labelArena
}

// NewArrayTree returns an empty array-layout DPST.
func NewArrayTree() *ArrayTree {
	t := &ArrayTree{}
	t.chunks[0].Store(new(arrayChunk))
	return t
}

func (t *ArrayTree) node(id NodeID) *arrayNode {
	return &t.chunks[id>>chunkBits].Load()[id&chunkMask]
}

// NewNode implements Tree.
func (t *ArrayTree) NewNode(parent NodeID, kind Kind, task int32) NodeID {
	idx := t.next.Add(1) - 1
	if idx>>chunkBits >= maxChunks {
		panic("dpst: ArrayTree node capacity exceeded")
	}
	ci := idx >> chunkBits
	if t.chunks[ci].Load() == nil {
		t.grow.Lock()
		if t.chunks[ci].Load() == nil {
			t.chunks[ci].Store(new(arrayChunk))
		}
		t.grow.Unlock()
	}
	id := NodeID(idx)
	n := t.node(id)
	n.kind = kind
	n.task = task
	if parent == None {
		n.parent = None
		n.depth = 0
		n.rank = 0
		n.label = nil
	} else {
		p := t.node(parent)
		n.parent = parent
		n.depth = p.depth + 1
		n.rank = p.children
		p.children++
		n.label = t.labels.extend(task, p.label, n.rank, kind)
	}
	return id
}

// SetGate attaches an allocation gate to the label arena; call before
// the first node is created.
func (t *ArrayTree) SetGate(g *chaos.Gate) { t.labels.gate = g }

// Parent implements Tree.
func (t *ArrayTree) Parent(id NodeID) NodeID { return t.node(id).parent }

// Kind implements Tree.
func (t *ArrayTree) Kind(id NodeID) Kind { return t.node(id).kind }

// Depth implements Tree.
func (t *ArrayTree) Depth(id NodeID) int32 { return t.node(id).depth }

// Rank implements Tree.
func (t *ArrayTree) Rank(id NodeID) int32 { return t.node(id).rank }

// Task implements Tree.
func (t *ArrayTree) Task(id NodeID) int32 { return t.node(id).task }

// Label implements Tree.
func (t *ArrayTree) Label(id NodeID) []uint32 { return t.node(id).label }

// Len implements Tree.
func (t *ArrayTree) Len() int { return int(t.next.Load()) }
