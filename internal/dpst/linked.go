package dpst

import (
	"sync/atomic"

	"github.com/taskpar/avd/internal/chaos"
)

// linkedNode is a separately heap-allocated DPST node with a parent
// pointer, the layout the paper uses as the baseline in Figure 14. Every
// traversal step chases a pointer to an individually allocated object,
// which costs locality and allocator pressure relative to ArrayTree.
type linkedNode struct {
	parent   *linkedNode
	label    []uint32 // path label, stamped at creation (labels.go)
	id       NodeID
	depth    int32
	rank     int32
	children int32
	task     int32
	kind     Kind
}

type linkedChunk [chunkSize]*linkedNode

// LinkedTree is the pointer-based DPST layout. A chunked directory maps
// NodeIDs to per-node heap allocations so that both layouts expose the
// same ID-based interface; all structural traversal goes through the
// nodes' parent pointers.
type LinkedTree struct {
	chunks [maxChunks]atomic.Pointer[linkedChunk]
	next   atomic.Int64
	labels labelArena
}

// NewLinkedTree returns an empty linked-layout DPST.
func NewLinkedTree() *LinkedTree {
	t := &LinkedTree{}
	t.chunks[0].Store(new(linkedChunk))
	return t
}

func (t *LinkedTree) node(id NodeID) *linkedNode {
	return t.chunks[id>>chunkBits].Load()[id&chunkMask]
}

// NewNode implements Tree.
func (t *LinkedTree) NewNode(parent NodeID, kind Kind, task int32) NodeID {
	idx := t.next.Add(1) - 1
	if idx>>chunkBits >= maxChunks {
		panic("dpst: LinkedTree node capacity exceeded")
	}
	ci := idx >> chunkBits
	if t.chunks[ci].Load() == nil {
		t.chunks[ci].CompareAndSwap(nil, new(linkedChunk))
	}
	id := NodeID(idx)
	n := &linkedNode{id: id, kind: kind, task: task, parent: nil}
	if parent != None {
		p := t.node(parent)
		n.parent = p
		n.depth = p.depth + 1
		n.rank = p.children
		p.children++
		n.label = t.labels.extend(task, p.label, n.rank, kind)
	}
	t.chunks[ci].Load()[id&chunkMask] = n
	return id
}

// SetGate attaches an allocation gate to the label arena; call before
// the first node is created.
func (t *LinkedTree) SetGate(g *chaos.Gate) { t.labels.gate = g }

// Parent implements Tree.
func (t *LinkedTree) Parent(id NodeID) NodeID {
	p := t.node(id).parent
	if p == nil {
		return None
	}
	return p.id
}

// Kind implements Tree.
func (t *LinkedTree) Kind(id NodeID) Kind { return t.node(id).kind }

// Depth implements Tree.
func (t *LinkedTree) Depth(id NodeID) int32 { return t.node(id).depth }

// Rank implements Tree.
func (t *LinkedTree) Rank(id NodeID) int32 { return t.node(id).rank }

// Task implements Tree.
func (t *LinkedTree) Task(id NodeID) int32 { return t.node(id).task }

// Label implements Tree.
func (t *LinkedTree) Label(id NodeID) []uint32 { return t.node(id).label }

// Len implements Tree.
func (t *LinkedTree) Len() int { return int(t.next.Load()) }
