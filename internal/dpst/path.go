package dpst

import "strconv"

// kindLetter is the conventional one-letter node-kind prefix used in
// rendered paths (and in the paper's figures): F(inish), A(sync),
// S(tep).
func kindLetter(k Kind) byte {
	switch k {
	case Step:
		return 'S'
	case Async:
		return 'A'
	default:
		return 'F'
	}
}

// PathString renders the root path of a node as dotted kind+ID
// components, e.g. "F0.A3.S7": the finish root, an async child, the
// step that performed an access. It reads only published, immutable
// node fields, so it is safe to call concurrently with tree growth.
// The absent node renders as "-".
func PathString(t Tree, id NodeID) string {
	if id == None {
		return "-"
	}
	ids := make([]NodeID, 0, t.Depth(id)+1)
	for n := id; n != None; n = t.Parent(n) {
		ids = append(ids, n)
	}
	var b []byte
	for i := len(ids) - 1; i >= 0; i-- {
		n := ids[i]
		b = append(b, kindLetter(t.Kind(n)))
		b = strconv.AppendInt(b, int64(n), 10)
		if i > 0 {
			b = append(b, '.')
		}
	}
	return string(b)
}
