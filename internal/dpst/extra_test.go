package dpst_test

import (
	"testing"

	"github.com/taskpar/avd/internal/dpst"
)

func TestLCADepth(t *testing.T) {
	tree, s11, s12, s2, s3 := figure2(dpst.ArrayLayout)
	// Root F11 has depth 0; F12 depth 1.
	cases := []struct {
		a, b dpst.NodeID
		want int32
	}{
		{s2, s3, 1},   // LCA = F12
		{s2, s12, 1},  // LCA = F12
		{s11, s2, 0},  // LCA = F11
		{s11, s12, 0}, // LCA = F11
		{s2, s2, tree.Depth(s2)},
	}
	for _, c := range cases {
		if got := dpst.LCADepth(tree, c.a, c.b); got != c.want {
			t.Errorf("LCADepth(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := dpst.LCADepth(tree, c.b, c.a); got != c.want {
			t.Errorf("LCADepth(%d,%d) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestPairDepthAndKey(t *testing.T) {
	tree, _, _, s2, s3 := figure2(dpst.ArrayLayout)
	q := dpst.NewQuery(tree, true)
	if q.PairDepth(s2, s3) != 1 {
		t.Errorf("PairDepth(s2,s3) = %d, want 1", q.PairDepth(s2, s3))
	}
	if q.PairDepth(dpst.None, s2) != 0 || q.PairDepth(s2, dpst.None) != 0 {
		t.Error("PairDepth with None must be 0")
	}
	if dpst.PairKey(s2, s3) != dpst.PairKey(s3, s2) {
		t.Error("PairKey must be order-insensitive")
	}
	if dpst.PairKey(s2, s3) == dpst.PairKey(s2, s2) {
		t.Error("distinct pairs must have distinct keys")
	}
}

func TestCountQuery(t *testing.T) {
	tree, _, _, s2, s3 := figure2(dpst.ArrayLayout)
	q := dpst.NewQuery(tree, true)
	q.Par(s2, s3)
	q.CountQuery(s2, s3) // a front-cache hit reported by a caller
	st := q.Stats()
	if st.LCAQueries != 2 {
		t.Errorf("LCAQueries = %d, want 2 (one real + one counted)", st.LCAQueries)
	}
	if st.UniqueLCAs != 1 {
		t.Errorf("UniqueLCAs = %d, want 1", st.UniqueLCAs)
	}
	if !q.Caching() {
		t.Error("Caching() must reflect the constructor flag")
	}
	if dpst.NewQuery(tree, false).Caching() {
		t.Error("uncached query must report Caching()==false")
	}
}

func TestLeftOfAncestorChain(t *testing.T) {
	tree := dpst.NewArrayTree()
	root := tree.NewNode(dpst.None, dpst.Finish, 0)
	f := tree.NewNode(root, dpst.Finish, 0)
	s := tree.NewNode(f, dpst.Step, 0)
	// Ancestor is "left" of its descendant by the depth rule.
	if !dpst.LeftOf(tree, root, s) || dpst.LeftOf(tree, s, root) {
		t.Error("ancestor ordering broken")
	}
	if dpst.LeftOf(tree, s, s) {
		t.Error("LeftOf must be irreflexive")
	}
}
