package dpst_test

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sptest"
)

// figure2 builds the DPST of Figure 2 in the paper: the program of
// Figure 1 with tasks T1, T2, T3 and step nodes S11, S12, S2, S3.
func figure2(layout dpst.Layout) (t dpst.Tree, s11, s12, s2, s3 dpst.NodeID) {
	t = dpst.New(layout)
	f11 := t.NewNode(dpst.None, dpst.Finish, 1)
	s11 = t.NewNode(f11, dpst.Step, 1)
	f12 := t.NewNode(f11, dpst.Finish, 1)
	a2 := t.NewNode(f12, dpst.Async, 1)
	s2 = t.NewNode(a2, dpst.Step, 2)
	s12 = t.NewNode(f12, dpst.Step, 1)
	a3 := t.NewNode(f12, dpst.Async, 1)
	s3 = t.NewNode(a3, dpst.Step, 3)
	return t, s11, s12, s2, s3
}

func layouts() []dpst.Layout {
	return []dpst.Layout{dpst.ArrayLayout, dpst.LinkedLayout}
}

func TestFigure2Relations(t *testing.T) {
	for _, layout := range layouts() {
		layout := layout
		t.Run(layout.String(), func(t *testing.T) {
			tree, s11, s12, s2, s3 := figure2(layout)
			q := dpst.NewQuery(tree, true)
			cases := []struct {
				name string
				a, b dpst.NodeID
				want bool
			}{
				{"S2 parallel S12", s2, s12, true},
				{"S2 parallel S3", s2, s3, true},
				{"S11 serial S2", s11, s2, false},
				{"S12 serial S3", s12, s3, false},
				{"S11 serial S12", s11, s12, false},
				{"S11 serial S3", s11, s3, false},
			}
			for _, c := range cases {
				if got := q.Par(c.a, c.b); got != c.want {
					t.Errorf("%s: Par=%v, want %v", c.name, got, c.want)
				}
				if got := q.Par(c.b, c.a); got != c.want {
					t.Errorf("%s (swapped): Par=%v, want %v", c.name, got, c.want)
				}
			}
		})
	}
}

func TestParIsIrreflexive(t *testing.T) {
	tree, s11, s12, s2, s3 := figure2(dpst.ArrayLayout)
	q := dpst.NewQuery(tree, false)
	for _, s := range []dpst.NodeID{s11, s12, s2, s3} {
		if q.Par(s, s) {
			t.Errorf("Par(%d,%d) = true; a step is serial with itself", s, s)
		}
	}
}

func TestParNoneIsSerial(t *testing.T) {
	tree, _, _, s2, _ := figure2(dpst.ArrayLayout)
	q := dpst.NewQuery(tree, true)
	if q.Par(dpst.None, s2) || q.Par(s2, dpst.None) || q.Par(dpst.None, dpst.None) {
		t.Error("queries involving None must be serial")
	}
}

func TestNodeAccessors(t *testing.T) {
	for _, layout := range layouts() {
		tree := dpst.New(layout)
		root := tree.NewNode(dpst.None, dpst.Finish, 7)
		a := tree.NewNode(root, dpst.Async, 7)
		s := tree.NewNode(a, dpst.Step, 8)
		s2 := tree.NewNode(root, dpst.Step, 7)
		if tree.Parent(root) != dpst.None {
			t.Errorf("%v: root parent = %d", layout, tree.Parent(root))
		}
		if tree.Parent(s) != a || tree.Parent(a) != root {
			t.Errorf("%v: wrong parents", layout)
		}
		if tree.Depth(root) != 0 || tree.Depth(a) != 1 || tree.Depth(s) != 2 {
			t.Errorf("%v: wrong depths", layout)
		}
		if tree.Rank(a) != 0 || tree.Rank(s2) != 1 {
			t.Errorf("%v: wrong ranks: %d %d", layout, tree.Rank(a), tree.Rank(s2))
		}
		if tree.Kind(root) != dpst.Finish || tree.Kind(a) != dpst.Async || tree.Kind(s) != dpst.Step {
			t.Errorf("%v: wrong kinds", layout)
		}
		if tree.Task(s) != 8 || tree.Task(a) != 7 {
			t.Errorf("%v: wrong tasks", layout)
		}
		if tree.Len() != 4 {
			t.Errorf("%v: Len = %d, want 4", layout, tree.Len())
		}
	}
}

func TestLeftOf(t *testing.T) {
	tree, s11, s12, s2, s3 := figure2(dpst.ArrayLayout)
	cases := []struct {
		a, b dpst.NodeID
		want bool
	}{
		{s11, s12, true},
		{s12, s11, false},
		{s11, s2, true},
		{s2, s12, true},
		{s12, s3, true},
		{s2, s3, true},
		{s3, s2, false},
		{s2, s2, false},
	}
	for _, c := range cases {
		if got := dpst.LeftOf(tree, c.a, c.b); got != c.want {
			t.Errorf("LeftOf(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLCAStats(t *testing.T) {
	tree, _, s12, s2, s3 := figure2(dpst.ArrayLayout)
	q := dpst.NewQuery(tree, true)
	q.Par(s2, s12)
	q.Par(s12, s2) // same pair, must hit the cache
	q.Par(s2, s3)
	st := q.Stats()
	if st.LCAQueries != 3 {
		t.Errorf("LCAQueries = %d, want 3", st.LCAQueries)
	}
	if st.UniqueLCAs != 2 {
		t.Errorf("UniqueLCAs = %d, want 2", st.UniqueLCAs)
	}
	if st.Nodes != 8 {
		t.Errorf("Nodes = %d, want 8", st.Nodes)
	}
	if got := st.UniqueFraction(); got < 66 || got > 67 {
		t.Errorf("UniqueFraction = %f, want ~66.7", got)
	}
	if (dpst.Stats{}).UniqueFraction() != 0 {
		t.Error("UniqueFraction of empty stats must be 0")
	}
}

func TestUncachedQueryCountsAllAsUnique(t *testing.T) {
	tree, _, s12, s2, _ := figure2(dpst.ArrayLayout)
	q := dpst.NewQuery(tree, false)
	q.Par(s2, s12)
	q.Par(s2, s12)
	st := q.Stats()
	if st.LCAQueries != 2 || st.UniqueLCAs != 2 {
		t.Errorf("stats = %+v, want 2 queries, 2 unique", st)
	}
}

// TestParMatchesOracle cross-checks DPST Par answers against fork-join
// DAG reachability on random structured programs, for both layouts.
func TestParMatchesOracle(t *testing.T) {
	for _, layout := range layouts() {
		layout := layout
		t.Run(layout.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			for trial := 0; trial < 200; trial++ {
				p := sptest.Random(r, sptest.GenConfig{
					MaxItems: 4, MaxDepth: 4, MaxSteps: 25,
				})
				built := sptest.Build(layout, p)
				q := dpst.NewQuery(built.Tree, trial%2 == 0)
				steps := p.Steps()
				for i := range steps {
					for j := range steps {
						a, b := steps[i].ID, steps[j].ID
						got := q.Par(built.Steps[a], built.Steps[b])
						want := built.Parallel(a, b)
						if got != want {
							t.Fatalf("trial %d: Par(step %d, step %d) = %v, oracle says %v",
								trial, a, b, got, want)
						}
					}
				}
			}
		})
	}
}

// TestLayoutsAgree verifies the two layouts produce identical relations
// on identical programs.
func TestLayoutsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		p := sptest.Random(r, sptest.GenConfig{MaxItems: 5, MaxDepth: 3, MaxSteps: 20})
		ba := sptest.Build(dpst.ArrayLayout, p)
		bl := sptest.Build(dpst.LinkedLayout, p)
		qa := dpst.NewQuery(ba.Tree, true)
		ql := dpst.NewQuery(bl.Tree, true)
		steps := p.Steps()
		for i := range steps {
			for j := range steps {
				a, b := steps[i].ID, steps[j].ID
				if qa.Par(ba.Steps[a], ba.Steps[b]) != ql.Par(bl.Steps[a], bl.Steps[b]) {
					t.Fatalf("trial %d: layouts disagree on steps %d,%d", trial, a, b)
				}
			}
		}
		if ba.Tree.Len() != bl.Tree.Len() {
			t.Fatalf("trial %d: node counts differ: %d vs %d", trial, ba.Tree.Len(), bl.Tree.Len())
		}
	}
}

// TestParPropertySymmetric is a quick-check property: Par is symmetric
// on random programs.
func TestParPropertySymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := sptest.Random(r, sptest.GenConfig{MaxItems: 4, MaxDepth: 3, MaxSteps: 15})
		b := sptest.Build(dpst.ArrayLayout, p)
		q := dpst.NewQuery(b.Tree, true)
		steps := p.Steps()
		for i := range steps {
			for j := range steps {
				na, nb := b.Steps[steps[i].ID], b.Steps[steps[j].ID]
				if q.Par(na, nb) != q.Par(nb, na) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSameTaskStepsSerial: steps executed by the same task are never
// parallel.
func TestSameTaskStepsSerial(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := sptest.Random(r, sptest.GenConfig{MaxItems: 4, MaxDepth: 3, MaxSteps: 20})
		b := sptest.Build(dpst.ArrayLayout, p)
		q := dpst.NewQuery(b.Tree, true)
		steps := p.Steps()
		for i := range steps {
			for j := range steps {
				a, c := steps[i].ID, steps[j].ID
				if b.TaskOf[a] == b.TaskOf[c] && q.Par(b.Steps[a], b.Steps[c]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentConstruction stresses concurrent NewNode calls under
// distinct parents (the single-writer-per-parent discipline the
// scheduler guarantees) together with concurrent Par queries.
func TestConcurrentConstruction(t *testing.T) {
	for _, layout := range layouts() {
		layout := layout
		t.Run(layout.String(), func(t *testing.T) {
			tree := dpst.New(layout)
			root := tree.NewNode(dpst.None, dpst.Finish, 0)
			const workers = 8
			asyncs := make([]dpst.NodeID, workers)
			for i := range asyncs {
				asyncs[i] = tree.NewNode(root, dpst.Async, 0)
			}
			var wg sync.WaitGroup
			firstSteps := make([]dpst.NodeID, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					var last dpst.NodeID = dpst.None
					for i := 0; i < 2000; i++ {
						last = tree.NewNode(asyncs[w], dpst.Step, int32(w+1))
						if i == 0 {
							firstSteps[w] = last
						}
					}
				}(w)
			}
			wg.Wait()
			if tree.Len() != 1+workers+workers*2000 {
				t.Fatalf("Len = %d", tree.Len())
			}
			q := dpst.NewQuery(tree, true)
			for i := 0; i < workers; i++ {
				for j := i + 1; j < workers; j++ {
					if !q.Par(firstSteps[i], firstSteps[j]) {
						t.Errorf("steps under distinct asyncs must be parallel (%d,%d)", i, j)
					}
				}
			}
		})
	}
}

func TestKindAndLayoutStrings(t *testing.T) {
	if dpst.Step.String() != "step" || dpst.Async.String() != "async" || dpst.Finish.String() != "finish" {
		t.Error("unexpected Kind strings")
	}
	if dpst.ArrayLayout.String() != "array-DPST" || dpst.LinkedLayout.String() != "linked-DPST" {
		t.Error("unexpected Layout strings")
	}
	if dpst.Kind(9).String() == "" || dpst.Layout(9).String() == "" {
		t.Error("out-of-range strings must be non-empty")
	}
}
