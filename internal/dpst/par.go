package dpst

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/taskpar/avd/internal/chaos"
)

// Stats aggregates the DPST measurements reported in Table 1 of the
// paper: the number of nodes in the tree, the number of least common
// ancestor queries issued by the checker, and how many of those queries
// were unique (i.e., missed the LCA cache). Unique counts are only
// meaningful in the walk-based modes; the label mode consults no cache,
// so every query costs the same and UniqueLCAs stays 0.
type Stats struct {
	Nodes      int
	LCAQueries int64
	UniqueLCAs int64
}

// UniqueFraction returns the percentage of LCA queries that were unique,
// or 0 when no queries were performed (reported as "-NA-" in the paper).
func (s Stats) UniqueFraction() float64 {
	if s.LCAQueries == 0 {
		return 0
	}
	return 100 * float64(s.UniqueLCAs) / float64(s.LCAQueries)
}

const lcaShards = 256

// lcaShard is one bucket of the LCA result cache: a read-mostly map
// under an RWMutex. Plain maps avoid the per-entry boxing allocations a
// sync.Map would pay on this write-once workload.
type lcaShard struct {
	mu sync.RWMutex
	m  map[uint64]bool
}

// counterStripe is a cache-line padded counter cell; striping the query
// counter avoids cross-core ping-pong on the hottest instrumentation
// increment.
type counterStripe struct {
	n atomic.Int64
	_ [56]byte
}

// QueryMode selects the mechanism answering may-happen-in-parallel
// queries; the modes are observationally equivalent (asserted by the
// differential tests in labels_test.go) and differ only in cost model.
type QueryMode uint8

// Available query modes.
const (
	// ModeLabels answers Par and PairDepth by comparing the two nodes'
	// path labels up to their first divergence: O(LCA depth), no shared
	// mutable state, no locks. The default.
	ModeLabels QueryMode = iota
	// ModeCachedWalk performs the LCA tree walk and memoizes results in
	// a 256-way sharded map — the paper's Section 4 configuration, kept
	// as a selectable ablation (and for faithful Table 1 uniqueness
	// statistics).
	ModeCachedWalk
	// ModeWalk recomputes the tree walk on every query, isolating the
	// raw traversal cost for the Figure 14 ablation.
	ModeWalk
)

// String names the query mode as used in the harness configurations.
func (m QueryMode) String() string {
	switch m {
	case ModeLabels:
		return "labels"
	case ModeCachedWalk:
		return "cached-walk"
	default:
		return "walk"
	}
}

// Query answers may-happen-in-parallel (DMHP) queries over a DPST. In
// the default label mode each query is a lock-free label comparison; the
// walk modes reproduce the paper's LCA traversal with and without the
// sharded memoization cache (Section 4). A Query is safe for concurrent
// use.
type Query struct {
	tree       Tree
	mode       QueryMode
	gate       *chaos.Gate
	stripeMask uint64
	queries    []counterStripe
	unique     atomic.Int64
	shards     [lcaShards]lcaShard
}

// lcaEntryBytes estimates the tracked cost of one memoized LCA result
// (map key, value, and amortized bucket overhead).
const lcaEntryBytes = 48

// SetGate attaches an allocation gate to the LCA cache: once the gate
// refuses, results are still computed but no longer memoized, so a
// saturated cache degrades to recomputation instead of growing. Queries
// refused insertion recount as unique if recomputed.
func (q *Query) SetGate(g *chaos.Gate) { q.gate = g }

// NewQuery returns a walk-based Query over tree, preserving the historic
// two-state constructor: caching selects ModeCachedWalk, otherwise every
// query recomputes the tree walk (ModeWalk).
func NewQuery(tree Tree, caching bool) *Query {
	if caching {
		return NewQueryMode(tree, ModeCachedWalk)
	}
	return NewQueryMode(tree, ModeWalk)
}

// NewQueryMode returns a Query over tree answering in the given mode.
func NewQueryMode(tree Tree, mode QueryMode) *Query {
	q := &Query{tree: tree, mode: mode}
	// Size the counter stripes to a power of two covering the worker
	// count (clamped to [8, 32]) so concurrent increments spread across
	// cache lines even on wide machines.
	n := 8
	for n < runtime.GOMAXPROCS(0) && n < 32 {
		n <<= 1
	}
	q.queries = make([]counterStripe, n)
	q.stripeMask = uint64(n - 1)
	for i := range q.shards {
		q.shards[i].m = make(map[uint64]bool)
	}
	return q
}

// PairDepth returns the depth of LCA(a, b). In label mode it falls out
// of the same label comparison that answers Par; the walk modes traverse
// the tree. It supports the spanning-pair replacement rule and is not
// counted as an LCA query in the Table 1 statistics.
func (q *Query) PairDepth(a, b NodeID) int32 {
	if a == None || b == None {
		return 0
	}
	if q.mode == ModeLabels {
		_, d := ParLabels(q.tree, a, b)
		return d
	}
	return LCADepth(q.tree, a, b)
}

// Tree returns the underlying DPST.
func (q *Query) Tree() Tree { return q.tree }

// Mode returns the query-answering mode.
func (q *Query) Mode() QueryMode { return q.mode }

// Caching reports whether LCA results are memoized in the shared cache;
// callers layering their own caches should bypass them otherwise (in
// label mode a query is cheaper than a front-cache map hit).
func (q *Query) Caching() bool { return q.mode == ModeCachedWalk }

// CountQuery records an LCA query that was answered from a caller-side
// cache layer, keeping the Table 1 query statistics faithful.
func (q *Query) CountQuery(a, b NodeID) {
	q.queries[mix64(pairKey(a, b))&q.stripeMask].n.Add(1)
}

// PairKey returns the canonical cache key of an unordered node pair.
func PairKey(a, b NodeID) uint64 { return pairKey(a, b) }

// Stats returns a snapshot of the node and query counters.
func (q *Query) Stats() Stats {
	var total int64
	for i := range q.queries {
		total += q.queries[i].n.Load()
	}
	return Stats{
		Nodes:      q.tree.Len(),
		LCAQueries: total,
		UniqueLCAs: q.unique.Load(),
	}
}

func pairKey(a, b NodeID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// mix64 is the splitmix64 finalizer: a full-avalanche mix so that hot
// symmetric pairs (whose raw keys share low bits) spread across counter
// stripes instead of colliding on one cache line.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Par reports whether the two step nodes can logically execute in
// parallel in some schedule of the recorded execution. Identical nodes
// and ancestor/descendant pairs are serial by definition.
func (q *Query) Par(a, b NodeID) bool {
	if a == b || a == None || b == None {
		return false
	}
	q.CountQuery(a, b)
	switch q.mode {
	case ModeLabels:
		par, _ := ParLabels(q.tree, a, b)
		return par
	case ModeWalk:
		q.unique.Add(1)
		return ComputePar(q.tree, a, b)
	}
	key := pairKey(a, b)
	shard := &q.shards[key%lcaShards]
	shard.mu.RLock()
	r, ok := shard.m[key]
	shard.mu.RUnlock()
	if ok {
		return r
	}
	r = ComputePar(q.tree, a, b)
	shard.mu.Lock()
	if _, dup := shard.m[key]; !dup {
		if q.gate.Allow(chaos.SiteLCACache, lcaEntryBytes) {
			shard.m[key] = r
			q.unique.Add(1)
		}
	}
	shard.mu.Unlock()
	return r
}

// ComputePar performs the uncached DMHP tree walk: it locates the least
// common ancestor of a and b and the two children of the LCA on the paths
// to a and b, and reports parallelism iff the left such child (the one
// with the smaller sibling rank) is an async node. It is the differential
// oracle for ParLabels.
func ComputePar(t Tree, a, b NodeID) bool {
	if a == b {
		return false
	}
	pa, pb := a, b
	for t.Depth(pa) > t.Depth(pb) {
		pa = t.Parent(pa)
	}
	for t.Depth(pb) > t.Depth(pa) {
		pb = t.Parent(pb)
	}
	if pa == pb {
		// One node is an ancestor of the other; they are ordered.
		return false
	}
	for t.Parent(pa) != t.Parent(pb) {
		pa = t.Parent(pa)
		pb = t.Parent(pb)
	}
	left := pa
	if t.Rank(pb) < t.Rank(pa) {
		left = pb
	}
	return t.Kind(left) == Async
}

// LCADepth returns the depth of the least common ancestor of a and b
// (the root has depth 0). It is used by the checker's spanning-pair
// replacement rule: among three mutually parallel steps, the pair with
// the shallowest LCA covers the widest range of future parallel steps.
func LCADepth(t Tree, a, b NodeID) int32 {
	if a == b {
		return t.Depth(a)
	}
	pa, pb := a, b
	for t.Depth(pa) > t.Depth(pb) {
		pa = t.Parent(pa)
	}
	for t.Depth(pb) > t.Depth(pa) {
		pb = t.Parent(pb)
	}
	for pa != pb {
		pa = t.Parent(pa)
		pb = t.Parent(pb)
	}
	return t.Depth(pa)
}

// LeftOf reports whether step a precedes step b in the left-to-right
// ordering of the DPST, i.e. whether a's subtree is to the left of b's at
// their least common ancestor. Nodes equal to each other or on the same
// root path are ordered by depth (the ancestor is "left").
func LeftOf(t Tree, a, b NodeID) bool {
	if a == b {
		return false
	}
	pa, pb := a, b
	for t.Depth(pa) > t.Depth(pb) {
		pa = t.Parent(pa)
	}
	for t.Depth(pb) > t.Depth(pa) {
		pb = t.Parent(pb)
	}
	if pa == pb {
		return t.Depth(a) < t.Depth(b)
	}
	for t.Parent(pa) != t.Parent(pb) {
		pa = t.Parent(pa)
		pb = t.Parent(pb)
	}
	return t.Rank(pa) < t.Rank(pb)
}
