package dpst

import (
	"sync"
	"sync/atomic"
)

// Stats aggregates the DPST measurements reported in Table 1 of the
// paper: the number of nodes in the tree, the number of least common
// ancestor queries issued by the checker, and how many of those queries
// were unique (i.e., missed the LCA cache).
type Stats struct {
	Nodes      int
	LCAQueries int64
	UniqueLCAs int64
}

// UniqueFraction returns the percentage of LCA queries that were unique,
// or 0 when no queries were performed (reported as "-NA-" in the paper).
func (s Stats) UniqueFraction() float64 {
	if s.LCAQueries == 0 {
		return 0
	}
	return 100 * float64(s.UniqueLCAs) / float64(s.LCAQueries)
}

const lcaShards = 256

// lcaShard is one bucket of the LCA result cache: a read-mostly map
// under an RWMutex. Plain maps avoid the per-entry boxing allocations a
// sync.Map would pay on this write-once workload.
type lcaShard struct {
	mu sync.RWMutex
	m  map[uint64]bool
}

// counterStripe is a cache-line padded counter cell; striping the query
// counter avoids cross-core ping-pong on the hottest instrumentation
// increment.
type counterStripe struct {
	n atomic.Int64
	_ [56]byte
}

// Query answers may-happen-in-parallel (DMHP) queries over a DPST and
// memoizes LCA results, the caching optimization described in Section 4
// of the paper. A Query is safe for concurrent use.
type Query struct {
	tree    Tree
	caching bool
	queries [8]counterStripe
	unique  atomic.Int64
	shards  [lcaShards]lcaShard
}

// NewQuery returns a Query over tree. When caching is false every query
// recomputes the tree walk, which isolates the cost of LCA traversals for
// the ablation experiments.
func NewQuery(tree Tree, caching bool) *Query {
	q := &Query{tree: tree, caching: caching}
	for i := range q.shards {
		q.shards[i].m = make(map[uint64]bool)
	}
	return q
}

// PairDepth returns the depth of LCA(a, b). The walk is allocation-free
// and roughly as cheap as a cache lookup, so it is computed directly; it
// supports the spanning-pair replacement rule and is not counted as an
// LCA query in the Table 1 statistics.
func (q *Query) PairDepth(a, b NodeID) int32 {
	if a == None || b == None {
		return 0
	}
	return LCADepth(q.tree, a, b)
}

// Tree returns the underlying DPST.
func (q *Query) Tree() Tree { return q.tree }

// Caching reports whether LCA results are memoized; callers layering
// their own caches should bypass them when this is false.
func (q *Query) Caching() bool { return q.caching }

// CountQuery records an LCA query that was answered from a caller-side
// cache layer, keeping the Table 1 query statistics faithful.
func (q *Query) CountQuery(a, b NodeID) {
	q.queries[uint64(a^b)%8].n.Add(1)
}

// PairKey returns the canonical cache key of an unordered node pair.
func PairKey(a, b NodeID) uint64 { return pairKey(a, b) }

// Stats returns a snapshot of the node and query counters.
func (q *Query) Stats() Stats {
	var total int64
	for i := range q.queries {
		total += q.queries[i].n.Load()
	}
	return Stats{
		Nodes:      q.tree.Len(),
		LCAQueries: total,
		UniqueLCAs: q.unique.Load(),
	}
}

func pairKey(a, b NodeID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// Par reports whether the two step nodes can logically execute in
// parallel in some schedule of the recorded execution. Identical nodes
// and ancestor/descendant pairs are serial by definition.
func (q *Query) Par(a, b NodeID) bool {
	if a == b || a == None || b == None {
		return false
	}
	q.queries[uint64(a^b)%8].n.Add(1)
	if !q.caching {
		q.unique.Add(1)
		return ComputePar(q.tree, a, b)
	}
	key := pairKey(a, b)
	shard := &q.shards[key%lcaShards]
	shard.mu.RLock()
	r, ok := shard.m[key]
	shard.mu.RUnlock()
	if ok {
		return r
	}
	r = ComputePar(q.tree, a, b)
	shard.mu.Lock()
	if _, dup := shard.m[key]; !dup {
		shard.m[key] = r
		q.unique.Add(1)
	}
	shard.mu.Unlock()
	return r
}

// ComputePar performs the uncached DMHP tree walk: it locates the least
// common ancestor of a and b and the two children of the LCA on the paths
// to a and b, and reports parallelism iff the left such child (the one
// with the smaller sibling rank) is an async node.
func ComputePar(t Tree, a, b NodeID) bool {
	if a == b {
		return false
	}
	pa, pb := a, b
	for t.Depth(pa) > t.Depth(pb) {
		pa = t.Parent(pa)
	}
	for t.Depth(pb) > t.Depth(pa) {
		pb = t.Parent(pb)
	}
	if pa == pb {
		// One node is an ancestor of the other; they are ordered.
		return false
	}
	for t.Parent(pa) != t.Parent(pb) {
		pa = t.Parent(pa)
		pb = t.Parent(pb)
	}
	left := pa
	if t.Rank(pb) < t.Rank(pa) {
		left = pb
	}
	return t.Kind(left) == Async
}

// LCADepth returns the depth of the least common ancestor of a and b
// (the root has depth 0). It is used by the checker's spanning-pair
// replacement rule: among three mutually parallel steps, the pair with
// the shallowest LCA covers the widest range of future parallel steps.
func LCADepth(t Tree, a, b NodeID) int32 {
	if a == b {
		return t.Depth(a)
	}
	pa, pb := a, b
	for t.Depth(pa) > t.Depth(pb) {
		pa = t.Parent(pa)
	}
	for t.Depth(pb) > t.Depth(pa) {
		pb = t.Parent(pb)
	}
	for pa != pb {
		pa = t.Parent(pa)
		pb = t.Parent(pb)
	}
	return t.Depth(pa)
}

// LeftOf reports whether step a precedes step b in the left-to-right
// ordering of the DPST, i.e. whether a's subtree is to the left of b's at
// their least common ancestor. Nodes equal to each other or on the same
// root path are ordered by depth (the ancestor is "left").
func LeftOf(t Tree, a, b NodeID) bool {
	if a == b {
		return false
	}
	pa, pb := a, b
	for t.Depth(pa) > t.Depth(pb) {
		pa = t.Parent(pa)
	}
	for t.Depth(pb) > t.Depth(pa) {
		pb = t.Parent(pb)
	}
	if pa == pb {
		return t.Depth(a) < t.Depth(b)
	}
	for t.Parent(pa) != t.Parent(pb) {
		pa = t.Parent(pa)
		pb = t.Parent(pb)
	}
	return t.Rank(pa) < t.Rank(pb)
}
