package dpst

import (
	"sync"

	"github.com/taskpar/avd/internal/chaos"
)

// Path labels give every DPST node a compact encoding of its root path so
// that may-happen-in-parallel and LCA depth are answered by comparing two
// arrays up to their first divergence — no parent chasing, no shared
// cache, no synchronization on the query path. The scheme follows DePa
// (Westrick et al., PPoPP 2022), which shows fork-join MHP is decidable
// from per-node path labels alone, specialized here to the DPST's
// three-kind ordered tree.
//
// A node at depth d carries a label of d packed uint32 components; the
// j-th component describes the path node at depth j+1: its sibling rank
// in the upper 30 bits and its Kind in the low 2 bits. Because siblings
// have distinct ranks, the first index at which two labels differ is
// exactly the depth of their least common ancestor, and the two differing
// components are the LCA's children on the two paths — rank order picks
// the left child and the packed kind tells whether it is an async node,
// which is the entire DMHP criterion. One array scan therefore answers
// Par and LCA depth together in O(LCA depth) with zero shared state.
//
// Labels are immutable once published. Each child label is the parent's
// label plus one component, copied into storage carved from per-shard
// bump-allocated chunks: label construction costs one short lock on a
// shard chosen by the creating task (node creation is per-task, so
// contention is rare) and no per-node heap allocation in steady state.

const (
	// labelKindBits is the width of the Kind field in a packed component.
	labelKindBits = 2
	labelKindMask = 1<<labelKindBits - 1

	// labelArenaShards spreads label allocation across independently
	// locked bump arenas; tasks hash onto shards by ID.
	labelArenaShards = 32

	// labelChunkWords is the allocation unit of a label arena shard.
	labelChunkWords = 1 << 14
)

// labelComponent packs a node's sibling rank and kind into one uint32.
// Callers guarantee the rank fits (extend degrades beforehand otherwise).
func labelComponent(rank int32, kind Kind) uint32 {
	return uint32(rank)<<labelKindBits | uint32(kind)
}

// degradedComponent marks a label that could not be materialized — its
// kind bits hold 3, a value labelComponent can never produce (Kind is
// Finish/Async/Step). A node carrying the shared degradedLabel answers
// MHP queries through the tree walk instead of label comparison; see
// ParLabels. Degradation is sticky: every descendant of a degraded node
// is degraded too, since its own label could not be derived.
const degradedComponent = ^uint32(0)

// degradedLabel is the shared sentinel label of degraded nodes.
var degradedLabel = []uint32{degradedComponent}

// labelDegraded reports whether a label is the degradation sentinel. The
// root's nil label is not degraded.
func labelDegraded(label []uint32) bool {
	return len(label) > 0 && label[0] == degradedComponent
}

// labelShard is one independently locked bump allocator for label
// storage, padded to a cache line so shard locks do not false-share.
type labelShard struct {
	mu  sync.Mutex
	buf []uint32
	_   [64 - 8 - 24]byte
}

// labelArena hands out immutable label slices from per-shard chunks. An
// optional gate arbitrates fresh chunk carving against the memory
// budget; a refused chunk degrades the node's label to the sentinel
// instead of failing node creation.
type labelArena struct {
	shards [labelArenaShards]labelShard
	gate   *chaos.Gate
}

// extend returns parent's label with one component (rank, kind)
// appended, in freshly carved storage owned by the new node. The copy
// happens outside the shard lock: the carved region is exclusively the
// caller's once the cursor moved. Extension degrades to the sentinel
// label when the parent is already degraded, the sibling rank exceeds
// the packed-component capacity, or the gate refuses a fresh arena
// chunk.
func (a *labelArena) extend(task int32, parent []uint32, rank int32, kind Kind) []uint32 {
	if labelDegraded(parent) || uint32(rank) >= 1<<(32-labelKindBits) {
		return degradedLabel
	}
	n := len(parent) + 1
	sh := &a.shards[uint32(task)&(labelArenaShards-1)]
	sh.mu.Lock()
	if len(sh.buf) < n {
		size := labelChunkWords
		if size < n {
			size = n
		}
		if !a.gate.Allow(chaos.SiteLabelArena, int64(size)*4) {
			sh.mu.Unlock()
			return degradedLabel
		}
		sh.buf = make([]uint32, size)
	}
	lab := sh.buf[:n:n]
	sh.buf = sh.buf[n:]
	sh.mu.Unlock()
	copy(lab, parent)
	lab[n-1] = labelComponent(rank, kind)
	return lab
}

// ParLabels answers the DMHP query and the LCA depth of a and b in one
// pass over their path labels: the nodes may happen in parallel iff the
// left child of their least common ancestor on the two paths is an async
// node. When one node is the other (or an ancestor of the other) the pair
// is serial and the LCA depth is the shallower node's depth. ParLabels is
// equivalent to ComputePar plus LCADepth (the tree-walk oracle, kept for
// differential testing) but touches no shared mutable state.
func ParLabels(t Tree, a, b NodeID) (parallel bool, lcaDepth int32) {
	la, lb := t.Label(a), t.Label(b)
	if labelDegraded(la) || labelDegraded(lb) {
		// One of the labels was shed under memory pressure (or an
		// injected allocation failure); fall back to the tree walk, which
		// needs no per-node metadata beyond the structure itself.
		return ComputePar(t, a, b), LCADepth(t, a, b)
	}
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if ca, cb := la[i], lb[i]; ca != cb {
			left := ca
			if cb>>labelKindBits < ca>>labelKindBits {
				left = cb
			}
			return Kind(left&labelKindMask) == Async, int32(i)
		}
	}
	return false, int32(n)
}
