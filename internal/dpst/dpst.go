// Package dpst implements the Dynamic Program Structure Tree (DPST) of
// Raman et al. (SPD3, PLDI 2012), the execution representation used by the
// CGO 2016 atomicity-violation checker to decide whether two step nodes of
// a task parallel execution may logically happen in parallel.
//
// A DPST is an ordered tree with three node kinds:
//
//   - Step nodes are maximal instruction sequences without task management
//     constructs. All memory accesses belong to a step node. Steps are
//     always leaves.
//   - Async nodes capture task spawns; the spawned task's subtree lives
//     under the async node and executes asynchronously with the remainder
//     of the parent task.
//   - Finish nodes capture task-join scopes; a finish node is the parent
//     of everything directly executed inside the scope, and the scope's
//     continuation only runs after all descendants complete.
//
// Siblings are ordered left to right in program order of the parent task.
// Two distinct step nodes S1 (left) and S2 are logically parallel iff the
// child of LCA(S1, S2) that is an ancestor of S1 is an async node.
//
// The package provides two layouts of the same structure, matching the
// paper's implementation ablation (Figure 14): ArrayTree overlays nodes in
// chunked linear arrays with integer parent indices (the optimized layout)
// and LinkedTree allocates every node separately and chases pointers (the
// baseline layout). Par queries, LCA caching, and query statistics live in
// Query and work with either layout.
package dpst

import "fmt"

// Kind identifies the role of a DPST node.
type Kind uint8

// The three DPST node kinds.
const (
	Step Kind = iota
	Async
	Finish
)

// String returns the conventional one-letter-prefixed node kind name.
func (k Kind) String() string {
	switch k {
	case Step:
		return "step"
	case Async:
		return "async"
	case Finish:
		return "finish"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// NodeID names a node within one Tree. IDs are dense, allocated in
// creation order, and never reused.
type NodeID int32

// None is the absent node: the parent of the root and the zero context.
const None NodeID = -1

// Tree is the interface shared by the array and linked DPST layouts.
//
// NewNode is safe for concurrent use by multiple tasks provided each
// parent's children are appended by a single task at a time, which the
// DPST construction rules guarantee: the children of a finish node are
// appended only by the task executing the scope, and the children of an
// async node only by the spawned task. All read accessors are safe for
// unsynchronized concurrent use on published nodes.
type Tree interface {
	// NewNode appends a node of the given kind under parent (None for the
	// root) on behalf of task and returns its ID.
	NewNode(parent NodeID, kind Kind, task int32) NodeID
	// Parent returns the parent of id, or None for the root.
	Parent(id NodeID) NodeID
	// Kind returns the node kind of id.
	Kind(id NodeID) Kind
	// Depth returns the distance from the root (root depth is 0).
	Depth(id NodeID) int32
	// Rank returns the index of id among its siblings, left to right.
	Rank(id NodeID) int32
	// Task returns the ID of the task that created id.
	Task(id NodeID) int32
	// Label returns the node's path label: one packed (rank, kind)
	// component per root-path edge, stamped at creation (see labels.go).
	// The returned slice is immutable and safe for concurrent reads.
	Label(id NodeID) []uint32
	// Len returns the number of nodes created so far.
	Len() int
}

// Layout selects a Tree implementation.
type Layout uint8

// Available tree layouts.
const (
	// ArrayLayout stores nodes by value in chunked linear arrays with
	// integer parent indices (the paper's optimized layout).
	ArrayLayout Layout = iota
	// LinkedLayout allocates each node separately and follows pointers
	// (the paper's baseline layout for the Figure 14 ablation).
	LinkedLayout
)

// String returns the layout name as used in the paper's figures.
func (l Layout) String() string {
	switch l {
	case ArrayLayout:
		return "array-DPST"
	case LinkedLayout:
		return "linked-DPST"
	default:
		return fmt.Sprintf("layout(%d)", uint8(l))
	}
}

// New returns an empty tree of the requested layout.
func New(l Layout) Tree {
	switch l {
	case LinkedLayout:
		return NewLinkedTree()
	default:
		return NewArrayTree()
	}
}
