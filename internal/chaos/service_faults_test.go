package chaos

import "testing"

// TestCrashWorkerDeterministic: the worker-crash stream is a pure
// function of (seed, run, attempt) — two planes with the same seed
// agree on every decision, and a different seed diverges somewhere.
func TestCrashWorkerDeterministic(t *testing.T) {
	a := New(Config{Seed: 9, WorkerCrashProb: 0.5})
	b := New(Config{Seed: 9, WorkerCrashProb: 0.5})
	c := New(Config{Seed: 10, WorkerCrashProb: 0.5})
	diverged := false
	for run := int64(1); run <= 64; run++ {
		for attempt := 1; attempt <= 4; attempt++ {
			if a.CrashWorker(run, attempt) != b.CrashWorker(run, attempt) {
				t.Fatalf("same seed diverged at run %d attempt %d", run, attempt)
			}
			if a.CrashWorker(run, attempt) != c.CrashWorker(run, attempt) {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatalf("seeds 9 and 10 agree on all 256 crash decisions")
	}
	if a.Stats().WorkerCrashes == 0 {
		t.Fatalf("p=0.5 injected no crashes over 512 draws")
	}
}

// TestCrashWorkerFreshDrawPerAttempt: at p<1, a run that crashed on one
// attempt must not be doomed on all of them — some run in the window
// crashes first and then passes, so retries can converge.
func TestCrashWorkerFreshDrawPerAttempt(t *testing.T) {
	p := New(Config{Seed: 1, WorkerCrashProb: 0.5})
	recovered := false
	for run := int64(1); run <= 128; run++ {
		if p.CrashWorker(run, 1) && !p.CrashWorker(run, 2) {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("no run recovered on its second attempt at p=0.5")
	}
}

// TestCrashWorkerExtremes: p=1 always crashes, p=0 (and the nil plane)
// never does.
func TestCrashWorkerExtremes(t *testing.T) {
	always := New(Config{Seed: 3, WorkerCrashProb: 1})
	never := New(Config{Seed: 3, DelayProb: 0.5}) // non-nil plane, crash off
	var nilPlane *Plane
	for run := int64(1); run <= 32; run++ {
		if !always.CrashWorker(run, 1) {
			t.Fatalf("p=1 spared run %d", run)
		}
		if never.CrashWorker(run, 1) || nilPlane.CrashWorker(run, 1) {
			t.Fatalf("crash injected with the fault disabled")
		}
	}
	if nilPlane.RejectAdmit() {
		t.Fatalf("nil plane rejected an admission")
	}
}

// TestRejectAdmitOrdinalStream: admissions draw an ordinal stream — a
// fresh same-seeded plane replays the identical accept/reject sequence.
func TestRejectAdmitOrdinalStream(t *testing.T) {
	a := New(Config{Seed: 5, AdmitRejectProb: 0.5})
	b := New(Config{Seed: 5, AdmitRejectProb: 0.5})
	rejects := 0
	for i := 0; i < 256; i++ {
		ra, rb := a.RejectAdmit(), b.RejectAdmit()
		if ra != rb {
			t.Fatalf("same seed diverged at admission %d", i)
		}
		if ra {
			rejects++
		}
	}
	if rejects == 0 || rejects == 256 {
		t.Fatalf("p=0.5 rejected %d/256 admissions", rejects)
	}
	if got := a.Stats().AdmitRejects; got != int64(rejects) {
		t.Fatalf("stats counted %d rejects, saw %d", got, rejects)
	}
}
