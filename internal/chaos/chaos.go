// Package chaos is the deterministic fault-injection and resource-budget
// plane of the checker. It has two halves:
//
//   - A Plane injects scheduler- and allocator-level faults — forced
//     steals of freshly spawned tasks, bounded delays at task start,
//     task panics, and simulated allocation failures — from seeded,
//     deterministic decision streams. The perturbation tests use it to
//     assert that violation reports are schedule-stable (the property
//     RegionTrack proves analytically) and that the session lifecycle
//     survives crashing tasks.
//
//   - A Budget bounds the tracked bytes of checker metadata (shadow
//     table, metadata chunks, label arenas, LCA cache); a Gate combines
//     injected failures and the budget into a single admission decision
//     for every gated allocation site, counting what was dropped so
//     saturation is observable instead of silent.
//
// The package sits below the scheduler, checker, and DPST packages and
// imports none of them, so every layer can consult the same plane.
package chaos

import (
	"fmt"
	"sync/atomic"
)

// Site names a gated allocation site. Drop counters are kept per site so
// a saturated report can say what kind of metadata was shed.
type Site uint8

// Gated allocation sites.
const (
	// SiteShadowLeaf is a shadow-table leaf (a page of cell pointers).
	SiteShadowLeaf Site = iota
	// SiteShadowChunk is a chunk of checker metadata cells.
	SiteShadowChunk
	// SiteShadowFar is an overflow-map cell for out-of-range locations.
	SiteShadowFar
	// SiteLabelArena is a DPST path-label arena chunk.
	SiteLabelArena
	// SiteLCACache is an entry of the memoized LCA result cache.
	SiteLCACache
	numSites
)

// String names the site.
func (s Site) String() string {
	switch s {
	case SiteShadowLeaf:
		return "shadow-leaf"
	case SiteShadowChunk:
		return "shadow-chunk"
	case SiteShadowFar:
		return "shadow-far"
	case SiteLabelArena:
		return "label-arena"
	case SiteLCACache:
		return "lca-cache"
	default:
		return fmt.Sprintf("site(%d)", uint8(s))
	}
}

// Fault names an injected scheduler-level fault, for observers and
// trace overlays. Allocation denials are reported per Site instead.
type Fault uint8

// Injected fault kinds.
const (
	// FaultSteal is a forced steal: a fresh spawn diverted to the
	// overflow queue.
	FaultSteal Fault = iota + 1
	// FaultDelay is a bounded delay injected before a task starts.
	FaultDelay
	// FaultPanic is an injected task panic.
	FaultPanic
	// FaultWorkerCrash is an injected crash of a service worker mid
	// check-run (avd-serverd's retry path).
	FaultWorkerCrash
	// FaultAdmitReject is an injected admission rejection: a service
	// queue behaving as if it had overflowed.
	FaultAdmitReject
)

// String names the fault.
func (f Fault) String() string {
	switch f {
	case FaultSteal:
		return "steal"
	case FaultDelay:
		return "delay"
	case FaultPanic:
		return "panic"
	case FaultWorkerCrash:
		return "worker-crash"
	case FaultAdmitReject:
		return "admit-reject"
	default:
		return fmt.Sprintf("fault(%d)", uint8(f))
	}
}

// Config parameterizes a Plane. Probabilities are in [0, 1]; zero
// disables the corresponding fault class.
type Config struct {
	// Seed selects the deterministic decision streams.
	Seed int64
	// StealProb is the probability a freshly spawned task is diverted to
	// the scheduler's overflow queue instead of the spawner's deque, so
	// another worker picks it up — a forced steal.
	StealProb float64
	// DelayProb is the probability a task's start is delayed by a
	// bounded number of scheduling yields.
	DelayProb float64
	// MaxDelaySpins bounds one injected delay (default 64 yields).
	MaxDelaySpins int
	// PanicProb is the probability a task's body is replaced by an
	// injected panic. The root task (ID 0) is exempt so a run always
	// produces a joinable structure.
	PanicProb float64
	// AllocFailProb is the probability a gated allocation is denied.
	AllocFailProb float64
	// WorkerCrashProb is the probability a service worker crashes while
	// executing one check-run attempt (avd-serverd). The decision is
	// deterministic in (seed, run, attempt), so a crashed attempt's
	// retry draws afresh and a bounded retry loop converges.
	WorkerCrashProb float64
	// AdmitRejectProb is the probability a service admission is rejected
	// as if the queue had overflowed, exercising the client-visible
	// backpressure path without needing real overload.
	AdmitRejectProb float64
}

// InjectedPanic is the value carried by a chaos-injected task panic, so
// tests and reports can tell injected crashes from genuine ones.
type InjectedPanic struct {
	Task int32
}

// Error implements error.
func (p InjectedPanic) Error() string {
	return fmt.Sprintf("chaos: injected panic in task %d", p.Task)
}

// Plane is a deterministic, seeded fault injector. Decisions that have a
// stable identity (a task ID, a task's n-th spawn) are pure functions of
// the seed and that identity; allocation-failure decisions draw from a
// deterministic per-site stream. A nil *Plane injects nothing; every
// method is nil-receiver safe so call sites need no guards.
type Plane struct {
	seed       uint64
	stealThr   uint64
	delayThr   uint64
	panicThr   uint64
	allocThr   uint64
	crashThr   uint64
	rejectThr  uint64
	maxDelay   int
	allocSeq   [numSites]atomic.Uint64
	rejectSeq  atomic.Uint64
	steals     atomic.Int64
	delays     atomic.Int64
	panics     atomic.Int64
	allocFails atomic.Int64
	crashes    atomic.Int64
	rejects    atomic.Int64
}

// PlaneStats counts the faults a plane has injected so far.
type PlaneStats struct {
	ForcedSteals   int64
	InjectedDelays int64
	InjectedPanics int64
	FailedAllocs   int64
	WorkerCrashes  int64
	AdmitRejects   int64
}

// New creates a plane from cfg; nil is returned for the zero Config so
// an unset configuration costs nothing at the hook sites.
func New(cfg Config) *Plane {
	if cfg.StealProb == 0 && cfg.DelayProb == 0 && cfg.PanicProb == 0 &&
		cfg.AllocFailProb == 0 && cfg.WorkerCrashProb == 0 && cfg.AdmitRejectProb == 0 {
		return nil
	}
	maxDelay := cfg.MaxDelaySpins
	if maxDelay <= 0 {
		maxDelay = 64
	}
	return &Plane{
		seed:      mix(uint64(cfg.Seed) ^ 0x9e3779b97f4a7c15),
		stealThr:  threshold(cfg.StealProb),
		delayThr:  threshold(cfg.DelayProb),
		panicThr:  threshold(cfg.PanicProb),
		allocThr:  threshold(cfg.AllocFailProb),
		crashThr:  threshold(cfg.WorkerCrashProb),
		rejectThr: threshold(cfg.AdmitRejectProb),
		maxDelay:  maxDelay,
	}
}

// threshold converts a probability to a uint64 compare threshold.
func threshold(p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return ^uint64(0)
	default:
		return uint64(p * float64(1<<63) * 2)
	}
}

// mix is the splitmix64 finalizer, the full-avalanche hash behind every
// decision stream.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (p *Plane) decide(salt, ident uint64, thr uint64) bool {
	if thr == 0 {
		return false
	}
	return mix(p.seed^salt^ident) < thr
}

// Decision-stream salts, arbitrary distinct constants.
const (
	saltSteal  uint64 = 0x5354454154
	saltDelay  uint64 = 0x44454c4159
	saltPanic  uint64 = 0x50414e4943
	saltAlloc  uint64 = 0x414c4c4f43
	saltCrash  uint64 = 0x4352415348
	saltReject uint64 = 0x52454a4354
)

// ForceSteal decides whether the seq-th spawn of the given task is
// diverted to the overflow queue. Deterministic in (seed, task, seq).
func (p *Plane) ForceSteal(task, seq int32) bool {
	if p == nil {
		return false
	}
	if p.decide(saltSteal, uint64(uint32(task))<<32|uint64(uint32(seq)), p.stealThr) {
		p.steals.Add(1)
		return true
	}
	return false
}

// DelaySpins returns how many scheduling yields to inject before the
// given task starts (0 for none). Deterministic in (seed, task).
func (p *Plane) DelaySpins(task int32) int {
	if p == nil {
		return 0
	}
	h := mix(p.seed ^ saltDelay ^ uint64(uint32(task)))
	if p.delayThr == 0 || h >= p.delayThr {
		return 0
	}
	p.delays.Add(1)
	return 1 + int(mix(h)%uint64(p.maxDelay))
}

// PanicTask decides whether the given task's body is replaced with an
// injected panic. Pure in (seed, task); the root task is exempt.
func (p *Plane) PanicTask(task int32) bool {
	if p == nil || task == 0 {
		return false
	}
	if p.decide(saltPanic, uint64(uint32(task)), p.panicThr) {
		p.panics.Add(1)
		return true
	}
	return false
}

// AllocFail decides whether the next gated allocation at site is denied.
// The per-site decision stream is deterministic in (seed, site, n) where
// n is the site's allocation ordinal.
func (p *Plane) AllocFail(site Site) bool {
	if p == nil || p.allocThr == 0 {
		return false
	}
	n := p.allocSeq[site].Add(1)
	if p.decide(saltAlloc, uint64(site)<<56|n, p.allocThr) {
		p.allocFails.Add(1)
		return true
	}
	return false
}

// CrashWorker decides whether the attempt-th execution of the given
// check-run crashes its service worker. Pure in (seed, run, attempt):
// the same run retried on a later attempt draws a fresh decision, so a
// retry loop with enough attempts converges deterministically.
func (p *Plane) CrashWorker(run int64, attempt int) bool {
	if p == nil {
		return false
	}
	if p.decide(saltCrash, uint64(run)<<16^uint64(uint32(attempt)), p.crashThr) {
		p.crashes.Add(1)
		return true
	}
	return false
}

// RejectAdmit decides whether the next service admission is rejected as
// if the queue had overflowed. The decision stream is deterministic in
// (seed, n) where n is the admission ordinal.
func (p *Plane) RejectAdmit() bool {
	if p == nil || p.rejectThr == 0 {
		return false
	}
	n := p.rejectSeq.Add(1)
	if p.decide(saltReject, n, p.rejectThr) {
		p.rejects.Add(1)
		return true
	}
	return false
}

// Stats returns the injected-fault counters.
func (p *Plane) Stats() PlaneStats {
	if p == nil {
		return PlaneStats{}
	}
	return PlaneStats{
		ForcedSteals:   p.steals.Load(),
		InjectedDelays: p.delays.Load(),
		InjectedPanics: p.panics.Load(),
		FailedAllocs:   p.allocFails.Load(),
		WorkerCrashes:  p.crashes.Load(),
		AdmitRejects:   p.rejects.Load(),
	}
}
