package chaos

import "sync/atomic"

// Budget bounds the tracked bytes of checker and DPST metadata. Reserve
// is the only mutation: a CAS loop that either charges the whole
// reservation or none of it, so the tracked total never exceeds the
// limit, not even transiently. A nil *Budget admits everything.
type Budget struct {
	limit     int64
	used      atomic.Int64
	saturated atomic.Bool
}

// NewBudget creates a budget of limit tracked bytes; limit <= 0 returns
// nil (unlimited).
func NewBudget(limit int64) *Budget {
	if limit <= 0 {
		return nil
	}
	return &Budget{limit: limit}
}

// Reserve charges n tracked bytes against the budget, or refuses and
// marks the budget saturated when the charge would exceed the limit.
func (b *Budget) Reserve(n int64) bool {
	if b == nil {
		return true
	}
	for {
		cur := b.used.Load()
		if cur+n > b.limit {
			b.saturated.Store(true)
			return false
		}
		if b.used.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// Used returns the tracked bytes currently charged.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Limit returns the budget limit in bytes (0 = unlimited).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Saturated reports whether any reservation has been refused.
func (b *Budget) Saturated() bool {
	return b != nil && b.saturated.Load()
}

// Gate arbitrates gated allocations: an injected failure from the plane
// denies first, then the budget. Denials are counted per site. A nil
// *Gate (or a gate with nil halves) admits everything, so the paper's
// default configuration pays one nil check per slow-path allocation and
// nothing else.
type Gate struct {
	Plane  *Plane
	Budget *Budget

	drops [numSites]atomic.Int64
	onDrop func(Site, int64)
}

// SetDropObserver installs a callback invoked on every denied
// allocation with the site and the refused byte count. It must be set
// before the gate is shared with concurrent allocators; the callback
// runs on the allocating goroutine and must be cheap and non-blocking.
func (g *Gate) SetDropObserver(fn func(Site, int64)) {
	if g != nil {
		g.onDrop = fn
	}
}

// Allow decides whether an allocation of n bytes at site may proceed.
func (g *Gate) Allow(site Site, n int64) bool {
	if g == nil {
		return true
	}
	if g.Plane.AllocFail(site) || !g.Budget.Reserve(n) {
		g.drops[site].Add(1)
		if g.onDrop != nil {
			g.onDrop(site, n)
		}
		return false
	}
	return true
}

// Drops returns the number of denied allocations at site.
func (g *Gate) Drops(site Site) int64 {
	if g == nil {
		return 0
	}
	return g.drops[site].Load()
}

// DropsTotal returns the number of denied allocations across all sites.
func (g *Gate) DropsTotal() int64 {
	if g == nil {
		return 0
	}
	var total int64
	for i := range g.drops {
		total += g.drops[i].Load()
	}
	return total
}

// Saturated reports whether the gate has denied anything — by injection
// or by budget exhaustion.
func (g *Gate) Saturated() bool {
	return g != nil && (g.Budget.Saturated() || g.DropsTotal() > 0)
}
