package chaos

import (
	"sync"
	"testing"
)

func TestNewZeroConfigIsNil(t *testing.T) {
	if p := New(Config{}); p != nil {
		t.Fatalf("zero config must produce a nil plane, got %+v", p)
	}
	if p := New(Config{Seed: 42}); p != nil {
		t.Fatalf("seed-only config injects nothing and must be nil")
	}
}

func TestNilPlaneIsInert(t *testing.T) {
	var p *Plane
	if p.ForceSteal(1, 0) || p.PanicTask(1) || p.AllocFail(SiteShadowLeaf) {
		t.Fatal("nil plane injected a fault")
	}
	if p.DelaySpins(1) != 0 {
		t.Fatal("nil plane injected a delay")
	}
	if p.Stats() != (PlaneStats{}) {
		t.Fatal("nil plane has nonzero stats")
	}
}

// TestDecisionsDeterministic asserts the whole point of the plane: the
// same seed yields the same decision on every (stream, identity), and a
// different seed yields a different stream overall.
func TestDecisionsDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, StealProb: 0.3, DelayProb: 0.25, PanicProb: 0.2}
	a, b := New(cfg), New(cfg)
	diff := New(Config{Seed: 8, StealProb: 0.3, DelayProb: 0.25, PanicProb: 0.2})
	same := true
	for task := int32(0); task < 500; task++ {
		if a.PanicTask(task) != b.PanicTask(task) {
			t.Fatalf("PanicTask(%d) differs across identically seeded planes", task)
		}
		if a.DelaySpins(task) != b.DelaySpins(task) {
			t.Fatalf("DelaySpins(%d) differs across identically seeded planes", task)
		}
		for seq := int32(0); seq < 4; seq++ {
			av, dv := a.ForceSteal(task, seq), diff.ForceSteal(task, seq)
			if av != b.ForceSteal(task, seq) {
				t.Fatalf("ForceSteal(%d,%d) differs across identically seeded planes", task, seq)
			}
			if av != dv {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical steal streams")
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestRootTaskNeverPanics(t *testing.T) {
	p := New(Config{Seed: 1, PanicProb: 1})
	if p.PanicTask(0) {
		t.Fatal("root task must be exempt from injected panics")
	}
	if !p.PanicTask(1) {
		t.Fatal("PanicProb=1 must panic every non-root task")
	}
}

func TestProbabilityExtremes(t *testing.T) {
	p := New(Config{Seed: 3, StealProb: 1})
	for task := int32(0); task < 100; task++ {
		if !p.ForceSteal(task, 0) {
			t.Fatalf("StealProb=1 must steal every spawn (task %d)", task)
		}
		if p.PanicTask(task) || p.DelaySpins(task) != 0 || p.AllocFail(SiteLCACache) {
			t.Fatal("zero-probability stream injected a fault")
		}
	}
	if got := p.Stats().ForcedSteals; got != 100 {
		t.Fatalf("ForcedSteals = %d, want 100", got)
	}
}

func TestBudgetReserve(t *testing.T) {
	if b := NewBudget(0); b != nil {
		t.Fatal("limit 0 must mean unlimited (nil)")
	}
	var nilB *Budget
	if !nilB.Reserve(1 << 40) {
		t.Fatal("nil budget must admit everything")
	}
	b := NewBudget(100)
	if !b.Reserve(60) || !b.Reserve(40) {
		t.Fatal("reservations within the limit refused")
	}
	if b.Saturated() {
		t.Fatal("saturated before any refusal")
	}
	if b.Reserve(1) {
		t.Fatal("reservation beyond the limit admitted")
	}
	if !b.Saturated() || b.Used() != 100 {
		t.Fatalf("after exhaustion: saturated=%v used=%d", b.Saturated(), b.Used())
	}
}

// TestBudgetNeverOvershoots hammers Reserve from many goroutines and
// asserts the acceptance criterion directly: the tracked total never
// exceeds the limit, and the admitted reservations sum to Used.
func TestBudgetNeverOvershoots(t *testing.T) {
	const (
		limit   = 1_000_000
		workers = 8
		perG    = 10_000
		unit    = 17
	)
	b := NewBudget(limit)
	var wg sync.WaitGroup
	admitted := make([]int64, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if b.Reserve(unit) {
					admitted[g] += unit
				}
				if u := b.Used(); u > limit {
					t.Errorf("tracked bytes %d exceed limit %d", u, limit)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, a := range admitted {
		total += a
	}
	if total != b.Used() {
		t.Fatalf("admitted sum %d != Used %d", total, b.Used())
	}
	if b.Used() > limit {
		t.Fatalf("final Used %d exceeds limit %d", b.Used(), limit)
	}
	if !b.Saturated() {
		t.Fatal("budget should have saturated under demand > limit")
	}
}

func TestGateDropAccounting(t *testing.T) {
	var nilG *Gate
	if !nilG.Allow(SiteShadowLeaf, 1<<40) {
		t.Fatal("nil gate must admit everything")
	}
	g := &Gate{Budget: NewBudget(100)}
	if !g.Allow(SiteShadowLeaf, 80) {
		t.Fatal("in-budget allocation refused")
	}
	if g.Allow(SiteShadowChunk, 50) {
		t.Fatal("over-budget allocation admitted")
	}
	if g.Allow(SiteShadowChunk, 50) {
		t.Fatal("over-budget allocation admitted on retry")
	}
	if got := g.Drops(SiteShadowChunk); got != 2 {
		t.Fatalf("Drops(chunk) = %d, want 2", got)
	}
	if got := g.Drops(SiteShadowLeaf); got != 0 {
		t.Fatalf("Drops(leaf) = %d, want 0", got)
	}
	if g.DropsTotal() != 2 || !g.Saturated() {
		t.Fatalf("total=%d saturated=%v", g.DropsTotal(), g.Saturated())
	}
}

func TestGateInjectedFailure(t *testing.T) {
	g := &Gate{Plane: New(Config{Seed: 5, AllocFailProb: 1})}
	if g.Allow(SiteLabelArena, 0) {
		t.Fatal("AllocFailProb=1 must deny every gated allocation")
	}
	if g.Drops(SiteLabelArena) != 1 || !g.Saturated() {
		t.Fatal("injected denial not counted")
	}
}

func TestSiteString(t *testing.T) {
	names := map[Site]string{
		SiteShadowLeaf:  "shadow-leaf",
		SiteShadowChunk: "shadow-chunk",
		SiteShadowFar:   "shadow-far",
		SiteLabelArena:  "label-arena",
		SiteLCACache:    "lca-cache",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("Site(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}
