// Package staticdiff is the static-vs-dynamic differential gate: the
// kernels corpus is executed under the dynamic checker AND analyzed by
// the static suite, and the two must agree in the directions the
// static layer promises. Dynamically flagged kernels must be static
// candidates (the static tree over-approximates schedules, so it may
// not miss one the runtime admits); statically proven-serial handles
// must produce zero dynamic violations (the elision proof licenses
// removing instrumentation, so it must never silence a real finding).
package staticdiff

import (
	"go/ast"
	"go/token"
	"strings"
	"testing"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/analysis"
	"github.com/taskpar/avd/internal/analysis/load"
	"github.com/taskpar/avd/internal/analysis/suite"
	"github.com/taskpar/avd/internal/staticdiff/kernels"
)

type kernel struct {
	name   string
	run    func() avd.Report
	seeded bool // true: dynamic violation expected AND static candidate required
}

var corpus = []kernel{
	{"SeededIncrement", kernels.SeededIncrement, true},
	{"SeededBank", kernels.SeededBank, true},
	{"SerialPhases", kernels.SerialPhases, false},
	{"SerialPipeline", kernels.SerialPipeline, false},
}

// analyzeKernels runs the whole static suite over the kernels package
// and returns the result plus each kernel function's source span.
func analyzeKernels(t *testing.T) (*token.FileSet, *analysis.Result, map[string][2]token.Pos) {
	t.Helper()
	l, err := load.NewModule(".")
	if err != nil {
		t.Fatalf("resolving module: %v", err)
	}
	pkg, err := l.LoadDir("./kernels")
	if err != nil {
		t.Fatalf("loading kernels: %v", err)
	}
	res, err := analysis.RunDetailed(l.Fset, pkg.Files, pkg.Types, pkg.Info, suite.All(),
		analysis.Options{GoVersion: pkg.GoVersion})
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	spans := make(map[string][2]token.Pos)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				spans[fd.Name.Name] = [2]token.Pos{fd.Pos(), fd.End()}
			}
		}
	}
	return l.Fset, res, spans
}

// hasFinding reports whether analyzer reported a message containing
// substr inside the span, searching reported and suppressed findings
// alike (serial kernels silence their advisory diagnostics with
// //avdlint:ignore, so their proofs live on the suppressed channel).
func hasFinding(res *analysis.Result, span [2]token.Pos, analyzer, substr string) bool {
	for _, list := range [][]analysis.Diagnostic{res.Diags, res.Suppressed} {
		for _, d := range list {
			if d.Analyzer == analyzer && d.Pos >= span[0] && d.Pos < span[1] &&
				strings.Contains(d.Message, substr) {
				return true
			}
		}
	}
	return false
}

func TestDifferential(t *testing.T) {
	_, res, spans := analyzeKernels(t)
	for _, k := range corpus {
		span, ok := spans[k.name]
		if !ok {
			t.Errorf("kernel %s not found in kernels package", k.name)
			continue
		}
		rep := k.run()
		if k.seeded {
			if rep.ViolationCount == 0 {
				t.Errorf("%s: dynamic checker found no violation in a seeded kernel", k.name)
			}
			if !hasFinding(res, span, "staticavd", "atomicity-violation candidate") {
				t.Errorf("%s: dynamically flagged kernel has no static candidate — the static layer missed a schedule the runtime admits", k.name)
			}
		} else {
			if rep.ViolationCount != 0 {
				t.Errorf("%s: statically proven-serial kernel produced %d dynamic violations — the elision proof is unsound", k.name, rep.ViolationCount)
			}
			if !hasFinding(res, span, "elision", "statically proven serial") {
				t.Errorf("%s: serial kernel missing its static elision proof", k.name)
			}
		}
	}
}

// TestKernelsLintClean pins that the corpus itself respects the
// instrumentation contract: advisory findings are fine (and expected),
// warnings would mean the kernels exercise the API wrongly.
func TestKernelsLintClean(t *testing.T) {
	fset, res, _ := analyzeKernels(t)
	for _, d := range res.Diags {
		if d.Severity == analysis.SeverityWarning {
			t.Errorf("%s: [%s] %s", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
