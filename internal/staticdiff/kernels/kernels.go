// Package kernels holds the differential-gate corpus: small parallel
// kernels that are BOTH executed under the dynamic checker and
// analyzed by the static suite. The staticdiff test anchors the two
// soundness directions the static layer promises:
//
//   - every kernel the dynamic checker flags is at least a staticavd
//     candidate (the static tree over-approximates, so it cannot miss
//     a schedule the runtime admits), and
//   - every handle the static engine proves serial produces zero
//     dynamic violations (the elision proof is safe to act on).
//
// Serial kernels suppress their advisory elision findings with
// //avdlint:ignore on the declaration line; the test reads the proof
// off the suppressed diagnostics, exercising that channel too.
package kernels

import avd "github.com/taskpar/avd"

// SeededIncrement is the paper's Figure 1: an unprotected load/store
// increment pair in one task, an overwriting store in a parallel
// sibling. Dynamically flagged in every schedule.
func SeededIncrement() avd.Report {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	x := s.NewIntVar("X")
	s.Run(func(t *avd.Task) {
		x.Store(t, 10)
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) {
				a := x.Load(t)
				x.Store(t, a+1)
			})
			t.Spawn(func(t *avd.Task) {
				x.Store(t, 0)
			})
		})
	})
	return s.Report()
}

// SeededBank is the two-variable transfer/audit race: the accounts
// form one atomic group, the transfer's writes and the audit's reads
// interleave unserializably.
func SeededBank() avd.Report {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	checking := s.NewIntVar("checking")
	savings := s.NewIntVar("savings")
	s.Atomic(checking, savings)
	s.Run(func(t *avd.Task) {
		checking.Store(t, 100)
		savings.Store(t, 100)
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) {
				checking.Store(t, checking.Load(t)-50)
				savings.Store(t, savings.Load(t)+50)
			})
			t.Spawn(func(t *avd.Task) {
				_ = checking.Load(t) + savings.Load(t)
			})
		})
	})
	return s.Report()
}

// SerialPhases writes a handle before a parallel phase that never
// touches it and reads it after the join: multiple steps, provably
// serial. The static engine elides it; the runtime must agree there is
// nothing to flag.
func SerialPhases() avd.Report {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	shared := s.NewIntVar("shared")
	m := s.NewMutex("m")
	total := s.NewIntVar("total") //avdlint:ignore advisory elision finding; the differential test reads it from the suppressed channel
	s.Run(func(t *avd.Task) {
		total.Store(t, 0)
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) {
				m.Lock(t)
				shared.Add(t, 1)
				m.Unlock(t)
			})
			t.Spawn(func(t *avd.Task) {
				m.Lock(t)
				shared.Add(t, 2)
				m.Unlock(t)
			})
		})
		total.Store(t, shared.Load(t))
		total.Add(t, 1)
	})
	return s.Report()
}

// SerialPipeline threads one handle through a chain of spawn-join
// stages: every access is in a different step, but each step joins
// before the next begins.
func SerialPipeline() avd.Report {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	acc := s.NewIntVar("acc") //avdlint:ignore advisory elision finding; the differential test reads it from the suppressed channel
	s.Run(func(t *avd.Task) {
		for stage := 0; stage < 3; stage++ {
			t.Finish(func(t *avd.Task) {
				t.Spawn(func(t *avd.Task) {
					acc.Add(t, 1)
				})
			})
		}
	})
	return s.Report()
}
