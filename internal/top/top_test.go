package top

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/server"
)

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 5); got != "     " {
		t.Fatalf("empty series: %q", got)
	}
	if got := Sparkline([]int64{0, 0, 0}, 3); got != "▁▁▁" {
		t.Fatalf("all-zero series: %q", got)
	}
	got := Sparkline([]int64{0, 7}, 2)
	if got != "▁█" {
		t.Fatalf("min/max: %q", got)
	}
	// Longer than width: keeps the most recent values.
	got = Sparkline([]int64{9, 9, 9, 0, 3}, 2)
	if got != "▁█" {
		t.Fatalf("window: %q", got)
	}
	// Shorter than width: left-padded with spaces.
	got = Sparkline([]int64{5}, 3)
	if got != "  █" {
		t.Fatalf("padding: %q", got)
	}
	if got := Sparkline([]int64{1, 2}, 0); got != "" {
		t.Fatalf("zero width: %q", got)
	}
}

func sampleFrame() Frame {
	return Frame{
		Time:   time.Date(2026, 8, 9, 12, 30, 45, 0, time.UTC),
		Source: "http://localhost:8056",
		Metrics: server.MetricsView{
			Admitted:           7,
			Done:               4,
			Failed:             1,
			InFlight:           2,
			Queued:             3,
			QueuedPerShard:     []int64{1, 0, 2},
			ReportCacheHits:    5,
			AnalysisViolations: 11,
			AnalysisLocations:  4096,
			StreamSubscribers:  1,
		},
		Runs: []DebugRun{
			{View: server.View{ID: 1, Status: server.StatusDone, Shard: 0, Attempts: 1, Violations: 3, TraceBytes: 512}},
			{View: server.View{ID: 2, Status: server.StatusRunning, Shard: 2, Attempts: 2, TraceBytes: 9000},
				Live: &LiveView{Locations: 128, DPSTNodes: 63, Violations: 4, Saturated: true}},
		},
	}
}

func TestRenderPanels(t *testing.T) {
	d := NewDash(8)
	d.NoColor = true
	d.Observe(sampleFrame())
	d.AddFinding("run 2 [ERROR] atomicity violation (pattern R-W-R) at location 7")

	out := d.Render(100)
	for _, want := range []string{
		"avd-top — http://localhost:8056 — 12:30:45",
		"runs (2)",
		"RUNNING",
		"DONE",
		"locs=128 nodes=63 viol=4 SAT",
		"shard queues (in-flight 2, queued 3)",
		"shard 0",
		"shard 2",
		"violations",
		"findings (1)",
		"pattern R-W-R",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Fatalf("NoColor render contains ANSI escapes")
	}
}

// Every box line must align: visible width inner+2 for panel rows.
func TestRenderAlignment(t *testing.T) {
	for _, noColor := range []bool{true, false} {
		d := NewDash(8)
		d.NoColor = noColor
		d.Observe(sampleFrame())
		d.AddFinding(strings.Repeat("x", 300)) // must clip, not overflow
		const width = 80
		out := d.Render(width)
		for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
			if !strings.HasPrefix(line, "│") && !strings.HasPrefix(line, "┌") && !strings.HasPrefix(line, "└") {
				continue // header line
			}
			if got := visibleLen(line); got != width {
				t.Fatalf("noColor=%v: line visible width %d, want %d: %q", noColor, got, width, line)
			}
		}
	}
}

func TestRenderEmptyDash(t *testing.T) {
	d := NewDash(8)
	d.NoColor = true
	out := d.Render(60)
	for _, want := range []string{
		"waiting for first frame",
		"(no shards reported)",
		"(no findings streamed yet)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("empty render missing %q\n%s", want, out)
		}
	}
}

func TestFindingsTailBounded(t *testing.T) {
	d := NewDash(4)
	d.NoColor = true
	for i := 0; i < 10; i++ {
		d.AddFinding(strings.Repeat("f", 10) + string(rune('0'+i)))
	}
	d.mu.Lock()
	n := len(d.findings)
	last := d.findings[len(d.findings)-1]
	d.mu.Unlock()
	if n != 4 {
		t.Fatalf("tail length %d, want 4", n)
	}
	if !strings.HasSuffix(last, "9") {
		t.Fatalf("tail did not keep newest: %q", last)
	}
}

// The DebugDoc mirror must round-trip the server's /debug/avd payload:
// metrics, run views, and the live snapshot subset.
func TestDebugDocDecode(t *testing.T) {
	raw := `{
	 "metrics": {"admitted": 3, "queued_per_shard": [0, 2], "analysis_violations": 9,
	             "stream_subscribers": 1, "webhook_delivered": 4},
	 "runs": [
	  {"id": 1, "status": "DONE", "shard": 0, "trace_bytes": 100, "violations": 2},
	  {"id": 2, "status": "RUNNING", "shard": 1,
	   "live": {"locations": 42, "dpst_nodes": 17, "violations": 1, "memory_used": 2048, "saturated": true}}
	 ]}`
	var doc DebugDoc
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Metrics.Admitted != 3 || doc.Metrics.AnalysisViolations != 9 || doc.Metrics.WebhookDelivered != 4 {
		t.Fatalf("metrics: %+v", doc.Metrics)
	}
	if len(doc.Runs) != 2 || doc.Runs[0].Status != server.StatusDone || doc.Runs[0].Live != nil {
		t.Fatalf("runs: %+v", doc.Runs)
	}
	live := doc.Runs[1].Live
	if live == nil || live.Locations != 42 || live.DPSTNodes != 17 || !live.Saturated {
		t.Fatalf("live: %+v", live)
	}
}

func TestFrameFromSnapshot(t *testing.T) {
	snap := avd.Snapshot{ViolationCount: 5, Saturated: true, MemoryUsed: 1 << 20}
	snap.Stats.Locations = 99
	snap.Stats.DPSTNodes = 31
	snap.Drops.Violations = 2
	snap.Events.Drops = 2
	f := FrameFromSnapshot(snap, "demo", time.Unix(0, 0))
	if len(f.Runs) != 1 || f.Runs[0].Status != server.StatusRunning {
		t.Fatalf("runs: %+v", f.Runs)
	}
	live := f.Runs[0].Live
	if live.Locations != 99 || live.DPSTNodes != 31 || live.Violations != 5 || !live.Saturated {
		t.Fatalf("live: %+v", live)
	}
	if f.Metrics.AnalysisViolations != 5 || f.Metrics.AnalysisDrops != 2 || f.Metrics.AnalysisLocations != 99 {
		t.Fatalf("metrics: %+v", f.Metrics)
	}

	d := NewDash(8)
	d.NoColor = true
	d.Observe(f)
	if out := d.Render(90); !strings.Contains(out, "locs=99 nodes=31 viol=5 SAT") {
		t.Fatalf("snapshot frame render:\n%s", out)
	}
}
