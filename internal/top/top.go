// Package top renders the avd-serverd observability plane as a live
// terminal dashboard: a runs table, per-shard queue bars, counter
// sparklines, and a tail of streamed findings, drawn with plain ANSI
// box-drawing in the lazydocker panel style. The package is pure
// presentation — it consumes the server's /debug/avd JSON (or an
// in-process analysis snapshot) and produces strings — so every panel
// is unit-testable without a terminal or a server.
package top

import (
	"fmt"
	"strings"
	"sync"
	"time"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/server"
)

// DebugRun is one run entry of the /debug/avd payload.
type DebugRun struct {
	server.View
	Live *LiveView `json:"live,omitempty"`
}

// LiveView mirrors the live-analysis snapshot of a RUNNING run.
type LiveView struct {
	Locations  int64 `json:"locations"`
	DPSTNodes  int   `json:"dpst_nodes"`
	Violations int64 `json:"violations"`
	Drops      int64 `json:"drops"`
	MemoryUsed int64 `json:"memory_used"`
	Saturated  bool  `json:"saturated,omitempty"`
}

// DebugDoc is the /debug/avd JSON document.
type DebugDoc struct {
	Metrics server.MetricsView `json:"metrics"`
	Runs    []DebugRun         `json:"runs"`
}

// Frame is the dashboard's input for one refresh.
type Frame struct {
	Time    time.Time
	Source  string
	Metrics server.MetricsView
	Runs    []DebugRun
}

// FrameFromSnapshot adapts one in-process analysis snapshot (a harness
// LiveSession, say) into a single-run frame, so the dashboard renders
// local runs with the same panels it uses against a server.
func FrameFromSnapshot(snap avd.Snapshot, source string, now time.Time) Frame {
	dr := DebugRun{
		View: server.View{ID: 1, Status: server.StatusRunning, Violations: snap.ViolationCount, Saturated: snap.Saturated},
		Live: &LiveView{
			Locations:  snap.Stats.Locations,
			DPSTNodes:  snap.Stats.DPSTNodes,
			Violations: snap.ViolationCount,
			Drops:      snap.Events.Drops,
			MemoryUsed: snap.MemoryUsed,
			Saturated:  snap.Saturated,
		},
	}
	return Frame{
		Time:   now,
		Source: source,
		Metrics: server.MetricsView{
			InFlight:           1,
			AnalysisViolations: snap.ViolationCount,
			AnalysisDrops: snap.Drops.Locations + snap.Drops.Labels +
				snap.Drops.LCAEntries + snap.Drops.Violations,
			AnalysisLocations:       snap.Stats.Locations,
			AnalysisFilterHits:      snap.Stats.FilterHits,
			AnalysisFilterMisses:    snap.Stats.FilterMisses,
			AnalysisBatchFlushes:    snap.Stats.BatchFlushes,
			AnalysisBatchedAccesses: snap.Stats.BatchedAccesses,
			AnalysisWindowElisions:  snap.Stats.WindowElisions,
			QueuedPerShard:          []int64{},
		},
		Runs: []DebugRun{dr},
	}
}

// sparkRunes is the eight-level bar alphabet of the sparklines.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a fixed-width unicode bar chart, scaled to
// the series maximum; the most recent value is rightmost. Empty or
// all-zero input renders as flat baseline bars.
func Sparkline(vals []int64, width int) string {
	if width <= 0 {
		return ""
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	var max int64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for i := 0; i < width-len(vals); i++ {
		b.WriteByte(' ')
	}
	for _, v := range vals {
		if v < 0 {
			v = 0
		}
		idx := 0
		if max > 0 {
			idx = int(v * int64(len(sparkRunes)-1) / max)
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// history is one bounded sparkline series.
type history struct {
	vals []int64
	cap  int
}

func (h *history) push(v int64) {
	h.vals = append(h.vals, v)
	if len(h.vals) > h.cap {
		h.vals = h.vals[len(h.vals)-h.cap:]
	}
}

// Dash accumulates frames and findings and renders the dashboard. Safe
// for concurrent Observe/AddFinding/Render — the poller, the SSE
// consumers, and the draw loop run on different goroutines.
type Dash struct {
	mu       sync.Mutex
	frame    Frame
	haveF    bool
	hist     map[string]*history
	findings []string
	maxTail  int

	// NoColor disables ANSI color sequences (tests, dumb terminals).
	NoColor bool
}

// NewDash creates an empty dashboard with a findings tail bounded to
// maxTail lines.
func NewDash(maxTail int) *Dash {
	if maxTail <= 0 {
		maxTail = 64
	}
	return &Dash{hist: make(map[string]*history), maxTail: maxTail}
}

// Observe ingests one refresh frame, extending the sparkline series.
func (d *Dash) Observe(f Frame) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.frame = f
	d.haveF = true
	m := f.Metrics
	for _, s := range []struct {
		name string
		v    int64
	}{
		{"in-flight", m.InFlight},
		{"queued", m.Queued},
		{"violations", m.AnalysisViolations},
		{"admitted", m.Admitted},
		{"done", m.Done},
		{"cache hits", m.ReportCacheHits},
		{"stream subs", m.StreamSubscribers},
	} {
		h := d.hist[s.name]
		if h == nil {
			h = &history{cap: 120}
			d.hist[s.name] = h
		}
		h.push(s.v)
	}
}

// AddFinding appends one streamed finding line to the tail.
func (d *Dash) AddFinding(line string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.findings = append(d.findings, line)
	if len(d.findings) > d.maxTail {
		d.findings = d.findings[len(d.findings)-d.maxTail:]
	}
}

// ANSI helpers.
const (
	ansiReset = "\x1b[0m"
	ansiDim   = "\x1b[2m"
)

// Clear is the ANSI sequence that clears the screen and homes the
// cursor, prepended to each live redraw.
const Clear = "\x1b[2J\x1b[H"

func (d *Dash) color(code, s string) string {
	if d.NoColor {
		return s
	}
	return "\x1b[" + code + "m" + s + ansiReset
}

func (d *Dash) statusColor(st server.Status) string {
	switch st {
	case server.StatusRunning:
		return d.color("36", string(st))
	case server.StatusDone:
		return d.color("32", string(st))
	case server.StatusFailed:
		return d.color("31", string(st))
	case server.StatusCanceled:
		return d.color("33", string(st))
	default:
		if d.NoColor {
			return string(st)
		}
		return ansiDim + string(st) + ansiReset
	}
}

// visibleLen measures s without ANSI escape sequences.
func visibleLen(s string) int {
	n := 0
	esc := false
	for _, r := range s {
		switch {
		case esc:
			if r == 'm' {
				esc = false
			}
		case r == '\x1b':
			esc = true
		default:
			n++
		}
	}
	return n
}

// panel frames lines in a box of the given inner width with a title.
func panel(title string, width int, lines []string) []string {
	top := "┌ " + title + " " + strings.Repeat("─", maxInt(0, width-len([]rune(title))-2)) + "┐"
	out := []string{top}
	for _, l := range lines {
		pad := width - visibleLen(l)
		if pad < 0 {
			pad = 0
		}
		out = append(out, "│"+l+strings.Repeat(" ", pad)+"│")
	}
	out = append(out, "└"+strings.Repeat("─", width)+"┘")
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// clip truncates s to the width (rune-aware, ANSI-unaware — callers
// color only whole clipped cells).
func clip(s string, width int) string {
	r := []rune(s)
	if len(r) <= width {
		return s
	}
	if width <= 1 {
		return string(r[:width])
	}
	return string(r[:width-1]) + "…"
}

// Render draws the dashboard at the given terminal width. It returns
// the full screen contents (no clear sequence; the caller decides
// whether to redraw in place).
func (d *Dash) Render(width int) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if width < 40 {
		width = 40
	}
	inner := width - 2
	var out []string

	f := d.frame
	m := f.Metrics
	header := fmt.Sprintf(" avd-top — %s — %s", f.Source, f.Time.Format("15:04:05"))
	if !d.haveF {
		header = " avd-top — waiting for first frame"
	}
	out = append(out, d.color("1", clip(header, width)))

	// Runs panel: newest first, bounded.
	var runLines []string
	runLines = append(runLines, fmt.Sprintf(" %-5s %-10s %-5s %-3s %-6s %-9s %s",
		"ID", "STATUS", "SHARD", "ATT", "VIOL", "TRACE", "LIVE"))
	runs := f.Runs
	const maxRuns = 12
	if len(runs) > maxRuns {
		runs = runs[len(runs)-maxRuns:]
	}
	for i := len(runs) - 1; i >= 0; i-- {
		r := runs[i]
		live := ""
		if r.Live != nil {
			live = fmt.Sprintf("locs=%d nodes=%d viol=%d", r.Live.Locations, r.Live.DPSTNodes, r.Live.Violations)
			if r.Live.Saturated {
				live += " SAT"
			}
		}
		pad := 10 - len(string(r.Status))
		if pad < 0 {
			pad = 0
		}
		line := fmt.Sprintf(" %-5d %s%s %-5d %-3d %-6d %-9d %s",
			r.ID, d.statusColor(r.Status), strings.Repeat(" ", pad),
			r.Shard, r.Attempts, r.Violations, r.TraceBytes, live)
		runLines = append(runLines, clip(line, inner))
	}
	out = append(out, panel(fmt.Sprintf("runs (%d)", len(f.Runs)), inner, runLines)...)

	// Shard queues panel.
	var shardLines []string
	for i, depth := range m.QueuedPerShard {
		barW := 24
		fill := int(depth)
		if fill > barW {
			fill = barW
		}
		shardLines = append(shardLines, fmt.Sprintf(" shard %-2d [%s%s] %d",
			i, strings.Repeat("█", fill), strings.Repeat(" ", barW-fill), depth))
	}
	if len(shardLines) == 0 {
		shardLines = []string{" (no shards reported)"}
	}
	out = append(out, panel(fmt.Sprintf("shard queues (in-flight %d, queued %d)", m.InFlight, m.Queued), inner, shardLines)...)

	// Counters panel with sparklines.
	sparkW := 30
	var counterLines []string
	for _, name := range []string{"admitted", "done", "in-flight", "queued", "violations", "cache hits", "stream subs"} {
		h := d.hist[name]
		var vals []int64
		if h != nil {
			vals = h.vals
		}
		cur := int64(0)
		if len(vals) > 0 {
			cur = vals[len(vals)-1]
		}
		counterLines = append(counterLines,
			clip(fmt.Sprintf(" %-12s %8d  %s", name, cur, Sparkline(vals, sparkW)), inner))
	}
	counterLines = append(counterLines, clip(fmt.Sprintf(
		" %-12s %8d  drops %d panics %d dropped-frames %d webhook %d/%d",
		"locations", m.AnalysisLocations, m.AnalysisDrops, m.AnalysisTaskPanics,
		m.StreamDroppedFrames, m.WebhookDelivered, m.WebhookFailed), inner))
	out = append(out, panel("counters", inner, counterLines)...)

	// Findings tail.
	tail := d.findings
	const maxShown = 8
	if len(tail) > maxShown {
		tail = tail[len(tail)-maxShown:]
	}
	var tailLines []string
	for _, l := range tail {
		tailLines = append(tailLines, clip(" "+l, inner))
	}
	if len(tailLines) == 0 {
		tailLines = []string{" (no findings streamed yet)"}
	}
	out = append(out, panel(fmt.Sprintf("findings (%d)", len(d.findings)), inner, tailLines)...)

	return strings.Join(out, "\n") + "\n"
}
