package oracle_test

import (
	"math/rand"
	"testing"

	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/oracle"
	"github.com/taskpar/avd/internal/sptest"
	"github.com/taskpar/avd/internal/trace"
	"github.com/taskpar/avd/internal/velodrome"
)

// checkerLocs replays one random schedule of p into a fresh checker and
// returns the set of sptest locations with reported violations.
func checkerLocs(t *testing.T, p *sptest.Program, r *rand.Rand, alg checker.Algorithm, strict bool) map[int]bool {
	t.Helper()
	tr, err := trace.FromProgram(p, r)
	if err != nil {
		t.Fatal(err)
	}
	tree := dpst.NewArrayTree()
	c := checker.New(checker.Options{
		Algorithm:        alg,
		Query:            dpst.NewQuery(tree, true),
		StrictLockChecks: strict,
	})
	if err := trace.Replay(tr, tree, c, nil); err != nil {
		t.Fatal(err)
	}
	out := make(map[int]bool)
	for _, v := range c.Reporter().Violations() {
		out[int(v.Loc-trace.LocBase)] = true
	}
	return out
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func smallConfig(locks int) sptest.GenConfig {
	return sptest.GenConfig{
		MaxItems: 3, MaxDepth: 2, MaxSteps: 6,
		Locations: 2, MaxAccess: 3, Locks: locks, LockProb: 0.4,
	}
}

// TestClosedFormMatchesEnumeration validates the closed-form oracle
// against brute-force schedule enumeration on tiny programs, with and
// without locks.
func TestClosedFormMatchesEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	complete := 0
	for trial := 0; trial < 150; trial++ {
		locks := 0
		if trial%2 == 1 {
			locks = 1
		}
		p := sptest.Random(r, smallConfig(locks))
		b := sptest.Build(dpst.ArrayLayout, p)
		want, ok := oracle.Enumerate(p, 60000)
		if !ok {
			continue // too many schedules; skip
		}
		complete++
		got := oracle.Violations(b, oracle.ModeFull)
		if !sameSet(got, want) {
			t.Fatalf("trial %d: closed form %v != enumeration %v\nprogram: %+v",
				trial, got, want, p)
		}
	}
	if complete < 50 {
		t.Fatalf("only %d trials enumerated completely; shrink the config", complete)
	}
}

// TestOptimizedMatchesOracle: the paper-mode optimized checker, run on a
// single random schedule, detects exactly the locations the paper-mode
// oracle predicts — the paper's soundness + completeness claim.
func TestOptimizedMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	for trial := 0; trial < 300; trial++ {
		locks := trial % 3 // 0 = lock-free on two thirds of trials
		if locks > 1 {
			locks = 1
		}
		p := sptest.Random(r, sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 12,
			Locations: 3, MaxAccess: 4, Locks: locks, LockProb: 0.4,
		})
		b := sptest.Build(dpst.ArrayLayout, p)
		want := oracle.Violations(b, oracle.ModePaper)
		got := checkerLocs(t, p, r, checker.AlgOptimized, false)
		if !sameSet(got, want) {
			t.Fatalf("trial %d: checker %v != oracle %v\nprogram: %+v", trial, got, want, p)
		}
	}
}

// TestStrictModeMatchesFullOracle: with the strict-lock extension the
// checker detects exactly the full feasible set.
func TestStrictModeMatchesFullOracle(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for trial := 0; trial < 300; trial++ {
		p := sptest.Random(r, sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 12,
			Locations: 3, MaxAccess: 4, Locks: 2, LockProb: 0.5,
		})
		b := sptest.Build(dpst.ArrayLayout, p)
		want := oracle.Violations(b, oracle.ModeFull)
		got := checkerLocs(t, p, r, checker.AlgOptimized, true)
		if !sameSet(got, want) {
			t.Fatalf("trial %d: strict checker %v != full oracle %v\nprogram: %+v",
				trial, got, want, p)
		}
	}
}

// TestBasicMatchesOptimized: the unbounded-history reference checker and
// the fixed-metadata checker agree on violating locations.
func TestBasicMatchesOptimized(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 200; trial++ {
		p := sptest.Random(r, sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 12,
			Locations: 3, MaxAccess: 4, Locks: 1, LockProb: 0.3,
		})
		// Same schedule for both: duplicate the RNG stream by reusing a
		// fixed seed per trial.
		seed := r.Int63()
		opt := checkerLocs(t, p, rand.New(rand.NewSource(seed)), checker.AlgOptimized, false)
		bas := checkerLocs(t, p, rand.New(rand.NewSource(seed)), checker.AlgBasic, false)
		if !sameSet(opt, bas) {
			t.Fatalf("trial %d: optimized %v != basic %v\nprogram: %+v", trial, opt, bas, p)
		}
	}
}

// TestScheduleIndependence: the detected set must not depend on the
// observed schedule — the core claim distinguishing the checker from
// Velodrome.
func TestScheduleIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(505))
	for trial := 0; trial < 60; trial++ {
		p := sptest.Random(r, sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 10,
			Locations: 2, MaxAccess: 3, Locks: 1, LockProb: 0.3,
		})
		var first map[int]bool
		for s := 0; s < 8; s++ {
			got := checkerLocs(t, p, r, checker.AlgOptimized, false)
			if first == nil {
				first = got
			} else if !sameSet(first, got) {
				t.Fatalf("trial %d: schedule %d detected %v, earlier schedule detected %v\nprogram: %+v",
					trial, s, got, first, p)
			}
		}
	}
}

// TestVelodromeSoundWithinTrace: any cycle Velodrome reports corresponds
// to a real violation, so the full oracle must be non-empty whenever
// Velodrome fires; and Velodrome never out-detects the DPST checker in
// strict mode.
func TestVelodromeSoundWithinTrace(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	fired := 0
	for trial := 0; trial < 300; trial++ {
		p := sptest.Random(r, sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 10,
			Locations: 2, MaxAccess: 4, Locks: 1, LockProb: 0.3,
		})
		tr, err := trace.FromProgram(p, r)
		if err != nil {
			t.Fatal(err)
		}
		tree := dpst.NewArrayTree()
		v := velodrome.New()
		if err := trace.Replay(tr, tree, v, v); err != nil {
			t.Fatal(err)
		}
		if v.Count() > 0 {
			fired++
			b := sptest.Build(dpst.ArrayLayout, p)
			if len(oracle.Violations(b, oracle.ModeFull)) == 0 {
				t.Fatalf("trial %d: velodrome reported %d cycles but the oracle says the program is violation-free\nprogram: %+v",
					trial, v.Count(), p)
			}
		}
	}
	if fired == 0 {
		t.Log("note: velodrome never fired in this configuration")
	}
}
