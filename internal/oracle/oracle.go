// Package oracle computes ground-truth atomicity-violation answers for
// small structured programs, independently of the DPST checker, for
// differential testing.
//
// Two oracles are provided. Violations derives the answer in closed form
// from first principles: a location has a feasible atomicity violation
// iff some pair of accesses by one step node (the atomic region) and an
// access by a logically parallel step node form a conflict-unserializable
// triple that the lock structure allows to interleave. Enumerate
// validates that closed form by brute force: it walks every valid
// sequentially consistent schedule of the program and looks for a
// manifest unserializable triple.
package oracle

import (
	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/sptest"
	"github.com/taskpar/avd/internal/trace"
)

// Mode selects which violations the oracle should count, mirroring the
// checker's lock-handling modes.
type Mode uint8

// Oracle modes.
const (
	// ModeFull counts every feasible unserializable triple: a pair in
	// one critical section still counts when the interleaver does not
	// synchronize on that lock (the checker's StrictLockChecks
	// extension).
	ModeFull Mode = iota
	// ModePaper counts only triples whose pair accesses lie in
	// different critical sections (empty lockset intersection), the
	// promotion rule of the paper's Section 3.3.
	ModePaper
)

func typeOf(w bool) checker.AccessType {
	if w {
		return checker.Write
	}
	return checker.Read
}

// Violations returns the set of locations (sptest location numbers) with
// at least one feasible atomicity violation in some schedule of the
// built program.
func Violations(b *sptest.Built, mode Mode) map[int]bool {
	out := make(map[int]bool)
	accs := b.Accesses
	for i, a1 := range accs {
		for j := i + 1; j < len(accs); j++ {
			a3 := accs[j]
			if a3.Step != a1.Step || a3.Loc != a1.Loc {
				continue
			}
			sameCS := a1.CS >= 0 && a1.CS == a3.CS
			if sameCS && mode == ModePaper {
				continue // pair never promoted by the paper's rule
			}
			for _, a2 := range accs {
				if a2.Loc != a1.Loc || a2.Step == a1.Step {
					continue
				}
				if !checker.Unserializable(typeOf(a1.Write), typeOf(a2.Write), typeOf(a3.Write)) {
					continue
				}
				if sameCS && a2.CS >= 0 && a2.Lock == a1.Lock {
					continue // interleaver synchronizes on the pair's lock
				}
				if !b.ParallelSteps(a1.Step, a2.Step) {
					continue
				}
				out[a1.Loc] = true
			}
		}
	}
	return out
}

// Enumerate explores every valid schedule of the program (up to limit
// explored schedules) and returns the locations at which some schedule
// manifests an unserializable triple — two accesses of one step with an
// interleaved conflicting access of another step between them. The
// second result is false when the limit was hit and the answer may be
// incomplete.
func Enumerate(p *sptest.Program, limit int) (map[int]bool, bool) {
	c := trace.Compile(p)
	n := len(c.Code)
	type state struct {
		pc     []int
		done   []bool
		start  []bool
		scopes [][]int // per task: stack of scope indices
	}
	// Scopes are identified by dense indices into pending.
	var pending []int
	scopeOf := make([]int, n) // scope a task decrements at its end
	st := state{
		pc:     make([]int, n),
		done:   make([]bool, n),
		start:  make([]bool, n),
		scopes: make([][]int, n),
	}
	st.start[0] = true
	pending = append(pending, 0) // root scope
	st.scopes[0] = []int{0}
	scopeOf[0] = 0
	holder := make(map[uint32]int)

	found := make(map[int]bool)
	explored := 0
	complete := true

	// sched is the schedule prefix: per event, (task, op) with op == nil
	// for task end.
	type ev struct {
		task int
		op   *trace.Op
	}
	var prefix []ev

	// scan the completed schedule for manifest triples.
	scan := func() {
		// Track, per access, its step identity. Steps change at spawn,
		// finish-begin, finish-end within a task.
		stepID := make([]int, n)
		nextStep := n
		type acc struct {
			task, step int
			loc        int
			write      bool
		}
		var accs []acc
		for i := range stepID {
			stepID[i] = -1
		}
		newStep := func(task int) {
			stepID[task] = nextStep
			nextStep++
		}
		for i := range stepID {
			newStep(i)
		}
		for _, e := range prefix {
			if e.op == nil {
				continue
			}
			switch e.op.Kind {
			case trace.KSpawn, trace.KFinishBegin, trace.KFinishEnd:
				newStep(e.task)
			case trace.KAccess:
				accs = append(accs, acc{
					task: e.task, step: stepID[e.task],
					loc:   int(e.op.Loc - trace.LocBase),
					write: e.op.Write,
				})
			}
		}
		for i, a1 := range accs {
			for j := i + 1; j < len(accs); j++ {
				a3 := accs[j]
				if a3.step != a1.step || a3.loc != a1.loc {
					continue
				}
				for k := i + 1; k < j; k++ {
					a2 := accs[k]
					if a2.loc != a1.loc || a2.step == a1.step {
						continue
					}
					if checker.Unserializable(typeOf(a1.write), typeOf(a2.write), typeOf(a3.write)) {
						found[a1.loc] = true
					}
				}
			}
		}
	}

	var rec func(remaining int)
	rec = func(remaining int) {
		if explored >= limit {
			complete = false
			return
		}
		if remaining == 0 {
			explored++
			scan()
			return
		}
		for i := 0; i < n; i++ {
			if !st.start[i] || st.done[i] {
				continue
			}
			// Runnability.
			var o *trace.Op
			if st.pc[i] < len(c.Code[i]) {
				o = &c.Code[i][st.pc[i]]
				switch o.Kind {
				case trace.KFinishEnd:
					if pending[st.scopes[i][len(st.scopes[i])-1]] != 0 {
						continue
					}
				case trace.KAcquire:
					if _, held := holder[o.Lock]; held {
						continue
					}
				}
			}
			// Apply.
			if o == nil {
				st.done[i] = true
				if i != 0 {
					pending[scopeOf[i]]--
				}
				prefix = append(prefix, ev{task: i})
				rec(remaining - 1)
				prefix = prefix[:len(prefix)-1]
				if i != 0 {
					pending[scopeOf[i]]++
				}
				st.done[i] = false
				continue
			}
			st.pc[i]++
			prefix = append(prefix, ev{task: i, op: o})
			switch o.Kind {
			case trace.KSpawn:
				ch := int(o.Child)
				st.start[ch] = true
				sc := st.scopes[i][len(st.scopes[i])-1]
				pending[sc]++
				scopeOf[ch] = sc
				st.scopes[ch] = []int{sc}
				rec(remaining)
				pending[sc]--
				st.start[ch] = false
				st.scopes[ch] = nil
			case trace.KFinishBegin:
				pending = append(pending, 0)
				st.scopes[i] = append(st.scopes[i], len(pending)-1)
				rec(remaining)
				st.scopes[i] = st.scopes[i][:len(st.scopes[i])-1]
				pending = pending[:len(pending)-1]
			case trace.KFinishEnd:
				sc := st.scopes[i][len(st.scopes[i])-1]
				st.scopes[i] = st.scopes[i][:len(st.scopes[i])-1]
				rec(remaining)
				st.scopes[i] = append(st.scopes[i], sc)
			case trace.KAcquire:
				holder[o.Lock] = i
				rec(remaining)
				delete(holder, o.Lock)
			case trace.KRelease:
				delete(holder, o.Lock)
				rec(remaining)
				holder[o.Lock] = i
			default:
				rec(remaining)
			}
			prefix = prefix[:len(prefix)-1]
			st.pc[i]--
		}
	}
	rec(n)
	return found, complete
}
