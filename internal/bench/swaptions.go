package bench

import (
	"fmt"
	"math"

	avd "github.com/taskpar/avd"
)

const swTrials = 2048

// swPath simulates one simplified HJM short-rate path and returns the
// discounted payoff of the swaption. Deterministic per (swaption, trial).
func swPath(swaption, trial int) float64 {
	r := newRng(uint64(swaption)*2654435761 + uint64(trial)*40503 + 1)
	rate := 0.02 + 0.04*float64(swaption%7)/7
	strike := 0.03 + 0.02*float64(swaption%5)/5
	discount := 1.0
	const steps = 16
	for s := 0; s < steps; s++ {
		// Box-Muller-free shock: sum of uniforms, variance-matched.
		shock := (r.float() + r.float() + r.float() - 1.5) / math.Sqrt(0.25)
		rate += 0.002*shock*math.Sqrt(1.0/steps) + 0.0001
		if rate < 0 {
			rate = 0
		}
		discount *= math.Exp(-rate / steps)
	}
	payoff := rate - strike
	if payoff < 0 {
		payoff = 0
	}
	return discount * payoff
}

func swSerial(n int) float64 {
	var total float64
	for sw := 0; sw < n; sw++ {
		var sum float64
		for tr := 0; tr < swTrials; tr++ {
			sum += swPath(sw, tr)
		}
		total += sum / swTrials
	}
	return total
}

// Swaptions is the PARSEC Monte-Carlo swaption pricer: an outer parallel
// loop over swaptions and an inner fine-grained parallel loop over
// simulation trials. The fine grain produces the largest DPST of the
// suite and a fresh instrumented location per trial, matching the
// "highest number of nodes, large number of locations" profile the
// paper gives for swaptions.
func Swaptions() Kernel {
	run := func(s *avd.Session, n int) float64 {
		payoffs := s.NewFloatArray("payoffs", n*swTrials)
		prices := s.NewFloatArray("prices", n)
		sums := s.NewFloatArray("sums", n)
		locks := make([]*avd.Mutex, n)
		for i := range locks {
			locks[i] = s.NewMutex(fmt.Sprintf("swaption-%d", i))
		}
		var total float64
		s.Run(func(t *avd.Task) {
			avd.ParallelFor(t, 0, n, 1, func(t *avd.Task, sw int) {
				avd.ParallelRange(t, 0, swTrials, 1, func(t *avd.Task, lo, hi int) {
					var local float64
					for tr := lo; tr < hi; tr++ {
						p := swPath(sw, tr)
						payoffs.Store(t, sw*swTrials+tr, p)
						local += p
					}
					locks[sw].Lock(t)
					sums.Add(t, sw, local)
					locks[sw].Unlock(t)
				})
				prices.Store(t, sw, sums.Load(t, sw)/swTrials)
			})
			for sw := 0; sw < n; sw++ {
				total += prices.Value(sw)
			}
		})
		return total
	}
	check := func(n int, sum float64) error {
		want := swSerial(n)
		if !approxEqual(sum, want, 1e-6) {
			return fmt.Errorf("swaptions: checksum %g, want %g", sum, want)
		}
		return nil
	}
	return Kernel{Name: "swaptions", DefaultN: 32, Run: run, Check: check}
}
