package bench

import (
	"fmt"
	"math"
	"sort"

	avd "github.com/taskpar/avd"
)

const (
	rcSpheres  = 256
	rcWidth    = 64 // image width; height is the problem size
	rcLeafSize = 4
)

// rcScene generates sphere centers/radii/albedos deterministically:
// 5 floats per sphere (cx, cy, cz, radius, albedo).
func rcScene() []float64 {
	r := newRng(4242)
	sc := make([]float64, rcSpheres*5)
	for i := 0; i < rcSpheres; i++ {
		sc[i*5+0] = 24 * (r.float() - 0.5)
		sc[i*5+1] = 24 * (r.float() - 0.5)
		sc[i*5+2] = 8 + 40*r.float()
		sc[i*5+3] = 0.3 + 1.2*r.float()
		sc[i*5+4] = 0.2 + 0.8*r.float()
	}
	return sc
}

// rcBVH is a bounding-volume hierarchy over the spheres: median split on
// the longest axis, leaves of at most rcLeafSize spheres. The topology
// (children, leaf ranges) is immutable; the node bounds are what rays
// read, so those live in an instrumented array during the parallel phase.
type rcBVH struct {
	bounds []float64 // 6 per node: min xyz, max xyz
	left   []int32   // child index, or -1 for leaves
	right  []int32
	start  []int32 // leaf: first index into order
	count  []int32 // leaf: sphere count
	order  []int32 // sphere indices, grouped by leaf
}

func rcBuildBVH(sc []float64) *rcBVH {
	b := &rcBVH{}
	idx := make([]int32, rcSpheres)
	for i := range idx {
		idx[i] = int32(i)
	}
	var build func(items []int32) int32
	build = func(items []int32) int32 {
		node := int32(len(b.left))
		b.left = append(b.left, -1)
		b.right = append(b.right, -1)
		b.start = append(b.start, -1)
		b.count = append(b.count, 0)
		lo := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
		hi := [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
		for _, s := range items {
			for a := 0; a < 3; a++ {
				c, r := sc[int(s)*5+a], sc[int(s)*5+3]
				lo[a] = math.Min(lo[a], c-r)
				hi[a] = math.Max(hi[a], c+r)
			}
		}
		b.bounds = append(b.bounds, lo[0], lo[1], lo[2], hi[0], hi[1], hi[2])
		if len(items) <= rcLeafSize {
			b.start[node] = int32(len(b.order))
			b.count[node] = int32(len(items))
			b.order = append(b.order, items...)
			return node
		}
		axis := 0
		if hi[1]-lo[1] > hi[axis]-lo[axis] {
			axis = 1
		}
		if hi[2]-lo[2] > hi[axis]-lo[axis] {
			axis = 2
		}
		sorted := append([]int32(nil), items...)
		sort.Slice(sorted, func(x, y int) bool {
			cx, cy := sc[int(sorted[x])*5+axis], sc[int(sorted[y])*5+axis]
			if cx != cy {
				return cx < cy
			}
			return sorted[x] < sorted[y]
		})
		mid := len(sorted) / 2
		l := build(sorted[:mid])
		r := build(sorted[mid:])
		b.left[node], b.right[node] = l, r
		return node
	}
	build(idx)
	return b
}

// rcTraverse intersects the ray (origin 0, direction d) with the BVH,
// reading node bounds and sphere data through the given loaders, and
// returns the shade at the nearest hit.
func rcTraverse(b *rcBVH, nodeAt func(i int) float64, sphereAt func(i int) float64, dx, dy, dz float64) float64 {
	bestT := math.Inf(1)
	shade := 0.05
	inv := [3]float64{1 / dx, 1 / dy, 1 / dz}
	var stack [64]int32
	sp := 0
	stack[sp] = 0
	sp++
	for sp > 0 {
		sp--
		node := int(stack[sp])
		// Slab test against the node bounds.
		tmin, tmax := 0.0, bestT
		hit := true
		for a := 0; a < 3; a++ {
			lo := nodeAt(node*6 + a)
			hi := nodeAt(node*6 + 3 + a)
			t0 := lo * inv[a]
			t1 := hi * inv[a]
			if t0 > t1 {
				t0, t1 = t1, t0
			}
			if t0 > tmin {
				tmin = t0
			}
			if t1 < tmax {
				tmax = t1
			}
			if tmin > tmax {
				hit = false
				break
			}
		}
		if !hit {
			continue
		}
		if b.left[node] < 0 {
			for k := 0; k < int(b.count[node]); k++ {
				s := int(b.order[int(b.start[node])+k])
				cx, cy, cz := sphereAt(s*5), sphereAt(s*5+1), sphereAt(s*5+2)
				rad, alb := sphereAt(s*5+3), sphereAt(s*5+4)
				bq := -(dx*cx + dy*cy + dz*cz)
				cq := cx*cx + cy*cy + cz*cz - rad*rad
				disc := bq*bq - cq
				if disc <= 0 {
					continue
				}
				thit := -bq - math.Sqrt(disc)
				if thit > 1e-6 && thit < bestT {
					bestT = thit
					hx, hy, hz := dx*thit-cx, dy*thit-cy, dz*thit-cz
					nl := math.Sqrt(hx*hx + hy*hy + hz*hz)
					lambert := (hx*0.57735 + hy*0.57735 + hz*-0.57735) / nl
					if lambert < 0 {
						lambert = 0
					}
					shade = 0.1 + alb*lambert
				}
			}
			continue
		}
		stack[sp] = b.left[node]
		sp++
		stack[sp] = b.right[node]
		sp++
	}
	return shade
}

func rcRay(px, py, w, h int) (float64, float64, float64) {
	dx := (float64(px)+0.5)/float64(w)*2 - 1
	dy := (float64(py)+0.5)/float64(h)*2 - 1
	dz := 1.5
	norm := math.Sqrt(dx*dx + dy*dy + dz*dz)
	return dx / norm, dy / norm, dz / norm
}

func rcSerial(n int) float64 {
	sc := rcScene()
	bvh := rcBuildBVH(sc)
	nodeAt := func(i int) float64 { return bvh.bounds[i] }
	sphereAt := func(i int) float64 { return sc[i] }
	h := n
	var sum float64
	for y := 0; y < h; y++ {
		for x := 0; x < rcWidth; x++ {
			dx, dy, dz := rcRay(x, y, rcWidth, h)
			sum += rcTraverse(bvh, nodeAt, sphereAt, dx, dy, dz) * float64((x+y)%7+1)
		}
	}
	return sum
}

// Raycast is the PBBS ray-casting kernel: primary rays are traced in
// parallel, one task per pixel, through a bounding-volume hierarchy over
// the scene. Each ray reads the bounds and sphere data along its own
// traversal path, so different steps touch different subsets of the
// shared scene — which is why raycast issues by far the most LCA queries
// relative to its size, with the highest unique fraction (91% in the
// paper's Table 1).
func Raycast() Kernel {
	run := func(s *avd.Session, n int) float64 {
		sc := rcScene()
		bvh := rcBuildBVH(sc)
		nodes := s.NewFloatArray("bvh", len(bvh.bounds))
		scene := s.NewFloatArray("scene", len(sc))
		frame := s.NewFloatArray("framebuffer", rcWidth*n)
		var sum float64
		s.Run(func(t *avd.Task) {
			for i := range bvh.bounds {
				nodes.Store(t, i, bvh.bounds[i])
			}
			for i := range sc {
				scene.Store(t, i, sc[i])
			}
			h := n
			avd.ParallelRange(t, 0, h*rcWidth, 1, func(t *avd.Task, lo, hi int) {
				nodeAt := func(i int) float64 { return nodes.Load(t, i) }
				sphereAt := func(i int) float64 { return scene.Load(t, i) }
				for p := lo; p < hi; p++ {
					x, y := p%rcWidth, p/rcWidth
					dx, dy, dz := rcRay(x, y, rcWidth, h)
					frame.Store(t, p, rcTraverse(bvh, nodeAt, sphereAt, dx, dy, dz))
				}
			})
			for p := 0; p < h*rcWidth; p++ {
				x, y := p%rcWidth, p/rcWidth
				sum += frame.Value(p) * float64((x+y)%7+1)
			}
		})
		return sum
	}
	check := func(n int, sum float64) error {
		want := rcSerial(n)
		if !approxEqual(sum, want, 1e-9) {
			return fmt.Errorf("raycast: checksum %g, want %g", sum, want)
		}
		return nil
	}
	return Kernel{Name: "raycast", DefaultN: 64, Run: run, Check: check}
}
