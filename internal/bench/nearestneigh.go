package bench

import (
	"fmt"
	"sort"

	avd "github.com/taskpar/avd"
)

// kd-tree over 2D points, built sequentially (uninstrumented, as tree
// construction is not the measured sharing pattern) and queried in
// parallel with instrumented coordinate reads.

type kdNode struct {
	point       int // index into the point set
	axis        int
	left, right *kdNode
}

func kdBuild(pts []float64, idx []int, axis int) *kdNode {
	if len(idx) == 0 {
		return nil
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := pts[2*idx[a]+axis], pts[2*idx[b]+axis]
		if va != vb {
			return va < vb
		}
		return idx[a] < idx[b]
	})
	m := len(idx) / 2
	n := &kdNode{point: idx[m], axis: axis}
	leftIdx := append([]int(nil), idx[:m]...)
	rightIdx := append([]int(nil), idx[m+1:]...)
	n.left = kdBuild(pts, leftIdx, 1-axis)
	n.right = kdBuild(pts, rightIdx, 1-axis)
	return n
}

// kdQuery finds the nearest tree point to query q (excluding exact index
// match), reading coordinates through load.
func kdQuery(n *kdNode, load func(i int) (float64, float64), qx, qy float64, self int, best *int, bestD *float64) {
	if n == nil {
		return
	}
	px, py := load(n.point)
	if n.point != self {
		d := (px-qx)*(px-qx) + (py-qy)*(py-qy)
		if *best < 0 || d < *bestD || (d == *bestD && n.point < *best) {
			*bestD, *best = d, n.point
		}
	}
	var axisQ, axisP float64
	if n.axis == 0 {
		axisQ, axisP = qx, px
	} else {
		axisQ, axisP = qy, py
	}
	near, far := n.left, n.right
	if axisQ > axisP {
		near, far = far, near
	}
	kdQuery(near, load, qx, qy, self, best, bestD)
	if diff := axisQ - axisP; diff*diff <= *bestD || *best < 0 {
		kdQuery(far, load, qx, qy, self, best, bestD)
	}
}

func nnPoints(n int) []float64 {
	r := newRng(808)
	pts := make([]float64, 2*n)
	for i := range pts {
		pts[i] = r.float() * 1000
	}
	return pts
}

func nnSerial(n int) int64 {
	pts := nnPoints(n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	root := kdBuild(pts, idx, 0)
	var sum int64
	for i := 0; i < n; i++ {
		best, bestD := -1, 0.0
		kdQuery(root, func(j int) (float64, float64) { return pts[2*j], pts[2*j+1] },
			pts[2*i], pts[2*i+1], i, &best, &bestD)
		sum += int64(best) * int64(i%97+1)
	}
	return sum
}

// Nearestneigh is the PBBS all-nearest-neighbors kernel: a kd-tree is
// built over the point set and every point queries its nearest neighbor
// in parallel. Tree-node coordinates near the root are re-read by nearly
// every query step, yielding many locations with a moderate LCA-query
// profile as in Table 1.
func Nearestneigh() Kernel {
	run := func(s *avd.Session, n int) float64 {
		raw := nnPoints(n)
		pts := s.NewFloatArray("points", 2*n)
		nearest := s.NewIntArray("nearest", n)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		root := kdBuild(raw, idx, 0)

		var sum int64
		s.Run(func(t *avd.Task) {
			for i := range raw {
				pts.Store(t, i, raw[i])
			}
			avd.ParallelRange(t, 0, n, grainFor(n, 8), func(t *avd.Task, lo, hi int) {
				load := func(j int) (float64, float64) {
					return pts.Load(t, 2*j), pts.Load(t, 2*j+1)
				}
				for i := lo; i < hi; i++ {
					best, bestD := -1, 0.0
					kdQuery(root, load, raw[2*i], raw[2*i+1], i, &best, &bestD)
					nearest.Store(t, i, int64(best))
				}
			})
			for i := 0; i < n; i++ {
				sum += nearest.Value(i) * int64(i%97+1)
			}
		})
		return float64(sum)
	}
	check := func(n int, sum float64) error {
		want := float64(nnSerial(n))
		if sum != want {
			return fmt.Errorf("nearestneigh: checksum %g, want %g", sum, want)
		}
		return nil
	}
	return Kernel{Name: "nearestneigh", DefaultN: 4000, Run: run, Check: check}
}
