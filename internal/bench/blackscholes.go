package bench

import (
	"fmt"
	"math"

	avd "github.com/taskpar/avd"
)

// blackscholesInputs generates the option portfolio deterministically.
type bsOption struct {
	spot, strike, rate, vol, time float64
	call                          bool
}

func bsInputs(n int) []bsOption {
	r := newRng(42)
	opts := make([]bsOption, n)
	for i := range opts {
		opts[i] = bsOption{
			spot:   50 + 100*r.float(),
			strike: 50 + 100*r.float(),
			rate:   0.01 + 0.09*r.float(),
			vol:    0.1 + 0.5*r.float(),
			time:   0.25 + 1.75*r.float(),
			call:   r.intn(2) == 0,
		}
	}
	return opts
}

// cndf is the cumulative normal distribution approximation used by the
// PARSEC blackscholes kernel (Abramowitz & Stegun 26.2.17).
func cndf(x float64) float64 {
	sign := false
	if x < 0 {
		x = -x
		sign = true
	}
	k := 1 / (1 + 0.2316419*x)
	poly := k * (0.319381530 + k*(-0.356563782+k*(1.781477937+k*(-1.821255978+k*1.330274429))))
	v := 1 - 1/math.Sqrt(2*math.Pi)*math.Exp(-0.5*x*x)*poly
	if sign {
		return 1 - v
	}
	return v
}

// bsPrice computes the Black-Scholes price of one option.
func bsPrice(o bsOption) float64 {
	sqrtT := math.Sqrt(o.time)
	d1 := (math.Log(o.spot/o.strike) + (o.rate+0.5*o.vol*o.vol)*o.time) / (o.vol * sqrtT)
	d2 := d1 - o.vol*sqrtT
	if o.call {
		return o.spot*cndf(d1) - o.strike*math.Exp(-o.rate*o.time)*cndf(d2)
	}
	return o.strike*math.Exp(-o.rate*o.time)*cndf(-d2) - o.spot*cndf(-d1)
}

// bsValue prices the option and its first-order Greeks (delta and vega
// by central finite differences), the full per-option computation of the
// PARSEC kernel's verification mode. The result folds price and Greeks
// into one output value.
func bsValue(o bsOption) float64 {
	price := bsPrice(o)
	up, dn := o, o
	up.spot *= 1.001
	dn.spot *= 0.999
	delta := (bsPrice(up) - bsPrice(dn)) / (0.002 * o.spot)
	uv, dv := o, o
	uv.vol += 0.001
	dv.vol -= 0.001
	vega := (bsPrice(uv) - bsPrice(dv)) / 0.002
	return price + 0.1*delta + 0.001*vega
}

// Blackscholes is the PARSEC option-pricing kernel: a pure parallel_for
// over independent options. Every instrumented location (the per-option
// inputs and the output price) is touched exactly once, by one step, so
// the checker issues zero LCA queries — the profile Table 1 reports.
func Blackscholes() Kernel {
	run := func(s *avd.Session, n int) float64 {
		opts := bsInputs(n)
		spot := s.NewFloatArray("spot", n)
		strike := s.NewFloatArray("strike", n)
		prices := s.NewFloatArray("prices", n)
		var sum float64
		s.Run(func(t *avd.Task) {
			// Streaming the portfolio into the instrumented input arrays
			// is part of the measured kernel, as in PARSEC.
			for i, o := range opts {
				spot.Store(t, i, o.spot)
				strike.Store(t, i, o.strike)
			}
			avd.ParallelFor(t, 0, n, grainFor(n, 8), func(t *avd.Task, i int) {
				o := opts[i]
				o.spot = spot.Load(t, i)
				o.strike = strike.Load(t, i)
				prices.Store(t, i, bsValue(o))
			})
			// The final reduction is sequential, over uninstrumented
			// values, mirroring the benchmark's verification pass.
			for i := 0; i < n; i++ {
				sum += prices.Value(i)
			}
		})
		return sum
	}
	check := func(n int, sum float64) error {
		var want float64
		for _, o := range bsInputs(n) {
			want += bsValue(o)
		}
		if !approxEqual(sum, want, 1e-9) {
			return fmt.Errorf("blackscholes: checksum %g, want %g", sum, want)
		}
		return nil
	}
	return Kernel{Name: "blackscholes", DefaultN: 20000, Run: run, Check: check}
}
