package bench

import (
	"fmt"
	"sort"

	avd "github.com/taskpar/avd"
)

const (
	sortCutoff = 256 // sort ranges of this size locally at the leaves
)

func sortInput(n int) []int64 {
	r := newRng(606060)
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(r.next() % 1000000)
	}
	return a
}

// Sort is the parallel merge sort from Structured Parallel Programming:
// recursive halving with spawned subsorts over an instrumented array and
// an instrumented scratch buffer. Each element is read and written a
// logarithmic number of times by different steps, giving the small
// locations/nodes/LCA profile Table 1 reports for sort.
func Sort() Kernel {
	run := func(s *avd.Session, n int) float64 {
		input := sortInput(n)
		data := s.NewIntArray("data", n)
		scratch := s.NewIntArray("scratch", n)

		// leafSort pulls a leaf range into task-local memory, sorts it,
		// and writes it back: one instrumented read and write per element,
		// as a cache-resident base case would.
		leafSort := func(t *avd.Task, lo, hi int) {
			buf := make([]int64, hi-lo)
			for i := lo; i < hi; i++ {
				buf[i-lo] = data.Load(t, i)
			}
			sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
			for i := lo; i < hi; i++ {
				data.Store(t, i, buf[i-lo])
			}
		}
		merge := func(t *avd.Task, lo, mid, hi int) {
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				a, b := data.Load(t, i), data.Load(t, j)
				if a <= b {
					scratch.Store(t, k, a)
					i++
				} else {
					scratch.Store(t, k, b)
					j++
				}
				k++
			}
			for i < mid {
				scratch.Store(t, k, data.Load(t, i))
				i, k = i+1, k+1
			}
			for j < hi {
				scratch.Store(t, k, data.Load(t, j))
				j, k = j+1, k+1
			}
			for x := lo; x < hi; x++ {
				data.Store(t, x, scratch.Load(t, x))
			}
		}
		var parSort func(t *avd.Task, lo, hi int)
		parSort = func(t *avd.Task, lo, hi int) {
			if hi-lo <= sortCutoff {
				leafSort(t, lo, hi)
				return
			}
			mid := lo + (hi-lo)/2
			t.Finish(func(t *avd.Task) {
				t.Spawn(func(ct *avd.Task) { parSort(ct, lo, mid) })
				parSort(t, mid, hi)
			})
			merge(t, lo, mid, hi)
		}

		var sum float64
		s.Run(func(t *avd.Task) {
			for i, v := range input {
				data.Store(t, i, v)
			}
			parSort(t, 0, n)
			prev := int64(-1)
			for i := 0; i < n; i++ {
				v := data.Value(i)
				if v < prev {
					panic("sort: output not sorted")
				}
				prev = v
				sum += float64(v) * float64(i%31+1)
			}
		})
		return sum
	}
	check := func(n int, sum float64) error {
		input := sortInput(n)
		// Reference: counting via a simple serial merge sort.
		sorted := append([]int64(nil), input...)
		var ms func(a []int64) []int64
		ms = func(a []int64) []int64 {
			if len(a) < 2 {
				return a
			}
			m := len(a) / 2
			l, r := ms(append([]int64(nil), a[:m]...)), ms(append([]int64(nil), a[m:]...))
			out := make([]int64, 0, len(a))
			i, j := 0, 0
			for i < len(l) && j < len(r) {
				if l[i] <= r[j] {
					out = append(out, l[i])
					i++
				} else {
					out = append(out, r[j])
					j++
				}
			}
			out = append(out, l[i:]...)
			out = append(out, r[j:]...)
			return out
		}
		sorted = ms(sorted)
		var want float64
		for i, v := range sorted {
			want += float64(v) * float64(i%31+1)
		}
		if sum != want {
			return fmt.Errorf("sort: checksum %g, want %g", sum, want)
		}
		return nil
	}
	return Kernel{Name: "sort", DefaultN: 20000, Run: run, Check: check}
}
