// Package bench implements the thirteen benchmark applications of the
// paper's evaluation (Table 1, Figures 13 and 14) as miniature-but-real
// task parallel kernels on the avd runtime: five TBB applications from
// PARSEC (blackscholes, bodytrack, streamcluster, swaptions,
// fluidanimate), five geometry/graphics applications from PBBS
// (convexhull, delrefine, deltriang, nearestneigh, raycast — plus sort),
// and kernels from the Structured Parallel Programming book (karatsuba,
// kmeans, sort).
//
// Each kernel keeps the original application's algorithmic skeleton and,
// importantly for the evaluation, its sharing profile: which data is
// shared, how often steps revisit locations (driving two-access
// patterns and LCA queries), and how accumulations are locked. All
// kernels are properly synchronized — like the paper's benchmarks they
// are performance workloads, so a precise checker must report zero
// violations on them (asserted by the tests).
package bench

import (
	"fmt"
	"math"

	avd "github.com/taskpar/avd"
)

// Kernel is one benchmark application.
type Kernel struct {
	// Name matches Table 1 of the paper.
	Name string
	// DefaultN is the default problem size used by the harness.
	DefaultN int
	// Run executes one instance on the session (which may be configured
	// with any checker) and returns a checksum.
	Run func(s *avd.Session, n int) float64
	// Check validates the checksum for problem size n.
	Check func(n int, sum float64) error
}

// All returns the thirteen kernels in the paper's Table 1 order.
func All() []Kernel {
	return []Kernel{
		Blackscholes(),
		Bodytrack(),
		Streamcluster(),
		Swaptions(),
		Fluidanimate(),
		Convexhull(),
		Delrefine(),
		Deltriang(),
		Karatsuba(),
		Kmeans(),
		Nearestneigh(),
		Raycast(),
		Sort(),
	}
}

// ByName returns the kernel with the given name.
func ByName(name string) (Kernel, error) {
	for _, k := range All() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("bench: unknown kernel %q", name)
}

// rng is a small deterministic xorshift64* generator so kernels are
// reproducible without math/rand allocation overhead in hot loops.
type rng uint64

func newRng(seed uint64) rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return rng(seed)
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545F4914F6CDD1D
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// approxEqual compares checksums with a relative tolerance; parallel
// floating-point reductions are order-sensitive.
func approxEqual(got, want, relTol float64) bool {
	if got == want {
		return true
	}
	diff := math.Abs(got - want)
	scale := math.Max(math.Abs(got), math.Abs(want))
	return diff <= relTol*math.Max(scale, 1)
}

// grainFor picks a fine leaf grain (roughly 2048 leaves per loop),
// mirroring the fine task granularity of the paper's TBB benchmarks —
// Table 1's DPST sizes and unique-LCA fractions presuppose many small
// steps.
func grainFor(n, _ int) int {
	g := n / 2048
	if g < 1 {
		g = 1
	}
	return g
}
