package bench

import (
	"math"
	"sort"
	"testing"
)

// hullSize computes the convex hull vertex count via monotone chain.
func hullSize(pts [][2]float64) int {
	n := len(pts)
	if n < 3 {
		return n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa[0] != pb[0] {
			return pa[0] < pb[0]
		}
		return pa[1] < pb[1]
	})
	build := func(ord []int) []int {
		var h []int
		for _, i := range ord {
			for len(h) >= 2 {
				a, b := pts[h[len(h)-2]], pts[h[len(h)-1]]
				if chCross(a[0], a[1], b[0], b[1], pts[i][0], pts[i][1]) <= 0 {
					h = h[:len(h)-1]
				} else {
					break
				}
			}
			h = append(h, i)
		}
		return h
	}
	lower := build(idx)
	rev := make([]int, n)
	for i := range idx {
		rev[i] = idx[n-1-i]
	}
	upper := build(rev)
	return len(lower) + len(upper) - 2
}

func hullArea2(pts [][2]float64) float64 {
	// Doubled area of the convex hull via the shoelace over the hull.
	n := len(pts)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa[0] != pb[0] {
			return pa[0] < pb[0]
		}
		return pa[1] < pb[1]
	})
	build := func(ord []int) []int {
		var h []int
		for _, i := range ord {
			for len(h) >= 2 {
				a, b := pts[h[len(h)-2]], pts[h[len(h)-1]]
				if chCross(a[0], a[1], b[0], b[1], pts[i][0], pts[i][1]) <= 0 {
					h = h[:len(h)-1]
				} else {
					break
				}
			}
			h = append(h, i)
		}
		return h
	}
	lower := build(idx)
	rev := make([]int, n)
	for i := range idx {
		rev[i] = idx[n-1-i]
	}
	upper := build(rev)
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	var area2 float64
	for i := range hull {
		a := pts[hull[i]]
		b := pts[hull[(i+1)%len(hull)]]
		area2 += a[0]*b[1] - b[0]*a[1]
	}
	return math.Abs(area2)
}

func TestBowyerWatsonSquare(t *testing.T) {
	pts := [][2]float64{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	tris := dtBowyerWatson(pts)
	if len(tris) != 2 {
		t.Fatalf("square triangulated into %d triangles, want 2", len(tris))
	}
	var area float64
	for _, tr := range tris {
		a, b, c := pts[tr[0]], pts[tr[1]], pts[tr[2]]
		area += math.Abs(chCross(a[0], a[1], b[0], b[1], c[0], c[1]))
	}
	if math.Abs(area-2) > 1e-12 { // doubled area of the unit square
		t.Fatalf("triangulation area2 = %f, want 2", area)
	}
}

func TestBowyerWatsonDegenerate(t *testing.T) {
	if got := dtBowyerWatson(nil); got != nil {
		t.Error("empty input must yield no triangles")
	}
	if got := dtBowyerWatson([][2]float64{{0, 0}, {1, 1}}); got != nil {
		t.Error("two points must yield no triangles")
	}
	collinear := [][2]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	if got := dtBowyerWatson(collinear); len(got) != 0 {
		t.Errorf("collinear points yielded %d triangles", len(got))
	}
	dup := [][2]float64{{0, 0}, {1, 0}, {0, 1}, {0, 0}}
	if got := dtBowyerWatson(dup); len(got) != 1 {
		t.Errorf("duplicate point handling yielded %d triangles, want 1", len(got))
	}
}

// TestBowyerWatsonRandom checks the two defining global invariants on
// random point sets: the Euler count 2n-2-h and exact coverage of the
// convex hull area, plus the empty-circumcircle property on a sample.
func TestBowyerWatsonRandom(t *testing.T) {
	r := newRng(123)
	for trial := 0; trial < 40; trial++ {
		n := 20 + int(r.next()%180)
		pts := make([][2]float64, n)
		for i := range pts {
			pts[i] = [2]float64{r.float() * 100, r.float() * 100}
		}
		tris := dtBowyerWatson(pts)
		h := hullSize(pts)
		want := 2*n - 2 - h
		if len(tris) != want {
			t.Fatalf("trial %d: %d triangles for n=%d h=%d, want %d", trial, len(tris), n, h, want)
		}
		var area2 float64
		for _, tr := range tris {
			a, b, c := pts[tr[0]], pts[tr[1]], pts[tr[2]]
			area2 += math.Abs(chCross(a[0], a[1], b[0], b[1], c[0], c[1]))
		}
		if wantArea := hullArea2(pts); math.Abs(area2-wantArea) > 1e-6*wantArea {
			t.Fatalf("trial %d: triangulation area2 %f != hull area2 %f", trial, area2, wantArea)
		}
		// Empty-circumcircle property on a sample of triangle/point pairs.
		d := &dtTriangulation{pts: pts}
		for s := 0; s < 200; s++ {
			tr := tris[int(r.next()%uint64(len(tris)))]
			p := int(r.next() % uint64(n))
			if p == tr[0] || p == tr[1] || p == tr[2] {
				continue
			}
			if d.inCircumcircle(dTri{a: tr[0], b: tr[1], c: tr[2]}, pts[p][0]-1e-9, pts[p][1]) &&
				d.inCircumcircle(dTri{a: tr[0], b: tr[1], c: tr[2]}, pts[p][0]+1e-9, pts[p][1]) {
				t.Fatalf("trial %d: point %d strictly inside circumcircle of %v", trial, p, tr)
			}
		}
	}
}
