package bench_test

import (
	"testing"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/bench"
)

// testSize shrinks the default problem size so checked configurations
// stay fast in unit tests.
func testSize(k bench.Kernel) int {
	n := k.DefaultN / 4
	switch k.Name {
	case "fluidanimate", "raycast": // n is a grid/image dimension
		n = k.DefaultN / 2
	case "swaptions":
		n = 8
	case "karatsuba":
		n = 256
	}
	if n < 8 {
		n = 8
	}
	return n
}

func TestRegistry(t *testing.T) {
	ks := bench.All()
	if len(ks) != 13 {
		t.Fatalf("registry has %d kernels, want 13", len(ks))
	}
	names := map[string]bool{}
	for _, k := range ks {
		if k.Name == "" || k.Run == nil || k.Check == nil || k.DefaultN <= 0 {
			t.Errorf("kernel %q incompletely defined", k.Name)
		}
		if names[k.Name] {
			t.Errorf("duplicate kernel %q", k.Name)
		}
		names[k.Name] = true
	}
	if _, err := bench.ByName("kmeans"); err != nil {
		t.Error(err)
	}
	if _, err := bench.ByName("nope"); err == nil {
		t.Error("ByName must reject unknown kernels")
	}
}

// TestKernelsCorrectUninstrumented runs every kernel on the baseline
// configuration and validates the checksum against the serial reference.
func TestKernelsCorrectUninstrumented(t *testing.T) {
	for _, k := range bench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			n := testSize(k)
			s := avd.NewSession(avd.Options{Workers: 4, Checker: avd.CheckerNone})
			defer s.Close()
			sum := k.Run(s, n)
			if err := k.Check(n, sum); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestKernelsCorrectAndCleanUnderChecker runs every kernel under the
// optimized checker: results must stay correct and, because all kernels
// are properly synchronized, the checker must report zero violations
// (the paper's benchmarks are violation-free performance workloads).
func TestKernelsCorrectAndCleanUnderChecker(t *testing.T) {
	for _, k := range bench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			n := testSize(k)
			s := avd.NewSession(avd.Options{Workers: 4})
			defer s.Close()
			sum := k.Run(s, n)
			if err := k.Check(n, sum); err != nil {
				t.Fatal(err)
			}
			rep := s.Report()
			if rep.ViolationCount != 0 {
				t.Fatalf("checker reported %d violations on a synchronized kernel:\n%v",
					rep.ViolationCount, rep.Violations)
			}
			if rep.Stats.Locations == 0 || rep.Stats.DPSTNodes == 0 {
				t.Errorf("missing stats: %+v", rep.Stats)
			}
		})
	}
}

// TestKernelsCleanUnderStrictChecker: the kernels must stay clean even
// under the strict-lock extension, which additionally reports
// same-critical-section pairs torn by unsynchronized parallel accesses —
// i.e. the kernels are free of that class of races too.
func TestKernelsCleanUnderStrictChecker(t *testing.T) {
	for _, k := range bench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			n := testSize(k)
			s := avd.NewSession(avd.Options{Workers: 4, StrictLockChecks: true})
			defer s.Close()
			sum := k.Run(s, n)
			if err := k.Check(n, sum); err != nil {
				t.Fatal(err)
			}
			if rep := s.Report(); rep.ViolationCount != 0 {
				t.Fatalf("strict checker reported %d violations:\n%v",
					rep.ViolationCount, rep.Violations)
			}
		})
	}
}

// TestKernelsUnderVelodrome: the baseline checker must also run every
// kernel correctly and silently.
func TestKernelsUnderVelodrome(t *testing.T) {
	for _, k := range bench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			n := testSize(k)
			s := avd.NewSession(avd.Options{Workers: 4, Checker: avd.CheckerVelodrome})
			defer s.Close()
			sum := k.Run(s, n)
			if err := k.Check(n, sum); err != nil {
				t.Fatal(err)
			}
			if c := s.Report().Cycles; c != 0 {
				t.Fatalf("velodrome reported %d cycles on a synchronized kernel", c)
			}
		})
	}
}

// TestKernelsLinkedLayout exercises the Figure 14 ablation configuration.
func TestKernelsLinkedLayout(t *testing.T) {
	for _, k := range bench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			n := testSize(k)
			s := avd.NewSession(avd.Options{Workers: 4, Layout: avd.LayoutLinked})
			defer s.Close()
			sum := k.Run(s, n)
			if err := k.Check(n, sum); err != nil {
				t.Fatal(err)
			}
			if s.Report().ViolationCount != 0 {
				t.Fatal("linked layout must agree: zero violations")
			}
		})
	}
}

// TestBlackscholesZeroLCAs asserts the Table 1 peculiarity the paper
// calls out: blackscholes performs no LCA queries at all.
func TestBlackscholesZeroLCAs(t *testing.T) {
	k, err := bench.ByName("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	s := avd.NewSession(avd.Options{Workers: 4})
	defer s.Close()
	if sum := k.Run(s, 2000); k.Check(2000, sum) != nil {
		t.Fatal("blackscholes incorrect")
	}
	if q := s.Report().Stats.LCAQueries; q != 0 {
		t.Fatalf("blackscholes issued %d LCA queries, want 0", q)
	}
}
