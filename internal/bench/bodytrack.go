package bench

import (
	"fmt"
	"math"

	avd "github.com/taskpar/avd"
)

const btFrames = 4

// btLikelihood is the synthetic observation model: a deterministic,
// smooth function of the particle state and the frame, standing in for
// bodytrack's edge/silhouette likelihood evaluation.
func btLikelihood(state float64, frame int) float64 {
	x := state - float64(frame)*0.37
	return math.Exp(-x*x) + 1e-9*state
}

func btInitialStates(n int) []float64 {
	r := newRng(7)
	states := make([]float64, n)
	for i := range states {
		states[i] = 4 * (r.float() - 0.5)
	}
	return states
}

// btSerial runs the particle filter sequentially for verification.
func btSerial(n int) float64 {
	states := btInitialStates(n)
	var sum float64
	for frame := 0; frame < btFrames; frame++ {
		best, bestW := 0, math.Inf(-1)
		sum = 0
		for i := 0; i < n; i++ {
			w := btLikelihood(states[i], frame)
			sum += w
			if w > bestW {
				bestW, best = w, i
			}
		}
		anchor := states[best]
		for i := 0; i < n; i++ {
			states[i] = 0.5*states[i] + 0.5*anchor + 0.01*float64(i%17-8)
		}
	}
	return sum
}

// Bodytrack is the PARSEC particle-filter kernel: per frame, particle
// weights are evaluated in parallel, reduced into a locked global sum,
// and the best particle is tracked under a lock; the sequential
// resampling step then re-reads every weight. Weights are revisited
// across frames by different steps, which drives the moderate LCA-query
// count the paper reports for bodytrack.
func Bodytrack() Kernel {
	run := func(s *avd.Session, n int) float64 {
		states := btInitialStates(n)
		weights := s.NewFloatArray("weights", n)
		sumW := s.NewFloatVar("sumWeights")
		bestW := s.NewFloatVar("bestWeight")
		bestI := s.NewIntVar("bestIndex")
		s.Atomic(bestW, bestI) // the (weight, index) pair must stay consistent
		lock := s.NewMutex("reduce")

		var result float64
		s.Run(func(t *avd.Task) {
			for frame := 0; frame < btFrames; frame++ {
				fr := frame
				sumW.Store(t, 0)
				bestW.Store(t, math.Inf(-1))
				bestI.Store(t, 0)
				avd.ParallelRange(t, 0, n, grainFor(n, 8), func(t *avd.Task, lo, hi int) {
					// Leaf-local reduction, merged in one critical section
					// per leaf step (the idiomatic TBB reduction shape).
					local, lbW, lbI := 0.0, math.Inf(-1), 0
					for i := lo; i < hi; i++ {
						w := btLikelihood(states[i], fr)
						weights.Store(t, i, w)
						local += w
						if w > lbW {
							lbW, lbI = w, i
						}
					}
					lock.Lock(t)
					sumW.Add(t, local)
					if lbW > bestW.Load(t) {
						bestW.Store(t, lbW)
						bestI.Store(t, int64(lbI))
					}
					lock.Unlock(t)
				})
				// Sequential resampling around the best particle.
				anchor := states[bestI.Load(t)]
				for i := 0; i < n; i++ {
					_ = weights.Load(t, i) // normalization pass
					states[i] = 0.5*states[i] + 0.5*anchor + 0.01*float64(i%17-8)
				}
				result = sumW.Load(t)
			}
		})
		return result
	}
	check := func(n int, sum float64) error {
		want := btSerial(n)
		if !approxEqual(sum, want, 1e-6) {
			return fmt.Errorf("bodytrack: checksum %g, want %g", sum, want)
		}
		return nil
	}
	return Kernel{Name: "bodytrack", DefaultN: 4000, Run: run, Check: check}
}
