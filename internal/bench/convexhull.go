package bench

import (
	"fmt"

	avd "github.com/taskpar/avd"
)

func chPoints(n int) []float64 {
	r := newRng(77)
	pts := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		// A disc-ish cloud: hull size grows slowly with n.
		x, y := 2*r.float()-1, 2*r.float()-1
		pts[2*i], pts[2*i+1] = x*100, y*100
	}
	return pts
}

// chCross is twice the signed area of triangle (a, b, c); positive when
// c lies left of a->b.
func chCross(ax, ay, bx, by, cx, cy float64) float64 {
	return (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
}

// chSerialHull runs sequential quickhull and returns the hull-index sum.
func chSerialHull(n int) int64 {
	pts := chPoints(n)
	at := func(i int) (float64, float64) { return pts[2*i], pts[2*i+1] }
	lo, hi := 0, 0
	for i := 1; i < n; i++ {
		if pts[2*i] < pts[2*lo] {
			lo = i
		}
		if pts[2*i] > pts[2*hi] {
			hi = i
		}
	}
	onHull := map[int]bool{lo: true, hi: true}
	var rec func(set []int, a, b int)
	rec = func(set []int, a, b int) {
		if len(set) == 0 {
			return
		}
		ax, ay := at(a)
		bx, by := at(b)
		far, farD := -1, 0.0
		for _, i := range set {
			cx, cy := at(i)
			d := chCross(ax, ay, bx, by, cx, cy)
			if d > farD || (d == farD && far >= 0 && i > far) {
				far, farD = i, d
			}
		}
		if far < 0 {
			return
		}
		onHull[far] = true
		fx, fy := at(far)
		var left, right []int
		for _, i := range set {
			if i == far {
				continue
			}
			cx, cy := at(i)
			if chCross(ax, ay, fx, fy, cx, cy) > 0 {
				left = append(left, i)
			} else if chCross(fx, fy, bx, by, cx, cy) > 0 {
				right = append(right, i)
			}
		}
		rec(left, a, far)
		rec(right, far, b)
	}
	var upper, lower []int
	ax, ay := at(lo)
	bx, by := at(hi)
	for i := 0; i < n; i++ {
		if i == lo || i == hi {
			continue
		}
		cx, cy := at(i)
		if chCross(ax, ay, bx, by, cx, cy) > 0 {
			upper = append(upper, i)
		} else if chCross(bx, by, ax, ay, cx, cy) > 0 {
			lower = append(lower, i)
		}
	}
	rec(upper, lo, hi)
	rec(lower, hi, lo)
	var sum int64
	for i := range onHull {
		sum += int64(i)
	}
	return sum
}

// Convexhull is the PBBS quickhull kernel: divide-and-conquer over the
// point set, spawning a task per sub-hull. Point coordinates are
// instrumented and re-read at every recursion level by different steps,
// and the recursion produces many small tasks — matching the paper's
// profile of a very large DPST relative to the location count.
func Convexhull() Kernel {
	run := func(s *avd.Session, n int) float64 {
		raw := chPoints(n)
		pts := s.NewFloatArray("points", 2*n)
		flags := s.NewIntArray("onHull", n)
		var sum int64
		s.Run(func(t *avd.Task) {
			for i := range raw {
				pts.Store(t, i, raw[i])
			}
			at := func(t *avd.Task, i int) (float64, float64) {
				return pts.Load(t, 2*i), pts.Load(t, 2*i+1)
			}
			lo, hi := 0, 0
			for i := 1; i < n; i++ {
				if raw[2*i] < raw[2*lo] {
					lo = i
				}
				if raw[2*i] > raw[2*hi] {
					hi = i
				}
			}
			flags.Store(t, lo, 1)
			flags.Store(t, hi, 1)
			// farthest finds the point of set with the largest signed
			// distance from line a->b (ties to the larger index), using a
			// parallel reduction for large sets — PBBS quickhull's shape,
			// which gives the recursion its large DPST.
			farthest := func(t *avd.Task, set []int, ax, ay, bx, by float64) int {
				far, farD := -1, 0.0
				if len(set) < 256 {
					for _, i := range set {
						cx, cy := at(t, i)
						d := chCross(ax, ay, bx, by, cx, cy)
						if d > farD || (d == farD && far >= 0 && i > far) {
							far, farD = i, d
						}
					}
					return far
				}
				// The reduction state is shared by all leaves, so it goes
				// through instrumented handles: the checker must see these
				// accesses (and their lock) or the reduction would be a
				// blind spot — exactly what avd-lint's sharedescape flags.
				lock := s.NewMutex("hull.reduce")
				farV := s.NewIntVar("hull.far")
				farDV := s.NewFloatVar("hull.farD")
				farV.Store(t, -1)
				avd.ParallelRange(t, 0, len(set), grainFor(len(set), 8), func(t *avd.Task, lo, hi int) {
					lf, lfD := -1, 0.0
					for _, i := range set[lo:hi] {
						cx, cy := at(t, i)
						d := chCross(ax, ay, bx, by, cx, cy)
						if d > lfD || (d == lfD && lf >= 0 && i > lf) {
							lf, lfD = i, d
						}
					}
					if lf < 0 {
						return
					}
					lock.Lock(t)
					if lfD > farDV.Load(t) || (lfD == farDV.Load(t) && int64(lf) > farV.Load(t)) {
						farV.Store(t, int64(lf))
						farDV.Store(t, lfD)
					}
					lock.Unlock(t)
				})
				return int(farV.Load(t))
			}
			var rec func(t *avd.Task, set []int, a, b int)
			rec = func(t *avd.Task, set []int, a, b int) {
				if len(set) == 0 {
					return
				}
				ax, ay := at(t, a)
				bx, by := at(t, b)
				far := farthest(t, set, ax, ay, bx, by)
				if far < 0 {
					return
				}
				flags.Store(t, far, 1)
				fx, fy := at(t, far)
				var left, right []int
				for _, i := range set {
					if i == far {
						continue
					}
					cx, cy := at(t, i)
					if chCross(ax, ay, fx, fy, cx, cy) > 0 {
						left = append(left, i)
					} else if chCross(fx, fy, bx, by, cx, cy) > 0 {
						right = append(right, i)
					}
				}
				t.Finish(func(t *avd.Task) {
					t.Spawn(func(ct *avd.Task) { rec(ct, left, a, far) })
					rec(t, right, far, b)
				})
			}
			ax, ay := at(t, lo)
			bx, by := at(t, hi)
			var upper, lower []int
			for i := 0; i < n; i++ {
				if i == lo || i == hi {
					continue
				}
				cx, cy := at(t, i)
				if chCross(ax, ay, bx, by, cx, cy) > 0 {
					upper = append(upper, i)
				} else if chCross(bx, by, ax, ay, cx, cy) > 0 {
					lower = append(lower, i)
				}
			}
			t.Finish(func(t *avd.Task) {
				t.Spawn(func(ct *avd.Task) { rec(ct, upper, lo, hi) })
				rec(t, lower, hi, lo)
			})
			for i := 0; i < n; i++ {
				if flags.Value(i) != 0 {
					sum += int64(i)
				}
			}
		})
		return float64(sum)
	}
	check := func(n int, sum float64) error {
		want := float64(chSerialHull(n))
		if sum != want {
			return fmt.Errorf("convexhull: hull index sum %g, want %g", sum, want)
		}
		return nil
	}
	return Kernel{Name: "convexhull", DefaultN: 6000, Run: run, Check: check}
}
