package bench

import "math"

// Bowyer-Watson incremental Delaunay triangulation, used by the
// deltriang kernel. Points are inserted one at a time: the triangles
// whose circumcircle contains the new point form the cavity, the cavity
// boundary is collected, and the cavity is re-triangulated as a fan from
// the new point. A super-triangle enclosing the input bounds the
// construction and is removed at the end.

// dTri is a triangle over point indices; negative indices name the three
// super-triangle vertices.
type dTri struct {
	a, b, c int
	alive   bool
}

// dtTriangulation is the working state of one Bowyer-Watson run.
type dtTriangulation struct {
	pts  [][2]float64
	sup  [3][2]float64
	tris []dTri
}

func (d *dtTriangulation) coord(i int) (float64, float64) {
	if i < 0 {
		v := d.sup[-i-1]
		return v[0], v[1]
	}
	return d.pts[i][0], d.pts[i][1]
}

// inCircumcircle reports whether point p lies strictly inside the
// circumcircle of triangle t, using the standard 3x3 determinant on
// coordinates translated to p (positive for counter-clockwise triangles).
func (d *dtTriangulation) inCircumcircle(t dTri, px, py float64) bool {
	ax, ay := d.coord(t.a)
	bx, by := d.coord(t.b)
	cx, cy := d.coord(t.c)
	// Ensure counter-clockwise orientation.
	if chCross(ax, ay, bx, by, cx, cy) < 0 {
		bx, by, cx, cy = cx, cy, bx, by
	}
	ax -= px
	ay -= py
	bx -= px
	by -= py
	cx -= px
	cy -= py
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	return det > 0
}

type dEdge struct{ u, v int }

func normEdge(u, v int) dEdge {
	if u > v {
		u, v = v, u
	}
	return dEdge{u, v}
}

// compact drops dead triangles once they dominate the slice, keeping the
// cavity scan linear in the number of live triangles.
func (d *dtTriangulation) compact() {
	live := d.tris[:0]
	for _, t := range d.tris {
		if t.alive {
			live = append(live, t)
		}
	}
	d.tris = live
}

// insert adds point index p to the triangulation.
func (d *dtTriangulation) insert(p int) {
	px, py := d.coord(p)
	// Cavity: all live triangles whose circumcircle contains p. The
	// boundary edges are those that belong to exactly one cavity
	// triangle.
	boundary := make(map[dEdge]int)
	for i := range d.tris {
		t := &d.tris[i]
		if !t.alive || !d.inCircumcircle(*t, px, py) {
			continue
		}
		t.alive = false
		for _, e := range [3]dEdge{normEdge(t.a, t.b), normEdge(t.b, t.c), normEdge(t.c, t.a)} {
			boundary[e]++
		}
	}
	dead := 0
	for _, t := range d.tris {
		if !t.alive {
			dead++
		}
	}
	if dead*2 > len(d.tris) {
		d.compact()
	}
	for e, n := range boundary {
		if n != 1 {
			continue // interior cavity edge
		}
		d.tris = append(d.tris, dTri{a: e.u, b: e.v, c: p, alive: true})
	}
}

// dtBowyerWatson triangulates the points and returns the triangles (as
// index triples) of the Delaunay triangulation, excluding every triangle
// touching the super-triangle. Duplicate points are skipped.
func dtBowyerWatson(pts [][2]float64) [][3]int {
	if len(pts) < 3 {
		return nil
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p[0])
		maxX = math.Max(maxX, p[0])
		minY = math.Min(minY, p[1])
		maxY = math.Max(maxY, p[1])
	}
	dx, dy := maxX-minX, maxY-minY
	dmax := math.Max(math.Max(dx, dy), 1)
	midX, midY := (minX+maxX)/2, (minY+maxY)/2
	// The super-triangle stands in for three points at infinity; placing
	// it very far out makes the finite circumcircle tests against its
	// vertices converge to the correct half-plane limits (hull sliver
	// triangles can have circumcircles hundreds of times larger than the
	// point cloud).
	const far = 1e7
	d := &dtTriangulation{
		pts: pts,
		sup: [3][2]float64{
			{midX - far*dmax, midY - far*dmax/2},
			{midX, midY + far*dmax},
			{midX + far*dmax, midY - far*dmax/2},
		},
	}
	d.tris = append(d.tris, dTri{a: -1, b: -2, c: -3, alive: true})
	seen := make(map[[2]float64]bool, len(pts))
	for i := range pts {
		if seen[pts[i]] {
			continue
		}
		seen[pts[i]] = true
		d.insert(i)
	}
	var out [][3]int
	for _, t := range d.tris {
		if t.alive && t.a >= 0 && t.b >= 0 && t.c >= 0 {
			out = append(out, [3]int{t.a, t.b, t.c})
		}
	}
	return out
}
