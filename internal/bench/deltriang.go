package bench

import (
	"fmt"
	"sort"

	avd "github.com/taskpar/avd"
)

const dtBuckets = 32

func dtPoints(n int) []float64 {
	r := newRng(31337)
	pts := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		pts[2*i] = r.float() * 1000
		pts[2*i+1] = r.float() * 1000
	}
	return pts
}

// dtBucketize assigns points to x-ranged buckets deterministically.
func dtBucketize(pts []float64, n int) [][]int {
	buckets := make([][]int, dtBuckets)
	for i := 0; i < n; i++ {
		b := int(pts[2*i] / 1000 * dtBuckets)
		if b >= dtBuckets {
			b = dtBuckets - 1
		}
		buckets[b] = append(buckets[b], i)
	}
	for _, b := range buckets {
		sort.Ints(b)
	}
	return buckets
}

// dtTriangulate runs Bowyer-Watson over the bucket's points (given as
// original indices with a coordinate lookup) and returns the Delaunay
// triangles as original-index triples.
func dtTriangulate(coord func(i int) (float64, float64), idx []int) [][3]int {
	local := make([][2]float64, len(idx))
	for k, i := range idx {
		x, y := coord(i)
		local[k] = [2]float64{x, y}
	}
	tris := dtBowyerWatson(local)
	out := make([][3]int, len(tris))
	for k, t := range tris {
		out[k] = [3]int{idx[t[0]], idx[t[1]], idx[t[2]]}
	}
	return out
}

func dtSerial(n int) float64 {
	pts := dtPoints(n)
	buckets := dtBucketize(pts, n)
	coord := func(i int) (float64, float64) { return pts[2*i], pts[2*i+1] }
	var count int64
	var area float64
	for _, b := range buckets {
		for _, tr := range dtTriangulate(coord, b) {
			ax, ay := coord(tr[0])
			bx, by := coord(tr[1])
			cx, cy := coord(tr[2])
			a2 := chCross(ax, ay, bx, by, cx, cy)
			if a2 < 0 {
				a2 = -a2
			}
			count++
			area += a2
		}
	}
	return float64(count)*1e6 + area
}

// Deltriang is the PBBS Delaunay-triangulation kernel: points are
// bucketed spatially, each bucket is triangulated by an independent task
// running incremental Bowyer-Watson over the instrumented coordinates,
// and the per-triangle statistics are computed in parallel and reduced
// under a lock. Coordinate locations are read a handful of times each,
// giving the many-locations profile Table 1 reports for deltriang.
func Deltriang() Kernel {
	run := func(s *avd.Session, n int) float64 {
		raw := dtPoints(n)
		pts := s.NewFloatArray("points", 2*n)
		perBucket := s.NewIntArray("bucketTriangles", dtBuckets)
		totalCount := s.NewIntVar("triangles")
		totalArea := s.NewFloatVar("area")
		lock := s.NewMutex("stats")
		buckets := dtBucketize(raw, n)

		var sum float64
		s.Run(func(t *avd.Task) {
			for i := range raw {
				pts.Store(t, i, raw[i])
			}
			t.Finish(func(t *avd.Task) {
				for b := 0; b < dtBuckets; b++ {
					b := b
					t.Spawn(func(t *avd.Task) {
						idx := buckets[b]
						if len(idx) < 3 {
							perBucket.Store(t, b, 0)
							return
						}
						// Pull the bucket's coordinates once through the
						// instrumented array and run Bowyer-Watson locally,
						// then compute the per-triangle statistics in
						// parallel (instrumented vertex reads), merging each
						// leaf under the stats lock.
						tris := dtTriangulate(func(i int) (float64, float64) {
							return pts.Load(t, 2*i), pts.Load(t, 2*i+1)
						}, idx)
						avd.ParallelRange(t, 0, len(tris), grainFor(len(tris), 8), func(t *avd.Task, lo, hi int) {
							load := func(i int) (float64, float64) {
								return pts.Load(t, 2*i), pts.Load(t, 2*i+1)
							}
							var count int64
							var area float64
							for k := lo; k < hi; k++ {
								ax, ay := load(tris[k][0])
								bx, by := load(tris[k][1])
								cx, cy := load(tris[k][2])
								a2 := chCross(ax, ay, bx, by, cx, cy)
								if a2 < 0 {
									a2 = -a2
								}
								count++
								area += a2
							}
							lock.Lock(t)
							perBucket.Add(t, b, count)
							totalCount.Add(t, count)
							totalArea.Add(t, area)
							lock.Unlock(t)
						})
					})
				}
			})
			var count int64
			for b := 0; b < dtBuckets; b++ {
				count += perBucket.Value(b)
			}
			if count != totalCount.Load(t) {
				panic("deltriang: per-bucket and global counts disagree")
			}
			sum = float64(count)*1e6 + totalArea.Load(t)
		})
		return sum
	}
	check := func(n int, sum float64) error {
		want := dtSerial(n)
		if !approxEqual(sum, want, 1e-9) {
			return fmt.Errorf("deltriang: checksum %g, want %g", sum, want)
		}
		return nil
	}
	return Kernel{Name: "deltriang", DefaultN: 8000, Run: run, Check: check}
}
