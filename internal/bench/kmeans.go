package bench

import (
	"fmt"

	avd "github.com/taskpar/avd"
)

const (
	kmK     = 8
	kmDim   = 4
	kmIters = 5
)

func kmPoints(n int) []float64 {
	r := newRng(2024)
	pts := make([]float64, n*kmDim)
	for i := range pts {
		// Coordinates on an exact 1/256 grid: cluster sums are then exact
		// in float64 regardless of reduction order, so the parallel
		// iteration trajectory matches the serial reference bit-for-bit.
		pts[i] = float64(r.intn(2560)) / 256
	}
	return pts
}

func kmNearest(pts []float64, i int, centroids []float64) int {
	best, bestD := 0, 0.0
	for c := 0; c < kmK; c++ {
		var d float64
		for k := 0; k < kmDim; k++ {
			x := pts[i*kmDim+k] - centroids[c*kmDim+k]
			d += x * x
		}
		if c == 0 || d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// kmSerial is the reference clustering; returns the membership checksum
// (exact) plus the final centroid checksum (approximate).
func kmSerial(n int) (int64, []float64) {
	pts := kmPoints(n)
	centroids := make([]float64, kmK*kmDim)
	copy(centroids, pts[:kmK*kmDim])
	member := make([]int, n)
	for it := 0; it < kmIters; it++ {
		sums := make([]float64, kmK*kmDim)
		counts := make([]int64, kmK)
		for i := 0; i < n; i++ {
			c := kmNearest(pts, i, centroids)
			member[i] = c
			counts[c]++
			for k := 0; k < kmDim; k++ {
				sums[c*kmDim+k] += pts[i*kmDim+k]
			}
		}
		for c := 0; c < kmK; c++ {
			if counts[c] > 0 {
				for k := 0; k < kmDim; k++ {
					centroids[c*kmDim+k] = sums[c*kmDim+k] / float64(counts[c])
				}
			}
		}
	}
	var msum int64
	for i, c := range member {
		msum += int64((c + 1) * (i%101 + 1))
	}
	return msum, centroids
}

// Kmeans is the clustering kernel from Structured Parallel Programming:
// per iteration, points are assigned to the nearest centroid in parallel
// (re-reading the shared instrumented centroids) and the per-cluster
// sums and counts are merged under per-cluster locks. Repeated revisits
// of the centroid and accumulator locations by fresh steps every
// iteration produce the very high LCA-query count with a high unique
// fraction that Table 1 reports for kmeans.
func Kmeans() Kernel {
	run := func(s *avd.Session, n int) float64 {
		pts := kmPoints(n)
		points := s.NewFloatArray("points", n*kmDim)
		centroids := s.NewFloatArray("centroids", kmK*kmDim)
		sums := s.NewFloatArray("sums", kmK*kmDim)
		counts := s.NewIntArray("counts", kmK)
		member := s.NewIntArray("membership", n)
		locks := make([]*avd.Mutex, kmK)
		for c := range locks {
			locks[c] = s.NewMutex(fmt.Sprintf("cluster-%d", c))
		}

		var msum int64
		s.Run(func(t *avd.Task) {
			for i := 0; i < n*kmDim; i++ {
				points.Store(t, i, pts[i])
			}
			for i := 0; i < kmK*kmDim; i++ {
				centroids.Store(t, i, pts[i])
			}
			for it := 0; it < kmIters; it++ {
				for i := 0; i < kmK*kmDim; i++ {
					sums.Store(t, i, 0)
				}
				for c := 0; c < kmK; c++ {
					counts.Store(t, c, 0)
				}
				avd.ParallelRange(t, 0, n, grainFor(n, 8), func(t *avd.Task, lo, hi int) {
					// Leaf-local accumulation, merged per cluster in one
					// critical section each.
					localSums := make([]float64, kmK*kmDim)
					localCounts := make([]int64, kmK)
					cent := make([]float64, kmK*kmDim)
					for i := range cent {
						cent[i] = centroids.Load(t, i)
					}
					var coord [kmDim]float64
					for i := lo; i < hi; i++ {
						for k := 0; k < kmDim; k++ {
							coord[k] = points.Load(t, i*kmDim+k)
						}
						best, bestD := 0, 0.0
						for c := 0; c < kmK; c++ {
							var d float64
							for k := 0; k < kmDim; k++ {
								x := coord[k] - cent[c*kmDim+k]
								d += x * x
							}
							if c == 0 || d < bestD {
								best, bestD = c, d
							}
						}
						member.Store(t, i, int64(best))
						localCounts[best]++
						for k := 0; k < kmDim; k++ {
							localSums[best*kmDim+k] += coord[k]
						}
					}
					// Ordered full acquisition of the touched cluster locks:
					// the leaf's merge is one atomic block per step.
					var held []int
					for c := 0; c < kmK; c++ {
						if localCounts[c] != 0 {
							held = append(held, c)
							locks[c].Lock(t)
						}
					}
					for _, c := range held {
						counts.Add(t, c, localCounts[c])
						for k := 0; k < kmDim; k++ {
							sums.Add(t, c*kmDim+k, localSums[c*kmDim+k])
						}
					}
					for i := len(held) - 1; i >= 0; i-- {
						locks[held[i]].Unlock(t)
					}
				})
				for c := 0; c < kmK; c++ {
					cnt := counts.Value(c)
					if cnt > 0 {
						for k := 0; k < kmDim; k++ {
							centroids.Store(t, c*kmDim+k, sums.Value(c*kmDim+k)/float64(cnt))
						}
					}
				}
			}
			for i := 0; i < n; i++ {
				msum += (member.Value(i) + 1) * int64(i%101+1)
			}
		})
		return float64(msum)
	}
	check := func(n int, sum float64) error {
		want, _ := kmSerial(n)
		// Centroid float accumulation is order-dependent, which can in
		// principle flip a nearest-centroid tie; the generated points
		// make ties measure-zero, so memberships must match exactly.
		if sum != float64(want) {
			return fmt.Errorf("kmeans: membership checksum %g, want %d", sum, want)
		}
		return nil
	}
	return Kernel{Name: "kmeans", DefaultN: 10000, Run: run, Check: check}
}
