package bench

import (
	"fmt"
	"math/big"

	avd "github.com/taskpar/avd"
)

const (
	kaBase      = 1 << 16 // 16-bit limbs: schoolbook sums stay in int64
	kaCutoff    = 32      // schoolbook below this size
	kaSpawnSize = 64      // spawn subproducts above this size
)

// kaOperand is a multiplication operand: either a window into an
// instrumented limb array (an original input, re-read at every recursion
// level) or a materialized plain slice (a derived a0+a1 sum).
type kaOperand struct {
	arr  *avd.IntArray
	off  int
	n    int
	data []int64
}

func (o kaOperand) len() int { return o.n }

func (o kaOperand) at(t *avd.Task, i int) int64 {
	if i >= o.n {
		return 0
	}
	if o.arr != nil {
		return o.arr.Load(t, o.off+i)
	}
	return o.data[i]
}

func (o kaOperand) slice(off, n int) kaOperand {
	if off >= o.n {
		return kaOperand{n: 0}
	}
	if off+n > o.n {
		n = o.n - off
	}
	if o.arr != nil {
		return kaOperand{arr: o.arr, off: o.off + off, n: n}
	}
	return kaOperand{data: o.data[off : off+n], n: n}
}

// kaSum materializes lo+hi limbwise (no carry: coefficients may exceed
// the base; the final normalization handles it).
func kaSum(t *avd.Task, lo, hi kaOperand) kaOperand {
	n := lo.len()
	if hi.len() > n {
		n = hi.len()
	}
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		out[i] = lo.at(t, i) + hi.at(t, i)
	}
	return kaOperand{data: out, n: n}
}

// kaSchoolbook is the base-case coefficient product.
func kaSchoolbook(t *avd.Task, a, b kaOperand) []int64 {
	if a.len() == 0 || b.len() == 0 {
		return nil
	}
	out := make([]int64, a.len()+b.len()-1)
	for i := 0; i < a.len(); i++ {
		ai := a.at(t, i)
		for j := 0; j < b.len(); j++ {
			out[i+j] += ai * b.at(t, j)
		}
	}
	return out
}

// kaMul is the parallel Karatsuba recursion over coefficient arrays.
func kaMul(t *avd.Task, a, b kaOperand) []int64 {
	n := a.len()
	if b.len() > n {
		n = b.len()
	}
	if n <= kaCutoff {
		return kaSchoolbook(t, a, b)
	}
	m := n / 2
	a0, a1 := a.slice(0, m), a.slice(m, n-m)
	b0, b1 := b.slice(0, m), b.slice(m, n-m)
	var z0, z1, z2 []int64
	compute := func(t *avd.Task) {
		z1 = kaMul(t, kaSum(t, a0, a1), kaSum(t, b0, b1))
	}
	if n >= kaSpawnSize {
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(ct *avd.Task) { z0 = kaMul(ct, a0, b0) })
			t.Spawn(func(ct *avd.Task) { z2 = kaMul(ct, a1, b1) })
			compute(t)
		})
	} else {
		z0 = kaMul(t, a0, b0)
		z2 = kaMul(t, a1, b1)
		compute(t)
	}
	out := make([]int64, a.len()+b.len()-1)
	add := func(dst int, src []int64, sign int64) {
		for i, v := range src {
			out[dst+i] += sign * v
		}
	}
	add(0, z0, 1)
	add(2*m, z2, 1)
	add(m, z1, 1)
	add(m, z0, -1)
	add(m, z2, -1)
	return out
}

// kaNormalize carries the coefficient array into canonical limbs.
func kaNormalize(coef []int64, limbs int) []int64 {
	out := make([]int64, limbs)
	var carry int64
	for i := 0; i < limbs; i++ {
		v := carry
		if i < len(coef) {
			v += coef[i]
		}
		out[i] = v & (kaBase - 1)
		carry = v >> 16
	}
	if carry != 0 {
		panic("karatsuba: overflow in normalization")
	}
	return out
}

func kaInput(n int, seed uint64) []int64 {
	r := newRng(seed)
	limbs := make([]int64, n)
	for i := range limbs {
		limbs[i] = int64(r.next() % kaBase)
	}
	limbs[n-1] |= 1 << 12 // keep the top limb non-zero
	return limbs
}

func kaToBig(limbs []int64) *big.Int {
	x := new(big.Int)
	for i := len(limbs) - 1; i >= 0; i-- {
		x.Lsh(x, 16)
		x.Or(x, big.NewInt(limbs[i]))
	}
	return x
}

// Karatsuba is the Structured Parallel Programming big-integer
// multiplication kernel: recursive three-way Karatsuba with spawned
// subproducts. The original operand limbs are instrumented and re-read
// by the parallel recursion at every level (for the a0+a1 sums and the
// schoolbook leaves), giving the modest location/LCA profile Table 1
// reports for karatsuba.
func Karatsuba() Kernel {
	runFn := func(s *avd.Session, n int) float64 {
		aw := kaInput(n, 17)
		bw := kaInput(n, 23)
		aArr := s.NewIntArray("A", n)
		bArr := s.NewIntArray("B", n)
		res := s.NewIntArray("product", 2*n)
		var checksum float64
		s.Run(func(t *avd.Task) {
			for i := 0; i < n; i++ {
				aArr.Store(t, i, aw[i])
				bArr.Store(t, i, bw[i])
			}
			coef := kaMul(t,
				kaOperand{arr: aArr, n: n},
				kaOperand{arr: bArr, n: n})
			norm := kaNormalize(coef, 2*n)
			for i, v := range norm {
				res.Store(t, i, v)
			}
			for i := 0; i < 2*n; i++ {
				checksum += float64(res.Value(i)) * float64(i%31+1)
			}
		})
		return checksum
	}
	check := func(n int, sum float64) error {
		a := kaToBig(kaInput(n, 17))
		b := kaToBig(kaInput(n, 23))
		prod := new(big.Int).Mul(a, b)
		var want float64
		mask := big.NewInt(kaBase - 1)
		tmp := new(big.Int).Set(prod)
		for i := 0; i < 2*n; i++ {
			limb := new(big.Int).And(tmp, mask)
			want += float64(limb.Int64()) * float64(i%31+1)
			tmp.Rsh(tmp, 16)
		}
		if tmp.Sign() != 0 {
			return fmt.Errorf("karatsuba: product wider than 2n limbs")
		}
		if sum != want {
			return fmt.Errorf("karatsuba: checksum %g, want %g (product mismatch vs math/big)", sum, want)
		}
		return nil
	}
	return Kernel{Name: "karatsuba", DefaultN: 1024, Run: runFn, Check: check}
}
