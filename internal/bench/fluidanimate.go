package bench

import (
	"fmt"
	"sort"

	avd "github.com/taskpar/avd"
)

const (
	faSteps   = 3
	faRegions = 16 // lock striping over cells
)

// faNeighbors yields the grid neighborhood (including the cell itself)
// of cell (x, y) on a g x g grid.
func faNeighbors(g, x, y int, f func(int)) {
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx, ny := x+dx, y+dy
			if nx >= 0 && nx < g && ny >= 0 && ny < g {
				f(ny*g + nx)
			}
		}
	}
}

func faInitMass(g int) []float64 {
	r := newRng(99)
	m := make([]float64, g*g)
	for i := range m {
		m[i] = 0.5 + r.float()
	}
	return m
}

// faSerial is the reference simulation.
func faSerial(g int) float64 {
	mass := faInitMass(g)
	density := make([]float64, g*g)
	acc := make([]float64, g*g)
	for step := 0; step < faSteps; step++ {
		for y := 0; y < g; y++ {
			for x := 0; x < g; x++ {
				var d float64
				faNeighbors(g, x, y, func(nb int) { d += mass[nb] })
				density[y*g+x] = d / 9
			}
		}
		for i := range acc {
			acc[i] = 0
		}
		for y := 0; y < g; y++ {
			for x := 0; x < g; x++ {
				c := y*g + x
				faNeighbors(g, x, y, func(nb int) {
					acc[nb] += (density[c] - density[nb]) * 0.05
				})
			}
		}
		for i := range mass {
			mass[i] += acc[i]
		}
	}
	var sum float64
	for i := range mass {
		sum += mass[i] * float64(i%13+1)
	}
	return sum
}

// Fluidanimate is the PARSEC grid-based SPH kernel: per time step, a
// density phase reads each cell's neighborhood, a force phase scatters
// contributions into neighbor cells under striped locks (with per-leaf
// privatization, the standard fluidanimate optimization), and an update
// phase advances the per-cell state. Every cell array is revisited each
// time step by different steps, driving the high ratio of LCA queries to
// DPST nodes the paper reports.
func Fluidanimate() Kernel {
	run := func(s *avd.Session, n int) float64 {
		g := n
		cells := g * g
		mass := s.NewFloatArray("mass", cells)
		density := s.NewFloatArray("density", cells)
		acc := s.NewFloatArray("acc", cells)
		locks := make([]*avd.Mutex, faRegions)
		for i := range locks {
			locks[i] = s.NewMutex(fmt.Sprintf("region-%d", i))
		}
		init := faInitMass(g)

		var sum float64
		s.Run(func(t *avd.Task) {
			for i := 0; i < cells; i++ {
				mass.Store(t, i, init[i])
			}
			for step := 0; step < faSteps; step++ {
				// Density phase: gather from the neighborhood.
				avd.ParallelRange(t, 0, cells, grainFor(cells, 8), func(t *avd.Task, lo, hi int) {
					for c := lo; c < hi; c++ {
						x, y := c%g, c/g
						var d float64
						faNeighbors(g, x, y, func(nb int) { d += mass.Load(t, nb) })
						density.Store(t, c, d/9)
					}
				})
				avd.ParallelFor(t, 0, cells, grainFor(cells, 4), func(t *avd.Task, c int) {
					acc.Store(t, c, 0)
				})
				// Force phase: scatter into neighbors. Each leaf privatizes
				// its contributions and merges each target cell in one
				// critical section.
				avd.ParallelRange(t, 0, cells, grainFor(cells, 8), func(t *avd.Task, lo, hi int) {
					local := make(map[int]float64)
					for c := lo; c < hi; c++ {
						x, y := c%g, c/g
						dc := density.Load(t, c)
						faNeighbors(g, x, y, func(nb int) {
							local[nb] += (dc - density.Load(t, nb)) * 0.05
						})
					}
					// Acquire every region the leaf touches in ascending
					// order before merging: the merge is then one atomic
					// block per step (no release/re-acquire a concurrent
					// leaf could slip between), and ordered acquisition
					// keeps the striped locks deadlock-free.
					var regions []int
					seen := [faRegions]bool{}
					for nb := range local {
						if r := nb % faRegions; !seen[r] {
							seen[r] = true
							regions = append(regions, r)
						}
					}
					sort.Ints(regions)
					for _, r := range regions {
						locks[r].Lock(t)
					}
					for nb, v := range local {
						acc.Add(t, nb, v)
					}
					for i := len(regions) - 1; i >= 0; i-- {
						locks[regions[i]].Unlock(t)
					}
				})
				// Update phase: advance each cell.
				avd.ParallelRange(t, 0, cells, grainFor(cells, 8), func(t *avd.Task, lo, hi int) {
					for c := lo; c < hi; c++ {
						mass.Store(t, c, mass.Load(t, c)+acc.Load(t, c))
					}
				})
			}
			for i := 0; i < cells; i++ {
				sum += mass.Value(i) * float64(i%13+1)
			}
		})
		return sum
	}
	check := func(n int, sum float64) error {
		want := faSerial(n)
		if !approxEqual(sum, want, 1e-6) {
			return fmt.Errorf("fluidanimate: checksum %g, want %g", sum, want)
		}
		return nil
	}
	return Kernel{Name: "fluidanimate", DefaultN: 48, Run: run, Check: check}
}
