package bench

import (
	"fmt"
	"sort"

	avd "github.com/taskpar/avd"
)

const (
	drRounds    = 4
	drThreshold = 0.5
	drRegions   = 16
)

// Delaunay refinement, modeled on a fixed mesh graph: each triangle has
// a quality score; a refinement round "splits" every triangle below the
// quality threshold, which improves its own quality and perturbs its
// neighbors'. All arithmetic uses exactly representable multiples of
// 1/1024 so the result is schedule-independent despite locked parallel
// accumulation.

const drUnit = 1.0 / 1024

// drInitQuality produces qualities on the exact grid.
func drInitQuality(n int) []float64 {
	r := newRng(555)
	q := make([]float64, n)
	for i := range q {
		q[i] = float64(r.intn(1024)) * drUnit
	}
	return q
}

// drNeighbors enumerates the mesh neighbors of triangle i (a ring
// lattice with two skip links, standing in for mesh adjacency).
func drNeighbors(n, i int, f func(int)) {
	f((i + 1) % n)
	f((i + n - 1) % n)
	f((i + 7) % n)
}

func drSerial(n int) float64 {
	q := drInitQuality(n)
	for round := 0; round < drRounds; round++ {
		delta := make([]float64, n)
		for i := 0; i < n; i++ {
			if q[i] < drThreshold {
				delta[i] += float64(256+i%64) * drUnit
				drNeighbors(n, i, func(nb int) {
					delta[nb] -= float64(2+i%4) * drUnit
				})
			}
		}
		for i := 0; i < n; i++ {
			q[i] += delta[i]
			if q[i] < 0 {
				q[i] = 0
			}
		}
	}
	var sum float64
	for i := range q {
		sum += q[i] * float64(i%7+1)
	}
	return sum
}

// Delrefine is the PBBS Delaunay-refinement kernel shape: rounds of
// identify-bad-triangles (parallel reads of the quality array) followed
// by split-and-perturb (scatter of exact deltas into neighbors under
// striped locks with per-leaf privatization). The quality array is
// revisited every round, giving the high LCA-query count with a high
// unique fraction that Table 1 reports for delrefine.
func Delrefine() Kernel {
	run := func(s *avd.Session, n int) float64 {
		quality := s.NewFloatArray("quality", n)
		delta := s.NewFloatArray("delta", n)
		locks := make([]*avd.Mutex, drRegions)
		for i := range locks {
			locks[i] = s.NewMutex(fmt.Sprintf("mesh-region-%d", i))
		}
		init := drInitQuality(n)

		var sum float64
		s.Run(func(t *avd.Task) {
			for i := 0; i < n; i++ {
				quality.Store(t, i, init[i])
			}
			for round := 0; round < drRounds; round++ {
				avd.ParallelFor(t, 0, n, grainFor(n, 4), func(t *avd.Task, i int) {
					delta.Store(t, i, 0)
				})
				// Identify & scatter: privatized per leaf, one critical
				// section per touched cell.
				avd.ParallelRange(t, 0, n, grainFor(n, 8), func(t *avd.Task, lo, hi int) {
					local := make(map[int]float64)
					for i := lo; i < hi; i++ {
						if quality.Load(t, i) < drThreshold {
							local[i] += float64(256+i%64) * drUnit
							drNeighbors(n, i, func(nb int) {
								local[nb] -= float64(2+i%4) * drUnit
							})
						}
					}
					// Ordered full acquisition of the touched regions keeps
					// each leaf's merge one atomic block (see fluidanimate).
					var regions []int
					seen := [drRegions]bool{}
					for cell := range local {
						if r := cell % drRegions; !seen[r] {
							seen[r] = true
							regions = append(regions, r)
						}
					}
					sort.Ints(regions)
					for _, r := range regions {
						locks[r].Lock(t)
					}
					for cell, v := range local {
						delta.Add(t, cell, v)
					}
					for i := len(regions) - 1; i >= 0; i-- {
						locks[regions[i]].Unlock(t)
					}
				})
				// Apply phase.
				avd.ParallelRange(t, 0, n, grainFor(n, 8), func(t *avd.Task, lo, hi int) {
					for i := lo; i < hi; i++ {
						q := quality.Load(t, i) + delta.Load(t, i)
						if q < 0 {
							q = 0
						}
						quality.Store(t, i, q)
					}
				})
			}
			for i := 0; i < n; i++ {
				sum += quality.Value(i) * float64(i%7+1)
			}
		})
		return sum
	}
	check := func(n int, sum float64) error {
		want := drSerial(n)
		if sum != want {
			return fmt.Errorf("delrefine: checksum %g, want %g (exact arithmetic)", sum, want)
		}
		return nil
	}
	return Kernel{Name: "delrefine", DefaultN: 12000, Run: run, Check: check}
}
