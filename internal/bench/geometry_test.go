package bench

import (
	"math"
	"testing"
)

// TestKdQueryMatchesBruteForce validates the kd-tree nearest-neighbor
// search against an exhaustive scan — the kernel's serial reference uses
// the same kd-tree, so this is the independent correctness check.
func TestKdQueryMatchesBruteForce(t *testing.T) {
	r := newRng(404)
	for trial := 0; trial < 10; trial++ {
		n := 50 + int(r.next()%200)
		pts := make([]float64, 2*n)
		for i := range pts {
			pts[i] = r.float() * 1000
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		root := kdBuild(pts, idx, 0)
		load := func(j int) (float64, float64) { return pts[2*j], pts[2*j+1] }
		for q := 0; q < n; q++ {
			best, bestD := -1, 0.0
			kdQuery(root, load, pts[2*q], pts[2*q+1], q, &best, &bestD)
			// Brute force.
			bf, bfD := -1, math.Inf(1)
			for j := 0; j < n; j++ {
				if j == q {
					continue
				}
				dx, dy := pts[2*j]-pts[2*q], pts[2*j+1]-pts[2*q+1]
				d := dx*dx + dy*dy
				if d < bfD || (d == bfD && j < bf) {
					bf, bfD = j, d
				}
			}
			if best != bf {
				t.Fatalf("trial %d query %d: kd-tree found %d (d=%g), brute force %d (d=%g)",
					trial, q, best, bestD, bf, bfD)
			}
		}
	}
}

// TestBVHTraverseMatchesBruteForce validates the raycast BVH traversal
// against testing every sphere directly, for a grid of rays.
func TestBVHTraverseMatchesBruteForce(t *testing.T) {
	sc := rcScene()
	bvh := rcBuildBVH(sc)
	nodeAt := func(i int) float64 { return bvh.bounds[i] }
	sphereAt := func(i int) float64 { return sc[i] }

	bruteForce := func(dx, dy, dz float64) float64 {
		bestT := math.Inf(1)
		shade := 0.05
		for i := 0; i < rcSpheres; i++ {
			cx, cy, cz := sc[i*5], sc[i*5+1], sc[i*5+2]
			rad, alb := sc[i*5+3], sc[i*5+4]
			b := -(dx*cx + dy*cy + dz*cz)
			c := cx*cx + cy*cy + cz*cz - rad*rad
			disc := b*b - c
			if disc <= 0 {
				continue
			}
			thit := -b - math.Sqrt(disc)
			if thit > 1e-6 && thit < bestT {
				bestT = thit
				hx, hy, hz := dx*thit-cx, dy*thit-cy, dz*thit-cz
				nl := math.Sqrt(hx*hx + hy*hy + hz*hz)
				lambert := (hx*0.57735 + hy*0.57735 + hz*-0.57735) / nl
				if lambert < 0 {
					lambert = 0
				}
				shade = 0.1 + alb*lambert
			}
		}
		return shade
	}

	const w, h = 48, 48
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx, dy, dz := rcRay(x, y, w, h)
			got := rcTraverse(bvh, nodeAt, sphereAt, dx, dy, dz)
			want := bruteForce(dx, dy, dz)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("pixel (%d,%d): BVH shade %g != brute force %g", x, y, got, want)
			}
		}
	}
}

// TestBVHStructure: every sphere appears in exactly one leaf and every
// node's bounds contain its spheres.
func TestBVHStructure(t *testing.T) {
	sc := rcScene()
	b := rcBuildBVH(sc)
	seen := make([]int, rcSpheres)
	for n := range b.left {
		if b.left[n] >= 0 {
			continue
		}
		for k := 0; k < int(b.count[n]); k++ {
			s := int(b.order[int(b.start[n])+k])
			seen[s]++
			for a := 0; a < 3; a++ {
				c, rad := sc[s*5+a], sc[s*5+3]
				if c-rad < b.bounds[n*6+a]-1e-9 || c+rad > b.bounds[n*6+3+a]+1e-9 {
					t.Fatalf("sphere %d escapes node %d bounds on axis %d", s, n, a)
				}
			}
		}
	}
	for s, n := range seen {
		if n != 1 {
			t.Fatalf("sphere %d appears in %d leaves", s, n)
		}
	}
}

// TestCndf: the cumulative normal approximation must be monotone, hit
// the midpoint exactly, and respect symmetry within the published error
// of the Abramowitz-Stegun polynomial (~7.5e-8).
func TestCndf(t *testing.T) {
	if math.Abs(cndf(0)-0.5) > 1e-7 {
		t.Errorf("cndf(0) = %g", cndf(0))
	}
	prev := -1.0
	for x := -6.0; x <= 6.0; x += 0.01 {
		v := cndf(x)
		if v < prev-1e-9 {
			t.Fatalf("cndf not monotone at %g", x)
		}
		if s := cndf(x) + cndf(-x); math.Abs(s-1) > 2e-7 {
			t.Fatalf("cndf symmetry broken at %g: %g", x, s)
		}
		prev = v
	}
	if cndf(6) < 0.999999 || cndf(-6) > 1e-6 {
		t.Error("cndf tails wrong")
	}
}

// TestSwPathDeterministic: the Monte-Carlo path payoff is a pure
// function of (swaption, trial).
func TestSwPathDeterministic(t *testing.T) {
	for sw := 0; sw < 4; sw++ {
		for tr := 0; tr < 8; tr++ {
			a, b := swPath(sw, tr), swPath(sw, tr)
			if a != b {
				t.Fatalf("swPath(%d,%d) nondeterministic", sw, tr)
			}
			if a < 0 || math.IsNaN(a) || a > 10 {
				t.Fatalf("swPath(%d,%d) = %g out of range", sw, tr, a)
			}
		}
	}
	// Payoffs are floored at zero (a deep out-of-the-money swaption can
	// produce all-zero trials), so check non-degeneracy across the whole
	// portfolio rather than per swaption.
	distinct := map[float64]bool{}
	for sw := 0; sw < 8; sw++ {
		for tr := 0; tr < 64; tr++ {
			distinct[swPath(sw, tr)] = true
		}
	}
	if len(distinct) < 10 {
		t.Errorf("portfolio payoffs degenerate: %d distinct values", len(distinct))
	}
}

// TestFaNeighbors: neighborhood sizes and bounds on the grid.
func TestFaNeighbors(t *testing.T) {
	counts := map[int]int{}
	const g = 4
	for y := 0; y < g; y++ {
		for x := 0; x < g; x++ {
			n := 0
			faNeighbors(g, x, y, func(nb int) {
				if nb < 0 || nb >= g*g {
					t.Fatalf("neighbor %d out of range", nb)
				}
				n++
			})
			counts[n]++
		}
	}
	// 4 corners (4 neighbors incl. self), 8 edges (6), 4 interior (9).
	if counts[4] != 4 || counts[6] != 8 || counts[9] != 4 {
		t.Fatalf("neighborhood size distribution wrong: %v", counts)
	}
}
