package bench

import (
	"fmt"

	avd "github.com/taskpar/avd"
)

const (
	scDim       = 3
	scChunkDiv  = 4 // points arrive in n/scChunkDiv-sized chunks
	scMaxCenter = 6 // centers opened over the stream, one per chunk
)

func scPoints(n int) []float64 {
	r := newRng(1234)
	pts := make([]float64, n*scDim)
	for i := range pts {
		pts[i] = r.float() * 100
	}
	return pts
}

func scDist2(pts []float64, i int, center []float64) float64 {
	var d float64
	for k := 0; k < scDim; k++ {
		x := pts[i*scDim+k] - center[k]
		d += x * x
	}
	return d
}

// scSerial computes the reference cost and assignment checksum.
func scSerial(n int) (float64, int64) {
	pts := scPoints(n)
	chunk := n / scChunkDiv
	var centers [][]float64
	var cost float64
	var assignSum int64
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		if len(centers) < scMaxCenter {
			c := make([]float64, scDim)
			copy(c, pts[start*scDim:start*scDim+scDim])
			centers = append(centers, c)
		}
		for i := start; i < end; i++ {
			best, bestD := 0, scDist2(pts, i, centers[0])
			for j := 1; j < len(centers); j++ {
				if d := scDist2(pts, i, centers[j]); d < bestD {
					best, bestD = j, d
				}
			}
			cost += bestD
			assignSum += int64(best * i % 97)
		}
	}
	return cost, assignSum
}

// Streamcluster is the PARSEC streaming k-median kernel: points arrive
// in chunks, each chunk is assigned in parallel to the nearest of the
// currently open centers, the assignment cost is reduced under a lock,
// and a new center is opened between chunks. The shared center
// coordinates are re-read by every step, which drives the large LCA
// query count (with roughly half unique) that Table 1 reports.
func Streamcluster() Kernel {
	run := func(s *avd.Session, n int) float64 {
		pts := scPoints(n)
		chunk := n / scChunkDiv
		centers := s.NewFloatArray("centers", scMaxCenter*scDim)
		assign := s.NewIntArray("assign", n)
		cost := s.NewFloatVar("cost")
		lock := s.NewMutex("cost.lock")

		var total float64
		var assignSum int64
		s.Run(func(t *avd.Task) {
			opened := 0
			for start := 0; start < n; start += chunk {
				end := start + chunk
				if end > n {
					end = n
				}
				if opened < scMaxCenter {
					// The streaming thread opens a center at the head of
					// the chunk (sequential, like the facility-opening
					// decision in streamcluster).
					for k := 0; k < scDim; k++ {
						centers.Store(t, opened*scDim+k, pts[start*scDim+k])
					}
					opened++
				}
				nc := opened
				avd.ParallelRange(t, start, end, grainFor(end-start, 8), func(t *avd.Task, lo, hi int) {
					var local float64
					for i := lo; i < hi; i++ {
						best, bestD := 0, 0.0
						for j := 0; j < nc; j++ {
							var d float64
							for k := 0; k < scDim; k++ {
								x := pts[i*scDim+k] - centers.Load(t, j*scDim+k)
								d += x * x
							}
							if j == 0 || d < bestD {
								best, bestD = j, d
							}
						}
						assign.Store(t, i, int64(best))
						local += bestD
					}
					lock.Lock(t)
					cost.Add(t, local)
					lock.Unlock(t)
				})
			}
			total = cost.Load(t)
			for i := 0; i < n; i++ {
				assignSum += assign.Value(i) * int64(i) % 97
			}
		})
		return total + float64(assignSum)
	}
	check := func(n int, sum float64) error {
		cost, assignSum := scSerial(n)
		want := cost + float64(assignSum)
		if !approxEqual(sum, want, 1e-6) {
			return fmt.Errorf("streamcluster: checksum %g, want %g", sum, want)
		}
		return nil
	}
	return Kernel{Name: "streamcluster", DefaultN: 8000, Run: run, Check: check}
}
