package obs

import (
	"sync"
	"testing"
)

func TestStripedConcurrentSum(t *testing.T) {
	var c Striped
	const goroutines = 8
	const per = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(uint64(g), 1)
			}
		}(g)
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*per {
		t.Fatalf("Load() = %d, want %d", got, goroutines*per)
	}
}

func TestHubCountsAndSaturationLatch(t *testing.T) {
	var h Hub
	for i := 0; i < 5; i++ {
		h.Note(EventViolation, uint64(i))
	}
	h.Note(EventDrop, 1)
	h.Note(EventTaskPanic, 2)

	if !h.LatchSaturation(0) {
		t.Fatalf("first LatchSaturation returned false")
	}
	if h.LatchSaturation(1) {
		t.Fatalf("second LatchSaturation returned true; latch must fire once")
	}

	snap := h.Snapshot()
	want := Counts{Violations: 5, Drops: 1, TaskPanics: 1, Saturated: true}
	if snap != want {
		t.Fatalf("Snapshot() = %+v, want %+v", snap, want)
	}
	if got := h.Count(EventSaturation); got != 1 {
		t.Fatalf("Count(EventSaturation) = %d, want 1", got)
	}
}

func TestNilHubIsInert(t *testing.T) {
	var h *Hub
	h.Note(EventViolation, 0)
	if h.LatchSaturation(0) {
		t.Fatalf("nil hub latched")
	}
	if got := h.Snapshot(); got != (Counts{}) {
		t.Fatalf("nil hub Snapshot() = %+v, want zero", got)
	}
	if got := h.Count(EventDrop); got != 0 {
		t.Fatalf("nil hub Count = %d, want 0", got)
	}
}

func TestEventString(t *testing.T) {
	cases := map[Event]string{
		EventViolation:  "violation",
		EventDrop:       "drop",
		EventSaturation: "saturation",
		EventTaskPanic:  "task-panic",
		Event(200):      "event(?)",
	}
	for e, want := range cases {
		if got := e.String(); got != want {
			t.Errorf("Event(%d).String() = %q, want %q", e, got, want)
		}
	}
}

// The hot path of the fabric must not allocate: counting an event is a
// single atomic add.
func TestNoteZeroAllocs(t *testing.T) {
	var h Hub
	if n := testing.AllocsPerRun(1000, func() {
		h.Note(EventViolation, 7)
	}); n != 0 {
		t.Fatalf("Note allocates %v bytes/op, want 0", n)
	}
}
