package obs

import (
	"sync"
	"testing"
)

func TestGaugeLevelAndWatermark(t *testing.T) {
	var g Gauge
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if got := g.Load(); got != 1 {
		t.Fatalf("level %d, want 1", got)
	}
	if got := g.Max(); got != 5 {
		t.Fatalf("watermark %d, want 5", got)
	}
	// The watermark never moves down.
	g.Add(-1)
	if got := g.Max(); got != 5 {
		t.Fatalf("watermark dropped to %d", got)
	}
}

// TestGaugeConcurrent hammers one gauge from many goroutines: the level
// returns to zero when every Add is balanced, and the watermark is at
// least any single goroutine's peak and at most the theoretical sum.
func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	const goroutines = 8
	const per = 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Load(); got != 0 {
		t.Fatalf("balanced adds left level %d", got)
	}
	if max := g.Max(); max < 1 || max > goroutines {
		t.Fatalf("watermark %d outside [1, %d]", max, goroutines)
	}
}
