package obs

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramBucketing pins the log-2 geometry: v lands in the first
// bucket whose inclusive bound (1<<i)-1 is >= v.
func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{(1 << 20) - 1, 20}, {1 << 20, 21},
		{math.MaxInt64, HistBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
		if c.v >= 0 && c.want < HistBuckets {
			if b := BucketBound(c.want); float64(c.v) > b {
				t.Errorf("value %d exceeds its bucket bound %g", c.v, b)
			}
			if c.want > 0 {
				if b := BucketBound(c.want - 1); float64(c.v) <= b {
					t.Errorf("value %d fits the previous bucket bound %g", c.v, b)
				}
			}
		}
	}
	if !math.IsInf(BucketBound(HistBuckets), 1) {
		t.Errorf("overflow bucket bound = %g, want +Inf", BucketBound(HistBuckets))
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 3, 100, -7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 105 {
		t.Fatalf("sum = %d, want 105 (negative clamps to 0)", s.Sum)
	}
	if s.Buckets[0] != 2 { // 0 and clamped -7
		t.Errorf("bucket 0 = %d, want 2", s.Buckets[0])
	}
	if s.Buckets[1] != 2 {
		t.Errorf("bucket 1 = %d, want 2", s.Buckets[1])
	}
	if s.Buckets[2] != 1 || s.Buckets[7] != 1 {
		t.Errorf("buckets = %v", s.Buckets[:8])
	}
}

// TestHistogramConcurrent exercises Observe from many goroutines under
// the race detector and checks the quiescent totals are exact.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	want := int64(workers*per) * int64(workers*per-1) / 2
	if s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
}

// TestHistogramObserveZeroAllocs pins the hot-path allocation contract:
// recording a latency must not allocate.
func TestHistogramObserveZeroAllocs(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v times per call, want 0", allocs)
	}
}
