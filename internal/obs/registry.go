package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MetricType classifies a registered metric for the exposition's # TYPE
// line.
type MetricType string

// Prometheus metric types.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Label is one name="value" pair of a series.
type Label struct {
	Key, Value string
}

// Series is one sample stream of a metric: a label set plus either a
// scalar read function (counters, gauges) or a histogram. Read
// functions are called at scrape time, so registering a closure over an
// atomic counter costs nothing between scrapes.
type Series struct {
	Labels []Label
	// Value supplies the sample for counter and gauge series.
	Value func() float64
	// Hist supplies the buckets for histogram series. Scale divides the
	// bucket bounds and sum on exposition — a histogram observed in
	// nanoseconds with Scale 1e9 exposes seconds, keeping the hot path
	// integer-only while the scrape follows Prometheus base units. Zero
	// means 1.
	Hist  *Histogram
	Scale float64
}

// Metric is one named family: help text, type, and its series.
type Metric struct {
	Name   string
	Help   string
	Type   MetricType
	Series []Series
}

// Registry names a set of metrics and writes them in the Prometheus
// text exposition format. It is dependency-free by design: the checker
// never links a metrics client library, and the writer's output is
// deterministic (families sorted by name, series in registration order)
// so scrapes are diffable and goldens stable. Safe for concurrent
// Register and Write.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*Metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*Metric)}
}

// Register adds a metric family, appending series when the name is
// already registered (the family's help and type are fixed by the first
// registration).
func (r *Registry) Register(m Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.metrics[m.Name]; ok {
		have.Series = append(have.Series, m.Series...)
		return
	}
	cp := m
	cp.Series = append([]Series(nil), m.Series...)
	r.metrics[m.Name] = &cp
}

// Counter registers a single-series counter read from fn.
func (r *Registry) Counter(name, help string, fn func() int64) {
	r.Register(Metric{Name: name, Help: help, Type: TypeCounter,
		Series: []Series{{Value: func() float64 { return float64(fn()) }}}})
}

// Gauge registers a single-series gauge read from fn.
func (r *Registry) Gauge(name, help string, fn func() int64) {
	r.Register(Metric{Name: name, Help: help, Type: TypeGauge,
		Series: []Series{{Value: func() float64 { return float64(fn()) }}}})
}

// LabeledCounter registers one counter series carrying a label.
func (r *Registry) LabeledCounter(name, help, key, value string, fn func() int64) {
	r.Register(Metric{Name: name, Help: help, Type: TypeCounter,
		Series: []Series{{Labels: []Label{{key, value}}, Value: func() float64 { return float64(fn()) }}}})
}

// LabeledGauge registers one gauge series carrying a label.
func (r *Registry) LabeledGauge(name, help, key, value string, fn func() int64) {
	r.Register(Metric{Name: name, Help: help, Type: TypeGauge,
		Series: []Series{{Labels: []Label{{key, value}}, Value: func() float64 { return float64(fn()) }}}})
}

// Histogram registers a histogram exposed with bounds and sum divided
// by scale (observe nanoseconds, expose seconds with scale 1e9).
func (r *Registry) Histogram(name, help string, h *Histogram, scale float64) {
	r.Register(Metric{Name: name, Help: help, Type: TypeHistogram,
		Series: []Series{{Hist: h, Scale: scale}}})
}

// formatValue renders a sample value the shortest way that round-trips.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders a label set as {k="v",...}; extra appends one
// more pair (the histogram writer's le).
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes every registered metric in the text exposition
// format (version 0.0.4): # HELP and # TYPE lines followed by the
// samples, families sorted by name. Histograms expose cumulative
// _bucket{le=...} samples with exact log-2 bounds, plus _sum and
// _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	ms := make([]*Metric, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		ms = append(ms, r.metrics[name])
	}
	r.mu.Unlock()

	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.Name, m.Help, m.Name, m.Type); err != nil {
			return err
		}
		for _, s := range m.Series {
			if m.Type == TypeHistogram {
				if err := writeHistogram(w, m.Name, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, renderLabels(s.Labels), formatValue(s.Value())); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram writes one histogram series: cumulative buckets, sum,
// count.
func writeHistogram(w io.Writer, name string, s Series) error {
	scale := s.Scale
	if scale == 0 {
		scale = 1
	}
	snap := s.Hist.Snapshot()
	var cum int64
	for i := 0; i <= HistBuckets; i++ {
		cum += snap.Buckets[i]
		le := "+Inf"
		if i < HistBuckets {
			le = formatValue(BucketBound(i) / scale)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(s.Labels, Label{"le", le}), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(s.Labels), formatValue(float64(snap.Sum)/scale)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(s.Labels), cum)
	return err
}
