// Package obs is the observability fabric of the checker: sharded,
// cache-line-padded event counters that many tasks bump concurrently
// without contending, and a Hub that aggregates them into on-demand
// snapshots while the analyzed program is still running.
//
// The package sits below every other layer (it imports only the
// standard library), mirroring how the chaos plane is shared: the
// reporter, the allocation gate, and the scheduler all note their
// events through one Hub, and Session.Snapshot reads a consistent view
// from it at any time. All operations are lock-free; noting an event is
// one atomic add on a shard picked by the caller's identity, and a
// snapshot is a sum over the shards — reads may race with writers, so a
// snapshot is a monotone lower bound of the true counts, exact once the
// writers have joined.
package obs

import "sync/atomic"

// stripes is the shard count of a Striped counter. Power of two so the
// shard pick is a mask; 16 shards keep the fabric at one cache line per
// shard without bloating per-session memory.
const stripes = 16

// pad is one cache-line-sized shard, padded so neighboring shards never
// false-share.
type pad struct {
	v atomic.Int64
	_ [56]byte
}

// Striped is a sharded event counter: concurrent writers spread over
// cache-line-padded shards, readers sum on demand. The zero value is
// ready to use.
type Striped struct {
	shards [stripes]pad
}

// Add adds delta on the shard selected by the caller's identity hint
// (typically a task or worker ID); identical hints share a shard, so
// per-task hot loops stay on one line.
func (c *Striped) Add(hint uint64, delta int64) {
	c.shards[hint&(stripes-1)].v.Add(delta)
}

// Load returns the sum over all shards. Concurrent with writers it is a
// monotone lower bound; after writers join it is exact.
func (c *Striped) Load() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a level rather than a count: a value that rises and falls
// (queue depth, in-flight runs) with a latched high watermark. Unlike
// Striped it is a single atomic word — gauges are bumped on admission
// and completion paths, not per-access hot loops, so contention is not
// a concern and an exact instantaneous read is worth more than shards.
// The zero value is ready to use.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Add moves the gauge by delta and returns the new level, updating the
// high watermark when the level rises past it.
func (g *Gauge) Add(delta int64) int64 {
	n := g.v.Add(delta)
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			return n
		}
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max returns the high watermark of the level.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Event enumerates the observable event kinds of a session.
type Event uint8

// Observable events.
const (
	// EventViolation is a newly admitted distinct atomicity violation.
	EventViolation Event = iota
	// EventDrop is metadata or a result shed under resource pressure (a
	// gated allocation denial or a violation refused by MaxViolations).
	EventDrop
	// EventSaturation is the first drop of a session: the latched
	// transition from complete to degraded results.
	EventSaturation
	// EventTaskPanic is a recovered task panic.
	EventTaskPanic
	// EventBatchFlush is one drained per-task access batch: the batched
	// dispatcher emptied a step's coalesced accesses into the checker.
	EventBatchFlush
	// EventBatchedAccess is one access dispatched through a batch (the
	// flush's payload size; noted with the batch's delta, not per access).
	EventBatchedAccess
	// EventWindowElision is one instrumented access elided by the handle
	// layer's window-saturation cache before it reached the batch buffer
	// (noted per flush with the window's accumulated delta).
	EventWindowElision
	// NumEvents bounds the event kinds.
	NumEvents
)

// String names the event kind.
func (e Event) String() string {
	switch e {
	case EventViolation:
		return "violation"
	case EventDrop:
		return "drop"
	case EventSaturation:
		return "saturation"
	case EventTaskPanic:
		return "task-panic"
	case EventBatchFlush:
		return "batch-flush"
	case EventBatchedAccess:
		return "batched-access"
	case EventWindowElision:
		return "window-elision"
	default:
		return "event(?)"
	}
}

// Counts is one snapshot of a hub's per-kind event totals.
type Counts struct {
	Violations int64 `json:"violations"`
	Drops      int64 `json:"drops"`
	TaskPanics int64 `json:"task_panics"`
	// BatchFlushes counts drained per-task access batches.
	BatchFlushes int64 `json:"batch_flushes"`
	// BatchedAccesses counts accesses dispatched through batches.
	BatchedAccesses int64 `json:"batched_accesses"`
	// WindowElisions counts accesses elided by the handle layer's
	// window-saturation cache before reaching the batch buffer.
	WindowElisions int64 `json:"window_elisions"`
	// Saturated reports whether the saturation event has fired.
	Saturated bool `json:"saturated"`
}

// Hub aggregates a session's observable events: striped per-kind
// counters and a once-latched saturation flag. The zero value is ready
// to use, and a nil *Hub ignores everything, so layers can note events
// unconditionally.
type Hub struct {
	counts [NumEvents]Striped
	sat    atomic.Bool
}

// Note counts one event. hint spreads concurrent writers over shards
// (use a task or worker ID); nil hubs ignore the event.
func (h *Hub) Note(e Event, hint uint64) {
	if h == nil {
		return
	}
	h.counts[e].Add(hint, 1)
}

// NoteN counts delta occurrences of an event in one atomic add, for
// producers that amortize their bookkeeping (the batched dispatcher
// notes a whole flush at once); nil hubs ignore the events.
func (h *Hub) NoteN(e Event, hint uint64, delta int64) {
	if h == nil || delta == 0 {
		return
	}
	h.counts[e].Add(hint, delta)
}

// LatchSaturation marks the hub saturated, counting the saturation
// event only on the first call. It returns true exactly once, so the
// caller can fire a user-facing saturation callback without its own
// latch.
func (h *Hub) LatchSaturation(hint uint64) bool {
	if h == nil || !h.sat.CompareAndSwap(false, true) {
		return false
	}
	h.counts[EventSaturation].Add(hint, 1)
	return true
}

// Count returns the running total of one event kind.
func (h *Hub) Count(e Event) int64 {
	if h == nil {
		return 0
	}
	return h.counts[e].Load()
}

// Snapshot returns the per-kind totals. Concurrent with writers each
// total is a monotone lower bound.
func (h *Hub) Snapshot() Counts {
	if h == nil {
		return Counts{}
	}
	return Counts{
		Violations:      h.counts[EventViolation].Load(),
		Drops:           h.counts[EventDrop].Load(),
		TaskPanics:      h.counts[EventTaskPanic].Load(),
		BatchFlushes:    h.counts[EventBatchFlush].Load(),
		BatchedAccesses: h.counts[EventBatchedAccess].Load(),
		WindowElisions:  h.counts[EventWindowElision].Load(),
		Saturated:       h.sat.Load(),
	}
}
