package obs

import (
	"bytes"
	"strings"
	"testing"
)

func testRegistry() (*Registry, *Histogram) {
	r := NewRegistry()
	var adm int64 = 42
	r.Counter("avd_admitted_total", "Runs admitted.", func() int64 { return adm })
	r.Gauge("avd_in_flight", "Runs executing now.", func() int64 { return 3 })
	for i := 0; i < 2; i++ {
		i := i
		r.LabeledGauge("avd_shard_queue_depth", "Queued runs per shard.", "shard", string(rune('0'+i)), func() int64 { return int64(i * 5) })
	}
	h := &Histogram{}
	h.Observe(0)
	h.Observe(1500) // ns
	h.Observe(3_000_000_000)
	r.Histogram("avd_run_duration_seconds", "Run wall time.", h, 1e9)
	return r, h
}

// TestWritePrometheusRoundTrip validates the writer's output through the
// exposition parser: every family typed, samples parse, histogram
// buckets cumulative with _count matching the +Inf bucket.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r, _ := testRegistry()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	p, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse own output:\n%s\nerror: %v", buf.String(), err)
	}
	if v, ok := p.Value("avd_admitted_total"); !ok || v != 42 {
		t.Errorf("avd_admitted_total = %v, %v", v, ok)
	}
	if v, ok := p.Value("avd_in_flight"); !ok || v != 3 {
		t.Errorf("avd_in_flight = %v, %v", v, ok)
	}
	if v, ok := p.Samples[`avd_shard_queue_depth{shard="1"}`]; !ok || v != 5 {
		t.Errorf("shard 1 depth = %v, %v", v, ok)
	}
	if v, ok := p.Value("avd_run_duration_seconds_count"); !ok || v != 3 {
		t.Errorf("histogram count = %v, %v", v, ok)
	}
	if typ := p.Types["avd_run_duration_seconds"]; typ != "histogram" {
		t.Errorf("histogram type = %q", typ)
	}
}

// TestWritePrometheusDeterministic pins byte-identical scrapes: two
// writes of the same registry state must match, families sorted.
func TestWritePrometheusDeterministic(t *testing.T) {
	r, _ := testRegistry()
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("scrapes differ:\n%s\n---\n%s", a.String(), b.String())
	}
	var last string
	for _, line := range strings.Split(a.String(), "\n") {
		if !strings.HasPrefix(line, "# HELP ") {
			continue
		}
		name := strings.Fields(line)[2]
		if name < last {
			t.Fatalf("families not sorted: %q after %q", name, last)
		}
		last = name
	}
}

// TestHistogramExposition pins the le schedule and the seconds scaling:
// a 1500 ns observation must sit in the bucket whose bound is
// (2^11-1)/1e9 seconds.
func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := &Histogram{}
	h.Observe(1500)
	r.Histogram("lat_seconds", "x", h, 1e9)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 1500 has bit length 11: bound (2^11-1)/1e9 = 2.047e-06.
	if !strings.Contains(out, `lat_seconds_bucket{le="2.047e-06"} 1`) {
		t.Errorf("missing expected bucket line in:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds_bucket{le="1.023e-06"} 0`) {
		t.Errorf("bucket below the observation should be empty:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds_sum 1.5e-06`) {
		t.Errorf("sum not scaled to seconds:\n%s", out)
	}
}

// TestParsePromRejects documents the malformed inputs the parser must
// refuse, so the CI validation actually validates.
func TestParsePromRejects(t *testing.T) {
	cases := map[string]string{
		"untyped sample":        "foo 1\n",
		"bad name":              "# TYPE 9foo counter\n9foo 1\n",
		"bad value":             "# TYPE foo counter\nfoo abc\n",
		"duplicate sample":      "# TYPE foo counter\nfoo 1\nfoo 2\n",
		"non-cumulative bucket": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n",
		"non-increasing le":     "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\n",
		"count mismatch":        "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 4\n",
	}
	for name, in := range cases {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}
