package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the fixed bucket count of a Histogram, excluding the
// implicit +Inf overflow bucket. Bucket i covers observations v with
// (1<<(i-1))-1 < v <= (1<<i)-1 — log-2 bounds 0, 1, 3, 7, 15, … — so
// 40 finite buckets span one nanosecond to about nine minutes when the
// unit is nanoseconds, which comfortably covers every latency the
// service can legally produce (deadlines cap at minutes).
const HistBuckets = 40

// Histogram is a fixed-geometry log-2 histogram for latency and
// queue-wait measurements on hot paths: Observe is one predictable
// bucket index computation plus two atomic adds, allocation-free, with
// no locks and no configurable bucket schedule to mismatch across
// restarts. The zero value is ready to use.
//
// Like the Striped counters, concurrent reads race benignly with
// writers: a snapshot is a monotone lower bound per bucket, exact at
// quiescence. Observe is not striped — histograms sit on admission and
// completion paths (per run), not per-access hot loops.
type Histogram struct {
	buckets [HistBuckets + 1]atomic.Int64 // [HistBuckets] is +Inf
	sum     atomic.Int64
}

// bucketIndex maps an observation to its bucket: bits.Len64 gives the
// log-2 class directly (0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, …).
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i > HistBuckets {
		return HistBuckets
	}
	return i
}

// Observe counts one observation. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time view of a histogram: Buckets are
// non-cumulative per-bucket counts (index HistBuckets is the +Inf
// overflow), Count their total, Sum the sum of observed values.
type HistogramSnapshot struct {
	Buckets [HistBuckets + 1]int64
	Count   int64
	Sum     int64
}

// Snapshot reads the histogram. Concurrent with writers every field is
// a monotone lower bound; at quiescence it is exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	return s
}

// BucketBound returns the inclusive upper bound of bucket i: (1<<i)-1,
// with +Inf for the overflow bucket. Bounds are exact — an observation
// v lands in the first bucket whose bound satisfies v <= bound — so the
// exposition's cumulative le buckets follow Prometheus semantics.
func BucketBound(i int) float64 {
	if i >= HistBuckets {
		return math.Inf(1)
	}
	return float64((int64(1) << uint(i)) - 1)
}
