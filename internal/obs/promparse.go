package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromMetrics is a parsed Prometheus text exposition: the declared
// family types and every sample keyed by its full series identity
// (name plus rendered label set). The parser exists so tests and the
// CI smoke job can validate the server's /metrics output structurally —
// well-formed lines, types declared before samples, histogram buckets
// cumulative and consistent — without linking a client library.
type PromMetrics struct {
	// Types maps family name to its declared # TYPE.
	Types map[string]string
	// Samples maps "name{labels}" (labels as written) to the value.
	Samples map[string]float64
}

// Value returns the sample of an unlabeled series.
func (p *PromMetrics) Value(name string) (float64, bool) {
	v, ok := p.Samples[name]
	return v, ok
}

// Names returns the sorted family names that carried samples.
func (p *PromMetrics) Names() []string {
	seen := make(map[string]struct{})
	for k := range p.Samples {
		name := k
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		seen[name] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// validName reports whether s is a legal metric or label name:
// [a-zA-Z_][a-zA-Z0-9_]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// family strips histogram sample suffixes to the declared family name.
func family(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// parseSample splits one sample line into series key and value,
// validating the metric name and label syntax.
func parseSample(line string) (key string, val float64, name string, labels string, err error) {
	rest := line
	name = rest
	labels = ""
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", 0, "", "", fmt.Errorf("unbalanced labels in %q", line)
		}
		name = rest[:i]
		labels = rest[i : j+1]
		rest = name + rest[j+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return "", 0, "", "", fmt.Errorf("want 'name value', got %q", line)
	}
	if !validName(fields[0]) {
		return "", 0, "", "", fmt.Errorf("bad metric name %q", fields[0])
	}
	v, perr := strconv.ParseFloat(fields[1], 64)
	if perr != nil {
		return "", 0, "", "", fmt.Errorf("bad value in %q: %v", line, perr)
	}
	return fields[0] + labels, v, fields[0], labels, nil
}

// labelValue extracts one label's value from a rendered label set, with
// ok=false when absent.
func labelValue(labels, key string) (string, bool) {
	needle := key + `="`
	i := strings.Index(labels, needle)
	if i < 0 {
		return "", false
	}
	rest := labels[i+len(needle):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// ParseProm parses and validates a Prometheus text exposition. It
// rejects samples whose family lacks a # TYPE declaration, malformed
// names, labels, and values, and histograms whose cumulative buckets
// decrease or whose _count disagrees with the +Inf bucket.
func ParseProm(r io.Reader) (*PromMetrics, error) {
	p := &PromMetrics{Types: make(map[string]string), Samples: make(map[string]float64)}
	// Per histogram series (name+labels sans le): last cumulative bucket,
	// last le, and the +Inf count for the _count cross-check.
	lastCum := make(map[string]float64)
	lastLe := make(map[string]float64)
	infCount := make(map[string]float64)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				if !validName(fields[2]) {
					return nil, fmt.Errorf("line %d: bad family name %q", lineNo, fields[2])
				}
				p.Types[fields[2]] = strings.Join(fields[3:], " ")
			}
			continue
		}
		key, v, name, labels, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := family(name)
		typ, declared := p.Types[fam]
		if !declared {
			// A _sum/_count-suffixed counter is its own family.
			typ, declared = p.Types[name]
			fam = name
		}
		if !declared {
			return nil, fmt.Errorf("line %d: sample %q has no # TYPE declaration", lineNo, name)
		}
		if strings.HasSuffix(name, "_bucket") && typ == "histogram" {
			le, ok := labelValue(labels, "le")
			if !ok {
				return nil, fmt.Errorf("line %d: histogram bucket %q lacks le", lineNo, line)
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				if bound, err = strconv.ParseFloat(le, 64); err != nil {
					return nil, fmt.Errorf("line %d: bad le %q", lineNo, le)
				}
			}
			series := fam + stripLabel(labels, "le")
			if prev, seen := lastCum[series]; seen {
				if v < prev {
					return nil, fmt.Errorf("line %d: histogram %s buckets not cumulative (%g after %g)", lineNo, series, v, prev)
				}
				if bound <= lastLe[series] {
					return nil, fmt.Errorf("line %d: histogram %s le not increasing", lineNo, series)
				}
			}
			lastCum[series] = v
			lastLe[series] = bound
			if math.IsInf(bound, 1) {
				infCount[series] = v
			}
		}
		if strings.HasSuffix(name, "_count") && typ == "histogram" {
			series := fam + labels
			if inf, seen := infCount[series]; seen && inf != v {
				return nil, fmt.Errorf("line %d: histogram %s _count %g != +Inf bucket %g", lineNo, series, v, inf)
			}
		}
		if _, dup := p.Samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %q", lineNo, key)
		}
		p.Samples[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// stripLabel removes one key="value" pair from a rendered label set.
func stripLabel(labels, key string) string {
	needle := key + `="`
	i := strings.Index(labels, needle)
	if i < 0 {
		return labels
	}
	rest := labels[i+len(needle):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return labels
	}
	out := labels[:i] + rest[j+1:]
	out = strings.ReplaceAll(out, ",}", "}")
	out = strings.ReplaceAll(out, "{,", "{")
	out = strings.ReplaceAll(out, ",,", ",")
	if out == "{}" {
		return ""
	}
	return out
}
