// Package sptest provides a miniature structured task-parallel program
// model used throughout the test suites: random program generation, DPST
// construction from a program, and an independent series-parallel
// reachability oracle built from the fork-join DAG rather than from the
// DPST, so DPST query results can be cross-checked against first
// principles.
//
// A program is a tree of task bodies made of three item kinds: a step
// (carrying an optional list of shared-memory accesses), a spawn of a
// child task, and a finish block. Spawned tasks join at the end of the
// innermost enclosing finish block (async-finish semantics); the whole
// program is implicitly wrapped in a root finish.
package sptest

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/taskpar/avd/internal/dpst"
)

// Access is one shared-memory operation inside a step.
type Access struct {
	// Loc is a small dense location identifier.
	Loc int
	// Write distinguishes writes from reads.
	Write bool
	// Lock is the identity of the lock held during the access, or -1.
	Lock int
	// CS is the critical-section instance (acquisition) the access
	// belongs to, unique per dynamic acquisition, or -1 when Lock is -1.
	// Two accesses with the same Lock but different CS sit in different
	// critical sections of that lock.
	CS int
}

// Item is a component of a task body.
type Item interface{ isItem() }

// StepItem is a step node with an ordered list of accesses.
type StepItem struct {
	// ID is a program-unique step identifier assigned by the generator
	// or the test author; Build maps it to a DPST node.
	ID       int
	Accesses []Access
}

// SpawnItem spawns a child task executing Body.
type SpawnItem struct {
	Body []Item
}

// FinishItem executes Body and joins every task spawned (transitively,
// through non-finish items) inside it.
type FinishItem struct {
	Body []Item
}

func (StepItem) isItem()   {}
func (SpawnItem) isItem()  {}
func (FinishItem) isItem() {}

// Program is a structured task-parallel program.
type Program struct {
	Body []Item
}

// String renders the program structure for debugging.
func (p *Program) String() string {
	var sb strings.Builder
	var walk func(items []Item, indent string)
	walk = func(items []Item, indent string) {
		for _, it := range items {
			switch v := it.(type) {
			case *StepItem:
				fmt.Fprintf(&sb, "%sstep %d:", indent, v.ID)
				for _, a := range v.Accesses {
					op := "R"
					if a.Write {
						op = "W"
					}
					if a.CS >= 0 {
						fmt.Fprintf(&sb, " %s(x%d)@L%d.cs%d", op, a.Loc, a.Lock, a.CS)
					} else {
						fmt.Fprintf(&sb, " %s(x%d)", op, a.Loc)
					}
				}
				sb.WriteString("\n")
			case *SpawnItem:
				fmt.Fprintf(&sb, "%sspawn {\n", indent)
				walk(v.Body, indent+"  ")
				fmt.Fprintf(&sb, "%s}\n", indent)
			case *FinishItem:
				fmt.Fprintf(&sb, "%sfinish {\n", indent)
				walk(v.Body, indent+"  ")
				fmt.Fprintf(&sb, "%s}\n", indent)
			}
		}
	}
	walk(p.Body, "")
	return sb.String()
}

// Steps returns the step items of the program in program order.
func (p *Program) Steps() []*StepItem {
	var out []*StepItem
	var walk func(items []Item)
	walk = func(items []Item) {
		for _, it := range items {
			switch v := it.(type) {
			case *StepItem:
				out = append(out, v)
			case *SpawnItem:
				walk(v.Body)
			case *FinishItem:
				walk(v.Body)
			}
		}
	}
	walk(p.Body)
	return out
}

// GenConfig bounds random program generation.
type GenConfig struct {
	MaxItems  int     // maximum items per body (>=1)
	MaxDepth  int     // maximum nesting depth of spawn/finish
	MaxSteps  int     // global cap on generated steps
	Locations int     // number of distinct shared locations (0 = no accesses)
	MaxAccess int     // maximum accesses per step
	Locks     int     // number of distinct locks (0 = lock-free)
	LockProb  float64 // probability an access run is inside a critical section
	WriteProb float64 // probability an access is a write (default 0.5 if 0)
}

type generator struct {
	r        *rand.Rand
	cfg      GenConfig
	steps    int
	nextStep int
	nextCS   int
}

// Random generates a random structured program.
func Random(r *rand.Rand, cfg GenConfig) *Program {
	if cfg.MaxItems < 1 {
		cfg.MaxItems = 1
	}
	if cfg.MaxSteps < 1 {
		cfg.MaxSteps = 1
	}
	if cfg.WriteProb == 0 {
		cfg.WriteProb = 0.5
	}
	g := &generator{r: r, cfg: cfg}
	body := g.body(cfg.MaxDepth)
	if len(body) == 0 {
		body = []Item{g.step()}
	}
	return &Program{Body: body}
}

func (g *generator) body(depth int) []Item {
	n := 1 + g.r.Intn(g.cfg.MaxItems)
	items := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		if g.steps >= g.cfg.MaxSteps {
			break
		}
		switch {
		case depth > 0 && g.r.Float64() < 0.35:
			items = append(items, &SpawnItem{Body: g.body(depth - 1)})
		case depth > 0 && g.r.Float64() < 0.2:
			items = append(items, &FinishItem{Body: g.body(depth - 1)})
		default:
			items = append(items, g.step())
		}
	}
	if len(items) == 0 {
		items = append(items, g.step())
	}
	return items
}

func (g *generator) step() *StepItem {
	s := &StepItem{ID: g.nextStep}
	g.nextStep++
	g.steps++
	if g.cfg.Locations > 0 && g.cfg.MaxAccess > 0 {
		n := g.r.Intn(g.cfg.MaxAccess + 1)
		i := 0
		for i < n {
			lock, cs := -1, -1
			run := 1
			if g.cfg.Locks > 0 && g.r.Float64() < g.cfg.LockProb {
				lock = g.r.Intn(g.cfg.Locks)
				cs = g.nextCS
				g.nextCS++
				run = 1 + g.r.Intn(2) // critical sections cover 1-2 accesses
			}
			for j := 0; j < run && i < n; j++ {
				s.Accesses = append(s.Accesses, Access{
					Loc:   g.r.Intn(g.cfg.Locations),
					Write: g.r.Float64() < g.cfg.WriteProb,
					Lock:  lock,
					CS:    cs,
				})
				i++
			}
		}
	}
	return s
}

// BuiltAccess is one access of the program annotated with the DPST step
// node that performs it, in serial program order.
type BuiltAccess struct {
	Step dpst.NodeID
	Task int32
	Access
}

// Built is the result of constructing a program's DPST together with the
// fork-join reachability oracle. Consecutive StepItems with no
// intervening task-management construct are merged into a single step
// node, matching the "maximal instruction sequence" definition of a step
// (and the lazy step creation of the runtime and the trace replayer).
type Built struct {
	Tree dpst.Tree
	// Steps maps StepItem.ID to the (possibly merged) step's DPST node.
	Steps map[int]dpst.NodeID
	// Order lists distinct step nodes in serial program order.
	Order []dpst.NodeID
	// TaskOf maps StepItem.ID to the task that executes it.
	TaskOf map[int]int32
	// Accesses lists every access with its step, in program order.
	Accesses []BuiltAccess

	vertOf map[int]int // StepItem.ID -> DAG vertex
	reach  []map[int]bool
}

type dagBuilder struct {
	edges  [][]int
	vertOf map[int]int
}

func (d *dagBuilder) vertex() int {
	d.edges = append(d.edges, nil)
	return len(d.edges) - 1
}

func (d *dagBuilder) edge(from, to int) {
	d.edges[from] = append(d.edges[from], to)
}

// Build constructs the DPST of p on a fresh tree of the given layout and
// computes the reachability oracle.
func Build(layout dpst.Layout, p *Program) *Built {
	return BuildOn(dpst.New(layout), p)
}

// BuildOn constructs the DPST of p on a caller-provided empty tree, so
// tests can configure the tree (e.g. attach an allocation gate) before
// any node is created.
func BuildOn(t dpst.Tree, p *Program) *Built {
	b := &Built{
		Tree:   t,
		Steps:  make(map[int]dpst.NodeID),
		TaskOf: make(map[int]int32),
	}
	d := &dagBuilder{vertOf: make(map[int]int)}
	start := d.vertex()
	root := t.NewNode(dpst.None, dpst.Finish, 0)
	nextTask := int32(1)

	// run executes a body under DPST parent with the given incoming DAG
	// frontier, returning the final frontier and the frontiers of tasks
	// spawned directly in this body (to be joined by the enclosing
	// finish). curStep/curVert implement lazy step creation: consecutive
	// StepItems share one step node until a construct intervenes.
	var run func(body []Item, parent dpst.NodeID, frontier int, task int32) (int, []int)
	run = func(body []Item, parent dpst.NodeID, frontier int, task int32) (int, []int) {
		var pending []int
		curStep := dpst.None
		curVert := -1
		for _, it := range body {
			switch v := it.(type) {
			case *StepItem:
				if curStep == dpst.None {
					curStep = t.NewNode(parent, dpst.Step, task)
					b.Order = append(b.Order, curStep)
					curVert = d.vertex()
					d.edge(frontier, curVert)
					frontier = curVert
				}
				b.Steps[v.ID] = curStep
				b.TaskOf[v.ID] = task
				d.vertOf[v.ID] = curVert
				for _, a := range v.Accesses {
					b.Accesses = append(b.Accesses, BuiltAccess{Step: curStep, Task: task, Access: a})
				}
			case *SpawnItem:
				a := t.NewNode(parent, dpst.Async, task)
				child := nextTask
				nextTask++
				cf, cp := run(v.Body, a, frontier, child)
				pending = append(pending, cf)
				pending = append(pending, cp...)
				curStep, curVert = dpst.None, -1
			case *FinishItem:
				f := t.NewNode(parent, dpst.Finish, task)
				inF, inP := run(v.Body, f, frontier, task)
				join := d.vertex()
				d.edge(inF, join)
				for _, pv := range inP {
					d.edge(pv, join)
				}
				frontier = join
				curStep, curVert = dpst.None, -1
			}
		}
		return frontier, pending
	}
	final, pending := run(p.Body, root, start, 0)
	end := d.vertex()
	d.edge(final, end)
	for _, pv := range pending {
		d.edge(pv, end)
	}

	// All-pairs reachability by BFS from every vertex; the DAGs in tests
	// are small.
	n := len(d.edges)
	b.reach = make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		seen := map[int]bool{}
		stack := append([]int(nil), d.edges[v]...)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[u] {
				continue
			}
			seen[u] = true
			stack = append(stack, d.edges[u]...)
		}
		b.reach[v] = seen
	}
	b.vertOf = d.vertOf
	return b
}

// Parallel is the oracle answer: steps a and b (StepItem IDs) may happen
// in parallel iff neither reaches the other in the fork-join DAG. Items
// merged into the same step are serial by definition.
func (b *Built) Parallel(a, c int) bool {
	va, vc := b.vertOf[a], b.vertOf[c]
	if va == vc {
		return false
	}
	return !b.reach[va][vc] && !b.reach[vc][va]
}

// ParallelSteps answers the oracle parallelism question for two step
// nodes of the built tree (as recorded in Accesses).
func (b *Built) ParallelSteps(x, y dpst.NodeID) bool {
	vx, okx := b.stepVert(x)
	vy, oky := b.stepVert(y)
	if !okx || !oky || vx == vy {
		return false
	}
	return !b.reach[vx][vy] && !b.reach[vy][vx]
}

func (b *Built) stepVert(s dpst.NodeID) (int, bool) {
	for id, node := range b.Steps {
		if node == s {
			return b.vertOf[id], true
		}
	}
	return 0, false
}
