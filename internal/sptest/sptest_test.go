package sptest_test

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sptest"
)

func config() sptest.GenConfig {
	return sptest.GenConfig{
		MaxItems: 4, MaxDepth: 3, MaxSteps: 20,
		Locations: 3, MaxAccess: 4, Locks: 2, LockProb: 0.4,
	}
}

func TestRandomIsDeterministicPerSeed(t *testing.T) {
	p1 := sptest.Random(rand.New(rand.NewSource(9)), config())
	p2 := sptest.Random(rand.New(rand.NewSource(9)), config())
	if p1.String() != p2.String() {
		t.Fatal("same seed must generate the same program")
	}
	p3 := sptest.Random(rand.New(rand.NewSource(10)), config())
	if p1.String() == p3.String() {
		t.Fatal("different seeds should generate different programs")
	}
}

func TestStepsEnumeratesInProgramOrder(t *testing.T) {
	p := sptest.Random(rand.New(rand.NewSource(3)), config())
	steps := p.Steps()
	if len(steps) == 0 {
		t.Fatal("no steps generated")
	}
	for i, s := range steps {
		if s.ID != i {
			t.Fatalf("step %d has ID %d; IDs must be dense in program order", i, s.ID)
		}
	}
}

func TestStringRendersStructure(t *testing.T) {
	p := &sptest.Program{Body: []sptest.Item{
		&sptest.StepItem{ID: 0, Accesses: []sptest.Access{
			{Loc: 1, Write: true, Lock: -1, CS: -1},
			{Loc: 2, Write: false, Lock: 0, CS: 5},
		}},
		&sptest.FinishItem{Body: []sptest.Item{
			&sptest.SpawnItem{Body: []sptest.Item{&sptest.StepItem{ID: 1}}},
		}},
	}}
	out := p.String()
	for _, want := range []string{"step 0:", "W(x1)", "R(x2)@L0.cs5", "finish {", "spawn {", "step 1:"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestBuildInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		p := sptest.Random(r, config())
		b := sptest.Build(dpst.ArrayLayout, p)
		steps := p.Steps()
		// Every step item maps to a step node owned by a task.
		for _, s := range steps {
			node, ok := b.Steps[s.ID]
			if !ok {
				t.Fatalf("trial %d: step %d unmapped", trial, s.ID)
			}
			if b.Tree.Kind(node) != dpst.Step {
				t.Fatalf("trial %d: step %d mapped to a %v node", trial, s.ID, b.Tree.Kind(node))
			}
			if _, ok := b.TaskOf[s.ID]; !ok {
				t.Fatalf("trial %d: step %d has no task", trial, s.ID)
			}
		}
		// Accesses appear in program order with matching steps.
		ai := 0
		for _, s := range steps {
			for range s.Accesses {
				if b.Accesses[ai].Step != b.Steps[s.ID] {
					t.Fatalf("trial %d: access %d attributed to the wrong step", trial, ai)
				}
				ai++
			}
		}
		if ai != len(b.Accesses) {
			t.Fatalf("trial %d: %d accesses recorded, want %d", trial, len(b.Accesses), ai)
		}
		// The oracle relation is symmetric and irreflexive, and items
		// merged into one step are serial.
		for i := range steps {
			for j := range steps {
				a, c := steps[i].ID, steps[j].ID
				if b.Parallel(a, c) != b.Parallel(c, a) {
					t.Fatalf("trial %d: Parallel not symmetric", trial)
				}
				if a == c && b.Parallel(a, c) {
					t.Fatalf("trial %d: Parallel not irreflexive", trial)
				}
				if b.Steps[a] == b.Steps[c] && b.Parallel(a, c) {
					t.Fatalf("trial %d: merged step items must be serial", trial)
				}
				// ParallelSteps must agree with Parallel on step nodes.
				if b.ParallelSteps(b.Steps[a], b.Steps[c]) != b.Parallel(a, c) {
					t.Fatalf("trial %d: ParallelSteps disagrees with Parallel", trial)
				}
			}
		}
	}
}

func TestConsecutiveStepsMerge(t *testing.T) {
	p := &sptest.Program{Body: []sptest.Item{
		&sptest.StepItem{ID: 0},
		&sptest.StepItem{ID: 1}, // same maximal sequence as ID 0
		&sptest.SpawnItem{Body: []sptest.Item{&sptest.StepItem{ID: 2}}},
		&sptest.StepItem{ID: 3}, // continuation: a fresh step
	}}
	b := sptest.Build(dpst.ArrayLayout, p)
	if b.Steps[0] != b.Steps[1] {
		t.Error("consecutive step items must merge into one step node")
	}
	if b.Steps[1] == b.Steps[3] {
		t.Error("a spawn must split the step")
	}
	if !b.Parallel(2, 3) {
		t.Error("spawned step must be parallel with the continuation")
	}
	if b.Parallel(0, 3) {
		t.Error("two steps of the same task must be serial")
	}
}
