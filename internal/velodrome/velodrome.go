// Package velodrome reimplements the Velodrome dynamic atomicity checker
// (Flanagan, Freund, Yi — PLDI 2008) as the comparison baseline of the
// paper's evaluation (Figure 13), adapted — as the paper describes — to
// check the atomicity of the accesses performed by each DPST step node.
//
// Velodrome detects conflict-serializability violations in the observed
// trace: each step node is a transaction; conflicting accesses by
// different transactions, program order within a task, and lock
// release-acquire pairs add edges to a transactional happens-before
// graph; a cycle in that graph means the observed schedule is not
// conflict serializable. Unlike the paper's DPST-based checker, Velodrome
// says nothing about other schedules of the same input — exposing those
// requires pairing it with an interleaving explorer.
package velodrome

import (
	"fmt"
	"sync"

	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
)

// txn is a transaction node of the happens-before graph: one per step.
type txn struct {
	step dpst.NodeID
	out  []*txn
	// outSet dedups edges; allocated lazily once out grows.
	outSet map[*txn]struct{}
	mark   uint64
}

// Cycle records one detected serializability cycle: adding the edge
// From -> To closed a path To ~> From.
type Cycle struct {
	Loc  sched.Loc
	From dpst.NodeID
	To   dpst.NodeID
}

// String renders a one-line diagnostic.
func (c Cycle) String() string {
	return fmt.Sprintf("velodrome: serializability cycle at loc %d between steps %d and %d", c.Loc, c.From, c.To)
}

// locState is the per-location last-access bookkeeping.
type locState struct {
	lastWrite *txn
	readers   []*txn
}

// lockState tracks the previous releaser for release-acquire edges.
type lockState struct {
	lastRelease *txn
}

// taskState is the per-task scratch kept in the task's LocalSlot.
type taskState struct {
	last *txn
}

// Checker is the Velodrome baseline. A single mutex guards the graph and
// the location tables, as analysis state is shared by all transactions.
type Checker struct {
	mu     sync.Mutex
	txns   map[dpst.NodeID]*txn
	locs   map[sched.Loc]*locState
	locks  map[sched.Loc]*lockState
	epoch  uint64
	seen   map[Cycle]struct{}
	cycles []Cycle
	limit  int
	total  int64
}

// New creates a Velodrome checker.
func New() *Checker {
	return &Checker{
		txns:  make(map[dpst.NodeID]*txn),
		locs:  make(map[sched.Loc]*locState),
		locks: make(map[sched.Loc]*lockState),
		seen:  make(map[Cycle]struct{}),
		limit: 1 << 16,
	}
}

// Count returns the number of distinct cycles detected.
func (c *Checker) Count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Cycles returns the recorded cycles.
func (c *Checker) Cycles() []Cycle {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Cycle(nil), c.cycles...)
}

func (c *Checker) txnOf(step dpst.NodeID) *txn {
	t, ok := c.txns[step]
	if !ok {
		t = &txn{step: step}
		c.txns[step] = t
	}
	return t
}

func (c *Checker) locOf(loc sched.Loc) *locState {
	st, ok := c.locs[loc]
	if !ok {
		st = &locState{}
		c.locs[loc] = st
	}
	return st
}

// reaches reports whether a path from -> ... -> to exists, by DFS with
// epoch marking.
func (c *Checker) reaches(from, to *txn) bool {
	if from == to {
		return true
	}
	c.epoch++
	ep := c.epoch
	stack := []*txn{from}
	from.mark = ep
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range n.out {
			if m == to {
				return true
			}
			if m.mark != ep {
				m.mark = ep
				stack = append(stack, m)
			}
		}
	}
	return false
}

// addEdge inserts u -> v into the graph, reporting a cycle if v already
// reaches u. Self and nil edges are ignored; duplicate edges are
// deduplicated.
func (c *Checker) addEdge(u, v *txn, loc sched.Loc) {
	if u == nil || v == nil || u == v {
		return
	}
	if u.outSet != nil {
		if _, dup := u.outSet[v]; dup {
			return
		}
	} else {
		for _, w := range u.out {
			if w == v {
				return
			}
		}
	}
	if len(v.out) > 0 && c.reaches(v, u) {
		c.report(Cycle{Loc: loc, From: u.step, To: v.step})
	}
	u.out = append(u.out, v)
	if u.outSet == nil && len(u.out) > 8 {
		u.outSet = make(map[*txn]struct{}, len(u.out))
		for _, w := range u.out {
			u.outSet[w] = struct{}{}
		}
	}
	if u.outSet != nil {
		u.outSet[v] = struct{}{}
	}
}

func (c *Checker) report(cy Cycle) {
	if _, dup := c.seen[cy]; dup {
		return
	}
	c.total++
	if len(c.seen) < c.limit {
		c.seen[cy] = struct{}{}
		c.cycles = append(c.cycles, cy)
	}
}

// programOrder links the task's previous transaction to the current one.
func (c *Checker) programOrder(ts checker.TaskState, cur *txn) {
	slot := ts.LocalSlot()
	st, ok := (*slot).(*taskState)
	if !ok {
		st = &taskState{}
		*slot = st
	}
	if st.last != nil && st.last != cur {
		c.addEdge(st.last, cur, 0)
	}
	st.last = cur
}

// Access processes one instrumented access.
func (c *Checker) Access(ts checker.TaskState, loc sched.Loc, write bool) {
	step := ts.StepNode()
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.txnOf(step)
	c.programOrder(ts, cur)
	st := c.locOf(loc)
	if write {
		c.addEdge(st.lastWrite, cur, loc)
		for _, r := range st.readers {
			c.addEdge(r, cur, loc)
		}
		st.lastWrite = cur
		st.readers = st.readers[:0]
	} else {
		c.addEdge(st.lastWrite, cur, loc)
		for _, r := range st.readers {
			if r == cur {
				return
			}
		}
		st.readers = append(st.readers, cur)
	}
}

// OnAccess implements sched.Monitor.
func (c *Checker) OnAccess(t *sched.Task, loc sched.Loc, write bool) {
	c.Access(t, loc, write)
}

// Acquire processes a lock acquisition: the previous release of the lock
// happens-before this transaction.
func (c *Checker) Acquire(ts checker.TaskState, lockLoc sched.Loc) {
	step := ts.StepNode()
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.txnOf(step)
	c.programOrder(ts, cur)
	st, ok := c.locks[lockLoc]
	if !ok {
		st = &lockState{}
		c.locks[lockLoc] = st
	}
	c.addEdge(st.lastRelease, cur, lockLoc)
}

// Release records the releasing transaction.
func (c *Checker) Release(ts checker.TaskState, lockLoc sched.Loc) {
	step := ts.StepNode()
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.txnOf(step)
	c.programOrder(ts, cur)
	st, ok := c.locks[lockLoc]
	if !ok {
		st = &lockState{}
		c.locks[lockLoc] = st
	}
	st.lastRelease = cur
}

// OnAcquire implements sched.Monitor.
func (c *Checker) OnAcquire(t *sched.Task, m *sched.Mutex) { c.Acquire(t, m.Loc()) }

// OnRelease implements sched.Monitor.
func (c *Checker) OnRelease(t *sched.Task, m *sched.Mutex) { c.Release(t, m.Loc()) }
