package velodrome_test

import (
	"fmt"
	"testing"

	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
	"github.com/taskpar/avd/internal/velodrome"
)

type fakeTask struct {
	step  dpst.NodeID
	local any
}

func (f *fakeTask) StepNode() dpst.NodeID { return f.step }
func (f *fakeTask) Lockset() []uint64     { return nil }
func (f *fakeTask) LocalSlot() *any       { return &f.local }
func (f *fakeTask) FilterEpoch() uint64   { return uint64(f.step) }

func (f *fakeTask) AccessState() (*any, dpst.NodeID, uint64, []uint64) {
	return &f.local, f.step, uint64(f.step), nil
}

func figure2() (tree dpst.Tree, s11, s12, s2, s3 dpst.NodeID) {
	tree = dpst.NewArrayTree()
	f11 := tree.NewNode(dpst.None, dpst.Finish, 1)
	s11 = tree.NewNode(f11, dpst.Step, 1)
	f12 := tree.NewNode(f11, dpst.Finish, 1)
	a2 := tree.NewNode(f12, dpst.Async, 1)
	s2 = tree.NewNode(a2, dpst.Step, 2)
	s12 = tree.NewNode(f12, dpst.Step, 1)
	a3 := tree.NewNode(f12, dpst.Async, 1)
	s3 = tree.NewNode(a3, dpst.Step, 3)
	return
}

const locX sched.Loc = 1

// TestInTraceCycleDetected: S2's read and write are actually interleaved
// by S3's write in the observed trace, producing a cycle S2 -> S3 -> S2.
func TestInTraceCycleDetected(t *testing.T) {
	_, _, _, s2, s3 := figure2()
	v := velodrome.New()
	t2 := &fakeTask{step: s2}
	v.Access(t2, locX, false)                 // S2 reads X
	v.Access(&fakeTask{step: s3}, locX, true) // S3 writes X (edge S2->S3)
	v.Access(t2, locX, true)                  // S2 writes X (edge S3->S2: cycle)
	if got := v.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1; cycles: %v", got, v.Cycles())
	}
	cy := v.Cycles()[0]
	if cy.Loc != locX || cy.From != s3 || cy.To != s2 {
		t.Errorf("unexpected cycle %+v", cy)
	}
	if cy.String() == "" {
		t.Error("cycle must format")
	}
}

// TestOtherScheduleViolationMissed replays the Figure 5 trace, where the
// violation does not manifest in the observed order: Velodrome stays
// silent (this is exactly the gap the paper's checker closes).
func TestOtherScheduleViolationMissed(t *testing.T) {
	_, s11, _, s2, s3 := figure2()
	v := velodrome.New()
	v.Access(&fakeTask{step: s11}, locX, true)
	v.Access(&fakeTask{step: s3}, locX, true)
	t2 := &fakeTask{step: s2}
	v.Access(t2, locX, false)
	v.Access(t2, locX, true)
	if got := v.Count(); got != 0 {
		t.Fatalf("Count = %d, want 0 (violation is not in this trace): %v", got, v.Cycles())
	}
}

// TestOurCheckerBeatsVelodromeOnFigure5 cross-checks the paper's claim:
// on the same Figure 5 trace the DPST checker reports the violation that
// Velodrome misses.
func TestOurCheckerBeatsVelodromeOnFigure5(t *testing.T) {
	tree, s11, _, s2, s3 := figure2()
	our := checker.New(checker.Options{Query: dpst.NewQuery(tree, true)})
	velo := velodrome.New()
	replay := func(c interface {
		Access(checker.TaskState, sched.Loc, bool)
	}) {
		t2 := &fakeTask{step: s2}
		c.Access(&fakeTask{step: s11}, locX, true)
		c.Access(&fakeTask{step: s3}, locX, true)
		c.Access(t2, locX, false)
		c.Access(t2, locX, true)
	}
	replay(our)
	replay(velo)
	if our.Reporter().Count() != 1 || velo.Count() != 0 {
		t.Fatalf("our=%d velodrome=%d; want 1 and 0",
			our.Reporter().Count(), velo.Count())
	}
}

// TestLockReleaseAcquireEdge: a cycle that requires the release-acquire
// synchronization edge.
func TestLockReleaseAcquireEdge(t *testing.T) {
	_, _, _, s2, s3 := figure2()
	const lockLoc sched.Loc = 99
	v := velodrome.New()
	t2 := &fakeTask{step: s2}
	t3 := &fakeTask{step: s3}
	v.Access(t2, locX, true)  // S2 writes X
	v.Acquire(t2, lockLoc)    // S2 holds L
	v.Release(t2, lockLoc)    // S2 releases L
	v.Acquire(t3, lockLoc)    // S3 acquires L: edge S2->S3
	v.Release(t3, lockLoc)    //
	v.Access(t2, locX, false) // ... S2 continues in the same step
	v.Access(t3, locX, true)  // S3 writes X: edge S2->S3 (dup)
	v.Access(t2, locX, false) // S2 reads X: edge S3->S2 closes the cycle
	if got := v.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1: %v", got, v.Cycles())
	}
}

// TestProgramOrderEdges: transactions of the same task are ordered; a
// conflict pattern across two tasks' step sequences forms a cycle only
// through program order.
func TestProgramOrderEdges(t *testing.T) {
	tree := dpst.NewArrayTree()
	root := tree.NewNode(dpst.None, dpst.Finish, 0)
	a1 := tree.NewNode(root, dpst.Async, 0)
	a2 := tree.NewNode(root, dpst.Async, 0)
	p1 := tree.NewNode(a1, dpst.Step, 1) // task 1, step 1
	p2 := tree.NewNode(a1, dpst.Step, 1) // task 1, step 2
	q1 := tree.NewNode(a2, dpst.Step, 2) // task 2, single step
	const locY sched.Loc = 2

	v := velodrome.New()
	tA := &fakeTask{step: p1}
	tB := &fakeTask{step: q1}
	v.Access(tA, locX, true) // p1 writes X
	v.Access(tB, locX, true) // q1 writes X: edge p1->q1
	v.Access(tB, locY, true) // q1 writes Y
	tA.step = p2             // task 1 advances to its next step
	v.Access(tA, locY, true) // p2 writes Y: edge q1->p2; program order p1->p2
	// No cycle yet: p1->q1->p2 and p1->p2 are consistent.
	if got := v.Count(); got != 0 {
		t.Fatalf("Count = %d, want 0: %v", got, v.Cycles())
	}
	v.Access(tB, locY, false) // q1 reads Y: edge p2->q1 closes p2<->q1? q1 ~> p2 exists
	if got := v.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1: %v", got, v.Cycles())
	}
}

func TestReaderDedupAndRepeatedAccess(t *testing.T) {
	_, _, _, s2, _ := figure2()
	v := velodrome.New()
	t2 := &fakeTask{step: s2}
	for i := 0; i < 10; i++ {
		v.Access(t2, locX, false)
	}
	v.Access(t2, locX, true)
	if got := v.Count(); got != 0 {
		t.Fatalf("single-task trace must have no cycles, got %d", got)
	}
}

// TestManyEdgesOutSet pushes a transaction past the outSet threshold.
func TestManyEdgesOutSet(t *testing.T) {
	tree := dpst.NewArrayTree()
	root := tree.NewNode(dpst.None, dpst.Finish, 0)
	writer := tree.NewNode(tree.NewNode(root, dpst.Async, 0), dpst.Step, 1)
	v := velodrome.New()
	tw := &fakeTask{step: writer}
	v.Access(tw, locX, true)
	for i := 0; i < 20; i++ {
		a := tree.NewNode(root, dpst.Async, 0)
		s := tree.NewNode(a, dpst.Step, int32(i+2))
		r := &fakeTask{step: s}
		v.Access(r, locX, false) // edge writer->s each time
		v.Access(r, locX, false) // duplicate edge must be ignored
	}
	if got := v.Count(); got != 0 {
		t.Fatalf("fan-out reads must not cycle, got %d", got)
	}
}

// TestEndToEndOnScheduler runs an actually-racy program many times; when
// the schedule interleaves the conflicting accesses Velodrome may find a
// cycle, and it must never report on the serial phases.
func TestEndToEndOnScheduler(t *testing.T) {
	for i := 0; i < 10; i++ {
		tree := dpst.NewArrayTree()
		v := velodrome.New()
		s := sched.New(sched.Options{Workers: 4, Tree: tree, Monitor: v})
		const x sched.Loc = 1
		s.Run(func(tk *sched.Task) {
			tk.Access(x, true)
			tk.Finish(func(tk *sched.Task) {
				tk.Spawn(func(t2 *sched.Task) {
					t2.Access(x, false)
					t2.Access(x, true)
				})
				tk.Spawn(func(t3 *sched.Task) {
					t3.Access(x, true)
				})
			})
			// Serial epilogue must never add cycles.
			tk.Access(x, false)
		})
		s.Close()
		if got := v.Count(); got > 1 {
			t.Fatalf("run %d: got %d cycles, want 0 or 1", i, got)
		}
	}
}

func TestCycleDedup(t *testing.T) {
	_, _, _, s2, s3 := figure2()
	v := velodrome.New()
	t2 := &fakeTask{step: s2}
	t3 := &fakeTask{step: s3}
	v.Access(t2, locX, false)
	v.Access(t3, locX, true)
	v.Access(t2, locX, true) // cycle
	v.Access(t3, locX, true) // edge s2->s3 again would re-close; dedup'd
	v.Access(t2, locX, true)
	if got := v.Count(); got < 1 {
		t.Fatalf("Count = %d, want >= 1", got)
	}
	cycles := v.Cycles()
	seen := map[string]bool{}
	for _, c := range cycles {
		k := fmt.Sprint(c)
		if seen[k] {
			t.Fatalf("duplicate cycle reported: %v", c)
		}
		seen[k] = true
	}
}
