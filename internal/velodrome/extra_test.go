package velodrome_test

import (
	"math/rand"
	"testing"

	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
	"github.com/taskpar/avd/internal/sptest"
	"github.com/taskpar/avd/internal/trace"
	"github.com/taskpar/avd/internal/velodrome"
)

// mkSteps builds n mutually parallel steps (distinct tasks).
func mkSteps(n int) (dpst.Tree, []dpst.NodeID) {
	tree := dpst.NewArrayTree()
	root := tree.NewNode(dpst.None, dpst.Finish, 0)
	steps := make([]dpst.NodeID, n)
	for i := range steps {
		a := tree.NewNode(root, dpst.Async, 0)
		steps[i] = tree.NewNode(a, dpst.Step, int32(i+1))
	}
	return tree, steps
}

// TestWriteClearsReaders: after a write, earlier readers must not create
// further edges (write-buffer semantics of the location state).
func TestWriteClearsReaders(t *testing.T) {
	_, steps := mkSteps(4)
	v := velodrome.New()
	r1 := &fakeTask{step: steps[0]}
	r2 := &fakeTask{step: steps[1]}
	w := &fakeTask{step: steps[2]}
	v.Access(r1, locX, false)
	v.Access(r2, locX, false)
	v.Access(w, locX, true) // edges r1->w, r2->w
	// A later read by r1 creates w->r1; combined with r1->w this WOULD be
	// a cycle — and it is a real one (r1 read, w wrote, r1 read again).
	v.Access(r1, locX, false)
	if got := v.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1 (read-write-read interleaving)", got)
	}
}

// TestSerialTraceNeverCycles: a wide range of single-task traces must
// stay silent.
func TestSerialTraceNeverCycles(t *testing.T) {
	_, steps := mkSteps(1)
	v := velodrome.New()
	tk := &fakeTask{step: steps[0]}
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		v.Access(tk, sched.Loc(1+r.Intn(5)), r.Intn(2) == 0)
	}
	if got := v.Count(); got != 0 {
		t.Fatalf("single transaction cycled: %d", got)
	}
}

// TestSequentialTransactionsNeverCycle: transactions that only ever
// conflict in one direction (pipeline order) stay acyclic.
func TestSequentialTransactionsNeverCycle(t *testing.T) {
	_, steps := mkSteps(6)
	v := velodrome.New()
	for i, s := range steps {
		tk := &fakeTask{step: s}
		v.Access(tk, locX, true) // each write conflicts with the previous writer only
		_ = i
	}
	if got := v.Count(); got != 0 {
		t.Fatalf("pipeline of writers cycled: %d", got)
	}
}

// TestSingleAccessTransactionsNeverCycle: when every transaction
// performs at most one shared access, every interleaving is trivially
// serializable and Velodrome must stay silent regardless of order.
func TestSingleAccessTransactionsNeverCycle(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		_, steps := mkSteps(12)
		v := velodrome.New()
		order := r.Perm(len(steps))
		for _, i := range order {
			tk := &fakeTask{step: steps[i]}
			v.Access(tk, sched.Loc(1+i%3), i%2 == 0)
		}
		if got := v.Count(); got != 0 {
			t.Fatalf("trial %d: single-access transactions cycled: %d", trial, got)
		}
	}
}

// TestReplayRandomProgramsAgainstDetectorsSanity: on random generated
// traces, a Velodrome cycle implies the trace-order checkers also see a
// conflict-rich location set (sanity link between the two analyses; the
// full subset property lives in internal/oracle).
func TestReplayRandomTracesRun(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		p := sptest.Random(r, sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 10,
			Locations: 4, MaxAccess: 3, Locks: 1, LockProb: 0.3,
		})
		tr, err := trace.FromProgram(p, r)
		if err != nil {
			t.Fatal(err)
		}
		tree := dpst.NewArrayTree()
		v := velodrome.New()
		if err := trace.Replay(tr, tree, v, v); err != nil {
			t.Fatal(err)
		}
		_ = v.Count() // must simply not panic or deadlock across shapes
	}
}
