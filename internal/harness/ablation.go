package harness

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sptest"
	"github.com/taskpar/avd/internal/trace"
)

// ablationProgram builds a synthetic workload for the metadata ablation:
// tasks parallel tasks, each performing accessesPerTask alternating
// read/write accesses round-robin over locations shared locations.
func ablationProgram(tasks, accessesPerTask, locations int) *sptest.Program {
	var spawns []sptest.Item
	id := 0
	for k := 0; k < tasks; k++ {
		step := &sptest.StepItem{ID: id}
		id++
		for a := 0; a < accessesPerTask; a++ {
			step.Accesses = append(step.Accesses, sptest.Access{
				Loc:   (k + a) % locations,
				Write: a%2 == 1,
				Lock:  -1,
				CS:    -1,
			})
		}
		spawns = append(spawns, &sptest.SpawnItem{Body: []sptest.Item{step}})
	}
	return &sptest.Program{Body: []sptest.Item{&sptest.FinishItem{Body: spawns}}}
}

func replayTimed(tr *trace.Trace, alg checker.Algorithm) (time.Duration, int64, error) {
	tree := dpst.NewArrayTree()
	c := checker.New(checker.Options{Algorithm: alg, Query: dpst.NewQuery(tree, true)})
	start := time.Now()
	err := trace.Replay(tr, tree, c, nil)
	return time.Since(start), c.Reporter().Count(), err
}

// MetadataAblation contrasts the paper's fixed 12-entry metadata
// (Section 3.2) with the unbounded access-history checker of the basic
// approach (Section 3.1) on traces of growing length. The basic
// checker's history — and therefore its per-access cost — grows with the
// number of dynamic accesses, which is exactly the motivation the paper
// gives for the optimized metadata organization; the optimized checker
// stays near-constant per access.
func MetadataAblation(w io.Writer, seed int64) error {
	const (
		tasks     = 8
		locations = 64
	)
	fmt.Fprintf(w, "Metadata ablation: fixed 12-entry metadata vs unbounded access history\n")
	fmt.Fprintf(w, "(%d parallel tasks over %d shared locations; offline trace replay)\n", tasks, locations)
	fmt.Fprintf(w, "%10s %14s %14s %16s %16s\n",
		"accesses", "optimized", "basic", "optimized/acc", "basic/acc")
	r := rand.New(rand.NewSource(seed))
	for _, per := range []int{64, 128, 256, 512} {
		p := ablationProgram(tasks, per, locations)
		tr, err := trace.FromProgram(p, r)
		if err != nil {
			return err
		}
		total := tasks * per
		dOpt, vOpt, err := replayTimed(tr, checker.AlgOptimized)
		if err != nil {
			return err
		}
		dBas, vBas, err := replayTimed(tr, checker.AlgBasic)
		if err != nil {
			return err
		}
		if (vOpt > 0) != (vBas > 0) {
			return fmt.Errorf("ablation: checkers disagree on detection (%d vs %d)", vOpt, vBas)
		}
		fmt.Fprintf(w, "%10d %13.2fms %13.2fms %14.0fns %14.0fns\n",
			total,
			float64(dOpt.Microseconds())/1000, float64(dBas.Microseconds())/1000,
			float64(dOpt.Nanoseconds())/float64(total),
			float64(dBas.Nanoseconds())/float64(total))
	}
	return nil
}
