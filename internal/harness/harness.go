// Package harness runs the paper's evaluation: it measures each
// benchmark kernel under the uninstrumented baseline, the DPST checker
// (array and linked layouts), and the Velodrome baseline, and renders
// Table 1, Figure 13, and Figure 14 as text.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/bench"
)

// Config names one measured configuration.
type Config struct {
	Name string
	Opts avd.Options
}

// Baseline is the uninstrumented configuration all slowdowns are
// relative to.
func Baseline(workers int) Config {
	return Config{Name: "baseline", Opts: avd.Options{Workers: workers, Checker: avd.CheckerNone}}
}

// Prototype is our checker in its default configuration: the array DPST
// with label-based MHP queries.
func Prototype(workers int) Config {
	return Config{Name: "our-prototype", Opts: avd.Options{Workers: workers}}
}

// PrototypeFilter is the full fast configuration: path-label MHP plus
// the redundant-access filter (the shipping default, under its explicit
// Figure 13 column name).
func PrototypeFilter(workers int) Config {
	return Config{Name: "avd-filter", Opts: avd.Options{Workers: workers, MHP: avd.MHPLabels}}
}

// PrototypeBatch is the step-granular batching configuration: the
// filtered label-MHP checker behind the per-task access coalescer,
// which buffers each step's accesses and dispatches them in one pass
// per batch — epoch, lockset, and filter state read once per flush
// instead of once per access.
func PrototypeBatch(workers int) Config {
	return Config{Name: "avd-batch", Opts: avd.Options{Workers: workers, MHP: avd.MHPLabels, Batch: true}}
}

// PrototypeLabels is the label-MHP configuration with the
// redundant-access filter disabled — the PR 1 baseline, kept as the
// filter ablation column.
func PrototypeLabels(workers int) Config {
	return Config{Name: "avd-labels", Opts: avd.Options{Workers: workers, MHP: avd.MHPLabels, DisableAccessFilter: true}}
}

// PrototypeCachedLCA is the paper's Section 4 configuration — the LCA
// tree walk with the sharded memoization cache — kept as the avd-array
// comparison column and as the source of Table 1's unique-LCA counts.
func PrototypeCachedLCA(workers int) Config {
	return Config{Name: "avd-array", Opts: avd.Options{Workers: workers, MHP: avd.MHPCachedWalk}}
}

// PrototypeLinked is the Figure 14 linked-layout configuration. The walk
// mode is forced because label queries never touch node memory, which
// would make the layout comparison vacuous.
func PrototypeLinked(workers int) Config {
	return Config{Name: "linked-DPST", Opts: avd.Options{Workers: workers, Layout: avd.LayoutLinked, MHP: avd.MHPCachedWalk}}
}

// PrototypeNoCache variants disable LCA memoization so every Par query
// walks the tree, isolating the DPST layout cost that Figure 14
// measures.
func PrototypeNoCache(workers int) Config {
	return Config{Name: "array-nocache", Opts: avd.Options{Workers: workers, DisableLCACache: true}}
}

// PrototypeLinkedNoCache is the uncached linked-layout configuration.
func PrototypeLinkedNoCache(workers int) Config {
	return Config{Name: "linked-nocache", Opts: avd.Options{Workers: workers, Layout: avd.LayoutLinked, DisableLCACache: true}}
}

// Velodrome is the comparison checker of Figure 13.
func Velodrome(workers int) Config {
	return Config{Name: "velodrome", Opts: avd.Options{Workers: workers, Checker: avd.CheckerVelodrome}}
}

// Bounded is the prototype under a metadata memory budget — the
// graceful-degradation configuration. A saturated run is visible in
// Measurement.Report (Saturated, Drops, MemoryUsed).
func Bounded(workers int, budgetBytes int64) Config {
	return Config{
		Name: fmt.Sprintf("bounded-%s", human(budgetBytes)),
		Opts: avd.Options{Workers: workers, MemoryBudget: budgetBytes},
	}
}

// Chaotic is the prototype under deterministic schedule perturbation
// (forced steals and bounded delays), used to measure how robust the
// checker's cost and results are to adversarial schedules.
func Chaotic(workers int, seed int64) Config {
	return Config{
		Name: "chaos",
		Opts: avd.Options{
			Workers: workers,
			Chaos:   &avd.ChaosConfig{Seed: seed, StealProb: 0.2, DelayProb: 0.1},
		},
	}
}

// Measurement is one (kernel, configuration) timing result.
type Measurement struct {
	Kernel  string
	Config  string
	N       int
	Reps    int
	Seconds float64 // median wall time per repetition
	Report  avd.Report
}

// Measure runs kernel k under cfg reps times (fresh session each time,
// as each run owns its DPST and metadata), validates the checksum, and
// returns the median wall time and the final run's report. The paper
// averages five runs; the median is more robust against scheduler noise
// at our smaller problem sizes.
func Measure(k bench.Kernel, cfg Config, n, reps int) (Measurement, error) {
	if reps < 1 {
		reps = 1
	}
	times := make([]float64, 0, reps)
	var rep avd.Report
	for i := 0; i <= reps; i++ {
		runtime.GC() // don't charge this run with the previous config's garbage
		s := avd.NewSession(cfg.Opts)
		setLive(s)
		start := time.Now()
		sum := k.Run(s, n)
		elapsed := time.Since(start).Seconds()
		rep = s.Report()
		setLive(nil)
		s.Close()
		if err := k.Check(n, sum); err != nil {
			return Measurement{}, fmt.Errorf("%s under %s: %w", k.Name, cfg.Name, err)
		}
		if i > 0 {
			// Run 0 is an untimed warm-up: it grows the heap and faults in
			// the shadow structures, so the first measured configuration is
			// not charged for the process's cold start.
			times = append(times, elapsed)
		}
	}
	sort.Float64s(times)
	return Measurement{
		Kernel:  k.Name,
		Config:  cfg.Name,
		N:       n,
		Reps:    reps,
		Seconds: times[len(times)/2],
		Report:  rep,
	}, nil
}

// GeoMean returns the geometric mean of xs (1 when empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var logSum float64
	for _, x := range xs {
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// human renders counts in the paper's style: 1,352 / 9.87M / 40M.
func human(v int64) string {
	switch {
	case v >= 100_000_000:
		return fmt.Sprintf("%dM", (v+500_000)/1_000_000)
	case v >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(v)/1_000_000)
	default:
		return group(v)
	}
}

// group inserts thousands separators.
func group(v int64) string {
	s := fmt.Sprintf("%d", v)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}

// Sizes resolves the per-kernel problem sizes, scaled by scale.
func Sizes(scale float64) map[string]int {
	out := make(map[string]int)
	for _, k := range bench.All() {
		n := int(float64(k.DefaultN) * scale)
		if n < 8 {
			n = 8
		}
		// Dimension-style sizes scale with the square root so the total
		// work scales roughly linearly.
		switch k.Name {
		case "fluidanimate", "raycast":
			n = int(float64(k.DefaultN) * math.Sqrt(scale))
			if n < 8 {
				n = 8
			}
		}
		out[k.Name] = n
	}
	return out
}

// ViolationRecord is the machine-readable form of one detected
// violation, provenance included (see avd.Provenance).
type ViolationRecord struct {
	Loc             uint64 `json:"loc"`
	Pattern         string `json:"pattern"`
	PatternStep     int32  `json:"pattern_step"`
	InterleaverStep int32  `json:"interleaver_step"`
	PatternTask     int32  `json:"pattern_task"`
	InterleaverTask int32  `json:"interleaver_task"`
	// Provenance fields; empty/zero when the checker captured none.
	PatternPath      string   `json:"pattern_path,omitempty"`
	InterleaverPath  string   `json:"interleaver_path,omitempty"`
	PatternLocks     []uint64 `json:"pattern_locks,omitempty"`
	InterleaverLocks []uint64 `json:"interleaver_locks,omitempty"`
	Observed         bool     `json:"observed"`
	Explanation      string   `json:"explanation"`
}

// violationRecord flattens an avd.Violation and its provenance.
func violationRecord(v avd.Violation) ViolationRecord {
	r := ViolationRecord{
		Loc:             uint64(v.Loc),
		Pattern:         v.PatternName(),
		PatternStep:     int32(v.PatternStep),
		InterleaverStep: int32(v.InterleaverStep),
		PatternTask:     v.PatternTask,
		InterleaverTask: v.InterleaverTask,
		Explanation:     v.Explain(),
	}
	if p := v.Prov; p != nil {
		r.PatternPath = p.PatternPath
		r.InterleaverPath = p.InterleaverPath
		r.PatternLocks = p.PatternLocks
		r.InterleaverLocks = p.InterleaverLocks
		r.Observed = p.Observed
	}
	return r
}

// Table1Row is one benchmark's Table 1 measurements, plus the detected
// violations with provenance (capped at maxTable1Violations records;
// ViolationCount is the uncapped total).
type Table1Row struct {
	Kernel         string            `json:"kernel"`
	N              int               `json:"n"`
	Locations      int64             `json:"locations"`
	DPSTNodes      int               `json:"dpst_nodes"`
	LCAQueries     int64             `json:"lca_queries"`
	UniquePercent  float64           `json:"unique_percent"`
	ViolationCount int64             `json:"violation_count"`
	// BatchFlushes/BatchedAccesses describe the access coalescer when
	// the measurement ran batched (zero and omitted otherwise), and
	// WindowElisions counts the accesses its handle-layer front end
	// answered without dispatching.
	BatchFlushes    int64             `json:"batch_flushes,omitempty"`
	BatchedAccesses int64             `json:"batched_accesses,omitempty"`
	WindowElisions  int64             `json:"window_elisions,omitempty"`
	Violations      []ViolationRecord `json:"violations,omitempty"`
}

// maxTable1Violations caps the per-kernel violation records embedded in
// Table1Data; the count field stays exact.
const maxTable1Violations = 20

// Table1Data is the machine-readable form of Table 1 (avd-stats -json).
type Table1Data struct {
	Workers   int         `json:"workers"`
	GoVersion string      `json:"go_version"`
	Scale     float64     `json:"scale"`
	Reps      int         `json:"reps"`
	Rows      []Table1Row `json:"rows"`
}

// CollectTable1 measures every kernel under the prototype checker and
// assembles the paper's Table 1 characteristics: unique locations, DPST
// nodes, LCA queries, the unique-LCA percentage, and the detected
// violations with provenance.
func CollectTable1(workers int, scale float64, reps int) (*Table1Data, error) {
	// The cached-walk configuration is the one whose unique-LCA column is
	// meaningful; the default label mode consults no cache.
	return collectTable1(PrototypeCachedLCA(workers), workers, scale, reps)
}

// CollectTable1Batched measures Table 1 with the step-granular access
// coalescer in front of the checker; the characteristic columns must
// come out identical to CollectTable1 (batching is output-invisible),
// and the rows additionally carry the flush and batched-access counts.
func CollectTable1Batched(workers int, scale float64, reps int) (*Table1Data, error) {
	cfg := PrototypeCachedLCA(workers)
	cfg.Name += "+batch"
	cfg.Opts.Batch = true
	return collectTable1(cfg, workers, scale, reps)
}

func collectTable1(cfg Config, workers int, scale float64, reps int) (*Table1Data, error) {
	sizes := Sizes(scale)
	resolved := workers
	if resolved <= 0 {
		resolved = runtime.GOMAXPROCS(0)
	}
	d := &Table1Data{
		Workers:   resolved,
		GoVersion: runtime.Version(),
		Scale:     scale,
		Reps:      reps,
	}
	for _, k := range bench.All() {
		m, err := Measure(k, cfg, sizes[k.Name], reps)
		if err != nil {
			return nil, err
		}
		st := m.Report.Stats
		row := Table1Row{
			Kernel:          k.Name,
			N:               m.N,
			Locations:       st.Locations,
			DPSTNodes:       st.DPSTNodes,
			LCAQueries:      st.LCAQueries,
			UniquePercent:   st.UniquePercent(),
			ViolationCount:  m.Report.ViolationCount,
			BatchFlushes:    st.BatchFlushes,
			BatchedAccesses: st.BatchedAccesses,
			WindowElisions:  st.WindowElisions,
		}
		for i, v := range m.Report.Violations {
			if i == maxTable1Violations {
				break
			}
			row.Violations = append(row.Violations, violationRecord(v))
		}
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// RenderTable1 writes the text rendering of Table 1.
func RenderTable1(w io.Writer, d *Table1Data) {
	fmt.Fprintf(w, "Table 1: benchmark characteristics under the atomicity checker\n")
	fmt.Fprintf(w, "%-14s %12s %12s %12s %10s\n", "Benchmark", "Locations", "DPST nodes", "LCA queries", "% unique")
	for _, row := range d.Rows {
		unique := "-NA-"
		if row.LCAQueries > 0 {
			unique = fmt.Sprintf("%.2f", row.UniquePercent)
		}
		fmt.Fprintf(w, "%-14s %12s %12s %12s %10s\n",
			row.Kernel, human(row.Locations), human(int64(row.DPSTNodes)), human(row.LCAQueries), unique)
	}
}

// Table1 measures every kernel under the prototype checker and renders
// the paper's Table 1: unique locations, DPST nodes, LCA queries, and
// the unique-LCA percentage.
func Table1(w io.Writer, workers int, scale float64, reps int) error {
	d, err := CollectTable1(workers, scale, reps)
	if err != nil {
		return err
	}
	RenderTable1(w, d)
	return nil
}

// FigureResult is one (kernel, configuration) slowdown measurement in a
// machine-readable figure report.
type FigureResult struct {
	Kernel   string  `json:"kernel"`
	Config   string  `json:"config"`
	N        int     `json:"n"`
	WallNS   int64   `json:"wall_ns"`
	Slowdown float64 `json:"slowdown"`
	// FilterHits/FilterMisses are the redundant-access filter counters
	// of the measured run (omitted for configurations without the
	// filter), and FilterHitRate is hits/(hits+misses) precomputed for
	// cross-revision diffing.
	FilterHits    int64   `json:"filter_hits,omitempty"`
	FilterMisses  int64   `json:"filter_misses,omitempty"`
	FilterHitRate float64 `json:"filter_hit_rate,omitempty"`
	// BatchFlushes/BatchedAccesses describe the access coalescer of the
	// measured run (omitted for unbatched configurations): drained
	// batches and the accesses they carried. WindowElisions counts the
	// accesses the coalescer's handle-layer front end answered without
	// dispatching at all.
	BatchFlushes    int64 `json:"batch_flushes,omitempty"`
	BatchedAccesses int64 `json:"batched_accesses,omitempty"`
	WindowElisions  int64 `json:"window_elisions,omitempty"`
}

// FigureData is the machine-readable form of a slowdown figure, suitable
// for committing next to the text rendering (BENCH_figure13.json).
type FigureData struct {
	Figure int `json:"figure"`
	// Workers is the resolved worker count (GOMAXPROCS when the
	// configuration requested 0).
	Workers   int                `json:"workers"`
	GoVersion string             `json:"go_version"`
	Scale     float64            `json:"scale"`
	Reps      int                `json:"reps"`
	Configs   []string           `json:"configs"`
	Results   []FigureResult     `json:"results"`
	Geomean   map[string]float64 `json:"geomean"`
}

// WriteJSON writes the figure data, indented, to path.
func (d *FigureData) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// figureData measures every kernel under each configuration (plus the
// uninstrumented baseline all slowdowns are relative to) and collects
// the results. A non-empty kernels list restricts the sweep to the
// named kernels, for targeted CI gates that need more reps or scale
// than a full figure run affords.
func figureData(figure int, configs []Config, workers int, scale float64, reps int, kernels ...string) (*FigureData, error) {
	sizes := Sizes(scale)
	base := Baseline(workers)
	resolved := workers
	if resolved <= 0 {
		resolved = runtime.GOMAXPROCS(0)
	}
	d := &FigureData{
		Figure:    figure,
		Workers:   resolved,
		GoVersion: runtime.Version(),
		Scale:     scale,
		Reps:      reps,
		Geomean:   make(map[string]float64),
	}
	for _, cfg := range configs {
		d.Configs = append(d.Configs, cfg.Name)
	}
	want := make(map[string]bool, len(kernels))
	for _, name := range kernels {
		want[name] = true
	}
	for _, k := range bench.All() {
		delete(want, k.Name)
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for name := range want {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown kernel(s) %s (see bench.All for the figure's kernel names)",
			strings.Join(unknown, ", "))
	}
	want = make(map[string]bool, len(kernels))
	for _, name := range kernels {
		want[name] = true
	}
	slowdowns := make(map[string][]float64)
	for _, k := range bench.All() {
		if len(want) > 0 && !want[k.Name] {
			continue
		}
		n := sizes[k.Name]
		mb, err := Measure(k, base, n, reps)
		if err != nil {
			return nil, err
		}
		d.Results = append(d.Results, FigureResult{
			Kernel: k.Name, Config: base.Name, N: n,
			WallNS: int64(mb.Seconds * 1e9), Slowdown: 1,
		})
		for _, cfg := range configs {
			m, err := Measure(k, cfg, n, reps)
			if err != nil {
				return nil, err
			}
			sl := m.Seconds / mb.Seconds
			slowdowns[cfg.Name] = append(slowdowns[cfg.Name], sl)
			st := m.Report.Stats
			r := FigureResult{
				Kernel: k.Name, Config: cfg.Name, N: n,
				WallNS: int64(m.Seconds * 1e9), Slowdown: sl,
				FilterHits:      st.FilterHits,
				FilterMisses:    st.FilterMisses,
				BatchFlushes:    st.BatchFlushes,
				BatchedAccesses: st.BatchedAccesses,
				WindowElisions:  st.WindowElisions,
			}
			if total := st.FilterHits + st.FilterMisses; total > 0 {
				r.FilterHitRate = float64(st.FilterHits) / float64(total)
			}
			d.Results = append(d.Results, r)
		}
	}
	for name, xs := range slowdowns {
		d.Geomean[name] = GeoMean(xs)
	}
	return d, nil
}

// Figure titles shared by the text renderings here and in cmd/avd-bench.
const (
	Figure13Title = "Figure 13: execution-time slowdown vs uninstrumented baseline"
	Figure14Title = "Figure 14: checker slowdown with array-based vs linked DPST"
)

// RenderFigure writes the text rendering of a slowdown figure: one row
// per kernel, one column per configuration, and a geo.mean row.
func RenderFigure(w io.Writer, title string, d *FigureData) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-14s", "Benchmark")
	for _, name := range d.Configs {
		fmt.Fprintf(w, " %14s", name)
	}
	fmt.Fprintln(w)
	byKernel := make(map[string]map[string]float64)
	var kernels []string
	for _, r := range d.Results {
		if r.Config == "baseline" {
			continue
		}
		if byKernel[r.Kernel] == nil {
			byKernel[r.Kernel] = make(map[string]float64)
			kernels = append(kernels, r.Kernel)
		}
		byKernel[r.Kernel][r.Config] = r.Slowdown
	}
	for _, k := range kernels {
		fmt.Fprintf(w, "%-14s", k)
		for _, name := range d.Configs {
			fmt.Fprintf(w, " %13.2fx", byKernel[k][name])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-14s", "geo.mean")
	for _, name := range d.Configs {
		fmt.Fprintf(w, " %13.2fx", d.Geomean[name])
	}
	fmt.Fprintln(w)
}

// Figure13Data measures the filtered prototype, the batched coalescer,
// the no-filter and cached-walk ablations, and Velodrome against the
// baseline. An optional kernel list restricts the sweep (see
// figureData).
func Figure13Data(workers int, scale float64, reps int, kernels ...string) (*FigureData, error) {
	return figureData(13, []Config{
		PrototypeFilter(workers),
		PrototypeBatch(workers),
		PrototypeLabels(workers),
		PrototypeCachedLCA(workers),
		Velodrome(workers),
	}, workers, scale, reps, kernels...)
}

// Figure13 measures the prototype configurations and Velodrome against
// the baseline and renders the slowdown comparison with geometric means.
func Figure13(w io.Writer, workers int, scale float64, reps int) error {
	d, err := Figure13Data(workers, scale, reps)
	if err != nil {
		return err
	}
	RenderFigure(w, Figure13Title, d)
	return nil
}

// Figure14Data measures the DPST layout ablation: the label-MHP default
// alongside the array and linked layouts under the cached tree walk (the
// paper's configuration) and the uncached walk (every query traverses
// the tree, isolating the layout cost).
func Figure14Data(workers int, scale float64, reps int, kernels ...string) (*FigureData, error) {
	return figureData(14, []Config{
		PrototypeLabels(workers),
		PrototypeCachedLCA(workers),
		PrototypeLinked(workers),
		PrototypeNoCache(workers),
		PrototypeLinkedNoCache(workers),
	}, workers, scale, reps, kernels...)
}

// Figure14 compares the array and linked DPST layouts, with the LCA
// cache enabled (the paper's configuration) and disabled (every query
// walks the tree, isolating the layout cost), next to the label-MHP
// default that walks no tree at all.
func Figure14(w io.Writer, workers int, scale float64, reps int) error {
	d, err := Figure14Data(workers, scale, reps)
	if err != nil {
		return err
	}
	RenderFigure(w, Figure14Title, d)
	return nil
}
