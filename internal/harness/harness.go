// Package harness runs the paper's evaluation: it measures each
// benchmark kernel under the uninstrumented baseline, the DPST checker
// (array and linked layouts), and the Velodrome baseline, and renders
// Table 1, Figure 13, and Figure 14 as text.
package harness

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/bench"
)

// Config names one measured configuration.
type Config struct {
	Name string
	Opts avd.Options
}

// Baseline is the uninstrumented configuration all slowdowns are
// relative to.
func Baseline(workers int) Config {
	return Config{Name: "baseline", Opts: avd.Options{Workers: workers, Checker: avd.CheckerNone}}
}

// Prototype is the paper's checker on the array DPST.
func Prototype(workers int) Config {
	return Config{Name: "our-prototype", Opts: avd.Options{Workers: workers}}
}

// PrototypeLinked is the Figure 14 ablation configuration.
func PrototypeLinked(workers int) Config {
	return Config{Name: "linked-DPST", Opts: avd.Options{Workers: workers, Layout: avd.LayoutLinked}}
}

// PrototypeNoCache variants disable LCA memoization so every Par query
// walks the tree, isolating the DPST layout cost that Figure 14
// measures.
func PrototypeNoCache(workers int) Config {
	return Config{Name: "array-nocache", Opts: avd.Options{Workers: workers, DisableLCACache: true}}
}

// PrototypeLinkedNoCache is the uncached linked-layout configuration.
func PrototypeLinkedNoCache(workers int) Config {
	return Config{Name: "linked-nocache", Opts: avd.Options{Workers: workers, Layout: avd.LayoutLinked, DisableLCACache: true}}
}

// Velodrome is the comparison checker of Figure 13.
func Velodrome(workers int) Config {
	return Config{Name: "velodrome", Opts: avd.Options{Workers: workers, Checker: avd.CheckerVelodrome}}
}

// Measurement is one (kernel, configuration) timing result.
type Measurement struct {
	Kernel  string
	Config  string
	N       int
	Reps    int
	Seconds float64 // median wall time per repetition
	Report  avd.Report
}

// Measure runs kernel k under cfg reps times (fresh session each time,
// as each run owns its DPST and metadata), validates the checksum, and
// returns the median wall time and the final run's report. The paper
// averages five runs; the median is more robust against scheduler noise
// at our smaller problem sizes.
func Measure(k bench.Kernel, cfg Config, n, reps int) (Measurement, error) {
	if reps < 1 {
		reps = 1
	}
	times := make([]float64, 0, reps)
	var rep avd.Report
	for i := 0; i < reps; i++ {
		runtime.GC() // don't charge this run with the previous config's garbage
		s := avd.NewSession(cfg.Opts)
		start := time.Now()
		sum := k.Run(s, n)
		times = append(times, time.Since(start).Seconds())
		rep = s.Report()
		s.Close()
		if err := k.Check(n, sum); err != nil {
			return Measurement{}, fmt.Errorf("%s under %s: %w", k.Name, cfg.Name, err)
		}
	}
	sort.Float64s(times)
	return Measurement{
		Kernel:  k.Name,
		Config:  cfg.Name,
		N:       n,
		Reps:    reps,
		Seconds: times[len(times)/2],
		Report:  rep,
	}, nil
}

// GeoMean returns the geometric mean of xs (1 when empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var logSum float64
	for _, x := range xs {
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// human renders counts in the paper's style: 1,352 / 9.87M / 40M.
func human(v int64) string {
	switch {
	case v >= 100_000_000:
		return fmt.Sprintf("%dM", (v+500_000)/1_000_000)
	case v >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(v)/1_000_000)
	default:
		return group(v)
	}
}

// group inserts thousands separators.
func group(v int64) string {
	s := fmt.Sprintf("%d", v)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}

// Sizes resolves the per-kernel problem sizes, scaled by scale.
func Sizes(scale float64) map[string]int {
	out := make(map[string]int)
	for _, k := range bench.All() {
		n := int(float64(k.DefaultN) * scale)
		if n < 8 {
			n = 8
		}
		// Dimension-style sizes scale with the square root so the total
		// work scales roughly linearly.
		switch k.Name {
		case "fluidanimate", "raycast":
			n = int(float64(k.DefaultN) * math.Sqrt(scale))
			if n < 8 {
				n = 8
			}
		}
		out[k.Name] = n
	}
	return out
}

// Table1 measures every kernel under the prototype checker and renders
// the paper's Table 1: unique locations, DPST nodes, LCA queries, and
// the unique-LCA percentage.
func Table1(w io.Writer, workers int, scale float64, reps int) error {
	sizes := Sizes(scale)
	cfg := Prototype(workers)
	fmt.Fprintf(w, "Table 1: benchmark characteristics under the atomicity checker\n")
	fmt.Fprintf(w, "%-14s %12s %12s %12s %10s\n", "Benchmark", "Locations", "DPST nodes", "LCA queries", "% unique")
	for _, k := range bench.All() {
		m, err := Measure(k, cfg, sizes[k.Name], reps)
		if err != nil {
			return err
		}
		st := m.Report.Stats
		unique := "-NA-"
		if st.LCAQueries > 0 {
			unique = fmt.Sprintf("%.2f", st.UniquePercent())
		}
		fmt.Fprintf(w, "%-14s %12s %12s %12s %10s\n",
			k.Name, human(st.Locations), human(int64(st.DPSTNodes)), human(st.LCAQueries), unique)
	}
	return nil
}

// Figure13 measures the prototype and Velodrome against the baseline and
// renders the slowdown comparison with geometric means.
func Figure13(w io.Writer, workers int, scale float64, reps int) error {
	sizes := Sizes(scale)
	base := Baseline(workers)
	ours := Prototype(workers)
	velo := Velodrome(workers)
	fmt.Fprintf(w, "Figure 13: execution-time slowdown vs uninstrumented baseline\n")
	fmt.Fprintf(w, "%-14s %14s %14s\n", "Benchmark", "our-prototype", "velodrome")
	var oursX, veloX []float64
	for _, k := range bench.All() {
		n := sizes[k.Name]
		mb, err := Measure(k, base, n, reps)
		if err != nil {
			return err
		}
		mo, err := Measure(k, ours, n, reps)
		if err != nil {
			return err
		}
		mv, err := Measure(k, velo, n, reps)
		if err != nil {
			return err
		}
		so := mo.Seconds / mb.Seconds
		sv := mv.Seconds / mb.Seconds
		oursX = append(oursX, so)
		veloX = append(veloX, sv)
		fmt.Fprintf(w, "%-14s %13.2fx %13.2fx\n", k.Name, so, sv)
	}
	fmt.Fprintf(w, "%-14s %13.2fx %13.2fx\n", "geo.mean", GeoMean(oursX), GeoMean(veloX))
	return nil
}

// Figure14 compares the array and linked DPST layouts, with the LCA
// cache enabled (the paper's configuration) and disabled (every query
// walks the tree, isolating the layout cost).
func Figure14(w io.Writer, workers int, scale float64, reps int) error {
	sizes := Sizes(scale)
	base := Baseline(workers)
	configs := []Config{
		Prototype(workers),
		PrototypeLinked(workers),
		PrototypeNoCache(workers),
		PrototypeLinkedNoCache(workers),
	}
	fmt.Fprintf(w, "Figure 14: checker slowdown with array-based vs linked DPST\n")
	fmt.Fprintf(w, "%-14s %12s %12s %14s %14s\n", "Benchmark",
		"array-DPST", "linked-DPST", "array-nocache", "linked-nocache")
	sums := make([][]float64, len(configs))
	for _, k := range bench.All() {
		n := sizes[k.Name]
		mb, err := Measure(k, base, n, reps)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s", k.Name)
		for ci, cfg := range configs {
			m, err := Measure(k, cfg, n, reps)
			if err != nil {
				return err
			}
			sl := m.Seconds / mb.Seconds
			sums[ci] = append(sums[ci], sl)
			width := 11
			if ci >= 2 {
				width = 13
			}
			fmt.Fprintf(w, " %*.2fx", width, sl)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-14s", "geo.mean")
	for ci := range configs {
		width := 11
		if ci >= 2 {
			width = 13
		}
		fmt.Fprintf(w, " %*.2fx", width, GeoMean(sums[ci]))
	}
	fmt.Fprintln(w)
	return nil
}
