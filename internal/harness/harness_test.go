package harness

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/bench"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean(nil); got != 1 {
		t.Errorf("GeoMean(nil) = %f, want 1", got)
	}
	if got := GeoMean([]float64{4}); got != 4 {
		t.Errorf("GeoMean([4]) = %f", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean([1,4]) = %f, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean([2,2,2]) = %f, want 2", got)
	}
}

func TestHumanFormatting(t *testing.T) {
	cases := map[int64]string{
		0:           "0",
		999:         "999",
		1352:        "1,352",
		915537:      "915,537",
		4580000:     "4.58M",
		144_000_000: "144M",
	}
	for v, want := range cases {
		if got := human(v); got != want {
			t.Errorf("human(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestSizes(t *testing.T) {
	full := Sizes(1)
	if len(full) != 13 {
		t.Fatalf("Sizes has %d entries, want 13", len(full))
	}
	for _, k := range bench.All() {
		if full[k.Name] != k.DefaultN {
			t.Errorf("Sizes(1)[%s] = %d, want default %d", k.Name, full[k.Name], k.DefaultN)
		}
	}
	tiny := Sizes(0.000001)
	for name, n := range tiny {
		if n < 8 {
			t.Errorf("Sizes floor violated for %s: %d", name, n)
		}
	}
	// Dimension-style kernels scale with sqrt.
	half := Sizes(0.25)
	if half["raycast"] != 32 {
		t.Errorf("raycast at scale 0.25 = %d, want 32 (sqrt scaling)", half["raycast"])
	}
	if half["sort"] != 5000 {
		t.Errorf("sort at scale 0.25 = %d, want 5000", half["sort"])
	}
}

func TestMeasureValidatesChecksums(t *testing.T) {
	good := bench.Kernel{
		Name:     "good",
		DefaultN: 4,
		Run:      func(s *avd.Session, n int) float64 { return float64(n) },
		Check: func(n int, sum float64) error {
			if sum != float64(n) {
				return fmt.Errorf("bad sum")
			}
			return nil
		},
	}
	m, err := Measure(good, Baseline(1), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kernel != "good" || m.Reps != 3 || m.Seconds < 0 {
		t.Errorf("unexpected measurement %+v", m)
	}

	bad := good
	bad.Check = func(int, float64) error { return fmt.Errorf("always wrong") }
	if _, err := Measure(bad, Baseline(1), 4, 1); err == nil {
		t.Fatal("Measure must surface checksum failures")
	}
}

func TestConfigConstructors(t *testing.T) {
	if Baseline(2).Opts.Checker != avd.CheckerNone {
		t.Error("Baseline must be uninstrumented")
	}
	if Prototype(2).Opts.Checker != avd.CheckerOptimized {
		t.Error("Prototype must use the optimized checker")
	}
	if Velodrome(2).Opts.Checker != avd.CheckerVelodrome {
		t.Error("Velodrome config wrong")
	}
	if PrototypeLinked(2).Opts.Layout != avd.LayoutLinked {
		t.Error("linked config wrong")
	}
	if PrototypeLinked(2).Opts.MHP != avd.MHPCachedWalk {
		t.Error("linked config must force the walk so layout matters")
	}
	if !PrototypeNoCache(2).Opts.DisableLCACache || !PrototypeLinkedNoCache(2).Opts.DisableLCACache {
		t.Error("nocache configs must disable the LCA cache")
	}
	if PrototypeLabels(2).Opts.MHP != avd.MHPLabels || PrototypeLabels(2).Name != "avd-labels" {
		t.Error("labels config wrong")
	}
	if PrototypeCachedLCA(2).Opts.MHP != avd.MHPCachedWalk || PrototypeCachedLCA(2).Name != "avd-array" {
		t.Error("cached-LCA config wrong")
	}
}

func TestMetadataAblation(t *testing.T) {
	var buf bytes.Buffer
	if err := MetadataAblation(&buf, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "optimized") || !strings.Contains(out, "basic") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if got := strings.Count(out, "ms"); got < 8 {
		t.Fatalf("expected 4 measurement rows:\n%s", out)
	}
}

func TestTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite measurement")
	}
	var buf bytes.Buffer
	if err := Table1(&buf, 2, 0.02, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, k := range bench.All() {
		if !strings.Contains(out, k.Name) {
			t.Errorf("Table 1 missing %s:\n%s", k.Name, out)
		}
	}
	if !strings.Contains(out, "-NA-") {
		t.Error("blackscholes must report -NA- unique LCAs")
	}
}

func TestFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite measurement")
	}
	var buf bytes.Buffer
	if err := Figure13(&buf, 2, 0.02, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "geo.mean") {
		t.Fatal("Figure 13 missing geo.mean row")
	}
	buf.Reset()
	if err := Figure14(&buf, 2, 0.02, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "linked-DPST") || !strings.Contains(out, "array-nocache") {
		t.Fatalf("Figure 14 missing columns:\n%s", out)
	}
}
