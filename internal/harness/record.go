package harness

import (
	"fmt"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/bench"
)

// RecordKernelTrace runs kernel k once at size n under the prototype
// configuration with trace recording enabled and returns the recorded
// trace. This is the service-shaped workload generator: where the
// sptest generator produces small synthetic programs, a recorded
// kernel run is a realistic avd-serverd payload — thousands of events,
// parallel-for structure, real lock traffic — for integration tests
// and demos of the trace-checking service.
func RecordKernelTrace(k bench.Kernel, workers, n int) (*avd.Trace, error) {
	opts := Prototype(workers).Opts
	opts.RecordTrace = true
	s := avd.NewSession(opts)
	defer s.Close()
	sum := k.Run(s, n)
	if err := k.Check(n, sum); err != nil {
		return nil, fmt.Errorf("%s while recording: %w", k.Name, err)
	}
	tr := s.RecordedTrace()
	if tr == nil {
		return nil, fmt.Errorf("%s: no trace recorded", k.Name)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("%s: recorded trace invalid: %w", k.Name, err)
	}
	return tr, nil
}
