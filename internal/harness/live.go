package harness

import (
	"sync/atomic"

	avd "github.com/taskpar/avd"
)

// live points at the session currently being measured, so external
// pollers (the avd-bench debug endpoint) can snapshot a run in flight.
var live atomic.Pointer[avd.Session]

// LiveSession returns the session the harness is currently measuring,
// or nil between runs. The session is unregistered before it is closed,
// so a non-nil result is always safe to Snapshot.
func LiveSession() *avd.Session {
	return live.Load()
}

// setLive publishes (or, with nil, withdraws) the measured session.
func setLive(s *avd.Session) {
	live.Store(s)
}
