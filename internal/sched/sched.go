// Package sched implements the task parallel runtime substrate of the
// reproduction: a TBB-style fork-join scheduler with per-worker
// Chase-Lev work-stealing deques, async-finish task structure, and
// hooks that build the DPST and drive a dynamic-analysis Monitor.
//
// The paper's prototype piggybacks on Intel Threading Building Blocks;
// goroutines have no strict fork-join structure, so this package provides
// the structured runtime the analysis requires. Tasks are spawned with
// Task.Spawn and joined by the innermost enclosing Task.Finish scope.
// Workers waiting at a finish scope help execute other tasks instead of
// blocking, as TBB's wait_for_all does.
package sched

import (
	"context"
	"math/rand"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/taskpar/avd/internal/chaos"
	"github.com/taskpar/avd/internal/dpst"
)

// Loc identifies an instrumented shared-memory location. Locations in a
// multi-variable atomicity group share a Loc, which gives all of them the
// same checker metadata as Section 3 of the paper prescribes.
type Loc uint64

// Monitor observes the instrumented events of an execution. A nil
// monitor corresponds to the paper's uninstrumented baseline. Monitor
// methods are invoked on the goroutine executing the task, concurrently
// across tasks; implementations synchronize their own state.
type Monitor interface {
	// OnAccess is called on every instrumented read or write.
	OnAccess(t *Task, loc Loc, write bool)
	// OnAcquire is called after the task acquires an instrumented lock.
	OnAcquire(t *Task, m *Mutex)
	// OnRelease is called before the task releases an instrumented lock.
	OnRelease(t *Task, m *Mutex)
}

// InjectObserver is an optional extension of Monitor for observers that
// want the chaos plane's scheduler-level injections as events (e.g. the
// trace recorder overlaying them on a timeline): forced steals, injected
// delays, injected panics. The runtime checks for it with a type
// assertion on the Monitor, like StructureObserver.
type InjectObserver interface {
	// OnInject is called when the chaos plane injects fault against task.
	// For FaultSteal it runs on the spawning task's goroutine before the
	// stolen child executes; for FaultDelay and FaultPanic on the
	// affected task's goroutine as it starts.
	OnInject(task int32, fault chaos.Fault)
}

// StructureObserver is an optional extension of Monitor for analyses
// that need the task-management events themselves (e.g. the trace
// recorder): task spawns, finish-scope boundaries, and task completion.
// The runtime checks for it with a type assertion on the Monitor.
type StructureObserver interface {
	// OnSpawn is called by the spawning task before the child runs.
	OnSpawn(parent *Task, child int32)
	// OnFinishBegin/OnFinishEnd bracket a finish scope of t.
	OnFinishBegin(t *Task)
	OnFinishEnd(t *Task)
	// OnTaskEnd is called when a task's body (and implicit sync) is done.
	OnTaskEnd(t *Task)
}

// Options configures a Scheduler.
type Options struct {
	// Workers is the number of worker goroutines; 0 means GOMAXPROCS.
	Workers int
	// Tree receives the DPST of the execution. When nil, no DPST is
	// built: the uninstrumented configuration.
	Tree dpst.Tree
	// Monitor observes instrumented events; may be nil.
	Monitor Monitor
	// Chaos optionally injects scheduler faults — forced steals, bounded
	// delays, task panics — from deterministic seeded streams; nil
	// disables injection (the default, zero-overhead configuration).
	Chaos *chaos.Plane
	// RecoverPanics stops Run from re-raising task panics: crashed tasks
	// are recorded (see TaskPanics) and the computation's surviving
	// tasks still join, preserving partial analysis results.
	RecoverPanics bool
	// OnPanic, when set, is invoked for every recovered task panic, on
	// the panicking task's goroutine while it unwinds. It must be cheap
	// and must not call back into the scheduler.
	OnPanic func(TaskPanic)
}

// Scheduler runs fork-join task programs on a pool of work-stealing
// workers.
type Scheduler struct {
	tree       dpst.Tree
	mon        Monitor
	so         StructureObserver // mon's optional extension, or nil
	io         InjectObserver    // mon's optional extension, or nil
	chaos      *chaos.Plane
	onPanic    func(TaskPanic)
	workers    []*worker
	inject     chan *Task
	nextTask   atomic.Int32
	lockTok    atomic.Uint64
	nextLockID atomic.Uint32
	nextLoc    atomic.Uint64
	stripes    atomic.Uint64

	recoverPanics bool
	panics        panicLog

	// overflow receives forced-steal victims injected by the chaos
	// plane; only consulted when chaos is active.
	ovMu     sync.Mutex
	overflow []*Task

	stop     atomic.Bool
	sleepers atomic.Int32
	idleMu   sync.Mutex
	idleCond *sync.Cond
	wg       sync.WaitGroup
}

// New creates a scheduler and starts its workers. Call Close to stop
// them.
func New(opts Options) *Scheduler {
	n := opts.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{
		tree:          opts.Tree,
		mon:           opts.Monitor,
		chaos:         opts.Chaos,
		recoverPanics: opts.RecoverPanics,
		inject:        make(chan *Task, 1),
	}
	s.so, _ = opts.Monitor.(StructureObserver)
	s.io, _ = opts.Monitor.(InjectObserver)
	s.onPanic = opts.OnPanic
	s.idleCond = sync.NewCond(&s.idleMu)
	s.workers = make([]*worker, n)
	for i := range s.workers {
		s.workers[i] = &worker{
			id:  i,
			s:   s,
			dq:  newDeque(),
			rng: rand.New(rand.NewSource(int64(i)*2654435761 + 1)),
		}
	}
	for _, w := range s.workers {
		s.wg.Add(1)
		go w.loop()
	}
	return s
}

// Tree returns the DPST being built, or nil for the uninstrumented
// configuration.
func (s *Scheduler) Tree() dpst.Tree { return s.tree }

// Monitor returns the attached monitor, or nil.
func (s *Scheduler) Monitor() Monitor { return s.mon }

// AllocLoc allocates a fresh location identifier.
func (s *Scheduler) AllocLoc() Loc { return Loc(s.nextLoc.Add(1)) }

// AllocLocs allocates n consecutive location identifiers and returns the
// first; used for instrumented arrays.
func (s *Scheduler) AllocLocs(n int) Loc {
	last := s.nextLoc.Add(uint64(n))
	return Loc(last - uint64(n) + 1)
}

// AllocLocsStriped allocates n consecutive location identifiers whose
// base is padded onto a per-aggregate phase of the ElideSize-slot
// direct-mapped caches (the access filter, the batch deduplicator, and
// the window-elision cache all index by loc&ElideMask). Without the
// padding, two arrays whose lengths are multiples of the cache size —
// the power-of-two source and destination of a merge, say — land on the
// same phase, so a[i] and b[i] collide in every direct-mapped slot for
// every i and evict each other's redundancy facts all window long. The
// phase schedule is deterministic (the k-th striped allocation of a
// scheduler gets phase (17k+1)&ElideMask, a full cycle of the 64
// residues), so replayed and repeated runs see identical location IDs.
func (s *Scheduler) AllocLocsStriped(n int) Loc {
	k := s.stripes.Add(1) - 1
	phase := (17*k + 1) & ElideMask
	for {
		cur := s.nextLoc.Load()
		base := cur + 1
		pad := (phase - base) & ElideMask
		if s.nextLoc.CompareAndSwap(cur, cur+pad+uint64(n)) {
			return Loc(base + pad)
		}
	}
}

// Run executes body as the root task and blocks until the whole
// computation — the root body and every transitively spawned task — has
// completed. Run may be called multiple times, sequentially. Running a
// closed scheduler raises a UsageError.
func (s *Scheduler) Run(body func(*Task)) {
	if s.stop.Load() {
		usage("Scheduler.Run", "session used after Close")
	}
	rootParent := dpst.None
	if s.tree != nil {
		rootParent = s.tree.NewNode(dpst.None, dpst.Finish, 0)
	}
	scope := &finishScope{}
	done := make(chan struct{})
	root := &Task{
		id:         s.nextTask.Add(1) - 1,
		sch:        s,
		parentNode: rootParent,
		step:       dpst.None,
		scope:      scope,
	}
	root.body = func(t *Task) {
		func() {
			defer func() {
				t.recoverInto(recover(), scope)
			}()
			body(t)
			t.implicitSync()
		}()
		t.waitScope(scope)
	}
	root.onDone = func() { close(done) }
	s.inject <- root
	s.wake()
	<-done
	// Re-raise a panic from the root body or any spawned task on the
	// caller's goroutine, after the whole computation has joined — unless
	// the scheduler recovers panics, in which case the recorded TaskPanics
	// are the only trace and the partial results stand.
	if !s.recoverPanics {
		scope.rethrow()
	}
}

// recordPanic appends one recovered task panic to the bounded panic log
// and notifies the OnPanic observer.
func (s *Scheduler) recordPanic(task int32, v any) {
	p := TaskPanic{Task: task, Value: v, Stack: string(debug.Stack())}
	s.panics.record(p)
	if s.onPanic != nil {
		s.onPanic(p)
	}
}

// TaskPanics returns the recovered task panics (detail bounded at
// maxRecordedPanics) and the total count including any beyond the cap.
func (s *Scheduler) TaskPanics() ([]TaskPanic, int64) { return s.panics.snapshot() }

// pushOverflow hands a forced-steal victim to the shared overflow queue,
// where any worker — typically not the spawner — will find it.
func (s *Scheduler) pushOverflow(t *Task) {
	s.ovMu.Lock()
	s.overflow = append(s.overflow, t)
	s.ovMu.Unlock()
}

func (s *Scheduler) popOverflow() *Task {
	s.ovMu.Lock()
	defer s.ovMu.Unlock()
	if len(s.overflow) == 0 {
		return nil
	}
	t := s.overflow[0]
	s.overflow = s.overflow[1:]
	return t
}

// Close stops the worker pool and waits for every worker goroutine to
// exit, so a closed session leaves nothing behind. The scheduler must be
// idle. Close is idempotent: repeated calls are no-ops.
func (s *Scheduler) Close() {
	if !s.stop.CompareAndSwap(false, true) {
		return
	}
	s.idleMu.Lock()
	s.idleCond.Broadcast()
	s.idleMu.Unlock()
	s.wg.Wait()
}

func (s *Scheduler) wake() {
	if s.sleepers.Load() > 0 {
		s.idleMu.Lock()
		s.idleCond.Signal()
		s.idleMu.Unlock()
	}
}

type worker struct {
	id  int
	s   *Scheduler
	dq  *deque
	rng *rand.Rand
}

func (w *worker) loop() {
	defer w.s.wg.Done()
	// Label the worker goroutine so CPU and goroutine profiles attribute
	// samples per scheduler worker (runtime/pprof.Do keeps the label set
	// for the whole loop).
	pprof.Do(context.Background(), pprof.Labels("avd_worker", strconv.Itoa(w.id)), func(context.Context) {
		w.run()
	})
}

func (w *worker) run() {
	idleSpins := 0
	for {
		if w.s.stop.Load() {
			return
		}
		if t := w.findTask(); t != nil {
			idleSpins = 0
			w.runTask(t)
			continue
		}
		idleSpins++
		if idleSpins < 64 {
			runtime.Gosched()
			continue
		}
		w.park()
		idleSpins = 0
	}
}

// park blocks the worker until new work may be available. The sleepers
// counter and the recheck under seq-cst atomics close the lost-wakeup
// window against concurrent pushes.
func (w *worker) park() {
	w.s.idleMu.Lock()
	w.s.sleepers.Add(1)
	if t := w.findTask(); t != nil {
		w.s.sleepers.Add(-1)
		w.s.idleMu.Unlock()
		w.runTask(t)
		return
	}
	if w.s.stop.Load() {
		w.s.sleepers.Add(-1)
		w.s.idleMu.Unlock()
		return
	}
	w.s.idleCond.Wait()
	w.s.sleepers.Add(-1)
	w.s.idleMu.Unlock()
}

// findTask looks for runnable work: the local deque first, then the
// chaos overflow queue (forced-steal victims), then the injection
// channel, then stealing from victims in random order.
func (w *worker) findTask() *Task {
	if t := w.dq.pop(); t != nil {
		return t
	}
	if w.s.chaos != nil {
		if t := w.s.popOverflow(); t != nil {
			return t
		}
	}
	select {
	case t := <-w.s.inject:
		return t
	default:
	}
	n := len(w.s.workers)
	if n > 1 {
		off := w.rng.Intn(n)
		for i := 0; i < n; i++ {
			v := w.s.workers[(off+i)%n]
			if v == w {
				continue
			}
			if t := v.dq.steal(); t != nil {
				return t
			}
		}
	}
	return nil
}

func (w *worker) runTask(t *Task) {
	t.worker = w
	func() {
		defer func() {
			// A panicking spawned task must not take the worker down;
			// the panic recovers into the scheduler's panic log and the
			// task's join scope, which re-raises it at the Finish (or
			// Run) that owns the task. An open spawn-sync scope is
			// drained even while unwinding.
			t.recoverInto(recover(), t.scope)
		}()
		if pl := w.s.chaos; pl != nil {
			if n := pl.DelaySpins(t.id); n > 0 {
				if io := w.s.io; io != nil {
					io.OnInject(t.id, chaos.FaultDelay)
				}
				for i := 0; i < n; i++ {
					runtime.Gosched()
				}
			}
			if pl.PanicTask(t.id) {
				if io := w.s.io; io != nil {
					io.OnInject(t.id, chaos.FaultPanic)
				}
				panic(chaos.InjectedPanic{Task: t.id})
			}
		}
		t.body(t)
		t.implicitSync()
	}()
	if so := t.sch.so; so != nil {
		so.OnTaskEnd(t)
	}
	if t.scope != nil && t.spawned {
		t.scope.pending.Add(-1)
	}
	if t.onDone != nil {
		t.onDone()
	}
}
