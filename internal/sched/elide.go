package sched

// The window-elision cache: the handle layer's front end to the batched
// checker (DESIGN.md §4.3). Once a batch window has proven an access
// type redundant for a location — the batch deduplicator's redundancy
// word has the type's bit set — every further access of that type in
// the same window is a checker no-op, so Task.Access can return before
// touching the batch buffer or the dedup table at all. The checker
// mirrors its per-window saturation facts into this cache and bumps the
// generation at every window boundary; the handle layer only ever reads
// it through Hit.
//
// An Elide is owned by exactly one task at a time and is only touched
// from the goroutine currently executing that task (the same ownership
// discipline as Task.Local): Hit runs on the task's own accesses, and
// the checker's mirror/invalidate calls run inside monitor callbacks on
// the same goroutine.

const (
	// ElideBits fixes the cache geometry to the batch deduplicator's:
	// both are direct-mapped by loc&ElideMask, so slot i of this cache
	// only ever mirrors facts about the location currently occupying
	// slot i's residue class in the window.
	ElideBits = 6
	// ElideSize is the number of direct-mapped slots.
	ElideSize = 1 << ElideBits
	// ElideMask indexes the slots.
	ElideMask = ElideSize - 1
)

// Saturation bits of an elide entry. The numeric values deliberately
// equal the checker's filter-word bits (filtR/filtW), so the checker
// can mirror its redundancy word into Set verbatim.
const (
	// ElideR marks reads of the location saturated in this window.
	ElideR uint8 = 1 << iota
	// ElideW marks writes saturated.
	ElideW
)

// elideEntry is one direct-mapped slot: a location, the window
// generation the fact was recorded under, and the saturation bits.
type elideEntry struct {
	loc  Loc
	gen  uint64
	bits uint8
}

// Elide is a per-task window-saturation cache. The zero value is ready
// to use (generation 0 with zero-valued entries never matches a real
// location, because location IDs start at 1).
type Elide struct {
	gen     uint64
	hits    uint64
	entries [ElideSize]elideEntry
}

// Hit reports whether an access of the given type to loc is saturated
// in the current window and may be elided, counting it when so. The
// entry must carry the current generation: facts recorded before the
// last window boundary are dead.
func (e *Elide) Hit(loc Loc, write bool) bool {
	en := &e.entries[uint64(loc)&ElideMask]
	bit := ElideR
	if write {
		bit = ElideW
	}
	if en.loc != loc || en.gen != e.gen || en.bits&bit == 0 {
		return false
	}
	e.hits++
	return true
}

// Mirror publishes the checker's current redundancy word for loc,
// stamped with the current generation. The word must be followed down
// as well as up — a first write re-enables reads (and vice versa), so a
// zero word overwrites an entry already describing loc. A zero word for
// a location the slot does not currently describe is dropped instead:
// the resident entry belongs to a colliding location whose facts are
// still valid this window, and evicting them for a nothing-to-elide
// word would only cost dispatches.
func (e *Elide) Mirror(loc Loc, bits uint8) {
	en := &e.entries[uint64(loc)&ElideMask]
	if bits == 0 && en.loc != loc {
		return
	}
	*en = elideEntry{loc: loc, gen: e.gen, bits: bits}
}

// Invalidate kills every recorded fact by advancing the generation; the
// checker calls it at each window boundary that invalidates its own
// redundancy words (and when recycling the cache to a new task).
func (e *Elide) Invalidate() { e.gen++ }

// TakeHits returns and clears the elision count accumulated since the
// last call; the checker folds it into its striped counters at flush.
func (e *Elide) TakeHits() uint64 {
	h := e.hits
	e.hits = 0
	return h
}
