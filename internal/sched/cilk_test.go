package sched_test

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
)

// TestCilkFigure1DPST runs the paper's Figure 1 program with the
// Cilk-style spawn/sync API and verifies it produces exactly the
// Figure 2 tree: F11[S11, F12[A2[S2], S12, A3[S3]]].
func TestCilkFigure1DPST(t *testing.T) {
	tree := dpst.NewArrayTree()
	s := sched.New(sched.Options{Workers: 4, Tree: tree})
	defer s.Close()

	const locX sched.Loc = 1
	var s11, s12, s2, s3 dpst.NodeID
	done2 := make(chan dpst.NodeID, 1)
	done3 := make(chan dpst.NodeID, 1)
	s.Run(func(tk *sched.Task) {
		tk.Access(locX, true) // S11
		s11 = tk.StepNode()
		tk.CilkSpawn(func(t2 *sched.Task) { // T2
			t2.Access(locX, false)
			t2.Access(locX, true)
			done2 <- t2.StepNode()
		})
		tk.Access(locX, true) // S12 (continuation)
		s12 = tk.StepNode()
		tk.CilkSpawn(func(t3 *sched.Task) { // T3
			t3.Access(locX, true)
			done3 <- t3.StepNode()
		})
		tk.Sync()
	})
	s2, s3 = <-done2, <-done3

	q := dpst.NewQuery(tree, true)
	if !q.Par(s2, s12) || !q.Par(s2, s3) {
		t.Error("S2 must be parallel with S12 and S3")
	}
	if q.Par(s11, s2) || q.Par(s12, s3) || q.Par(s11, s12) {
		t.Error("S11/S2, S12/S3, S11/S12 must be serial")
	}
	// Structure: root finish, S11, implicit finish F12, A2, S2, S12, A3,
	// S3 = 8 nodes exactly.
	if tree.Len() != 8 {
		t.Errorf("DPST has %d nodes, want the 8 of Figure 2", tree.Len())
	}
	// F12 is a finish node child of the root.
	if got := tree.Kind(tree.Parent(s12)); got != dpst.Finish {
		t.Errorf("S12's parent is %v, want the implicit finish", got)
	}
	if tree.Parent(tree.Parent(s12)) != tree.Parent(s11) {
		t.Error("the implicit finish must be a sibling of S11 under the root")
	}
}

func TestCilkSyncWaits(t *testing.T) {
	s := sched.New(sched.Options{Workers: 4})
	defer s.Close()
	var n atomic.Int64
	s.Run(func(tk *sched.Task) {
		for i := 0; i < 20; i++ {
			tk.CilkSpawn(func(*sched.Task) {
				time.Sleep(time.Millisecond)
				n.Add(1)
			})
		}
		tk.Sync()
		if got := n.Load(); got != 20 {
			t.Errorf("Sync returned with %d/20 children complete", got)
		}
	})
}

func TestCilkSyncRegionsAreOrdered(t *testing.T) {
	tree := dpst.NewArrayTree()
	s := sched.New(sched.Options{Workers: 2, Tree: tree})
	defer s.Close()
	steps := make(chan dpst.NodeID, 2)
	s.Run(func(tk *sched.Task) {
		tk.CilkSpawn(func(c *sched.Task) {
			c.Access(1, true)
			steps <- c.StepNode()
		})
		tk.Sync()
		tk.CilkSpawn(func(c *sched.Task) {
			c.Access(1, true)
			steps <- c.StepNode()
		})
		tk.Sync()
	})
	a, b := <-steps, <-steps
	if dpst.NewQuery(tree, true).Par(a, b) {
		t.Error("children of successive sync regions must be serial")
	}
}

func TestCilkImplicitSyncAtTaskEnd(t *testing.T) {
	s := sched.New(sched.Options{Workers: 4})
	defer s.Close()
	var n atomic.Int64
	s.Run(func(tk *sched.Task) {
		tk.Finish(func(tk *sched.Task) {
			tk.Spawn(func(child *sched.Task) {
				// CilkSpawn without an explicit Sync: the task end syncs.
				child.CilkSpawn(func(*sched.Task) { n.Add(1) })
				child.CilkSpawn(func(*sched.Task) { n.Add(1) })
			})
		})
		if got := n.Load(); got != 2 {
			t.Errorf("implicit sync at task end left %d/2 children unjoined", got)
		}
	})
}

func TestCilkSyncWithoutSpawnsIsNoop(t *testing.T) {
	s := sched.New(sched.Options{Workers: 1})
	defer s.Close()
	s.Run(func(tk *sched.Task) {
		tk.Sync()
		tk.Sync()
	})
}

func TestPanicFromSpawnedTaskPropagates(t *testing.T) {
	s := sched.New(sched.Options{Workers: 4})
	defer s.Close()
	var joined atomic.Int64
	caught := func() (r any) {
		defer func() { r = recover() }()
		s.Run(func(tk *sched.Task) {
			tk.Finish(func(tk *sched.Task) {
				tk.Spawn(func(*sched.Task) { panic("boom") })
				for i := 0; i < 10; i++ {
					tk.Spawn(func(*sched.Task) {
						time.Sleep(time.Millisecond)
						joined.Add(1)
					})
				}
			})
		})
		return nil
	}()
	if caught != "boom" {
		t.Fatalf("recovered %v, want \"boom\"", caught)
	}
	if got := joined.Load(); got != 10 {
		t.Fatalf("panic escaped before the scope joined: %d/10 siblings done", got)
	}
	// The scheduler must stay usable.
	ok := false
	s.Run(func(*sched.Task) { ok = true })
	if !ok {
		t.Fatal("scheduler unusable after a panic")
	}
}

func TestPanicFromRootBodyPropagates(t *testing.T) {
	s := sched.New(sched.Options{Workers: 2})
	defer s.Close()
	caught := func() (r any) {
		defer func() { r = recover() }()
		s.Run(func(*sched.Task) { panic(42) })
		return nil
	}()
	if caught != 42 {
		t.Fatalf("recovered %v, want 42", caught)
	}
}

func TestPanicFromCilkChildPropagatesAtSync(t *testing.T) {
	s := sched.New(sched.Options{Workers: 2})
	defer s.Close()
	caught := func() (r any) {
		defer func() { r = recover() }()
		s.Run(func(tk *sched.Task) {
			tk.CilkSpawn(func(*sched.Task) { panic("child") })
			tk.Sync()
			t.Error("Sync returned despite a panicking child")
		})
		return nil
	}()
	if caught != "child" {
		t.Fatalf("recovered %v, want \"child\"", caught)
	}
}

func TestPanicWithOpenCilkScopeJoinsChildren(t *testing.T) {
	s := sched.New(sched.Options{Workers: 4})
	defer s.Close()
	var joined atomic.Int64
	caught := func() (r any) {
		defer func() { r = recover() }()
		s.Run(func(tk *sched.Task) {
			for i := 0; i < 8; i++ {
				tk.CilkSpawn(func(*sched.Task) {
					time.Sleep(time.Millisecond)
					joined.Add(1)
				})
			}
			panic("before sync") // scope still open
		})
		return nil
	}()
	if caught != "before sync" {
		t.Fatalf("recovered %v", caught)
	}
	if got := joined.Load(); got != 8 {
		t.Fatalf("children escaped the unwinding join: %d/8", got)
	}
}

func TestPanicInNestedFinishPropagatesOutward(t *testing.T) {
	s := sched.New(sched.Options{Workers: 2})
	defer s.Close()
	caught := func() (r any) {
		defer func() { r = recover() }()
		s.Run(func(tk *sched.Task) {
			tk.Finish(func(tk *sched.Task) {
				tk.Finish(func(tk *sched.Task) {
					tk.Spawn(func(*sched.Task) { panic("deep") })
				})
				t.Error("inner Finish returned despite the panic")
			})
		})
		return nil
	}()
	if caught != "deep" {
		t.Fatalf("recovered %v, want \"deep\"", caught)
	}
}
