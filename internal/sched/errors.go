package sched

import (
	"fmt"
	"sync"
)

// UsageError is the typed panic value raised on API misuse: unlocking a
// mutex the task does not hold, using a handle created by one session
// from a task of another, running a closed scheduler, or blocking
// constructs that could deadlock a helping worker. It replaces the
// historic raw-string panics so callers can recover and classify misuse
// programmatically.
type UsageError struct {
	// Op is the operation that was misused (e.g. "Mutex.Unlock").
	Op string
	// Detail describes the misuse.
	Detail string
}

// Error implements error.
func (e *UsageError) Error() string {
	return fmt.Sprintf("sched: invalid use of %s: %s", e.Op, e.Detail)
}

// usage panics with a UsageError.
func usage(op, format string, args ...any) {
	panic(&UsageError{Op: op, Detail: fmt.Sprintf(format, args...)})
}

// TaskPanic is one recovered task panic: which task crashed, the panic
// value, and the stack captured at the recovery point. Panics recover
// into the session report (and, unless the scheduler runs in
// recover-panics mode, additionally re-raise from Run after the
// computation has joined), so a crashing task never loses the partial
// analysis results accumulated before it.
type TaskPanic struct {
	// Task is the ID of the task whose body panicked.
	Task int32
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

// String renders a one-line diagnostic.
func (p TaskPanic) String() string {
	return fmt.Sprintf("task %d panicked: %v", p.Task, p.Value)
}

// maxRecordedPanics caps the retained panic details; the count keeps
// running beyond it so saturation is visible without unbounded growth.
const maxRecordedPanics = 64

// panicLog collects recovered task panics, bounded.
type panicLog struct {
	mu    sync.Mutex
	list  []TaskPanic
	extra int64
}

func (l *panicLog) record(p TaskPanic) {
	l.mu.Lock()
	if len(l.list) < maxRecordedPanics {
		l.list = append(l.list, p)
	} else {
		l.extra++
	}
	l.mu.Unlock()
}

func (l *panicLog) snapshot() ([]TaskPanic, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]TaskPanic(nil), l.list...), int64(len(l.list)) + l.extra
}
