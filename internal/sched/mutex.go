package sched

import (
	"runtime"
	"sync"
)

func yield() { runtime.Gosched() }

// MakeLockToken builds an acquisition token from a lock identity and a
// unique acquisition number. Tokens implement the paper's lock
// versioning: every dynamic acquisition has a distinct token, while the
// identity part lets analyses recover which mutex the token names.
func MakeLockToken(lockID uint32, acquisition uint64) uint64 {
	return uint64(lockID)<<40 | acquisition&(1<<40-1)
}

// LockIdentity extracts the lock identity from an acquisition token.
func LockIdentity(token uint64) uint64 { return token >> 40 }

// LockAcquisition extracts the dynamic acquisition ordinal from an
// acquisition token — the version the paper's lock renaming assigns on
// every re-acquisition.
func LockAcquisition(token uint64) uint64 { return token & (1<<40 - 1) }

// Mutex is an instrumented lock. Lock and Unlock take the acquiring task
// so the runtime can maintain the task's lockset and version the
// acquisition: every dynamic acquisition receives a globally unique
// token, implementing the paper's lock renaming on re-acquisition
// (Section 3.3).
//
// A Mutex must be released by the task that acquired it, and must not be
// held across Spawn's enclosing Finish join (the runtime panics on
// Finish-while-locked, since a helping worker could otherwise deadlock
// on its own suspended task).
type Mutex struct {
	mu   sync.Mutex
	sch  *Scheduler
	loc  Loc
	id   uint32
	name string
}

// NewMutex creates an instrumented mutex with a diagnostic name.
func (s *Scheduler) NewMutex(name string) *Mutex {
	return &Mutex{sch: s, loc: s.AllocLoc(), id: s.nextLockID.Add(1), name: name}
}

// Name returns the diagnostic name of the mutex.
func (m *Mutex) Name() string { return m.name }

// Loc returns the location identifier of the mutex itself, used by
// monitors that model lock operations as accesses (e.g. Velodrome's
// synchronization edges).
func (m *Mutex) Loc() Loc { return m.loc }

// Lock acquires the mutex on behalf of t, pushes a fresh acquisition
// token on t's lockset, and notifies the monitor.
func (m *Mutex) Lock(t *Task) {
	if t.sch != m.sch {
		usage("Mutex.Lock", "task %d locks %q, which belongs to a different session", t.id, m.name)
	}
	m.mu.Lock()
	tok := MakeLockToken(m.id, t.sch.lockTok.Add(1))
	t.locks = append(t.locks, tok)
	t.lockRefs = append(t.lockRefs, m)
	t.lockVer++
	if mon := t.sch.mon; mon != nil {
		mon.OnAcquire(t, m)
	}
}

// Unlock releases the mutex, popping it from t's lockset. Locks may be
// released in any order.
func (m *Mutex) Unlock(t *Task) {
	if t.sch != m.sch {
		usage("Mutex.Unlock", "task %d unlocks %q, which belongs to a different session", t.id, m.name)
	}
	if mon := t.sch.mon; mon != nil {
		mon.OnRelease(t, m)
	}
	for i := len(t.lockRefs) - 1; i >= 0; i-- {
		if t.lockRefs[i] == m {
			t.locks = append(t.locks[:i], t.locks[i+1:]...)
			t.lockRefs = append(t.lockRefs[:i], t.lockRefs[i+1:]...)
			t.lockVer++
			m.mu.Unlock()
			return
		}
	}
	usage("Mutex.Unlock", "task %d unlocks %q without holding it", t.id, m.name)
}
