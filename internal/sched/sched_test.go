package sched_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
)

// recordingMonitor captures instrumented events for assertions.
type recordingMonitor struct {
	mu       sync.Mutex
	accesses []recordedAccess
	acquires int
	releases int
}

type recordedAccess struct {
	task  int32
	step  dpst.NodeID
	loc   sched.Loc
	write bool
	locks []uint64
}

func (m *recordingMonitor) OnAccess(t *sched.Task, loc sched.Loc, write bool) {
	rec := recordedAccess{
		task:  t.ID(),
		step:  t.StepNode(),
		loc:   loc,
		write: write,
		locks: append([]uint64(nil), t.Lockset()...),
	}
	m.mu.Lock()
	m.accesses = append(m.accesses, rec)
	m.mu.Unlock()
}

func (m *recordingMonitor) OnAcquire(*sched.Task, *sched.Mutex) {
	m.mu.Lock()
	m.acquires++
	m.mu.Unlock()
}

func (m *recordingMonitor) OnRelease(*sched.Task, *sched.Mutex) {
	m.mu.Lock()
	m.releases++
	m.mu.Unlock()
}

func TestRunExecutesRootBody(t *testing.T) {
	s := sched.New(sched.Options{Workers: 2})
	defer s.Close()
	ran := false
	s.Run(func(*sched.Task) { ran = true })
	if !ran {
		t.Fatal("root body did not run")
	}
}

func TestSpawnJoinsAtRunEnd(t *testing.T) {
	s := sched.New(sched.Options{Workers: 4})
	defer s.Close()
	var n atomic.Int64
	s.Run(func(t *sched.Task) {
		for i := 0; i < 100; i++ {
			t.Spawn(func(ct *sched.Task) {
				ct.Spawn(func(*sched.Task) { n.Add(1) })
				n.Add(1)
			})
		}
	})
	if got := n.Load(); got != 200 {
		t.Fatalf("completed %d tasks before Run returned, want 200", got)
	}
}

func TestFinishJoinsNestedSpawns(t *testing.T) {
	s := sched.New(sched.Options{Workers: 4})
	defer s.Close()
	s.Run(func(tk *sched.Task) {
		var inner atomic.Int64
		tk.Finish(func(tk *sched.Task) {
			for i := 0; i < 50; i++ {
				tk.Spawn(func(ct *sched.Task) {
					ct.Spawn(func(*sched.Task) { inner.Add(1) })
					inner.Add(1)
				})
			}
		})
		if got := inner.Load(); got != 100 {
			t.Errorf("Finish returned with %d/100 spawned tasks complete", got)
		}
	})
}

func TestRunTwice(t *testing.T) {
	s := sched.New(sched.Options{Workers: 2})
	defer s.Close()
	var n atomic.Int64
	for r := 0; r < 2; r++ {
		s.Run(func(t *sched.Task) {
			t.Spawn(func(*sched.Task) { n.Add(1) })
		})
	}
	if n.Load() != 2 {
		t.Fatalf("got %d spawned executions, want 2", n.Load())
	}
}

func TestParallelForCoversRange(t *testing.T) {
	s := sched.New(sched.Options{Workers: 4})
	defer s.Close()
	const n = 1003
	var hits [n]atomic.Int32
	s.Run(func(t *sched.Task) {
		sched.ParallelFor(t, 0, n, 16, func(_ *sched.Task, i int) {
			hits[i].Add(1)
		})
	})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d executed %d times", i, got)
		}
	}
}

func TestParallelForEmptyAndTiny(t *testing.T) {
	s := sched.New(sched.Options{Workers: 2})
	defer s.Close()
	var n atomic.Int64
	s.Run(func(t *sched.Task) {
		sched.ParallelFor(t, 5, 5, 4, func(*sched.Task, int) { n.Add(1) })
		sched.ParallelFor(t, 0, 1, 0, func(*sched.Task, int) { n.Add(1) })
	})
	if n.Load() != 1 {
		t.Fatalf("got %d iterations, want 1", n.Load())
	}
}

func TestParallelInvoke(t *testing.T) {
	s := sched.New(sched.Options{Workers: 4})
	defer s.Close()
	var n atomic.Int64
	s.Run(func(tk *sched.Task) {
		tk.Parallel(
			func(*sched.Task) { n.Add(1) },
			func(*sched.Task) { n.Add(10) },
			func(*sched.Task) { n.Add(100) },
		)
		if n.Load() != 111 {
			t.Error("Parallel returned before all branches completed")
		}
		tk.Parallel() // no-op
	})
}

// TestDPSTStructureFigure1 runs the paper's Figure 1 program on the real
// scheduler and verifies the step-node parallelism relations of Figure 2.
func TestDPSTStructureFigure1(t *testing.T) {
	tree := dpst.NewArrayTree()
	mon := &recordingMonitor{}
	s := sched.New(sched.Options{Workers: 4, Tree: tree, Monitor: mon})
	defer s.Close()

	const locX sched.Loc = 1
	var s11, s12, s2, s3 dpst.NodeID
	var mu sync.Mutex
	s.Run(func(t *sched.Task) {
		t.Access(locX, true) // X = 10 (S11)
		s11 = t.StepNode()
		t.Finish(func(t *sched.Task) {
			t.Spawn(func(t2 *sched.Task) { // T2
				t2.Access(locX, false)
				t2.Access(locX, true)
				mu.Lock()
				s2 = t2.StepNode()
				mu.Unlock()
			})
			t.Access(locX, true) // X = Y (S12)
			s12 = t.StepNode()
			t.Spawn(func(t3 *sched.Task) { // T3
				t3.Access(locX, true)
				mu.Lock()
				s3 = t3.StepNode()
				mu.Unlock()
			})
		})
	})

	q := dpst.NewQuery(tree, true)
	if s11 == dpst.None || s12 == dpst.None || s2 == dpst.None || s3 == dpst.None {
		t.Fatal("missing step nodes")
	}
	if s11 == s12 {
		t.Fatal("S11 and S12 must be distinct steps (Finish splits steps)")
	}
	cases := []struct {
		name string
		a, b dpst.NodeID
		want bool
	}{
		{"S2 vs S12", s2, s12, true},
		{"S2 vs S3", s2, s3, true},
		{"S11 vs S2", s11, s2, false},
		{"S12 vs S3", s12, s3, false},
		{"S11 vs S12", s11, s12, false},
	}
	for _, c := range cases {
		if got := q.Par(c.a, c.b); got != c.want {
			t.Errorf("%s: Par=%v want %v", c.name, got, c.want)
		}
	}
	if len(mon.accesses) != 5 {
		t.Errorf("monitor saw %d accesses, want 5", len(mon.accesses))
	}
}

func TestStepNodeStableWithinRegion(t *testing.T) {
	tree := dpst.NewArrayTree()
	s := sched.New(sched.Options{Workers: 1, Tree: tree})
	defer s.Close()
	s.Run(func(tk *sched.Task) {
		a := tk.StepNode()
		b := tk.StepNode()
		if a != b {
			t.Error("StepNode must be stable between task-management constructs")
		}
		tk.Finish(func(*sched.Task) {})
		if c := tk.StepNode(); c == a {
			t.Error("StepNode must change across a Finish")
		}
	})
}

func TestUninstrumentedConfigHasNoSteps(t *testing.T) {
	s := sched.New(sched.Options{Workers: 2})
	defer s.Close()
	s.Run(func(tk *sched.Task) {
		if tk.StepNode() != dpst.None {
			t.Error("StepNode must be None without a Tree")
		}
		tk.Access(1, true) // must be a no-op without a monitor
	})
}

func TestMutexLocksetAndVersioning(t *testing.T) {
	mon := &recordingMonitor{}
	s := sched.New(sched.Options{Workers: 2, Tree: dpst.NewArrayTree(), Monitor: mon})
	defer s.Close()
	l := s.NewMutex("L")
	m := s.NewMutex("M")
	s.Run(func(tk *sched.Task) {
		l.Lock(tk)
		tk.Access(1, false)
		tok1 := append([]uint64(nil), tk.Lockset()...)
		l.Unlock(tk)
		l.Lock(tk)
		tok2 := append([]uint64(nil), tk.Lockset()...)
		l.Unlock(tk)
		if len(tok1) != 1 || len(tok2) != 1 {
			t.Fatalf("lockset sizes: %d, %d; want 1, 1", len(tok1), len(tok2))
		}
		if tok1[0] == tok2[0] {
			t.Error("re-acquisition must produce a fresh token (lock versioning)")
		}
		// Non-LIFO release order.
		l.Lock(tk)
		m.Lock(tk)
		if len(tk.Lockset()) != 2 {
			t.Fatalf("lockset size = %d, want 2", len(tk.Lockset()))
		}
		l.Unlock(tk)
		if len(tk.Lockset()) != 1 {
			t.Error("non-LIFO unlock must remove the right entry")
		}
		m.Unlock(tk)
		if len(tk.Lockset()) != 0 {
			t.Error("lockset must be empty after releasing all locks")
		}
	})
	if mon.acquires != 4 || mon.releases != 4 {
		t.Errorf("monitor saw %d acquires, %d releases; want 4, 4", mon.acquires, mon.releases)
	}
	if l.Name() != "L" || l.Loc() == 0 || l.Loc() == m.Loc() {
		t.Error("mutex name/loc bookkeeping broken")
	}
}

func TestUnlockWithoutHoldPanics(t *testing.T) {
	s := sched.New(sched.Options{Workers: 1})
	defer s.Close()
	l := s.NewMutex("L")
	s.Run(func(tk *sched.Task) {
		defer func() {
			if recover() == nil {
				t.Error("Unlock without Lock must panic")
			}
		}()
		l.Unlock(tk)
	})
}

func TestFinishWhileLockedPanics(t *testing.T) {
	s := sched.New(sched.Options{Workers: 1})
	defer s.Close()
	l := s.NewMutex("L")
	s.Run(func(tk *sched.Task) {
		defer func() {
			if recover() == nil {
				t.Error("Finish while holding a lock must panic")
			}
			l.Unlock(tk)
		}()
		l.Lock(tk)
		tk.Finish(func(*sched.Task) {}) //avdlint:ignore deliberate misuse: exercises the runtime UsageError
	})
}

func TestAllocLocs(t *testing.T) {
	s := sched.New(sched.Options{Workers: 1})
	defer s.Close()
	a := s.AllocLoc()
	base := s.AllocLocs(10)
	b := s.AllocLoc()
	if base != a+1 {
		t.Errorf("AllocLocs base = %d, want %d", base, a+1)
	}
	if b != base+10 {
		t.Errorf("next loc = %d, want %d", b, base+10)
	}
}

// TestStressDeepAndWide exercises stealing and helping with an irregular
// fib-like spawn tree; run with -race to validate the deque and parking.
func TestStressDeepAndWide(t *testing.T) {
	s := sched.New(sched.Options{Workers: 8, Tree: dpst.NewArrayTree()})
	defer s.Close()
	var leaves atomic.Int64
	var fib func(t *sched.Task, n int)
	fib = func(t *sched.Task, n int) {
		if n < 2 {
			leaves.Add(1)
			return
		}
		t.Finish(func(t *sched.Task) {
			t.Spawn(func(ct *sched.Task) { fib(ct, n-1) })
			fib(t, n-2)
		})
	}
	s.Run(func(t *sched.Task) { fib(t, 18) })
	// fib(18) leaves: fib-tree leaf count = fib(19) in the 1,1,2,... sequence: 4181.
	if got := leaves.Load(); got != 4181 {
		t.Fatalf("leaves = %d, want 4181", got)
	}
}
