package sched

import "testing"

// TestUsageErrorMessage pins the diagnostic format the runtime panics
// with (and that avd-lint's lockdiscipline/sessionhandle docs cite).
func TestUsageErrorMessage(t *testing.T) {
	err := &UsageError{Op: "Mutex.Unlock", Detail: "mutex is not held"}
	want := "sched: invalid use of Mutex.Unlock: mutex is not held"
	if got := err.Error(); got != want {
		t.Errorf("UsageError.Error() = %q, want %q", got, want)
	}
}

// TestTaskPanicString pins the one-line panic rendering.
func TestTaskPanicString(t *testing.T) {
	p := TaskPanic{Task: 7, Value: "boom"}
	want := "task 7 panicked: boom"
	if got := p.String(); got != want {
		t.Errorf("TaskPanic.String() = %q, want %q", got, want)
	}
}
