package sched_test

import (
	"errors"
	"strings"
	"testing"

	"github.com/taskpar/avd/internal/sched"
)

// runExpectingUsage runs body on a fresh scheduler and returns the
// *UsageError its root task panicked with, failing the test when the
// panic is missing or of the wrong type.
func runExpectingUsage(t *testing.T, body func(*sched.Task)) *sched.UsageError {
	t.Helper()
	s := sched.New(sched.Options{Workers: 1})
	defer s.Close()
	var rec any
	func() {
		defer func() { rec = recover() }()
		s.Run(body)
	}()
	if rec == nil {
		t.Fatal("expected a UsageError panic, got none")
	}
	ue, ok := rec.(*sched.UsageError)
	if !ok {
		t.Fatalf("expected *UsageError, got %T: %v", rec, rec)
	}
	return ue
}

func TestUnlockWithoutHoldIsUsageError(t *testing.T) {
	s := sched.New(sched.Options{Workers: 1})
	defer s.Close()
	m := s.NewMutex("orphan")
	var rec any
	func() {
		defer func() { rec = recover() }()
		s.Run(func(t *sched.Task) { m.Unlock(t) })
	}()
	ue, ok := rec.(*sched.UsageError)
	if !ok {
		t.Fatalf("expected *UsageError, got %T: %v", rec, rec)
	}
	if ue.Op != "Mutex.Unlock" {
		t.Fatalf("Op = %q, want %q", ue.Op, "Mutex.Unlock")
	}
	if !strings.Contains(ue.Detail, "without holding it") {
		t.Fatalf("Detail %q does not name the misuse", ue.Detail)
	}
	var asUE *sched.UsageError
	if err := error(ue); !errors.As(err, &asUE) {
		t.Fatal("UsageError must satisfy errors.As")
	}
}

func TestCrossSessionLockIsUsageError(t *testing.T) {
	other := sched.New(sched.Options{Workers: 1})
	defer other.Close()
	m := other.NewMutex("foreign")
	ue := runExpectingUsage(t, func(t *sched.Task) { m.Lock(t) })
	if ue.Op != "Mutex.Lock" {
		t.Fatalf("Op = %q, want %q", ue.Op, "Mutex.Lock")
	}
	if !strings.Contains(ue.Detail, "different session") {
		t.Fatalf("Detail %q does not name the misuse", ue.Detail)
	}
}

func TestCrossSessionUnlockIsUsageError(t *testing.T) {
	other := sched.New(sched.Options{Workers: 1})
	defer other.Close()
	m := other.NewMutex("foreign")
	ue := runExpectingUsage(t, func(t *sched.Task) { m.Unlock(t) })
	if ue.Op != "Mutex.Unlock" {
		t.Fatalf("Op = %q, want %q", ue.Op, "Mutex.Unlock")
	}
}

func TestRunAfterCloseIsUsageError(t *testing.T) {
	s := sched.New(sched.Options{Workers: 1})
	s.Run(func(*sched.Task) {})
	s.Close()
	s.Close() // idempotent: second Close must be a no-op, not a crash
	var rec any
	func() {
		defer func() { rec = recover() }()
		s.Run(func(*sched.Task) {})
	}()
	ue, ok := rec.(*sched.UsageError)
	if !ok {
		t.Fatalf("expected *UsageError, got %T: %v", rec, rec)
	}
	if ue.Op != "Scheduler.Run" || !strings.Contains(ue.Detail, "after Close") {
		t.Fatalf("unexpected error %v", ue)
	}
}

func TestFinishWhileLockedIsUsageError(t *testing.T) {
	s := sched.New(sched.Options{Workers: 1})
	defer s.Close()
	m := s.NewMutex("held")
	var rec any
	func() {
		defer func() { rec = recover() }()
		s.Run(func(t *sched.Task) {
			m.Lock(t)
			defer m.Unlock(t)
			t.Finish(func(*sched.Task) {}) //avdlint:ignore deliberate misuse: exercises the runtime UsageError
		})
	}()
	ue, ok := rec.(*sched.UsageError)
	if !ok {
		t.Fatalf("expected *UsageError, got %T: %v", rec, rec)
	}
	if ue.Op != "Task.Finish" {
		t.Fatalf("Op = %q, want %q", ue.Op, "Task.Finish")
	}
}
