package sched

import (
	"sync/atomic"

	"github.com/taskpar/avd/internal/chaos"
	"github.com/taskpar/avd/internal/dpst"
)

// finishScope counts the spawned tasks that must complete before the
// enclosing Finish returns, and carries the first panic raised by any of
// them so it can be re-raised at the join point (structured panic
// propagation, like TBB task groups).
type finishScope struct {
	pending atomic.Int64
	panicV  atomic.Pointer[taskPanic]
}

// taskPanic wraps a recovered panic value from a spawned task.
type taskPanic struct {
	val any
}

func (sc *finishScope) recordPanic(v any) {
	sc.panicV.CompareAndSwap(nil, &taskPanic{val: v})
}

// panicked reports whether the scope has a recorded panic.
func (sc *finishScope) panicked() bool { return sc.panicV.Load() != nil }

// rethrow re-raises the scope's recorded panic, if any.
func (sc *finishScope) rethrow() {
	if p := sc.panicV.Load(); p != nil {
		panic(p.val)
	}
}

// Task is a dynamic task of the fork-join computation. Task methods must
// be called only from the goroutine currently executing the task.
type Task struct {
	id         int32
	sch        *Scheduler
	worker     *worker
	parentNode dpst.NodeID // DPST node receiving this task's new children
	step       dpst.NodeID // current step node, or None when stale
	scope      *finishScope
	spawned    bool  // whether this task was registered in scope
	spawnSeq   int32 // ordinal of the task's next Spawn (chaos identity)
	body       func(*Task)
	onDone     func()

	// propagating marks a panic that is being re-raised at a join point
	// (Finish, Sync) rather than originating in a task body, so the
	// capture sites above record each panic once. It lives on the task
	// because the whole rethrow/recover chain runs on the task's own
	// goroutine.
	propagating bool

	locks    []uint64 // acquisition tokens of currently held locks
	lockRefs []*Mutex // parallel stack of the held mutexes

	// stepEpoch counts step-region transitions and lockVer lockset
	// changes; together they version the checker's redundant-access
	// filter (see FilterEpoch). Both only ever grow, and only from the
	// task's own goroutine.
	stepEpoch uint64
	lockVer   uint64

	// Cilk-style spawn/sync state: the implicit finish scope opened by
	// the first CilkSpawn after a Sync, and the context to restore.
	cilk           *finishScope
	cilkParentSave dpst.NodeID
	cilkScopeSave  *finishScope

	// Local is scratch storage for the attached Monitor: the checker
	// keeps its per-task local metadata space here. The field is only
	// touched from the task's own goroutine.
	Local any

	// elide is the window-saturation cache the batched checker installs
	// through ElideSlot; nil keeps Access on the plain monitor path. Like
	// Local, it is only touched from the task's own goroutine.
	elide *Elide
}

// ID returns the dense ID of the task.
func (t *Task) ID() int32 { return t.id }

// WorkerID returns the scheduler worker currently executing the task,
// or -1 when the task has not been dispatched to a worker yet. Valid
// only on the task's own goroutine (or before the task runs); work
// stealing migrates tasks between workers across dispatches.
func (t *Task) WorkerID() int {
	if t.worker == nil {
		return -1
	}
	return t.worker.id
}

// LocalSlot returns a pointer to the monitor scratch storage, satisfying
// the checker's TaskState interface.
func (t *Task) LocalSlot() *any { return &t.Local }

// ElideSlot returns the address of the task's window-elision cache
// pointer, satisfying the checker's optional ElideHost interface. The
// batched checker installs an Elide here when window elision is
// enabled and clears it at task end.
func (t *Task) ElideSlot() **Elide { return &t.elide }

// Scheduler returns the scheduler running this task.
func (t *Task) Scheduler() *Scheduler { return t.sch }

// StepNode returns the DPST step node covering the current instruction
// region, creating it lazily on the first access after a task-management
// construct. It returns dpst.None in the uninstrumented configuration.
func (t *Task) StepNode() dpst.NodeID {
	if t.step == dpst.None && t.sch.tree != nil {
		t.step = t.sch.tree.NewNode(t.parentNode, dpst.Step, t.id)
	}
	return t.step
}

// newStepRegion invalidates the current step node and advances the
// step epoch: the next instrumented access belongs to a fresh step, so
// per-step redundancy state cached against the old epoch must die.
func (t *Task) newStepRegion() {
	t.step = dpst.None
	t.stepEpoch++
}

// FilterEpoch returns a version word identifying the current
// (step region, lockset) regime of the task. The word changes whenever
// the task transitions to a new step node or acquires or releases a
// lock, so a redundancy fact recorded under one epoch is provably about
// the same step and an identical lockset when the epoch still matches.
// The step epoch occupies the high 32 bits and the lockset version the
// low 32; a collision would need 2^32 lock operations inside a single
// step region, which the shadow state cannot survive anyway.
func (t *Task) FilterEpoch() uint64 {
	return t.stepEpoch<<32 | t.lockVer&(1<<32-1)
}

// AccessState bundles LocalSlot, StepNode, FilterEpoch, and Lockset
// into a single call, so the checker's per-access hot path pays one
// indirect call instead of four.
func (t *Task) AccessState() (*any, dpst.NodeID, uint64, []uint64) {
	if t.step == dpst.None && t.sch.tree != nil {
		t.step = t.sch.tree.NewNode(t.parentNode, dpst.Step, t.id)
	}
	return &t.Local, t.step, t.stepEpoch<<32 | t.lockVer&(1<<32-1), t.locks
}

// Lockset returns the acquisition tokens of the locks currently held by
// the task, innermost last. Each dynamic lock acquisition has a globally
// unique token, which implements the paper's lock versioning: two
// accesses share a token iff they sit in the same critical section, even
// across release/re-acquire of the same mutex (Section 3.3). The returned
// slice is owned by the task; callers must copy it before retaining it.
func (t *Task) Lockset() []uint64 { return t.locks }

// Access reports an instrumented read (write=false) or write to loc. It
// is the single entry point through which instrumented shared variables
// notify the attached monitor. When the batched checker has installed a
// window-elision cache and the access type is already saturated for loc
// in the current batch window, the access is provably a checker no-op
// and returns here, before the monitor sees it.
func (t *Task) Access(loc Loc, write bool) {
	if e := t.elide; e != nil && e.Hit(loc, write) {
		return
	}
	if mon := t.sch.mon; mon != nil {
		mon.OnAccess(t, loc, write)
	}
}

// recoverInto is the recovery bookkeeping shared by every capture site
// (runTask, Finish, the root body): it drains an open spawn-sync scope,
// records first-hand panics in the scheduler's panic log, and stores the
// value in the join scope so it re-raises at the owning Finish or Run. r
// must be the value of a recover() call made directly in the caller's
// deferred function.
func (t *Task) recoverInto(r any, scope *finishScope) {
	fromChild := false
	if cr := t.abortCilk(); r == nil {
		r = cr
		fromChild = true
	}
	if r == nil {
		t.propagating = false
		return
	}
	// Panics re-raised at a join point (propagating) and panics drained
	// from a cilk scope (fromChild) were already recorded when they first
	// unwound their own task; record only first-hand ones.
	if !t.propagating && !fromChild {
		t.sch.recordPanic(t.id, r)
	}
	t.propagating = false
	if scope != nil {
		scope.recordPanic(r)
	}
}

// Spawn creates a child task that executes body asynchronously. The
// child joins at the end of the innermost enclosing Finish scope (or at
// the end of Run for top-level spawns).
func (t *Task) Spawn(body func(*Task)) {
	childParent := dpst.None
	if t.sch.tree != nil {
		childParent = t.sch.tree.NewNode(t.parentNode, dpst.Async, t.id)
		t.newStepRegion() // the continuation is a fresh step
	}
	t.scope.pending.Add(1)
	child := &Task{
		id:         t.sch.nextTask.Add(1) - 1,
		sch:        t.sch,
		parentNode: childParent,
		step:       dpst.None,
		scope:      t.scope,
		spawned:    true,
		body:       body,
	}
	if so := t.sch.so; so != nil {
		so.OnSpawn(t, child.id)
	}
	seq := t.spawnSeq
	t.spawnSeq++
	if pl := t.sch.chaos; pl != nil && pl.ForceSteal(t.id, seq) {
		// Forced steal: divert the child to the shared overflow queue so
		// another worker (not the spawner's LIFO pop) picks it up.
		if io := t.sch.io; io != nil {
			io.OnInject(child.id, chaos.FaultSteal)
		}
		t.sch.pushOverflow(child)
	} else {
		t.worker.dq.push(child)
	}
	t.sch.wake()
}

// CilkSpawn spawns a child task with Cilk/TBB spawn semantics: the child
// joins at the task's next Sync (or implicitly at the end of the task,
// of an enclosing Finish body, or of Run). Following SPD3's mapping of
// spawn-sync programs onto the DPST, the first CilkSpawn after a sync
// point opens an implicit finish scope whose node becomes the parent of
// the spawned task's async node and of the continuation's steps; Sync
// closes it. The Figure 2 tree of the paper is exactly this mapping
// applied to the Figure 1 program.
func (t *Task) CilkSpawn(body func(*Task)) {
	if t.cilk == nil {
		t.cilkParentSave, t.cilkScopeSave = t.parentNode, t.scope
		if t.sch.tree != nil {
			t.parentNode = t.sch.tree.NewNode(t.parentNode, dpst.Finish, t.id)
			t.newStepRegion()
		}
		t.cilk = &finishScope{}
		t.scope = t.cilk
		if so := t.sch.so; so != nil {
			so.OnFinishBegin(t)
		}
	}
	t.Spawn(body)
}

// Sync waits for every task spawned with CilkSpawn since the previous
// sync point, like Cilk's sync or TBB's wait_for_all. It is a no-op when
// nothing was spawned. Panics from the synced tasks are re-raised here.
func (t *Task) Sync() {
	if t.cilk == nil {
		return
	}
	if len(t.locks) > 0 {
		usage("Task.Sync", "task %d syncs while holding an instrumented lock, which can deadlock a helping worker", t.id)
	}
	sc := t.cilk
	t.waitScope(sc)
	if so := t.sch.so; so != nil {
		so.OnFinishEnd(t)
	}
	t.parentNode, t.scope = t.cilkParentSave, t.cilkScopeSave
	t.cilk = nil
	if t.sch.tree != nil {
		t.newStepRegion()
	}
	if sc.panicked() {
		t.propagating = true
	}
	sc.rethrow()
}

// implicitSync closes an open spawn-sync scope at construct boundaries
// (task end, Finish entry and exit, Run end), mirroring Cilk's implicit
// sync at function return.
func (t *Task) implicitSync() {
	if t.cilk != nil {
		t.Sync()
	}
}

// abortCilk drains and closes an open spawn-sync scope while unwinding
// from a panic, so no spawned child outlives its structured parent. It
// returns the first panic recorded among the scope's children, or nil.
func (t *Task) abortCilk() any {
	if t.cilk == nil {
		return nil
	}
	sc := t.cilk
	t.parentNode, t.scope = t.cilkParentSave, t.cilkScopeSave
	t.cilk = nil
	t.waitScope(sc)
	if so := t.sch.so; so != nil {
		so.OnFinishEnd(t)
	}
	if t.sch.tree != nil {
		t.newStepRegion()
	}
	if p := sc.panicV.Load(); p != nil {
		return p.val
	}
	return nil
}

// Finish executes body and then waits until every task spawned inside it
// (transitively) has completed. While waiting, the worker executes other
// available tasks instead of blocking. A panic — in the body or in any
// spawned task of the scope — is re-raised from Finish after the whole
// scope has joined, so the tree of tasks unwinds in a structured way.
func (t *Task) Finish(body func(*Task)) {
	if len(t.locks) > 0 {
		usage("Task.Finish", "task %d enters a finish scope while holding an instrumented lock, which can deadlock a helping worker", t.id)
	}
	t.implicitSync()
	prevParent, prevScope := t.parentNode, t.scope
	if t.sch.tree != nil {
		t.parentNode = t.sch.tree.NewNode(t.parentNode, dpst.Finish, t.id)
		t.newStepRegion()
	}
	scope := &finishScope{}
	t.scope = scope
	if so := t.sch.so; so != nil {
		so.OnFinishBegin(t)
	}
	func() {
		defer func() {
			t.recoverInto(recover(), scope)
		}()
		body(t)
		t.implicitSync()
	}()
	t.waitScope(scope)
	if so := t.sch.so; so != nil {
		so.OnFinishEnd(t)
	}
	t.parentNode, t.scope = prevParent, prevScope
	if t.sch.tree != nil {
		t.newStepRegion() // the continuation after the join is a fresh step
	}
	if scope.panicked() {
		t.propagating = true
	}
	scope.rethrow()
}

// waitScope drains a finish scope, helping with other tasks meanwhile.
func (t *Task) waitScope(scope *finishScope) {
	w := t.worker
	for scope.pending.Load() > 0 {
		if nt := w.findTask(); nt != nil {
			w.runTask(nt)
			continue
		}
		// Nothing runnable: the outstanding tasks are executing on other
		// workers; yield until they finish.
		yield()
	}
}

// Parallel runs the given functions as parallel tasks and waits for all
// of them, like tbb::parallel_invoke: the first function runs inline on
// this task, the rest are spawned.
func (t *Task) Parallel(fns ...func(*Task)) {
	if len(fns) == 0 {
		return
	}
	t.Finish(func(t *Task) {
		for _, fn := range fns[1:] {
			t.Spawn(fn)
		}
		fns[0](t)
	})
}

// ParallelFor executes body(i) for every i in [lo, hi) with recursive
// range bisection, spawning a task per half until ranges shrink to at
// most grain iterations — the shape of tbb::parallel_for.
func ParallelFor(t *Task, lo, hi, grain int, body func(*Task, int)) {
	if lo >= hi {
		return
	}
	if grain < 1 {
		grain = 1
	}
	t.Finish(func(t *Task) {
		parForRange(t, lo, hi, grain, body)
	})
}

// ParallelRange is the blocked-range form of ParallelFor: leaves receive
// whole [lo, hi) chunks of at most grain iterations, like TBB's
// parallel_for over a blocked_range, so per-leaf work (local reductions,
// single critical sections) is expressible.
func ParallelRange(t *Task, lo, hi, grain int, body func(*Task, int, int)) {
	if lo >= hi {
		return
	}
	if grain < 1 {
		grain = 1
	}
	t.Finish(func(t *Task) {
		parRange(t, lo, hi, grain, body)
	})
}

func parRange(t *Task, lo, hi, grain int, body func(*Task, int, int)) {
	for hi-lo > grain {
		mid := lo + (hi-lo)/2
		lo2, hi2 := mid, hi
		t.Spawn(func(ct *Task) { parRange(ct, lo2, hi2, grain, body) })
		hi = mid
	}
	body(t, lo, hi)
}

func parForRange(t *Task, lo, hi, grain int, body func(*Task, int)) {
	for hi-lo > grain {
		mid := lo + (hi-lo)/2
		lo2, hi2 := mid, hi
		t.Spawn(func(ct *Task) { parForRange(ct, lo2, hi2, grain, body) })
		hi = mid
	}
	for i := lo; i < hi; i++ {
		body(t, i)
	}
}
