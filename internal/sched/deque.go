package sched

import "sync/atomic"

// deque is a Chase-Lev work-stealing deque. The owning worker pushes and
// pops at the bottom (LIFO); thieves steal from the top (FIFO). The
// implementation follows Chase & Lev, "Dynamic Circular Work-Stealing
// Deque" (SPAA 2005), adapted to Go's sequentially consistent atomics.
type deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    atomic.Pointer[dequeRing]
}

type dequeRing struct {
	mask  int64
	items []atomic.Pointer[Task]
}

func newDequeRing(capacity int64) *dequeRing {
	return &dequeRing{mask: capacity - 1, items: make([]atomic.Pointer[Task], capacity)}
}

func (r *dequeRing) get(i int64) *Task    { return r.items[i&r.mask].Load() }
func (r *dequeRing) put(i int64, t *Task) { r.items[i&r.mask].Store(t) }
func (r *dequeRing) size() int64          { return r.mask + 1 }

func newDeque() *deque {
	d := &deque{}
	d.buf.Store(newDequeRing(64))
	return d
}

// push appends a task at the bottom. Only the owning worker may call it.
func (d *deque) push(t *Task) {
	b := d.bottom.Load()
	tp := d.top.Load()
	r := d.buf.Load()
	if b-tp >= r.size()-1 {
		grown := newDequeRing(r.size() * 2)
		for i := tp; i < b; i++ {
			grown.put(i, r.get(i))
		}
		d.buf.Store(grown)
		r = grown
	}
	r.put(b, t)
	d.bottom.Store(b + 1)
}

// pop removes the most recently pushed task. Only the owning worker may
// call it.
func (d *deque) pop() *Task {
	b := d.bottom.Load() - 1
	r := d.buf.Load()
	d.bottom.Store(b)
	tp := d.top.Load()
	if tp > b {
		// Deque was empty; restore.
		d.bottom.Store(tp)
		return nil
	}
	t := r.get(b)
	if b > tp {
		return t
	}
	// Single element left: race with thieves via CAS on top.
	if !d.top.CompareAndSwap(tp, tp+1) {
		t = nil
	}
	d.bottom.Store(tp + 1)
	return t
}

// steal removes the oldest task on behalf of another worker. Safe for
// concurrent use by any number of thieves.
func (d *deque) steal() *Task {
	tp := d.top.Load()
	b := d.bottom.Load()
	if tp >= b {
		return nil
	}
	r := d.buf.Load()
	t := r.get(tp)
	if !d.top.CompareAndSwap(tp, tp+1) {
		return nil // lost the race; caller retries elsewhere
	}
	return t
}

// empty reports whether the deque currently appears empty.
func (d *deque) empty() bool {
	return d.top.Load() >= d.bottom.Load()
}
