package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestDequeLIFOOwner(t *testing.T) {
	d := newDeque()
	if d.pop() != nil {
		t.Fatal("pop on empty deque must return nil")
	}
	if !d.empty() {
		t.Fatal("new deque must be empty")
	}
	a, b, c := &Task{id: 1}, &Task{id: 2}, &Task{id: 3}
	d.push(a)
	d.push(b)
	d.push(c)
	if d.empty() {
		t.Fatal("deque with elements must not be empty")
	}
	for i, want := range []*Task{c, b, a} {
		if got := d.pop(); got != want {
			t.Fatalf("pop %d: got %v, want %v", i, got, want)
		}
	}
	if d.pop() != nil {
		t.Fatal("deque must be drained")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := newDeque()
	a, b := &Task{id: 1}, &Task{id: 2}
	d.push(a)
	d.push(b)
	if got := d.steal(); got != a {
		t.Fatalf("steal: got %v, want oldest %v", got, a)
	}
	if got := d.pop(); got != b {
		t.Fatalf("pop: got %v, want %v", got, b)
	}
	if d.steal() != nil {
		t.Fatal("steal on empty deque must return nil")
	}
}

func TestDequeGrowth(t *testing.T) {
	d := newDeque()
	const n = 1000 // forces several ring doublings past the initial 64
	tasks := make([]*Task, n)
	for i := range tasks {
		tasks[i] = &Task{id: int32(i)}
		d.push(tasks[i])
	}
	for i := n - 1; i >= 0; i-- {
		if got := d.pop(); got != tasks[i] {
			t.Fatalf("pop: got %v, want id %d", got, i)
		}
	}
}

// TestDequeConcurrentSteals hammers one owner against many thieves and
// verifies every task is taken exactly once.
func TestDequeConcurrentSteals(t *testing.T) {
	d := newDeque()
	const total = 20000
	const thieves = 4
	var taken [total]atomic.Int32
	var count atomic.Int64

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if task := d.steal(); task != nil {
					taken[task.id].Add(1)
					count.Add(1)
				}
				select {
				case <-stop:
					if task := d.steal(); task == nil {
						return
					}
				default:
				}
			}
		}()
	}
	// Owner interleaves pushes and pops.
	for i := 0; i < total; i++ {
		d.push(&Task{id: int32(i)})
		if i%3 == 0 {
			if task := d.pop(); task != nil {
				taken[task.id].Add(1)
				count.Add(1)
			}
		}
	}
	for {
		task := d.pop()
		if task == nil {
			break
		}
		taken[task.id].Add(1)
		count.Add(1)
	}
	close(stop)
	wg.Wait()
	// Drain anything the thieves put back... nothing to put back; drain remains.
	for {
		task := d.steal()
		if task == nil {
			break
		}
		taken[task.id].Add(1)
		count.Add(1)
	}
	if got := count.Load(); got != total {
		t.Fatalf("consumed %d tasks, want %d", got, total)
	}
	for i := range taken {
		if n := taken[i].Load(); n != 1 {
			t.Fatalf("task %d consumed %d times", i, n)
		}
	}
}
