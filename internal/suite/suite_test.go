package suite_test

import (
	"testing"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/suite"
)

func TestSuiteHas36UniquePrograms(t *testing.T) {
	ps := suite.Programs()
	if len(ps) != 36 {
		t.Fatalf("suite has %d programs, want 36", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" || p.Desc == "" {
			t.Errorf("program %q missing name or description", p.Name)
		}
		if seen[p.Name] {
			t.Errorf("duplicate program name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

// TestSuiteDetection is experiment E4: the paper-mode checker detects a
// violation in every positive program and stays silent on every negative
// one, across repeated runs (schedules vary).
func TestSuiteDetection(t *testing.T) {
	for _, p := range suite.Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for round := 0; round < 3; round++ {
				rep := p.Execute(avd.Options{Workers: 4})
				got := rep.ViolationCount > 0
				if got != p.Want {
					t.Fatalf("round %d: detected=%v, want %v (%s); violations: %v",
						round, got, p.Want, p.Desc, rep.Violations)
				}
			}
		})
	}
}

// TestSuiteDetectionStrict re-runs the suite under the strict-lock
// extension.
func TestSuiteDetectionStrict(t *testing.T) {
	for _, p := range suite.Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			rep := p.Execute(avd.Options{Workers: 4, StrictLockChecks: true})
			got := rep.ViolationCount > 0
			if got != p.WantStrict {
				t.Fatalf("detected=%v, want %v (%s); violations: %v",
					got, p.WantStrict, p.Desc, rep.Violations)
			}
		})
	}
}

// TestSuiteDetectionBasic cross-checks the suite against the
// unbounded-history reference checker.
func TestSuiteDetectionBasic(t *testing.T) {
	for _, p := range suite.Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			rep := p.Execute(avd.Options{Workers: 4, Checker: avd.CheckerBasic})
			got := rep.ViolationCount > 0
			if got != p.Want {
				t.Fatalf("basic: detected=%v, want %v (%s)", got, p.Want, p.Desc)
			}
		})
	}
}

// TestSuiteLinkedLayout runs the positives on the linked DPST to confirm
// layout-independence of detection.
func TestSuiteLinkedLayout(t *testing.T) {
	for _, p := range suite.Programs() {
		if !p.Want {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			rep := p.Execute(avd.Options{Workers: 4, Layout: avd.LayoutLinked})
			if rep.ViolationCount == 0 {
				t.Fatalf("linked layout missed the violation (%s)", p.Desc)
			}
		})
	}
}
