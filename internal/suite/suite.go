// Package suite contains the 36-program atomicity-violation test suite
// of the paper's evaluation ("We have built a test suite of 36 programs
// that exercise various kinds of atomicity violations. Our prototype
// detected all these violations without false positives.").
//
// The suite covers every unserializable triple kind, trace-order
// variants (interleaver before, between, and after the pair), lock
// versioning and critical-section interactions, multi-variable atomicity
// groups, nested and irregular parallelism, and a complement of negative
// programs that any precise checker must keep silent on.
package suite

import (
	avd "github.com/taskpar/avd"
)

// Program is one entry of the detection suite.
type Program struct {
	// Name is a short unique identifier.
	Name string
	// Desc says what the program exercises.
	Desc string
	// Want is whether the paper-mode checker must report a violation.
	Want bool
	// WantStrict is the expectation under Options.StrictLockChecks.
	WantStrict bool
	// Body sets up instrumented state on the session and returns the
	// root task body.
	Body func(s *avd.Session) func(t *avd.Task)
}

// Execute runs the program once under the given options.
func (p Program) Execute(opts avd.Options) avd.Report {
	s := avd.NewSession(opts)
	defer s.Close()
	body := p.Body(s)
	s.Run(body)
	return s.Report()
}

// pos builds a positive program (violation expected in both modes).
func pos(name, desc string, body func(s *avd.Session) func(t *avd.Task)) Program {
	return Program{Name: name, Desc: desc, Want: true, WantStrict: true, Body: body}
}

// neg builds a negative program (no violation in either mode).
func neg(name, desc string, body func(s *avd.Session) func(t *avd.Task)) Program {
	return Program{Name: name, Desc: desc, Want: false, WantStrict: false, Body: body}
}

// Programs returns the 36-program suite.
func Programs() []Program {
	return []Program{
		// --- Unserializable triple kinds, lock-free -------------------
		pos("rww-figure1", "Figure 1: read-write pair torn by a parallel write (R-W-W)",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				return func(t *avd.Task) {
					x.Store(t, 10)
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) { x.Store(t, x.Load(t)+1) })
						t.Spawn(func(t *avd.Task) { x.Store(t, 0) })
					})
				}
			}),
		pos("rwr-read-pair", "read-read pair torn by a parallel write (R-W-R)",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) {
							a := x.Load(t)
							b := x.Load(t)
							_, _ = a, b
						})
						t.Spawn(func(t *avd.Task) { x.Store(t, 1) })
					})
				}
			}),
		pos("www-write-pair", "write-write pair torn by a parallel write (W-W-W)",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) {
							x.Store(t, 1)
							x.Store(t, 2)
						})
						t.Spawn(func(t *avd.Task) { x.Store(t, 3) })
					})
				}
			}),
		pos("wwr-stale-read", "write-read pair torn by a parallel write (W-W-R)",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) {
							x.Store(t, 1)
							_ = x.Load(t)
						})
						t.Spawn(func(t *avd.Task) { x.Store(t, 2) })
					})
				}
			}),
		pos("wrw-read-tear", "write-write pair torn by a parallel read (W-R-W)",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) {
							x.Store(t, 1)
							x.Store(t, 2)
						})
						t.Spawn(func(t *avd.Task) { _ = x.Load(t) })
					})
				}
			}),
		// --- Trace-order variants -------------------------------------
		pos("interleaver-first", "the tearing write precedes the pair in the trace",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) { x.Store(t, 3) })
					})
					// The pair runs after the writer task completed; it is
					// parallel to nothing. Use a second phase where order is
					// forced the other way: writer spawned first, pair last,
					// but both in one finish so they stay logically parallel.
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) { x.Store(t, 4) })
						a := x.Load(t) // continuation pair after the spawn
						x.Store(t, a+1)
					})
				}
			}),
		pos("interleaver-in-continuation", "pair in the spawned task, tearing write in the spawner's continuation",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) {
							a := x.Load(t)
							x.Store(t, a+1)
						})
						x.Store(t, 9)
					})
				}
			}),
		pos("continuation-pair", "pair in the spawner's continuation step",
			func(s *avd.Session) func(*avd.Task) {
				y := s.NewIntVar("Y")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) { y.Store(t, 1) })
						y.Add(t, 1) // continuation: read+write parallel to child
					})
				}
			}),
		// --- Locks and lock versioning ---------------------------------
		pos("figure11-lock-versioning", "Figure 11: pair split across two critical sections of the same lock",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				y := s.NewIntVar("Y")
				l := s.NewMutex("L")
				return func(t *avd.Task) {
					x.Store(t, 10)
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) { // T2
							l.Lock(t)
							a := x.Load(t)
							l.Unlock(t)
							a++
							l.Lock(t)
							x.Store(t, a)
							l.Unlock(t)
						})
						t.Spawn(func(t *avd.Task) { // T3
							l.Lock(t)
							x.Store(t, y.Load(t))
							l.Unlock(t)
							y.Add(t, 1)
						})
						y.Add(t, 1)
					})
				}
			}),
		pos("two-cs-same-lock", "pair in two critical sections of L torn by another task's L section",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				l := s.NewMutex("L")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) {
							l.Lock(t)
							a := x.Load(t)
							l.Unlock(t)
							l.Lock(t)
							x.Store(t, a+1)
							l.Unlock(t)
						})
						t.Spawn(func(t *avd.Task) {
							l.Lock(t)
							x.Store(t, 100)
							l.Unlock(t)
						})
					})
				}
			}),
		pos("different-locks", "pair under lock L torn by a write under unrelated lock M",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				l := s.NewMutex("L")
				m := s.NewMutex("M")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) {
							l.Lock(t)
							a := x.Load(t)
							l.Unlock(t)
							l.Lock(t)
							x.Store(t, a*2)
							l.Unlock(t)
						})
						t.Spawn(func(t *avd.Task) {
							m.Lock(t)
							x.Store(t, 5)
							m.Unlock(t)
						})
					})
				}
			}),
		pos("half-locked-pair", "first access locked, second unlocked",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				l := s.NewMutex("L")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) {
							l.Lock(t)
							a := x.Load(t)
							l.Unlock(t)
							x.Store(t, a+1)
						})
						t.Spawn(func(t *avd.Task) {
							l.Lock(t)
							x.Store(t, 7)
							l.Unlock(t)
						})
					})
				}
			}),
		{
			Name: "same-cs-racy-tear",
			Desc: "pair inside one critical section, unsynchronized parallel write (a data race, not reported as an atomicity violation by the paper; strict mode reports it)",
			Want: false, WantStrict: true,
			Body: func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				l := s.NewMutex("L")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) {
							l.Lock(t)
							x.Store(t, x.Load(t)+1)
							l.Unlock(t)
						})
						t.Spawn(func(t *avd.Task) { x.Store(t, 3) })
					})
				}
			},
		},
		neg("same-cs-protected", "pair inside one critical section, all interleavers synchronized on the same lock",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				l := s.NewMutex("L")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						for i := 0; i < 3; i++ {
							t.Spawn(func(t *avd.Task) {
								l.Lock(t)
								x.Store(t, x.Load(t)+1)
								l.Unlock(t)
							})
						}
					})
				}
			}),
		neg("single-access-critical-sections", "every step touches the location once, under a lock",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				l := s.NewMutex("L")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						for i := 0; i < 4; i++ {
							t.Spawn(func(t *avd.Task) {
								l.Lock(t)
								x.Store(t, 1)
								l.Unlock(t)
							})
						}
					})
				}
			}),
		{
			Name: "nested-locks",
			Desc: "pair holding L throughout, split across two M sections, torn by an M-only writer (the shared outer L acquisition suppresses the pattern in paper mode; strict mode reports it)",
			Want: false, WantStrict: true,
			Body: func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				l := s.NewMutex("L")
				m := s.NewMutex("M")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) {
							l.Lock(t)
							m.Lock(t)
							a := x.Load(t)
							m.Unlock(t)
							m.Lock(t)
							x.Store(t, a+1)
							m.Unlock(t)
							l.Unlock(t)
						})
						t.Spawn(func(t *avd.Task) {
							m.Lock(t)
							x.Store(t, 2)
							m.Unlock(t)
						})
					})
				}
			},
		},
		// --- Multi-variable atomicity ----------------------------------
		pos("multivar-pair", "grouped lo/hi pair read torn by a parallel two-word update",
			func(s *avd.Session) func(*avd.Task) {
				lo := s.NewIntVar("pair.lo")
				hi := s.NewIntVar("pair.hi")
				s.Atomic(lo, hi)
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) {
							_ = lo.Load(t)
							_ = hi.Load(t)
						})
						t.Spawn(func(t *avd.Task) {
							lo.Store(t, 1)
							hi.Store(t, 2)
						})
					})
				}
			}),
		neg("multivar-ungrouped", "same two-word program without the atomicity annotation",
			func(s *avd.Session) func(*avd.Task) {
				lo := s.NewIntVar("pair.lo")
				hi := s.NewIntVar("pair.hi")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) {
							_ = lo.Load(t)
							_ = hi.Load(t)
						})
						t.Spawn(func(t *avd.Task) {
							lo.Store(t, 1)
							hi.Store(t, 2)
						})
					})
				}
			}),
		pos("bank-transfer", "unsynchronized transfer over a grouped account pair vs audit",
			func(s *avd.Session) func(*avd.Task) {
				a := s.NewIntVar("acct.a")
				b := s.NewIntVar("acct.b")
				s.Atomic(a, b)
				return func(t *avd.Task) {
					a.Store(t, 100)
					b.Store(t, 100)
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) { // transfer 10 from a to b
							a.Store(t, a.Load(t)-10)
							b.Store(t, b.Load(t)+10)
						})
						t.Spawn(func(t *avd.Task) { // audit
							_ = a.Load(t) + b.Load(t)
						})
					})
				}
			}),
		neg("bank-transfer-locked", "the same transfer/audit fully guarded by one lock",
			func(s *avd.Session) func(*avd.Task) {
				a := s.NewIntVar("acct.a")
				b := s.NewIntVar("acct.b")
				s.Atomic(a, b)
				l := s.NewMutex("bank")
				return func(t *avd.Task) {
					a.Store(t, 100)
					b.Store(t, 100)
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) {
							l.Lock(t)
							a.Store(t, a.Load(t)-10)
							b.Store(t, b.Load(t)+10)
							l.Unlock(t)
						})
						t.Spawn(func(t *avd.Task) {
							l.Lock(t)
							_ = a.Load(t) + b.Load(t)
							l.Unlock(t)
						})
					})
				}
			}),
		// --- Structure: nesting, fan-out, helpers -----------------------
		pos("nested-spawns", "violation between steps three spawn levels apart",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) {
							t.Spawn(func(t *avd.Task) {
								t.Spawn(func(t *avd.Task) { x.Add(t, 1) })
							})
						})
						t.Spawn(func(t *avd.Task) { x.Store(t, 2) })
					})
				}
			}),
		pos("finish-scope-escape", "pair after an inner finish vs a task of the outer scope",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) { x.Store(t, 1) }) // outer-scope task
						t.Finish(func(t *avd.Task) {
							t.Spawn(func(t *avd.Task) {})
						})
						x.Add(t, 1) // pair after the inner join, still parallel to the outer task
					})
				}
			}),
		pos("fib-tree", "violation across an irregular fib-shaped spawn tree",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				var fib func(t *avd.Task, n int)
				fib = func(t *avd.Task, n int) {
					if n < 2 {
						x.Add(t, 1)
						return
					}
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(ct *avd.Task) { fib(ct, n-1) })
						fib(t, n-2)
					})
				}
				return func(t *avd.Task) { fib(t, 6) }
			}),
		pos("parallel-invoke", "violation between Parallel branches",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				return func(t *avd.Task) {
					t.Parallel(
						func(t *avd.Task) { x.Add(t, 1) },
						func(t *avd.Task) { x.Store(t, 5) },
					)
				}
			}),
		pos("parallel-for-counter", "parallel_for iterations bump one shared counter",
			func(s *avd.Session) func(*avd.Task) {
				c := s.NewIntVar("counter")
				return func(t *avd.Task) {
					avd.ParallelFor(t, 0, 64, 4, func(t *avd.Task, i int) {
						c.Add(t, 1)
					})
				}
			}),
		neg("parallel-for-private", "parallel_for writes disjoint array slots",
			func(s *avd.Session) func(*avd.Task) {
				a := s.NewIntArray("out", 64)
				return func(t *avd.Task) {
					avd.ParallelFor(t, 0, 64, 4, func(t *avd.Task, i int) {
						a.Store(t, i, int64(i))
					})
				}
			}),
		pos("array-element-contention", "two tasks read-modify-write the same array slot",
			func(s *avd.Session) func(*avd.Task) {
				a := s.NewIntArray("hist", 8)
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) { a.Add(t, 3, 1) })
						t.Spawn(func(t *avd.Task) { a.Add(t, 3, 1) })
					})
				}
			}),
		neg("array-disjoint", "tasks read-modify-write distinct slots",
			func(s *avd.Session) func(*avd.Task) {
				a := s.NewIntArray("hist", 8)
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) { a.Add(t, 1, 1) })
						t.Spawn(func(t *avd.Task) { a.Add(t, 2, 1) })
					})
				}
			}),
		pos("wide-fanout", "sixteen tasks increment one unprotected counter",
			func(s *avd.Session) func(*avd.Task) {
				c := s.NewIntVar("counter")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						for i := 0; i < 16; i++ {
							t.Spawn(func(t *avd.Task) { c.Add(t, 1) })
						}
					})
				}
			}),
		// --- Idiomatic bug shapes ---------------------------------------
		pos("check-then-act", "test-and-set without a lock",
			func(s *avd.Session) func(*avd.Task) {
				init := s.NewIntVar("initialized")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						for i := 0; i < 2; i++ {
							t.Spawn(func(t *avd.Task) {
								if init.Load(t) == 0 {
									init.Store(t, 1)
								} else {
									_ = init.Load(t)
									init.Store(t, 1)
								}
							})
						}
					})
				}
			}),
		pos("float-accumulator", "floating-point reduction without a lock",
			func(s *avd.Session) func(*avd.Task) {
				sum := s.NewFloatVar("sum")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						for i := 0; i < 4; i++ {
							t.Spawn(func(t *avd.Task) { sum.Add(t, 1.5) })
						}
					})
				}
			}),
		neg("locked-reduction", "reduction where each read-modify-write sits in one critical section",
			func(s *avd.Session) func(*avd.Task) {
				sum := s.NewFloatVar("sum")
				l := s.NewMutex("sum.lock")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						for i := 0; i < 4; i++ {
							t.Spawn(func(t *avd.Task) {
								l.Lock(t)
								sum.Add(t, 2.5)
								l.Unlock(t)
							})
						}
					})
				}
			}),
		// --- Negatives: serial structure --------------------------------
		neg("serial-phases", "pair and writer separated by a join",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						t.Spawn(func(t *avd.Task) { x.Add(t, 1) })
					})
					// After the join: logically serial with the task above.
					x.Store(t, 7)
					x.Store(t, 8)
				}
			}),
		neg("pair-spans-spawn", "two accesses of one task separated by a spawn are not an atomic region",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						_ = x.Load(t)
						t.Spawn(func(t *avd.Task) { x.Store(t, 1) })
						x.Store(t, 2) // different step than the read above
					})
				}
			}),
		neg("readers-only", "parallel readers never violate atomicity",
			func(s *avd.Session) func(*avd.Task) {
				x := s.NewIntVar("X")
				return func(t *avd.Task) {
					x.Store(t, 42)
					t.Finish(func(t *avd.Task) {
						for i := 0; i < 4; i++ {
							t.Spawn(func(t *avd.Task) {
								_ = x.Load(t)
								_ = x.Load(t)
							})
						}
					})
				}
			}),
		neg("empty-tasks", "task structure without any shared accesses",
			func(s *avd.Session) func(*avd.Task) {
				return func(t *avd.Task) {
					t.Finish(func(t *avd.Task) {
						for i := 0; i < 8; i++ {
							t.Spawn(func(t *avd.Task) {
								t.Finish(func(t *avd.Task) {
									t.Spawn(func(*avd.Task) {})
								})
							})
						}
					})
				}
			}),
	}
}
