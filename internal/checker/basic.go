package checker

import (
	"sync"

	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
)

// basicEntry is one access-history record of the basic algorithm.
type basicEntry struct {
	step  dpst.NodeID
	typ   AccessType
	locks []uint64
}

// basicCell is the unbounded per-location access history of Figure 3.
type basicCell struct {
	mu   sync.Mutex
	hist []basicEntry
}

// Basic is the reference checker of Figure 3: it appends every dynamic
// access to the location's history and, on each access, searches the
// history for unserializable triples. Its metadata grows with the number
// of dynamic accesses; it exists as the differential-testing baseline for
// Optimized and for the trace-replay tooling, not for performance.
//
// Beyond the literal pseudocode of Figure 3, Basic also checks the
// current access in the interleaver role against every two-access
// pattern already in the history (the optimized algorithm does this in
// HandleFirstAccessCurrentTask); without it, violations whose
// interleaving access appears after the pattern in the observed trace
// would be missed by the basic variant alone.
type Basic struct {
	q      *dpst.Query
	rep    *Reporter
	strict bool
	mem    shadow[basicCell]
}

func newBasic(opts Options) *Basic {
	c := &Basic{q: opts.Query, rep: opts.Reporter, strict: opts.StrictLockChecks}
	c.mem.setGate(opts.Gate)
	return c
}

// Reporter implements Checker.
func (c *Basic) Reporter() *Reporter { return c.rep }

// Stats implements Checker.
func (c *Basic) Stats() Stats { return Stats{Locations: c.mem.count.Load()} }

// OnAcquire implements sched.Monitor.
func (c *Basic) OnAcquire(*sched.Task, *sched.Mutex) {}

// OnRelease implements sched.Monitor.
func (c *Basic) OnRelease(*sched.Task, *sched.Mutex) {}

func (c *Basic) report(loc sched.Loc, patStep, inter dpst.NodeID, a1, a2, a3 AccessType, patLocks, interLocks []uint64, observed bool) {
	tr := c.q.Tree()
	c.rep.Report(Violation{
		Loc:             loc,
		PatternStep:     patStep,
		InterleaverStep: inter,
		First:           a1,
		Middle:          a2,
		Last:            a3,
		PatternTask:     tr.Task(patStep),
		InterleaverTask: tr.Task(inter),
		Prov:            buildProvenance(tr, patStep, inter, patLocks, interLocks, observed),
	})
}

// OnAccess implements sched.Monitor.
func (c *Basic) OnAccess(t *sched.Task, loc sched.Loc, write bool) {
	c.Access(t, loc, write)
}

// Access checks one access against the location's full history.
func (c *Basic) Access(ts TaskState, loc sched.Loc, write bool) {
	si := ts.StepNode()
	locks := ts.Lockset()
	cur := Read
	if write {
		cur = Write
	}
	cell := c.mem.cell(loc)
	if cell == nil {
		return // gate refused the location's metadata: not admitted
	}
	cell.mu.Lock()
	defer cell.mu.Unlock()

	// Role 1 (Figure 3): the current access completes a two-access
	// pattern (p, current) of its own step; any recorded access by a
	// parallel step is a candidate interleaver. The history is in trace
	// order, so the triple was observed in this schedule iff the
	// interleaver was recorded after the pattern's first access.
	for i, p := range cell.hist {
		if p.step != si {
			continue
		}
		common := intersect(p.locks, locks)
		if len(common) > 0 && !c.strict {
			continue // same critical section: atomic under the lock
		}
		for j, q := range cell.hist {
			if q.step == si {
				continue
			}
			if !Unserializable(p.typ, q.typ, cur) {
				continue
			}
			if !identityDisjoint(common, q.locks) {
				continue
			}
			if c.q.Par(si, q.step) {
				c.report(loc, si, q.step, p.typ, q.typ, cur, common, q.locks, j > i)
			}
		}
	}

	// Role 2: the current access is the interleaver of a pattern already
	// recorded by another step (both pattern accesses precede the
	// current one in the trace).
	for i, p1 := range cell.hist {
		if p1.step == si {
			continue
		}
		for _, p2 := range cell.hist[i+1:] {
			if p2.step != p1.step {
				continue
			}
			common := intersect(p1.locks, p2.locks)
			if len(common) > 0 && !c.strict {
				continue
			}
			if !Unserializable(p1.typ, cur, p2.typ) {
				continue
			}
			if !identityDisjoint(common, locks) {
				continue
			}
			if c.q.Par(si, p1.step) {
				// The interleaving access arrives after the recorded
				// pattern completed: inferred for another schedule.
				c.report(loc, p1.step, si, p1.typ, cur, p2.typ, common, locks, false)
			}
		}
	}

	cell.hist = append(cell.hist, basicEntry{step: si, typ: cur, locks: copyLocks(locks)})
}
