package checker

import (
	"fmt"
	"strings"

	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
)

// Provenance explains why a reported triple is an atomicity violation:
// where in the DPST the two steps live, what each side held when it
// touched the location, and whether the unserializable interleaving was
// actually observed in this schedule or inferred for another schedule
// (the paper's Section 3.2 distinction — the checker reports a triple
// as soon as it is feasible in *some* schedule of the same input).
//
// Provenance is captured once, at the first report of a triple, and is
// deliberately excluded from violation identity: two detections of the
// same triple with different provenance are one violation.
type Provenance struct {
	// PatternPath and InterleaverPath are the DPST root paths of the two
	// steps, rendered as dotted kind+ID components ("F0.A3.S7").
	PatternPath     string `json:"pattern_path"`
	InterleaverPath string `json:"interleaver_path"`
	// PatternLocks is the lockset common to the pattern step's two
	// accesses; InterleaverLocks is the interleaver's lockset at its
	// access. Entries are versioned acquisition tokens (lock renaming,
	// Section 3.3): decode with sched.LockIdentity/LockAcquisition. The
	// two sets are disjoint by identity — that is what makes the triple
	// reportable.
	PatternLocks     []uint64 `json:"pattern_locks,omitempty"`
	InterleaverLocks []uint64 `json:"interleaver_locks,omitempty"`
	// Observed reports whether the unserializable order (first, middle,
	// last) actually occurred in this schedule; false means the middle
	// access was seen before the pattern completed (or symmetric), and
	// the violation manifests only under another schedule of the same
	// DPST.
	Observed bool `json:"observed"`
}

// formatLocks renders a lockset as "lock 2(v7)+lock 3(v1)" or "no lock".
func formatLocks(locks []uint64) string {
	if len(locks) == 0 {
		return "no lock"
	}
	var b strings.Builder
	for i, tok := range locks {
		if i > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "lock %d(v%d)", sched.LockIdentity(tok), sched.LockAcquisition(tok))
	}
	return b.String()
}

// verb renders an access type as a past-tense verb.
func verb(a AccessType) string {
	if a == Write {
		return "wrote"
	}
	return "read"
}

// Explain renders a human-readable account of the violation:
//
//	step S5 (task 1, F0.A2.S5) read loc 3 holding no lock, parallel step
//	S9 (task 2, F0.A4.S9) wrote loc 3 holding lock 1(v2), then step S5
//	wrote loc 3 — pattern RWW, observed in this schedule
//
// It degrades gracefully when no provenance was captured.
func (v Violation) Explain() string {
	var b strings.Builder
	p := v.Prov
	pat := fmt.Sprintf("step S%d (task %d", v.PatternStep, v.PatternTask)
	inter := fmt.Sprintf("parallel step S%d (task %d", v.InterleaverStep, v.InterleaverTask)
	if p != nil {
		pat += ", " + p.PatternPath
		inter += ", " + p.InterleaverPath
	}
	pat += ")"
	inter += ")"

	fmt.Fprintf(&b, "%s %s loc %d", pat, verb(v.First), v.Loc)
	if p != nil {
		fmt.Fprintf(&b, " holding %s", formatLocks(p.PatternLocks))
	}
	fmt.Fprintf(&b, ", %s %s loc %d", inter, verb(v.Middle), v.Loc)
	if p != nil {
		fmt.Fprintf(&b, " holding %s", formatLocks(p.InterleaverLocks))
	}
	fmt.Fprintf(&b, ", then step S%d %s loc %d — pattern %s", v.PatternStep, verb(v.Last), v.Loc, v.PatternName())
	if p != nil {
		if p.Observed {
			b.WriteString(", observed in this schedule")
		} else {
			b.WriteString(", inferred for another schedule")
		}
	}
	return b.String()
}

// buildProvenance assembles a Provenance for a newly reported triple.
// Locksets are cloned (copyLocks) because the caller's slices may live
// in task-owned scratch storage that is reused after the call.
// tree is consulted only through published immutable node fields.
func buildProvenance(tree dpst.Tree, patStep, interStep dpst.NodeID, patLocks, interLocks []uint64, observed bool) *Provenance {
	return &Provenance{
		PatternPath:      dpst.PathString(tree, patStep),
		InterleaverPath:  dpst.PathString(tree, interStep),
		PatternLocks:     copyLocks(patLocks),
		InterleaverLocks: copyLocks(interLocks),
		Observed:         observed,
	}
}
