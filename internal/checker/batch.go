package checker

import (
	"sync"
	"sync/atomic"

	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/obs"
	"github.com/taskpar/avd/internal/sched"
)

// The step-granular access coalescer ("batched dispatch", see DESIGN.md
// §4.2). Instead of walking the epoch/lockset/filter machinery on every
// instrumented access, each task buffers its accesses in a fixed-size
// batch and drains them through the optimized checker's dispatch core at
// step and lock boundaries. The per-access cost collapses to a buffer
// append plus a direct-mapped dedup probe; the task state (step node,
// lockset) is read once per batch window, and same-location repeats are
// deduplicated before they ever touch the shadow table.
//
// Correctness rests on two invariants:
//
//  1. Every access buffered in one batch window shares one step node and
//     one lockset. The window is closed — the batch flushed — on every
//     event that can change either: Spawn, Finish begin/end, Sync, task
//     end (step transitions) and Lock/Unlock (lockset transitions). The
//     live scheduler delivers these through sched.StructureObserver and
//     sched.Monitor; the trace replayer calls the BatchFlusher hooks at
//     the same points. Buffer overflow also flushes, without closing the
//     window (the regime is unchanged).
//
//  2. The deduplicator skips an access only when the per-access filter
//     of Access would have skipped it: an access of type T is dropped
//     only after an earlier access of type T in the same window ran (or
//     will run, earlier in this batch) as a repeat of its own type, and
//     a first write re-enables reads (and vice versa) exactly like the
//     filter word's bit-clearing rule. The soundness argument is
//     therefore the filter's own (DESIGN.md): every skipped access is a
//     re-run whose offers and checks have all already been made under an
//     identical (step, lockset) regime.
//
// Flushing at the boundary also preserves per-task dispatch order, and
// on a serial schedule every step's accesses are contiguous in the
// trace, so batched dispatch order equals trace order minus the skipped
// no-ops — reports are byte-identical to unbatched dispatch there (the
// batch differential suite asserts this, including provenance).

const (
	// batchCap is the per-task access buffer: big enough to cover a
	// typical step's burst, small enough that per-task state stays a few
	// KiB (buffers are pooled across tasks, so short-lived tasks do not
	// churn the allocator).
	batchCap = 256

	// The dedup table mirrors the per-access filter cache's geometry.
	batchDedupBits = 6
	batchDedupSize = 1 << batchDedupBits
	batchDedupMask = batchDedupSize - 1
)

// batchAccess is one buffered access: the resolved local entry plus the
// location and kind packed in one word.
type batchAccess struct {
	e    *localEntry
	locW uint64 // loc<<1 | write
}

// batchDedupEntry is one direct-mapped dedup slot. bits is the epoch-
// scoped redundancy word (same semantics as filterEntry.bits), seen the
// step-scoped "this step already dispatched a read/write here" pair that
// decides whether the next dispatch runs as a repeat of its type. Both
// are invalidated lazily by generation stamps so neither flushes nor
// task reuse ever sweep the table: egen advances on every lockset or
// step transition, sgen only on step transitions (a step's repeat facts
// survive its lock transitions, exactly as localEntry.readStep/
// writeStep do). The cached e pointer stays valid across pooled task
// reuse because the batchSpace keeps its localSpace for life — see
// reset.
type batchDedupEntry struct {
	loc  sched.Loc // 0 = empty (location IDs start at 1)
	e    *localEntry
	egen uint64
	sgen uint64
	bits uint8
	seen uint8
}

// seen bits of batchDedupEntry (distinct from filtR/filtW only in role).
const (
	seenR uint8 = 1 << iota
	seenW
)

// batchSpace is one task's coalescer state, kept in Task.Local. It owns
// the task's inner localSpace, so the optimized dispatch core sees
// exactly the per-task metadata it would under unbatched operation.
type batchSpace struct {
	sp   *localSpace
	ctr  *filterCounters
	hint uint64 // shard hint for the checker-wide striped counters

	n        int
	step     dpst.NodeID // captured at the window's first buffered access
	locks    []uint64
	captured bool

	egen, sgen           uint64
	pendHits, pendMisses int64

	buf   [batchCap]batchAccess
	dedup [batchDedupSize]batchDedupEntry
}

// reset prepares a pooled batchSpace for a new task. Task churn is O(1):
// the buffer needs no clearing (n gates it), the dedup table none (the
// task-end flush bumped egen and sgen, so every slot's seen/bits words
// are already generation-stale), and the localSpace is kept for life.
//
// Keeping the localSpace — the location table, entry arena, and lockset
// arenas — across tasks is the heart of the coalescer's task-churn
// amortization: recursive kernels spawn far more tasks than they touch
// distinct locations, and rebuilding loc → entry metadata per task was
// the dominant cost of checking them. Reuse is output-invisible because
// a local entry is self-invalidating across tasks: step node IDs are
// never reused, so dispatchEntry's readStep/writeStep == si tests see a
// previous task's entry exactly as a fresh one (the per-step locksets
// and ticks are only consulted under those same tests), the report
// buffer dedups by a global key the reporter re-dedups anyway, and the
// Par front cache is keyed by global node pairs.
func (bs *batchSpace) reset() {
	bs.n = 0
	bs.captured = false
	bs.pendHits, bs.pendMisses = 0, 0
}

// Batched wraps the optimized checker in the step-granular coalescer.
// It implements Checker, and its structure-observer callbacks are the
// flush points; constructing it without wiring those callbacks (see
// Options.Batch) would silently dispatch accesses under stale state.
type Batched struct {
	inner *Optimized
	hub   *obs.Hub
	// dedupOff disables the batch deduplicator (every buffered access
	// dispatches), mirroring Options.DisableAccessFilter for ablations
	// and differential tests of pure batching.
	dedupOff bool

	nextHint atomic.Uint64
	pool     sync.Pool

	flushes  obs.Striped
	accesses obs.Striped
}

// newBatched builds the batched dispatcher over a fresh optimized
// checker. The inner per-access filter stays off: the deduplicator
// subsumes it (with no warm-up window, which short-lived tasks never
// finished), and the inner Access path is not used while batching.
func newBatched(opts Options) *Batched {
	inner := newOptimized(opts)
	inner.noFilter = true
	return &Batched{inner: inner, hub: opts.Hub, dedupOff: opts.DisableAccessFilter}
}

// Reporter implements Checker.
func (b *Batched) Reporter() *Reporter { return b.inner.Reporter() }

// Stats implements Checker. The flush counts live in the hub when the
// session wired one (flush counts each drain into a single sink) and in
// the checker-local striped counters otherwise (hub-less replay).
func (b *Batched) Stats() Stats {
	st := b.inner.Stats()
	if b.hub != nil {
		st.BatchFlushes = b.hub.Count(obs.EventBatchFlush)
		st.BatchedAccesses = b.hub.Count(obs.EventBatchedAccess)
	} else {
		st.BatchFlushes = b.flushes.Load()
		st.BatchedAccesses = b.accesses.Load()
	}
	return st
}

// space returns the task's batch state, creating (or recycling) it on
// the task's first access.
func (b *Batched) space(slot *any) *batchSpace {
	if bs, ok := (*slot).(*batchSpace); ok {
		return bs
	}
	return b.newSpace(slot)
}

func (b *Batched) newSpace(slot *any) *batchSpace {
	bs, _ := b.pool.Get().(*batchSpace)
	if bs == nil {
		bs = &batchSpace{ctr: &filterCounters{}}
		b.inner.registerCounters(bs.ctr)
		bs.sp = b.inner.makeSpace()
		// The counter-shard hint is per-space, not per-task: a pooled
		// space keeps its shard, which spreads concurrent flushers just
		// as well without an atomic per task.
		bs.hint = b.nextHint.Add(1)
	} else {
		bs.reset()
	}
	*slot = bs
	return bs
}

// Access implements Checker: it buffers the access, deduplicating
// provable repeats, and flushes on overflow. ts is consulted for the
// task slot on every call but for the step node and lockset only once
// per batch window — the amortization this whole layer exists for.
func (b *Batched) Access(ts TaskState, loc sched.Loc, write bool) {
	slot := ts.LocalSlot()
	bs, ok := (*slot).(*batchSpace)
	if !ok {
		bs = b.newSpace(slot)
	}
	de := &bs.dedup[uint64(loc)&batchDedupMask]
	var ls *localEntry
	if de.loc == loc {
		if de.sgen != bs.sgen {
			de.sgen, de.egen = bs.sgen, bs.egen
			de.seen, de.bits = 0, 0
		} else if de.egen != bs.egen {
			de.egen = bs.egen
			de.bits = 0
		}
		ls = de.e
	} else {
		// Install (evicting any conflicting location: its facts are lost,
		// which only costs extra dispatches, never soundness).
		if ls = bs.sp.m.get(loc); ls == nil {
			ls = b.inner.newEntry(bs.sp, loc)
		}
		*de = batchDedupEntry{loc: loc, e: ls, egen: bs.egen, sgen: bs.sgen}
	}
	if !b.dedupOff {
		bit, sbit := filtR, seenR
		if write {
			bit, sbit = filtW, seenW
		}
		if de.bits&bit != 0 {
			bs.pendHits++
			return
		}
		// Maintain the redundancy word at buffer time: dispatch order
		// equals buffer order, so "the earlier same-type access will have
		// run as a repeat" is decidable here. A repeat of its own type
		// makes the type redundant for the rest of the epoch; a first
		// access of a type re-enables the other type (it newly forms an
		// RW/WR pattern), mirroring Access's filter-word update.
		if de.seen&sbit != 0 {
			de.bits |= bit
		} else {
			de.seen |= sbit
			if write {
				de.bits &^= filtR
			} else {
				de.bits &^= filtW
			}
		}
	}
	if !bs.captured {
		_, bs.step, _, bs.locks = ts.AccessState()
		bs.captured = true
	}
	bs.buf[bs.n] = batchAccess{e: ls, locW: uint64(loc)<<1 | b2u(write)}
	bs.n++
	if bs.n == batchCap {
		b.flush(bs, flushOverflow)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Flush kinds: what regime boundary closed the window.
const (
	// flushOverflow drains a full buffer mid-window: the (step, lockset)
	// regime is unchanged, so dedup facts stay valid.
	flushOverflow = iota
	// flushLocks is a lockset transition: epoch-scoped redundancy dies,
	// the step's repeat facts survive.
	flushLocks
	// flushStep is a step transition: everything dies.
	flushStep
)

// flush drains the buffer through the optimized dispatch core under the
// window's captured state, folds the pending dedup counters into the
// live-readable atomics, and advances the dedup generations.
func (b *Batched) flush(bs *batchSpace, kind int) {
	if bs.n > 0 {
		sp, si, locks := bs.sp, bs.step, bs.locks
		for i := 0; i < bs.n; i++ {
			a := &bs.buf[i]
			_, _, outcome := b.inner.dispatchEntry(sp, a.e, sched.Loc(a.locW>>1), si, locks, a.locW&1 != 0)
			if !b.dedupOff {
				switch outcome {
				case dispatchRan:
					bs.pendMisses++
				case dispatchSkipped:
					bs.pendHits++
				}
			}
		}
		if b.hub != nil {
			b.hub.Note(obs.EventBatchFlush, bs.hint)
			b.hub.NoteN(obs.EventBatchedAccess, bs.hint, int64(bs.n))
		} else {
			b.flushes.Add(bs.hint, 1)
			b.accesses.Add(bs.hint, int64(bs.n))
		}
		bs.n = 0
		bs.captured = false
	}
	switch kind {
	case flushLocks:
		bs.egen++
	case flushStep:
		bs.egen++
		bs.sgen++
	}
	if bs.pendHits != 0 {
		bs.ctr.hits.Add(bs.pendHits)
		bs.pendHits = 0
	}
	if bs.pendMisses != 0 {
		bs.ctr.misses.Add(bs.pendMisses)
		bs.pendMisses = 0
	}
}

// FlushStep drains ts's batch at a step transition. Exported for the
// trace replayer (the BatchFlusher hooks); the live scheduler reaches it
// through the StructureObserver callbacks below.
func (b *Batched) FlushStep(ts TaskState) {
	if bs, ok := (*ts.LocalSlot()).(*batchSpace); ok {
		b.flush(bs, flushStep)
	}
}

// FlushLockChange drains ts's batch at a lockset transition.
func (b *Batched) FlushLockChange(ts TaskState) {
	if bs, ok := (*ts.LocalSlot()).(*batchSpace); ok {
		b.flush(bs, flushLocks)
	}
}

// BatchFlusher is the hook interface an offline event source (the trace
// replayer) uses to close batch windows at the boundaries the live
// scheduler signals through sched.Monitor/StructureObserver. FlushStep
// must be called before any event that moves the task to a new step
// region, FlushLockChange before any lockset mutation — in particular
// before a release pops the lockset slice the window captured.
type BatchFlusher interface {
	FlushStep(ts TaskState)
	FlushLockChange(ts TaskState)
}

// OnAccess implements sched.Monitor.
func (b *Batched) OnAccess(t *sched.Task, loc sched.Loc, write bool) {
	b.Access(t, loc, write)
}

// OnAcquire implements sched.Monitor: Lock has already pushed the new
// token (appending never disturbs the window's captured lockset
// prefix), so the batch drains under the pre-acquisition regime here.
func (b *Batched) OnAcquire(t *sched.Task, _ *sched.Mutex) {
	b.FlushLockChange(t)
}

// OnRelease implements sched.Monitor. Unlock notifies before popping the
// token in place — the one mutation that would corrupt the captured
// lockset — so the flush must (and does) complete here, synchronously.
func (b *Batched) OnRelease(t *sched.Task, _ *sched.Mutex) {
	b.FlushLockChange(t)
}

// OnSpawn implements sched.StructureObserver: the parent has entered a
// new step region; its buffered accesses belong to the captured
// pre-spawn step and drain before the child can run.
func (b *Batched) OnSpawn(parent *sched.Task, _ int32) {
	b.FlushStep(parent)
}

// OnFinishBegin implements sched.StructureObserver.
func (b *Batched) OnFinishBegin(t *sched.Task) {
	b.FlushStep(t)
}

// OnFinishEnd implements sched.StructureObserver (Finish and Sync both
// signal it after the join).
func (b *Batched) OnFinishEnd(t *sched.Task) {
	b.FlushStep(t)
}

// OnTaskEnd implements sched.StructureObserver: the task's final flush.
// The drained batchSpace is recycled for future tasks, localSpace and
// all — the per-task metadata it holds needs no sweeping because it is
// step-stamped, and step IDs die with their task (see reset).
func (b *Batched) OnTaskEnd(t *sched.Task) {
	slot := t.LocalSlot()
	bs, ok := (*slot).(*batchSpace)
	if !ok {
		return
	}
	b.flush(bs, flushStep)
	*slot = nil
	b.pool.Put(bs)
}
