package checker

import (
	"sync"
	"sync/atomic"

	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/obs"
	"github.com/taskpar/avd/internal/sched"
)

// The step-granular access coalescer ("batched dispatch", see DESIGN.md
// §4.2). Instead of walking the epoch/lockset/filter machinery on every
// instrumented access, each task buffers its accesses in a fixed-size
// batch and drains them through the optimized checker's dispatch core at
// step and lock boundaries. The per-access cost collapses to a buffer
// append plus a direct-mapped dedup probe; the task state (step node,
// lockset) is read once per batch window, and same-location repeats are
// deduplicated before they ever touch the shadow table.
//
// Correctness rests on two invariants:
//
//  1. Every access buffered in one batch window shares one step node and
//     one lockset. The window is closed — the batch flushed — on every
//     event that can change either: Spawn, Finish begin/end, Sync, task
//     end (step transitions) and Lock/Unlock (lockset transitions). The
//     live scheduler delivers these through sched.StructureObserver and
//     sched.Monitor; the trace replayer calls the BatchFlusher hooks at
//     the same points. Buffer overflow also flushes, without closing the
//     window (the regime is unchanged).
//
//  2. The deduplicator skips an access only when the per-access filter
//     of Access would have skipped it: an access of type T is dropped
//     only after an earlier access of type T in the same window ran (or
//     will run, earlier in this batch) as a repeat of its own type, and
//     a first write re-enables reads (and vice versa) exactly like the
//     filter word's bit-clearing rule. The soundness argument is
//     therefore the filter's own (DESIGN.md): every skipped access is a
//     re-run whose offers and checks have all already been made under an
//     identical (step, lockset) regime.
//
//  3. The handle layer's window-elision cache (sched.Elide, installed
//     through the optional ElideHost interface) only ever holds facts
//     the deduplicator published through Mirror under the current
//     window generation, and the generation is advanced at exactly the
//     boundaries that invalidate the deduplicator's epoch-scoped
//     redundancy words (lock and step flushes; overflow flushes leave
//     both alive). An elided access is therefore one the deduplicator
//     itself would have skipped — DESIGN.md §4.3 gives the full
//     argument.
//
// Flushing at the boundary also preserves per-task dispatch order, and
// on a serial schedule every step's accesses are contiguous in the
// trace, so batched dispatch order equals trace order minus the skipped
// no-ops — reports are byte-identical to unbatched dispatch there (the
// batch differential suite asserts this, including provenance).

const (
	// batchCap is the per-task access buffer: big enough to cover a
	// typical step's burst, small enough that per-task state stays a few
	// KiB (buffers are pooled across tasks, so short-lived tasks do not
	// churn the allocator).
	batchCap = 256

	// The dedup table shares the handle layer's elision-cache geometry
	// (both direct-mapped by loc&mask with the same mask), which is what
	// makes the mirror invariant per-slot: slot i of the elision cache
	// only ever describes the location resident in dedup slot i, so a
	// dedup eviction and the colliding tenant's first publish overwrite
	// the same elision slot. See invariant 3 above and DESIGN.md §4.3.
	batchDedupBits = sched.ElideBits
	batchDedupSize = 1 << batchDedupBits
	batchDedupMask = batchDedupSize - 1

	// Adaptive retirement of the redundancy layer, the batch analog of
	// the per-access filter's self-retirement (opt.go): once the
	// current step has fronted batchRetireMin accesses, the redundancy
	// words and the elision cache are retired for the rest of the step
	// if they saved fewer than 1/batchRetireRatio of them. The scope is
	// the step because that is where access mixes are homogeneous — an
	// initialization loop streams, a merge pass repeats — and a long
	// streaming step must neither pay the maintenance forever nor
	// disable the layer for the repeat-heavy steps after it (the step
	// flush re-arms everything). The ratio is calibrated far lower than
	// the unbatched filterProbeRatio because the economics differ: a
	// front-end save here skips a full dispatchEntry walk (tens of ns)
	// while the per-access maintenance costs a few, so the layer pays
	// for itself down to a few-percent yield. The entry cache half of
	// the dedup table (loc → localEntry) is never retired: it replaces
	// a hash probe with one compare and stays profitable regardless of
	// repeat rate.
	batchRetireMin   = 1 << 12
	batchRetireRatio = 32
)

// batchAccess is one buffered access: the resolved local entry plus the
// location and kind packed in one word.
type batchAccess struct {
	e    *localEntry
	locW uint64 // loc<<1 | write
}

// batchDedupEntry is one direct-mapped dedup slot. bits is the epoch-
// scoped redundancy word (same semantics as filterEntry.bits), seen the
// step-scoped "this step already dispatched a read/write here" pair that
// decides whether the next dispatch runs as a repeat of its type. Both
// are invalidated lazily by generation stamps so neither flushes nor
// task reuse ever sweep the table: egen advances on every lockset or
// step transition, sgen only on step transitions (a step's repeat facts
// survive its lock transitions, exactly as localEntry.readStep/
// writeStep do). The cached e pointer stays valid across pooled task
// reuse because the batchSpace keeps its localSpace for life — see
// reset.
type batchDedupEntry struct {
	loc  sched.Loc // 0 = empty (location IDs start at 1)
	e    *localEntry
	egen uint64
	sgen uint64
	bits uint8
	seen uint8
}

// seen bits of batchDedupEntry (distinct from filtR/filtW only in role).
const (
	seenR uint8 = 1 << iota
	seenW
)

// batchSpace is one task's coalescer state, kept in Task.Local. It owns
// the task's inner localSpace, so the optimized dispatch core sees
// exactly the per-task metadata it would under unbatched operation.
type batchSpace struct {
	sp   *localSpace
	ctr  *filterCounters
	hint uint64 // shard hint for the checker-wide striped counters

	n        int
	step     dpst.NodeID // captured at the window's first buffered access
	locks    []uint64
	captured bool

	egen, sgen           uint64
	pendHits, pendMisses int64

	// Retirement bookkeeping (see batchRetireMin): probeTotal counts
	// accesses fronted by the current step, probeSaved the ones the
	// redundancy words or the elision cache answered. Step flushes (and
	// reset) clear all three — retirement never outlives the step that
	// earned it.
	retired              bool
	probeTotal           int64
	probeSaved           int64
	// nDirect counts retired-mode accesses dispatched around the buffer,
	// folded into the batched-access counter at the next flush.
	nDirect int64

	// elide is the window-saturation cache mirrored into the owning
	// task's handle layer (see the mirror invariant in Access); eslot is
	// where it was installed, nil when the task state is no ElideHost or
	// elision is off. Living inside the pooled batchSpace, the cache
	// costs no per-task allocation; Invalidate on reuse kills the
	// previous task's facts.
	elide sched.Elide
	eslot **sched.Elide

	buf   [batchCap]batchAccess
	dedup [batchDedupSize]batchDedupEntry
}

// reset prepares a pooled batchSpace for a new task. Task churn is O(1):
// the buffer needs no clearing (n gates it), the dedup table none (the
// task-end flush bumped egen and sgen, so every slot's seen/bits words
// are already generation-stale), and the localSpace is kept for life.
//
// Keeping the localSpace — the location table, entry arena, and lockset
// arenas — across tasks is the heart of the coalescer's task-churn
// amortization: recursive kernels spawn far more tasks than they touch
// distinct locations, and rebuilding loc → entry metadata per task was
// the dominant cost of checking them. Reuse is output-invisible because
// a local entry is self-invalidating across tasks: step node IDs are
// never reused, so dispatchEntry's readStep/writeStep == si tests see a
// previous task's entry exactly as a fresh one (the per-step locksets
// and ticks are only consulted under those same tests), the report
// buffer dedups by a global key the reporter re-dedups anyway, and the
// Par front cache is keyed by global node pairs.
func (bs *batchSpace) reset() {
	bs.n = 0
	bs.captured = false
	bs.pendHits, bs.pendMisses = 0, 0
	bs.retired = false
	bs.probeTotal, bs.probeSaved = 0, 0
	bs.nDirect = 0
}

// Batched wraps the optimized checker in the step-granular coalescer.
// It implements Checker, and its structure-observer callbacks are the
// flush points; constructing it without wiring those callbacks (see
// Options.Batch) would silently dispatch accesses under stale state.
type Batched struct {
	inner *Optimized
	hub   *obs.Hub
	// dedupOff disables the batch deduplicator (every buffered access
	// dispatches), mirroring Options.DisableAccessFilter for ablations
	// and differential tests of pure batching.
	dedupOff bool
	// elideOff keeps the window-saturation cache out of tasks: set by
	// Options.DisableWindowElision, and implied by dedupOff (with the
	// deduplicator off no redundancy word ever saturates, so the cache
	// could never hit — installing it would only cost the probe).
	elideOff bool

	nextHint atomic.Uint64
	pool     sync.Pool

	flushes  obs.Striped
	accesses obs.Striped
	elisions obs.Striped
}

// newBatched builds the batched dispatcher over a fresh optimized
// checker. The inner per-access filter stays off: the deduplicator
// subsumes it (with no warm-up window, which short-lived tasks never
// finished), and the inner Access path is not used while batching.
func newBatched(opts Options) *Batched {
	inner := newOptimized(opts)
	inner.noFilter = true
	return &Batched{
		inner:    inner,
		hub:      opts.Hub,
		dedupOff: opts.DisableAccessFilter,
		elideOff: opts.DisableWindowElision || opts.DisableAccessFilter,
	}
}

// Reporter implements Checker.
func (b *Batched) Reporter() *Reporter { return b.inner.Reporter() }

// Stats implements Checker. The flush counts live in the hub when the
// session wired one (flush counts each drain into a single sink) and in
// the checker-local striped counters otherwise (hub-less replay).
func (b *Batched) Stats() Stats {
	st := b.inner.Stats()
	if b.hub != nil {
		st.BatchFlushes = b.hub.Count(obs.EventBatchFlush)
		st.BatchedAccesses = b.hub.Count(obs.EventBatchedAccess)
		st.WindowElisions = b.hub.Count(obs.EventWindowElision)
	} else {
		st.BatchFlushes = b.flushes.Load()
		st.BatchedAccesses = b.accesses.Load()
		st.WindowElisions = b.elisions.Load()
	}
	return st
}

// newSpace creates (or recycles) the task's batch state on the task's
// first access. This is also where the window-elision front end is
// wired: when ts's handle layer hosts an elision cache and elision is
// on, the space's cache — its previous owner's facts freshly
// invalidated — is installed into the task, and from then on saturated
// repeats never reach Access at all.
func (b *Batched) newSpace(ts TaskState, slot *any) *batchSpace {
	bs, _ := b.pool.Get().(*batchSpace)
	if bs == nil {
		bs = &batchSpace{ctr: &filterCounters{}}
		b.inner.registerCounters(bs.ctr)
		bs.sp = b.inner.makeSpace()
		// The counter-shard hint is per-space, not per-task: a pooled
		// space keeps its shard, which spreads concurrent flushers just
		// as well without an atomic per task.
		bs.hint = b.nextHint.Add(1)
	} else {
		bs.reset()
	}
	bs.eslot = nil
	if !b.elideOff {
		if host, ok := ts.(ElideHost); ok {
			bs.elide.Invalidate()
			bs.eslot = host.ElideSlot()
			*bs.eslot = &bs.elide
		}
	}
	*slot = bs
	return bs
}

// Access implements Checker: it buffers the access, deduplicating
// provable repeats, and flushes on overflow. ts is consulted for the
// task slot on every call but for the step node and lockset only once
// per batch window — the amortization this whole layer exists for.
func (b *Batched) Access(ts TaskState, loc sched.Loc, write bool) {
	slot := ts.LocalSlot()
	bs, ok := (*slot).(*batchSpace)
	if !ok {
		bs = b.newSpace(ts, slot)
	}
	de := &bs.dedup[uint64(loc)&batchDedupMask]
	var ls *localEntry
	var fresh bool
	if de.loc == loc {
		if de.sgen != bs.sgen {
			de.sgen, de.egen = bs.sgen, bs.egen
			de.seen, de.bits = 0, 0
		} else if de.egen != bs.egen {
			de.egen = bs.egen
			de.bits = 0
		}
		ls = de.e
	} else {
		// Install (evicting any conflicting location: its facts are lost,
		// which only costs extra dispatches, never soundness).
		if ls = bs.sp.m.get(loc); ls == nil {
			ls = b.inner.newEntry(bs.sp, loc)
		}
		*de = batchDedupEntry{loc: loc, e: ls, egen: bs.egen, sgen: bs.sgen}
		fresh = true
	}
	if bs.retired {
		// The current step retired the redundancy layer: it is streaming,
		// so nearly every access would buffer only to dispatch at the next
		// drain anyway. Dispatch it now, around the buffer — the buffer is
		// empty (retirement is decided during a drain) and stays empty
		// until the step flush re-arms buffering, so dispatch order is
		// preserved; a one-access window is just the smallest legal batch.
		if !bs.captured {
			_, bs.step, _, bs.locks = ts.AccessState()
			bs.captured = true
		}
		b.inner.dispatchEntry(bs.sp, ls, loc, bs.step, bs.locks, write)
		bs.nDirect++
		return
	}
	if !b.dedupOff {
		bit, sbit := filtR, seenR
		if write {
			bit, sbit = filtW, seenW
		}
		if de.bits&bit != 0 {
			bs.pendHits++
			// Mirror invariant, re-priming arm: the handle layer's elision
			// cache holds a (loc, gen, bits) fact only when the dedup slot
			// holds the same fact under the current window. A dedup hit
			// that still reached us means the elision entry was lost (a
			// colliding location overwrote it) — restore it so further
			// repeats stop in the handle layer instead.
			if bs.eslot != nil {
				bs.elide.Mirror(loc, de.bits)
			}
			return
		}
		// Maintain the redundancy word at buffer time: dispatch order
		// equals buffer order, so "the earlier same-type access will have
		// run as a repeat" is decidable here. A repeat of its own type
		// makes the type redundant for the rest of the epoch; a first
		// access of a type re-enables the other type (it newly forms an
		// RW/WR pattern), mirroring Access's filter-word update.
		//
		// Mirror invariant, tracking arm: publish the word whenever it
		// changes — downward moves included, because a first write
		// re-enables reads (and vice versa) and a stale saturated bit in
		// the handle layer would elide an access that newly forms an
		// RW/WR pattern. An unchanged word needs no publish, with one
		// exception: a fresh (re)install publishes its zero word so that
		// a fact the evicted-and-returned location saturated earlier in
		// this window (still resident in the cache, whose slot the
		// colliding tenant never overwrote) cannot outlive the re-enabling
		// access that just reset the slot. Mirror's resident-only guard
		// makes that publish free for the common first touch.
		if de.seen&sbit != 0 {
			de.bits |= bit // always a change: bit was clear or we'd have hit
			if bs.eslot != nil {
				bs.elide.Mirror(loc, de.bits)
			}
		} else {
			de.seen |= sbit
			old := de.bits
			if write {
				de.bits &^= filtR
			} else {
				de.bits &^= filtW
			}
			if bs.eslot != nil && (de.bits != old || fresh) {
				bs.elide.Mirror(loc, de.bits)
			}
		}
	}
	if !bs.captured {
		_, bs.step, _, bs.locks = ts.AccessState()
		bs.captured = true
	}
	bs.buf[bs.n] = batchAccess{e: ls, locW: uint64(loc)<<1 | b2u(write)}
	bs.n++
	if bs.n == batchCap {
		b.flush(bs, flushOverflow)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Flush kinds: what regime boundary closed the window.
const (
	// flushOverflow drains a full buffer mid-window: the (step, lockset)
	// regime is unchanged, so dedup facts stay valid.
	flushOverflow = iota
	// flushLocks is a lockset transition: epoch-scoped redundancy dies,
	// the step's repeat facts survive.
	flushLocks
	// flushStep is a step transition: everything dies.
	flushStep
)

// flush drains the buffer through the optimized dispatch core under the
// window's captured state, folds the pending dedup counters into the
// live-readable atomics, and advances the dedup generations.
func (b *Batched) flush(bs *batchSpace, kind int) {
	// pendHits at entry are the front-end dedup hits of the closing
	// window (the dispatch loop below adds fast-path skips to the same
	// counter, which belong to the inner checker, not the front end);
	// drained is what actually dispatched. Both feed the retirement
	// yield accounting after the drain.
	frontHits := bs.pendHits
	drained := int64(bs.n)
	if bs.n > 0 {
		sp, si, locks := bs.sp, bs.step, bs.locks
		for i := 0; i < bs.n; i++ {
			a := &bs.buf[i]
			_, _, outcome := b.inner.dispatchEntry(sp, a.e, sched.Loc(a.locW>>1), si, locks, a.locW&1 != 0)
			if !b.dedupOff && !bs.retired {
				switch outcome {
				case dispatchRan:
					bs.pendMisses++
				case dispatchSkipped:
					bs.pendHits++
				}
			}
		}
		if b.hub != nil {
			b.hub.Note(obs.EventBatchFlush, bs.hint)
			b.hub.NoteN(obs.EventBatchedAccess, bs.hint, int64(bs.n))
		} else {
			b.flushes.Add(bs.hint, 1)
			b.accesses.Add(bs.hint, int64(bs.n))
		}
		bs.n = 0
	}
	// The captured (step, lockset) regime is re-read on the next access:
	// boundary flushes change it, and a retired step's direct dispatches
	// rely on it without ever filling the buffer.
	bs.captured = false
	if bs.nDirect != 0 {
		if b.hub != nil {
			b.hub.NoteN(obs.EventBatchedAccess, bs.hint, bs.nDirect)
		} else {
			b.accesses.Add(bs.hint, bs.nDirect)
		}
		bs.nDirect = 0
	}
	switch kind {
	case flushLocks:
		bs.egen++
		// The handle layer's cache mirrors epoch-scoped redundancy words,
		// so it dies exactly when they do: on lock and step boundaries,
		// never on overflow (an overflow leaves the regime — and thus
		// every mirrored fact — intact, which is what lets elision keep
		// working through the long windows it exists for).
		bs.elide.Invalidate()
	case flushStep:
		bs.egen++
		bs.sgen++
		bs.elide.Invalidate()
	}
	elided := int64(bs.elide.TakeHits())
	if elided != 0 {
		if b.hub != nil {
			b.hub.NoteN(obs.EventWindowElision, bs.hint, elided)
		} else {
			b.elisions.Add(bs.hint, elided)
		}
	}
	if !b.dedupOff {
		if !bs.retired {
			bs.probeTotal += drained + frontHits + elided
			bs.probeSaved += frontHits + elided
			if bs.probeTotal >= batchRetireMin && bs.probeSaved < bs.probeTotal/batchRetireRatio {
				// The step this space is fronting is streaming: the
				// redundancy words and the elision cache cost every access
				// and almost never pay. Retire both for the rest of the
				// step; uninstalling the elision cache from the handle
				// layer stops even its probe (bs.eslot keeps the slot so
				// the step flush can re-arm it).
				bs.retired = true
				if bs.eslot != nil {
					*bs.eslot = nil
				}
			}
		}
		if kind == flushStep {
			// A new step is a new mix: re-arm the layer and restart the
			// yield measurement.
			if bs.retired {
				bs.retired = false
				if bs.eslot != nil {
					*bs.eslot = &bs.elide
				}
			}
			bs.probeTotal, bs.probeSaved = 0, 0
		}
	}
	if bs.pendHits != 0 {
		bs.ctr.hits.Add(bs.pendHits)
		bs.pendHits = 0
	}
	if bs.pendMisses != 0 {
		bs.ctr.misses.Add(bs.pendMisses)
		bs.pendMisses = 0
	}
}

// FlushStep drains ts's batch at a step transition. Exported for the
// trace replayer (the BatchFlusher hooks); the live scheduler reaches it
// through the StructureObserver callbacks below.
func (b *Batched) FlushStep(ts TaskState) {
	if bs, ok := (*ts.LocalSlot()).(*batchSpace); ok {
		b.flush(bs, flushStep)
	}
}

// FlushLockChange drains ts's batch at a lockset transition.
func (b *Batched) FlushLockChange(ts TaskState) {
	if bs, ok := (*ts.LocalSlot()).(*batchSpace); ok {
		b.flush(bs, flushLocks)
	}
}

// BatchFlusher is the hook interface an offline event source (the trace
// replayer) uses to close batch windows at the boundaries the live
// scheduler signals through sched.Monitor/StructureObserver. FlushStep
// must be called before any event that moves the task to a new step
// region, FlushLockChange before any lockset mutation — in particular
// before a release pops the lockset slice the window captured.
type BatchFlusher interface {
	FlushStep(ts TaskState)
	FlushLockChange(ts TaskState)
}

// OnAccess implements sched.Monitor.
func (b *Batched) OnAccess(t *sched.Task, loc sched.Loc, write bool) {
	b.Access(t, loc, write)
}

// OnAcquire implements sched.Monitor: Lock has already pushed the new
// token (appending never disturbs the window's captured lockset
// prefix), so the batch drains under the pre-acquisition regime here.
func (b *Batched) OnAcquire(t *sched.Task, _ *sched.Mutex) {
	b.FlushLockChange(t)
}

// OnRelease implements sched.Monitor. Unlock notifies before popping the
// token in place — the one mutation that would corrupt the captured
// lockset — so the flush must (and does) complete here, synchronously.
func (b *Batched) OnRelease(t *sched.Task, _ *sched.Mutex) {
	b.FlushLockChange(t)
}

// OnSpawn implements sched.StructureObserver: the parent has entered a
// new step region; its buffered accesses belong to the captured
// pre-spawn step and drain before the child can run.
func (b *Batched) OnSpawn(parent *sched.Task, _ int32) {
	b.FlushStep(parent)
}

// OnFinishBegin implements sched.StructureObserver.
func (b *Batched) OnFinishBegin(t *sched.Task) {
	b.FlushStep(t)
}

// OnFinishEnd implements sched.StructureObserver (Finish and Sync both
// signal it after the join).
func (b *Batched) OnFinishEnd(t *sched.Task) {
	b.FlushStep(t)
}

// OnTaskEnd implements sched.StructureObserver: the task's final flush.
// The drained batchSpace is recycled for future tasks, localSpace and
// all — the per-task metadata it holds needs no sweeping because it is
// step-stamped, and step IDs die with their task (see reset).
func (b *Batched) OnTaskEnd(t *sched.Task) {
	slot := t.LocalSlot()
	bs, ok := (*slot).(*batchSpace)
	if !ok {
		return
	}
	b.flush(bs, flushStep)
	if bs.eslot != nil {
		*bs.eslot = nil
		bs.eslot = nil
	}
	*slot = nil
	b.pool.Put(bs)
}
