package checker_test

import (
	"testing"
	"testing/quick"

	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
)

func accessType(b bool) checker.AccessType {
	if b {
		return checker.Write
	}
	return checker.Read
}

// TestQuickSerializabilityDefinition: the Figure 4 table is equivalent
// to the first-principles definition — the triple is serializable iff
// the interleaver A2 commutes past A1 or past A3 (i.e. fails to conflict
// with one of them; a conflict needs at least one write).
func TestQuickSerializabilityDefinition(t *testing.T) {
	f := func(w1, w2, w3 bool) bool {
		a1, a2, a3 := accessType(w1), accessType(w2), accessType(w3)
		conflicts := func(x, y checker.AccessType) bool {
			return x == checker.Write || y == checker.Write
		}
		serializable := !conflicts(a1, a2) || !conflicts(a2, a3)
		return checker.Unserializable(a1, a2, a3) == !serializable
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSerializabilityMirror: reversing the pattern (A3, A2, A1)
// never changes the verdict — reading the region backwards commutes the
// same conflicts.
func TestQuickSerializabilityMirror(t *testing.T) {
	f := func(w1, w2, w3 bool) bool {
		a1, a2, a3 := accessType(w1), accessType(w2), accessType(w3)
		return checker.Unserializable(a1, a2, a3) == checker.Unserializable(a3, a2, a1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickReporterDedup: for any multiset of violations, Count equals
// the number of distinct values and Violations is deterministic.
func TestQuickReporterDedup(t *testing.T) {
	f := func(locs []uint8, kinds []uint8) bool {
		r := checker.NewReporter(0)
		distinct := map[checker.Violation]bool{}
		n := len(locs)
		if len(kinds) < n {
			n = len(kinds)
		}
		for i := 0; i < n; i++ {
			v := checker.Violation{
				Loc:             sched.Loc(locs[i] % 4),
				PatternStep:     dpst.NodeID(kinds[i] % 3),
				InterleaverStep: dpst.NodeID(kinds[i] % 5),
				First:           accessType(kinds[i]&1 != 0),
				Middle:          accessType(kinds[i]&2 != 0),
				Last:            accessType(kinds[i]&4 != 0),
			}
			r.Report(v)
			r.Report(v) // duplicates never count
			distinct[v] = true
		}
		return r.Count() == int64(len(distinct)) && len(r.Violations()) == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickLockTokens: MakeLockToken/LockIdentity round-trip, and
// distinct acquisitions of one lock produce distinct tokens with the
// same identity.
func TestQuickLockTokens(t *testing.T) {
	f := func(id uint32, acq1, acq2 uint64) bool {
		id %= 1 << 24
		acq1 %= 1 << 40
		acq2 %= 1 << 40
		t1 := sched.MakeLockToken(id, acq1)
		t2 := sched.MakeLockToken(id, acq2)
		if sched.LockIdentity(t1) != uint64(id) || sched.LockIdentity(t2) != uint64(id) {
			return false
		}
		return (acq1 == acq2) == (t1 == t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
