package checker

import (
	"testing"

	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
)

func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b, want []uint64
	}{
		{nil, nil, nil},
		{[]uint64{1, 2}, nil, nil},
		{[]uint64{1, 2}, []uint64{3}, nil},
		{[]uint64{1, 2}, []uint64{2, 3}, []uint64{2}},
		{[]uint64{1, 2, 3}, []uint64{3, 1}, []uint64{1, 3}},
	}
	for _, c := range cases {
		got := intersect(c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

func TestIdentityDisjoint(t *testing.T) {
	l1a := sched.MakeLockToken(1, 10)
	l1b := sched.MakeLockToken(1, 11)
	l2 := sched.MakeLockToken(2, 12)
	if !identityDisjoint(nil, []uint64{l1a}) {
		t.Error("empty common lockset must be disjoint from anything")
	}
	if identityDisjoint([]uint64{l1a}, []uint64{l1b}) {
		t.Error("different acquisitions of the same mutex share an identity")
	}
	if !identityDisjoint([]uint64{l1a}, []uint64{l2}) {
		t.Error("different mutexes must be identity-disjoint")
	}
}

// TestUpdateSingleSlots verifies the Figure 8 single-entry update rule:
// a serial entry is replaced, a parallel one is kept and the second slot
// used, and when both slots hold parallel steps the access is dropped.
func TestUpdateSingleSlots(t *testing.T) {
	tree := dpst.NewArrayTree()
	root := tree.NewNode(dpst.None, dpst.Finish, 0)
	mkPar := func() dpst.NodeID { // steps under distinct asyncs: mutually parallel
		a := tree.NewNode(root, dpst.Async, 0)
		return tree.NewNode(a, dpst.Step, 0)
	}
	p1, p2, p3 := mkPar(), mkPar(), mkPar()
	c := newOptimized(Options{Query: dpst.NewQuery(tree, true), Reporter: NewReporter(0)})

	cell := &optCell{}
	initOptCell(cell)
	sp := &localSpace{par: map[uint64]int8{}}
	sp.m.init()
	c.updateSingle(sp, cell, sR1, sR2, p1, nil)
	if cell.single[sR1] != p1 || cell.single[sR2] != dpst.None {
		t.Fatalf("first update: a=%d b=%d", cell.single[sR1], cell.single[sR2])
	}
	c.updateSingle(sp, cell, sR1, sR2, p2, nil)
	if cell.single[sR1] != p1 || cell.single[sR2] != p2 {
		t.Fatalf("parallel update must fill slot b: a=%d b=%d", cell.single[sR1], cell.single[sR2])
	}
	c.updateSingle(sp, cell, sR1, sR2, p3, nil)
	if cell.single[sR1] != p1 || cell.single[sR2] != p2 {
		t.Fatalf("third parallel step must be dropped: a=%d b=%d", cell.single[sR1], cell.single[sR2])
	}
	// A serial successor replaces: a step in the same chain as p1.
	serial := tree.NewNode(tree.Parent(p1), dpst.Step, 0) // sibling step under same async: serial
	c.updateSingle(sp, cell, sR1, sR2, serial, nil)
	if cell.single[sR1] != serial {
		t.Fatalf("serial step must replace slot a: a=%d", cell.single[sR1])
	}
}

// TestShadowCellIdentity: repeated lookups return the same cell and the
// location count grows once per distinct location.
func TestShadowCellIdentity(t *testing.T) {
	var s shadow[optCell]
	s.initC = initOptCell
	c1 := s.cell(5)
	c2 := s.cell(5)
	c3 := s.cell(6)
	if c1 != c2 {
		t.Error("same location must map to the same cell")
	}
	if c1 == c3 {
		t.Error("distinct locations must map to distinct cells")
	}
	if got := s.count.Load(); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	if c1.single[sR1] != dpst.None || c1.pat[pWW][0] != dpst.None || c1.pat[pWW][1] != dpst.None {
		t.Error("fresh optimized cell must have all entries empty (None)")
	}
}

// TestShadowDefaultConstructor covers the new(C) fallback used by the
// basic checker's cells.
func TestShadowDefaultConstructor(t *testing.T) {
	var s shadow[basicCell]
	c := s.cell(1)
	if c == nil || len(c.hist) != 0 {
		t.Error("default-constructed cell must be empty")
	}
}
