package checker

import (
	"fmt"
	"sort"
	"sync"

	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
)

// Violation describes one detected atomicity violation: an access triple
// (First, Middle, Last) where First and Last are performed by PatternStep
// and Middle by the logically parallel InterleaverStep, and the types form
// an unserializable pattern. The violation may or may not manifest in the
// observed schedule; it is feasible in some schedule of the given input.
type Violation struct {
	Loc             sched.Loc
	PatternStep     dpst.NodeID
	InterleaverStep dpst.NodeID
	First           AccessType
	Middle          AccessType
	Last            AccessType
	PatternTask     int32
	InterleaverTask int32
}

// Kind returns the triple pattern, e.g. "W-R-W".
func (v Violation) Kind() string {
	return v.First.String() + "-" + v.Middle.String() + "-" + v.Last.String()
}

// String renders a one-line diagnostic.
func (v Violation) String() string {
	return fmt.Sprintf("atomicity violation at loc %d: %s by step %d (task %d) with interleaving %s by parallel step %d (task %d)",
		v.Loc, v.First.String()+"…"+v.Last.String(), v.PatternStep, v.PatternTask,
		v.Middle, v.InterleaverStep, v.InterleaverTask)
}

// Reporter collects violations, deduplicating identical triples. It is
// safe for concurrent use.
type Reporter struct {
	mu    sync.Mutex
	seen  map[Violation]struct{}
	list  []Violation
	limit int
	total int64
}

// NewReporter creates a reporter retaining at most limit distinct
// violations in detail (0 means a generous default of 1<<16).
func NewReporter(limit int) *Reporter {
	if limit <= 0 {
		limit = 1 << 16
	}
	return &Reporter{seen: make(map[Violation]struct{}), limit: limit}
}

// Report records a violation, ignoring duplicates.
func (r *Reporter) Report(v Violation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.seen[v]; dup {
		return
	}
	r.total++
	if len(r.seen) < r.limit {
		r.seen[v] = struct{}{}
		r.list = append(r.list, v)
	}
}

// Violations returns the distinct recorded violations, ordered by
// location then steps for determinism.
func (r *Reporter) Violations() []Violation {
	r.mu.Lock()
	out := append([]Violation(nil), r.list...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Loc != b.Loc {
			return a.Loc < b.Loc
		}
		if a.PatternStep != b.PatternStep {
			return a.PatternStep < b.PatternStep
		}
		if a.InterleaverStep != b.InterleaverStep {
			return a.InterleaverStep < b.InterleaverStep
		}
		return a.Kind() < b.Kind()
	})
	return out
}

// Count returns the number of distinct violations reported, including
// any beyond the retention limit.
func (r *Reporter) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Empty reports whether nothing was reported.
func (r *Reporter) Empty() bool { return r.Count() == 0 }
