package checker

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
)

// Violation describes one detected atomicity violation: an access triple
// (First, Middle, Last) where First and Last are performed by PatternStep
// and Middle by the logically parallel InterleaverStep, and the types form
// an unserializable pattern. The violation may or may not manifest in the
// observed schedule; it is feasible in some schedule of the given input.
type Violation struct {
	Loc             sched.Loc
	PatternStep     dpst.NodeID
	InterleaverStep dpst.NodeID
	First           AccessType
	Middle          AccessType
	Last            AccessType
	PatternTask     int32
	InterleaverTask int32

	// Prov carries the violation's provenance — DPST paths, locksets,
	// and observed/inferred classification — when the detecting checker
	// captured it. Kept behind a pointer so Violation stays comparable
	// and the triple identity (the key fields above) is unaffected.
	Prov *Provenance
}

// violationKey is the dedup identity of a violation: the triple fields
// only, never the provenance, so the first capture of a triple wins and
// later re-detections (possibly with different provenance) are
// duplicates.
type violationKey struct {
	Loc             sched.Loc
	PatternStep     dpst.NodeID
	InterleaverStep dpst.NodeID
	First           AccessType
	Middle          AccessType
	Last            AccessType
}

func (v Violation) key() violationKey {
	return violationKey{v.Loc, v.PatternStep, v.InterleaverStep, v.First, v.Middle, v.Last}
}

// Kind returns the triple pattern, e.g. "W-R-W".
func (v Violation) Kind() string {
	return v.First.String() + "-" + v.Middle.String() + "-" + v.Last.String()
}

// PatternName returns the compact unserializable-pattern name from the
// paper's Figure 4 taxonomy: one of RWR, RWW, WRW, WWR, WWW.
func (v Violation) PatternName() string {
	return v.First.String() + v.Middle.String() + v.Last.String()
}

// String renders a one-line diagnostic.
func (v Violation) String() string {
	return fmt.Sprintf("atomicity violation at loc %d: %s by step %d (task %d) with interleaving %s by parallel step %d (task %d)",
		v.Loc, v.First.String()+"…"+v.Last.String(), v.PatternStep, v.PatternTask,
		v.Middle, v.InterleaverStep, v.InterleaverTask)
}

// Reporter collects violations, deduplicating identical triples. It is
// safe for concurrent use.
//
// Recording is buffered: each reporting task obtains its own
// reportBuffer (via buffer) whose report path deduplicates locally under
// a private, uncontended mutex, so the instrumented hot path never
// serializes on Reporter-wide state. Buffers are merged — cross-buffer
// deduplicated, capped at the retention limit — whenever results are
// read with Violations or Count. The plain Report method remains for
// unbuffered callers (the basic checker, tests) and writes through an
// internal buffer of its own.
type Reporter struct {
	mu    sync.Mutex
	bufs  []*reportBuffer
	own   *reportBuffer // buffer backing direct Report calls
	limit int

	// max caps the locally-new violations admitted session-wide (0 =
	// uncapped); once reached, further new violations only bump dropped.
	// The admission counter is over locally-new triples, so with many
	// concurrent buffers the cap is enforced conservatively: cross-buffer
	// duplicates may consume admissions.
	max      int64
	admitted atomic.Int64
	dropped  atomic.Int64

	// onViolation, when set, is invoked outside the buffer lock for every
	// locally-new admitted violation; onDrop for every violation refused
	// by the MaxViolations cap. Both must be installed before reporting
	// begins. A violation reported concurrently by several tasks may
	// invoke onViolation once per reporting task (the same conservative
	// granularity as the admission counter).
	onViolation func(Violation)
	onDrop      func()
}

// SetObserver installs the new-violation callback. The callback runs on
// the reporting task's goroutine with no reporter locks held; it must
// not call back into the checker or the owning session.
func (r *Reporter) SetObserver(fn func(Violation)) { r.onViolation = fn }

// SetDropObserver installs the violation-drop callback, invoked each
// time the MaxViolations cap refuses a violation.
func (r *Reporter) SetDropObserver(fn func()) { r.onDrop = fn }

// reportBuffer is one producer's private dedup buffer. The mutex is
// owned by a single reporting task in practice; it exists so merges can
// run concurrently with late reports.
type reportBuffer struct {
	mu    sync.Mutex
	rep   *Reporter
	seen  map[violationKey]struct{}
	list  []Violation
	extra int64 // reports beyond the local retention cap (not deduped)
	limit int
}

// isDup reports whether the triple is already recorded locally. The hot
// path probes before building provenance: a buffer is owned by one
// reporting task, so a false answer stays false until that same task
// reports (merges only read), and the probe allocates nothing.
func (b *reportBuffer) isDup(k violationKey) bool {
	b.mu.Lock()
	_, dup := b.seen[k]
	b.mu.Unlock()
	return dup
}

// report records a violation in the buffer, ignoring local duplicates.
// Observer callbacks fire after the buffer lock is released.
func (b *reportBuffer) report(v Violation) {
	admitted := false
	b.mu.Lock()
	k := v.key()
	if _, dup := b.seen[k]; !dup {
		if max := b.rep.max; max > 0 && b.rep.admitted.Add(1) > max {
			b.rep.dropped.Add(1)
			b.mu.Unlock()
			if fn := b.rep.onDrop; fn != nil {
				fn()
			}
			return
		}
		admitted = true
		if len(b.seen) < b.limit {
			b.seen[k] = struct{}{}
			b.list = append(b.list, v)
		} else {
			b.extra++
		}
	}
	b.mu.Unlock()
	if admitted {
		if fn := b.rep.onViolation; fn != nil {
			fn(v)
		}
	}
}

// NewReporter creates a reporter retaining at most limit distinct
// violations in detail (0 means a generous default of 1<<16).
func NewReporter(limit int) *Reporter {
	if limit <= 0 {
		limit = 1 << 16
	}
	return &Reporter{limit: limit}
}

// SetMaxViolations caps how many distinct violations the reporter admits
// (0 removes the cap). Call before reporting begins.
func (r *Reporter) SetMaxViolations(max int64) { r.max = max }

// Dropped returns the number of violations refused by the MaxViolations
// cap.
func (r *Reporter) Dropped() int64 { return r.dropped.Load() }

// Saturated reports whether the MaxViolations cap has dropped anything.
func (r *Reporter) Saturated() bool { return r.dropped.Load() > 0 }

// buffer registers and returns a fresh private buffer. Called once per
// reporting task, on its first violation.
func (r *Reporter) buffer() *reportBuffer {
	b := &reportBuffer{rep: r, seen: make(map[violationKey]struct{}), limit: r.limit}
	r.mu.Lock()
	r.bufs = append(r.bufs, b)
	r.mu.Unlock()
	return b
}

// Report records a violation, ignoring duplicates.
func (r *Reporter) Report(v Violation) {
	r.mu.Lock()
	if r.own == nil {
		b := &reportBuffer{rep: r, seen: make(map[violationKey]struct{}), limit: r.limit}
		r.bufs = append(r.bufs, b)
		r.own = b
	}
	b := r.own
	r.mu.Unlock()
	b.report(v)
}

// merge folds every buffer into one deduplicated view: the retained list
// (capped at the limit, first-merged wins) and the distinct total,
// including an estimate for reports beyond per-buffer retention.
func (r *Reporter) merge() ([]Violation, int64) {
	r.mu.Lock()
	bufs := append([]*reportBuffer(nil), r.bufs...)
	r.mu.Unlock()
	seen := make(map[violationKey]struct{})
	var list []Violation
	var extra int64
	for _, b := range bufs {
		b.mu.Lock()
		for _, v := range b.list {
			k := v.key()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			if len(list) < r.limit {
				list = append(list, v)
			}
		}
		extra += b.extra
		b.mu.Unlock()
	}
	return list, int64(len(seen)) + extra
}

// Violations returns the distinct recorded violations, ordered by
// location then steps for determinism.
func (r *Reporter) Violations() []Violation {
	out, _ := r.merge()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Loc != b.Loc {
			return a.Loc < b.Loc
		}
		if a.PatternStep != b.PatternStep {
			return a.PatternStep < b.PatternStep
		}
		if a.InterleaverStep != b.InterleaverStep {
			return a.InterleaverStep < b.InterleaverStep
		}
		return a.Kind() < b.Kind()
	})
	return out
}

// Count returns the number of distinct violations reported, including
// any beyond the retention limit.
func (r *Reporter) Count() int64 {
	_, total := r.merge()
	return total
}

// Empty reports whether nothing was reported.
func (r *Reporter) Empty() bool { return r.Count() == 0 }
