package checker_test

import (
	"testing"

	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
)

// fakeTask is a synthetic TaskState for driving checkers deterministically.
type fakeTask struct {
	step  dpst.NodeID
	locks []uint64
	local any
}

func (f *fakeTask) StepNode() dpst.NodeID { return f.step }
func (f *fakeTask) Lockset() []uint64     { return f.locks }
func (f *fakeTask) LocalSlot() *any       { return &f.local }

// FilterEpoch hashes the current step and lockset tokens: tests mutate
// the fake's fields directly between accesses, and in the checker's
// model an identical (step, tokens) pair IS the same epoch.
func (f *fakeTask) FilterEpoch() uint64 {
	h := uint64(14695981039346656037)
	for _, l := range f.locks {
		h = (h ^ l) * 1099511628211
	}
	return h ^ uint64(f.step)<<1
}

func (f *fakeTask) AccessState() (*any, dpst.NodeID, uint64, []uint64) {
	return &f.local, f.step, f.FilterEpoch(), f.locks
}

// figure2 rebuilds the DPST of the paper's running example.
func figure2() (tree dpst.Tree, s11, s12, s2, s3 dpst.NodeID) {
	tree = dpst.NewArrayTree()
	f11 := tree.NewNode(dpst.None, dpst.Finish, 1)
	s11 = tree.NewNode(f11, dpst.Step, 1)
	f12 := tree.NewNode(f11, dpst.Finish, 1)
	a2 := tree.NewNode(f12, dpst.Async, 1)
	s2 = tree.NewNode(a2, dpst.Step, 2)
	s12 = tree.NewNode(f12, dpst.Step, 1)
	a3 := tree.NewNode(f12, dpst.Async, 1)
	s3 = tree.NewNode(a3, dpst.Step, 3)
	return
}

func newChecker(t *testing.T, tree dpst.Tree, alg checker.Algorithm, strict bool) checker.Checker {
	t.Helper()
	return checker.New(checker.Options{
		Algorithm:        alg,
		Query:            dpst.NewQuery(tree, true),
		StrictLockChecks: strict,
	})
}

func algorithms() []checker.Algorithm {
	return []checker.Algorithm{checker.AlgOptimized, checker.AlgBasic}
}

const locX sched.Loc = 1

func TestUnserializableTable(t *testing.T) {
	R, W := checker.Read, checker.Write
	cases := []struct {
		a1, a2, a3 checker.AccessType
		want       bool
	}{
		{R, R, R, false},
		{R, R, W, false},
		{W, R, R, false},
		{R, W, R, true},
		{R, W, W, true},
		{W, R, W, true},
		{W, W, R, true},
		{W, W, W, true},
	}
	for _, c := range cases {
		if got := checker.Unserializable(c.a1, c.a2, c.a3); got != c.want {
			t.Errorf("Unserializable(%v,%v,%v) = %v, want %v", c.a1, c.a2, c.a3, got, c.want)
		}
	}
}

func TestAccessTypeString(t *testing.T) {
	if checker.Read.String() != "R" || checker.Write.String() != "W" {
		t.Error("unexpected AccessType strings")
	}
	if checker.AlgOptimized.String() != "optimized" || checker.AlgBasic.String() != "basic" {
		t.Error("unexpected Algorithm strings")
	}
}

// TestFigure5Trace replays the exact trace of Figure 5/Figure 10: the
// observed schedule exhibits no violation, but the metadata detects the
// R-W-W triple (read and write of X by S2, torn by S3's parallel write)
// feasible in another schedule.
func TestFigure5Trace(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			tree, s11, _, s2, s3 := figure2()
			c := newChecker(t, tree, alg, false)
			t1 := &fakeTask{step: s11}
			t2 := &fakeTask{step: s2}
			t3 := &fakeTask{step: s3}

			c.Access(t1, locX, true)  // 1: X = 10 by S11
			c.Access(t3, locX, true)  // 9: X = Y by S3
			c.Access(t2, locX, false) // 6: a = X by S2
			c.Access(t2, locX, true)  // 8: X = a by S2

			vs := c.Reporter().Violations()
			if len(vs) != 1 {
				t.Fatalf("got %d violations, want 1: %v", len(vs), vs)
			}
			v := vs[0]
			if v.PatternStep != s2 || v.InterleaverStep != s3 || v.Kind() != "R-W-W" {
				t.Errorf("unexpected violation %+v (kind %s)", v, v.Kind())
			}
			if v.Loc != locX || v.PatternTask != 2 || v.InterleaverTask != 3 {
				t.Errorf("violation bookkeeping wrong: %+v", v)
			}
			if st := c.Stats(); st.Locations != 1 {
				t.Errorf("Locations = %d, want 1", st.Locations)
			}
		})
	}
}

// TestInterleaverAfterPattern moves S3's write after S2's pair in trace
// order; the current access must then be recognized in the interleaver
// role against the stored RW pattern.
func TestInterleaverAfterPattern(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			tree, s11, _, s2, s3 := figure2()
			c := newChecker(t, tree, alg, false)
			c.Access(&fakeTask{step: s11}, locX, true)
			t2 := &fakeTask{step: s2}
			c.Access(t2, locX, false)
			c.Access(t2, locX, true)
			c.Access(&fakeTask{step: s3}, locX, true)

			vs := c.Reporter().Violations()
			if len(vs) != 1 {
				t.Fatalf("got %d violations, want 1: %v", len(vs), vs)
			}
			if vs[0].PatternStep != s2 || vs[0].InterleaverStep != s3 || vs[0].Kind() != "R-W-W" {
				t.Errorf("unexpected violation %+v", vs[0])
			}
		})
	}
}

// TestSerialAccessesNoViolation: S11 is serial with S2 and S3, so pairs
// by S11 cannot be torn; and reads alone never form violations.
func TestSerialAccessesNoViolation(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			tree, s11, s12, s2, s3 := figure2()
			c := newChecker(t, tree, alg, false)
			// S11 pair, serial interleavers only.
			t1 := &fakeTask{step: s11}
			c.Access(t1, locX, true)
			c.Access(t1, locX, true)
			c.Access(&fakeTask{step: s12}, locX, true) // serial with S11
			// Parallel reads only on another location.
			const locY sched.Loc = 2
			t2 := &fakeTask{step: s2}
			c.Access(t2, locY, false)
			c.Access(&fakeTask{step: s3}, locY, false)
			c.Access(t2, locY, false)
			if n := c.Reporter().Count(); n != 0 {
				t.Fatalf("got %d violations, want 0: %v", n, c.Reporter().Violations())
			}
		})
	}
}

// lockTok builds an acquisition token for tests.
func lockTok(lockID uint32, acq uint64) uint64 { return sched.MakeLockToken(lockID, acq) }

// TestFigure12Locks replays the data-race-free program of Figure 11: S2
// reads X in one critical section of L and writes X in another
// (re-acquired, hence re-versioned) critical section, while S3 writes X
// under L in parallel. The R-W-W violation must be detected.
func TestFigure12Locks(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			tree, s11, _, s2, s3 := figure2()
			c := newChecker(t, tree, alg, false)
			const lockL = 1
			c.Access(&fakeTask{step: s11}, locX, true)
			c.Access(&fakeTask{step: s3, locks: []uint64{lockTok(lockL, 1)}}, locX, true)
			t2 := &fakeTask{step: s2}
			t2.locks = []uint64{lockTok(lockL, 2)}
			c.Access(t2, locX, false)
			t2.locks = []uint64{lockTok(lockL, 3)} // L released and re-acquired: fresh version
			c.Access(t2, locX, true)

			vs := c.Reporter().Violations()
			if len(vs) != 1 {
				t.Fatalf("got %d violations, want 1: %v", len(vs), vs)
			}
			if vs[0].PatternStep != s2 || vs[0].InterleaverStep != s3 || vs[0].Kind() != "R-W-W" {
				t.Errorf("unexpected violation %+v", vs[0])
			}
		})
	}
}

// TestSameCriticalSectionAtomic: when both accesses of the pair sit in
// the same critical section, the lock guarantees their atomicity against
// other critical sections of the same lock; no pattern is formed and no
// violation reported (paper mode).
func TestSameCriticalSectionAtomic(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			tree, s11, _, s2, s3 := figure2()
			c := newChecker(t, tree, alg, false)
			const lockL = 1
			c.Access(&fakeTask{step: s11}, locX, true)
			c.Access(&fakeTask{step: s3, locks: []uint64{lockTok(lockL, 1)}}, locX, true)
			t2 := &fakeTask{step: s2, locks: []uint64{lockTok(lockL, 2)}}
			c.Access(t2, locX, false)
			c.Access(t2, locX, true) // same acquisition: same critical section
			if n := c.Reporter().Count(); n != 0 {
				t.Fatalf("got %d violations, want 0: %v", n, c.Reporter().Violations())
			}
		})
	}
}

// TestStrictLockChecks: a pair inside one critical section can still be
// torn by a parallel access that does not synchronize on that lock. The
// paper's algorithm misses this (it is a data race rather than a pure
// atomicity violation); the StrictLockChecks extension reports it, while
// still staying silent when the interleaver holds the same mutex.
func TestStrictLockChecks(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			const lockL = 1
			build := func(strict bool, interLocks []uint64) int64 {
				tree, _, _, s2, s3 := figure2()
				c := newChecker(t, tree, alg, strict)
				t2 := &fakeTask{step: s2, locks: []uint64{lockTok(lockL, 1)}}
				c.Access(t2, locX, false)
				c.Access(t2, locX, true) // same critical section
				c.Access(&fakeTask{step: s3, locks: interLocks}, locX, true)
				return c.Reporter().Count()
			}
			if n := build(false, nil); n != 0 {
				t.Errorf("paper mode reported %d violations for same-CS pair, want 0", n)
			}
			if n := build(true, nil); n != 1 {
				t.Errorf("strict mode reported %d violations for unsynchronized interleaver, want 1", n)
			}
			if n := build(true, []uint64{lockTok(lockL, 9)}); n != 0 {
				t.Errorf("strict mode reported %d violations although the interleaver holds the same mutex, want 0", n)
			}
		})
	}
}

// TestWWWDetected: two writes by one step torn by a parallel write.
func TestWWWDetected(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			tree, _, _, s2, s3 := figure2()
			c := newChecker(t, tree, alg, false)
			t2 := &fakeTask{step: s2}
			c.Access(t2, locX, true)
			c.Access(t2, locX, true)
			c.Access(&fakeTask{step: s3}, locX, true)
			vs := c.Reporter().Violations()
			found := false
			for _, v := range vs {
				if v.Kind() == "W-W-W" && v.PatternStep == s2 && v.InterleaverStep == s3 {
					found = true
				}
			}
			if !found {
				t.Fatalf("W-W-W not detected; got %v", vs)
			}
		})
	}
}

// TestWRWDetected: a write then read by one step torn by a parallel
// write (W-W-R triple as recorded: first W, interleaver W, last R).
func TestWRWPatternDetected(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			tree, _, _, s2, s3 := figure2()
			c := newChecker(t, tree, alg, false)
			c.Access(&fakeTask{step: s3}, locX, true) // parallel write first
			t2 := &fakeTask{step: s2}
			c.Access(t2, locX, true)
			c.Access(t2, locX, false)
			vs := c.Reporter().Violations()
			found := false
			for _, v := range vs {
				if v.Kind() == "W-W-R" && v.PatternStep == s2 {
					found = true
				}
			}
			if !found {
				t.Fatalf("W-W-R not detected; got %v", vs)
			}
		})
	}
}

// TestRWRDetected: read-read pair torn by a parallel write.
func TestRWRDetected(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			tree, _, _, s2, s3 := figure2()
			c := newChecker(t, tree, alg, false)
			t2 := &fakeTask{step: s2}
			c.Access(t2, locX, false)
			c.Access(t2, locX, false)
			c.Access(&fakeTask{step: s3}, locX, true)
			vs := c.Reporter().Violations()
			found := false
			for _, v := range vs {
				if v.Kind() == "R-W-R" && v.PatternStep == s2 && v.InterleaverStep == s3 {
					found = true
				}
			}
			if !found {
				t.Fatalf("R-W-R not detected; got %v", vs)
			}
		})
	}
}

// TestStaleLocalEntryIgnored: accesses by an earlier step of the same
// task must not pair with accesses of a later step — there is a task
// management construct between them, so no atomicity is expected.
func TestStaleLocalEntryIgnored(t *testing.T) {
	tree, s11, s12, s2, _ := figure2()
	c := newChecker(t, tree, checker.AlgOptimized, false)
	// Same synthetic task (shared local slot) executing S11 then S12.
	t1 := &fakeTask{step: s11}
	c.Access(t1, locX, false) // read in S11
	t1.step = s12
	c.Access(t1, locX, true) // write in S12: must NOT form an R-W pair
	c.Access(&fakeTask{step: s2}, locX, true)
	if n := c.Reporter().Count(); n != 0 {
		t.Fatalf("got %d violations, want 0 (pair spans a task construct): %v",
			n, c.Reporter().Violations())
	}
}

// TestMultiVariableGroup: two program variables annotated as one atomic
// group share a Loc, so a read of one and a write of the other by the
// same step form a pattern.
func TestMultiVariableGroup(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			tree, _, _, s2, s3 := figure2()
			c := newChecker(t, tree, alg, false)
			const group sched.Loc = 7 // both variables mapped to this cell
			t2 := &fakeTask{step: s2}
			c.Access(t2, group, false) // read variable A
			c.Access(t2, group, true)  // write variable B
			c.Access(&fakeTask{step: s3}, group, true)
			if c.Reporter().Count() == 0 {
				t.Fatal("grouped variables must share metadata and yield a violation")
			}
		})
	}
}

// TestEndToEndFigure1OnScheduler runs the Figure 1 program on the real
// work-stealing runtime under the optimized checker.
func TestEndToEndFigure1OnScheduler(t *testing.T) {
	for i := 0; i < 20; i++ { // several runs: schedules vary
		tree := dpst.NewArrayTree()
		q := dpst.NewQuery(tree, true)
		c := checker.New(checker.Options{Query: q})
		s := sched.New(sched.Options{Workers: 4, Tree: tree, Monitor: c})
		const x sched.Loc = 1
		s.Run(func(tk *sched.Task) {
			tk.Access(x, true) // S11: X = 10
			tk.Finish(func(tk *sched.Task) {
				tk.Spawn(func(t2 *sched.Task) { // T2: a = X; X = a+1
					t2.Access(x, false)
					t2.Access(x, true)
				})
				tk.Spawn(func(t3 *sched.Task) { // T3: X = Y
					t3.Access(x, true)
				})
			})
		})
		s.Close()
		vs := c.Reporter().Violations()
		if len(vs) != 1 || vs[0].Kind() != "R-W-W" {
			t.Fatalf("run %d: got %v, want exactly one R-W-W violation", i, vs)
		}
	}
}

func TestReporter(t *testing.T) {
	r := checker.NewReporter(2)
	v1 := checker.Violation{Loc: 1, PatternStep: 2, InterleaverStep: 3, First: checker.Read, Middle: checker.Write, Last: checker.Write}
	v2 := checker.Violation{Loc: 1, PatternStep: 4, InterleaverStep: 3, First: checker.Write, Middle: checker.Write, Last: checker.Write}
	v3 := checker.Violation{Loc: 2, PatternStep: 2, InterleaverStep: 3, First: checker.Write, Middle: checker.Write, Last: checker.Read}
	if !r.Empty() {
		t.Error("fresh reporter must be empty")
	}
	r.Report(v1)
	r.Report(v1) // duplicate
	r.Report(v2)
	r.Report(v3) // beyond retention limit, still counted
	if got := r.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if got := len(r.Violations()); got != 2 {
		t.Errorf("retained = %d, want 2 (limit)", got)
	}
	if r.Empty() {
		t.Error("reporter with reports must not be empty")
	}
	if v1.String() == "" || v1.Kind() != "R-W-W" {
		t.Error("violation formatting broken")
	}
	vs := r.Violations()
	if vs[0].PatternStep > vs[1].PatternStep {
		t.Error("violations must be deterministically ordered")
	}
}

func TestNewCheckerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New without Query must panic")
		}
	}()
	checker.New(checker.Options{})
}
