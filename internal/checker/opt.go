package checker

import (
	"sync"
	"sync/atomic"

	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
)

// Indices of the single-access entries (R1, R2, W1, W2) in the global
// metadata space.
const (
	sR1 = iota
	sR2
	sW1
	sW2
)

// Indices of the two-access pattern kinds (read-read, read-write,
// write-read, write-write).
const (
	pRR = iota
	pRW
	pWR
	pWW
)

// patTypes maps a pattern kind to its (first, last) access types.
var patTypes = [4][2]AccessType{
	pRR: {Read, Read},
	pRW: {Read, Write},
	pWR: {Write, Read},
	pWW: {Write, Write},
}

// optCell is the per-location global metadata space: twelve access
// history entries as in Section 3.2.1 — four single-access entries plus
// two entries for each of the four two-access pattern kinds. The paper's
// "eight of them capture the four different kinds of two-access
// patterns" is exactly two entries per kind; both accesses of a pattern
// belong to one step, so each entry stores just that step.
//
// Keeping two entries per kind (rather than one) is essential for
// completeness: with a single entry, a pattern step dropped because the
// stored step is parallel to it would be missed when a later interleaver
// is parallel only to the dropped step. The replacement discipline is
// the spanning-pair rule of SPD3 (see chooseSlot).
//
// The global space carries no lock information in paper mode (Section
// 3.3 keeps locksets local); the strict-lock extension attaches lockInfo
// lazily.
type optCell struct {
	mu     spinLock
	single [4]dpst.NodeID
	pat    [4][2]dpst.NodeID
	// singleD and patD memoize the LCA depth of each stored entry pair
	// (the spanning rule's comparison baseline), maintained on
	// replacement so steady-state accesses avoid tree walks.
	singleD [2]int32
	patD    [4]int32
	// patMask has bit kind set when that pattern kind has an entry, so
	// interleaver-role checks skip empty kinds without touching them.
	patMask  uint8
	lockInfo *cellLocks

	// tick is the cell's event clock for provenance: it advances once per
	// full dispatch on this location (under mu), and the install time of
	// each single entry is stamped in singleTick. Comparing a stored
	// single's install tick against the pattern step's first-access tick
	// classifies a candidate-role triple as observed (the interleaver
	// arrived between the pattern's two accesses in this schedule) or
	// inferred for another schedule. Ticks never reach reports directly —
	// only the derived Observed bit does — so filtered-out dispatches
	// shifting tick values cannot perturb report content.
	tick       uint64
	singleTick [4]uint64
}

// cellLocks carries the strict-lock extension's lockset annotations for
// the global entries: the lockset held at each single access, and the
// common lockset of each stored pattern.
type cellLocks struct {
	single [4][]uint64
	pat    [4][2][]uint64
}

func initOptCell(c *optCell) {
	for i := range c.single {
		c.single[i] = dpst.None
	}
	for k := range c.pat {
		c.pat[k][0] = dpst.None
		c.pat[k][1] = dpst.None
	}
}

func (c *optCell) singleLocks(i int) []uint64 {
	if c.lockInfo == nil {
		return nil
	}
	return c.lockInfo.single[i]
}

func (c *optCell) patLocks(k, slot int) []uint64 {
	if c.lockInfo == nil {
		return nil
	}
	return c.lockInfo.pat[k][slot]
}

func (c *optCell) locks() *cellLocks {
	if c.lockInfo == nil {
		c.lockInfo = &cellLocks{}
	}
	return c.lockInfo
}

// Offer-once flags kept in localEntry: once a step has offered its
// single-access entry (including its interleaver-role checks) or a
// pattern candidate of a given kind to the global space, an identical
// lock-free repeat by the same step can be skipped entirely. This is
// sound for location-level detection: the global entries kept by the
// spanning-pair discipline cover every dropped offer, so the symmetric
// check on the other access of any real violating triple still fires.
const (
	fR  uint8 = 1 << iota // read single offered + interleaver checks done
	fW                    // write single offered + interleaver checks done
	fRR                   // read-read pattern candidate offered
	fRW                   // read-write pattern candidate offered
	fWR                   // write-read pattern candidate offered
	fWW                   // write-write pattern candidate offered
)

// localEntry is the per-task local metadata space for one location: the
// first read and first write performed by the task's current step, with
// the locksets held at those accesses (Section 3.3). Entries recorded by
// earlier steps of the same task are stale and ignored. The entry also
// caches the location's global cell so the sharded shadow map is
// consulted once per (task, location).
type localEntry struct {
	cell       *optCell
	readStep   dpst.NodeID
	writeStep  dpst.NodeID
	flags      uint8
	readLocks  []uint64
	writeLocks []uint64
	// readTick and writeTick record the cell tick at the step's first
	// read/write of the location — the pattern-side baseline of the
	// observed/inferred provenance classification.
	readTick  uint64
	writeTick uint64
}

// The redundant-access filter in front of the full dispatch: a small
// per-task direct-mapped cache indexed by the location's low bits. Each
// entry caches the location's local entry (valid for the task's whole
// lifetime, killing the local-map probe on repeat locations) and a
// redundancy word (valid only while the task's filter epoch — step
// region and lockset version — is unchanged, see Task.FilterEpoch).
const (
	filterCacheBits = 6 // 64 entries, 2 KiB per task
	filterCacheSize = 1 << filterCacheBits
	filterCacheMask = filterCacheSize - 1
)

// Redundancy word bits. filtR means a further read under the same
// filter epoch is provably redundant, filtW the same for writes. A bit
// is set only after an access of that type ran the full dispatch (or
// the offer-once fast path) as a repeat — i.e. with its own local entry
// already recorded — so every pattern kind the current step can form
// has been offered before the type becomes skippable. A step's first
// write clears filtR (the next read newly forms a WR pattern) and its
// first read clears filtW (the next write newly forms an RW pattern);
// see DESIGN.md for the full soundness argument.
const (
	filtR uint8 = 1 << iota
	filtW
)

type filterEntry struct {
	loc  sched.Loc // 0 = empty (location IDs start at 1)
	e    *localEntry
	ver  uint64
	bits uint8
	// hot marks an entry that has answered at least one repeat since it
	// was installed. A conflicting location only evicts a hot entry on
	// its second try (clearing hot on the first), so a sweep of
	// single-use locations cannot purge the entries that actually serve
	// repeats — the classic second-chance policy, one byte per entry.
	hot uint8
}

type filterCache [filterCacheSize]filterEntry

// The filter cache is allocated per task only on evidence that it can
// pay: after the task's first filterWarmup accesses, the filter enables
// iff they touched at most filterCacheSize distinct locations — a
// working set the direct-mapped cache can actually hold, implying the
// window revisited locations. The distinct count is the location
// table's size, already maintained, so warm-up costs one counter
// increment per access; streaming tasks (one ray, one chunk of a sweep,
// an array-initialising root task) decide against the 2 KiB allocation
// once and never pay again.
const filterWarmup = 2 * filterCacheSize

// Enablement states (localSpace.fstate). The enabled state is implied
// by a non-nil cache; fstate distinguishes "still probing" from
// "decided against / retired / disabled", so a retired task can never
// re-enter warm-up and thrash allocate-retire cycles.
const (
	filterWarming int8 = iota
	filterOff
)

// The filter retires itself per task when it stops paying: at
// filterProbeFirst counted accesses and then every filterProbeWindow,
// the probe hit count is compared against total/filterProbeRatio, and
// the cache is dropped — permanently for this task — when the access
// mix shows (almost) no location reuse. The early first check matters:
// most tasks die long before a full window.
const (
	filterProbeFirst  = 256
	filterProbeWindow = 8192
	filterProbeRatio  = 16
)

// locTable maps a task's accessed locations to their local entries: an
// open-addressing table (power-of-two capacity, Fibonacci hashing,
// linear probing) replacing the built-in map on the hot path. A lookup
// is one multiply-shift and, at the table's load factor, rarely more
// than one compare; an insert never runs the runtime map's incremental
// growth machinery, which dominated the profile of first-touch-heavy
// kernels (one ray or one sweep chunk per task inserts its whole
// working set into a freshly grown map). Location 0 marks empty slots;
// real location IDs start at 1.
type locTable struct {
	keys  []sched.Loc
	vals  []*localEntry
	n     int
	shift uint8 // 64 - log2(cap), the Fibonacci-hash shift
}

const locTableBits = 4 // initial capacity 16

func (t *locTable) init() {
	t.keys = make([]sched.Loc, 1<<locTableBits)
	t.vals = make([]*localEntry, 1<<locTableBits)
	t.shift = 64 - locTableBits
}

// get returns the entry for loc, or nil when absent.
func (t *locTable) get(loc sched.Loc) *localEntry {
	mask := uint64(len(t.keys) - 1)
	i := uint64(loc) * 0x9E3779B97F4A7C15 >> t.shift
	for {
		switch t.keys[i] {
		case loc:
			return t.vals[i]
		case 0:
			return nil
		}
		i = (i + 1) & mask
	}
}

// put inserts loc → e; loc must not be present.
func (t *locTable) put(loc sched.Loc, e *localEntry) {
	if t.n >= len(t.keys)-len(t.keys)/4 {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := uint64(loc) * 0x9E3779B97F4A7C15 >> t.shift
	for t.keys[i] != 0 {
		i = (i + 1) & mask
	}
	t.keys[i], t.vals[i] = loc, e
	t.n++
}

func (t *locTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]sched.Loc, 2*len(oldKeys))
	t.vals = make([]*localEntry, 2*len(oldVals))
	t.shift--
	mask := uint64(len(t.keys) - 1)
	for j, k := range oldKeys {
		if k == 0 {
			continue
		}
		i := uint64(k) * 0x9E3779B97F4A7C15 >> t.shift
		for t.keys[i] != 0 {
			i = (i + 1) & mask
		}
		t.keys[i], t.vals[i] = k, oldVals[j]
	}
}

// filterCounters holds one task's filter hit/miss counters. They live
// outside localSpace so the checker-wide registry retains only these
// few bytes per task — not the task's whole local metadata — after the
// task dies. The fields are atomic so Stats can be read live, mid-run,
// by Session.Snapshot; each counter is written only by the owning
// task's goroutine, so the adds are uncontended.
type filterCounters struct {
	hits   atomic.Int64
	misses atomic.Int64
}

// localSpace is a task's local metadata, kept in Task.Local. Besides the
// per-location entries it holds a task-private front cache for Par
// results (entries: 1 = serial, 2 = parallel), created only in the
// cached-walk query mode: the same step pair is queried for many
// locations in a row (e.g. a merge step against the previous level's
// steps for every array element), and the private map answers those
// repeats without touching the shared cache. In label mode a query is
// cheaper than the map hit, so no front cache is kept. rep is the task's
// private violation buffer, created on its first report.
//
// cache is the redundant-access filter, allocated lazily when the
// warm-up window shows a cache-sized working set (nil while warming up,
// retired, or disabled), with ctr its counters, accs the warm-up
// progress, and reuse the probe matches that fell through to dispatch —
// retirement weighs reuse+hits against the access total, so the hit
// return path bumps a single counter.
type localSpace struct {
	cache  *filterCache
	ctr    *filterCounters
	fstate int8
	accs   int32
	reuse  int64
	m      locTable
	par    map[uint64]int8
	rep    *reportBuffer
	chunk  []localEntry
	used   int

	// lockChunk bump-allocates the lockset copies stored in local
	// entries, and inter is the reusable scratch for lockset
	// intersections — both replace the per-access heap allocations of
	// the locked hot path.
	lockChunk []uint64
	lockUsed  int
	inter     []uint64
}

// alloc bump-allocates a local entry from the space's current chunk.
func (ls *localSpace) alloc() *localEntry {
	if ls.used == len(ls.chunk) {
		ls.chunk = make([]localEntry, 64)
		ls.used = 0
	}
	e := &ls.chunk[ls.used]
	ls.used++
	return e
}

// copyLockSlice copies a lockset into the space's bump arena. Like the
// entry chunks, arena chunks are never reclaimed individually; lockset
// copies are tiny (lock nesting depth) and die with the task.
func (ls *localSpace) copyLockSlice(a []uint64) []uint64 {
	if len(a) == 0 {
		return nil
	}
	if ls.lockUsed+len(a) > len(ls.lockChunk) {
		n := 128
		if len(a) > n {
			n = len(a)
		}
		ls.lockChunk = make([]uint64, n)
		ls.lockUsed = 0
	}
	out := ls.lockChunk[ls.lockUsed : ls.lockUsed+len(a) : ls.lockUsed+len(a)]
	ls.lockUsed += len(a)
	copy(out, a)
	return out
}

// intersect returns the common tokens of two locksets into a scratch
// buffer reused across calls: the result is only valid until the next
// call, so callers that retain it (the strict mode's global pattern
// locksets) must copy it first.
func (ls *localSpace) intersect(a, b []uint64) []uint64 {
	out := ls.inter[:0]
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	ls.inter = out
	return out
}

// Optimized is the paper's fixed-metadata atomicity checker.
type Optimized struct {
	q        *dpst.Query
	rep      *Reporter
	strict   bool
	noFilter bool
	mem      shadow[optCell]

	// counters tracks every task's filter counters; registration happens
	// once per task, so the lock is cold, and only the counters — not
	// the task's local metadata — outlive the task.
	countersMu sync.Mutex
	counters   []*filterCounters
}

func newOptimized(opts Options) *Optimized {
	c := &Optimized{
		q:        opts.Query,
		rep:      opts.Reporter,
		strict:   opts.StrictLockChecks,
		noFilter: opts.DisableAccessFilter,
	}
	c.mem.initC = initOptCell
	c.mem.setGate(opts.Gate)
	return c
}

// Reporter implements Checker.
func (c *Optimized) Reporter() *Reporter { return c.rep }

// Stats implements Checker.
func (c *Optimized) Stats() Stats {
	st := Stats{Locations: c.mem.count.Load()}
	c.countersMu.Lock()
	for _, ctr := range c.counters {
		st.FilterHits += ctr.hits.Load()
		st.FilterMisses += ctr.misses.Load()
	}
	c.countersMu.Unlock()
	return st
}

// OnAcquire implements sched.Monitor; lockset maintenance lives in the
// runtime, so nothing to do.
func (c *Optimized) OnAcquire(*sched.Task, *sched.Mutex) {}

// OnRelease implements sched.Monitor.
func (c *Optimized) OnRelease(*sched.Task, *sched.Mutex) {}

// space returns the task's local metadata space, creating it on the
// task's first instrumented access.
func (c *Optimized) space(ts TaskState) *localSpace {
	slot := ts.LocalSlot()
	if sp, ok := (*slot).(*localSpace); ok {
		return sp
	}
	return c.newSpace(slot)
}

// newSpace creates a task's local space (the slow path of space, kept
// out of the Access hot path's inlining footprint).
func (c *Optimized) newSpace(slot *any) *localSpace {
	sp := c.makeSpace()
	*slot = sp
	return sp
}

// makeSpace builds a local space without publishing it to a task slot;
// the batched dispatcher embeds the space in its own per-task state.
func (c *Optimized) makeSpace() *localSpace {
	sp := &localSpace{}
	sp.m.init()
	if c.noFilter {
		sp.fstate = filterOff
	}
	if c.q.Caching() {
		sp.par = make(map[uint64]int8)
	}
	return sp
}

// registerCounters adds one task's filter counters to the checker-wide
// registry summed by Stats. Called once per task (cold).
func (c *Optimized) registerCounters(ctr *filterCounters) {
	c.countersMu.Lock()
	c.counters = append(c.counters, ctr)
	c.countersMu.Unlock()
}

// enableFilter ends a task's warm-up: it allocates the filter cache and
// registers the task's counters with the checker.
func (c *Optimized) enableFilter(sp *localSpace) {
	sp.cache = new(filterCache)
	sp.ctr = &filterCounters{}
	c.registerCounters(sp.ctr)
}

// newEntry creates the task's local entry for loc, resolving the
// location's global cell (the slow path of the Access map probe).
func (c *Optimized) newEntry(sp *localSpace, loc sched.Loc) *localEntry {
	e := sp.alloc()
	e.cell = c.mem.cell(loc)
	e.readStep, e.writeStep = dpst.None, dpst.None
	sp.m.put(loc, e)
	return e
}

// par answers a may-happen-in-parallel query through the current task's
// front cache, falling back to the shared query cache.
func (c *Optimized) par(sp *localSpace, a, b dpst.NodeID) bool {
	if a == b || a == dpst.None || b == dpst.None {
		return false
	}
	if !c.q.Caching() {
		return c.q.Par(a, b)
	}
	key := dpst.PairKey(a, b)
	if v, ok := sp.par[key]; ok {
		c.q.CountQuery(a, b)
		return v == 2
	}
	r := c.q.Par(a, b)
	v := int8(1)
	if r {
		v = 2
	}
	sp.par[key] = v
	return r
}

// intersect returns the common tokens of two locksets (nil when
// disjoint). Locksets are tiny (nesting depth), so quadratic is fine.
func intersect(a, b []uint64) []uint64 {
	var out []uint64
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

func copyLocks(a []uint64) []uint64 {
	if len(a) == 0 {
		return nil
	}
	return append([]uint64(nil), a...)
}

// checkTriple reports a violation if a two-access pattern (performed by
// patStep with types a1, a3 and common lockset patLocks) can be torn by
// the single access (inter, a2, interLocks) from a logically parallel
// step. In paper mode patLocks is always empty and the lockset test is
// vacuous, matching the paper's lock-free global space.
//
// observed says whether the unserializable order actually occurred in
// this schedule (see optCell.tick); it flows into the provenance, which
// is built only for triples the task has not reported before — the
// isDup probe keeps the steady-state path (duplicate re-detections)
// allocation-free.
func (c *Optimized) checkTriple(sp *localSpace, loc sched.Loc, patStep dpst.NodeID, patLocks []uint64, a1, a3 AccessType, inter dpst.NodeID, a2 AccessType, interLocks []uint64, observed bool) {
	if patStep == dpst.None || inter == dpst.None {
		return
	}
	if !Unserializable(a1, a2, a3) {
		return
	}
	if !identityDisjoint(patLocks, interLocks) {
		return
	}
	if !c.par(sp, patStep, inter) {
		return
	}
	tr := c.q.Tree()
	if sp.rep == nil {
		sp.rep = c.rep.buffer()
	}
	v := Violation{
		Loc:             loc,
		PatternStep:     patStep,
		InterleaverStep: inter,
		First:           a1,
		Middle:          a2,
		Last:            a3,
		PatternTask:     tr.Task(patStep),
		InterleaverTask: tr.Task(inter),
	}
	if sp.rep.isDup(v.key()) {
		return
	}
	v.Prov = buildProvenance(tr, patStep, inter, patLocks, interLocks, observed)
	sp.rep.report(v)
}

// checkStoredPatterns checks the current access, in the interleaver
// role, against both stored entries of the given pattern kind. An
// interleaver-role detection is never observed: the middle access is
// arriving after the stored pattern completed, so the unserializable
// order is inferred for another schedule.
func (c *Optimized) checkStoredPatterns(sp *localSpace, loc sched.Loc, cell *optCell, kind int, inter dpst.NodeID, a2 AccessType, interLocks []uint64) {
	if cell.patMask&(1<<kind) == 0 {
		return
	}
	t := patTypes[kind]
	for slot := 0; slot < 2; slot++ {
		c.checkTriple(sp, loc, cell.pat[kind][slot], cell.patLocks(kind, slot), t[0], t[1], inter, a2, interLocks, false)
	}
}

// checkCandidate checks a freshly formed two-access pattern against a
// stored single-access entry. firstTick is the cell tick of the pattern
// step's first access: the triple was observed in this schedule iff the
// stored single was installed after it — i.e. the interleaving access
// actually fell between the pattern's two accesses.
func (c *Optimized) checkCandidate(sp *localSpace, loc sched.Loc, cell *optCell, candStep dpst.NodeID, candLocks []uint64, a1, a3 AccessType, singleIdx int, a2 AccessType, firstTick uint64) {
	observed := cell.singleTick[singleIdx] > firstTick
	c.checkTriple(sp, loc, candStep, candLocks, a1, a3, cell.single[singleIdx], a2, cell.singleLocks(singleIdx), observed)
}

// chooseSlot decides where a new step s goes among a two-entry history
// (slots holding steps a and b): slot 0, slot 1, or dropped (-1).
//
// An empty or series-related slot is replaced (Figure 8: a serial
// predecessor is subsumed by the newer access — any future step parallel
// to the old one is parallel to the new one, by the series-parallel
// structure and trace order). When s is parallel to both entries, the
// pair with the shallowest least common ancestor is kept — SPD3's
// spanning-reader discipline — which guarantees any future step parallel
// to a dropped step is parallel to one of the kept entries.
func (c *Optimized) chooseSlot(sp *localSpace, a, b, s dpst.NodeID, dab int32) int {
	if a == dpst.None || !c.par(sp, a, s) {
		return 0
	}
	if b == dpst.None || !c.par(sp, b, s) {
		return 1
	}
	das := c.q.PairDepth(a, s)
	if dab <= das {
		if dab <= c.q.PairDepth(b, s) {
			return -1 // the current pair already spans widest
		}
		return 0 // keep {b, s}
	}
	if das <= c.q.PairDepth(b, s) {
		return 1 // keep {a, s}
	}
	return 0 // keep {b, s}
}

// updateSingle installs (si, locks) into the single-entry pair (a, b);
// a is sR1 or sW1 and b the matching second slot.
func (c *Optimized) updateSingle(sp *localSpace, cell *optCell, a, b int, si dpst.NodeID, locks []uint64) {
	if !c.strict && (cell.single[a] == si || cell.single[b] == si) {
		// Re-offer of an already-stored step: replacement would at best
		// re-install si (or shrink the pair to {si, si}), so keeping the
		// stored pair loses nothing. Strict mode still runs, since it
		// refreshes the entry's lockset.
		return
	}
	dIdx := a / 2 // (sR1,sR2) -> 0, (sW1,sW2) -> 1
	idx := a
	switch c.chooseSlot(sp, cell.single[a], cell.single[b], si, cell.singleD[dIdx]) {
	case 0:
	case 1:
		idx = b
	default:
		return
	}
	if cell.single[idx] != si {
		// Stamp the install time only when the stored step changes: a
		// strict-mode re-offer refreshing the lockset keeps the step's
		// original install tick, so the observed/inferred classification
		// is independent of how often the offer is repeated (and of the
		// redundant-access filter suppressing those repeats).
		cell.singleTick[idx] = cell.tick
	}
	cell.single[idx] = si
	if cell.single[a] != dpst.None && cell.single[b] != dpst.None {
		cell.singleD[dIdx] = c.q.PairDepth(cell.single[a], cell.single[b])
	}
	if c.strict {
		cell.locks().single[idx] = copyLocks(locks)
	}
}

// updatePattern installs a freshly formed two-access pattern into the
// kind's entry pair.
func (c *Optimized) updatePattern(sp *localSpace, cell *optCell, kind int, candStep dpst.NodeID, candLocks []uint64) {
	if !c.strict && (cell.pat[kind][0] == candStep || cell.pat[kind][1] == candStep) {
		// Same idempotence argument as updateSingle's re-offer guard.
		return
	}
	slot := c.chooseSlot(sp, cell.pat[kind][0], cell.pat[kind][1], candStep, cell.patD[kind])
	if slot < 0 {
		return
	}
	cell.pat[kind][slot] = candStep
	cell.patMask |= 1 << kind
	if cell.pat[kind][0] != dpst.None && cell.pat[kind][1] != dpst.None {
		cell.patD[kind] = c.q.PairDepth(cell.pat[kind][0], cell.pat[kind][1])
	}
	if c.strict {
		// candLocks may live in the task's intersect scratch; the global
		// entry outlives the task, so take a heap copy.
		cell.locks().pat[kind][slot] = copyLocks(candLocks)
	}
}

// OnAccess implements sched.Monitor.
func (c *Optimized) OnAccess(t *sched.Task, loc sched.Loc, write bool) {
	c.Access(t, loc, write)
}

// Access checks one access with the dispatch of Figure 6, fronted by
// the redundant-access filter: a one-load epoch check skips accesses
// that are provably re-runs of an access already dispatched by the same
// step under an identical lockset, and the direct-mapped cache resolves
// the local entry without the map probe on repeat locations.
func (c *Optimized) Access(ts TaskState, loc sched.Loc, write bool) {
	slot, si, ver, locks := ts.AccessState()
	sp, ok := (*slot).(*localSpace)
	if !ok {
		sp = c.newSpace(slot)
	}
	var fe *filterEntry
	var ls *localEntry
	if cache := sp.cache; cache != nil {
		fe = &cache[uint64(loc)&filterCacheMask]
		if fe.loc == loc {
			if fe.ver == ver {
				bit := filtR
				if write {
					bit = filtW
				}
				if fe.bits&bit != 0 {
					sp.ctr.hits.Add(1)
					return
				}
			}
			sp.reuse++
			fe.hot = 1
			ls = fe.e
		} else if fe.hot != 0 {
			// The incumbent has served a repeat: give it a second chance
			// and run this access unfiltered.
			fe.hot = 0
			fe = nil
		}
	} else if sp.fstate == filterWarming {
		// Warm-up: a window's worth of accesses over at most a cache's
		// worth of distinct locations means the working set fits.
		if sp.accs++; sp.accs >= filterWarmup {
			if sp.m.n <= filterCacheSize {
				c.enableFilter(sp)
			} else {
				sp.fstate = filterOff
			}
		}
	}
	if ls == nil {
		if ls = sp.m.get(loc); ls == nil {
			ls = c.newEntry(sp, loc)
		}
		if fe != nil {
			fe.loc, fe.e, fe.ver, fe.bits, fe.hot = loc, ls, ver, 0, 0
		}
	}
	localRead, localWrite, outcome := c.dispatchEntry(sp, ls, loc, si, locks, write)
	switch outcome {
	case dispatchDenied:
		return
	case dispatchSkipped:
		// A fast-path skip also primes the filter word so the next repeat
		// is answered by the epoch check alone.
		if sp.cache != nil {
			sp.ctr.hits.Add(1)
			if fe != nil {
				if fe.ver != ver {
					fe.ver, fe.bits = ver, 0
				}
				if write {
					fe.bits |= filtW
				} else {
					fe.bits |= filtR
				}
			}
		}
		return
	}
	if sp.cache != nil {
		sp.ctr.misses.Add(1)
		hits := sp.ctr.hits.Load()
		if t := hits + sp.ctr.misses.Load(); (t == filterProbeFirst ||
			t&(filterProbeWindow-1) == 0) && sp.reuse+hits < t/filterProbeRatio {
			// No reuse in this task's mix after all: retire the filter
			// for good (fstate blocks re-entry into warm-up).
			sp.cache, sp.fstate = nil, filterOff
		}
	}
	if fe == nil {
		return
	}
	// Update the redundancy word. A bit is set only when the access ran
	// as a repeat of its own type (localRead/localWrite at entry): only
	// then has every pattern kind the step can currently form been
	// offered. A first write invalidates read redundancy (the next read
	// newly forms a WR pattern) and a first read invalidates write
	// redundancy (RW), so the enabling access always dispatches fully.
	if fe.ver != ver {
		fe.ver, fe.bits = ver, 0
	}
	if write {
		if localWrite {
			fe.bits |= filtW
		} else {
			fe.bits &^= filtR
		}
	} else {
		if localRead {
			fe.bits |= filtR
		} else {
			fe.bits &^= filtW
		}
	}
}

// dispatchEntry outcomes.
const (
	// dispatchRan: the full Figure 6 dispatch ran under the cell lock.
	dispatchRan = iota
	// dispatchSkipped: the offer-once fast path proved the access a no-op.
	dispatchSkipped
	// dispatchDenied: the gate refused the location's metadata; the access
	// is not part of the analysis.
	dispatchDenied
)

// dispatchEntry runs the core of one access — the offer-once fast path
// and the Figure 6 dispatch — against an already resolved local entry,
// with the caller supplying the step node and lockset. It is shared by
// the per-access path (Access, which layers the redundant-access filter
// on top) and by the batched dispatcher (which replays a step's
// coalesced accesses under the batch's captured state). localRead and
// localWrite report whether the access was a repeat of its own type at
// entry — the fact the filter word and the batch deduplicator key on.
func (c *Optimized) dispatchEntry(sp *localSpace, ls *localEntry, loc sched.Loc, si dpst.NodeID, locks []uint64, write bool) (localRead, localWrite bool, outcome int) {
	cell := ls.cell
	if cell == nil {
		// The gate refused this location's metadata: the location is not
		// part of the analysis (graceful degradation). The nil cell is
		// cached in the local entry, so the refusal costs one shadow
		// lookup per task, not per access.
		return false, false, dispatchDenied
	}

	localRead = ls.readStep == si
	localWrite = ls.writeStep == si
	// Offer-once fast path: a lock-free repeat whose offers and checks
	// have all happened is a no-op (see the flag documentation). It
	// backstops the filter on cache collisions and when the filter is
	// disabled.
	if len(locks) == 0 {
		if write {
			if localWrite && ls.flags&fW != 0 && ls.flags&fWW != 0 &&
				(!localRead || ls.flags&fRW != 0) {
				return localRead, localWrite, dispatchSkipped
			}
		} else {
			if localRead && ls.flags&fR != 0 && ls.flags&fRR != 0 &&
				(!localWrite || ls.flags&fWR != 0) {
				return localRead, localWrite, dispatchSkipped
			}
		}
	}
	// The Figure 6 dispatch, under the cell lock. Each dispatch advances
	// the cell's provenance clock exactly once.
	cell.mu.lock()
	cell.tick++
	if !localRead && !localWrite {
		if cell.single[sR1] == dpst.None && cell.single[sW1] == dpst.None {
			c.handleFirstAccess(sp, cell, ls, si, write, locks)
		} else {
			c.handleFirstAccessCurrentTask(sp, loc, cell, ls, si, write, locks)
		}
	} else {
		c.handleNonFirstAccess(sp, loc, cell, ls, si, write, locks, localRead, localWrite)
	}
	cell.mu.unlock()
	return localRead, localWrite, dispatchRan
}

// setLocalRead records the step's first read in the local space,
// clearing the offer flags tied to the previous read entry. The lockset
// copy comes from the space's bump arena, not the heap. tick is the
// cell's current dispatch tick, kept as the provenance baseline.
func setLocalRead(sp *localSpace, ls *localEntry, si dpst.NodeID, locks []uint64, tick uint64) {
	ls.readStep, ls.readLocks, ls.readTick = si, sp.copyLockSlice(locks), tick
	ls.flags &^= fR | fRR | fRW
}

// setLocalWrite records the step's first write in the local space.
func setLocalWrite(sp *localSpace, ls *localEntry, si dpst.NodeID, locks []uint64, tick uint64) {
	ls.writeStep, ls.writeLocks, ls.writeTick = si, sp.copyLockSlice(locks), tick
	ls.flags &^= fW | fWW | fWR
}

// markDone sets an offer flag when the access is lock-free (locked
// repeats always take the slow path, since their locksets vary).
func markDone(ls *localEntry, locks []uint64, flag uint8) {
	if len(locks) == 0 {
		ls.flags |= flag
	}
}

// handleFirstAccess is Figure 7: the very first access to the location
// by any task. No LCA query is performed.
func (c *Optimized) handleFirstAccess(sp *localSpace, cell *optCell, ls *localEntry, si dpst.NodeID, write bool, locks []uint64) {
	idx := sR1
	if write {
		idx = sW1
	}
	cell.single[idx] = si
	cell.singleTick[idx] = cell.tick
	if c.strict {
		cell.locks().single[idx] = copyLocks(locks)
	}
	if write {
		setLocalWrite(sp, ls, si, locks, cell.tick)
		markDone(ls, locks, fW)
	} else {
		setLocalRead(sp, ls, si, locks, cell.tick)
		markDone(ls, locks, fR)
	}
}

// handleFirstAccessCurrentTask is Figure 8: the current step has not
// accessed the location before, but other tasks have. The only possible
// violation pairs the current access, as interleaver, with a stored
// global two-access pattern.
func (c *Optimized) handleFirstAccessCurrentTask(sp *localSpace, loc sched.Loc, cell *optCell, ls *localEntry, si dpst.NodeID, write bool, locks []uint64) {
	if write {
		setLocalWrite(sp, ls, si, locks, cell.tick)
		c.checkStoredPatterns(sp, loc, cell, pWW, si, Write, locks)
		c.checkStoredPatterns(sp, loc, cell, pRW, si, Write, locks)
		c.checkStoredPatterns(sp, loc, cell, pRR, si, Write, locks)
		c.checkStoredPatterns(sp, loc, cell, pWR, si, Write, locks)
		c.updateSingle(sp, cell, sW1, sW2, si, locks)
		markDone(ls, locks, fW)
	} else {
		setLocalRead(sp, ls, si, locks, cell.tick)
		c.checkStoredPatterns(sp, loc, cell, pWW, si, Read, locks)
		c.updateSingle(sp, cell, sR1, sR2, si, locks)
		markDone(ls, locks, fR)
	}
}

// handleNonFirstAccess is Figure 9: the current step has accessed the
// location before, so the local entry and the current access form a
// two-access pattern whose atomicity is checked against the global
// single-access entries, and the pattern is propagated to the global
// space. A pattern is only formed when the two accesses' locksets are
// disjoint — they sit in different critical sections (Section 3.3) — or
// unconditionally under the strict-lock extension, which then records
// the common lockset in the pattern.
//
// Beyond the literal Figure 9, the current access is also checked in the
// interleaver role against the stored global patterns, exactly as in
// Figure 8. Without this, a pattern formed by a parallel step is missed
// when the tearing access arrives later in the trace from a step that
// already accessed the location (the Figure 8 checks only run on a
// step's first access); the oracle-based differential tests exposed the
// gap.
func (c *Optimized) handleNonFirstAccess(sp *localSpace, loc sched.Loc, cell *optCell, ls *localEntry, si dpst.NodeID, write bool, locks []uint64, localRead, localWrite bool) {
	if write {
		c.checkStoredPatterns(sp, loc, cell, pWW, si, Write, locks)
		c.checkStoredPatterns(sp, loc, cell, pRW, si, Write, locks)
		c.checkStoredPatterns(sp, loc, cell, pRR, si, Write, locks)
		c.checkStoredPatterns(sp, loc, cell, pWR, si, Write, locks)
		if localRead {
			if common := sp.intersect(ls.readLocks, locks); len(common) == 0 || c.strict {
				c.checkCandidate(sp, loc, cell, si, common, Read, Write, sW1, Write, ls.readTick)
				c.checkCandidate(sp, loc, cell, si, common, Read, Write, sW2, Write, ls.readTick)
				c.updatePattern(sp, cell, pRW, si, common)
				markDone(ls, locks, fRW)
			}
		}
		if localWrite {
			if common := sp.intersect(ls.writeLocks, locks); len(common) == 0 || c.strict {
				c.checkCandidate(sp, loc, cell, si, common, Write, Write, sW1, Write, ls.writeTick)
				c.checkCandidate(sp, loc, cell, si, common, Write, Write, sW2, Write, ls.writeTick)
				c.checkCandidate(sp, loc, cell, si, common, Write, Write, sR1, Read, ls.writeTick)
				c.checkCandidate(sp, loc, cell, si, common, Write, Write, sR2, Read, ls.writeTick)
				c.updatePattern(sp, cell, pWW, si, common)
				markDone(ls, locks, fWW)
			}
		}
		c.updateSingle(sp, cell, sW1, sW2, si, locks)
		if !localWrite {
			setLocalWrite(sp, ls, si, locks, cell.tick)
		}
		markDone(ls, locks, fW)
	} else {
		c.checkStoredPatterns(sp, loc, cell, pWW, si, Read, locks)
		if localRead {
			if common := sp.intersect(ls.readLocks, locks); len(common) == 0 || c.strict {
				c.checkCandidate(sp, loc, cell, si, common, Read, Read, sW1, Write, ls.readTick)
				c.checkCandidate(sp, loc, cell, si, common, Read, Read, sW2, Write, ls.readTick)
				c.updatePattern(sp, cell, pRR, si, common)
				markDone(ls, locks, fRR)
			}
		}
		if localWrite {
			if common := sp.intersect(ls.writeLocks, locks); len(common) == 0 || c.strict {
				c.checkCandidate(sp, loc, cell, si, common, Write, Read, sW1, Write, ls.writeTick)
				c.checkCandidate(sp, loc, cell, si, common, Write, Read, sW2, Write, ls.writeTick)
				c.updatePattern(sp, cell, pWR, si, common)
				markDone(ls, locks, fWR)
			}
		}
		c.updateSingle(sp, cell, sR1, sR2, si, locks)
		if !localRead {
			setLocalRead(sp, ls, si, locks, cell.tick)
		}
		markDone(ls, locks, fR)
	}
}
