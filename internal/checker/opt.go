package checker

import (
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
)

// Indices of the single-access entries (R1, R2, W1, W2) in the global
// metadata space.
const (
	sR1 = iota
	sR2
	sW1
	sW2
)

// Indices of the two-access pattern kinds (read-read, read-write,
// write-read, write-write).
const (
	pRR = iota
	pRW
	pWR
	pWW
)

// patTypes maps a pattern kind to its (first, last) access types.
var patTypes = [4][2]AccessType{
	pRR: {Read, Read},
	pRW: {Read, Write},
	pWR: {Write, Read},
	pWW: {Write, Write},
}

// optCell is the per-location global metadata space: twelve access
// history entries as in Section 3.2.1 — four single-access entries plus
// two entries for each of the four two-access pattern kinds. The paper's
// "eight of them capture the four different kinds of two-access
// patterns" is exactly two entries per kind; both accesses of a pattern
// belong to one step, so each entry stores just that step.
//
// Keeping two entries per kind (rather than one) is essential for
// completeness: with a single entry, a pattern step dropped because the
// stored step is parallel to it would be missed when a later interleaver
// is parallel only to the dropped step. The replacement discipline is
// the spanning-pair rule of SPD3 (see chooseSlot).
//
// The global space carries no lock information in paper mode (Section
// 3.3 keeps locksets local); the strict-lock extension attaches lockInfo
// lazily.
type optCell struct {
	mu     spinLock
	single [4]dpst.NodeID
	pat    [4][2]dpst.NodeID
	// singleD and patD memoize the LCA depth of each stored entry pair
	// (the spanning rule's comparison baseline), maintained on
	// replacement so steady-state accesses avoid tree walks.
	singleD [2]int32
	patD    [4]int32
	// patMask has bit kind set when that pattern kind has an entry, so
	// interleaver-role checks skip empty kinds without touching them.
	patMask  uint8
	lockInfo *cellLocks
}

// cellLocks carries the strict-lock extension's lockset annotations for
// the global entries: the lockset held at each single access, and the
// common lockset of each stored pattern.
type cellLocks struct {
	single [4][]uint64
	pat    [4][2][]uint64
}

func initOptCell(c *optCell) {
	for i := range c.single {
		c.single[i] = dpst.None
	}
	for k := range c.pat {
		c.pat[k][0] = dpst.None
		c.pat[k][1] = dpst.None
	}
}

func (c *optCell) singleLocks(i int) []uint64 {
	if c.lockInfo == nil {
		return nil
	}
	return c.lockInfo.single[i]
}

func (c *optCell) patLocks(k, slot int) []uint64 {
	if c.lockInfo == nil {
		return nil
	}
	return c.lockInfo.pat[k][slot]
}

func (c *optCell) locks() *cellLocks {
	if c.lockInfo == nil {
		c.lockInfo = &cellLocks{}
	}
	return c.lockInfo
}

// Offer-once flags kept in localEntry: once a step has offered its
// single-access entry (including its interleaver-role checks) or a
// pattern candidate of a given kind to the global space, an identical
// lock-free repeat by the same step can be skipped entirely. This is
// sound for location-level detection: the global entries kept by the
// spanning-pair discipline cover every dropped offer, so the symmetric
// check on the other access of any real violating triple still fires.
const (
	fR  uint8 = 1 << iota // read single offered + interleaver checks done
	fW                    // write single offered + interleaver checks done
	fRR                   // read-read pattern candidate offered
	fRW                   // read-write pattern candidate offered
	fWR                   // write-read pattern candidate offered
	fWW                   // write-write pattern candidate offered
)

// localEntry is the per-task local metadata space for one location: the
// first read and first write performed by the task's current step, with
// the locksets held at those accesses (Section 3.3). Entries recorded by
// earlier steps of the same task are stale and ignored. The entry also
// caches the location's global cell so the sharded shadow map is
// consulted once per (task, location).
type localEntry struct {
	cell       *optCell
	readStep   dpst.NodeID
	writeStep  dpst.NodeID
	flags      uint8
	readLocks  []uint64
	writeLocks []uint64
}

// localSpace is a task's local metadata, kept in Task.Local. Besides the
// per-location entries it holds a task-private front cache for Par
// results (entries: 1 = serial, 2 = parallel), created only in the
// cached-walk query mode: the same step pair is queried for many
// locations in a row (e.g. a merge step against the previous level's
// steps for every array element), and the private map answers those
// repeats without touching the shared cache. In label mode a query is
// cheaper than the map hit, so no front cache is kept. rep is the task's
// private violation buffer, created on its first report.
type localSpace struct {
	m     map[sched.Loc]*localEntry
	par   map[uint64]int8
	rep   *reportBuffer
	chunk []localEntry
	used  int
}

// alloc bump-allocates a local entry from the space's current chunk.
func (ls *localSpace) alloc() *localEntry {
	if ls.used == len(ls.chunk) {
		ls.chunk = make([]localEntry, 64)
		ls.used = 0
	}
	e := &ls.chunk[ls.used]
	ls.used++
	return e
}

// Optimized is the paper's fixed-metadata atomicity checker.
type Optimized struct {
	q      *dpst.Query
	rep    *Reporter
	strict bool
	mem    shadow[optCell]
}

func newOptimized(opts Options) *Optimized {
	c := &Optimized{q: opts.Query, rep: opts.Reporter, strict: opts.StrictLockChecks}
	c.mem.initC = initOptCell
	c.mem.setGate(opts.Gate)
	return c
}

// Reporter implements Checker.
func (c *Optimized) Reporter() *Reporter { return c.rep }

// Stats implements Checker.
func (c *Optimized) Stats() Stats { return Stats{Locations: c.mem.count.Load()} }

// OnAcquire implements sched.Monitor; lockset maintenance lives in the
// runtime, so nothing to do.
func (c *Optimized) OnAcquire(*sched.Task, *sched.Mutex) {}

// OnRelease implements sched.Monitor.
func (c *Optimized) OnRelease(*sched.Task, *sched.Mutex) {}

func (c *Optimized) local(ts TaskState, loc sched.Loc) (*localSpace, *localEntry) {
	slot := ts.LocalSlot()
	ls, ok := (*slot).(*localSpace)
	if !ok {
		ls = &localSpace{m: make(map[sched.Loc]*localEntry)}
		if c.q.Caching() {
			ls.par = make(map[uint64]int8)
		}
		*slot = ls
	}
	e, ok := ls.m[loc]
	if !ok {
		e = ls.alloc()
		e.cell = c.mem.cell(loc)
		e.readStep, e.writeStep = dpst.None, dpst.None
		ls.m[loc] = e
	}
	return ls, e
}

// par answers a may-happen-in-parallel query through the current task's
// front cache, falling back to the shared query cache.
func (c *Optimized) par(sp *localSpace, a, b dpst.NodeID) bool {
	if a == b || a == dpst.None || b == dpst.None {
		return false
	}
	if !c.q.Caching() {
		return c.q.Par(a, b)
	}
	key := dpst.PairKey(a, b)
	if v, ok := sp.par[key]; ok {
		c.q.CountQuery(a, b)
		return v == 2
	}
	r := c.q.Par(a, b)
	v := int8(1)
	if r {
		v = 2
	}
	sp.par[key] = v
	return r
}

// intersect returns the common tokens of two locksets (nil when
// disjoint). Locksets are tiny (nesting depth), so quadratic is fine.
func intersect(a, b []uint64) []uint64 {
	var out []uint64
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

func copyLocks(a []uint64) []uint64 {
	if len(a) == 0 {
		return nil
	}
	return append([]uint64(nil), a...)
}

// checkTriple reports a violation if a two-access pattern (performed by
// patStep with types a1, a3 and common lockset patLocks) can be torn by
// the single access (inter, a2, interLocks) from a logically parallel
// step. In paper mode patLocks is always empty and the lockset test is
// vacuous, matching the paper's lock-free global space.
func (c *Optimized) checkTriple(sp *localSpace, loc sched.Loc, patStep dpst.NodeID, patLocks []uint64, a1, a3 AccessType, inter dpst.NodeID, a2 AccessType, interLocks []uint64) {
	if patStep == dpst.None || inter == dpst.None {
		return
	}
	if !Unserializable(a1, a2, a3) {
		return
	}
	if !identityDisjoint(patLocks, interLocks) {
		return
	}
	if !c.par(sp, patStep, inter) {
		return
	}
	tr := c.q.Tree()
	if sp.rep == nil {
		sp.rep = c.rep.buffer()
	}
	sp.rep.report(Violation{
		Loc:             loc,
		PatternStep:     patStep,
		InterleaverStep: inter,
		First:           a1,
		Middle:          a2,
		Last:            a3,
		PatternTask:     tr.Task(patStep),
		InterleaverTask: tr.Task(inter),
	})
}

// checkStoredPatterns checks the current access, in the interleaver
// role, against both stored entries of the given pattern kind.
func (c *Optimized) checkStoredPatterns(sp *localSpace, loc sched.Loc, cell *optCell, kind int, inter dpst.NodeID, a2 AccessType, interLocks []uint64) {
	if cell.patMask&(1<<kind) == 0 {
		return
	}
	t := patTypes[kind]
	for slot := 0; slot < 2; slot++ {
		c.checkTriple(sp, loc, cell.pat[kind][slot], cell.patLocks(kind, slot), t[0], t[1], inter, a2, interLocks)
	}
}

// checkCandidate checks a freshly formed two-access pattern against a
// stored single-access entry.
func (c *Optimized) checkCandidate(sp *localSpace, loc sched.Loc, cell *optCell, candStep dpst.NodeID, candLocks []uint64, a1, a3 AccessType, singleIdx int, a2 AccessType) {
	c.checkTriple(sp, loc, candStep, candLocks, a1, a3, cell.single[singleIdx], a2, cell.singleLocks(singleIdx))
}

// chooseSlot decides where a new step s goes among a two-entry history
// (slots holding steps a and b): slot 0, slot 1, or dropped (-1).
//
// An empty or series-related slot is replaced (Figure 8: a serial
// predecessor is subsumed by the newer access — any future step parallel
// to the old one is parallel to the new one, by the series-parallel
// structure and trace order). When s is parallel to both entries, the
// pair with the shallowest least common ancestor is kept — SPD3's
// spanning-reader discipline — which guarantees any future step parallel
// to a dropped step is parallel to one of the kept entries.
func (c *Optimized) chooseSlot(sp *localSpace, a, b, s dpst.NodeID, dab int32) int {
	if a == dpst.None || !c.par(sp, a, s) {
		return 0
	}
	if b == dpst.None || !c.par(sp, b, s) {
		return 1
	}
	das := c.q.PairDepth(a, s)
	if dab <= das {
		if dab <= c.q.PairDepth(b, s) {
			return -1 // the current pair already spans widest
		}
		return 0 // keep {b, s}
	}
	if das <= c.q.PairDepth(b, s) {
		return 1 // keep {a, s}
	}
	return 0 // keep {b, s}
}

// updateSingle installs (si, locks) into the single-entry pair (a, b);
// a is sR1 or sW1 and b the matching second slot.
func (c *Optimized) updateSingle(sp *localSpace, cell *optCell, a, b int, si dpst.NodeID, locks []uint64) {
	dIdx := a / 2 // (sR1,sR2) -> 0, (sW1,sW2) -> 1
	idx := a
	switch c.chooseSlot(sp, cell.single[a], cell.single[b], si, cell.singleD[dIdx]) {
	case 0:
	case 1:
		idx = b
	default:
		return
	}
	cell.single[idx] = si
	if cell.single[a] != dpst.None && cell.single[b] != dpst.None {
		cell.singleD[dIdx] = c.q.PairDepth(cell.single[a], cell.single[b])
	}
	if c.strict {
		cell.locks().single[idx] = copyLocks(locks)
	}
}

// updatePattern installs a freshly formed two-access pattern into the
// kind's entry pair.
func (c *Optimized) updatePattern(sp *localSpace, cell *optCell, kind int, candStep dpst.NodeID, candLocks []uint64) {
	slot := c.chooseSlot(sp, cell.pat[kind][0], cell.pat[kind][1], candStep, cell.patD[kind])
	if slot < 0 {
		return
	}
	cell.pat[kind][slot] = candStep
	cell.patMask |= 1 << kind
	if cell.pat[kind][0] != dpst.None && cell.pat[kind][1] != dpst.None {
		cell.patD[kind] = c.q.PairDepth(cell.pat[kind][0], cell.pat[kind][1])
	}
	if c.strict {
		cell.locks().pat[kind][slot] = candLocks
	}
}

// OnAccess implements sched.Monitor.
func (c *Optimized) OnAccess(t *sched.Task, loc sched.Loc, write bool) {
	c.Access(t, loc, write)
}

// Access checks one access with the dispatch of Figure 6.
func (c *Optimized) Access(ts TaskState, loc sched.Loc, write bool) {
	si := ts.StepNode()
	sp, ls := c.local(ts, loc)
	locks := ts.Lockset()
	cell := ls.cell
	if cell == nil {
		// The gate refused this location's metadata: the location is not
		// part of the analysis (graceful degradation). The nil cell is
		// cached in the local entry, so the refusal costs one shadow
		// lookup per task, not per access.
		return
	}

	localRead := ls.readStep == si
	localWrite := ls.writeStep == si
	// Offer-once fast path: a lock-free repeat whose offers and checks
	// have all happened is a no-op (see the flag documentation).
	if len(locks) == 0 {
		if write {
			if localWrite && ls.flags&fW != 0 && ls.flags&fWW != 0 &&
				(!localRead || ls.flags&fRW != 0) {
				return
			}
		} else {
			if localRead && ls.flags&fR != 0 && ls.flags&fRR != 0 &&
				(!localWrite || ls.flags&fWR != 0) {
				return
			}
		}
	}
	cell.mu.lock()
	defer cell.mu.unlock()
	if !localRead && !localWrite {
		if cell.single[sR1] == dpst.None && cell.single[sW1] == dpst.None {
			c.handleFirstAccess(cell, ls, si, write, locks)
		} else {
			c.handleFirstAccessCurrentTask(sp, loc, cell, ls, si, write, locks)
		}
		return
	}
	c.handleNonFirstAccess(sp, loc, cell, ls, si, write, locks, localRead, localWrite)
}

// setLocalRead records the step's first read in the local space,
// clearing the offer flags tied to the previous read entry.
func setLocalRead(ls *localEntry, si dpst.NodeID, locks []uint64) {
	ls.readStep, ls.readLocks = si, copyLocks(locks)
	ls.flags &^= fR | fRR | fRW
}

// setLocalWrite records the step's first write in the local space.
func setLocalWrite(ls *localEntry, si dpst.NodeID, locks []uint64) {
	ls.writeStep, ls.writeLocks = si, copyLocks(locks)
	ls.flags &^= fW | fWW | fWR
}

// markDone sets an offer flag when the access is lock-free (locked
// repeats always take the slow path, since their locksets vary).
func markDone(ls *localEntry, locks []uint64, flag uint8) {
	if len(locks) == 0 {
		ls.flags |= flag
	}
}

// handleFirstAccess is Figure 7: the very first access to the location
// by any task. No LCA query is performed.
func (c *Optimized) handleFirstAccess(cell *optCell, ls *localEntry, si dpst.NodeID, write bool, locks []uint64) {
	idx := sR1
	if write {
		idx = sW1
	}
	cell.single[idx] = si
	if c.strict {
		cell.locks().single[idx] = copyLocks(locks)
	}
	if write {
		setLocalWrite(ls, si, locks)
		markDone(ls, locks, fW)
	} else {
		setLocalRead(ls, si, locks)
		markDone(ls, locks, fR)
	}
}

// handleFirstAccessCurrentTask is Figure 8: the current step has not
// accessed the location before, but other tasks have. The only possible
// violation pairs the current access, as interleaver, with a stored
// global two-access pattern.
func (c *Optimized) handleFirstAccessCurrentTask(sp *localSpace, loc sched.Loc, cell *optCell, ls *localEntry, si dpst.NodeID, write bool, locks []uint64) {
	if write {
		setLocalWrite(ls, si, locks)
		c.checkStoredPatterns(sp, loc, cell, pWW, si, Write, locks)
		c.checkStoredPatterns(sp, loc, cell, pRW, si, Write, locks)
		c.checkStoredPatterns(sp, loc, cell, pRR, si, Write, locks)
		c.checkStoredPatterns(sp, loc, cell, pWR, si, Write, locks)
		c.updateSingle(sp, cell, sW1, sW2, si, locks)
		markDone(ls, locks, fW)
	} else {
		setLocalRead(ls, si, locks)
		c.checkStoredPatterns(sp, loc, cell, pWW, si, Read, locks)
		c.updateSingle(sp, cell, sR1, sR2, si, locks)
		markDone(ls, locks, fR)
	}
}

// handleNonFirstAccess is Figure 9: the current step has accessed the
// location before, so the local entry and the current access form a
// two-access pattern whose atomicity is checked against the global
// single-access entries, and the pattern is propagated to the global
// space. A pattern is only formed when the two accesses' locksets are
// disjoint — they sit in different critical sections (Section 3.3) — or
// unconditionally under the strict-lock extension, which then records
// the common lockset in the pattern.
//
// Beyond the literal Figure 9, the current access is also checked in the
// interleaver role against the stored global patterns, exactly as in
// Figure 8. Without this, a pattern formed by a parallel step is missed
// when the tearing access arrives later in the trace from a step that
// already accessed the location (the Figure 8 checks only run on a
// step's first access); the oracle-based differential tests exposed the
// gap.
func (c *Optimized) handleNonFirstAccess(sp *localSpace, loc sched.Loc, cell *optCell, ls *localEntry, si dpst.NodeID, write bool, locks []uint64, localRead, localWrite bool) {
	if write {
		c.checkStoredPatterns(sp, loc, cell, pWW, si, Write, locks)
		c.checkStoredPatterns(sp, loc, cell, pRW, si, Write, locks)
		c.checkStoredPatterns(sp, loc, cell, pRR, si, Write, locks)
		c.checkStoredPatterns(sp, loc, cell, pWR, si, Write, locks)
		if localRead {
			if common := intersect(ls.readLocks, locks); len(common) == 0 || c.strict {
				c.checkCandidate(sp, loc, cell, si, common, Read, Write, sW1, Write)
				c.checkCandidate(sp, loc, cell, si, common, Read, Write, sW2, Write)
				c.updatePattern(sp, cell, pRW, si, common)
				markDone(ls, locks, fRW)
			}
		}
		if localWrite {
			if common := intersect(ls.writeLocks, locks); len(common) == 0 || c.strict {
				c.checkCandidate(sp, loc, cell, si, common, Write, Write, sW1, Write)
				c.checkCandidate(sp, loc, cell, si, common, Write, Write, sW2, Write)
				c.checkCandidate(sp, loc, cell, si, common, Write, Write, sR1, Read)
				c.checkCandidate(sp, loc, cell, si, common, Write, Write, sR2, Read)
				c.updatePattern(sp, cell, pWW, si, common)
				markDone(ls, locks, fWW)
			}
		}
		c.updateSingle(sp, cell, sW1, sW2, si, locks)
		if !localWrite {
			setLocalWrite(ls, si, locks)
		}
		markDone(ls, locks, fW)
	} else {
		c.checkStoredPatterns(sp, loc, cell, pWW, si, Read, locks)
		if localRead {
			if common := intersect(ls.readLocks, locks); len(common) == 0 || c.strict {
				c.checkCandidate(sp, loc, cell, si, common, Read, Read, sW1, Write)
				c.checkCandidate(sp, loc, cell, si, common, Read, Read, sW2, Write)
				c.updatePattern(sp, cell, pRR, si, common)
				markDone(ls, locks, fRR)
			}
		}
		if localWrite {
			if common := intersect(ls.writeLocks, locks); len(common) == 0 || c.strict {
				c.checkCandidate(sp, loc, cell, si, common, Write, Read, sW1, Write)
				c.checkCandidate(sp, loc, cell, si, common, Write, Read, sW2, Write)
				c.updatePattern(sp, cell, pWR, si, common)
				markDone(ls, locks, fWR)
			}
		}
		c.updateSingle(sp, cell, sR1, sR2, si, locks)
		if !localRead {
			setLocalRead(ls, si, locks)
		}
		markDone(ls, locks, fR)
	}
}
