package checker_test

import (
	"strings"
	"testing"

	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/sched"
)

// These tests exercise lock-handling corners beyond the Figure 11/12
// scenarios, for both checker algorithms.

// TestThreeTaskLockChain: the pattern task splits its pair over two
// critical sections; writes from logically parallel steps (S3, S12) are
// feasible interleavers, while the strictly serial S11 never is.
func TestThreeTaskLockChain(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			tree, s11, s12, s2, s3 := figure2()
			c := newChecker(t, tree, alg, false)
			const lockL = 1
			c.Access(&fakeTask{step: s11}, locX, true) // serial predecessor
			t2 := &fakeTask{step: s2}
			t2.locks = []uint64{lockTok(lockL, 1)}
			c.Access(t2, locX, false)
			t2.locks = []uint64{lockTok(lockL, 2)}
			c.Access(t2, locX, true)
			c.Access(&fakeTask{step: s3, locks: []uint64{lockTok(lockL, 3)}}, locX, true)
			c.Access(&fakeTask{step: s12, locks: []uint64{lockTok(lockL, 4)}}, locX, true)
			vs := c.Reporter().Violations()
			for _, v := range vs {
				if v.InterleaverStep == s11 || v.PatternStep == s11 {
					t.Errorf("serial step s11 involved in a violation: %v", v)
				}
			}
			found := false
			for _, v := range vs {
				if v.PatternStep == s2 && v.InterleaverStep == s3 {
					found = true
				}
			}
			if !found {
				t.Fatalf("missing s2/s3 violation: %v", vs)
			}
		})
	}
}

// TestNestedLockPairSuppressed: a pair holding an outer lock across both
// inner critical sections is never promoted in paper mode, because the
// outer acquisition token is common to both accesses.
func TestNestedLockPairSuppressed(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			tree, _, _, s2, s3 := figure2()
			c := newChecker(t, tree, alg, false)
			const lockL, lockM = 1, 2
			outer := lockTok(lockL, 1)
			t2 := &fakeTask{step: s2}
			t2.locks = []uint64{outer, lockTok(lockM, 2)}
			c.Access(t2, locX, false)
			t2.locks = []uint64{outer, lockTok(lockM, 3)} // M re-acquired, L still held
			c.Access(t2, locX, true)
			c.Access(&fakeTask{step: s3, locks: []uint64{lockTok(lockM, 4)}}, locX, true)
			if n := c.Reporter().Count(); n != 0 {
				t.Fatalf("paper mode must suppress the L-protected pair, got %d: %v",
					n, c.Reporter().Violations())
			}
		})
	}
}

// TestNestedLockStrictDetects: the same program under strict mode
// reports the tear, because the interleaver holds only M while the
// pair's common lockset is {L}.
func TestNestedLockStrictDetects(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			tree, _, _, s2, s3 := figure2()
			c := newChecker(t, tree, alg, true)
			const lockL, lockM = 1, 2
			outer := lockTok(lockL, 1)
			t2 := &fakeTask{step: s2}
			t2.locks = []uint64{outer, lockTok(lockM, 2)}
			c.Access(t2, locX, false)
			t2.locks = []uint64{outer, lockTok(lockM, 3)}
			c.Access(t2, locX, true)
			c.Access(&fakeTask{step: s3, locks: []uint64{lockTok(lockM, 4)}}, locX, true)
			if c.Reporter().Count() == 0 {
				t.Fatal("strict mode must report the M-only interleaver")
			}
			// ... but stays silent when the interleaver also holds L.
			c2 := newChecker(t, tree, alg, true)
			t2b := &fakeTask{step: s2}
			t2b.locks = []uint64{outer, lockTok(lockM, 5)}
			c2.Access(t2b, locX, false)
			t2b.locks = []uint64{outer, lockTok(lockM, 6)}
			c2.Access(t2b, locX, true)
			c2.Access(&fakeTask{step: s3, locks: []uint64{lockTok(lockL, 7), lockTok(lockM, 8)}}, locX, true)
			if n := c2.Reporter().Count(); n != 0 {
				t.Fatalf("interleaver holding L cannot tear an L-protected pair, got %d", n)
			}
		})
	}
}

// TestLockedGroupClean: a multi-variable group fully guarded by one lock
// stays clean in both modes even across many tasks.
func TestLockedGroupClean(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			for _, strict := range []bool{false, true} {
				tree, _, s12, s2, s3 := figure2()
				c := newChecker(t, tree, alg, strict)
				const group sched.Loc = 9
				const lockL = 1
				acq := uint64(1)
				for _, s := range []*fakeTask{{step: s2}, {step: s3}, {step: s12}} {
					s.locks = []uint64{lockTok(lockL, acq)}
					acq++
					c.Access(s, group, false)
					c.Access(s, group, true)
					s.locks = nil
				}
				if n := c.Reporter().Count(); n != 0 {
					t.Fatalf("strict=%v: locked group reported %d violations", strict, n)
				}
			}
		})
	}
}

// TestViolationStringMentionsParts: diagnostics must carry the location,
// the steps, and the access kinds.
func TestViolationStringMentionsParts(t *testing.T) {
	v := checker.Violation{
		Loc: 7, PatternStep: 3, InterleaverStep: 9,
		First: checker.Write, Middle: checker.Write, Last: checker.Read,
		PatternTask: 1, InterleaverTask: 2,
	}
	out := v.String()
	for _, want := range []string{"loc 7", "step 3", "step 9", "task 1", "task 2", "W"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q: %s", want, out)
		}
	}
	if v.Kind() != "W-W-R" {
		t.Errorf("Kind = %s", v.Kind())
	}
}
