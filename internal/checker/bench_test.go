package checker_test

import (
	"fmt"
	"testing"

	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
)

// benchTask is a minimal TaskState for driving the checker hot path
// directly, without the scheduler: the benchmark controls the step and
// the filter epoch by hand.
type benchTask struct {
	step  dpst.NodeID
	epoch uint64
	locks []uint64
	local any
}

func (b *benchTask) StepNode() dpst.NodeID { return b.step }
func (b *benchTask) Lockset() []uint64     { return b.locks }
func (b *benchTask) LocalSlot() *any       { return &b.local }
func (b *benchTask) FilterEpoch() uint64   { return b.epoch }

func (b *benchTask) AccessState() (*any, dpst.NodeID, uint64, []uint64) {
	return &b.local, b.step, b.epoch, b.locks
}

// benchChecker builds a label-mode checker over a two-task tree, the
// configuration the figure benchmarks run, and returns the checker plus
// a task positioned on a step that has a parallel sibling (so dispatch
// runs real Par queries, not the a==b early-out).
func benchChecker(disableFilter bool) (checker.Checker, *benchTask) {
	tree := dpst.NewArrayTree()
	root := tree.NewNode(dpst.None, dpst.Finish, 0)
	a1 := tree.NewNode(root, dpst.Async, 0)
	s1 := tree.NewNode(a1, dpst.Step, 1)
	a2 := tree.NewNode(root, dpst.Async, 0)
	tree.NewNode(a2, dpst.Step, 2)
	c := checker.New(checker.Options{
		Query:               dpst.NewQueryMode(tree, dpst.ModeLabels),
		Reporter:            checker.NewReporter(0),
		DisableAccessFilter: disableFilter,
	})
	return c, &benchTask{step: s1, epoch: 1}
}

// onOff runs the benchmark body under both filter settings.
func onOff(b *testing.B, body func(b *testing.B, disableFilter bool)) {
	for _, off := range []bool{false, true} {
		name := "filter"
		if off {
			name = "nofilter"
		}
		b.Run(name, func(b *testing.B) { body(b, off) })
	}
}

// BenchmarkAccessFirstTouch: every access is the task's first to its
// location (a fresh task every 512 accesses, locations cycling in a
// fixed window) — the raycast-at-grain-1 profile where neither the
// local map nor the filter can ever hit. Measures pure filter overhead
// plus per-task setup amortized at a realistic rate.
func BenchmarkAccessFirstTouch(b *testing.B) {
	onOff(b, func(b *testing.B, off bool) {
		c, tk := benchChecker(off)
		const window = 1 << 14
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i%512 == 0 {
				tk = &benchTask{step: tk.step, epoch: tk.epoch}
			}
			c.Access(tk, sched.Loc(1+i%window), i%4 == 3)
		}
	})
}

// BenchmarkAccessRepeat: the same location hammered by one step,
// lock-free — after the pattern offers complete, every access is
// answered by the filter word (or the offer-once flags when disabled).
func BenchmarkAccessRepeat(b *testing.B) {
	onOff(b, func(b *testing.B, off bool) {
		c, tk := benchChecker(off)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Access(tk, 1, i%2 == 1)
		}
	})
}

// BenchmarkAccessLoopReuse: a step sweeping a working set of 48
// locations with a load-modify-store per element, lock-free — the
// sort/karatsuba inner-loop profile. The working set fits the cache, so
// the warm-up window enables the filter, and the sweep exercises most
// of its 64 entries.
func BenchmarkAccessLoopReuse(b *testing.B) {
	onOff(b, func(b *testing.B, off bool) {
		c, tk := benchChecker(off)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			loc := sched.Loc(1 + i%48)
			c.Access(tk, loc, false)
			c.Access(tk, loc, true)
		}
	})
}

// BenchmarkAccessLockedAdd: the kmeans merge profile — read+write pairs
// to a small accumulator set under a lock whose acquire/release bumps
// the epoch every round, so the redundancy word never matches but the
// location cache still resolves the local entry.
func BenchmarkAccessLockedAdd(b *testing.B) {
	onOff(b, func(b *testing.B, off bool) {
		c, tk := benchChecker(off)
		tk.locks = []uint64{7}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			loc := sched.Loc(1 + i%8)
			if i%8 == 0 {
				tk.epoch++ // lock re-acquired: lockset version advances
			}
			c.Access(tk, loc, false)
			c.Access(tk, loc, true)
		}
	})
}

// BenchmarkAccessEpochChurn: a new step region every few accesses over
// a reused location set — the filter word is perpetually stale and only
// the cached *localEntry can pay.
func BenchmarkAccessEpochChurn(b *testing.B) {
	onOff(b, func(b *testing.B, off bool) {
		c, tk := benchChecker(off)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i%4 == 0 {
				tk.epoch++
			}
			c.Access(tk, sched.Loc(1+i%32), false)
		}
	})
}

func ExampleStats_filterCounters() {
	c, tk := benchChecker(false)
	// A warm-up window of repeats over a handful of locations keeps the
	// working set inside the cache, so the filter enables; the priming
	// dispatches count as misses and the steady-state repeats as hits.
	for i := 0; i < 80; i++ {
		c.Access(tk, sched.Loc(1+i%8), false)
		c.Access(tk, sched.Loc(1+i%8), false)
	}
	for i := 0; i < 32; i++ {
		c.Access(tk, 1, false)
	}
	// A location first touched after enablement dispatches in full: a miss.
	c.Access(tk, 100, false)
	st := c.Stats()
	fmt.Println(st.FilterHits > 0, st.FilterMisses > 0)
	// Output: true true
}
