// Package checker implements the paper's dynamic atomicity-violation
// analysis for task parallel programs.
//
// The analysis consumes the instrumented events of one execution — shared
// memory accesses, lock acquisitions/releases, and the series-parallel
// structure captured in the DPST — and reports every triple of accesses
// (A1, A2, A3) such that A1 and A3 are performed by one step node, A2 is
// performed by a logically parallel step node, and the three access types
// form a conflict-unserializable pattern (Figure 4 of the paper). Because
// parallelism is judged on the DPST rather than on the observed
// interleaving, violations that would only manifest in other schedules of
// the same input are detected from a single trace.
//
// Two checkers are provided. Basic keeps the full access history of every
// location (Figure 3): simple, and the reference for differential tests,
// but with metadata proportional to the number of dynamic accesses.
// Optimized is the paper's contribution (Figures 6-9): a fixed 12-entry
// global metadata space per location (single-access entries R1, R2, W1,
// W2 and two-access patterns RR, RW, WR, WW) plus a small per-task local
// space holding the current step's first read and write, used as an
// interim buffer until a second access forms a two-access pattern.
//
// Lock handling follows Section 3.3: local entries carry the lockset held
// at the access, locks are versioned per acquisition so re-acquiring a
// lock yields a fresh name, and a two-access pattern is only formed when
// the two accesses' locksets are disjoint (they sit in different critical
// sections).
package checker

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"github.com/taskpar/avd/internal/chaos"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/obs"
	"github.com/taskpar/avd/internal/sched"
)

// AccessType distinguishes reads from writes.
type AccessType uint8

// The two access types.
const (
	Read AccessType = iota
	Write
)

// String returns "R" or "W".
func (a AccessType) String() string {
	if a == Write {
		return "W"
	}
	return "R"
}

// Unserializable reports whether the access triple (a1, a2, a3) — a1 and
// a3 by one step node, a2 interleaved from a logically parallel step — is
// conflict-unserializable. Per Figure 4 the serializable triples are
// exactly RRR, RRW, and WRR: a read interleaver commutes past whichever
// endpoint is a read.
func Unserializable(a1, a2, a3 AccessType) bool {
	return !(a2 == Read && (a1 == Read || a3 == Read))
}

// identityDisjoint reports whether the interleaver's lockset shares no
// lock identity with the pattern's common lockset. Only the strict-lock
// extension produces non-empty common locksets; an interleaver holding
// the same mutex (any acquisition of it) cannot execute inside the
// pattern's critical section, so such triples are not violations.
func identityDisjoint(common, inter []uint64) bool {
	for _, x := range common {
		for _, y := range inter {
			if sched.LockIdentity(x) == sched.LockIdentity(y) {
				return false
			}
		}
	}
	return true
}

// spinLock is a tiny test-and-set lock for the very short per-cell
// critical sections of the optimized checker (a few hundred
// nanoseconds): under the producer/consumer ping-pong typical of hot
// shared locations, spinning briefly beats parking on a futex.
type spinLock struct {
	v atomic.Int32
}

func (l *spinLock) lock() {
	for i := 0; ; i++ {
		if l.v.Load() == 0 && l.v.CompareAndSwap(0, 1) {
			return
		}
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
}

func (l *spinLock) unlock() {
	l.v.Store(0)
}

// Algorithm selects the checker variant.
type Algorithm uint8

// Available checker algorithms.
const (
	// AlgOptimized is the paper's fixed-metadata checker (Figures 6-9).
	AlgOptimized Algorithm = iota
	// AlgBasic is the unbounded access-history checker (Figure 3).
	AlgBasic
)

// String names the algorithm.
func (a Algorithm) String() string {
	if a == AlgBasic {
		return "basic"
	}
	return "optimized"
}

// Options configures a checker.
type Options struct {
	// Algorithm selects the basic or optimized checker.
	Algorithm Algorithm
	// Query answers may-happen-in-parallel queries; required.
	Query *dpst.Query
	// Reporter collects violations; a fresh one is created when nil.
	Reporter *Reporter
	// DisableAccessFilter turns off the optimized checker's
	// redundant-access filter (the per-task epoch filter and
	// direct-mapped location cache in front of the dispatch), for
	// ablation benchmarks and differential testing. The basic checker
	// has no filter and ignores the flag.
	DisableAccessFilter bool
	// StrictLockChecks enables the extension described in DESIGN.md:
	// two-access patterns whose accesses share a lock are still tracked
	// (with their common lockset) so that unsynchronized interleavers
	// that could split the critical section are reported. Off by default
	// to match the paper.
	StrictLockChecks bool
	// Gate arbitrates the checker's metadata allocations against a memory
	// budget and the fault-injection plane; nil admits everything. When
	// the gate denies a location's shadow cell, the checker degrades
	// gracefully: that location is no longer admitted to the analysis and
	// its accesses are ignored, counted as drops on the gate.
	Gate *chaos.Gate
	// Batch wraps the optimized checker in the step-granular batched
	// dispatcher: accesses are coalesced per task, deduplicated, and
	// dispatched at step/lock boundaries with the epoch, lockset, and
	// filter state read once per batch. Requires the event source to
	// deliver the structure and lock callbacks (the live scheduler and
	// the trace replayer both do). Ignored by the basic checker.
	Batch bool
	// DisableWindowElision keeps the batched dispatcher from installing
	// the handle-layer window-saturation cache (sched.Elide) into tasks:
	// every access then reaches the batch buffer and dedup table, for
	// ablation benchmarks and differential tests. It is also forced on
	// by event sources that must observe every access themselves (the
	// trace recorder). Meaningless outside batched dispatch.
	DisableWindowElision bool
	// Hub receives batch-flush observability events; nil is ignored.
	Hub *obs.Hub
}

// TaskState is the per-task view the checkers consume: the current step
// node, the lockset currently held, and a scratch slot for per-task
// metadata. *sched.Task implements it; the trace replayer provides a
// synthetic implementation.
type TaskState interface {
	// StepNode returns the step node covering the current access.
	StepNode() dpst.NodeID
	// Lockset returns the acquisition tokens currently held (read-only).
	Lockset() []uint64
	// LocalSlot returns a pointer to monitor-owned per-task storage.
	LocalSlot() *any
	// FilterEpoch returns a version word that changes whenever the task
	// moves to a new step node or changes its lockset. The checker's
	// redundant-access filter trusts a cached redundancy fact only while
	// the epoch is unchanged, so implementations must never reuse a
	// value across a step transition or lock operation.
	FilterEpoch() uint64
	// AccessState returns the four facts above in one call — the hot
	// path pays one indirect call instead of four. The results must be
	// exactly what the individual getters would have returned, in order
	// (LocalSlot, StepNode, FilterEpoch, Lockset).
	AccessState() (slot *any, step dpst.NodeID, epoch uint64, locks []uint64)
}

// ElideHost is the optional TaskState extension of event sources whose
// handle layer carries a window-elision cache (*sched.Task and the
// trace replayer's task state both implement it). The batched checker
// type-asserts it once per task and installs a sched.Elide through the
// returned slot; task states without the interface simply never elide.
type ElideHost interface {
	// ElideSlot returns the address of the task's elision-cache pointer.
	ElideSlot() **sched.Elide
}

// Checker is the common interface of both algorithms; it extends
// sched.Monitor with result accessors and a TaskState-based entry point
// for offline trace replay.
type Checker interface {
	sched.Monitor
	// Access checks one instrumented access on behalf of ts.
	Access(ts TaskState, loc sched.Loc, write bool)
	// Reporter returns the violation collector.
	Reporter() *Reporter
	// Stats returns checker-side statistics.
	Stats() Stats
}

// Stats are the checker-side measurements of Table 1.
type Stats struct {
	// Locations is the number of unique instrumented locations accessed.
	Locations int64
	// FilterHits counts accesses skipped by the redundant-access filter
	// (epoch-word hits plus offer-once fast-path skips); FilterMisses
	// counts accesses that consulted the filter and fell through to the
	// full dispatch. Both are zero when the filter is disabled or for
	// the basic checker. Under batched dispatch the same pair counts the
	// batch deduplicator's skips and full dispatches.
	FilterHits   int64
	FilterMisses int64
	// BatchFlushes counts drained per-task access batches and
	// BatchedAccesses the accesses dispatched through them; both are zero
	// unless batched dispatch is enabled.
	BatchFlushes    int64
	BatchedAccesses int64
	// WindowElisions counts accesses the handle layer elided through the
	// window-saturation cache — they never reached the batch buffer.
	// Zero unless batched dispatch is enabled with elision on.
	WindowElisions int64
}

// New creates a checker.
func New(opts Options) Checker {
	if opts.Query == nil {
		panic("checker: Options.Query is required")
	}
	if opts.Reporter == nil {
		opts.Reporter = NewReporter(0)
	}
	if opts.Algorithm == AlgBasic {
		return newBasic(opts)
	}
	if opts.Batch {
		return newBatched(opts)
	}
	return newOptimized(opts)
}

// shadow is the shadow memory mapping locations to metadata cells. The
// value type is generic over the two checkers' cell types.
//
// Location IDs are allocated densely by the runtime, so the map is an
// atomic two-level table rather than a locked hash map: a fixed top-level
// directory indexed by the location's high bits holds atomically
// published leaves, and each leaf holds atomically published cell
// pointers. The steady-state lookup — by far the hottest checker
// operation after the MHP query itself — is therefore two dependent
// atomic loads with no lock, no hashing, and no interface dispatch. The
// slow path keeps the bump allocator: one heap allocation per 256
// locations instead of one per location, which matters for workloads
// that touch each location only once (blackscholes).
type shadow[C any] struct {
	top   [shadowTopSize]atomic.Pointer[shadowLeaf[C]]
	count atomic.Int64
	// initC initializes a freshly allocated cell; may be nil when the
	// zero value is ready to use.
	initC func(*C)
	// gate arbitrates slow-path allocations (leaves, cell chunks, far
	// entries) against the memory budget and fault plane; nil admits
	// everything. cellBytes is one cell's size, charged per chunk.
	gate      *chaos.Gate
	cellBytes int64

	mu    sync.Mutex // guards the slow path: leaf creation and the allocator
	chunk []C
	used  int
	far   map[sched.Loc]*C // overflow for IDs beyond the direct-index range
}

type shadowLeaf[C any] struct {
	cells [shadowLeafSize]atomic.Pointer[C]
}

const (
	shadowChunk = 256

	shadowLeafBits = 12 // 4096 cells per leaf
	shadowLeafSize = 1 << shadowLeafBits
	shadowLeafMask = shadowLeafSize - 1

	// shadowTopSize bounds the directory: 1<<15 leaves of 1<<12 cells
	// direct-index 2^27 locations in 256 KiB of pointers; anything
	// beyond falls back to a locked overflow map.
	shadowTopSize = 1 << 15

	// shadowLeafBytes is the tracked cost of one leaf (a page of cell
	// pointers); farEntryBytes estimates one overflow-map entry.
	shadowLeafBytes = shadowLeafSize * 8
	farEntryBytes   = 48
)

// setGate attaches an allocation gate; must be called before any access.
func (s *shadow[C]) setGate(g *chaos.Gate) {
	s.gate = g
	var z C
	s.cellBytes = int64(unsafe.Sizeof(z))
}

func (s *shadow[C]) cell(loc sched.Loc) *C {
	if li := uint64(loc) >> shadowLeafBits; li < shadowTopSize {
		if leaf := s.top[li].Load(); leaf != nil {
			if c := leaf.cells[uint64(loc)&shadowLeafMask].Load(); c != nil {
				return c
			}
		}
	}
	return s.cellSlow(loc)
}

// cellSlow creates the location's cell (and any missing leaf). A nil
// return means the gate refused the allocation: the location is not
// admitted, and the caller must skip the access.
func (s *shadow[C]) cellSlow(loc sched.Loc) *C {
	s.mu.Lock()
	defer s.mu.Unlock()
	li := uint64(loc) >> shadowLeafBits
	if li >= shadowTopSize {
		if c, ok := s.far[loc]; ok {
			return c
		}
		if !s.gate.Allow(chaos.SiteShadowFar, farEntryBytes) {
			return nil
		}
		c := s.alloc()
		if c == nil {
			return nil
		}
		if s.far == nil {
			s.far = make(map[sched.Loc]*C)
		}
		s.far[loc] = c
		return c
	}
	leaf := s.top[li].Load()
	if leaf == nil {
		if !s.gate.Allow(chaos.SiteShadowLeaf, shadowLeafBytes) {
			return nil
		}
		leaf = new(shadowLeaf[C])
		s.top[li].Store(leaf)
	}
	slot := &leaf.cells[uint64(loc)&shadowLeafMask]
	if c := slot.Load(); c != nil {
		return c
	}
	c := s.alloc()
	if c == nil {
		return nil
	}
	// The atomic publish orders the cell's initialization before any
	// fast-path reader can observe the pointer.
	slot.Store(c)
	return c
}

// alloc bump-allocates and initializes a fresh cell; callers hold s.mu.
// Returns nil when the gate refuses a fresh chunk.
func (s *shadow[C]) alloc() *C {
	if s.used == len(s.chunk) {
		if !s.gate.Allow(chaos.SiteShadowChunk, shadowChunk*s.cellBytes) {
			return nil
		}
		s.chunk = make([]C, shadowChunk)
		s.used = 0
	}
	c := &s.chunk[s.used]
	s.used++
	if s.initC != nil {
		s.initC(c)
	}
	s.count.Add(1)
	return c
}
