package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func decodeSpanExport(t *testing.T, spans []RunSpan, now int64) perfTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := ExportRunSpans(spans, now, &buf); err != nil {
		t.Fatal(err)
	}
	var doc perfTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	return doc
}

// Two runs queued concurrently on one shard must export as ID-matched
// async spans (ph b/e) — B/E duration spans would nest wrongly — while
// execution spans stay serial B/E and terminal states become instants.
func TestExportRunSpansOverlappingQueues(t *testing.T) {
	spans := []RunSpan{
		{ID: 1, Shard: 0, Status: "DONE", Attempts: 1, Created: 1000, Started: 5000, Finished: 9000, Violations: 2},
		{ID: 2, Shard: 0, Status: "DONE", Attempts: 2, Created: 2000, Started: 9000, Finished: 12000},
	}
	doc := decodeSpanExport(t, spans, 20000)

	var asyncB, asyncE, durB, durE, inst int
	ids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "b":
			asyncB++
			ids[ev.ID]++
		case "e":
			asyncE++
			ids[ev.ID]++
		case "B":
			durB++
		case "E":
			durE++
		case "i":
			inst++
		}
		if ev.Ph != "M" && ev.Pid != pidServer {
			t.Fatalf("span event on pid %d, want %d: %+v", ev.Pid, pidServer, ev)
		}
	}
	if asyncB != 2 || asyncE != 2 {
		t.Fatalf("async queued spans b=%d e=%d, want 2/2", asyncB, asyncE)
	}
	for id, n := range ids {
		if n != 2 {
			t.Fatalf("async span %q has %d events, want matched pair", id, n)
		}
	}
	if durB != 2 || durE != 2 {
		t.Fatalf("execution spans B=%d E=%d, want 2/2", durB, durE)
	}
	if inst != 2 {
		t.Fatalf("%d terminal instants, want 2", inst)
	}
	if doc.OtherData["runs"].(float64) != 2 || doc.OtherData["terminal"].(float64) != 2 {
		t.Fatalf("otherData: %+v", doc.OtherData)
	}
}

// Open runs draw up to the reference clock: a still-queued run gets its
// async end at now, a still-running one its E at now, and neither emits
// a terminal instant.
func TestExportRunSpansOpenRuns(t *testing.T) {
	const now = 50000
	spans := []RunSpan{
		{ID: 3, Shard: 1, Status: "SUBMITTED", Created: 1000},
		{ID: 4, Shard: 1, Status: "RUNNING", Created: 2000, Started: 3000},
	}
	doc := decodeSpanExport(t, spans, now)

	wantTs := float64(now-1000) / 1e3
	var b, e, inst int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "b":
			b++
		case "e":
			e++
			if ev.ID == "run-3" && ev.Ts != wantTs {
				t.Fatalf("open queued span ends at %v, want now (%v)", ev.Ts, wantTs)
			}
		case "i":
			inst++
		case "E":
			if got := float64(now-1000) / 1e3; ev.Ts != got {
				t.Fatalf("open execution span ends at %v, want now (%v)", ev.Ts, got)
			}
		}
	}
	if b != 2 || e != 2 {
		t.Fatalf("async pairs b=%d e=%d", b, e)
	}
	if inst != 0 {
		t.Fatalf("%d terminal instants for non-terminal runs", inst)
	}
	if doc.OtherData["terminal"].(float64) != 0 {
		t.Fatalf("otherData: %+v", doc.OtherData)
	}
}

// Shard thread-name metadata is emitted once per shard, and timestamps
// normalize to the earliest admission.
func TestExportRunSpansMetadata(t *testing.T) {
	spans := []RunSpan{
		{ID: 1, Shard: 0, Status: "DONE", Created: 7000, Started: 8000, Finished: 9000},
		{ID: 2, Shard: 2, Status: "DONE", Created: 5000, Started: 6000, Finished: 7000},
	}
	doc := decodeSpanExport(t, spans, 10000)
	threads := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			threads[ev.Args["name"].(string)] = true
		}
		if ev.Ph == "b" && ev.ID == "run-2" && ev.Ts != 0 {
			t.Fatalf("earliest admission not normalized to 0: %v", ev.Ts)
		}
	}
	if !threads["shard 0"] || !threads["shard 2"] {
		t.Fatalf("shard tracks missing: %v", threads)
	}
}
