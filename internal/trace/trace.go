// Package trace models execution traces of task parallel programs: a
// sequentially consistent sequence of task-management, memory, and lock
// events. It provides the paper's trace generator — parameterized random
// structured programs scheduled into valid interleavings — and an offline
// replayer that rebuilds the DPST from a trace and drives any checker,
// so detectors can be exercised deterministically and differentially
// without a live scheduler.
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/taskpar/avd/internal/sched"
)

// Kind enumerates trace event kinds.
type Kind uint8

// Trace event kinds.
const (
	// KSpawn records task Task spawning task Child.
	KSpawn Kind = iota
	// KFinishBegin opens a finish scope in task Task.
	KFinishBegin
	// KFinishEnd closes the innermost finish scope of task Task; it
	// appears only after all tasks spawned in the scope have ended.
	KFinishEnd
	// KAccess is a shared-memory access by task Task.
	KAccess
	// KAcquire is a lock acquisition by task Task.
	KAcquire
	// KRelease is a lock release by task Task.
	KRelease
	// KTaskEnd marks the completion of task Task.
	KTaskEnd
	// KInject records a chaos-plane fault injection against task Task
	// (Fault distinguishes steal/delay/panic). Purely an annotation for
	// observability overlays: replay ignores it.
	KInject
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case KSpawn:
		return "spawn"
	case KFinishBegin:
		return "finish-begin"
	case KFinishEnd:
		return "finish-end"
	case KAccess:
		return "access"
	case KAcquire:
		return "acquire"
	case KRelease:
		return "release"
	case KTaskEnd:
		return "task-end"
	case KInject:
		return "inject"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one trace record. Field use depends on Kind: Child for
// KSpawn; Loc and Write for KAccess; Lock and CS for KAcquire/KRelease;
// Fault for KInject. Ts and W annotate any event with wall-clock time
// and the recording worker; both are optional (zero when the trace was
// generated rather than recorded) and ignored by replay, so traces from
// older recordings decode unchanged.
type Event struct {
	Kind  Kind      `json:"k"`
	Task  int32     `json:"t"`
	Child int32     `json:"c,omitempty"`
	Loc   sched.Loc `json:"l,omitempty"`
	Write bool      `json:"w,omitempty"`
	Lock  uint32    `json:"m,omitempty"`
	CS    uint64    `json:"cs,omitempty"`
	// Ts is nanoseconds since the start of the recording (0 = unknown).
	Ts int64 `json:"ts,omitempty"`
	// W is the recording scheduler worker plus one, so that 0 still
	// means unknown under omitempty; use Worker to decode.
	W int32 `json:"wk,omitempty"`
	// Fault is the injected fault kind of a KInject event (the integer
	// value of chaos.Fault).
	Fault uint8 `json:"f,omitempty"`
}

// Worker returns the scheduler worker that emitted the event, or -1
// when unknown.
func (e Event) Worker() int { return int(e.W) - 1 }

// Trace is one observed schedule of a task parallel execution. Task 0 is
// the root task and is implicitly started; every other task appears in a
// KSpawn event before its own events.
type Trace struct {
	Tasks  int32   `json:"tasks"`
	Events []Event `json:"events"`
}

// Encode writes the trace as JSON to w.
func (tr *Trace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// ErrTooLarge reports an encoded trace rejected by a size limit before
// any allocation proportional to its claimed contents.
var ErrTooLarge = errors.New("trace: encoded trace exceeds size limit")

// ErrTruncated reports an encoded trace that ends mid-stream (a partial
// upload or a cut-off file).
var ErrTruncated = errors.New("trace: truncated input")

// Decode reads a JSON trace from r.
func Decode(r io.Reader) (*Trace, error) {
	return DecodeLimited(r, 0)
}

// DecodeLimited reads a JSON trace from r, refusing inputs whose
// encoding exceeds maxBytes (0 = unlimited) with ErrTooLarge before the
// decoder allocates storage proportional to the excess, and mapping
// mid-stream EOF to ErrTruncated. It is the only decode path meant for
// untrusted input: the byte cap bounds the event slice (each encoded
// event costs >= several bytes), and Validate's task-count bound runs
// before any allocation sized by the header.
func DecodeLimited(r io.Reader, maxBytes int64) (*Trace, error) {
	var lr *io.LimitedReader
	if maxBytes > 0 {
		// One sentinel byte past the cap distinguishes "exactly at the
		// limit" from "over it" without reading the whole excess.
		lr = &io.LimitedReader{R: r, N: maxBytes + 1}
		r = lr
	}
	var tr Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		if lr != nil && lr.N <= 0 {
			return nil, fmt.Errorf("trace: decode: %w (limit %d bytes)", ErrTooLarge, maxBytes)
		}
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("trace: decode: %w: %v", ErrTruncated, err)
		}
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if lr != nil {
		// The decoder reads ahead, so subtract what it buffered past the
		// decoded value before judging the value's own size.
		buffered, _ := io.Copy(io.Discard, dec.Buffered())
		if maxBytes+1-lr.N-buffered > maxBytes {
			return nil, fmt.Errorf("trace: decode: %w (limit %d bytes)", ErrTooLarge, maxBytes)
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// Validate performs structural sanity checks: tasks spawned before use,
// finish scopes balanced, locks released by their holder. The bounds on
// Tasks are checked before any allocation sized by it, so a corrupt or
// hostile trace (negative task count, or a count absurdly larger than
// the event stream could introduce) fails cleanly instead of panicking
// or exhausting memory.
func (tr *Trace) Validate() error {
	if tr.Tasks < 1 {
		return fmt.Errorf("trace: no tasks")
	}
	// Every task beyond the root must be introduced by its own KSpawn
	// event, so a valid trace never has more tasks than events+1.
	if int64(tr.Tasks) > int64(len(tr.Events))+1 {
		return fmt.Errorf("trace: %d tasks declared but only %d events", tr.Tasks, len(tr.Events))
	}
	started := make([]bool, tr.Tasks)
	depth := make([]int, tr.Tasks)
	holder := make(map[uint32]int32)
	started[0] = true
	for i, e := range tr.Events {
		if e.Task < 0 || e.Task >= tr.Tasks || !started[e.Task] {
			return fmt.Errorf("trace: event %d: task %d not started", i, e.Task)
		}
		switch e.Kind {
		case KSpawn:
			if e.Child <= 0 || e.Child >= tr.Tasks || started[e.Child] {
				return fmt.Errorf("trace: event %d: bad child %d", i, e.Child)
			}
			started[e.Child] = true
		case KFinishBegin:
			depth[e.Task]++
		case KFinishEnd:
			depth[e.Task]--
			if depth[e.Task] < 0 {
				return fmt.Errorf("trace: event %d: unbalanced finish in task %d", i, e.Task)
			}
		case KAcquire:
			if h, held := holder[e.Lock]; held {
				return fmt.Errorf("trace: event %d: lock %d already held by task %d", i, e.Lock, h)
			}
			holder[e.Lock] = e.Task
		case KRelease:
			if h, held := holder[e.Lock]; !held || h != e.Task {
				return fmt.Errorf("trace: event %d: lock %d not held by task %d", i, e.Lock, e.Task)
			}
			delete(holder, e.Lock)
		case KAccess, KTaskEnd, KInject:
		default:
			return fmt.Errorf("trace: event %d: unknown kind %d", i, e.Kind)
		}
	}
	if len(holder) != 0 {
		return fmt.Errorf("trace: locks left held at end")
	}
	return nil
}
