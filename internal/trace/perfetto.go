package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/taskpar/avd/internal/chaos"
	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
)

// PerfettoOptions configures ExportPerfetto.
type PerfettoOptions struct {
	// SkipViolations disables the offline checker replay that overlays
	// violation instants; the export then shows structure only.
	SkipViolations bool
	// MaxExplanations caps the rendered violation explanations embedded
	// in otherData (default 100; the instants themselves are never
	// capped).
	MaxExplanations int
	// StrictLockChecks runs the overlay checker with the strict-lock
	// extension, which also attaches per-access lockset provenance to
	// the stored interleaver side. Match this to the session options the
	// trace was recorded under.
	StrictLockChecks bool
}

// perfEvent is one Chrome trace-event record (the JSON the Perfetto UI
// and chrome://tracing ingest). Ph selects the phase: B/E duration
// begin/end, b/e async begin/end (ID-matched, may overlap on a track),
// i instant, C counter, M metadata.
type perfEvent struct {
	Name string         `json:"name,omitempty"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	Ts   float64        `json:"ts"`
	Pid  int32          `json:"pid"`
	Tid  int32          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// perfTrace is the trace-event JSON object form.
type perfTrace struct {
	TraceEvents     []perfEvent    `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// Track processes: tasks (DPST view), workers (execution view), and —
// for run-span exports — the server timeline (one track per shard).
const (
	pidTasks   int32 = 1
	pidWorkers int32 = 2
	pidServer  int32 = 3
)

// violationOverlay replays the trace through the optimized checker and
// returns, per trace event index, the violations first detected at that
// event, plus the DPST step node of every access (in KAccess order) for
// step-span naming.
func violationOverlay(tr *Trace, strict bool) (map[int][]checker.Violation, []dpst.NodeID, error) {
	var accessIdx []int
	for i, e := range tr.Events {
		if e.Kind == KAccess {
			accessIdx = append(accessIdx, i)
		}
	}
	tree := dpst.New(dpst.ArrayLayout)
	rep := checker.NewReporter(0)
	sink := &overlaySink{
		viol: make(map[int][]checker.Violation),
		seen: make(map[violationIdentity]struct{}),
		idx:  accessIdx,
		k:    -1,
	}
	rep.SetObserver(sink.observe)
	sink.chk = checker.New(checker.Options{
		Query:            dpst.NewQuery(tree, false),
		Reporter:         rep,
		StrictLockChecks: strict,
	})
	if err := Replay(tr, tree, sink, nil); err != nil {
		return nil, nil, err
	}
	return sink.viol, sink.steps, nil
}

// violationIdentity mirrors the reporter's triple identity for
// cross-task deduplication of overlay instants.
type violationIdentity struct {
	loc        sched.Loc
	pat, inter dpst.NodeID
	a1, a2, a3 checker.AccessType
}

type overlaySink struct {
	chk   checker.Checker
	viol  map[int][]checker.Violation
	seen  map[violationIdentity]struct{}
	idx   []int // trace event index of each access ordinal
	steps []dpst.NodeID
	k     int // current access ordinal
}

func (s *overlaySink) Access(ts checker.TaskState, loc sched.Loc, write bool) {
	s.k++
	s.steps = append(s.steps, ts.StepNode())
	s.chk.Access(ts, loc, write)
}

// observe receives each newly admitted violation synchronously from the
// checker, i.e. while the access that detected it is being replayed.
func (s *overlaySink) observe(v checker.Violation) {
	id := violationIdentity{v.Loc, v.PatternStep, v.InterleaverStep, v.First, v.Middle, v.Last}
	if _, dup := s.seen[id]; dup {
		return
	}
	s.seen[id] = struct{}{}
	ev := s.idx[s.k]
	s.viol[ev] = append(s.viol[ev], v)
}

// exporter carries the per-track emission state of one export.
type exporter struct {
	out []perfEvent
	ts  func(i int) float64
	// openStep is the step span currently open on each task track
	// (dpst.None when closed); taskOpen marks emitted-but-unended task
	// lifetime spans.
	openStep []dpst.NodeID
	taskOpen []bool
	// curWorker tracks the task span open on each worker track.
	curWorker map[int32]int32
}

func (x *exporter) emit(e perfEvent) { x.out = append(x.out, e) }

// closeStep ends the open step span of a task track, if any.
func (x *exporter) closeStep(task int32, ts float64) {
	if x.openStep[task] != dpst.None {
		x.emit(perfEvent{Ph: "E", Ts: ts, Pid: pidTasks, Tid: task})
		x.openStep[task] = dpst.None
	}
}

// ExportPerfetto renders a trace as Chrome trace-event / Perfetto JSON:
// per-task tracks carrying the task-lifetime, finish-scope, and DPST
// step spans, per-worker tracks showing which task each scheduler
// worker executed (when the trace was recorded live and carries worker
// annotations), violation instants at their detection points with
// human-readable explanations, and chaos injections. Timestamps use the
// recorded wall-clock nanoseconds when present, else one microsecond
// per event (logical time). Load the output at https://ui.perfetto.dev
// or chrome://tracing.
func ExportPerfetto(tr *Trace, w io.Writer, opts PerfettoOptions) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	var (
		viol  map[int][]checker.Violation
		steps []dpst.NodeID
	)
	if !opts.SkipViolations {
		var err error
		if viol, steps, err = violationOverlay(tr, opts.StrictLockChecks); err != nil {
			return fmt.Errorf("trace: perfetto overlay: %w", err)
		}
	}

	hasTs := false
	hasWorker := false
	for _, e := range tr.Events {
		if e.Ts > 0 {
			hasTs = true
		}
		if e.W > 0 {
			hasWorker = true
		}
	}
	x := &exporter{
		openStep:  make([]dpst.NodeID, tr.Tasks),
		taskOpen:  make([]bool, tr.Tasks),
		curWorker: make(map[int32]int32),
	}
	for i := range x.openStep {
		x.openStep[i] = dpst.None
	}
	if hasTs {
		x.ts = func(i int) float64 { return float64(tr.Events[i].Ts) / 1e3 }
	} else {
		x.ts = func(i int) float64 { return float64(i) }
	}

	// Track metadata: process and thread names.
	x.emit(perfEvent{Ph: "M", Name: "process_name", Pid: pidTasks, Args: map[string]any{"name": "avd tasks (DPST view)"}})
	for t := int32(0); t < tr.Tasks; t++ {
		x.emit(perfEvent{Ph: "M", Name: "thread_name", Pid: pidTasks, Tid: t, Args: map[string]any{"name": fmt.Sprintf("task %d", t)}})
	}
	if hasWorker {
		x.emit(perfEvent{Ph: "M", Name: "process_name", Pid: pidWorkers, Args: map[string]any{"name": "avd workers (execution view)"}})
	}

	// Root lifetime opens at the first event.
	x.emit(perfEvent{Name: "task 0", Ph: "B", Ts: x.ts(0), Pid: pidTasks, Tid: 0, Cat: "task"})
	x.taskOpen[0] = true

	var explanations []string
	violTotal := 0
	access := -1 // access ordinal, aligned with steps
	for i, e := range tr.Events {
		ts := x.ts(i)
		if hasWorker && e.W > 0 {
			w := int32(e.Worker())
			if cur, open := x.curWorker[w]; !open || cur != e.Task {
				if open {
					x.emit(perfEvent{Ph: "E", Ts: ts, Pid: pidWorkers, Tid: w})
				}
				x.emit(perfEvent{Name: fmt.Sprintf("task %d", e.Task), Ph: "B", Ts: ts, Pid: pidWorkers, Tid: w, Cat: "task"})
				x.curWorker[w] = e.Task
			}
		}
		switch e.Kind {
		case KSpawn:
			x.closeStep(e.Task, ts)
			x.emit(perfEvent{
				Name: fmt.Sprintf("task %d", e.Child), Ph: "B", Ts: ts,
				Pid: pidTasks, Tid: e.Child, Cat: "task",
				Args: map[string]any{"parent": e.Task},
			})
			x.taskOpen[e.Child] = true
		case KFinishBegin:
			x.closeStep(e.Task, ts)
			x.emit(perfEvent{Name: "finish", Ph: "B", Ts: ts, Pid: pidTasks, Tid: e.Task, Cat: "finish"})
		case KFinishEnd:
			x.closeStep(e.Task, ts)
			x.emit(perfEvent{Ph: "E", Ts: ts, Pid: pidTasks, Tid: e.Task})
		case KAccess:
			access++
			if steps != nil {
				step := steps[access]
				if x.openStep[e.Task] != step {
					x.closeStep(e.Task, ts)
					x.emit(perfEvent{Name: fmt.Sprintf("step S%d", step), Ph: "B", Ts: ts, Pid: pidTasks, Tid: e.Task, Cat: "step"})
					x.openStep[e.Task] = step
				}
			}
			for _, v := range viol[i] {
				violTotal++
				expl := v.Explain()
				if len(explanations) < maxExpl(opts) {
					explanations = append(explanations, expl)
				}
				x.emit(perfEvent{
					Name: fmt.Sprintf("violation %s @ loc %d", v.PatternName(), v.Loc),
					Ph:   "i", S: "t", Ts: ts, Pid: pidTasks, Tid: e.Task, Cat: "violation",
					Args: map[string]any{"explanation": expl},
				})
				x.emit(perfEvent{
					Name: "violations", Ph: "C", Ts: ts, Pid: pidTasks, Tid: 0,
					Args: map[string]any{"count": violTotal},
				})
			}
		case KTaskEnd:
			x.closeStep(e.Task, ts)
			if x.taskOpen[e.Task] {
				x.emit(perfEvent{Ph: "E", Ts: ts, Pid: pidTasks, Tid: e.Task})
				x.taskOpen[e.Task] = false
			}
		case KInject:
			x.emit(perfEvent{
				Name: "inject " + chaos.Fault(e.Fault).String(),
				Ph:   "i", S: "t", Ts: ts, Pid: pidTasks, Tid: e.Task, Cat: "chaos",
			})
		}
	}

	// Close anything still open (truncated or generated traces may lack
	// task-end events) so B/E stay balanced.
	end := x.ts(len(tr.Events)-1) + 1
	for t := int32(0); t < tr.Tasks; t++ {
		x.closeStep(t, end)
		if x.taskOpen[t] {
			x.emit(perfEvent{Ph: "E", Ts: end, Pid: pidTasks, Tid: t})
		}
	}
	workers := make([]int32, 0, len(x.curWorker))
	for w := range x.curWorker {
		workers = append(workers, w)
	}
	sort.Slice(workers, func(i, j int) bool { return workers[i] < workers[j] })
	for _, w := range workers {
		x.emit(perfEvent{Ph: "E", Ts: end, Pid: pidWorkers, Tid: w})
	}

	other := map[string]any{
		"tasks":      tr.Tasks,
		"events":     len(tr.Events),
		"violations": violTotal,
	}
	if len(explanations) > 0 {
		other["explanations"] = explanations
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(perfTrace{
		TraceEvents:     x.out,
		DisplayTimeUnit: "ms",
		OtherData:       other,
	})
}

func maxExpl(opts PerfettoOptions) int {
	if opts.MaxExplanations > 0 {
		return opts.MaxExplanations
	}
	return 100
}
