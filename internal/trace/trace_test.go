package trace_test

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sptest"
	"github.com/taskpar/avd/internal/trace"
)

// figure1Program is the paper's running example as a structured program:
// task T1 writes X, then spawns T2 (read X; write X) and T3 (write X)
// inside a finish block.
func figure1Program() *sptest.Program {
	return &sptest.Program{Body: []sptest.Item{
		&sptest.StepItem{ID: 0, Accesses: []sptest.Access{{Loc: 0, Write: true, Lock: -1, CS: -1}}},
		&sptest.FinishItem{Body: []sptest.Item{
			&sptest.SpawnItem{Body: []sptest.Item{
				&sptest.StepItem{ID: 1, Accesses: []sptest.Access{
					{Loc: 0, Write: false, Lock: -1, CS: -1},
					{Loc: 0, Write: true, Lock: -1, CS: -1},
				}},
			}},
			&sptest.SpawnItem{Body: []sptest.Item{
				&sptest.StepItem{ID: 2, Accesses: []sptest.Access{{Loc: 0, Write: true, Lock: -1, CS: -1}}},
			}},
		}},
	}}
}

func TestCompileStructure(t *testing.T) {
	c := trace.Compile(figure1Program())
	if len(c.Code) != 3 {
		t.Fatalf("compiled %d tasks, want 3", len(c.Code))
	}
	// Root: access, finish-begin, spawn, spawn, finish-end.
	kinds := []trace.Kind{}
	for _, o := range c.Code[0] {
		kinds = append(kinds, o.Kind)
	}
	want := []trace.Kind{trace.KAccess, trace.KFinishBegin, trace.KSpawn, trace.KSpawn, trace.KFinishEnd}
	if len(kinds) != len(want) {
		t.Fatalf("root ops = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("root ops = %v, want %v", kinds, want)
		}
	}
	if len(c.Code[1]) != 2 || len(c.Code[2]) != 1 {
		t.Fatalf("child op counts: %d, %d; want 2, 1", len(c.Code[1]), len(c.Code[2]))
	}
}

func TestCompileCriticalSections(t *testing.T) {
	p := &sptest.Program{Body: []sptest.Item{
		&sptest.StepItem{ID: 0, Accesses: []sptest.Access{
			{Loc: 0, Write: false, Lock: 1, CS: 10},
			{Loc: 1, Write: true, Lock: 1, CS: 10},
			{Loc: 0, Write: true, Lock: 1, CS: 11},
			{Loc: 2, Write: true, Lock: -1, CS: -1},
		}},
	}}
	c := trace.Compile(p)
	kinds := []trace.Kind{}
	for _, o := range c.Code[0] {
		kinds = append(kinds, o.Kind)
	}
	want := []trace.Kind{
		trace.KAcquire, trace.KAccess, trace.KAccess, trace.KRelease,
		trace.KAcquire, trace.KAccess, trace.KRelease,
		trace.KAccess,
	}
	if len(kinds) != len(want) {
		t.Fatalf("ops = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("ops = %v, want %v", kinds, want)
		}
	}
}

func TestScheduleValidAcrossSeeds(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		p := sptest.Random(r, sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 15,
			Locations: 3, MaxAccess: 3, Locks: 2, LockProb: 0.4,
		})
		tr, err := trace.FromProgram(p, r)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid trace: %v", trial, err)
		}
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := sptest.Random(r, sptest.GenConfig{
		MaxItems: 4, MaxDepth: 2, MaxSteps: 10,
		Locations: 2, MaxAccess: 2, Locks: 1, LockProb: 0.5,
	})
	tr, err := trace.FromProgram(p, r)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tasks != tr.Tasks || len(got.Events) != len(tr.Events) {
		t.Fatalf("roundtrip mismatch: %d/%d events, %d/%d tasks",
			len(got.Events), len(tr.Events), got.Tasks, tr.Tasks)
	}
	for i := range got.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	cases := []struct {
		name string
		tr   trace.Trace
	}{
		{"no tasks", trace.Trace{Tasks: 0}},
		{"unstarted task", trace.Trace{Tasks: 2, Events: []trace.Event{
			{Kind: trace.KAccess, Task: 1, Loc: 1},
		}}},
		{"double spawn", trace.Trace{Tasks: 2, Events: []trace.Event{
			{Kind: trace.KSpawn, Task: 0, Child: 1},
			{Kind: trace.KSpawn, Task: 0, Child: 1},
		}}},
		{"unbalanced finish", trace.Trace{Tasks: 1, Events: []trace.Event{
			{Kind: trace.KFinishEnd, Task: 0},
		}}},
		{"double acquire", trace.Trace{Tasks: 2, Events: []trace.Event{
			{Kind: trace.KSpawn, Task: 0, Child: 1},
			{Kind: trace.KAcquire, Task: 0, Lock: 1},
			{Kind: trace.KAcquire, Task: 1, Lock: 1},
		}}},
		{"foreign release", trace.Trace{Tasks: 2, Events: []trace.Event{
			{Kind: trace.KSpawn, Task: 0, Child: 1},
			{Kind: trace.KAcquire, Task: 0, Lock: 1},
			{Kind: trace.KRelease, Task: 1, Lock: 1},
		}}},
		{"lock left held", trace.Trace{Tasks: 1, Events: []trace.Event{
			{Kind: trace.KAcquire, Task: 0, Lock: 1},
		}}},
	}
	for _, c := range cases {
		if err := c.tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid trace", c.name)
		}
	}
}

// TestReplayDetectsFigure1Violation replays a generated schedule of the
// Figure 1 program into the optimized checker.
func TestReplayDetectsFigure1Violation(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		tr, err := trace.FromProgram(figure1Program(), r)
		if err != nil {
			t.Fatal(err)
		}
		tree := dpst.NewArrayTree()
		c := checker.New(checker.Options{Query: dpst.NewQuery(tree, true)})
		if err := trace.Replay(tr, tree, c, nil); err != nil {
			t.Fatal(err)
		}
		vs := c.Reporter().Violations()
		if len(vs) != 1 || vs[0].Kind() != "R-W-W" {
			t.Fatalf("trial %d: got %v, want one R-W-W violation", trial, vs)
		}
		if vs[0].Loc != trace.LocBase {
			t.Fatalf("trial %d: violation at loc %d, want %d", trial, vs[0].Loc, trace.LocBase)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []trace.Kind{
		trace.KSpawn, trace.KFinishBegin, trace.KFinishEnd,
		trace.KAccess, trace.KAcquire, trace.KRelease, trace.KTaskEnd,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad string %q", k, s)
		}
		seen[s] = true
	}
	if trace.Kind(99).String() == "" {
		t.Error("unknown kind must still format")
	}
}
