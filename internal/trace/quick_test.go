package trace_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
	"github.com/taskpar/avd/internal/sptest"
	"github.com/taskpar/avd/internal/trace"
)

// TestQuickSchedulesAlwaysValid: for any seed, the generator produces a
// structurally valid trace whose event count matches the compiled
// program (all tasks end, every op emitted exactly once).
func TestQuickSchedulesAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := sptest.Random(r, sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 15,
			Locations: 3, MaxAccess: 3, Locks: 2, LockProb: 0.4,
		})
		c := trace.Compile(p)
		tr, err := c.Schedule(r)
		if err != nil {
			return false
		}
		if tr.Validate() != nil {
			return false
		}
		ops := 0
		for _, code := range c.Code {
			ops += len(code)
		}
		// One event per op plus one KTaskEnd per task.
		return len(tr.Events) == ops+len(c.Code)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickEncodeDecodeRoundtrip: traces survive serialization exactly.
func TestQuickEncodeDecodeRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := sptest.Random(r, sptest.GenConfig{
			MaxItems: 3, MaxDepth: 2, MaxSteps: 10,
			Locations: 2, MaxAccess: 2, Locks: 1, LockProb: 0.5,
		})
		tr, err := trace.FromProgram(p, r)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if tr.Encode(&buf) != nil {
			return false
		}
		got, err := trace.Decode(&buf)
		if err != nil || got.Tasks != tr.Tasks || len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range got.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickReplayDPSTShape: replaying a generated trace always yields a
// DPST whose step count equals the number of maximal access runs, and
// never errors.
func TestQuickReplayDPSTShape(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := sptest.Random(r, sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 12,
			Locations: 3, MaxAccess: 3,
		})
		tr, err := trace.FromProgram(p, r)
		if err != nil {
			return false
		}
		tree := dpst.NewArrayTree()
		sink := countingSink{}
		if trace.Replay(tr, tree, &sink, nil) != nil {
			return false
		}
		// Every access was delivered, and the tree contains at least a
		// root plus one node per spawn.
		accesses := 0
		spawns := 0
		for _, e := range tr.Events {
			switch e.Kind {
			case trace.KAccess:
				accesses++
			case trace.KSpawn:
				spawns++
			}
		}
		return sink.n == accesses && tree.Len() >= 1+spawns
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

type countingSink struct{ n int }

func (c *countingSink) Access(ts checker.TaskState, loc sched.Loc, write bool) {
	if ts.StepNode() == dpst.None {
		panic("access without a step node")
	}
	c.n++
}
