package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/taskpar/avd/internal/sptest"
)

// encodedTestTrace generates one valid encoded trace for the limit
// tests.
func encodedTestTrace(t *testing.T) []byte {
	t.Helper()
	r := rand.New(rand.NewSource(4))
	p := sptest.Random(r, sptest.GenConfig{
		MaxItems: 4, MaxDepth: 3, MaxSteps: 12,
		Locations: 3, MaxAccess: 4, Locks: 1, LockProb: 0.3,
	})
	tr, err := FromProgram(p, r)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecodeLimitedExactSize(t *testing.T) {
	enc := encodedTestTrace(t)
	// A cap of exactly the encoded size must admit the trace.
	tr, err := DecodeLimited(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatalf("decode at exact cap: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zero cap means unlimited.
	if _, err := DecodeLimited(bytes.NewReader(enc), 0); err != nil {
		t.Fatalf("decode unlimited: %v", err)
	}
}

func TestDecodeLimitedOversized(t *testing.T) {
	enc := encodedTestTrace(t)
	// The cap bounds the encoded JSON value (Encode appends a trailing
	// newline that does not count): one byte under it must refuse.
	val := int64(len(enc)) - 1
	_, err := DecodeLimited(bytes.NewReader(enc), val-1)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("one-under cap: err = %v, want ErrTooLarge", err)
	}
	// Far-under caps refuse too, without reading past the cap.
	_, err = DecodeLimited(bytes.NewReader(enc), 16)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("tiny cap: err = %v, want ErrTooLarge", err)
	}
	// Trailing whitespace the decoder buffered past the value does not
	// trip the cap: the value itself is what is bounded.
	padded := append(append([]byte{}, enc...), bytes.Repeat([]byte(" "), 16)...)
	if _, err := DecodeLimited(bytes.NewReader(padded), val); err != nil {
		t.Fatalf("value at cap with trailing padding: %v", err)
	}
}

func TestDecodeLimitedTruncated(t *testing.T) {
	enc := encodedTestTrace(t)
	// Cuts inside the JSON value (len-1 would only drop the trailing
	// newline, which still decodes).
	for _, cut := range []int{len(enc) / 2, len(enc) - 2, 1} {
		_, err := DecodeLimited(bytes.NewReader(enc[:cut]), int64(len(enc)))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestDecodeLimitedHugeClaim: a tiny body claiming two billion tasks
// must fail validation cleanly — the claim is checked before any
// allocation sized by it.
func TestDecodeLimitedHugeClaim(t *testing.T) {
	body := []byte(`{"tasks":2000000000,"events":[]}`)
	_, err := DecodeLimited(bytes.NewReader(body), 1<<20)
	if err == nil {
		t.Fatalf("huge task claim decoded")
	}
	if errors.Is(err, ErrTooLarge) || errors.Is(err, ErrTruncated) {
		t.Fatalf("huge claim misclassified: %v", err)
	}
}
