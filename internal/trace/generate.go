package trace

import (
	"fmt"
	"math/rand"

	"github.com/taskpar/avd/internal/sched"
	"github.com/taskpar/avd/internal/sptest"
)

// Op is one instruction of a compiled task body.
type Op struct {
	Kind  Kind
	Loc   sched.Loc
	Write bool
	Lock  uint32
	CS    uint64
	Child int32
}

// Compiled holds the per-task instruction lists of a program: Code[i] is
// the body of task i, with task 0 the root. Locations and locks are
// offset to small dense sched.Loc / lock-ID spaces.
type Compiled struct {
	Code [][]Op
}

// LocBase is the sched.Loc assigned to sptest location 0 when a program
// is compiled to a trace; sptest location i maps to LocBase+i.
const LocBase sched.Loc = 1

// Compile lowers a structured program to per-task instruction lists:
// accesses grouped into acquire/release-wrapped critical sections, spawn
// and finish constructs made explicit.
func Compile(p *sptest.Program) *Compiled {
	c := &Compiled{Code: [][]Op{nil}}
	var compileBody func(body []sptest.Item, task int32)
	compileBody = func(body []sptest.Item, task int32) {
		emit := func(o Op) { c.Code[task] = append(c.Code[task], o) }
		for _, it := range body {
			switch v := it.(type) {
			case *sptest.StepItem:
				curCS := -1
				closeCS := func() {
					if curCS >= 0 {
						last := findCSLock(v.Accesses, curCS)
						emit(Op{Kind: KRelease, Lock: last, CS: uint64(curCS)})
						curCS = -1
					}
				}
				for _, a := range v.Accesses {
					if a.CS != curCS {
						closeCS()
						if a.CS >= 0 {
							emit(Op{Kind: KAcquire, Lock: uint32(a.Lock), CS: uint64(a.CS)})
							curCS = a.CS
						}
					}
					emit(Op{Kind: KAccess, Loc: LocBase + sched.Loc(a.Loc), Write: a.Write})
				}
				closeCS()
			case *sptest.SpawnItem:
				child := int32(len(c.Code))
				c.Code = append(c.Code, nil)
				emit(Op{Kind: KSpawn, Child: child})
				compileBody(v.Body, child)
			case *sptest.FinishItem:
				emit(Op{Kind: KFinishBegin})
				compileBody(v.Body, task)
				emit(Op{Kind: KFinishEnd})
			}
		}
	}
	compileBody(p.Body, 0)
	return c
}

func findCSLock(accs []sptest.Access, cs int) uint32 {
	for _, a := range accs {
		if a.CS == cs {
			return uint32(a.Lock)
		}
	}
	return 0
}

// simTask is the scheduling state of one task during trace generation.
type simTask struct {
	pc      int
	started bool
	done    bool
	scopes  []*simScope // innermost last; scopes[0] is the root scope
}

type simScope struct {
	pending int
}

// Schedule produces one valid sequentially consistent interleaving of
// the compiled program, choosing the next task uniformly at random among
// runnable tasks. The resulting trace respects spawn/join ordering and
// lock mutual exclusion.
func (c *Compiled) Schedule(r *rand.Rand) (*Trace, error) {
	return c.schedule(func(ready []int) int { return ready[r.Intn(len(ready))] })
}

// ScheduleSerial produces the depth-first serial interleaving: the most
// recently spawned runnable task always runs next, so every spawned
// child executes to completion before its parent resumes — the schedule
// of a one-worker execution. Each step's accesses are contiguous in the
// resulting trace (a task is never preempted mid-step), which is the
// precondition for the redundant-access filter's exact-report
// differential test.
func (c *Compiled) ScheduleSerial() (*Trace, error) {
	return c.schedule(func(ready []int) int { return ready[len(ready)-1] })
}

// schedule runs the interleaving simulator with the given policy for
// picking among runnable tasks (indices in ascending order).
func (c *Compiled) schedule(pick func(ready []int) int) (*Trace, error) {
	n := len(c.Code)
	tasks := make([]*simTask, n)
	rootScope := &simScope{}
	scopeOf := make([]*simScope, n) // join scope a task decrements at end
	for i := range tasks {
		tasks[i] = &simTask{}
	}
	tasks[0].started = true
	tasks[0].scopes = []*simScope{rootScope}
	scopeOf[0] = rootScope
	holder := make(map[uint32]bool)

	tr := &Trace{Tasks: int32(n)}
	isRunnable := func(i int) bool {
		t := tasks[i]
		if !t.started || t.done {
			return false
		}
		if t.pc >= len(c.Code[i]) {
			return true
		}
		o := c.Code[i][t.pc]
		switch o.Kind {
		case KFinishEnd:
			return t.scopes[len(t.scopes)-1].pending == 0
		case KAcquire:
			return !holder[o.Lock]
		default:
			return true
		}
	}

	remaining := n
	var ready []int
	for remaining > 0 {
		ready = ready[:0]
		for i := 0; i < n; i++ {
			if isRunnable(i) {
				ready = append(ready, i)
			}
		}
		if len(ready) == 0 {
			return nil, fmt.Errorf("trace: schedule deadlocked with %d tasks remaining", remaining)
		}
		i := pick(ready)
		t := tasks[i]
		if t.pc >= len(c.Code[i]) {
			t.done = true
			if i != 0 {
				scopeOf[i].pending--
			}
			remaining--
			tr.Events = append(tr.Events, Event{Kind: KTaskEnd, Task: int32(i)})
			continue
		}
		o := c.Code[i][t.pc]
		t.pc++
		switch o.Kind {
		case KSpawn:
			child := tasks[o.Child]
			child.started = true
			scope := t.scopes[len(t.scopes)-1]
			scope.pending++
			scopeOf[o.Child] = scope
			child.scopes = []*simScope{scope}
			tr.Events = append(tr.Events, Event{Kind: KSpawn, Task: int32(i), Child: o.Child})
		case KFinishBegin:
			t.scopes = append(t.scopes, &simScope{})
			tr.Events = append(tr.Events, Event{Kind: KFinishBegin, Task: int32(i)})
		case KFinishEnd:
			t.scopes = t.scopes[:len(t.scopes)-1]
			tr.Events = append(tr.Events, Event{Kind: KFinishEnd, Task: int32(i)})
		case KAcquire:
			holder[o.Lock] = true
			tr.Events = append(tr.Events, Event{Kind: KAcquire, Task: int32(i), Lock: o.Lock, CS: o.CS})
		case KRelease:
			delete(holder, o.Lock)
			tr.Events = append(tr.Events, Event{Kind: KRelease, Task: int32(i), Lock: o.Lock, CS: o.CS})
		case KAccess:
			tr.Events = append(tr.Events, Event{Kind: KAccess, Task: int32(i), Loc: o.Loc, Write: o.Write})
		}
	}
	return tr, nil
}

// FromProgram compiles p and schedules one random valid interleaving.
func FromProgram(p *sptest.Program, r *rand.Rand) (*Trace, error) {
	return Compile(p).Schedule(r)
}
