package trace

import (
	"sync"
	"time"

	"github.com/taskpar/avd/internal/chaos"
	"github.com/taskpar/avd/internal/sched"
)

// Recorder is a Monitor that captures a live execution into a Trace for
// later offline analysis ("record once, analyze many"). A global mutex
// linearizes the recorded events; because every event is appended inside
// the instrumentation call that produces it, the recorded order is a
// valid sequentially consistent schedule of the execution: it preserves
// each task's program order, spawn-before-child ordering, finish-end
// after every child's end, and the mutual exclusion of instrumented
// locks.
//
// Recorder can run stand-alone or teed behind a checker (see
// avd.Options.RecordTrace).
type Recorder struct {
	mu     sync.Mutex
	events []Event
	ids    map[int32]int32
	locks  map[*sched.Mutex]uint32
	acq    uint64
	start  time.Time
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		ids:   make(map[int32]int32),
		locks: make(map[*sched.Mutex]uint32),
		start: time.Now(),
	}
}

// ts stamps an event with nanoseconds since the recorder was created.
// Must be called with mu held, so timestamps are monotone in event
// order.
func (r *Recorder) ts() int64 { return int64(time.Since(r.start)) }

// wk encodes a task's current worker for the event's W field (+1 so the
// zero value still means unknown).
func wk(t *sched.Task) int32 { return int32(t.WorkerID()) + 1 }

// id maps a scheduler task ID to a dense trace task ID; the first task
// observed (necessarily the root, since all events of descendants happen
// after their spawn) becomes task 0. Must be called with mu held.
func (r *Recorder) id(task int32) int32 {
	if v, ok := r.ids[task]; ok {
		return v
	}
	v := int32(len(r.ids))
	r.ids[task] = v
	return v
}

func (r *Recorder) lockID(m *sched.Mutex) uint32 {
	if v, ok := r.locks[m]; ok {
		return v
	}
	v := uint32(len(r.locks) + 1)
	r.locks[m] = v
	return v
}

// OnAccess implements sched.Monitor.
func (r *Recorder) OnAccess(t *sched.Task, loc sched.Loc, write bool) {
	r.mu.Lock()
	r.events = append(r.events, Event{Kind: KAccess, Task: r.id(t.ID()), Loc: loc, Write: write, Ts: r.ts(), W: wk(t)})
	r.mu.Unlock()
}

// OnAcquire implements sched.Monitor.
func (r *Recorder) OnAcquire(t *sched.Task, m *sched.Mutex) {
	r.mu.Lock()
	r.acq++
	r.events = append(r.events, Event{Kind: KAcquire, Task: r.id(t.ID()), Lock: r.lockID(m), CS: r.acq, Ts: r.ts(), W: wk(t)})
	r.mu.Unlock()
}

// OnRelease implements sched.Monitor.
func (r *Recorder) OnRelease(t *sched.Task, m *sched.Mutex) {
	r.mu.Lock()
	r.events = append(r.events, Event{Kind: KRelease, Task: r.id(t.ID()), Lock: r.lockID(m), Ts: r.ts(), W: wk(t)})
	r.mu.Unlock()
}

// OnSpawn implements sched.StructureObserver.
func (r *Recorder) OnSpawn(parent *sched.Task, child int32) {
	r.mu.Lock()
	r.events = append(r.events, Event{Kind: KSpawn, Task: r.id(parent.ID()), Child: r.id(child), Ts: r.ts(), W: wk(parent)})
	r.mu.Unlock()
}

// OnFinishBegin implements sched.StructureObserver.
func (r *Recorder) OnFinishBegin(t *sched.Task) {
	r.mu.Lock()
	r.events = append(r.events, Event{Kind: KFinishBegin, Task: r.id(t.ID()), Ts: r.ts(), W: wk(t)})
	r.mu.Unlock()
}

// OnFinishEnd implements sched.StructureObserver.
func (r *Recorder) OnFinishEnd(t *sched.Task) {
	r.mu.Lock()
	r.events = append(r.events, Event{Kind: KFinishEnd, Task: r.id(t.ID()), Ts: r.ts(), W: wk(t)})
	r.mu.Unlock()
}

// OnTaskEnd implements sched.StructureObserver.
func (r *Recorder) OnTaskEnd(t *sched.Task) {
	r.mu.Lock()
	r.events = append(r.events, Event{Kind: KTaskEnd, Task: r.id(t.ID()), Ts: r.ts(), W: wk(t)})
	r.mu.Unlock()
}

// OnInject implements sched.InjectObserver: chaos injections become
// KInject annotations so exporters can overlay them on the timeline.
func (r *Recorder) OnInject(task int32, fault chaos.Fault) {
	r.mu.Lock()
	r.events = append(r.events, Event{Kind: KInject, Task: r.id(task), Fault: uint8(fault), Ts: r.ts()})
	r.mu.Unlock()
}

// Trace returns the recorded trace. Call it after the recorded Run has
// completed.
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Trace{
		Tasks:  int32(len(r.ids)),
		Events: append([]Event(nil), r.events...),
	}
}
