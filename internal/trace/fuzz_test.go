package trace_test

import (
	"bytes"
	"testing"

	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/trace"
	"github.com/taskpar/avd/internal/velodrome"
)

// seedTraces returns the fuzz seed corpus: a few structurally valid
// traces (encoded with the real encoder) plus known-hostile inputs that
// previously reached allocation before validation.
func seedTraces(t testing.TB) [][]byte {
	valid := []*trace.Trace{
		{Tasks: 1, Events: []trace.Event{
			{Kind: trace.KAccess, Task: 0, Loc: 1, Write: true},
			{Kind: trace.KTaskEnd, Task: 0},
		}},
		{Tasks: 3, Events: []trace.Event{
			{Kind: trace.KFinishBegin, Task: 0},
			{Kind: trace.KSpawn, Task: 0, Child: 1},
			{Kind: trace.KSpawn, Task: 0, Child: 2},
			{Kind: trace.KAccess, Task: 1, Loc: 100, Write: true},
			{Kind: trace.KAcquire, Task: 2, Lock: 1},
			{Kind: trace.KAccess, Task: 2, Loc: 100, Write: true},
			{Kind: trace.KAccess, Task: 2, Loc: 100},
			{Kind: trace.KRelease, Task: 2, Lock: 1},
			{Kind: trace.KAccess, Task: 1, Loc: 100},
			{Kind: trace.KTaskEnd, Task: 1},
			{Kind: trace.KTaskEnd, Task: 2},
			{Kind: trace.KFinishEnd, Task: 0},
			{Kind: trace.KTaskEnd, Task: 0},
		}},
	}
	var out [][]byte
	for _, tr := range valid {
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatalf("encode seed: %v", err)
		}
		out = append(out, buf.Bytes())
	}
	out = append(out,
		[]byte(`{"tasks":-1,"events":[]}`),         // negative count: must not panic sizing slices
		[]byte(`{"tasks":1073741824,"events":[]}`), // absurd count: must not allocate gigabytes
		[]byte(`{"tasks":2,"events":[{"k":0,"t":0,"c":7}]}`),
		[]byte(`not json at all`),
	)
	return out
}

// FuzzTraceDecode asserts Decode never panics on arbitrary bytes and
// that every trace it accepts satisfies Validate.
func FuzzTraceDecode(f *testing.F) {
	for _, b := range seedTraces(f) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Decode accepted a trace Validate rejects: %v", err)
		}
	})
}

// FuzzTraceReplay pushes every decodable input through the full offline
// pipeline — DPST reconstruction and all three detectors — asserting the
// replayer and checkers never panic on adversarial (but validated)
// traces.
func FuzzTraceReplay(f *testing.F) {
	for _, b := range seedTraces(f) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, alg := range []checker.Algorithm{checker.AlgOptimized, checker.AlgBasic} {
			tree := dpst.NewArrayTree()
			q := dpst.NewQuery(tree, true)
			c := checker.New(checker.Options{Algorithm: alg, Query: q})
			if err := trace.Replay(tr, tree, c, nil); err != nil {
				continue
			}
			c.Reporter().Violations()
		}
		v := velodrome.New()
		if err := trace.Replay(tr, dpst.NewArrayTree(), v, v); err == nil {
			v.Cycles()
		}
	})
}
