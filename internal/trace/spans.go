package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// RunSpan is one server check run's lifecycle timestamps: the span from
// admission through queueing to a terminal state, as the avd-serverd
// run registry records it. Times are Unix nanoseconds; a zero Started
// means the run never executed (canceled while queued, or still
// waiting), a zero Finished that it has not reached a terminal state.
type RunSpan struct {
	ID       int64  `json:"id"`
	Shard    int    `json:"shard"`
	Status   string `json:"status"`
	Attempts int    `json:"attempts,omitempty"`
	Created  int64  `json:"created_ns"`
	Started  int64  `json:"started_ns,omitempty"`
	Finished int64  `json:"finished_ns,omitempty"`
	// Violations is the run's distinct violation count (terminal runs).
	Violations int64 `json:"violations,omitempty"`
}

// ExportRunSpans renders a server run timeline as Chrome trace-event /
// Perfetto JSON, the same format ExportPerfetto emits for task traces,
// so avd-viz and the Perfetto UI work unchanged. The server process
// carries one track per shard: queued phases are async spans (ph "b"/
// "e", ID-matched per run — many runs wait on one shard concurrently,
// so they must be allowed to overlap), execution phases are nested B/E
// spans (a shard worker runs serially, so they never overlap), and
// terminal transitions are instants named by outcome. now is the
// export's reference clock in Unix nanoseconds: spans still open are
// drawn up to it.
func ExportRunSpans(spans []RunSpan, now int64, w io.Writer) error {
	ordered := append([]RunSpan(nil), spans...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })

	// Normalize to the earliest admission so timestamps stay readable.
	base := now
	for _, sp := range ordered {
		if sp.Created > 0 && sp.Created < base {
			base = sp.Created
		}
	}
	ts := func(ns int64) float64 { return float64(ns-base) / 1e3 }

	var out []perfEvent
	emit := func(e perfEvent) { out = append(out, e) }

	emit(perfEvent{Ph: "M", Name: "process_name", Pid: pidServer, Args: map[string]any{"name": "avd server (runs view)"}})
	shards := map[int]bool{}
	for _, sp := range ordered {
		if !shards[sp.Shard] {
			shards[sp.Shard] = true
			emit(perfEvent{Ph: "M", Name: "thread_name", Pid: pidServer, Tid: int32(sp.Shard),
				Args: map[string]any{"name": fmt.Sprintf("shard %d", sp.Shard)}})
		}
	}

	terminal := 0
	for _, sp := range ordered {
		name := fmt.Sprintf("run %d", sp.ID)
		id := fmt.Sprintf("run-%d", sp.ID)
		tid := int32(sp.Shard)
		queuedEnd := sp.Started
		if queuedEnd == 0 {
			queuedEnd = sp.Finished
		}
		if queuedEnd == 0 {
			queuedEnd = now
		}
		emit(perfEvent{Name: name + " queued", Ph: "b", Cat: "queued", ID: id,
			Ts: ts(sp.Created), Pid: pidServer, Tid: tid})
		emit(perfEvent{Name: name + " queued", Ph: "e", Cat: "queued", ID: id,
			Ts: ts(queuedEnd), Pid: pidServer, Tid: tid})
		if sp.Started > 0 {
			end := sp.Finished
			if end == 0 {
				end = now
			}
			emit(perfEvent{Name: name, Ph: "B", Cat: "run", Ts: ts(sp.Started), Pid: pidServer, Tid: tid,
				Args: map[string]any{
					"status":     sp.Status,
					"attempts":   sp.Attempts,
					"violations": sp.Violations,
				}})
			emit(perfEvent{Ph: "E", Ts: ts(end), Pid: pidServer, Tid: tid})
		}
		if sp.Finished > 0 {
			terminal++
			emit(perfEvent{Name: fmt.Sprintf("%s %s", name, sp.Status), Ph: "i", S: "t",
				Cat: "lifecycle", Ts: ts(sp.Finished), Pid: pidServer, Tid: tid})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(perfTrace{
		TraceEvents:     out,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"runs":     len(ordered),
			"terminal": terminal,
		},
	})
}
