package trace_test

import (
	"testing"

	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
	"github.com/taskpar/avd/internal/trace"
)

// TestRecorderCapturesValidTrace records a live run (structure, accesses,
// and locks) and validates the result structurally.
func TestRecorderCapturesValidTrace(t *testing.T) {
	rec := trace.NewRecorder()
	s := sched.New(sched.Options{Workers: 4, Tree: dpst.NewArrayTree(), Monitor: rec})
	defer s.Close()
	l := s.NewMutex("L")
	const x sched.Loc = 1
	s.Run(func(tk *sched.Task) {
		tk.Access(x, true)
		tk.Finish(func(tk *sched.Task) {
			tk.Spawn(func(t2 *sched.Task) {
				l.Lock(t2)
				t2.Access(x, false)
				l.Unlock(t2)
				l.Lock(t2)
				t2.Access(x, true)
				l.Unlock(t2)
			})
			tk.Spawn(func(t3 *sched.Task) {
				l.Lock(t3)
				t3.Access(x, true)
				l.Unlock(t3)
			})
		})
	})
	tr := rec.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
	if tr.Tasks != 3 {
		t.Errorf("recorded %d tasks, want 3", tr.Tasks)
	}
	counts := map[trace.Kind]int{}
	for _, e := range tr.Events {
		counts[e.Kind]++
	}
	if counts[trace.KSpawn] != 2 || counts[trace.KAccess] != 4 {
		t.Errorf("event counts wrong: %v", counts)
	}
	if counts[trace.KAcquire] != 3 || counts[trace.KRelease] != 3 {
		t.Errorf("lock events wrong: %v", counts)
	}
	if counts[trace.KFinishBegin] != 1 || counts[trace.KFinishEnd] != 1 {
		t.Errorf("finish events wrong: %v", counts)
	}
	if counts[trace.KTaskEnd] != 3 {
		t.Errorf("task-end events wrong: %v", counts)
	}

	// Replaying the recorded trace through the checker finds the
	// Figure 11 style violation (pair split over two critical sections).
	tree := dpst.NewArrayTree()
	c := checker.New(checker.Options{Query: dpst.NewQuery(tree, true)})
	if err := trace.Replay(tr, tree, c, nil); err != nil {
		t.Fatal(err)
	}
	if c.Reporter().Count() == 0 {
		t.Fatal("replay of the recorded trace missed the violation")
	}
}

// TestRecorderCilkStructure: spawn-sync programs record balanced
// implicit finish scopes.
func TestRecorderCilkStructure(t *testing.T) {
	rec := trace.NewRecorder()
	s := sched.New(sched.Options{Workers: 2, Tree: dpst.NewArrayTree(), Monitor: rec})
	defer s.Close()
	s.Run(func(tk *sched.Task) {
		tk.CilkSpawn(func(c *sched.Task) { c.Access(1, true) })
		tk.Access(1, false)
		tk.Sync()
		tk.CilkSpawn(func(c *sched.Task) { c.Access(1, true) })
		// No explicit Sync: the implicit sync at task end must close it.
	})
	tr := rec.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("recorded cilk trace invalid: %v", err)
	}
	counts := map[trace.Kind]int{}
	for _, e := range tr.Events {
		counts[e.Kind]++
	}
	if counts[trace.KFinishBegin] != 2 || counts[trace.KFinishEnd] != 2 {
		t.Errorf("implicit finish scopes unbalanced: %v", counts)
	}
}
