package trace

import (
	"context"
	"errors"
	"fmt"

	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/sched"
)

// Typed interruption errors of a context-aware replay. Both satisfy
// errors.Is against the context sentinel they wrap, so callers can
// branch either on the replay-level type or the context cause.
var (
	// ErrCanceled reports a replay stopped by caller cancellation.
	ErrCanceled = fmt.Errorf("trace: replay canceled: %w", context.Canceled)
	// ErrDeadline reports a replay stopped by a deadline.
	ErrDeadline = fmt.Errorf("trace: replay deadline exceeded: %w", context.DeadlineExceeded)
)

// ctxBatch is how many events replay processes between context polls: a
// few thousand events amortize the atomic load in ctx.Err while keeping
// cancellation latency far below any realistic deadline granularity.
const ctxBatch = 4096

// ctxErr maps a context error to the replay's typed sentinel.
func ctxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrDeadline
	}
	return ErrCanceled
}

// Sink consumes replayed memory accesses; both checker.Checker and the
// Velodrome baseline satisfy it.
type Sink interface {
	Access(ts checker.TaskState, loc sched.Loc, write bool)
}

// LockSink consumes replayed lock operations (used by Velodrome, whose
// happens-before graph includes release-acquire edges).
type LockSink interface {
	Acquire(ts checker.TaskState, lockLoc sched.Loc)
	Release(ts checker.TaskState, lockLoc sched.Loc)
}

// LockLocBase offsets lock identities into a Loc range disjoint from
// program locations when lock operations are modeled as accesses.
const LockLocBase sched.Loc = 1 << 32

// LockLoc maps a trace lock ID to its location identifier.
func LockLoc(lock uint32) sched.Loc { return LockLocBase + sched.Loc(lock) }

// replayTask reconstructs the TaskState of one traced task: DPST
// position, lazily created step nodes, and the current lockset.
type replayTask struct {
	id      int32
	tree    dpst.Tree
	parents []dpst.NodeID // finish/async ancestry; top is the current parent
	step    dpst.NodeID
	locks   []uint64
	lockIDs []uint32
	local   any

	// stepEpoch and lockVer mirror the live runtime's filter-epoch
	// bookkeeping (see sched.Task.FilterEpoch): step transitions and
	// lock operations each advance the epoch word.
	stepEpoch uint64
	lockVer   uint64

	// elide is the window-elision cache a batched sink installs through
	// ElideSlot, mirroring the live runtime's handle layer: the replayer
	// runs the same front end, so recorded and live runs of one program
	// elide — and therefore dispatch — identically.
	elide *sched.Elide
}

// newStepRegion invalidates the current step and advances the epoch.
func (t *replayTask) newStepRegion() {
	t.step = dpst.None
	t.stepEpoch++
}

// StepNode implements checker.TaskState.
func (t *replayTask) StepNode() dpst.NodeID {
	if t.step == dpst.None {
		t.step = t.tree.NewNode(t.parents[len(t.parents)-1], dpst.Step, t.id)
	}
	return t.step
}

// Lockset implements checker.TaskState.
func (t *replayTask) Lockset() []uint64 { return t.locks }

// LocalSlot implements checker.TaskState.
func (t *replayTask) LocalSlot() *any { return &t.local }

// ElideSlot implements checker.ElideHost.
func (t *replayTask) ElideSlot() **sched.Elide { return &t.elide }

// FilterEpoch implements checker.TaskState.
func (t *replayTask) FilterEpoch() uint64 {
	return t.stepEpoch<<32 | t.lockVer&(1<<32-1)
}

// AccessState implements checker.TaskState.
func (t *replayTask) AccessState() (*any, dpst.NodeID, uint64, []uint64) {
	return &t.local, t.StepNode(), t.FilterEpoch(), t.locks
}

// Replay drives sink (and lockSink, if non-nil) with the events of tr,
// rebuilding the DPST on tree exactly as the live runtime would. It
// returns an error on structurally invalid traces.
func Replay(tr *Trace, tree dpst.Tree, sink Sink, lockSink LockSink) error {
	return ReplayContext(context.Background(), tr, tree, sink, lockSink)
}

// ReplayContext is Replay under a context: between event batches it
// polls ctx and stops with ErrCanceled or ErrDeadline when the caller
// cancels or the deadline passes. An interrupted replay leaves the sink
// with a valid prefix of the trace analyzed (batched sinks are drained
// before returning), so partial results remain readable.
func ReplayContext(ctx context.Context, tr *Trace, tree dpst.Tree, sink Sink, lockSink LockSink) error {
	if err := ctx.Err(); err != nil {
		return ctxErr(err)
	}
	if err := tr.Validate(); err != nil {
		return err
	}
	root := tree.NewNode(dpst.None, dpst.Finish, 0)
	tasks := make([]*replayTask, tr.Tasks)
	tasks[0] = &replayTask{id: 0, tree: tree, parents: []dpst.NodeID{root}, step: dpst.None}
	// A batching sink needs its windows closed at the same boundaries the
	// live scheduler signals. Every flush runs before the corresponding
	// state mutation — in particular before a release pops the lockset
	// slice in place, which would corrupt the window's captured snapshot.
	bf, _ := sink.(checker.BatchFlusher)
	drain := func() {
		if bf == nil {
			return
		}
		for _, t := range tasks {
			if t != nil {
				bf.FlushStep(t)
			}
		}
	}
	var acq uint64
	for i, e := range tr.Events {
		if i%ctxBatch == 0 && i > 0 {
			if err := ctx.Err(); err != nil {
				drain()
				return ctxErr(err)
			}
		}
		t := tasks[e.Task]
		switch e.Kind {
		case KSpawn:
			if bf != nil {
				bf.FlushStep(t)
			}
			a := tree.NewNode(t.parents[len(t.parents)-1], dpst.Async, t.id)
			t.newStepRegion()
			tasks[e.Child] = &replayTask{
				id: e.Child, tree: tree, parents: []dpst.NodeID{a}, step: dpst.None,
			}
		case KFinishBegin:
			if bf != nil {
				bf.FlushStep(t)
			}
			f := tree.NewNode(t.parents[len(t.parents)-1], dpst.Finish, t.id)
			t.parents = append(t.parents, f)
			t.newStepRegion()
		case KFinishEnd:
			if bf != nil {
				bf.FlushStep(t)
			}
			t.parents = t.parents[:len(t.parents)-1]
			t.newStepRegion()
		case KAccess:
			// The same elision front end as the live handle layer
			// (sched.Task.Access): a window-saturated access never reaches
			// the sink.
			if el := t.elide; el != nil && el.Hit(e.Loc, e.Write) {
				continue
			}
			sink.Access(t, e.Loc, e.Write)
		case KAcquire:
			if bf != nil {
				bf.FlushLockChange(t)
			}
			acq++
			t.locks = append(t.locks, sched.MakeLockToken(e.Lock, acq))
			t.lockIDs = append(t.lockIDs, e.Lock)
			t.lockVer++
			if lockSink != nil {
				lockSink.Acquire(t, LockLoc(e.Lock))
			}
		case KRelease:
			if bf != nil {
				bf.FlushLockChange(t)
			}
			if lockSink != nil {
				lockSink.Release(t, LockLoc(e.Lock))
			}
			found := false
			for j := len(t.lockIDs) - 1; j >= 0; j-- {
				if t.lockIDs[j] == e.Lock {
					t.locks = append(t.locks[:j], t.locks[j+1:]...)
					t.lockIDs = append(t.lockIDs[:j], t.lockIDs[j+1:]...)
					t.lockVer++
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("trace: event %d: release of unheld lock %d", i, e.Lock)
			}
		case KTaskEnd:
			// No DPST effect; the join is captured by finish scopes.
			if bf != nil {
				bf.FlushStep(t)
			}
		case KInject:
			// Observability annotation only; no structural effect.
		}
	}
	// Traces need not end every task with KTaskEnd (generated traces
	// may stop mid-stream); drain whatever is still buffered.
	drain()
	return nil
}
