package trace_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/taskpar/avd/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// perfettoTrace is the Figure 1 shape with a locked interleaver and a
// chaos injection annotation: task 0 writes X, then inside a finish
// spawns task 1 (read X; write X) and task 2 (write X under lock 1).
// Task 2's write lands between task 1's read and write, so the replay
// observes the RWW pattern directly. No timestamps or worker IDs, so
// the export uses deterministic logical time.
func perfettoTrace() *trace.Trace {
	return &trace.Trace{Tasks: 3, Events: []trace.Event{
		{Kind: trace.KAccess, Task: 0, Loc: 0, Write: true},
		{Kind: trace.KFinishBegin, Task: 0},
		{Kind: trace.KSpawn, Task: 0, Child: 1},
		{Kind: trace.KInject, Task: 1, Fault: 1},
		{Kind: trace.KAccess, Task: 1, Loc: 0, Write: false},
		{Kind: trace.KSpawn, Task: 0, Child: 2},
		{Kind: trace.KAcquire, Task: 2, Lock: 1},
		{Kind: trace.KAccess, Task: 2, Loc: 0, Write: true},
		{Kind: trace.KRelease, Task: 2, Lock: 1},
		{Kind: trace.KTaskEnd, Task: 2},
		{Kind: trace.KAccess, Task: 1, Loc: 0, Write: true},
		{Kind: trace.KTaskEnd, Task: 1},
		{Kind: trace.KFinishEnd, Task: 0},
		{Kind: trace.KTaskEnd, Task: 0},
	}}
}

func TestExportPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.ExportPerfetto(perfettoTrace(), &buf, trace.PerfettoOptions{StrictLockChecks: true}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export differs from %s (run with -update to regenerate)\ngot:\n%s", golden, buf.String())
	}
}

// TestExportPerfettoWellFormed checks the structural invariants the
// Perfetto UI relies on: parseable JSON, balanced B/E stacks per
// (pid, tid) track, and the violation overlay present.
func TestExportPerfettoWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.ExportPerfetto(perfettoTrace(), &buf, trace.PerfettoOptions{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Cat  string  `json:"cat"`
			Ts   float64 `json:"ts"`
			Pid  int32   `json:"pid"`
			Tid  int32   `json:"tid"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	type track struct{ pid, tid int32 }
	depth := map[track]int{}
	lastTs := map[track]float64{}
	violations, injections := 0, 0
	for i, e := range doc.TraceEvents {
		k := track{e.Pid, e.Tid}
		if e.Ph == "B" || e.Ph == "E" {
			if e.Ts < lastTs[k] {
				t.Fatalf("event %d: ts %v goes backwards on track %v", i, e.Ts, k)
			}
			lastTs[k] = e.Ts
		}
		switch e.Ph {
		case "B":
			depth[k]++
		case "E":
			depth[k]--
			if depth[k] < 0 {
				t.Fatalf("event %d: E without matching B on track %v", i, k)
			}
		case "i":
			switch e.Cat {
			case "violation":
				violations++
			case "chaos":
				injections++
			}
		}
	}
	for k, d := range depth {
		if d != 0 {
			t.Fatalf("track %v left %d spans open", k, d)
		}
	}
	if violations == 0 {
		t.Fatal("no violation instants in export")
	}
	if injections != 1 {
		t.Fatalf("got %d chaos instants, want 1", injections)
	}
	if got, _ := doc.OtherData["violations"].(float64); got < 1 {
		t.Fatalf("otherData.violations = %v, want >= 1", doc.OtherData["violations"])
	}
}

// TestExportPerfettoWorkerTracks exercises the execution-view process:
// worker annotations must yield pid-2 spans that follow task migration.
func TestExportPerfettoWorkerTracks(t *testing.T) {
	tr := perfettoTrace()
	for i := range tr.Events {
		tr.Events[i].W = 1 // worker 0
		if tr.Events[i].Task == 2 {
			tr.Events[i].W = 2 // task 2 stolen by worker 1
		}
	}
	var buf bytes.Buffer
	if err := trace.ExportPerfetto(tr, &buf, trace.PerfettoOptions{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int32  `json:"pid"`
			Tid int32  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	workers := map[int32]bool{}
	for _, e := range doc.TraceEvents {
		if e.Pid == 2 && e.Ph == "B" {
			workers[e.Tid] = true
		}
	}
	if !workers[0] || !workers[1] {
		t.Fatalf("worker tracks = %v, want spans on workers 0 and 1", workers)
	}
}
