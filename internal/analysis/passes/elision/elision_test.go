package elision_test

import (
	"testing"

	"github.com/taskpar/avd/internal/analysis/analysistest"
	"github.com/taskpar/avd/internal/analysis/passes/elision"
)

func TestElision(t *testing.T) {
	analysistest.Run(t, "../../testdata", elision.Analyzer, "elision")
}
