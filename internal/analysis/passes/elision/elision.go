// Package elision proves that an instrumented variable is only ever
// touched by a single step and reports its instrumentation as safely
// removable.
//
// Every instrumented access pays the checker's per-access dispatch. A
// handle whose accesses all happen in one step region — one task, with
// no task-structure operation between them — can never participate in
// an atomicity violation: there is no parallel step to interleave
// with. Removing (or never adding) its instrumentation is therefore
// sound, exactly like the annotation pruning a compiler pass would do.
// This composes with the dynamic redundant-access filter: the filter
// skips repeat accesses at runtime, elision removes the handle's
// events altogether.
//
// Two proofs are attempted, cheapest first. The single-step proof is
// purely local: the handle is bound once by x := s.New*Var(...), never
// escapes (no aliasing, no calls other than its own access methods, no
// Atomic grouping), all checker-visible accesses share one closure
// context, that context contains no structure operations and never
// hands its task to non-avd code (the callee could spawn), and no
// enclosing closure replicates it or re-instantiates it in a loop.
// When that fails, the static-MHP
// proof takes over: the staticmhp engine grows a static DPST per entry
// point, and a handle whose modeled access sites cover every
// instrumented access and are pairwise never-may-happen-in-parallel is
// serial even across steps — stores in a spawned child and loads after
// the join elide, which the single-step proof can never conclude.
// Either way, anything unprovable stays silent — the analyzer only
// speaks when elision is certain.
//
// Findings are informational (Severity info): they are a performance
// lever, not a contract violation, and never fail a lint run.
package elision

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/taskpar/avd/internal/analysis"
	"github.com/taskpar/avd/internal/analysis/avdapi"
	"github.com/taskpar/avd/internal/analysis/staticmhp"
)

// Analyzer is the elision pass.
var Analyzer = &analysis.Analyzer{
	Name:            "elision",
	Doc:             "report instrumented variables provably touched by a single step (instrumentation elidable)",
	DefaultSeverity: analysis.SeverityInfo,
	Run:             run,
}

// neutralMethods are handle methods that emit no checker event.
var neutralMethods = map[string]bool{
	"Value": true, "SetValue": true, "AddValue": true,
	"Name": true, "Loc": true, "Len": true, "LocAt": true,
}

// uninstrumented maps each instrumented access method to its
// event-free counterpart — the rewrite applied by avd-lint -fix.
var uninstrumented = map[string]string{
	"Load": "Value", "Store": "SetValue", "Add": "AddValue",
}

// handle tracks one candidate instrumented variable.
type handle struct {
	obj  *types.Var
	kind string
	// contexts collects the distinct closure contexts of all accesses;
	// the key is the innermost enclosing task closure (nil = the
	// declaring function's serial body).
	contexts map[*ast.FuncLit]bool
	// accesses are the instrumented call sites, in visit order; they
	// seed the suggested rewrite when the handle proves single-step.
	accesses []*ast.CallExpr
	bad      bool // escaped, grouped, or otherwise unprovable
}

func run(pass *analysis.Pass) error {
	index := pass.API.IndexTaskClosures(pass.Files)
	handles := collectHandles(pass)
	if len(handles) == 0 {
		return nil
	}
	classifyUses(pass, index, handles)

	var objs []*types.Var
	for obj := range handles {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		h := handles[obj]
		if h.bad || len(h.accesses) == 0 {
			continue
		}
		if len(h.contexts) == 1 {
			var ctx *ast.FuncLit
			for c := range h.contexts {
				ctx = c
			}
			if singleStepContext(pass, index, ctx, obj) {
				pass.Report(analysis.Diagnostic{
					Pos: obj.Pos(),
					Message: fmt.Sprintf(
						"%s %s is only ever accessed by a single step; its instrumentation can be elided safely (use a plain local, or keep it for documentation)",
						h.kind, obj.Name()),
					SuggestedFixes: elisionFix(h),
				})
				continue
			}
		}
		if staticallySerial(pass, h) {
			pass.Report(analysis.Diagnostic{
				Pos: obj.Pos(),
				Message: fmt.Sprintf(
					"%s %s is statically proven serial (no two accesses may happen in parallel); its instrumentation can be elided safely",
					h.kind, obj.Name()),
				SuggestedFixes: elisionFix(h),
			})
		}
	}
	return nil
}

// staticallySerial proves a handle serial through the static DPST: the
// trees of the package's entry points must model every one of the
// handle's instrumented accesses (same position set — a handle with
// accesses the trees never reach stays unproven), and within each tree
// the sites of each handle instance must be pairwise never-MHP,
// including against themselves (a site inside a replicated region
// sharing its instance may race with its own copies). Instances are
// checked independently: two inlinings of the declaring function bind
// two distinct runtime handles, and sites on different instances can
// never form a pattern on one location.
func staticallySerial(pass *analysis.Pass, h *handle) bool {
	eng := staticmhp.Shared(pass.API, pass.Files)
	want := make(map[token.Pos]bool, len(h.accesses))
	for _, call := range h.accesses {
		want[call.Pos()] = true
	}
	got := make(map[token.Pos]bool)
	for _, root := range eng.Roots() {
		tree := eng.Tree(root)
		var mine []*staticmhp.Site
		for _, s := range tree.Sites {
			if s.Key.Obj == h.obj {
				mine = append(mine, s)
			}
		}
		if len(mine) == 0 {
			continue
		}
		if tree.Truncated {
			return false
		}
		byInst := make(map[int][]*staticmhp.Site)
		for _, s := range mine {
			got[s.Pos] = true
			byInst[s.Key.Inst] = append(byInst[s.Key.Inst], s)
		}
		for _, sites := range byInst {
			scope := tree.Scope[sites[0].Key]
			for i, a := range sites {
				if tree.Par(a, a, scope) {
					return false
				}
				for _, b := range sites[i+1:] {
					if tree.Par(a, b, scope) {
						return false
					}
				}
			}
		}
	}
	if len(got) == 0 || len(got) != len(want) {
		return false
	}
	for p := range want {
		if !got[p] {
			return false
		}
	}
	return true
}

// elisionFix rewrites every instrumented access of a proven handle to
// its uninstrumented accessor: Load→Value, Store→SetValue,
// Add→AddValue, each dropping the task argument. The rewrite is
// behavior-preserving (same atomics underneath) and analysis-
// preserving (a single-step handle emits only events the checker would
// never pair into a violation).
func elisionFix(h *handle) []analysis.SuggestedFix {
	fix := analysis.SuggestedFix{
		Message: fmt.Sprintf("use uninstrumented accessors on %s", h.obj.Name()),
	}
	for _, call := range h.accesses {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		repl, ok := uninstrumented[sel.Sel.Name]
		if !ok || len(call.Args) == 0 {
			return nil
		}
		fix.TextEdits = append(fix.TextEdits, analysis.TextEdit{
			Pos: sel.Sel.Pos(), End: sel.Sel.End(), NewText: []byte(repl),
		})
		// Drop the task argument (always Args[0] on instrumented ops),
		// including the separating comma when more arguments follow.
		del := analysis.TextEdit{Pos: call.Args[0].Pos(), End: call.Args[0].End()}
		if len(call.Args) > 1 {
			del.End = call.Args[1].Pos()
		}
		fix.TextEdits = append(fix.TextEdits, del)
	}
	if len(fix.TextEdits) == 0 {
		return nil
	}
	return []analysis.SuggestedFix{fix}
}

// collectHandles finds x := s.New*Var(...) bindings.
func collectHandles(pass *analysis.Pass) map[*types.Var]*handle {
	handles := make(map[*types.Var]*handle)
	pass.Inspector.Preorder([]ast.Node{(*ast.AssignStmt)(nil)}, func(n ast.Node) {
		as := n.(*ast.AssignStmt)
		if len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i := range as.Lhs {
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			name, _, ok := pass.API.SessionOp(call)
			if !ok {
				continue
			}
			switch name {
			case "NewIntVar", "NewFloatVar", "NewIntArray", "NewFloatArray":
			default:
				continue
			}
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[id].(*types.Var)
			if !ok {
				continue
			}
			handles[obj] = &handle{obj: obj, kind: name[3:], contexts: map[*ast.FuncLit]bool{}}
		}
	})
	return handles
}

// classifyUses visits every use of every candidate and either records
// an access context or disqualifies the handle.
func classifyUses(pass *analysis.Pass, index map[*ast.FuncLit]*avdapi.ClosureInfo, handles map[*types.Var]*handle) {
	pass.Inspector.WithStack([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node, push bool, stack []ast.Node) {
		if !push {
			return
		}
		id := n.(*ast.Ident)
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return
		}
		h, ok := handles[obj]
		if !ok {
			return
		}
		// The only provable use shape is a direct method call x.M(...).
		if len(stack) >= 3 {
			if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.X == id {
				if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == sel {
					if _, isOp := pass.API.InstrumentedOp(call); isOp {
						ctx, provable := accessContext(index, stack)
						if !provable {
							h.bad = true
							return
						}
						h.contexts[ctx] = true
						h.accesses = append(h.accesses, call)
						return
					}
					if neutralMethods[sel.Sel.Name] {
						return
					}
				}
			}
		}
		h.bad = true // any other use: aliased, passed, grouped, returned
	})
}

// accessContext finds the innermost enclosing task closure of an
// access. The access is unprovable when a plain (non-task) function
// literal sits in between — that closure may run on any task, later,
// or many times.
func accessContext(index map[*ast.FuncLit]*avdapi.ClosureInfo, stack []ast.Node) (*ast.FuncLit, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		if _, isTask := index[lit]; isTask {
			return lit, true
		}
		return nil, false // plain closure in between
	}
	return nil, true // serial body of the declaring function
}

// singleStepContext checks that ctx executes as exactly one step for
// this handle: no structure operations inside it, not replicated, and
// no replicated closure between it and the handle's declaration.
func singleStepContext(pass *analysis.Pass, index map[*ast.FuncLit]*avdapi.ClosureInfo, ctx *ast.FuncLit, obj *types.Var) bool {
	var body ast.Node
	if ctx != nil {
		body = ctx.Body
	} else {
		// All accesses are in serial code; find the declaring function.
		for _, f := range pass.Files {
			if f.Pos() <= obj.Pos() && obj.Pos() < f.End() {
				body = enclosingFuncBody(f, obj.Pos())
			}
		}
		if body == nil {
			return false
		}
	}
	if containsStructureOp(pass, body) {
		return false
	}
	// Climb the closure chain: replication anywhere between the access
	// context and the declaration scope means many dynamic steps share
	// the one handle.
	for lit := ctx; lit != nil; {
		if lit.Pos() <= obj.Pos() && obj.Pos() < lit.End() {
			break // declared inside: outer replication makes fresh handles
		}
		info, ok := index[lit]
		if !ok {
			return false
		}
		// Replication means parallel copies; a structure call in a loop
		// means the closure is re-instantiated per iteration — many
		// dynamic steps either way, so the single-step claim is false
		// (the static proof may still show the steps are serial).
		if info.Replicated || info.InLoop {
			return false
		}
		lit = info.Frame
	}
	return true
}

// enclosingFuncBody finds the body of the innermost function
// declaration or literal containing pos.
func enclosingFuncBody(f *ast.File, pos token.Pos) ast.Node {
	var body ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false // prune subtrees that do not contain pos
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				body = fn.Body
			}
		case *ast.FuncLit:
			body = fn.Body
		}
		return true
	})
	return body
}

// containsStructureOp reports whether body contains any task-structure
// call, ignoring nested function literals. A call that hands the task
// to a non-avd function counts too: the callee may spawn or sync
// internally, which would split the context into several steps, so the
// single-step proof must give up on it.
func containsStructureOp(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if pass.API.Structure(call) != avdapi.KindNone {
				found = true
				return false
			}
			if passesTaskToUnknown(pass, call) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// passesTaskToUnknown reports whether call hands a *Task to a callee
// outside the avd API (or to an unresolvable callee, such as a call
// through a function variable). avd's own entry points are exempt: the
// handle methods and mutex operations never alter task structure.
func passesTaskToUnknown(pass *analysis.Pass, call *ast.CallExpr) bool {
	if fn := pass.API.Callee(call); fn != nil && fn.Pkg() != nil && avdapi.IsAVDPath(fn.Pkg().Path()) {
		return false
	}
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && avdapi.IsTaskPtr(tv.Type) {
			return true
		}
	}
	return false
}
