// Package staticavd reports compile-time atomicity-violation
// candidates: the paper's three-access patterns (R-W-R, W-R-W, W-W-R,
// W-W-W, R-W-W) found over the static DPST instead of a runtime
// schedule.
//
// The dynamic checker flags two accesses of one step to a location ℓ
// when a third access to ℓ from a parallel step could interleave them
// unserializably. This analyzer runs the same pattern automaton over
// staticmhp facts: pattern pairs are same-static-step access pairs
// (plus reversed and self pairs inside loops, where one static site
// stands for many dynamic accesses), the interleaver is any site on
// the same location that may happen in parallel, and the paper's
// non-strict mode is honored by skipping pairs whose two accesses sit
// in the same critical section of a common mutex. Locations are
// handle instances, with Session.Atomic groups collapsed to one
// location exactly as the runtime maps grouped variables to their
// first member.
//
// Candidates are advisory (info severity): the static schedule
// over-approximates — branch alternatives look sequential, loops run
// once with replication marks — so a candidate means "a schedule the
// static tree admits violates atomicity", not "this run will". The CI
// differential gate anchors the direction that must be exact: every
// seeded violation the dynamic checker reports is at least a static
// candidate here.
package staticavd

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"github.com/taskpar/avd/internal/analysis"
	"github.com/taskpar/avd/internal/analysis/avdapi"
	"github.com/taskpar/avd/internal/analysis/staticmhp"
)

// Analyzer reports static atomicity-violation candidates.
var Analyzer = &analysis.Analyzer{
	Name:            "staticavd",
	Doc:             "report compile-time atomicity-violation candidates (unserializable three-access patterns over statically may-happen-in-parallel accesses)",
	DefaultSeverity: analysis.SeverityInfo,
	Run:             run,
}

// maxGroupSites bounds per-location pair enumeration.
const maxGroupSites = 64

// maxPerLocation caps reports per location so one hot handle does not
// flood the output.
const maxPerLocation = 4

func run(pass *analysis.Pass) error {
	eng := staticmhp.Shared(pass.API, pass.Files)
	groups := atomicGroups(pass)
	seen := make(map[string]bool)
	for _, root := range eng.Roots() {
		tree := eng.Tree(root)
		if tree.Truncated {
			continue
		}
		checkTree(pass, tree, groups, seen)
	}
	return nil
}

// atomicGroups resolves Session.Atomic calls to a union-find over
// handle variables: grouped handles form one location, mirroring the
// runtime's mapping of every group member to the first variable's Loc.
func atomicGroups(pass *analysis.Pass) map[*types.Var]*types.Var {
	parent := make(map[*types.Var]*types.Var)
	var find func(v *types.Var) *types.Var
	find = func(v *types.Var) *types.Var {
		p, ok := parent[v]
		if !ok || p == v {
			return v
		}
		r := find(p)
		parent[v] = r
		return r
	}
	pass.Inspector.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		name, _, ok := pass.API.SessionOp(call)
		if !ok || name != "Atomic" {
			return
		}
		var vars []*types.Var
		for _, arg := range call.Args {
			if v := pass.API.ObjectOf(arg); v != nil {
				vars = append(vars, v)
			}
		}
		if len(vars) == 0 {
			return
		}
		for _, v := range vars {
			if _, ok := parent[v]; !ok {
				parent[v] = v
			}
		}
		for _, v := range vars[1:] {
			ra, rb := find(vars[0]), find(v)
			if ra != rb {
				parent[rb] = ra
			}
		}
	})
	roots := make(map[*types.Var]*types.Var, len(parent))
	for v := range parent {
		roots[v] = find(v)
	}
	return roots
}

// location is the canonical pattern location of a site.
type location struct {
	key     avdapi.HandleKey
	grouped bool
}

// canonical collapses Atomic-grouped handles to their representative
// variable. The instance number is dropped for grouped handles: the
// group declaration ties the instances together anyway.
func canonical(s *staticmhp.Site, groups map[*types.Var]*types.Var) location {
	if s.Key.Obj != nil {
		if rep, ok := groups[s.Key.Obj]; ok {
			return location{key: avdapi.HandleKey{Obj: rep}, grouped: true}
		}
	}
	return location{key: s.Key}
}

func checkTree(pass *analysis.Pass, tree *staticmhp.Tree, groups map[*types.Var]*types.Var, seen map[string]bool) {
	byLoc := make(map[location][]*staticmhp.Site)
	var order []location
	for _, s := range tree.Sites {
		loc := canonical(s, groups)
		if len(byLoc[loc]) == 0 {
			order = append(order, loc)
		}
		byLoc[loc] = append(byLoc[loc], s)
	}
	for _, loc := range order {
		sites := byLoc[loc]
		if len(sites) < 2 || len(sites) > maxGroupSites {
			continue
		}
		checkLocation(pass, tree, loc, sites, seen)
	}
}

// checkLocation enumerates pattern pairs and interleavers for one
// location.
func checkLocation(pass *analysis.Pass, tree *staticmhp.Tree, loc location, sites []*staticmhp.Site, seen map[string]bool) {
	reported := 0
	local := make(map[string]bool)
	emit := func(a1, c, a2 *staticmhp.Site) {
		if reported >= maxPerLocation {
			return
		}
		pattern := accessLetter(a1) + "-" + accessLetter(c) + "-" + accessLetter(a2)
		prov := "the entry task"
		if sp := tree.SpawnSite(c); sp.IsValid() {
			prov = "task spawned at " + shortPos(pass, sp)
		}
		dedupe := fmt.Sprintf("%d|%s|%s", a1.Pos, pattern, prov)
		if local[dedupe] {
			return
		}
		local[dedupe] = true
		msg := fmt.Sprintf(
			"atomicity-violation candidate on %s %s: pattern %s — pair %s then %s may be interleaved by the %s at %s (%s)",
			kindOf(tree, a1), loc.key.Name(), pattern,
			shortPos(pass, a1.Pos), shortPos(pass, a2.Pos),
			accessWord(c), shortPos(pass, c.Pos), prov)
		global := fmt.Sprintf("%d|%s", a1.Pos, msg)
		if seen[global] {
			return
		}
		seen[global] = true
		reported++
		pass.Report(analysis.Diagnostic{Pos: a1.Pos, Message: msg})
	}

	pairs := patternPairs(sites)
	for _, p := range pairs {
		a1, a2 := p[0], p[1]
		if sameSection(a1, a2) || staticmhp.Exclusive(a1, a2) {
			continue
		}
		scope := tree.Scope[a1.Key]
		for _, c := range sites {
			if c == a1 || c == a2 {
				// A site interleaves its own pair only across dynamic
				// copies of a replicated region.
				if !tree.Par(c, c, scope) {
					continue
				}
			} else if !tree.Par(c, a1, scope) ||
				staticmhp.Exclusive(c, a1) || staticmhp.Exclusive(c, a2) {
				continue
			}
			if serializable(a1, c, a2) {
				continue
			}
			emit(a1, c, a2)
		}
	}
}

// patternPairs returns the ordered same-step access pairs: (earlier,
// later) by abstract execution order, both directions and self-pairs
// for loop sites (a loop's static site stands for many accesses of
// one dynamic step, in both relative orders).
func patternPairs(sites []*staticmhp.Site) [][2]*staticmhp.Site {
	var pairs [][2]*staticmhp.Site
	for i, a := range sites {
		if a.InLoop {
			pairs = append(pairs, [2]*staticmhp.Site{a, a})
		}
		for _, b := range sites[i+1:] {
			if a.Step != b.Step {
				continue
			}
			a1, a2 := a, b
			if b.Seq < a.Seq {
				a1, a2 = b, a
			}
			pairs = append(pairs, [2]*staticmhp.Site{a1, a2})
			if a.InLoop && b.InLoop {
				pairs = append(pairs, [2]*staticmhp.Site{a2, a1})
			}
		}
	}
	return pairs
}

// sameSection reports whether two accesses share a critical section of
// any common mutex (the paper's non-strict suppression).
func sameSection(a, b *staticmhp.Site) bool {
	for key, id := range a.Locks {
		if id2, ok := b.Locks[key]; ok && id == id2 {
			return true
		}
	}
	return false
}

// serializable applies the paper's serializability rule to the pattern
// (a1, c, a2): the interleaving is harmless iff the middle access is a
// read and at least one pair access is a read.
func serializable(a1, c, a2 *staticmhp.Site) bool {
	return !c.Write && (!a1.Write || !a2.Write)
}

func accessLetter(s *staticmhp.Site) string {
	if s.Write {
		return "W"
	}
	return "R"
}

func accessWord(s *staticmhp.Site) string {
	if s.Write {
		return "write"
	}
	return "read"
}

// kindOf names the handle kind of a site's instance when the tree saw
// its declaration.
func kindOf(tree *staticmhp.Tree, s *staticmhp.Site) string {
	if k, ok := tree.DeclKind[s.Key]; ok {
		return k
	}
	return "handle"
}

// shortPos renders a position as base-filename:line:col.
func shortPos(pass *analysis.Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", filepath.Base(p.Filename), p.Line, p.Column)
}
