package staticavd_test

import (
	"testing"

	"github.com/taskpar/avd/internal/analysis/analysistest"
	"github.com/taskpar/avd/internal/analysis/passes/staticavd"
)

func TestStaticAVD(t *testing.T) {
	analysistest.Run(t, "../../testdata", staticavd.Analyzer, "staticavd")
}
