package lockdiscipline_test

import (
	"testing"

	"github.com/taskpar/avd/internal/analysis/analysistest"
	"github.com/taskpar/avd/internal/analysis/passes/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "../../testdata", lockdiscipline.Analyzer, "lockdiscipline")
}
