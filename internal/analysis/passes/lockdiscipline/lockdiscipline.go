// Package lockdiscipline statically checks the critical-section shape
// assumptions of the checker's lock handling (paper Section 3.3).
//
// The dynamic runtime panics with a UsageError on Unlock-without-hold
// and on Finish/Sync while holding an instrumented mutex; this pass
// reports those misuses at compile time, plus the ones the runtime
// cannot cheaply see: double-locking the same mutex on one path (a
// guaranteed self-deadlock, since instrumented mutexes are not
// reentrant) and critical sections that span a Spawn (the lock is held
// by the spawning task while the child runs, so the paper's lock-
// versioning model no longer describes a properly scoped critical
// section).
//
// Each function body is abstractly interpreted with a must-held /
// may-held lockset keyed by the mutex receiver expression; branches
// fork the state and joins intersect must-held and union may-held.
// Deferred unlocks keep the mutex in the held set (they release at
// return, not at the end of the enclosing block). Function literals
// are separate frames: a closure runs on its own task with its own
// lockset.
package lockdiscipline

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"

	"github.com/taskpar/avd/internal/analysis"
	"github.com/taskpar/avd/internal/analysis/avdapi"
)

// Analyzer is the lockdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "flag unlock-without-lock, double-lock, and critical sections spanning task structure operations",
	Run:  run,
}

// state is the abstract lockset at one program point.
type state struct {
	must map[string]int  // definitely-held acquisition counts
	may  map[string]bool // possibly-held
	dead bool            // path has returned or branched away
}

func newState() *state {
	return &state{must: map[string]int{}, may: map[string]bool{}}
}

func (s *state) clone() *state {
	c := newState()
	c.dead = s.dead
	for k, v := range s.must {
		c.must[k] = v
	}
	for k := range s.may {
		c.may[k] = true
	}
	return c
}

// merge joins two branch states: must is the pointwise minimum, may
// the union; a dead branch contributes nothing.
func merge(a, b *state) *state {
	if a.dead {
		return b
	}
	if b.dead {
		return a
	}
	m := newState()
	for k, va := range a.must {
		if vb := b.must[k]; vb > 0 && va > 0 {
			if vb < va {
				m.must[k] = vb
			} else {
				m.must[k] = va
			}
		}
	}
	for k := range a.may {
		m.may[k] = true
	}
	for k := range b.may {
		m.may[k] = true
	}
	return m
}

// frame analyzes one function body.
type frame struct {
	pass     *analysis.Pass
	hasLock  map[string]bool // mutex keys this frame Locks somewhere
	reported map[string]bool // dedup key: kind+lock+pos
}

func run(pass *analysis.Pass) error {
	pass.Inspector.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil {
			return
		}
		f := &frame{pass: pass, hasLock: map[string]bool{}, reported: map[string]bool{}}
		f.scanLocks(body)
		f.walkStmt(body, newState())
	})
	return nil
}

// lockKey names a mutex by its receiver expression, so m, locks[i],
// and c.mu are distinct critical-section identities.
func (f *frame) lockKey(recv ast.Expr) string {
	return types.ExprString(recv)
}

// scanLocks records which mutex keys the frame acquires anywhere, so
// unlock-without-lock only fires in functions that manage the lock
// themselves (a dedicated unlock helper stays silent).
func (f *frame) scanLocks(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if acc, ok := f.pass.API.InstrumentedOp(call); ok && acc.Mutex && acc.Kind == "Lock" {
				f.hasLock[f.lockKey(acc.Recv)] = true
			}
		}
		return true
	})
}

func (f *frame) reportOnce(pos ast.Node, key, format string, args ...any) {
	id := key + "@" + strconv.Itoa(int(pos.Pos()))
	if f.reported[id] {
		return
	}
	f.reported[id] = true
	f.pass.Reportf(pos.Pos(), format, args...)
}

// walkStmt interprets one statement, mutating st in place.
func (f *frame) walkStmt(s ast.Stmt, st *state) {
	if s == nil {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			if st.dead {
				break
			}
			f.walkStmt(sub, st)
		}
	case *ast.ExprStmt:
		f.walkExpr(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			f.walkExpr(e, st)
		}
		for _, e := range s.Lhs {
			f.walkExpr(e, st)
		}
	case *ast.IfStmt:
		f.walkStmt(s.Init, st)
		f.walkExpr(s.Cond, st)
		then := st.clone()
		f.walkStmt(s.Body, then)
		els := st.clone()
		f.walkStmt(s.Else, els)
		*st = *merge(then, els)
	case *ast.ForStmt:
		f.walkStmt(s.Init, st)
		f.walkExpr(s.Cond, st)
		body := st.clone()
		f.walkStmt(s.Body, body)
		f.walkStmt(s.Post, body)
		*st = *merge(st, body)
	case *ast.RangeStmt:
		f.walkExpr(s.X, st)
		body := st.clone()
		f.walkStmt(s.Body, body)
		*st = *merge(st, body)
	case *ast.SwitchStmt:
		f.walkStmt(s.Init, st)
		f.walkExpr(s.Tag, st)
		f.walkCases(s.Body, st, false)
	case *ast.TypeSwitchStmt:
		f.walkStmt(s.Init, st)
		f.walkStmt(s.Assign, st)
		f.walkCases(s.Body, st, false)
	case *ast.SelectStmt:
		f.walkCases(s.Body, st, true)
	case *ast.CaseClause, *ast.CommClause:
		// handled by walkCases
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			f.walkExpr(e, st)
		}
		st.dead = true
	case *ast.BranchStmt:
		st.dead = true
	case *ast.DeferStmt:
		// A deferred unlock releases at return: the mutex stays held for
		// everything that follows, so no state change — and no checks, the
		// runtime order is not statement order.
		for _, a := range s.Call.Args {
			f.walkExpr(a, st)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			f.walkExpr(a, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						f.walkExpr(v, st)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		f.walkStmt(s.Stmt, st)
	case *ast.IncDecStmt:
		f.walkExpr(s.X, st)
	case *ast.SendStmt:
		f.walkExpr(s.Chan, st)
		f.walkExpr(s.Value, st)
	}
}

// walkCases interprets a switch/select body: every clause forks from
// the pre-state and the results merge; without a default the zero
// clause path merges in too.
func (f *frame) walkCases(body *ast.BlockStmt, st *state, isSelect bool) {
	pre := st.clone()
	var out *state
	hasDefault := false
	for _, c := range body.List {
		cs := pre.clone()
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				f.walkExpr(e, cs)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			f.walkStmt(c.Comm, cs)
			stmts = c.Body
		}
		for _, sub := range stmts {
			if cs.dead {
				break
			}
			f.walkStmt(sub, cs)
		}
		if out == nil {
			out = cs
		} else {
			out = merge(out, cs)
		}
	}
	if out == nil {
		return
	}
	if !hasDefault && !isSelect {
		out = merge(out, pre)
	}
	*st = *out
}

// walkExpr interprets the calls inside an expression, skipping nested
// function literals (separate frames).
func (f *frame) walkExpr(e ast.Expr, st *state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f.applyCall(call, st)
		return true
	})
}

// applyCall updates the lockset for a lock operation and checks
// structure operations against the held set.
func (f *frame) applyCall(call *ast.CallExpr, st *state) {
	if acc, ok := f.pass.API.InstrumentedOp(call); ok && acc.Mutex {
		key := f.lockKey(acc.Recv)
		switch acc.Kind {
		case "Lock":
			if st.must[key] > 0 {
				f.reportOnce(call, "double:"+key,
					"mutex %s is locked again on a path where it is already held; instrumented mutexes are not reentrant and this self-deadlocks", key)
			}
			st.must[key]++
			st.may[key] = true
		case "Unlock":
			if !st.may[key] && f.hasLock[key] {
				f.reportOnce(call, "orphan:"+key,
					"mutex %s is unlocked without a dominating Lock on this path; the runtime raises a UsageError here", key)
			}
			if st.must[key] > 0 {
				st.must[key]--
				if st.must[key] == 0 {
					delete(st.must, key)
					delete(st.may, key)
				}
			}
		}
		return
	}
	kind := f.pass.API.Structure(call)
	if kind == avdapi.KindNone {
		return
	}
	var held []string
	for k, v := range st.must {
		if v > 0 {
			held = append(held, k)
		}
	}
	if len(held) == 0 {
		return
	}
	sort.Strings(held)
	f.reportOnce(call, "span:"+held[0],
		"critical section of mutex %s spans %s; the lock is held across the task boundary, which breaks the checker's critical-section scoping (and panics at runtime for Finish/Sync)",
		held[0], kind)
	heldSet := make(map[string]bool, len(held))
	for _, k := range held {
		heldSet[k] = true
	}
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			f.checkOrphanPair(lit, kind, heldSet)
		}
	}
}

// checkOrphanPair scans a task closure handed to a structure call made
// while holding locks: an Unlock of a held mutex inside the closure,
// without the closure's own prior Lock, splits the lock/unlock pair
// across two tasks. The child's unlock is attributed to the child's
// step while the runtime's hold belongs to the parent, so the
// critical-section versioning no longer describes either task (and the
// runtime raises a UsageError when the child unlocks a mutex it never
// locked).
func (f *frame) checkOrphanPair(lit *ast.FuncLit, kind avdapi.StructureKind, held map[string]bool) {
	local := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // deeper closures run on yet another task
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		acc, ok := f.pass.API.InstrumentedOp(call)
		if !ok || !acc.Mutex {
			return true
		}
		key := f.lockKey(acc.Recv)
		switch acc.Kind {
		case "Lock":
			local[key] = true
		case "Unlock":
			if held[key] && !local[key] {
				f.reportOnce(call, "xclosure:"+key,
					"mutex %s is unlocked in the task closure of %s but locked by the spawning task; the lock/unlock pair spans two tasks, so neither task's critical section is properly scoped", key, kind)
			}
		}
		return true
	})
}
