// Package sessionhandle tracks, by local dataflow, which Session every
// handle (instrumented variable, mutex) and every task came from, and
// flags uses that cross sessions or follow Close.
//
// A session's location IDs and DPST nodes live in a namespace of their
// own: feeding an access from session A's task into a handle of
// session B silently corrupts both analyses, which is why the runtime
// guards every access with a UsageError panic. This pass reports the
// same misuses before the program runs: a handle created by one
// NewSession used with a task of another, and any use of a session (or
// of its handles) after an unconditional Close on the same path.
//
// The dataflow is local and syntactic: session identity propagates
// through := assignments, handle constructors (NewIntVar, NewMutex,
// ...), Run closures, and the task parameters of structure operations.
// Sessions arriving through parameters or fields are not tracked — no
// false positives, at the cost of unseen flows.
package sessionhandle

import (
	"go/ast"
	"go/types"

	"github.com/taskpar/avd/internal/analysis"
	"github.com/taskpar/avd/internal/analysis/avdapi"
)

// Analyzer is the sessionhandle pass.
var Analyzer = &analysis.Analyzer{
	Name: "sessionhandle",
	Doc:  "flag cross-session handle use and session use after Close",
	Run:  run,
}

// tracker carries the session-origin dataflow facts.
type tracker struct {
	pass *analysis.Pass
	// origin maps session, handle, and task variables to the session
	// (identified by a small int per NewSession call site) they belong to.
	origin map[*types.Var]int
	// name names each session id after the first variable bound to it.
	name map[int]string
	next int
}

func run(pass *analysis.Pass) error {
	tr := &tracker{pass: pass, origin: map[*types.Var]int{}, name: map[int]string{}}
	tr.propagate()
	tr.checkCrossSession()
	tr.checkUseAfterClose()
	return nil
}

// def resolves the variable defined by an identifier.
func (tr *tracker) def(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := tr.pass.TypesInfo.Defs[id].(*types.Var)
	return v
}

// bind records that v belongs to session id.
func (tr *tracker) bind(v *types.Var, id int) {
	if v == nil || id == 0 {
		return
	}
	tr.origin[v] = id
	if tr.name[id] == "" && avdapi.IsSessionPtr(v.Type()) {
		tr.name[id] = v.Name()
	}
}

// originOf returns the session id of the variable an expression names
// (0 = unknown).
func (tr *tracker) originOf(e ast.Expr) int {
	if v := tr.pass.API.ObjectOf(e); v != nil {
		return tr.origin[v]
	}
	return 0
}

// sessionName renders a session id for diagnostics.
func (tr *tracker) sessionName(id int) string {
	if n := tr.name[id]; n != "" {
		return n
	}
	return "?"
}

// propagate walks the package in document order, which visits every
// definition before the uses the checks care about (structure calls
// appear before the closures they receive).
func (tr *tracker) propagate() {
	tr.pass.Inspector.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.ValueSpec)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					tr.bindValue(tr.def(n.Lhs[i]), n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					if v, ok := tr.pass.TypesInfo.Defs[n.Names[i]].(*types.Var); ok {
						tr.bindValue(v, n.Values[i])
					}
				}
			}
		case *ast.CallExpr:
			tr.bindClosureTasks(n)
		}
	})
}

// bindValue propagates session identity through one v := rhs binding.
func (tr *tracker) bindValue(v *types.Var, rhs ast.Expr) {
	if v == nil {
		return
	}
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if tr.pass.API.IsNewSession(rhs) {
			tr.next++
			tr.bind(v, tr.next)
			return
		}
		if name, recv, ok := tr.pass.API.SessionOp(rhs); ok && len(name) > 3 && name[:3] == "New" {
			tr.bind(v, tr.originOf(recv))
		}
	case *ast.Ident:
		tr.bind(v, tr.originOf(rhs))
	}
}

// bindClosureTasks gives the task parameters of structure-call
// closures the session of the receiver (session for Run, task for the
// rest; the task argument for ParallelFor/ParallelRange).
func (tr *tracker) bindClosureTasks(call *ast.CallExpr) {
	kind := tr.pass.API.Structure(call)
	if kind == avdapi.KindNone {
		return
	}
	var src int
	switch kind {
	case avdapi.KindParallelFor, avdapi.KindParallelRange:
		if len(call.Args) > 0 {
			src = tr.originOf(call.Args[0])
		}
	default:
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			src = tr.originOf(sel.X)
		}
	}
	if src == 0 {
		return
	}
	for _, lit := range tr.pass.API.TaskClosures(kind, call) {
		tr.bind(tr.pass.API.TaskParam(lit), src)
	}
}

// checkCrossSession reports instrumented operations whose handle and
// task belong to different sessions.
func (tr *tracker) checkCrossSession() {
	tr.pass.Inspector.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		acc, ok := tr.pass.API.InstrumentedOp(call)
		if !ok {
			return
		}
		hid := tr.originOf(acc.Recv)
		tid := tr.originOf(acc.Task)
		if hid != 0 && tid != 0 && hid != tid {
			what := "handle"
			if acc.Mutex {
				what = "mutex"
			}
			tr.pass.Reportf(call.Pos(),
				"%s %s was created by session %s but is used with a task of session %s; cross-session handles corrupt the analysis and raise a UsageError at runtime",
				what, types.ExprString(acc.Recv), tr.sessionName(hid), tr.sessionName(tid))
		}
	})
}

// checkUseAfterClose scans each block's statement list in order: after
// an unconditional s.Close(), any later use of s or of a handle bound
// to it on the same path is reported. Close itself is exempt (Close is
// idempotent), and rebinding the variable to a fresh session clears
// the closed mark.
func (tr *tracker) checkUseAfterClose() {
	tr.pass.Inspector.Preorder([]ast.Node{(*ast.BlockStmt)(nil)}, func(n ast.Node) {
		block := n.(*ast.BlockStmt)
		closed := map[int]ast.Node{}
		for _, stmt := range block.List {
			if len(closed) > 0 {
				tr.reportUses(stmt, closed)
			}
			if es, ok := stmt.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if name, recv, ok := tr.pass.API.SessionOp(call); ok && name == "Close" {
						if id := tr.originOf(recv); id != 0 {
							closed[id] = call
						}
					}
				}
			}
			if as, ok := stmt.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if v := tr.pass.API.ObjectOf(lhs); v != nil {
						delete(closed, tr.origin[v])
					}
				}
			}
		}
	})
}

// reportUses flags session and handle uses of closed sessions inside
// one statement subtree.
func (tr *tracker) reportUses(stmt ast.Stmt, closed map[int]ast.Node) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, recv, ok := tr.pass.API.SessionOp(call); ok && name != "Close" {
			if id := tr.originOf(recv); id != 0 {
				if _, isClosed := closed[id]; isClosed {
					tr.pass.Reportf(call.Pos(),
						"session %s is used after Close; the worker pool is gone and the runtime raises a UsageError",
						tr.sessionName(id))
				}
			}
		}
		if acc, ok := tr.pass.API.InstrumentedOp(call); ok {
			if id := tr.originOf(acc.Recv); id != 0 {
				if _, isClosed := closed[id]; isClosed {
					tr.pass.Reportf(call.Pos(),
						"handle %s belongs to session %s, which was already closed on this path",
						types.ExprString(acc.Recv), tr.sessionName(id))
				}
			}
		}
		return true
	})
}
