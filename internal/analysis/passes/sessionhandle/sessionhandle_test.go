package sessionhandle_test

import (
	"testing"

	"github.com/taskpar/avd/internal/analysis/analysistest"
	"github.com/taskpar/avd/internal/analysis/passes/sessionhandle"
)

func TestSessionHandle(t *testing.T) {
	analysistest.Run(t, "../../testdata", sessionhandle.Analyzer, "sessionhandle")
}
