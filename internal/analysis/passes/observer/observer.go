// Package observer flags Observer callbacks that call back into the
// session that invokes them.
//
// The live-observability callbacks (Observer.OnViolation, OnDrop,
// OnSaturation, OnTaskPanic) run synchronously on the goroutine that
// produced the event — OnViolation fires from inside the checker's
// per-location critical section. Calling back into the session from
// there (Report, Snapshot, Close, an instrumented Load/Store, a
// structure operation) can deadlock on checker-internal locks or
// recurse into the analysis mid-dispatch. The runtime cannot guard
// this cheaply — the callbacks exist precisely to avoid hot-path
// overhead — so the contract is enforced statically here.
//
// Detection is syntactic and conservative in the safe direction: every
// function literal bound to an Observer field (in a composite literal
// or by assignment) is scanned, and any session operation, instrumented
// access, or task-structure call inside it is reported, regardless of
// which session the values belong to. Escaping to another goroutine
// (e.g. sending the event on a channel consumed elsewhere) is the
// supported pattern and is not flagged.
package observer

import (
	"go/ast"
	"strings"

	"github.com/taskpar/avd/internal/analysis"
	"github.com/taskpar/avd/internal/analysis/avdapi"
)

// Analyzer is the observer pass.
var Analyzer = &analysis.Analyzer{
	Name: "observer",
	Doc:  "flag Observer callbacks that call back into the session",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// callbacks maps each observer-callback function literal to the
	// Observer field it is bound to.
	callbacks := map[*ast.FuncLit]string{}

	pass.Inspector.Preorder([]ast.Node{(*ast.CompositeLit)(nil), (*ast.AssignStmt)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok || !avdapi.IsObserver(tv.Type) {
				return
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || !strings.HasPrefix(key.Name, "On") {
					continue
				}
				if lit, ok := ast.Unparen(kv.Value).(*ast.FuncLit); ok {
					callbacks[lit] = key.Name
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return
			}
			for i := range n.Lhs {
				sel, ok := ast.Unparen(n.Lhs[i]).(*ast.SelectorExpr)
				if !ok || !strings.HasPrefix(sel.Sel.Name, "On") {
					continue
				}
				tv, ok := pass.TypesInfo.Types[sel.X]
				if !ok || !avdapi.IsObserver(tv.Type) {
					continue
				}
				if lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
					callbacks[lit] = sel.Sel.Name
				}
			}
		}
	})

	for lit, field := range callbacks {
		checkCallback(pass, lit, field)
	}
	return nil
}

// checkCallback reports session re-entry inside one observer callback.
// Nested function literals are scanned too — a closure defined in the
// callback still runs on the checker's goroutine unless it is handed
// off, and a plain `go` or channel send is the escape hatch the
// analyzer deliberately leaves unflagged (the goroutine body is a
// GoStmt child, which is skipped).
func checkCallback(pass *analysis.Pass, lit *ast.FuncLit, field string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false // handed off the checker's goroutine: allowed
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, _, ok := pass.API.SessionOp(call); ok {
			pass.Reportf(call.Pos(),
				"Observer.%s calls Session.%s: observer callbacks run inside the analysis (OnViolation under the checker's per-location lock) and must not call back into the session; record the event and act after Run returns",
				field, name)
			return true
		}
		if acc, ok := pass.API.InstrumentedOp(call); ok {
			what := "instrumented access"
			if acc.Mutex {
				what = "instrumented lock operation"
			}
			pass.Reportf(call.Pos(),
				"Observer.%s performs an %s (%s): observer callbacks run inside the analysis and re-entering the checker can deadlock; record the event and act after Run returns",
				field, what, acc.Kind)
			return true
		}
		if kind := pass.API.Structure(call); kind != avdapi.KindNone {
			pass.Reportf(call.Pos(),
				"Observer.%s calls %s: observer callbacks run inside the analysis and must not drive the task runtime; record the event and act after Run returns",
				field, kind)
		}
		return true
	})
}
