package observer_test

import (
	"testing"

	"github.com/taskpar/avd/internal/analysis/analysistest"
	"github.com/taskpar/avd/internal/analysis/passes/observer"
)

func TestObserver(t *testing.T) {
	analysistest.Run(t, "../../testdata", observer.Analyzer, "observer")
}
