// Package sharedescape flags plain Go variables that are captured and
// written by logically parallel task closures.
//
// The checker only sees accesses that flow through instrumented
// handles (IntVar, FloatVar, IntArray, FloatArray) — the stand-in for
// the paper's type-qualifier annotations and LLVM instrumentation
// pass. A plain variable mutated from two parallel closures produces
// NO events at all: the access history for it is empty, every MHP
// question about it is unasked, and a real atomicity violation (or
// plain data race) is silently invisible. sharedescape reports such
// captures and names the instrumented constructor that would make the
// accesses visible.
//
// The parallelism approximation is syntactic: two distinct forking
// closures (Spawn, CilkSpawn, Parallel, ParallelFor, ParallelRange
// bodies) are treated as logically parallel, and a replicated closure
// (a ParallelFor/ParallelRange body, or a spawn inside a loop) is
// parallel with itself. Writes that only happen in serial code are not
// reported — they are ordered before the forks in the common pattern.
package sharedescape

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/taskpar/avd/internal/analysis"
	"github.com/taskpar/avd/internal/analysis/avdapi"
)

// Analyzer is the sharedescape pass.
var Analyzer = &analysis.Analyzer{
	Name: "sharedescape",
	Doc:  "flag uninstrumented variables written by logically parallel task closures",
	Run:  run,
}

// ref is one reference to a candidate variable.
type ref struct {
	pos   token.Pos
	ctx   *ast.FuncLit // innermost forking closure, or nil for serial code
	write bool
}

func run(pass *analysis.Pass) error {
	index := pass.API.IndexTaskClosures(pass.Files)
	writes := collectWriteIdents(pass)
	refs := make(map[*types.Var][]ref)

	pass.Inspector.WithStack([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node, push bool, stack []ast.Node) {
		if !push {
			return
		}
		id := n.(*ast.Ident)
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !candidate(obj) {
			return
		}
		refs[obj] = append(refs[obj], ref{
			pos:   id.Pos(),
			ctx:   forkingContext(index, stack),
			write: writes[id],
		})
	})

	var objs []*types.Var
	for obj := range refs {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		report(pass, index, obj, refs[obj])
	}
	return nil
}

// candidate reports whether obj is a plain shared-data variable the
// checker cannot see: not an instrumented handle, task, session, or
// deliberate sync primitive, and not a struct field selector.
func candidate(obj *types.Var) bool {
	if obj.Name() == "_" || obj.IsField() {
		return false
	}
	t := obj.Type()
	if avdapi.IsInstrumented(t) {
		return false
	}
	if syncType(t) {
		return false
	}
	// Functions and channels synchronize by other means; flagging them
	// as "uninstrumented shared data" would only be noise.
	switch t.Underlying().(type) {
	case *types.Signature, *types.Chan:
		return false
	}
	return true
}

// syncType reports whether t names (or points to) a type from the sync
// or sync/atomic packages.
func syncType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic")
}

// forkingContext returns the innermost enclosing forking task closure
// from the ancestor stack, or nil for serial code.
func forkingContext(index map[*ast.FuncLit]*avdapi.ClosureInfo, stack []ast.Node) *ast.FuncLit {
	for i := len(stack) - 1; i >= 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		if info, ok := index[lit]; ok && info.Kind.Forks() {
			return lit
		}
	}
	return nil
}

// collectWriteIdents finds the root identifiers of every write: assign
// LHS, IncDec operands, and address-taken operands (a pointer may be
// written through later).
func collectWriteIdents(pass *analysis.Pass) map[*ast.Ident]bool {
	writes := make(map[*ast.Ident]bool)
	mark := func(e ast.Expr) {
		if id := rootIdent(pass, e); id != nil {
			writes[id] = true
		}
	}
	pass.Inspector.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.IncDecStmt)(nil), (*ast.UnaryExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return // declarations bind fresh variables
			}
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
	})
	return writes
}

// rootIdent unwraps index, selector, star, and paren chains to the
// base identifier being written (handling package-qualified globals).
func rootIdent(pass *analysis.Pass, e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if base, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := pass.TypesInfo.Uses[base].(*types.PkgName); isPkg {
					return x.Sel
				}
			}
			e = x.X
		default:
			return nil
		}
	}
}

// report decides whether obj's references make it parallel-shared and
// emits the diagnostic.
func report(pass *analysis.Pass, index map[*ast.FuncLit]*avdapi.ClosureInfo, obj *types.Var, rs []ref) {
	ctxs := make(map[*ast.FuncLit]bool)
	var firstParWrite token.Pos
	parWrites := 0
	for _, r := range rs {
		if r.ctx == nil {
			continue
		}
		ctxs[r.ctx] = true
		if r.write {
			parWrites++
			if firstParWrite == token.NoPos || r.pos < firstParWrite {
				firstParWrite = r.pos
			}
		}
	}
	if parWrites == 0 {
		return
	}
	shared := len(ctxs) >= 2
	if !shared {
		// One context: shared only when the closure replicates itself AND
		// the variable outlives one replica (declared outside the body).
		for ctx := range ctxs {
			info := index[ctx]
			declaredInside := ctx.Pos() <= obj.Pos() && obj.Pos() < ctx.End()
			if info.Replicated && !declaredInside {
				shared = true
			}
		}
	}
	if !shared {
		return
	}
	msg := "variable " + obj.Name() + " is written by logically parallel tasks but is not instrumented; " +
		"these accesses are invisible to the atomicity checker"
	if s := avdapi.SuggestVar(obj.Type()); s != "" {
		msg += " — declare it with " + s + " (or guard and instrument it explicitly)"
	}
	pass.Reportf(firstParWrite, "%s", msg)
}
