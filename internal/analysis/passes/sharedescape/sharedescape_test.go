package sharedescape_test

import (
	"testing"

	"github.com/taskpar/avd/internal/analysis/analysistest"
	"github.com/taskpar/avd/internal/analysis/passes/sharedescape"
)

func TestSharedEscape(t *testing.T) {
	analysistest.Run(t, "../../testdata", sharedescape.Analyzer, "sharedescape")
}
