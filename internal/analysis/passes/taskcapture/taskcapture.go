// Package taskcapture flags task closures that use a *Task captured
// from an enclosing scope instead of their own task parameter.
//
// Every access an instrumented variable reports is attributed to the
// step node of the task it is invoked with. A closure passed to Spawn
// (or CilkSpawn, Parallel, ParallelFor, ParallelRange) runs as a NEW
// task: calling x.Load(outerT) inside it charges the access to the
// spawning task's current step — the wrong DPST node — and races on
// the outer task's single-goroutine state. The resulting DPST is
// silently wrong and the checker's MHP verdicts with it. This is the
// static half of the paper's instrumentation pass, which always
// threaded the current task through compiler-inserted calls.
//
// Closures that run inline on the caller's own task (Finish bodies and
// the first function of Parallel) may reference the receiver variable
// itself, since it aliases the closure parameter; any other captured
// task is flagged there too.
//
// For packages declaring a language version before go1.22, the pass
// additionally flags spawned closures that capture an enclosing loop
// variable: under the old semantics every iteration shares one
// variable, so a task that outlives its iteration races on the
// variable and may observe a later iteration's value. The `i := i`
// rebinding idiom silences the check naturally (the rebound variable
// is per-iteration), and packages on go1.22+ are never flagged.
package taskcapture

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/taskpar/avd/internal/analysis"
	"github.com/taskpar/avd/internal/analysis/avdapi"
)

// Analyzer is the taskcapture pass.
var Analyzer = &analysis.Analyzer{
	Name: "taskcapture",
	Doc:  "flag task closures using a captured outer *Task instead of their own parameter",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	index := pass.API.IndexTaskClosures(pass.Files)
	for lit, info := range index {
		checkClosure(pass, index, lit, info)
	}
	if analysis.GoVersionBefore(pass.GoVersion, 1, 22) {
		checkLoopCaptures(pass, index)
	}
	return nil
}

// escapesIteration reports whether a task closure of the given kind may
// still be running after its spawn statement completes: Spawn and
// CilkSpawn children join at the enclosing finish scope, which can lie
// outside the loop; every other structure operation joins before
// returning.
func escapesIteration(kind avdapi.StructureKind) bool {
	return kind == avdapi.KindSpawn || kind == avdapi.KindCilkSpawn
}

// checkLoopCaptures flags pre-go1.22 loop-variable captures in spawned
// task closures.
func checkLoopCaptures(pass *analysis.Pass, index map[*ast.FuncLit]*avdapi.ClosureInfo) {
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if lit, ok := n.(*ast.FuncLit); ok {
				if info := index[lit]; info != nil && escapesIteration(info.Kind) {
					checkLoopCapture(pass, index, lit, info, stack[:len(stack)-1])
				}
			}
			return true
		})
	}
}

// checkLoopCapture inspects one spawned closure against the loop
// variables of its enclosing loops. Walking outward from the closure,
// loops stay relevant until a frame that joins its children (a Finish
// or Run body, a Parallel/ParallelFor/ParallelRange function, a plain
// closure) or the function declaration is reached; nested Spawn bodies
// are traversed, since they keep the capture asynchronous.
func checkLoopCapture(pass *analysis.Pass, index map[*ast.FuncLit]*avdapi.ClosureInfo, lit *ast.FuncLit, info *avdapi.ClosureInfo, outer []ast.Node) {
	loops := make(map[*types.Var]string)
	record := func(id *ast.Ident, word string) {
		if id == nil {
			return
		}
		if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok && v != nil {
			loops[v] = word
		}
	}
scan:
	for i := len(outer) - 1; i >= 0; i-- {
		switch n := outer[i].(type) {
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, "for")
					}
				}
			}
		case *ast.RangeStmt:
			if id, ok := n.Key.(*ast.Ident); ok {
				record(id, "range")
			}
			if id, ok := n.Value.(*ast.Ident); ok {
				record(id, "range")
			}
		case *ast.FuncLit:
			if ni := index[n]; ni == nil || !escapesIteration(ni.Kind) {
				break scan
			}
		case *ast.FuncDecl:
			break scan
		}
	}
	if len(loops) == 0 {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if nested, ok := n.(*ast.FuncLit); ok {
			if ni := index[nested]; ni != nil && escapesIteration(ni.Kind) {
				return false // it gets its own check with the same loops in scope
			}
			return true
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		word, isLoopVar := loops[v]
		if !isLoopVar {
			return true
		}
		pass.Report(analysis.Diagnostic{
			Pos: id.Pos(),
			End: id.End(),
			Message: "task closure of " + info.Kind.String() + " captures " + word + "-loop variable " + id.Name +
				"; before go1.22 every iteration shares one variable, so the spawned task races on it and may observe a later iteration's value (rebind it in the loop body: " +
				id.Name + " := " + id.Name + ")",
		})
		return true
	})
}

// checkClosure walks one task closure body and reports uses of task
// variables declared outside it.
func checkClosure(pass *analysis.Pass, index map[*ast.FuncLit]*avdapi.ClosureInfo, lit *ast.FuncLit, info *avdapi.ClosureInfo) {
	own := pass.API.TaskParam(lit)
	// Closures that run inline on the structure call's receiver task may
	// alias it: t.Finish(func(ft *Task){ ... t ... }) passes t itself.
	var allow *types.Var
	if info.InlineReceiver() {
		if sel, ok := ast.Unparen(info.Call.Fun).(*ast.SelectorExpr); ok {
			allow = pass.API.ObjectOf(sel.X)
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if nested, ok := n.(*ast.FuncLit); ok {
			if _, isTask := index[nested]; isTask {
				return false // it gets its own check, against its own parameter
			}
			return true
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !avdapi.IsTaskPtr(obj.Type()) {
			return true
		}
		if obj == own || obj == allow {
			return true
		}
		if lit.Pos() <= obj.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the closure
		}
		d := analysis.Diagnostic{
			Pos: id.Pos(),
			End: id.End(),
			Message: "task closure of " + info.Kind.String() + " uses captured task " + id.Name +
				" instead of its own parameter; accesses would be attributed to the wrong DPST step",
		}
		if own != nil && own.Name() != "_" && own.Name() != id.Name {
			d.SuggestedFixes = []analysis.SuggestedFix{{
				Message:   "use the closure's own task parameter " + own.Name(),
				TextEdits: []analysis.TextEdit{{Pos: id.Pos(), End: id.End(), NewText: []byte(own.Name())}},
			}}
		}
		pass.Report(d)
		return true
	})
}
