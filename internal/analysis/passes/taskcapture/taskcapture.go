// Package taskcapture flags task closures that use a *Task captured
// from an enclosing scope instead of their own task parameter.
//
// Every access an instrumented variable reports is attributed to the
// step node of the task it is invoked with. A closure passed to Spawn
// (or CilkSpawn, Parallel, ParallelFor, ParallelRange) runs as a NEW
// task: calling x.Load(outerT) inside it charges the access to the
// spawning task's current step — the wrong DPST node — and races on
// the outer task's single-goroutine state. The resulting DPST is
// silently wrong and the checker's MHP verdicts with it. This is the
// static half of the paper's instrumentation pass, which always
// threaded the current task through compiler-inserted calls.
//
// Closures that run inline on the caller's own task (Finish bodies and
// the first function of Parallel) may reference the receiver variable
// itself, since it aliases the closure parameter; any other captured
// task is flagged there too.
package taskcapture

import (
	"go/ast"
	"go/types"

	"github.com/taskpar/avd/internal/analysis"
	"github.com/taskpar/avd/internal/analysis/avdapi"
)

// Analyzer is the taskcapture pass.
var Analyzer = &analysis.Analyzer{
	Name: "taskcapture",
	Doc:  "flag task closures using a captured outer *Task instead of their own parameter",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	index := pass.API.IndexTaskClosures(pass.Files)
	for lit, info := range index {
		checkClosure(pass, index, lit, info)
	}
	return nil
}

// checkClosure walks one task closure body and reports uses of task
// variables declared outside it.
func checkClosure(pass *analysis.Pass, index map[*ast.FuncLit]*avdapi.ClosureInfo, lit *ast.FuncLit, info *avdapi.ClosureInfo) {
	own := pass.API.TaskParam(lit)
	// Closures that run inline on the structure call's receiver task may
	// alias it: t.Finish(func(ft *Task){ ... t ... }) passes t itself.
	var allow *types.Var
	if info.InlineReceiver() {
		if sel, ok := ast.Unparen(info.Call.Fun).(*ast.SelectorExpr); ok {
			allow = pass.API.ObjectOf(sel.X)
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if nested, ok := n.(*ast.FuncLit); ok {
			if _, isTask := index[nested]; isTask {
				return false // it gets its own check, against its own parameter
			}
			return true
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !avdapi.IsTaskPtr(obj.Type()) {
			return true
		}
		if obj == own || obj == allow {
			return true
		}
		if lit.Pos() <= obj.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the closure
		}
		d := analysis.Diagnostic{
			Pos: id.Pos(),
			End: id.End(),
			Message: "task closure of " + info.Kind.String() + " uses captured task " + id.Name +
				" instead of its own parameter; accesses would be attributed to the wrong DPST step",
		}
		if own != nil && own.Name() != "_" && own.Name() != id.Name {
			d.SuggestedFixes = []analysis.SuggestedFix{{
				Message:   "use the closure's own task parameter " + own.Name(),
				TextEdits: []analysis.TextEdit{{Pos: id.Pos(), End: id.End(), NewText: []byte(own.Name())}},
			}}
		}
		pass.Report(d)
		return true
	})
}
