package taskcapture_test

import (
	"testing"

	"github.com/taskpar/avd/internal/analysis/analysistest"
	"github.com/taskpar/avd/internal/analysis/passes/taskcapture"
)

func TestTaskCapture(t *testing.T) {
	analysistest.Run(t, "../../testdata", taskcapture.Analyzer, "taskcapture")
}
