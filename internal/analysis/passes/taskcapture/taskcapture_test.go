package taskcapture_test

import (
	"strings"
	"testing"

	"github.com/taskpar/avd/internal/analysis"
	"github.com/taskpar/avd/internal/analysis/analysistest"
	"github.com/taskpar/avd/internal/analysis/load"
	"github.com/taskpar/avd/internal/analysis/passes/taskcapture"
)

func TestTaskCapture(t *testing.T) {
	analysistest.Run(t, "../../testdata", taskcapture.Analyzer, "taskcapture")
}

// TestLoopVar runs the loop-variable corpus under pre-go1.22 semantics,
// where the captures must be flagged.
func TestLoopVar(t *testing.T) {
	analysistest.RunWithVersion(t, "../../testdata", taskcapture.Analyzer, "go1.21", "loopvar")
}

// TestLoopVarModern runs the same corpus as a go1.22 package: loop
// variables are per-iteration there, so the check must be gated off
// entirely (want comments cannot express "no diagnostics", so this
// asserts directly).
func TestLoopVarModern(t *testing.T) {
	for _, version := range []string{"go1.22", ""} {
		l := load.NewGOPATH("../../testdata")
		pkg, err := l.Load("loopvar")
		if err != nil {
			t.Fatalf("loading loopvar corpus: %v", err)
		}
		res, err := analysis.RunDetailed(l.Fset, pkg.Files, pkg.Types, pkg.Info,
			[]*analysis.Analyzer{taskcapture.Analyzer}, analysis.Options{GoVersion: version})
		if err != nil {
			t.Fatalf("running taskcapture (version %q): %v", version, err)
		}
		for _, d := range res.Diags {
			if strings.Contains(d.Message, "loop variable") {
				t.Errorf("version %q: loop-variable capture flagged on a modern package: %s", version, d.Message)
			}
		}
	}
}
