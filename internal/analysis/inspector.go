package analysis

import (
	"go/ast"
	"reflect"
)

// event is one step of a depth-first traversal: a node entry (push) or
// exit (pop). The pre-built event list lets every analyzer traverse the
// package without re-walking the syntax trees.
type event struct {
	node ast.Node
	push bool
}

// Inspector is a pre-computed depth-first traversal of a package's
// files, in the style of golang.org/x/tools/go/ast/inspector. Build it
// once per package and share it across the suite.
type Inspector struct {
	events []event
}

// NewInspector records the traversal of files.
func NewInspector(files []*ast.File) *Inspector {
	in := &Inspector{}
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				in.events = append(in.events, event{node: top})
				return true
			}
			stack = append(stack, n)
			in.events = append(in.events, event{node: n, push: true})
			return true
		})
	}
	return in
}

// matches reports whether n's concrete type is one of the filter types;
// an empty filter matches everything.
func matches(n ast.Node, filter []reflect.Type) bool {
	if len(filter) == 0 {
		return true
	}
	t := reflect.TypeOf(n)
	for _, ft := range filter {
		if t == ft {
			return true
		}
	}
	return false
}

func filterTypes(nodeTypes []ast.Node) []reflect.Type {
	ts := make([]reflect.Type, len(nodeTypes))
	for i, n := range nodeTypes {
		ts[i] = reflect.TypeOf(n)
	}
	return ts
}

// Preorder calls f for every node whose type matches one of nodeTypes
// (exemplar values, e.g. (*ast.CallExpr)(nil)), in depth-first order.
func (in *Inspector) Preorder(nodeTypes []ast.Node, f func(ast.Node)) {
	filter := filterTypes(nodeTypes)
	for _, ev := range in.events {
		if ev.push && matches(ev.node, filter) {
			f(ev.node)
		}
	}
}

// WithStack calls f for matching nodes on both entry (push=true) and
// exit (push=false), passing the enclosing node stack (outermost
// first, ending with n itself). Returning false from a push visit
// still visits children (the traversal is pre-recorded); use the stack
// to skip subtrees by position instead.
func (in *Inspector) WithStack(nodeTypes []ast.Node, f func(n ast.Node, push bool, stack []ast.Node)) {
	filter := filterTypes(nodeTypes)
	var stack []ast.Node
	for _, ev := range in.events {
		if ev.push {
			stack = append(stack, ev.node)
			if matches(ev.node, filter) {
				f(ev.node, true, stack)
			}
		} else {
			if matches(ev.node, filter) {
				f(ev.node, false, stack)
			}
			stack = stack[:len(stack)-1]
		}
	}
}
