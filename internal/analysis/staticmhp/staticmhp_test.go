package staticmhp_test

import (
	"go/ast"
	"go/token"
	"testing"

	"github.com/taskpar/avd/internal/analysis/avdapi"
	"github.com/taskpar/avd/internal/analysis/load"
	"github.com/taskpar/avd/internal/analysis/staticmhp"
)

// engineOver builds a static-MHP engine over the staticavd corpus,
// which doubles as the interprocedural-summary corpus: recursion,
// mutual recursion, method values, helper-returned closures, and
// go-statement escapes all appear there.
func engineOver(t *testing.T) (*load.Loader, *staticmhp.Engine) {
	t.Helper()
	l := load.NewGOPATH("../testdata")
	pkg, err := l.Load("staticavd")
	if err != nil {
		t.Fatalf("loading staticavd corpus: %v", err)
	}
	api := avdapi.NewFacts(pkg.Types, pkg.Info)
	return l, staticmhp.New(api, pkg.Files)
}

// treeOf finds the root tree for the named entry function.
func treeOf(t *testing.T, eng *staticmhp.Engine, name string) *staticmhp.Tree {
	t.Helper()
	for _, r := range eng.Roots() {
		if r.Name.Name == name {
			return eng.Tree(r)
		}
	}
	t.Fatalf("no root named %s (interprocedural root detection failed)", name)
	return nil
}

// sitesAt returns the tree's sites on the given source line.
func sitesAt(l *load.Loader, tree *staticmhp.Tree, line int) []*staticmhp.Site {
	var out []*staticmhp.Site
	for _, s := range tree.Sites {
		if l.Fset.Position(s.Pos).Line == line {
			out = append(out, s)
		}
	}
	return out
}

func lineOf(l *load.Loader, pos token.Pos) int { return l.Fset.Position(pos).Line }

// TestRoots pins interprocedural root detection: every corpus entry
// point is a root, and helpers reachable from them are not.
func TestRoots(t *testing.T) {
	_, eng := engineOver(t)
	want := map[string]bool{
		"basic": true, "lockSections": true, "lockClean": true,
		"atomicPair": true, "loopSpawn": true, "methodValue": true,
		"helperClosure": true, "goEscape": true, "recurse": true, "mutual": true,
	}
	got := map[string]bool{}
	for _, r := range eng.Roots() {
		got[r.Name.Name] = true
	}
	for name := range want {
		if !got[name] {
			t.Errorf("entry point %s is not a root", name)
		}
	}
	for _, helper := range []string{"work", "ping", "pong", "leak", "makeIncrement", "step"} {
		if got[helper] {
			t.Errorf("helper %s should not be a root (it is referenced from an entry point)", helper)
		}
	}
}

// TestBasicMHP checks the core DPST facts on the Figure-1 tree: the
// increment pair shares a step (serial), and the sibling store may
// happen in parallel with both.
func TestBasicMHP(t *testing.T) {
	l, eng := engineOver(t)
	tree := treeOf(t, eng, "basic")
	if tree.Truncated {
		t.Fatal("basic tree truncated")
	}
	loads := sitesAt(l, tree, 19)  // a := x.Load(t)
	stores := sitesAt(l, tree, 20) // x.Store(t, a+1)
	sibs := sitesAt(l, tree, 22)   // sibling x.Store(t, 0)
	if len(loads) != 1 || len(stores) != 1 || len(sibs) != 1 {
		t.Fatalf("site counts: load=%d store=%d sibling=%d, want 1 each", len(loads), len(stores), len(sibs))
	}
	ld, st, sib := loads[0], stores[0], sibs[0]
	scope := tree.Scope[ld.Key]
	if ld.Step != st.Step {
		t.Error("increment pair should share one static step")
	}
	if tree.Par(ld, st, scope) {
		t.Error("same-step accesses of a non-replicated task must not be MHP")
	}
	if !tree.Par(ld, sib, scope) || !tree.Par(st, sib, scope) {
		t.Error("sibling spawn's store must be MHP with the increment pair")
	}
	if !sib.Write || ld.Write {
		t.Error("access kinds mislabeled")
	}
}

// TestLockSections checks lock-section tracking: re-locking opens a
// fresh section, so the Figure-11 pair does not share one, while the
// single-section variant does.
func TestLockSections(t *testing.T) {
	l, eng := engineOver(t)
	split := treeOf(t, eng, "lockSections")
	ld := sitesAt(l, split, 39)[0] // load in first section
	st := sitesAt(l, split, 42)[0] // store in second section
	if len(ld.Locks) != 1 || len(st.Locks) != 1 {
		t.Fatalf("both accesses should hold exactly one lock, got %d and %d", len(ld.Locks), len(st.Locks))
	}
	for k, id := range ld.Locks {
		if st.Locks[k] == id {
			t.Error("re-locked sections must have distinct section ids")
		}
	}

	clean := treeOf(t, eng, "lockClean")
	pair := sitesAt(l, clean, 65) // x.Store(t, x.Load(t)+1) — R then W
	if len(pair) != 2 {
		t.Fatalf("got %d sites on the locked pair line, want 2", len(pair))
	}
	for k, id := range pair[0].Locks {
		if pair[1].Locks[k] != id {
			t.Error("accesses inside one critical section must share its section id")
		}
	}
}

// TestReplication checks that spawning in a serial loop marks the
// async replicated: its sites are MHP with themselves.
func TestReplication(t *testing.T) {
	l, eng := engineOver(t)
	tree := treeOf(t, eng, "loopSpawn")
	sites := sitesAt(l, tree, 109) // v.Add inside the loop spawn
	if len(sites) != 2 {
		t.Fatalf("got %d sites for the Add, want 2 (R and W)", len(sites))
	}
	scope := tree.Scope[sites[0].Key]
	if !tree.Par(sites[0], sites[0], scope) {
		t.Error("a replicated async's site must be MHP with itself")
	}
}

// TestGoEscape checks that accesses reached through a go statement are
// free: MHP with everything in the tree.
func TestGoEscape(t *testing.T) {
	l, eng := engineOver(t)
	tree := treeOf(t, eng, "goEscape")
	leaked := sitesAt(l, tree, 159) // g.Store inside leak, reached via go
	serial := sitesAt(l, tree, 168) // g.Load on the entry task
	if len(leaked) != 1 || len(serial) != 1 {
		t.Fatalf("site counts: leaked=%d serial=%d, want 1 each", len(leaked), len(serial))
	}
	if !leaked[0].Free {
		t.Error("a site reached through a go statement must be free")
	}
	if !tree.Par(leaked[0], serial[0], tree.Scope[serial[0].Key]) {
		t.Error("a free site must be MHP with serial accesses")
	}
}

// TestRecursionWidening checks that self- and mutual recursion widen to
// replicated asyncs instead of truncating, and that the widened sites
// carry the callee's accesses at their original positions.
func TestRecursionWidening(t *testing.T) {
	l, eng := engineOver(t)
	for name, line := range map[string]int{"recurse": 179, "mutual": 203} {
		tree := treeOf(t, eng, name)
		if tree.Truncated {
			t.Errorf("%s: recursion must widen, not truncate", name)
			continue
		}
		sites := sitesAt(l, tree, line)
		if len(sites) < 2 {
			t.Errorf("%s: got %d sites at line %d, want >= 2 (direct + widened)", name, len(sites), line)
			continue
		}
		widened := false
		for _, s := range sites {
			if s.InLoop && tree.Par(s, s, tree.Scope[s.Key]) {
				widened = true
			}
		}
		if !widened {
			t.Errorf("%s: no widened self-MHP site at line %d", name, line)
		}
	}
}

// TestSummaries spot-checks the summary layer underneath the engine.
func TestSummaries(t *testing.T) {
	_, eng := engineOver(t)
	sum := eng.Summarizer()
	var decls []*ast.FuncDecl
	for _, d := range sum.Decls() {
		decls = append(decls, d)
	}
	byName := func(name string) *ast.FuncDecl {
		for _, d := range decls {
			if d.Name.Name == name {
				return d
			}
		}
		t.Fatalf("no decl %s", name)
		return nil
	}
	pingSum := sum.Summary(byName("ping"))
	if pingSum == nil || !pingSum.MayFork {
		t.Fatal("ping's summary must record that it may fork")
	}
	if len(pingSum.Accesses) == 0 {
		t.Error("ping's transitive summary must include pong's access")
	}
	leakSum := sum.Summary(byName("leak"))
	if leakSum == nil || leakSum.MayFork {
		t.Error("leak's summary must not claim forking")
	}
}
