package staticmhp

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/taskpar/avd/internal/analysis/avdapi"
)

// builder grows one static tree by abstract execution of effect
// streams.
type builder struct {
	eng  *Engine
	tree *Tree

	// inst numbers dynamic instances of each declared handle variable:
	// a declaration executed twice (inlined from two call sites) binds
	// two distinct keys.
	inst map[*types.Var]int

	nodes     int
	structSeq int
	seq       int
	sectionID int
	branchID  int
	// branchStack is the current branch-arm context; abstract execution
	// is synchronous, so one stack serves all frames.
	branchStack []BranchArm
	truncated   bool
}

// frame is one abstract activation: the serial attach point, the lazy
// current step, the handle substitution environment, and the held
// lock sections. Inlined calls mutate the caller's frame (extending
// env for the call's duration) so step and lock continuity across the
// call boundary matches the runtime, where an inlined call does not
// advance the DPST.
type frame struct {
	parent *Node
	step   *Node
	// implicit is the open implicit-finish scope a CilkSpawn creates;
	// Sync or frame exit closes it.
	implicit *Node
	env      map[*types.Var]avdapi.HandleKey
	locks    map[avdapi.HandleKey]int
	// loopDepth > 0 inside serial loop bodies.
	loopDepth int
	// scopeLoop counts loops entered since the current join scope (the
	// nearest enclosing explicit finish on this activation). A spawn is
	// replicated only when a loop sits between it and the finish that
	// joins it: iterations of an outer loop re-execute the finish too,
	// so their children never coexist.
	scopeLoop int
	// free marks frames on escaped goroutines.
	free bool
	// stack is the inline call chain, for recursion detection.
	stack []*ast.FuncDecl
}

// curParent is the node new children attach to.
func (f *frame) curParent() *Node {
	if f.implicit != nil {
		return f.implicit
	}
	return f.parent
}

// newNode appends a child node, enforcing the budget.
func (b *builder) newNode(kind NodeKind, parent *Node) *Node {
	b.nodes++
	if b.nodes > nodeBudget {
		b.truncated = true
	}
	n := &Node{Kind: kind, Parent: parent}
	if parent != nil {
		n.Index = parent.kids
		n.Depth = parent.Depth + 1
		parent.kids++
	}
	if kind != Step {
		b.structSeq++
	}
	return n
}

// step materializes the frame's current step.
func (b *builder) step(f *frame) *Node {
	if f.step == nil {
		f.step = b.newNode(Step, f.curParent())
	}
	return f.step
}

// resolveKey maps an access receiver to a handle instance through the
// frame's substitution environment.
func (b *builder) resolveKey(f *frame, v *types.Var, expr string) avdapi.HandleKey {
	if v != nil {
		if k, ok := f.env[v]; ok {
			return k
		}
		return avdapi.HandleKey{Obj: v}
	}
	return avdapi.HandleKey{Expr: expr}
}

// cloneLocks copies a lock map.
func cloneLocks(m map[avdapi.HandleKey]int) map[avdapi.HandleKey]int {
	c := make(map[avdapi.HandleKey]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// cloneEnv copies a substitution environment.
func cloneEnv(m map[*types.Var]avdapi.HandleKey) map[*types.Var]avdapi.HandleKey {
	c := make(map[*types.Var]avdapi.HandleKey, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// addSite places one access in the current step.
func (b *builder) addSite(f *frame, key avdapi.HandleKey, write bool, pos token.Pos, inLoop bool, locks map[avdapi.HandleKey]int) {
	if b.truncated || key.Zero() {
		return
	}
	b.seq++
	s := &Site{
		Key:      key,
		Write:    write,
		Pos:      pos,
		Step:     b.step(f),
		Seq:      b.seq,
		InLoop:   inLoop || f.loopDepth > 0,
		Free:     f.free,
		Locks:    cloneLocks(locks),
		Branches: append([]BranchArm(nil), b.branchStack...),
	}
	b.tree.Sites = append(b.tree.Sites, s)
}

// run interprets one effect stream in a frame. The frame's open
// implicit finish, if any, is closed at stream end only by the caller
// that owns the activation (bodyDone).
func (b *builder) run(f *frame, effs []Effect) {
	for _, e := range effs {
		if b.truncated {
			return
		}
		b.effect(f, e)
	}
}

// Effect re-export keeps the builder readable.
type Effect = avdapi.Effect

func (b *builder) effect(f *frame, e Effect) {
	switch e := e.(type) {
	case avdapi.EffAccess:
		b.addSite(f, b.resolveKey(f, e.RecvVar, e.RecvExpr), e.Write, e.Pos, false, f.locks)

	case avdapi.EffLock:
		key := b.resolveKey(f, e.RecvVar, e.RecvExpr)
		if key.Zero() {
			return
		}
		if e.Unlock {
			delete(f.locks, key)
		} else {
			b.sectionID++
			f.locks[key] = b.sectionID
		}

	case avdapi.EffDecl:
		n := b.inst[e.Obj]
		b.inst[e.Obj] = n + 1
		key := avdapi.HandleKey{Obj: e.Obj, Inst: n}
		f.env[e.Obj] = key
		b.tree.Scope[key] = f.curParent()
		b.tree.DeclKind[key] = e.Kind

	case avdapi.EffSpawn:
		parent := f.curParent()
		if e.Kind == avdapi.KindCilkSpawn && f.implicit == nil {
			f.implicit = b.newNode(Finish, f.parent)
			parent = f.implicit
		}
		async := b.newNode(Async, parent)
		async.Replicated = f.scopeLoop > 0
		async.SpawnPos = e.Pos
		b.runBody(f, e.Body, async, false)
		f.step = nil

	case avdapi.EffFinish:
		fin := b.newNode(Finish, f.curParent())
		b.runBody(f, e.Body, fin, true)
		f.step = nil

	case avdapi.EffParallel:
		fin := b.newNode(Finish, f.curParent())
		for _, body := range e.Bodies[1:] {
			// Parallel joins all bodies before returning, so an enclosing
			// loop never overlaps two executions: not replicated.
			async := b.newNode(Async, fin)
			async.SpawnPos = e.Pos
			b.runBody(f, body, async, false)
		}
		if len(e.Bodies) > 0 {
			b.runBody(f, e.Bodies[0], fin, true)
		}
		f.step = nil

	case avdapi.EffParLoop:
		fin := b.newNode(Finish, f.curParent())
		async := b.newNode(Async, fin)
		async.Replicated = true
		async.SpawnPos = e.Pos
		b.runBody(f, e.Body, async, false)
		f.step = nil

	case avdapi.EffSync:
		f.implicit = nil
		f.step = nil

	case avdapi.EffGo:
		gf := &frame{
			parent: b.newNode(Async, f.curParent()),
			env:    cloneEnv(f.env),
			locks:  make(map[avdapi.HandleKey]int),
			free:   true,
			stack:  f.stack,
		}
		gf.parent.SpawnPos = e.Pos
		b.bindBody(f, gf, e.Body)
		if e.Body != nil && !e.Body.Unknown {
			b.run(gf, b.bodyEffects(e.Body))
		}
		f.step = nil

	case avdapi.EffCall:
		b.inlineCall(f, e)

	case avdapi.EffBranch:
		pre := b.structSeq
		b.branchID++
		arm := BranchArm{ID: b.branchID, Multi: f.loopDepth > 0 || underReplicated(f.curParent())}
		join := make([]map[avdapi.HandleKey]int, 0, len(e.Alts))
		entry := cloneLocks(f.locks)
		for i, alt := range e.Alts {
			arm.Arm = i
			b.branchStack = append(b.branchStack, arm)
			f.locks = cloneLocks(entry)
			b.run(f, alt)
			b.branchStack = b.branchStack[:len(b.branchStack)-1]
			join = append(join, f.locks)
		}
		f.locks = b.intersectLocks(join)
		if b.structSeq != pre {
			// Some alternative advanced the tree; the join point is a
			// fresh step.
			f.step = nil
		}

	case avdapi.EffLoop:
		pre := cloneLocks(f.locks)
		f.loopDepth++
		f.scopeLoop++
		b.run(f, e.Body)
		f.loopDepth--
		f.scopeLoop--
		// The loop may run zero times: only sections held both before
		// and after the body survive.
		f.locks = b.intersectLocks([]map[avdapi.HandleKey]int{pre, f.locks})

	case avdapi.EffOpaque:
		// Unknown callees cannot reach non-escaping handles and cannot
		// re-parent modeled steps; no tree effect.
	}
}

// intersectLocks joins lock maps from alternative paths: a section
// survives only if its mutex is held on every path; differing section
// ids merge into a fresh one, so accesses on either side of the join
// never look same-section with accesses inside one arm.
func (b *builder) intersectLocks(alts []map[avdapi.HandleKey]int) map[avdapi.HandleKey]int {
	if len(alts) == 0 {
		return make(map[avdapi.HandleKey]int)
	}
	out := make(map[avdapi.HandleKey]int)
	for key, id := range alts[0] {
		same := true
		held := true
		for _, m := range alts[1:] {
			id2, ok := m[key]
			if !ok {
				held = false
				break
			}
			if id2 != id {
				same = false
			}
		}
		if !held {
			continue
		}
		if !same {
			b.sectionID++
			id = b.sectionID
		}
		out[key] = id
	}
	return out
}

// bodyEffects resolves a body reference to its effect stream.
func (b *builder) bodyEffects(ref *avdapi.BodyRef) []Effect {
	if ref == nil || ref.Unknown {
		return nil
	}
	if ref.Lit != nil {
		return b.eng.sum.Effects(ref.Lit)
	}
	if ref.Decl != nil {
		return b.eng.sum.Effects(ref.Decl)
	}
	return nil
}

// bindBody installs a body's creation-time bindings (helper params,
// method receivers) into the body frame's environment, resolving the
// bound expressions in the caller's environment.
func (b *builder) bindBody(caller, body *frame, ref *avdapi.BodyRef) {
	if ref == nil {
		return
	}
	for i, v := range ref.BindVars {
		if i >= len(ref.BindArgs) || v == nil {
			break
		}
		if av := b.eng.api.ObjectOf(ref.BindArgs[i]); av != nil {
			body.env[v] = b.resolveKey(caller, av, "")
		}
	}
}

// runBody interprets a task body under a new tree node. Inline bodies
// (finish and parallel's first function) share the caller's lock map —
// they run on the caller's activation; forked bodies start lock-free.
// Named bodies join the inline stack so self-spawning recursion widens.
func (b *builder) runBody(f *frame, ref *avdapi.BodyRef, parent *Node, inline bool) {
	if ref == nil || ref.Unknown || b.truncated {
		return
	}
	if ref.Decl != nil && onStack(f.stack, ref.Decl) {
		b.widen(f, parent, ref.Decl, ref.Pos)
		return
	}
	locks := make(map[avdapi.HandleKey]int)
	if inline {
		locks = f.locks
	}
	bf := &frame{
		parent:    parent,
		env:       cloneEnv(f.env),
		locks:     locks,
		free:      f.free,
		loopDepth: 0,
		stack:     f.stack,
	}
	if inline {
		bf.loopDepth = f.loopDepth
	}
	if ref.Decl != nil {
		bf.stack = append(append([]*ast.FuncDecl(nil), f.stack...), ref.Decl)
	}
	b.bindBody(f, bf, ref)
	b.run(bf, b.bodyEffects(ref))
}

// inlineCall interprets an in-package call on the caller's own frame:
// the callee's effects continue the caller's step, locks, and implicit
// finish, with the environment temporarily extended by
// parameter-to-argument handle bindings. Recursion and over-deep
// chains widen through the callee's transitive summary.
func (b *builder) inlineCall(f *frame, e avdapi.EffCall) {
	var target ast.Node
	if e.Lit != nil {
		target = e.Lit
	} else if e.Decl != nil {
		target = e.Decl
	} else {
		return
	}

	if e.Decl != nil && (onStack(f.stack, e.Decl) || len(f.stack) >= inlineDepthCap) {
		b.widenSerial(f, e.Decl, e.Pos)
		return
	}
	if e.Lit != nil && len(f.stack) >= inlineDepthCap {
		return
	}

	// Extend the environment for the call's duration.
	type saved struct {
		v   *types.Var
		k   avdapi.HandleKey
		had bool
	}
	var saves []saved
	bind := func(v *types.Var, arg ast.Expr) {
		if v == nil || arg == nil {
			return
		}
		av := b.eng.api.ObjectOf(arg)
		if av == nil {
			return
		}
		old, had := f.env[v]
		saves = append(saves, saved{v, old, had})
		f.env[v] = b.resolveKey(f, av, "")
	}
	if e.Decl != nil {
		params := declParams(b.eng.api, e.Decl)
		for i, p := range params {
			if i < len(e.Args) {
				bind(p, e.Args[i])
			}
		}
		if e.Recv != nil {
			bind(declRecv(b.eng.api, e.Decl), e.Recv)
		}
		f.stack = append(f.stack, e.Decl)
	}

	b.run(f, b.eng.sum.Effects(target))

	if e.Decl != nil {
		f.stack = f.stack[:len(f.stack)-1]
	}
	for i := len(saves) - 1; i >= 0; i-- {
		s := saves[i]
		if s.had {
			f.env[s.v] = s.k
		} else {
			delete(f.env, s.v)
		}
	}
}

// widen models a recursive forked body through its transitive summary:
// one Replicated async whose single step carries every reachable
// access, lock-free and loop-marked — maximally parallel, so never-MHP
// conclusions stay sound.
func (b *builder) widen(f *frame, parent *Node, decl *ast.FuncDecl, pos token.Pos) {
	sum := b.eng.sum.Summary(decl)
	async := parent
	if async.Kind != Async {
		async = b.newNode(Async, parent)
		async.SpawnPos = pos
	}
	async.Replicated = true
	wf := &frame{
		parent: async,
		env:    f.env,
		locks:  make(map[avdapi.HandleKey]int),
		free:   f.free || sum.HasGo,
		stack:  f.stack,
	}
	for _, acc := range sum.Accesses {
		b.addSite(wf, b.resolveKey(wf, acc.RecvVar, acc.RecvExpr), acc.Write, acc.Pos, true, wf.locks)
	}
}

// widenSerial models a recursive inline call: if the callee may fork,
// its accesses land under a fresh Replicated async (the recursion can
// overlap them arbitrarily); otherwise they extend the caller's step,
// loop-marked because the recursion repeats them.
func (b *builder) widenSerial(f *frame, decl *ast.FuncDecl, pos token.Pos) {
	sum := b.eng.sum.Summary(decl)
	if sum.MayFork || sum.HasGo {
		async := b.newNode(Async, f.curParent())
		async.Replicated = true
		async.SpawnPos = pos
		wf := &frame{
			parent: async,
			env:    f.env,
			locks:  make(map[avdapi.HandleKey]int),
			free:   f.free || sum.HasGo,
			stack:  f.stack,
		}
		for _, acc := range sum.Accesses {
			b.addSite(wf, b.resolveKey(wf, acc.RecvVar, acc.RecvExpr), acc.Write, acc.Pos, true, wf.locks)
		}
		f.step = nil
		return
	}
	empty := make(map[avdapi.HandleKey]int)
	for _, acc := range sum.Accesses {
		b.addSite(f, b.resolveKey(f, acc.RecvVar, acc.RecvExpr), acc.Write, acc.Pos, true, empty)
	}
}

// underReplicated reports a Replicated async at or above n.
func underReplicated(n *Node) bool {
	for ; n != nil; n = n.Parent {
		if n.Kind == Async && n.Replicated {
			return true
		}
	}
	return false
}

// onStack reports whether decl is already being inlined.
func onStack(stack []*ast.FuncDecl, decl *ast.FuncDecl) bool {
	for _, d := range stack {
		if d == decl {
			return true
		}
	}
	return false
}

// declParams returns the parameter objects of a declaration.
func declParams(api *avdapi.Facts, decl *ast.FuncDecl) []*types.Var {
	var vars []*types.Var
	if decl.Type.Params == nil {
		return nil
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			v, _ := api.Info.Defs[name].(*types.Var)
			vars = append(vars, v)
		}
	}
	return vars
}

// declRecv returns the receiver object of a method declaration.
func declRecv(api *avdapi.Facts, decl *ast.FuncDecl) *types.Var {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := api.Info.Defs[decl.Recv.List[0].Names[0]].(*types.Var)
	return v
}
