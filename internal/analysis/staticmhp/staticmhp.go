// Package staticmhp builds a static approximation of the paper's
// dynamic program structure tree and answers may-happen-in-parallel
// queries between instrumented access sites, at compile time.
//
// The runtime DPST (internal/dpst) is grown one node per executed
// structure operation; two steps may run in parallel iff the child of
// their least common ancestor on the earlier step's path is an async
// node. This package grows the same tree shape by abstract execution
// of the avdapi effect streams: one entry point (a function whose
// subtree reaches Session.Run) is interpreted top-down, in-package
// calls are inlined with parameter-to-argument handle substitution,
// loops execute their body once with spawned children marked
// Replicated (one static async stands for every dynamic sibling), and
// recursion is widened through the callee's transitive summary. The
// MHP query is then the paper's LCA rule plus a replication clause:
// two sites in the same static subtree of a Replicated async are
// parallel across dynamic copies, unless the handle itself was
// declared inside the replicated body (each copy owns a fresh
// instance, so cross-copy accesses touch different locations).
//
// The approximation errs on the side of reporting parallelism: branch
// alternatives are laid out sequentially (exclusive arms look
// parallel with each other's spawns), goroutine escapes are parallel
// with everything, and truncated trees answer no queries at all. That
// direction makes never-MHP facts — the ones the elision pass consumes
// to remove instrumentation — trustworthy, while staticavd candidates
// stay advisory.
package staticmhp

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/taskpar/avd/internal/analysis/avdapi"
)

// NodeKind classifies static DPST nodes.
type NodeKind int

// Node kinds, mirroring the runtime tree.
const (
	Finish NodeKind = iota
	Async
	Step
)

// Node is one static DPST node.
type Node struct {
	Kind NodeKind
	// Parent is nil only for the root finish.
	Parent *Node
	// Index is the child position under Parent; the MHP rule compares
	// sibling order through it.
	Index int
	// Depth supports the LCA walk.
	Depth int
	// Replicated marks an async standing for arbitrarily many dynamic
	// siblings (spawn inside a loop, parallel-for body, widened
	// recursion).
	Replicated bool
	// SpawnPos is the source position of the structure call that forked
	// this async (provenance for diagnostics).
	SpawnPos token.Pos

	kids int
}

// Site is one instrumented access site placed in the tree.
type Site struct {
	// Key identifies the handle instance accessed.
	Key avdapi.HandleKey
	// Write distinguishes the access kind.
	Write bool
	// Pos is the access call position.
	Pos token.Pos
	// Step is the static step performing the access.
	Step *Node
	// Seq orders sites by abstract execution time.
	Seq int
	// InLoop marks a site inside a serial loop body: one static site
	// stands for many dynamic accesses of the same dynamic step, so
	// self-pairs and order-reversed pairs are feasible.
	InLoop bool
	// Free marks a site on an escaped goroutine, outside the DPST: it
	// may happen in parallel with everything.
	Free bool
	// Locks is the lock-section snapshot at the access: mutex key to
	// section id. Two accesses sharing a key with equal ids sit in the
	// same critical section of that mutex.
	Locks map[avdapi.HandleKey]int
	// Branches is the enclosing branch-arm context: sites under
	// different arms of a once-evaluated branch are mutually exclusive.
	Branches []BranchArm
}

// BranchArm locates a site inside one alternative of a branch.
type BranchArm struct {
	// ID identifies the branch occurrence in the abstract execution.
	ID int
	// Arm is the alternative index taken.
	Arm int
	// Multi marks a branch that may evaluate more than once per
	// dynamic context (inside a serial loop or a replicated region), so
	// different arms can both execute and exclusivity does not hold.
	Multi bool
}

// Exclusive reports whether two sites sit under different arms of a
// common once-evaluated branch — they cannot both execute, so no
// pattern or interleaving involves both.
func Exclusive(a, b *Site) bool {
	for _, ba := range a.Branches {
		if ba.Multi {
			continue
		}
		for _, bb := range b.Branches {
			if bb.ID == ba.ID && bb.Arm != ba.Arm {
				return true
			}
		}
	}
	return false
}

// Tree is the static DPST of one entry point.
type Tree struct {
	// Decl is the entry-point function.
	Decl *ast.FuncDecl
	// Root is the implicit enclosing finish.
	Root *Node
	// Sites are every placed access site, in Seq order.
	Sites []*Site
	// Scope maps a handle instance to the node enclosing its
	// declaration; replication below the scope shares the instance,
	// replication above it does not. Instances with no declaration in
	// the tree default to Root (conservatively shared).
	Scope map[avdapi.HandleKey]*Node
	// DeclKind maps declared instances to their handle kind
	// ("IntVar", ...).
	DeclKind map[avdapi.HandleKey]string
	// Truncated marks a tree that hit the node budget; it answers no
	// MHP queries (every Par is true, no site set is complete).
	Truncated bool
}

// nodeBudget bounds tree growth; blowing it marks the tree Truncated.
const nodeBudget = 20000

// inlineDepthCap bounds the symbolic call stack; deeper chains widen
// like recursion.
const inlineDepthCap = 32

// Engine computes and caches static trees for one package.
type Engine struct {
	api   *avdapi.Facts
	sum   *avdapi.Summarizer
	trees map[*ast.FuncDecl]*Tree
}

// New builds an engine over one package's files.
func New(api *avdapi.Facts, files []*ast.File) *Engine {
	return &Engine{
		api:   api,
		sum:   avdapi.NewSummarizer(api, files),
		trees: make(map[*ast.FuncDecl]*Tree),
	}
}

// Shared returns the engine cached on the facts layer, so every
// analyzer of one suite run reuses the same trees.
func Shared(api *avdapi.Facts, files []*ast.File) *Engine {
	return api.Memo("staticmhp.engine", func() any {
		return New(api, files)
	}).(*Engine)
}

// Summarizer exposes the underlying effect/summary layer.
func (e *Engine) Summarizer() *avdapi.Summarizer { return e.sum }

// Roots returns the package's analysis entry points.
func (e *Engine) Roots() []*ast.FuncDecl { return e.sum.Roots() }

// Tree returns the static DPST grown from fn, building and caching it
// on first use. fn need not be a root; any declaration works.
func (e *Engine) Tree(fn *ast.FuncDecl) *Tree {
	if t, ok := e.trees[fn]; ok {
		return t
	}
	b := &builder{
		eng: e,
		tree: &Tree{
			Decl:     fn,
			Root:     &Node{Kind: Finish},
			Scope:    make(map[avdapi.HandleKey]*Node),
			DeclKind: make(map[avdapi.HandleKey]string),
		},
		inst: make(map[*types.Var]int),
	}
	f := &frame{
		parent: b.tree.Root,
		env:    make(map[*types.Var]avdapi.HandleKey),
		locks:  make(map[avdapi.HandleKey]int),
		stack:  []*ast.FuncDecl{fn},
	}
	b.run(f, e.sum.Effects(fn))
	b.tree.Truncated = b.truncated
	e.trees[fn] = b.tree
	return b.tree
}

// TreeFor returns the built tree whose entry point lexically encloses
// pos, or nil. It only consults roots (building them on demand), so a
// consumer holding an arbitrary position — the elision pass holds a
// handle declaration — finds the tree that actually models it.
func (e *Engine) TreeFor(pos token.Pos) *Tree {
	for _, root := range e.Roots() {
		if root.Pos() <= pos && pos <= root.End() {
			return e.Tree(root)
		}
	}
	return nil
}

// SpawnSite returns the structure-call position that forked the
// nearest enclosing async of a site, or token.NoPos for sites on the
// entry task.
func (t *Tree) SpawnSite(s *Site) token.Pos {
	for n := s.Step; n != nil; n = n.Parent {
		if n.Kind == Async && n.SpawnPos.IsValid() {
			return n.SpawnPos
		}
	}
	return token.NoPos
}

// Par reports whether two sites may happen in parallel. scope is the
// declaration scope of the handle instance under discussion (nil means
// the root): replicated asyncs strictly below it duplicate accesses to
// the one shared instance, replicated asyncs at or below the handle's
// declaration each own a private instance and are ignored. Truncated
// trees answer true for everything.
func (t *Tree) Par(a, b *Site, scope *Node) bool {
	if t.Truncated || a.Free || b.Free {
		return true
	}
	if scope == nil {
		scope = t.Root
	}
	if a.Step == b.Step {
		// Same static step: parallel only across dynamic copies of a
		// replicated ancestor sharing the instance.
		return replicatedBelow(a.Step, scope)
	}
	l := lca(a.Step, b.Step)
	if replicatedBelow(l, scope) {
		return true
	}
	ca, cb := childToward(l, a.Step), childToward(l, b.Step)
	earlier := ca
	if cb.Index < ca.Index {
		earlier = cb
	}
	return earlier.Kind == Async
}

// replicatedBelow reports a Replicated async on the path from n
// (inclusive) up to scope (exclusive).
func replicatedBelow(n, scope *Node) bool {
	for ; n != nil && n != scope; n = n.Parent {
		if n.Kind == Async && n.Replicated {
			return true
		}
	}
	return false
}

// lca returns the least common ancestor of two nodes.
func lca(a, b *Node) *Node {
	for a.Depth > b.Depth {
		a = a.Parent
	}
	for b.Depth > a.Depth {
		b = b.Parent
	}
	for a != b {
		a, b = a.Parent, b.Parent
	}
	return a
}

// childToward returns the child of l on the path down to s.
func childToward(l, s *Node) *Node {
	for s.Parent != l {
		s = s.Parent
	}
	return s
}
