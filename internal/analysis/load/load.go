// Package load type-checks Go packages for the avdlint suite using
// only the standard library: module-local packages are parsed and
// checked from source in dependency order, and everything else
// (the standard library) is resolved through go/importer's source
// importer. No network, no export data, no golang.org/x/tools.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the source directory.
	Dir string
	// Files is the parsed syntax (non-test files).
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info is the type-checker's per-expression results.
	Info *types.Info
	// GoVersion is the declared language version governing the package
	// (the enclosing module's go directive, "go1.22"); empty when the
	// loader has no module context.
	GoVersion string
}

// Loader resolves and type-checks packages. A loader is either in
// module mode (rooted at a directory with a go.mod, resolving the
// module's own import paths to its subdirectories) or in GOPATH mode
// (resolving any import path under root/src, used by the analysistest
// corpus). Unresolved paths fall back to the source importer.
type Loader struct {
	Fset *token.FileSet

	modulePath string
	moduleDir  string
	goVersion  string // module's go directive as "go1.NN", or ""
	srcRoot    string // GOPATH-style src root, or ""

	source  types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

func newLoader() *Loader {
	l := &Loader{
		Fset:    token.NewFileSet(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.source = importer.ForCompiler(l.Fset, "source", nil)
	return l
}

// NewModule creates a loader rooted at the module containing dir.
func NewModule(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	l := newLoader()
	l.moduleDir = modDir
	l.modulePath = modPath
	if data, err := os.ReadFile(filepath.Join(modDir, "go.mod")); err == nil {
		l.goVersion = goVersionOf(string(data))
	}
	return l, nil
}

// NewGOPATH creates a loader that resolves import paths under
// root/src, for testdata corpora laid out GOPATH-style.
func NewGOPATH(root string) *Loader {
	l := newLoader()
	l.srcRoot = filepath.Join(root, "src")
	return l
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module directory and path.
func findModule(dir string) (string, string, error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			path := modulePathOf(string(data))
			if path == "" {
				return "", "", fmt.Errorf("load: no module path in %s/go.mod", d)
			}
			return d, path, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("load: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// modulePathOf extracts the module path from go.mod text.
func modulePathOf(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// goVersionOf extracts the go directive from go.mod text, normalized
// to the "go1.NN" form the type checker and analyzers expect.
func goVersionOf(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "go "); ok {
			v := strings.TrimSpace(rest)
			if v != "" && !strings.HasPrefix(v, "go") {
				v = "go" + v
			}
			return v
		}
	}
	return ""
}

// dirFor maps an import path to a local source directory, or "" when
// the path is not locally resolvable (and should use the fallback
// importer).
func (l *Loader) dirFor(path string) string {
	if l.srcRoot != "" {
		dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir
		}
		return ""
	}
	if l.modulePath == "" {
		return ""
	}
	if path == l.modulePath {
		return l.moduleDir
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleDir, filepath.FromSlash(rest))
	}
	return ""
}

// Import implements types.Importer over local packages with the source
// importer as fallback, so the type checker can resolve any import the
// analyzed code mentions.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir := l.dirFor(path); dir != "" {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.source.Import(path)
}

// Load type-checks the package at the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("load: cannot resolve %q to a local directory", path)
	}
	return l.load(path, dir)
}

// LoadDir type-checks the package in dir, deriving its import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.pathFor(abs)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

// pathFor derives the import path of a local directory.
func (l *Loader) pathFor(dir string) (string, error) {
	root, prefix := l.moduleDir, l.modulePath
	if l.srcRoot != "" {
		root, prefix = l.srcRoot, ""
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("load: %s is outside the load root %s", dir, root)
	}
	if rel == "." {
		return prefix, nil
	}
	p := filepath.ToSlash(rel)
	if prefix != "" {
		p = prefix + "/" + p
	}
	return p, nil
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load %s: no buildable Go files in %s", path, dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if len(typeErrs) < 10 {
				typeErrs = append(typeErrs, err.Error())
			}
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("load %s: %s", path, strings.Join(typeErrs, "\n\t"))
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info, GoVersion: l.goVersion}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Expand resolves command-line package patterns relative to dir:
// "./..." style recursive patterns, "./x" relative directories, and
// plain import paths. It returns the matched directories in sorted
// order; testdata, vendor, and hidden directories are skipped, as are
// directories with no buildable non-test Go files.
func (l *Loader) Expand(dir string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "all" || pat == "...":
			pat = "./..."
			fallthrough
		case strings.HasSuffix(pat, "/...") || strings.HasSuffix(pat, string(filepath.Separator)+"..."):
			root := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			root = strings.TrimSuffix(root, string(filepath.Separator))
			if root == "" || root == "." {
				root = dir
			} else if !filepath.IsAbs(root) {
				root = filepath.Join(dir, root)
			}
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasBuildableGo(p) {
					add(p)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			p := pat
			if !filepath.IsAbs(p) {
				if strings.HasPrefix(p, "./") || strings.HasPrefix(p, "../") || p == "." {
					p = filepath.Join(dir, p)
				} else if d := l.dirFor(p); d != "" {
					p = d
				} else {
					p = filepath.Join(dir, p)
				}
			}
			if !hasBuildableGo(p) {
				return nil, fmt.Errorf("load: no buildable Go files in %s", p)
			}
			add(p)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasBuildableGo reports whether dir holds at least one buildable
// non-test Go file.
func hasBuildableGo(dir string) bool {
	bp, err := build.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}
