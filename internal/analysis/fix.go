package analysis

import (
	"go/token"
	"sort"
)

// ApplyEdits applies non-overlapping text edits to src, resolving
// positions through fset. It is the engine behind both the
// analysistest golden comparison and avd-lint's -fix mode, so the
// rewrite a test pins down is byte-for-byte the rewrite the tool
// writes to disk.
func ApplyEdits(fset *token.FileSet, src []byte, edits []TextEdit) []byte {
	type span struct {
		start, end int
		text       []byte
	}
	var spans []span
	for _, e := range edits {
		start := fset.Position(e.Pos).Offset
		end := start
		if e.End.IsValid() {
			end = fset.Position(e.End).Offset
		}
		spans = append(spans, span{start: start, end: end, text: e.NewText})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start > spans[j].start })
	out := append([]byte(nil), src...)
	for _, s := range spans {
		out = append(out[:s.start], append(append([]byte(nil), s.text...), out[s.end:]...)...)
	}
	return out
}
