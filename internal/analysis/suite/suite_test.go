package suite_test

import (
	"testing"

	"github.com/taskpar/avd/internal/analysis"
	"github.com/taskpar/avd/internal/analysis/load"
	"github.com/taskpar/avd/internal/analysis/suite"
)

// TestRegistration pins the suite contents: at least the five shipped
// analyzers, unique names, and the advisory-only severity of elision.
func TestRegistration(t *testing.T) {
	all := suite.All()
	if len(all) < 5 {
		t.Fatalf("suite has %d analyzers, want >= 5", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing name, doc, or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		wantSev := analysis.SeverityWarning
		advisory := a.Name == "elision" || a.Name == "staticavd"
		if advisory {
			wantSev = analysis.SeverityInfo
		}
		if got := a.DefaultSeverity; got != wantSev && !(!advisory && got == "") {
			t.Errorf("analyzer %s severity = %q, want %q", a.Name, got, wantSev)
		}
	}
	for _, name := range []string{"taskcapture", "sharedescape", "lockdiscipline", "sessionhandle", "elision", "staticavd"} {
		if !seen[name] {
			t.Errorf("suite is missing analyzer %q", name)
		}
	}
}

// TestSuiteOverCorpus runs the WHOLE suite in one pass over every
// corpus package: the analyzers must coexist on the shared
// inspector/facts without crashing, and each one must fire on its own
// corpus while running alongside the others.
func TestSuiteOverCorpus(t *testing.T) {
	corpora := []string{"taskcapture", "sharedescape", "lockdiscipline", "sessionhandle", "elision", "staticavd"}
	l := load.NewGOPATH("../testdata")
	for _, path := range corpora {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := analysis.Run(l.Fset, pkg.Files, pkg.Types, pkg.Info, suite.All())
		if err != nil {
			t.Fatalf("running suite on %s: %v", path, err)
		}
		fired := false
		for _, d := range diags {
			if d.Analyzer == path {
				fired = true
				break
			}
		}
		if !fired {
			t.Errorf("analyzer %s produced no diagnostics on its own corpus under the full suite", path)
		}
	}
}
