// Package suite registers the avdlint analyzers. The driver
// (cmd/avd-lint) and the self-lint test both consume this list, so
// adding an analyzer here is the single step that puts it in front of
// every consumer.
package suite

import (
	"github.com/taskpar/avd/internal/analysis"
	"github.com/taskpar/avd/internal/analysis/passes/elision"
	"github.com/taskpar/avd/internal/analysis/passes/lockdiscipline"
	"github.com/taskpar/avd/internal/analysis/passes/observer"
	"github.com/taskpar/avd/internal/analysis/passes/sessionhandle"
	"github.com/taskpar/avd/internal/analysis/passes/sharedescape"
	"github.com/taskpar/avd/internal/analysis/passes/staticavd"
	"github.com/taskpar/avd/internal/analysis/passes/taskcapture"
)

// All returns the full avdlint analyzer suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		taskcapture.Analyzer,
		sharedescape.Analyzer,
		lockdiscipline.Analyzer,
		sessionhandle.Analyzer,
		elision.Analyzer,
		observer.Analyzer,
		staticavd.Analyzer,
	}
}
