// Corpus for the staticavd analyzer: compile-time atomicity-violation
// candidates found by running the paper's three-access patterns over
// the static DPST. Each function is its own entry point (contains a
// Session.Run and is referenced by nobody), so each grows its own
// static tree.
package staticavd

import "avd"

// basic is the paper's Figure 1: the increment pair in one spawned
// task, an overwriting store in a parallel sibling.
func basic() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	x := s.NewIntVar("X")
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) {
				a := x.Load(t) // want `atomicity-violation candidate on IntVar x: pattern R-W-W`
				x.Store(t, a+1)
			})
			t.Spawn(func(t *avd.Task) { x.Store(t, 0) })
		})
	})
}

// lockSections is Figure 11: the pair's read and write sit in two
// different critical sections of L, so the locked parallel store can
// slot between them.
func lockSections() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	x := s.NewIntVar("X")
	l := s.NewMutex("L")
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) {
				l.Lock(t)
				a := x.Load(t) // want `atomicity-violation candidate on IntVar x: pattern R-W-W`
				l.Unlock(t)
				l.Lock(t)
				x.Store(t, a)
				l.Unlock(t)
			})
			t.Spawn(func(t *avd.Task) {
				l.Lock(t)
				x.Store(t, 1)
				l.Unlock(t)
			})
		})
	})
}

// lockClean keeps the pair inside one critical section: the non-strict
// suppression silences it, exactly like the dynamic checker.
func lockClean() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	x := s.NewIntVar("X")
	l := s.NewMutex("L")
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) {
				l.Lock(t)
				x.Store(t, x.Load(t)+1)
				l.Unlock(t)
			})
			t.Spawn(func(t *avd.Task) {
				l.Lock(t)
				x.Store(t, 1)
				l.Unlock(t)
			})
		})
	})
}

// atomicPair is the bank-account shape: two variables forming one
// Session.Atomic location; the transfer's write pair and the audit's
// read pair each admit an unserializable interleaving.
func atomicPair() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	checking := s.NewIntVar("checking")
	savings := s.NewIntVar("savings")
	s.Atomic(checking, savings)
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) {
				checking.Store(t, checking.Load(t)-50) // want `atomicity-violation candidate on IntVar checking: pattern W-R-W`
				savings.Store(t, savings.Load(t)+50)
			})
			t.Spawn(func(t *avd.Task) {
				_ = checking.Load(t) + savings.Load(t) // want `atomicity-violation candidate on IntVar checking: pattern R-W-R`
			})
		})
	})
}

// loopSpawn replicates a spawn inside a serial loop: one static async
// stands for every iteration's child, and the increment pair can be
// interleaved by another copy's write.
func loopSpawn() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	v := s.NewIntVar("V")
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			for i := 0; i < 4; i++ {
				t.Spawn(func(t *avd.Task) { v.Add(t, 1) }) // want `atomicity-violation candidate on IntVar v: pattern R-W-W`
			}
		})
	})
}

// methodValue spawns a method value twice; the receiver-field accesses
// of the two children interleave each other.
type worker struct{ v *avd.IntVar }

func (w worker) step(t *avd.Task) {
	w.v.Add(t, 1) // want `pattern R-W-W` `pattern R-W-W`
}

func methodValue() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	w := worker{v: s.NewIntVar("V")}
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			t.Spawn(w.step)
			t.Spawn(w.step)
		})
	})
}

// helperClosure spawns a closure returned from an in-package helper;
// the helper's parameter is substituted by the spawn argument.
func makeIncrement(v *avd.IntVar) func(*avd.Task) {
	return func(t *avd.Task) {
		a := v.Load(t) // want `atomicity-violation candidate on IntVar h: pattern R-W-W`
		v.Store(t, a+1)
	}
}

func helperClosure() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	h := s.NewIntVar("H")
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			t.Spawn(makeIncrement(h))
			t.Spawn(func(t *avd.Task) { h.Store(t, 0) })
		})
	})
}

// goEscape hands the task to a goroutine outside the DPST: its store
// may happen in parallel with everything, including the serial pair.
func leak(t *avd.Task, g *avd.IntVar) {
	g.Store(t, 2)
}

func goEscape() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	g := s.NewIntVar("G")
	s.Run(func(t *avd.Task) {
		go leak(t, g)
		a := g.Load(t) // want `atomicity-violation candidate on IntVar g: pattern R-W-W`
		g.Store(t, a+1)
	})
}

// recurse widens self-recursion: work spawns a store at every level,
// and the widened replicated async interleaves its own copies.
func work(t *avd.Task, n *avd.IntVar, d int) {
	if d == 0 {
		return
	}
	t.Spawn(func(t *avd.Task) { n.Store(t, int64(d)) }) // want `pattern W-W-W` `pattern W-W-W`
	work(t, n, d-1)
}

func recurse() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	n := s.NewIntVar("N")
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) { work(t, n, 4) })
	})
}

// mutual widens mutual recursion: ping spawns pong, pong calls ping.
// The widened async admits every unserializable pattern; the reporter
// caps one location at four.
func ping(t *avd.Task, m *avd.IntVar, d int) {
	if d == 0 {
		return
	}
	t.Spawn(func(t *avd.Task) { pong(t, m, d-1) })
}

func pong(t *avd.Task, m *avd.IntVar, d int) {
	m.Add(t, 1) // want `on IntVar m` `on IntVar m` `on IntVar m` `on IntVar m`
	ping(t, m, d)
}

func mutual() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	m := s.NewIntVar("M")
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) { ping(t, m, 3) })
	})
}
