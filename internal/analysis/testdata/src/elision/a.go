// Corpus for the elision analyzer: instrumented variables provably
// touched by a single step — or statically proven serial across steps
// by the static-MHP engine — are reported (info) as safely elidable.
package elision

import "avd"

func elidable() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	x := s.NewIntVar("X") // want `IntVar x is only ever accessed by a single step; its instrumentation can be elided safely`
	y := s.NewIntVar("Y") // want `IntVar y is statically proven serial`
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) {
				x.Store(t, 1)
				x.Add(t, 2)
			})
			t.Spawn(func(t *avd.Task) {
				y.Store(t, 1)
			})
		})
		y.Add(t, 1) // after the join: serial with the spawned store
	})
	_ = x.Value() // neutral read: emits no event, does not disturb the proof
}

func runOnly() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	r := s.NewIntVar("R") // want `IntVar r is only ever accessed by a single step; its instrumentation can be elided safely`
	s.Run(func(t *avd.Task) {
		r.Store(t, 1)
		r.Add(t, 41)
	})
}

// The static proof also covers steps that hand their task to unknown
// code: an unknown callee cannot reach a handle that never escapes, so
// the accesses stay serial even though the single-step proof gives up.
func opaqueCallee() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	d := s.NewIntVar("D") // want `IntVar d is statically proven serial`
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) {
				d.Store(t, 1)
				helper(t)
			})
		})
	})
}

func notElidable() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	a := s.NewIntVar("A") // two parallel steps: genuinely shared
	b := s.NewIntVar("B") // replicated body: one handle, many dynamic steps
	c := s.NewIntVar("C") // escapes into Atomic grouping
	e := s.NewIntVar("E") // spawned write races the pre-join read
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) { a.Add(t, 1) })
			t.Spawn(func(t *avd.Task) { a.Add(t, 1) })
		})
		avd.ParallelFor(t, 0, 8, 1, func(t *avd.Task, i int) {
			b.Add(t, int64(i))
		})
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) { e.Store(t, 1) })
			_ = e.Load(t) // still inside the finish: parallel with the spawn
		})
	})
	s.Atomic(c)
}

func helper(t *avd.Task) {}
