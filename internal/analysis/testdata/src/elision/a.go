// Corpus for the elision analyzer: instrumented variables provably
// touched by a single step are reported (info) as safely elidable.
package elision

import "avd"

func elidable() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	x := s.NewIntVar("X") // want `IntVar x is only ever accessed by a single step; its instrumentation can be elided safely`
	y := s.NewIntVar("Y")
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) {
				x.Store(t, 1)
				x.Add(t, 2)
			})
			t.Spawn(func(t *avd.Task) {
				y.Store(t, 1)
			})
		})
		y.Add(t, 1) // a second step touches y: not elidable
	})
	_ = x.Value() // neutral read: emits no event, does not disturb the proof
}

func runOnly() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	r := s.NewIntVar("R") // want `IntVar r is only ever accessed by a single step; its instrumentation can be elided safely`
	s.Run(func(t *avd.Task) {
		r.Store(t, 1)
		r.Add(t, 41)
	})
}

func notElidable() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	a := s.NewIntVar("A") // two parallel steps: genuinely shared
	b := s.NewIntVar("B") // replicated body: one handle, many dynamic steps
	c := s.NewIntVar("C") // escapes into Atomic grouping
	d := s.NewIntVar("D") // its step hands the task to unknown code, which may spawn
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) { a.Add(t, 1) })
			t.Spawn(func(t *avd.Task) { a.Add(t, 1) })
		})
		avd.ParallelFor(t, 0, 8, 1, func(t *avd.Task, i int) {
			b.Add(t, int64(i))
		})
		t.Spawn(func(t *avd.Task) {
			d.Store(t, 1)
			helper(t)
		})
	})
	s.Atomic(c)
}

func helper(t *avd.Task) {}
