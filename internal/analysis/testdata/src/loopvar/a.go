// Corpus for the taskcapture analyzer's loop-variable check, run with
// a declared language version of go1.21: a spawned task closure that
// captures an enclosing loop variable shares one variable with every
// iteration under the old semantics, so the task races on it. The same
// corpus is also run with the version unset (treated as current), where
// every case below must be silent.
package loopvar

import "avd"

func capturedFor() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	x := s.NewIntVar("X")
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			for i := 0; i < 4; i++ {
				t.Spawn(func(t *avd.Task) {
					x.Add(t, int64(i)) // want `task closure of Spawn captures for-loop variable i`
				})
			}
		})
	})
}

func capturedRange() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	x := s.NewIntVar("X")
	vals := []int64{1, 2, 3}
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			for i, v := range vals {
				t.CilkSpawn(func(t *avd.Task) {
					x.Store(t, v) // want `task closure of CilkSpawn captures range-loop variable v`
				})
				_ = i
			}
		})
	})
}

// nestedSpawn: a Spawn inside a Spawn keeps the capture asynchronous;
// the inner closure is flagged against the outer loop.
func nestedSpawn() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	x := s.NewIntVar("X")
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			for i := 0; i < 4; i++ {
				t.Spawn(func(t *avd.Task) {
					t.Spawn(func(t *avd.Task) {
						x.Add(t, int64(i)) // want `task closure of Spawn captures for-loop variable i`
					})
				})
			}
		})
	})
}

// rebound: the i := i idiom rebinds per iteration — silent.
// joined: the Finish inside the loop joins the spawn before the
// iteration advances — silent.
// parfor: ParallelFor's index is a parameter, not a capture — silent.
func clean() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	x := s.NewIntVar("X")
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			for i := 0; i < 4; i++ {
				i := i
				t.Spawn(func(t *avd.Task) {
					x.Add(t, int64(i))
				})
			}
		})
		for i := 0; i < 4; i++ {
			t.Finish(func(t *avd.Task) {
				t.Spawn(func(t *avd.Task) {
					x.Add(t, int64(i))
				})
			})
		}
		avd.ParallelFor(t, 0, 8, 1, func(t *avd.Task, i int) {
			x.Add(t, int64(i))
		})
	})
}
