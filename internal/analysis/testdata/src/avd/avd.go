// Package avd is a dependency-free stub of the public avd API used by
// the avdlint analysistest corpus. The analyzers recognize the API by
// package-path suffix and type/method names, so this stub exercises
// them without type-checking the real runtime (and its standard-
// library closure) for every corpus package.
package avd

// Task is the stub of the dynamic task.
type Task struct{ _ int }

// Spawn stubs sched.Task.Spawn.
func (t *Task) Spawn(body func(*Task)) {}

// CilkSpawn stubs sched.Task.CilkSpawn.
func (t *Task) CilkSpawn(body func(*Task)) {}

// Finish stubs sched.Task.Finish.
func (t *Task) Finish(body func(*Task)) {}

// Sync stubs sched.Task.Sync.
func (t *Task) Sync() {}

// Parallel stubs sched.Task.Parallel.
func (t *Task) Parallel(fns ...func(*Task)) {}

// ParallelFor stubs avd.ParallelFor.
func ParallelFor(t *Task, lo, hi, grain int, body func(*Task, int)) {}

// ParallelRange stubs avd.ParallelRange.
func ParallelRange(t *Task, lo, hi, grain int, body func(*Task, int, int)) {}

// Options stubs avd.Options.
type Options struct {
	Workers  int
	Observer *Observer
}

// Violation stubs avd.Violation.
type Violation struct{ _ int }

// DropEvent stubs avd.DropEvent.
type DropEvent struct{ _ int }

// TaskPanic stubs avd.TaskPanic.
type TaskPanic struct{ _ int }

// Snapshot stubs avd.Snapshot.
type Snapshot struct{ _ int }

// Observer stubs avd.Observer.
type Observer struct {
	OnViolation  func(Violation)
	OnDrop       func(DropEvent)
	OnSaturation func()
	OnTaskPanic  func(TaskPanic)
}

// Report stubs avd.Report.
type Report struct{ _ int }

// Session stubs avd.Session.
type Session struct{ _ int }

// NewSession stubs avd.NewSession.
func NewSession(opts Options) *Session { return &Session{} }

// Run stubs Session.Run.
func (s *Session) Run(body func(*Task)) {}

// Close stubs Session.Close.
func (s *Session) Close() {}

// Report stubs Session.Report.
func (s *Session) Report() Report { return Report{} }

// Snapshot stubs Session.Snapshot.
func (s *Session) Snapshot() Snapshot { return Snapshot{} }

// Atomic stubs Session.Atomic.
func (s *Session) Atomic(vars ...any) {}

// NewIntVar stubs Session.NewIntVar.
func (s *Session) NewIntVar(name string) *IntVar { return &IntVar{} }

// NewFloatVar stubs Session.NewFloatVar.
func (s *Session) NewFloatVar(name string) *FloatVar { return &FloatVar{} }

// NewIntArray stubs Session.NewIntArray.
func (s *Session) NewIntArray(name string, n int) *IntArray { return &IntArray{} }

// NewFloatArray stubs Session.NewFloatArray.
func (s *Session) NewFloatArray(name string, n int) *FloatArray { return &FloatArray{} }

// NewMutex stubs Session.NewMutex.
func (s *Session) NewMutex(name string) *Mutex { return &Mutex{} }

// IntVar stubs the instrumented integer.
type IntVar struct{ _ int }

// Load stubs IntVar.Load.
func (v *IntVar) Load(t *Task) int64 { return 0 }

// Store stubs IntVar.Store.
func (v *IntVar) Store(t *Task, x int64) {}

// Add stubs IntVar.Add.
func (v *IntVar) Add(t *Task, d int64) int64 { return 0 }

// Value stubs IntVar.Value.
func (v *IntVar) Value() int64 { return 0 }

// SetValue stubs IntVar.SetValue.
func (v *IntVar) SetValue(x int64) {}

// AddValue stubs IntVar.AddValue.
func (v *IntVar) AddValue(d int64) int64 { return 0 }

// Name stubs IntVar.Name.
func (v *IntVar) Name() string { return "" }

// FloatVar stubs the instrumented float.
type FloatVar struct{ _ int }

// Load stubs FloatVar.Load.
func (v *FloatVar) Load(t *Task) float64 { return 0 }

// Store stubs FloatVar.Store.
func (v *FloatVar) Store(t *Task, x float64) {}

// Add stubs FloatVar.Add.
func (v *FloatVar) Add(t *Task, d float64) float64 { return 0 }

// Value stubs FloatVar.Value.
func (v *FloatVar) Value() float64 { return 0 }

// SetValue stubs FloatVar.SetValue.
func (v *FloatVar) SetValue(x float64) {}

// AddValue stubs FloatVar.AddValue.
func (v *FloatVar) AddValue(d float64) float64 { return 0 }

// IntArray stubs the instrumented integer array.
type IntArray struct{ _ int }

// Load stubs IntArray.Load.
func (a *IntArray) Load(t *Task, i int) int64 { return 0 }

// Store stubs IntArray.Store.
func (a *IntArray) Store(t *Task, i int, x int64) {}

// Add stubs IntArray.Add.
func (a *IntArray) Add(t *Task, i int, d int64) int64 { return 0 }

// Value stubs IntArray.Value.
func (a *IntArray) Value(i int) int64 { return 0 }

// SetValue stubs IntArray.SetValue.
func (a *IntArray) SetValue(i int, x int64) {}

// AddValue stubs IntArray.AddValue.
func (a *IntArray) AddValue(i int, d int64) int64 { return 0 }

// Len stubs IntArray.Len.
func (a *IntArray) Len() int { return 0 }

// FloatArray stubs the instrumented float array.
type FloatArray struct{ _ int }

// Load stubs FloatArray.Load.
func (a *FloatArray) Load(t *Task, i int) float64 { return 0 }

// Store stubs FloatArray.Store.
func (a *FloatArray) Store(t *Task, i int, x float64) {}

// Add stubs FloatArray.Add.
func (a *FloatArray) Add(t *Task, i int, d float64) float64 { return 0 }

// Value stubs FloatArray.Value.
func (a *FloatArray) Value(i int) float64 { return 0 }

// SetValue stubs FloatArray.SetValue.
func (a *FloatArray) SetValue(i int, x float64) {}

// AddValue stubs FloatArray.AddValue.
func (a *FloatArray) AddValue(i int, d float64) float64 { return 0 }

// Mutex stubs the instrumented mutex.
type Mutex struct{ _ int }

// Lock stubs Mutex.Lock.
func (m *Mutex) Lock(t *Task) {}

// Unlock stubs Mutex.Unlock.
func (m *Mutex) Unlock(t *Task) {}

// Name stubs Mutex.Name.
func (m *Mutex) Name() string { return "" }
