// Corpus for the taskcapture analyzer: a closure passed to a structure
// operation must thread its own *Task parameter; using a captured
// outer task attributes accesses to the wrong DPST step.
package taskcapture

import "avd"

func flagged() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	x := s.NewIntVar("X")
	s.Run(func(t *avd.Task) {
		t.Spawn(func(child *avd.Task) {
			x.Store(t, 1) // want `task closure of Spawn uses captured task t instead of its own parameter`
		})
		t.CilkSpawn(func(child *avd.Task) {
			x.Add(t, 1) // want `task closure of CilkSpawn uses captured task t instead of its own parameter`
		})
		avd.ParallelFor(t, 0, 8, 1, func(worker *avd.Task, i int) {
			x.Add(t, int64(i)) // want `task closure of ParallelFor uses captured task t instead of its own parameter`
		})
		t.Finish(func(ft *avd.Task) {
			ft.Spawn(func(child *avd.Task) {
				x.Store(ft, 2) // want `task closure of Spawn uses captured task ft instead of its own parameter`
			})
		})
	})
}

func clean() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	x := s.NewIntVar("X")
	s.Run(func(t *avd.Task) {
		t.Spawn(func(t *avd.Task) { x.Store(t, 1) }) // shadowing the outer task is the idiom
		t.Finish(func(t *avd.Task) {
			x.Add(t, 1) // Finish runs inline: its parameter aliases the receiver
		})
		t.Finish(func(ft *avd.Task) {
			x.Add(t, 1) // referencing the receiver itself is fine in inline closures
		})
		t.Parallel(
			func(a *avd.Task) { x.Add(a, 1) },
			func(b *avd.Task) { x.Add(b, 2) },
		)
	})
}
