// Corpus for the sessionhandle analyzer: handles and tasks must stay
// inside the session that created them, and nothing may touch a
// session after Close.
package sessionhandle

import "avd"

func crossSession() {
	s1 := avd.NewSession(avd.Options{})
	defer s1.Close()
	s2 := avd.NewSession(avd.Options{})
	defer s2.Close()
	x := s1.NewIntVar("X")
	m := s1.NewMutex("M")
	s2.Run(func(t *avd.Task) {
		x.Store(t, 1) // want `handle x was created by session s1 but is used with a task of session s2`
		m.Lock(t)     // want `mutex m was created by session s1 but is used with a task of session s2`
		m.Unlock(t)   // want `mutex m was created by session s1 but is used with a task of session s2`
	})
}

func useAfterClose() {
	s := avd.NewSession(avd.Options{})
	y := s.NewIntVar("Y")
	s.Run(func(t *avd.Task) { y.Store(t, 1) })
	s.Close()
	s.Run(func(t *avd.Task) { // want `session s is used after Close`
		y.Store(t, 2) // want `handle y belongs to session s, which was already closed on this path`
	})
}

func sameSession() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	x := s.NewIntVar("X")
	s.Run(func(t *avd.Task) {
		t.Spawn(func(t *avd.Task) {
			x.Store(t, 1) // handle and task share a session: clean
		})
	})
}

func reopened() {
	s := avd.NewSession(avd.Options{})
	s.Run(func(t *avd.Task) {})
	s.Close()
	s = avd.NewSession(avd.Options{})
	s.Run(func(t *avd.Task) {}) // rebound to a fresh session: clean
	s.Close()
}
