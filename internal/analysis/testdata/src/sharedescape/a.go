// Corpus for the sharedescape analyzer: plain variables written by
// logically parallel closures are invisible to the atomicity checker.
package sharedescape

import "avd"

func flagged() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	count := 0
	var total float64
	s.Run(func(t *avd.Task) {
		t.Finish(func(t *avd.Task) {
			t.Spawn(func(t *avd.Task) {
				count++ // want `variable count is written by logically parallel tasks but is not instrumented; these accesses are invisible to the atomicity checker — declare it with Session.NewIntVar`
			})
			t.Spawn(func(t *avd.Task) {
				count++
				total += 1.5 // want `variable total is written by logically parallel tasks but is not instrumented; these accesses are invisible to the atomicity checker — declare it with Session.NewFloatVar`
			})
			t.Spawn(func(t *avd.Task) {
				total += 2.5
			})
		})
	})
	_ = count
	_ = total
}

func replicated(t *avd.Task) {
	sum := 0
	avd.ParallelFor(t, 0, 100, 8, func(t *avd.Task, i int) {
		sum += i // want `variable sum is written by logically parallel tasks but is not instrumented`
	})
	_ = sum
}

func clean(s *avd.Session, t *avd.Task) {
	x := s.NewIntVar("X") // instrumented: the checker sees every access
	seed := 42            // written serially, only read in parallel
	t.Finish(func(t *avd.Task) {
		t.Spawn(func(t *avd.Task) { x.Add(t, int64(seed)) })
		t.Spawn(func(t *avd.Task) { x.Add(t, int64(seed)) })
	})
	avd.ParallelRange(t, 0, 100, 8, func(t *avd.Task, lo, hi int) {
		local := 0 // declared inside the replicated body: every leaf owns its own copy
		for i := lo; i < hi; i++ {
			local += i
		}
		x.Add(t, int64(local))
	})
}
