// Corpus for the lockdiscipline analyzer: the static half of the
// runtime's critical-section UsageError checks, plus double-lock and
// lock-across-spawn shapes the runtime cannot cheaply see.
package lockdiscipline

import "avd"

func doubleLock(s *avd.Session) {
	m := s.NewMutex("M")
	s.Run(func(t *avd.Task) {
		m.Lock(t)
		m.Lock(t) // want `mutex m is locked again on a path where it is already held`
		m.Unlock(t)
		m.Unlock(t)
	})
}

func orphanUnlock(s *avd.Session) {
	m := s.NewMutex("M")
	s.Run(func(t *avd.Task) {
		m.Lock(t)
		m.Unlock(t)
		m.Unlock(t) // want `mutex m is unlocked without a dominating Lock on this path`
	})
}

func spanSpawn(s *avd.Session) {
	m := s.NewMutex("M")
	x := s.NewIntVar("X")
	s.Run(func(t *avd.Task) {
		m.Lock(t)
		t.Spawn(func(t *avd.Task) { // want `critical section of mutex m spans Spawn`
			x.Store(t, 1)
		})
		m.Unlock(t)
	})
}

func spanSync(s *avd.Session) {
	m := s.NewMutex("M")
	s.Run(func(t *avd.Task) {
		t.Spawn(func(t *avd.Task) {})
		m.Lock(t)
		t.Sync() // want `critical section of mutex m spans Sync`
		m.Unlock(t)
	})
}

// crossClosure splits one lock/unlock pair across two tasks: the
// parent locks, the spawned child unlocks. Both halves are reported —
// the span at the structure call and the orphan unlock inside the
// closure.
func crossClosure(s *avd.Session) {
	m := s.NewMutex("M")
	x := s.NewIntVar("X")
	s.Run(func(t *avd.Task) {
		m.Lock(t)
		t.Spawn(func(t *avd.Task) { // want `critical section of mutex m spans Spawn`
			x.Store(t, 1)
			m.Unlock(t) // want `mutex m is unlocked in the task closure of Spawn but locked by the spawning task`
		})
	})
}

// crossClosureClean re-locks inside the child: its unlock pairs with
// its own lock, so only the span is reported.
func crossClosureClean(s *avd.Session) {
	m := s.NewMutex("M")
	x := s.NewIntVar("X")
	s.Run(func(t *avd.Task) {
		m.Lock(t)
		t.Spawn(func(t *avd.Task) { // want `critical section of mutex m spans Spawn`
			m.Lock(t)
			x.Store(t, 1)
			m.Unlock(t)
		})
		m.Unlock(t)
	})
}

func clean(s *avd.Session) {
	m := s.NewMutex("M")
	x := s.NewIntVar("X")
	s.Run(func(t *avd.Task) {
		m.Lock(t)
		x.Add(t, 1)
		m.Unlock(t)
		t.Spawn(func(t *avd.Task) { // the lock is released before the spawn
			m.Lock(t)
			x.Add(t, 2)
			m.Unlock(t)
		})
		if x.Value() > 0 {
			m.Lock(t)
			x.Store(t, 0)
			m.Unlock(t)
		}
		m.Lock(t) // not a double-lock: the branch above released it on every path
		defer m.Unlock(t)
		x.Add(t, 3)
	})
}

// release never locks m itself, so unlock-without-lock stays silent:
// the caller manages the critical section.
func release(t *avd.Task, m *avd.Mutex) {
	m.Unlock(t)
}

func suppressed(s *avd.Session) {
	m := s.NewMutex("M")
	s.Run(func(t *avd.Task) {
		m.Lock(t)
		m.Unlock(t)
		m.Unlock(t) //avdlint:ignore exercises the runtime's UsageError on purpose
	})
}

func branchy(s *avd.Session, cond bool) {
	m := s.NewMutex("M")
	s.Run(func(t *avd.Task) {
		if cond {
			m.Lock(t)
			m.Unlock(t)
		}
		m.Lock(t) // must-held is empty after the merge: no double-lock
		m.Unlock(t)
	})
}
