// Corpus for the observer analyzer: Observer callbacks run inside the
// analysis and must not call back into the session.
package observer

import "avd"

func reentrantLiteral() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	x := s.NewIntVar("X")
	ob := &avd.Observer{
		OnViolation: func(v avd.Violation) {
			_ = s.Report()   // want `Observer.OnViolation calls Session.Report`
			_ = s.Snapshot() // want `Observer.OnViolation calls Session.Snapshot`
		},
		OnDrop: func(d avd.DropEvent) {
			s.Close() // want `Observer.OnDrop calls Session.Close`
		},
	}
	_ = ob
	_ = x
}

func reentrantAccess() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	x := s.NewIntVar("X")
	m := s.NewMutex("M")
	var tk *avd.Task
	ob := avd.Observer{
		OnViolation: func(v avd.Violation) {
			x.Store(tk, 1) // want `Observer.OnViolation performs an instrumented access \(Store\)`
			m.Lock(tk)     // want `Observer.OnViolation performs an instrumented lock operation \(Lock\)`
		},
		OnSaturation: func() {
			tk.Spawn(func(t *avd.Task) {}) // want `Observer.OnSaturation calls Spawn`
		},
	}
	_ = ob
}

func reentrantAssignment() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	var ob avd.Observer
	ob.OnTaskPanic = func(p avd.TaskPanic) {
		_ = s.Report() // want `Observer.OnTaskPanic calls Session.Report`
	}
	_ = ob
}

// cleanCounting only records into plain state: allowed.
func cleanCounting() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	var violations int
	ob := &avd.Observer{
		OnViolation:  func(v avd.Violation) { violations++ },
		OnSaturation: func() {},
	}
	_ = ob
}

// cleanChannelEscape hands the event to another goroutine: allowed —
// the consumer acts after the callback returned, off the checker's
// goroutine.
func cleanChannelEscape() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	events := make(chan avd.Violation, 16)
	ob := &avd.Observer{
		OnViolation: func(v avd.Violation) {
			select {
			case events <- v:
			default:
			}
		},
		OnDrop: func(d avd.DropEvent) {
			go func() {
				_ = s.Snapshot() // escaped via go: allowed
			}()
		},
	}
	_ = ob
}

// cleanElsewhere: session calls outside observer callbacks stay
// unflagged.
func cleanElsewhere() {
	s := avd.NewSession(avd.Options{})
	defer s.Close()
	s.Run(func(t *avd.Task) {})
	_ = s.Report()
	_ = s.Snapshot()
}
