// Interprocedural task-structure summaries.
//
// The dynamic checker sees the program as a stream of structure events
// (spawn, finish, sync) and handle accesses, attributed to DPST nodes
// as they happen. This file computes the static counterpart: for every
// function and closure of a package, a linearized *effect stream*
// describing the net spawn/finish/sync behavior and the instrumented
// accesses the body performs, with in-package calls left symbolic
// (EffCall) so a consumer can inline them on demand. The staticmhp
// package interprets these streams to grow a static DPST approximation
// per entry point; recursion is detected at interpretation time and
// widened through the transitive Summary of the cycle.
//
// The extraction is deliberately syntactic and local: one pass per
// function body, no fixpoint. All interprocedural reasoning —
// inlining, parameter-to-argument handle substitution, recursion
// widening — happens in the consumer, where a substitution environment
// exists. Task bodies are resolved through the same machinery the
// closure index uses, extended with the shapes the corpus exercises:
// named functions, method values (t.Spawn(w.step)), and closures
// returned from in-package helpers (t.Spawn(makeWorker(x))).
package avdapi

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HandleKey names one instrumented handle or mutex for static
// reasoning. Ident-rooted receivers carry the variable object (plus an
// inline-instance number, so a handle declared inside a function that
// is inlined twice does not alias itself across calls); anything else
// falls back to the receiver's expression text, which conservatively
// aliases structurally identical expressions.
type HandleKey struct {
	// Obj is the receiver variable for ident-rooted receivers.
	Obj *types.Var
	// Inst distinguishes dynamic instances of a handle declared inside
	// an inlined or replicated frame (0 for top-level declarations).
	Inst int
	// Expr is the receiver expression text when Obj is nil.
	Expr string
}

// Name renders the handle for diagnostics.
func (k HandleKey) Name() string {
	if k.Obj != nil {
		return k.Obj.Name()
	}
	return k.Expr
}

// Zero reports whether the key is empty (unresolvable receiver).
func (k HandleKey) Zero() bool { return k.Obj == nil && k.Expr == "" }

// Effect is one element of a function's effect stream, in program
// order. Branch alternatives and loop bodies nest.
type Effect interface {
	// EffectPos is the source position the effect is anchored to.
	EffectPos() token.Pos
}

// EffAccess is one instrumented variable access (an Add contributes a
// read effect followed by a write effect, mirroring the runtime).
type EffAccess struct {
	// RecvVar is the receiver variable for ident-rooted receivers.
	RecvVar *types.Var
	// RecvExpr is the receiver text when RecvVar is nil.
	RecvExpr string
	// Write distinguishes the access kind.
	Write bool
	// Pos is the call position.
	Pos token.Pos
}

// EffLock is a mutex Lock or Unlock.
type EffLock struct {
	RecvVar  *types.Var
	RecvExpr string
	// Unlock distinguishes release from acquire.
	Unlock bool
	Pos    token.Pos
}

// EffDecl records a handle binding x := s.New*Var(...), anchoring the
// handle's declaration scope in the static tree.
type EffDecl struct {
	// Obj is the bound variable.
	Obj *types.Var
	// Kind is the handle kind ("IntVar", "FloatVar", ...).
	Kind string
	Pos  token.Pos
}

// EffSpawn forks a child task (Spawn or CilkSpawn).
type EffSpawn struct {
	Kind StructureKind
	Body *BodyRef
	Pos  token.Pos
}

// EffFinish runs a body inline under a new finish scope (Finish or
// Session.Run).
type EffFinish struct {
	Kind StructureKind
	Body *BodyRef
	Pos  token.Pos
}

// EffParallel is Task.Parallel: a finish scope forking every body but
// the first, which runs inline.
type EffParallel struct {
	Bodies []*BodyRef
	Pos    token.Pos
}

// EffParLoop is ParallelFor/ParallelRange: a finish scope over a
// replicated forked body.
type EffParLoop struct {
	Kind StructureKind
	Body *BodyRef
	Pos  token.Pos
}

// EffSync is Task.Sync.
type EffSync struct{ Pos token.Pos }

// EffCall is a call to an in-package function or directly-invoked
// closure, left symbolic for the consumer to inline.
type EffCall struct {
	// Decl is the callee declaration (nil when Lit is set).
	Decl *ast.FuncDecl
	// Lit is a directly invoked function literal.
	Lit *ast.FuncLit
	// Recv is the receiver expression for method calls.
	Recv ast.Expr
	// Args are the call's argument expressions (caller context).
	Args []ast.Expr
	Pos  token.Pos
}

// EffGo is a go statement with a resolvable body; its accesses run on
// a goroutine outside the DPST and may happen in parallel with
// everything.
type EffGo struct {
	Body *BodyRef
	Pos  token.Pos
}

// EffBranch is a set of alternative effect streams (if/else, switch,
// select) of which at most one executes.
type EffBranch struct {
	Alts [][]Effect
	Pos  token.Pos
}

// EffLoop is a serial loop body; it may execute any number of times.
type EffLoop struct {
	Body []Effect
	Pos  token.Pos
}

// EffOpaque marks a point where the task escapes to unresolvable code.
// Unknown callees cannot touch handles that never escape (the only
// ones the static passes reason about), and the structure they add
// cannot re-parent modeled steps, so consumers treat this as a no-op
// for MHP between modeled sites; it is recorded for transparency.
type EffOpaque struct{ Pos token.Pos }

// EffectPos implementations.
func (e EffAccess) EffectPos() token.Pos   { return e.Pos }
func (e EffLock) EffectPos() token.Pos     { return e.Pos }
func (e EffDecl) EffectPos() token.Pos     { return e.Pos }
func (e EffSpawn) EffectPos() token.Pos    { return e.Pos }
func (e EffFinish) EffectPos() token.Pos   { return e.Pos }
func (e EffParallel) EffectPos() token.Pos { return e.Pos }
func (e EffParLoop) EffectPos() token.Pos  { return e.Pos }
func (e EffSync) EffectPos() token.Pos     { return e.Pos }
func (e EffCall) EffectPos() token.Pos     { return e.Pos }
func (e EffGo) EffectPos() token.Pos       { return e.Pos }
func (e EffBranch) EffectPos() token.Pos   { return e.Pos }
func (e EffLoop) EffectPos() token.Pos     { return e.Pos }
func (e EffOpaque) EffectPos() token.Pos   { return e.Pos }

// BodyRef is the resolution of a task-body (or goroutine-body)
// argument.
type BodyRef struct {
	// Lit is a function literal body.
	Lit *ast.FuncLit
	// Decl is a named function or method body (method values included).
	Decl *ast.FuncDecl
	// BindVars/BindArgs carry extra variable bindings established at
	// body creation: the helper's parameters for closures returned from
	// in-package helpers, or the receiver variable for method values.
	// The arguments are caller-context expressions, to be resolved in
	// the consumer's substitution environment at the spawn point.
	BindVars []*types.Var
	BindArgs []ast.Expr
	// Unknown marks an unresolvable body (e.g. a function variable).
	Unknown bool
	Pos     token.Pos
}

// Summary is the transitive net effect of one function: whether it (or
// anything it reaches, including bodies it spawns) forks, syncs,
// escapes to goroutines, and which handle accesses the subtree
// performs. It is the widening used when the consumer's inlining hits
// recursion.
type Summary struct {
	// MayFork reports a reachable forking structure operation.
	MayFork bool
	// MaySync reports a reachable Sync.
	MaySync bool
	// HasGo reports a reachable go-statement escape.
	HasGo bool
	// HasRun reports a reachable Session.Run (marks analysis entry
	// points).
	HasRun bool
	// Opaque reports a reachable task escape to unknown code.
	Opaque bool
	// Accesses are the reachable handle accesses (capped).
	Accesses []EffAccess
}

// summaryAccessCap bounds the widened access set carried by one
// Summary; recursion widening only needs a representative set.
const summaryAccessCap = 256

// Summarizer computes per-function effect streams and transitive
// summaries for one package. Build it once (it is cached on the Facts
// layer via Memo) and share it between the static passes.
type Summarizer struct {
	api   *Facts
	files []*ast.File

	decls     map[*types.Func]*ast.FuncDecl
	effects   map[ast.Node][]Effect
	summaries map[ast.Node]*Summary
	roots     []*ast.FuncDecl
	rootsDone bool
}

// NewSummarizer indexes the package's function declarations.
func NewSummarizer(api *Facts, files []*ast.File) *Summarizer {
	s := &Summarizer{
		api:       api,
		files:     files,
		decls:     make(map[*types.Func]*ast.FuncDecl),
		effects:   make(map[ast.Node][]Effect),
		summaries: make(map[ast.Node]*Summary),
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := api.Info.Defs[fd.Name].(*types.Func); ok {
				s.decls[fn] = fd
			}
		}
	}
	return s
}

// DeclOf resolves an in-package function object to its declaration.
func (s *Summarizer) DeclOf(fn *types.Func) *ast.FuncDecl {
	if fn == nil {
		return nil
	}
	return s.decls[fn]
}

// Decls returns every indexed function declaration.
func (s *Summarizer) Decls() map[*types.Func]*ast.FuncDecl { return s.decls }

// Effects returns the effect stream of a function node (*ast.FuncDecl
// or *ast.FuncLit), extracting and memoizing it on first use.
func (s *Summarizer) Effects(fn ast.Node) []Effect {
	if effs, ok := s.effects[fn]; ok {
		return effs
	}
	var body *ast.BlockStmt
	switch n := fn.(type) {
	case *ast.FuncDecl:
		body = n.Body
	case *ast.FuncLit:
		body = n.Body
	}
	if body == nil {
		return nil
	}
	x := &extractor{s: s}
	effs := x.block(body)
	// Deferred calls run at frame exit, whatever the registration
	// branch; appending them at the end matches the release-at-return
	// semantics the lockdiscipline pass models.
	effs = append(effs, x.deferred...)
	s.effects[fn] = effs
	return effs
}

// Summary returns the transitive net effect of a function node. The
// result is complete even for (mutually) recursive functions: the
// accumulation walks effect streams directly with its own visited set,
// so cycles back to any node already folded in contribute nothing new.
func (s *Summarizer) Summary(fn ast.Node) *Summary {
	if sum, ok := s.summaries[fn]; ok {
		return sum
	}
	sum := &Summary{}
	s.accumulate(sum, s.Effects(fn), map[ast.Node]bool{fn: true})
	s.summaries[fn] = sum
	return sum
}

// Roots returns the analysis entry points: function declarations whose
// subtree reaches a Session.Run and that no other declaration's body
// calls or references (a function inlined into a larger root would
// otherwise be analyzed twice). References from top-level variable
// declarations — registry tables — do not disqualify a root.
func (s *Summarizer) Roots() []*ast.FuncDecl {
	if s.rootsDone {
		return s.roots
	}
	s.rootsDone = true
	referenced := make(map[*ast.FuncDecl]bool)
	for fn, decl := range s.decls {
		self := fn
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			used, ok := s.api.Info.Uses[id].(*types.Func)
			if !ok || used == self {
				return true
			}
			if d := s.decls[used]; d != nil {
				referenced[d] = true
			}
			return true
		})
	}
	for _, f := range s.files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || referenced[fd] {
				continue
			}
			if s.Summary(fd).HasRun {
				s.roots = append(s.roots, fd)
			}
		}
	}
	return s.roots
}

// accumulate folds an effect stream (and everything reachable from it)
// into sum.
func (s *Summarizer) accumulate(sum *Summary, effs []Effect, seen map[ast.Node]bool) {
	body := func(b *BodyRef) {
		if b == nil || b.Unknown {
			return
		}
		var n ast.Node
		if b.Lit != nil {
			n = b.Lit
		} else if b.Decl != nil {
			n = b.Decl
		}
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		s.accumulate(sum, s.Effects(n), seen)
	}
	for _, e := range effs {
		switch e := e.(type) {
		case EffAccess:
			if len(sum.Accesses) < summaryAccessCap {
				sum.Accesses = append(sum.Accesses, e)
			}
		case EffSpawn:
			sum.MayFork = true
			body(e.Body)
		case EffFinish:
			if e.Kind == KindRun {
				sum.HasRun = true
			}
			body(e.Body)
		case EffParallel:
			sum.MayFork = true
			for _, b := range e.Bodies {
				body(b)
			}
		case EffParLoop:
			sum.MayFork = true
			body(e.Body)
		case EffSync:
			sum.MaySync = true
		case EffGo:
			sum.HasGo = true
			body(e.Body)
		case EffOpaque:
			sum.Opaque = true
		case EffCall:
			var n ast.Node
			if e.Lit != nil {
				n = e.Lit
			} else if e.Decl != nil {
				n = e.Decl
			}
			if n != nil && !seen[n] {
				seen[n] = true
				s.accumulate(sum, s.Effects(n), seen)
			}
		case EffBranch:
			for _, alt := range e.Alts {
				s.accumulate(sum, alt, seen)
			}
		case EffLoop:
			s.accumulate(sum, e.Body, seen)
		}
	}
}

// extractor linearizes one function body into effects.
type extractor struct {
	s        *Summarizer
	deferred []Effect
}

// block extracts a statement list.
func (x *extractor) block(b *ast.BlockStmt) []Effect {
	if b == nil {
		return nil
	}
	return x.stmts(b.List)
}

func (x *extractor) stmts(list []ast.Stmt) []Effect {
	var effs []Effect
	for _, st := range list {
		effs = append(effs, x.stmt(st)...)
	}
	return effs
}

func (x *extractor) stmt(st ast.Stmt) []Effect {
	switch st := st.(type) {
	case nil:
		return nil
	case *ast.BlockStmt:
		return x.block(st)
	case *ast.ExprStmt:
		return x.expr(st.X)
	case *ast.AssignStmt:
		var effs []Effect
		for _, e := range st.Rhs {
			effs = append(effs, x.expr(e)...)
		}
		for _, e := range st.Lhs {
			effs = append(effs, x.expr(e)...)
		}
		effs = append(effs, x.handleDecls(st)...)
		return effs
	case *ast.IfStmt:
		effs := x.stmt(st.Init)
		effs = append(effs, x.expr(st.Cond)...)
		alts := [][]Effect{x.block(st.Body), x.stmt(st.Else)}
		return append(effs, EffBranch{Alts: alts, Pos: st.Pos()})
	case *ast.ForStmt:
		effs := x.stmt(st.Init)
		effs = append(effs, x.expr(st.Cond)...)
		body := x.block(st.Body)
		body = append(body, x.stmt(st.Post)...)
		return append(effs, EffLoop{Body: body, Pos: st.Pos()})
	case *ast.RangeStmt:
		effs := x.expr(st.X)
		return append(effs, EffLoop{Body: x.block(st.Body), Pos: st.Pos()})
	case *ast.SwitchStmt:
		effs := x.stmt(st.Init)
		effs = append(effs, x.expr(st.Tag)...)
		return append(effs, x.caseBranch(st.Body)...)
	case *ast.TypeSwitchStmt:
		effs := x.stmt(st.Init)
		effs = append(effs, x.stmt(st.Assign)...)
		return append(effs, x.caseBranch(st.Body)...)
	case *ast.SelectStmt:
		return x.caseBranch(st.Body)
	case *ast.ReturnStmt:
		var effs []Effect
		for _, e := range st.Results {
			effs = append(effs, x.expr(e)...)
		}
		return effs
	case *ast.DeferStmt:
		// Argument expressions evaluate at defer time; the call itself
		// runs at frame exit.
		var effs []Effect
		for _, a := range st.Call.Args {
			effs = append(effs, x.expr(a)...)
		}
		x.deferred = append(x.deferred, x.call(st.Call, false)...)
		return effs
	case *ast.GoStmt:
		return x.goStmt(st)
	case *ast.DeclStmt:
		var effs []Effect
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						effs = append(effs, x.expr(v)...)
					}
				}
			}
		}
		return effs
	case *ast.LabeledStmt:
		return x.stmt(st.Stmt)
	case *ast.IncDecStmt:
		return x.expr(st.X)
	case *ast.SendStmt:
		effs := x.expr(st.Chan)
		return append(effs, x.expr(st.Value)...)
	default:
		return nil
	}
}

// caseBranch folds a switch/select body into one EffBranch with an
// implicit empty alternative (no case may match).
func (x *extractor) caseBranch(body *ast.BlockStmt) []Effect {
	alts := [][]Effect{nil}
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			var alt []Effect
			for _, e := range c.List {
				alt = append(alt, x.expr(e)...)
			}
			alts = append(alts, append(alt, x.stmts(c.Body)...))
		case *ast.CommClause:
			alt := x.stmt(c.Comm)
			alts = append(alts, append(alt, x.stmts(c.Body)...))
		}
	}
	return []Effect{EffBranch{Alts: alts, Pos: body.Pos()}}
}

// handleDecls emits EffDecl for x := s.New*Var(...) bindings.
func (x *extractor) handleDecls(as *ast.AssignStmt) []Effect {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	var effs []Effect
	for i := range as.Lhs {
		call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		name, _, ok := x.s.api.SessionOp(call)
		if !ok {
			continue
		}
		switch name {
		case "NewIntVar", "NewFloatVar", "NewIntArray", "NewFloatArray":
		default:
			continue
		}
		id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		if obj, ok := x.s.api.Info.Defs[id].(*types.Var); ok {
			effs = append(effs, EffDecl{Obj: obj, Kind: name[3:], Pos: id.Pos()})
		}
	}
	return effs
}

// expr extracts the effects of an expression, classifying calls and
// skipping function literals (their effects belong to whoever runs
// them).
func (x *extractor) expr(e ast.Expr) []Effect {
	if e == nil {
		return nil
	}
	var effs []Effect
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			effs = append(effs, x.call(n, false)...)
			return false
		}
		return true
	})
	return effs
}

// receiverOf splits a receiver expression into (variable, text).
func (x *extractor) receiverOf(recv ast.Expr) (*types.Var, string) {
	if v := x.s.api.ObjectOf(recv); v != nil {
		return v, ""
	}
	return nil, types.ExprString(recv)
}

// call classifies one call expression. goBody requests the body
// resolution of a go statement's call instead of its inline effects.
func (x *extractor) call(call *ast.CallExpr, goBody bool) []Effect {
	api := x.s.api
	pos := call.Pos()

	// Instrumented handle access or mutex operation.
	if acc, ok := api.InstrumentedOp(call); ok {
		effs := x.callArgs(call)
		rv, re := x.receiverOf(acc.Recv)
		if acc.Mutex {
			return append(effs, EffLock{RecvVar: rv, RecvExpr: re, Unlock: acc.Kind == "Unlock", Pos: pos})
		}
		switch acc.Kind {
		case "Load":
			effs = append(effs, EffAccess{RecvVar: rv, RecvExpr: re, Pos: pos})
		case "Store":
			effs = append(effs, EffAccess{RecvVar: rv, RecvExpr: re, Write: true, Pos: pos})
		case "Add":
			effs = append(effs,
				EffAccess{RecvVar: rv, RecvExpr: re, Pos: pos},
				EffAccess{RecvVar: rv, RecvExpr: re, Write: true, Pos: pos})
		}
		return effs
	}

	// Structure operations.
	switch kind := api.Structure(call); kind {
	case KindSpawn, KindCilkSpawn:
		if len(call.Args) < 1 {
			return nil
		}
		return []Effect{EffSpawn{Kind: kind, Body: x.resolveBody(call.Args[0]), Pos: pos}}
	case KindFinish, KindRun:
		if len(call.Args) < 1 {
			return nil
		}
		return []Effect{EffFinish{Kind: kind, Body: x.resolveBody(call.Args[0]), Pos: pos}}
	case KindSync:
		return []Effect{EffSync{Pos: pos}}
	case KindParallel:
		var bodies []*BodyRef
		for _, a := range call.Args {
			bodies = append(bodies, x.resolveBody(a))
		}
		return []Effect{EffParallel{Bodies: bodies, Pos: pos}}
	case KindParallelFor, KindParallelRange:
		n := len(call.Args)
		if n < 1 {
			return nil
		}
		var effs []Effect
		for _, a := range call.Args[:n-1] {
			effs = append(effs, x.expr(a)...)
		}
		return append(effs, EffParLoop{Kind: kind, Body: x.resolveBody(call.Args[n-1]), Pos: pos})
	}

	// Remaining avd API calls (constructors, neutral accessors, session
	// methods) have no structure effect of their own.
	if fn := api.Callee(call); fn != nil {
		if avdFunc(fn) {
			return x.callArgs(call)
		}
		// In-package function or method: leave symbolic.
		if decl := x.s.DeclOf(fn); decl != nil {
			effs := x.callArgs(call)
			if goBody {
				ref := &BodyRef{Decl: decl, Pos: pos, BindVars: x.paramVars(decl), BindArgs: call.Args}
				return append(effs, EffGo{Body: ref, Pos: pos})
			}
			eff := EffCall{Decl: decl, Args: call.Args, Pos: pos}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && decl.Recv != nil {
				eff.Recv = sel.X
			}
			return append(effs, eff)
		}
	} else if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Directly invoked closure: func(){...}().
		effs := x.callArgs(call)
		if goBody {
			return append(effs, EffGo{Body: &BodyRef{Lit: lit, Pos: pos}, Pos: pos})
		}
		return append(effs, EffCall{Lit: lit, Args: call.Args, Pos: pos})
	}

	// Unknown callee: opaque when the task (or the call target itself)
	// escapes into it.
	effs := x.callArgs(call)
	if goBody {
		return append(effs, EffGo{Body: &BodyRef{Unknown: true, Pos: pos}, Pos: pos})
	}
	if x.passesTask(call) {
		effs = append(effs, EffOpaque{Pos: pos})
	}
	return effs
}

// callArgs extracts nested effects from a call's arguments (and its
// function expression, for chained calls like f(x)(t)).
func (x *extractor) callArgs(call *ast.CallExpr) []Effect {
	var effs []Effect
	if inner, ok := ast.Unparen(call.Fun).(*ast.CallExpr); ok {
		effs = append(effs, x.call(inner, false)...)
	}
	for _, a := range call.Args {
		effs = append(effs, x.expr(a)...)
	}
	return effs
}

// passesTask reports whether the call hands a *Task to its callee.
func (x *extractor) passesTask(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := x.s.api.Info.Types[arg]; ok && IsTaskPtr(tv.Type) {
			return true
		}
	}
	return false
}

// goStmt resolves a go statement into an escape effect.
func (x *extractor) goStmt(st *ast.GoStmt) []Effect {
	return x.call(st.Call, true)
}

// resolveBody resolves a task-body argument to its function body.
func (x *extractor) resolveBody(arg ast.Expr) *BodyRef {
	arg = ast.Unparen(arg)
	pos := arg.Pos()
	switch e := arg.(type) {
	case *ast.FuncLit:
		return &BodyRef{Lit: e, Pos: pos}
	case *ast.Ident:
		// Named in-package function used as a task body.
		if fn, ok := x.s.api.Info.Uses[e].(*types.Func); ok {
			if decl := x.s.DeclOf(fn); decl != nil {
				return &BodyRef{Decl: decl, Pos: pos}
			}
		}
	case *ast.SelectorExpr:
		// Method value: t.Spawn(w.step) binds the receiver.
		if sel, ok := x.s.api.Info.Selections[e]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if decl := x.s.DeclOf(fn); decl != nil {
					ref := &BodyRef{Decl: decl, Pos: pos}
					if recv := x.recvParam(decl); recv != nil {
						ref.BindVars = []*types.Var{recv}
						ref.BindArgs = []ast.Expr{e.X}
					}
					return ref
				}
			}
		}
		// Package-qualified function used as a body (pkg.Fn): only
		// in-package decls resolve; anything else is unknown.
		if fn, ok := x.s.api.Info.Uses[e.Sel].(*types.Func); ok {
			if decl := x.s.DeclOf(fn); decl != nil {
				return &BodyRef{Decl: decl, Pos: pos}
			}
		}
	case *ast.CallExpr:
		// Closure returned from an in-package helper:
		// t.Spawn(makeWorker(x)). Resolve when the helper's body is a
		// single return of a function literal, binding the helper's
		// parameters to the call's arguments.
		if fn := x.s.api.Callee(e); fn != nil {
			if decl := x.s.DeclOf(fn); decl != nil {
				if lit := returnedLit(decl); lit != nil {
					ref := &BodyRef{Lit: lit, Pos: pos}
					ref.BindVars = x.paramVars(decl)
					ref.BindArgs = e.Args
					return ref
				}
			}
		}
	}
	return &BodyRef{Unknown: true, Pos: pos}
}

// recvParam returns the declared receiver variable of a method.
func (x *extractor) recvParam(decl *ast.FuncDecl) *types.Var {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := x.s.api.Info.Defs[decl.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// paramVars returns the declared parameter variables of a function.
func (x *extractor) paramVars(decl *ast.FuncDecl) []*types.Var {
	var vars []*types.Var
	if decl.Type.Params == nil {
		return nil
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := x.s.api.Info.Defs[name].(*types.Var); ok {
				vars = append(vars, v)
			}
		}
	}
	return vars
}

// returnedLit matches a helper whose body is a single
// `return func(...){...}` statement.
func returnedLit(decl *ast.FuncDecl) *ast.FuncLit {
	if decl.Body == nil || len(decl.Body.List) != 1 {
		return nil
	}
	ret, ok := decl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	lit, _ := ast.Unparen(ret.Results[0]).(*ast.FuncLit)
	return lit
}
