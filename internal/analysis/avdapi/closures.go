package avdapi

import (
	"go/ast"
)

// ClosureInfo describes one function literal passed as a task body to
// a structure operation.
type ClosureInfo struct {
	// Kind is the structure operation receiving the closure.
	Kind StructureKind
	// Call is the structure call expression.
	Call *ast.CallExpr
	// ArgIndex is the closure's position in Call.Args.
	ArgIndex int
	// InLoop reports whether the structure call sits inside a for or
	// range statement of its enclosing function, so the closure is
	// instantiated as a task once per iteration.
	InLoop bool
	// Replicated reports whether the closure body executes as more than
	// one task in a single dynamic pass over the call: ParallelFor and
	// ParallelRange bodies, and forking closures spawned inside loops.
	Replicated bool
	// Frame is the innermost function literal or declaration whose body
	// contains the structure call (nil when the call is at top level of
	// a FuncDecl — then FrameDecl is set).
	Frame *ast.FuncLit
	// FrameDecl is the enclosing function declaration when Frame is nil.
	FrameDecl *ast.FuncDecl
}

// IndexTaskClosures maps every task-body function literal in files to
// its structure-call context. Built once per package and shared by the
// analyzers that reason about closure parallelism.
func (f *Facts) IndexTaskClosures(files []*ast.File) map[*ast.FuncLit]*ClosureInfo {
	index := make(map[*ast.FuncLit]*ClosureInfo)
	for _, file := range files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind := f.Structure(call)
			if kind == KindNone {
				return true
			}
			inLoop, frame, frameDecl := callContext(stack[:len(stack)-1])
			for i, arg := range call.Args {
				lit, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok || !isClosureArg(f, kind, call, i) {
					continue
				}
				index[lit] = &ClosureInfo{
					Kind:       kind,
					Call:       call,
					ArgIndex:   i,
					InLoop:     inLoop,
					Replicated: kind == KindParallelFor || kind == KindParallelRange || (kind.Forks() && inLoop),
					Frame:      frame,
					FrameDecl:  frameDecl,
				}
			}
			return true
		})
	}
	return index
}

// isClosureArg reports whether argument i of a kind-classified call is
// a task body.
func isClosureArg(f *Facts, kind StructureKind, call *ast.CallExpr, i int) bool {
	switch kind {
	case KindSpawn, KindCilkSpawn, KindFinish, KindRun:
		return i == 0
	case KindParallel:
		return true
	case KindParallelFor, KindParallelRange:
		return i == len(call.Args)-1
	}
	return false
}

// callContext scans the ancestor stack of a call (outermost first,
// excluding the call itself) for the innermost enclosing function and
// any loop between that function and the call.
func callContext(stack []ast.Node) (inLoop bool, frame *ast.FuncLit, frameDecl *ast.FuncDecl) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			inLoop = true
		case *ast.FuncLit:
			return inLoop, n, nil
		case *ast.FuncDecl:
			return inLoop, nil, n
		}
	}
	return inLoop, nil, nil
}

// InlineReceiver reports whether the closure at ArgIndex of the given
// structure call runs inline on the call's receiver task (Finish
// bodies and the first function of Parallel), so a capture of the
// receiver variable aliases the closure's own task parameter.
func (c *ClosureInfo) InlineReceiver() bool {
	switch c.Kind {
	case KindFinish:
		return true
	case KindParallel:
		return c.ArgIndex == 0
	}
	return false
}
