// Package avdapi recognizes the avd instrumentation surface — tasks,
// sessions, instrumented variable handles, instrumented mutexes, and
// the task-structure operations — in type-checked syntax. It is the
// shared facts layer of the avdlint suite: every analyzer asks the same
// questions ("is this call a Spawn?", "is this a *Task?", "which
// session built this handle?") through one package so the suite agrees
// on what the instrumentation contract covers.
//
// Recognition is by package path and name rather than by object
// identity, so the analyzers work over the real module
// (github.com/taskpar/avd and its internal/sched runtime), over the
// analysistest corpus (which imports a dependency-free stub named
// "avd"), and over any future vendored copy.
package avdapi

import (
	"go/ast"
	"go/types"
	"strings"
)

// IsAVDPath reports whether path names the public avd package or the
// sched runtime that defines the instrumented primitives.
func IsAVDPath(path string) bool {
	switch path {
	case "avd", "sched", "github.com/taskpar/avd":
		return true
	}
	return strings.HasSuffix(path, "/avd") || strings.HasSuffix(path, "/internal/sched")
}

// StructureKind classifies the task-management operations that create
// or join parallelism — the calls that advance the DPST.
type StructureKind int

// Structure operations.
const (
	KindNone StructureKind = iota
	KindSpawn
	KindCilkSpawn
	KindFinish
	KindSync
	KindParallel
	KindRun
	KindParallelFor
	KindParallelRange
)

// String names the operation as written in source.
func (k StructureKind) String() string {
	switch k {
	case KindSpawn:
		return "Spawn"
	case KindCilkSpawn:
		return "CilkSpawn"
	case KindFinish:
		return "Finish"
	case KindSync:
		return "Sync"
	case KindParallel:
		return "Parallel"
	case KindRun:
		return "Run"
	case KindParallelFor:
		return "ParallelFor"
	case KindParallelRange:
		return "ParallelRange"
	default:
		return "none"
	}
}

// Forks reports whether the operation introduces logical parallelism
// between its closure and the spawning context (as opposed to running
// the closure inline, like Finish and Run do).
func (k StructureKind) Forks() bool {
	switch k {
	case KindSpawn, KindCilkSpawn, KindParallel, KindParallelFor, KindParallelRange:
		return true
	}
	return false
}

// Facts answers avd API questions about one type-checked package.
type Facts struct {
	// Pkg is the package under analysis.
	Pkg *types.Package
	// Info is its type information.
	Info *types.Info

	memo map[string]any
}

// NewFacts builds the facts layer for one package.
func NewFacts(pkg *types.Package, info *types.Info) *Facts {
	return &Facts{Pkg: pkg, Info: info, memo: make(map[string]any)}
}

// Memo caches an expensive derived structure on the facts layer so
// analyzers sharing one Facts (the whole suite, per package) also share
// the structure — the static MHP engine is built once and consumed by
// both staticavd and elision.
func (f *Facts) Memo(key string, build func() any) any {
	if f.memo == nil {
		f.memo = make(map[string]any)
	}
	if v, ok := f.memo[key]; ok {
		return v
	}
	v := build()
	f.memo[key] = v
	return v
}

// namedInAVD reports whether t (after stripping one pointer) is the
// named avd type with the given name, returning the named type.
func namedInAVD(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && IsAVDPath(obj.Pkg().Path())
}

// IsTaskPtr reports whether t is *avd.Task (or the sched original).
func IsTaskPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && namedInAVD(ptr.Elem(), "Task")
}

// IsSessionPtr reports whether t is *avd.Session.
func IsSessionPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && namedInAVD(ptr.Elem(), "Session")
}

// IsMutexPtr reports whether t is *avd.Mutex.
func IsMutexPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && namedInAVD(ptr.Elem(), "Mutex")
}

// IsObserver reports whether t is avd.Observer or *avd.Observer — the
// struct of live-event callbacks a session invokes from inside the
// analysis.
func IsObserver(t types.Type) bool {
	return namedInAVD(t, "Observer")
}

// HandleKind returns the instrumented-variable kind of t ("IntVar",
// "FloatVar", "IntArray", "FloatArray"), or "" when t is not a handle.
func HandleKind(t types.Type) string {
	for _, name := range [...]string{"IntVar", "FloatVar", "IntArray", "FloatArray"} {
		if namedInAVD(t, name) {
			return name
		}
	}
	return ""
}

// IsInstrumented reports whether t is any instrumented handle type
// (variable, array, or mutex) — values the checker already sees.
func IsInstrumented(t types.Type) bool {
	return HandleKind(t) != "" || IsMutexPtr(t) || IsSessionPtr(t) || IsTaskPtr(t)
}

// Callee resolves the called function or method of call, or nil.
func (f *Facts) Callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := f.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := f.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := f.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// avdFunc reports whether fn is declared in an avd package (directly or
// as a method of an avd type).
func avdFunc(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && IsAVDPath(fn.Pkg().Path())
}

// recvType returns the receiver type of fn, or nil for plain functions.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// Structure classifies call as a task-structure operation.
func (f *Facts) Structure(call *ast.CallExpr) StructureKind {
	fn := f.Callee(call)
	if !avdFunc(fn) {
		return KindNone
	}
	recv := recvType(fn)
	switch {
	case recv == nil:
		switch fn.Name() {
		case "ParallelFor":
			return KindParallelFor
		case "ParallelRange":
			return KindParallelRange
		}
	case IsTaskPtr(recv):
		switch fn.Name() {
		case "Spawn":
			return KindSpawn
		case "CilkSpawn":
			return KindCilkSpawn
		case "Finish":
			return KindFinish
		case "Sync":
			return KindSync
		case "Parallel":
			return KindParallel
		}
	case IsSessionPtr(recv):
		if fn.Name() == "Run" {
			return KindRun
		}
	}
	return KindNone
}

// TaskClosures returns the function-literal arguments of a structure
// call that receive their own *Task parameter (the task bodies).
func (f *Facts) TaskClosures(kind StructureKind, call *ast.CallExpr) []*ast.FuncLit {
	var lits []*ast.FuncLit
	add := func(e ast.Expr) {
		if lit, ok := ast.Unparen(e).(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
	}
	switch kind {
	case KindSpawn, KindCilkSpawn, KindFinish, KindRun:
		if len(call.Args) >= 1 {
			add(call.Args[0])
		}
	case KindParallel:
		for _, a := range call.Args {
			add(a)
		}
	case KindParallelFor, KindParallelRange:
		if n := len(call.Args); n >= 1 {
			add(call.Args[n-1])
		}
	}
	return lits
}

// TaskParam returns the *Task parameter object of a task closure, or
// nil when the literal has no named task parameter.
func (f *Facts) TaskParam(lit *ast.FuncLit) *types.Var {
	if lit.Type.Params == nil {
		return nil
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			obj, ok := f.Info.Defs[name].(*types.Var)
			if ok && IsTaskPtr(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// Access describes one instrumented operation: a variable access, a
// lock operation, or a handle/session constructor.
type Access struct {
	// Kind is the method name (Load, Store, Add, Lock, Unlock).
	Kind string
	// Recv is the receiver expression (the handle or mutex).
	Recv ast.Expr
	// Task is the task argument expression.
	Task ast.Expr
	// Write reports whether the operation includes a write (Store, Add).
	Write bool
	// Mutex reports a lock operation rather than a variable access.
	Mutex bool
}

// InstrumentedOp classifies call as an instrumented access or lock
// operation taking a task argument; ok is false otherwise.
func (f *Facts) InstrumentedOp(call *ast.CallExpr) (Access, bool) {
	fn := f.Callee(call)
	if !avdFunc(fn) || len(call.Args) < 1 {
		return Access{}, false
	}
	recv := recvType(fn)
	if recv == nil {
		return Access{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return Access{}, false
	}
	acc := Access{Kind: fn.Name(), Recv: sel.X, Task: call.Args[0]}
	switch {
	case HandleKind(recv) != "":
		switch fn.Name() {
		case "Load":
		case "Store", "Add":
			acc.Write = true
		default:
			return Access{}, false
		}
		return acc, true
	case IsMutexPtr(recv):
		switch fn.Name() {
		case "Lock", "Unlock":
			acc.Mutex = true
			return acc, true
		}
	}
	return Access{}, false
}

// SessionOp classifies call as a Session method of the given name,
// returning the receiver expression.
func (f *Facts) SessionOp(call *ast.CallExpr) (name string, recv ast.Expr, ok bool) {
	fn := f.Callee(call)
	if !avdFunc(fn) {
		return "", nil, false
	}
	rt := recvType(fn)
	if rt == nil || !IsSessionPtr(rt) {
		return "", nil, false
	}
	sel, sok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !sok {
		return "", nil, false
	}
	return fn.Name(), sel.X, true
}

// IsNewSession reports whether call constructs a session
// (avd.NewSession).
func (f *Facts) IsNewSession(call *ast.CallExpr) bool {
	fn := f.Callee(call)
	return avdFunc(fn) && recvType(fn) == nil && fn.Name() == "NewSession"
}

// ObjectOf resolves the variable object an expression names, looking
// through parentheses; nil for non-identifier expressions.
func (f *Facts) ObjectOf(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := f.Info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = f.Info.Defs[id].(*types.Var)
	}
	return v
}

// SuggestVar names the instrumented handle constructor matching a
// shared plain variable's type, or "" when no instrumented counterpart
// exists.
func SuggestVar(t types.Type) string {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		info := u.Info()
		switch {
		case info&types.IsInteger != 0:
			return "Session.NewIntVar"
		case info&types.IsFloat != 0:
			return "Session.NewFloatVar"
		}
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok {
			switch {
			case b.Info()&types.IsInteger != 0:
				return "Session.NewIntArray"
			case b.Info()&types.IsFloat != 0:
				return "Session.NewFloatArray"
			}
		}
	case *types.Array:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok {
			switch {
			case b.Info()&types.IsInteger != 0:
				return "Session.NewIntArray"
			case b.Info()&types.IsFloat != 0:
				return "Session.NewFloatArray"
			}
		}
	}
	return ""
}
