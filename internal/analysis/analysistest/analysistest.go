// Package analysistest runs an analyzer over a GOPATH-style testdata
// corpus and checks its diagnostics against // want "regexp"
// expectations, in the style of golang.org/x/tools/go/analysis/
// analysistest. A file with a sibling <name>.golden additionally has
// every suggested fix applied and the result compared against the
// golden content, so mechanical rewrites stay correct.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/taskpar/avd/internal/analysis"
	"github.com/taskpar/avd/internal/analysis/load"
)

// expectation is one // want regexp at a file:line.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each named package from testdata/src, applies the
// analyzer, and reports mismatches between its diagnostics and the
// corpus's // want comments through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	RunWithVersion(t, testdata, a, "", pkgs...)
}

// RunWithVersion is Run with an explicit declared language version
// ("go1.21"), for corpora exercising version-gated checks; the empty
// version means unknown/current.
func RunWithVersion(t *testing.T, testdata string, a *analysis.Analyzer, goVersion string, pkgs ...string) {
	t.Helper()
	l := load.NewGOPATH(testdata)
	for _, path := range pkgs {
		pkg, err := l.Load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		res, err := analysis.RunDetailed(l.Fset, pkg.Files, pkg.Types, pkg.Info,
			[]*analysis.Analyzer{a}, analysis.Options{GoVersion: goVersion})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		checkDiagnostics(t, l.Fset, pkg, res.Diags)
		checkGolden(t, l.Fset, pkg, res.Diags)
	}
}

// checkDiagnostics matches diagnostics against want expectations.
func checkDiagnostics(t *testing.T, fset *token.FileSet, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	expects, err := collectWants(fset, pkg)
	if err != nil {
		t.Error(err)
		return
	}
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		matched := false
		for _, e := range expects {
			if e.matched || e.file != posn.Filename || e.line != posn.Line {
				continue
			}
			if e.rx.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s] %s", posn, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", e.file, e.line, e.raw)
		}
	}
}

// collectWants parses the // want comments of every file in pkg.
func collectWants(fset *token.FileSet, pkg *load.Package) ([]*expectation, error) {
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				posn := fset.Position(c.Pos())
				rxs, err := parseWant(text[idx+len("want "):])
				if err != nil {
					return nil, fmt.Errorf("%s: %v", posn, err)
				}
				for _, raw := range rxs {
					rx, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", posn, raw, err)
					}
					expects = append(expects, &expectation{file: posn.Filename, line: posn.Line, rx: rx, raw: raw})
				}
			}
		}
	}
	return expects, nil
}

// parseWant extracts the sequence of quoted or backquoted regexps
// following a want marker.
func parseWant(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted want pattern")
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quoted want pattern")
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted want pattern %s: %v", s[:end+1], err)
			}
			out = append(out, unq)
			s = s[end+1:]
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want marker with no patterns")
	}
	return out, nil
}

// checkGolden applies suggested fixes per file and compares against
// <file>.golden where present.
func checkGolden(t *testing.T, fset *token.FileSet, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	edits := make(map[string][]analysis.TextEdit)
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, e := range fix.TextEdits {
				file := fset.Position(e.Pos).Filename
				edits[file] = append(edits[file], e)
			}
		}
	}
	for _, f := range pkg.Files {
		file := fset.Position(f.Pos()).Filename
		golden := file + ".golden"
		want, err := os.ReadFile(golden)
		if err != nil {
			if len(edits[file]) > 0 && !os.IsNotExist(err) {
				t.Errorf("reading %s: %v", golden, err)
			}
			continue
		}
		src, err := os.ReadFile(file)
		if err != nil {
			t.Errorf("reading %s: %v", file, err)
			continue
		}
		got := ApplyEdits(fset, src, edits[file])
		if string(got) != string(want) {
			t.Errorf("suggested fixes for %s do not match %s:\n-- got --\n%s\n-- want --\n%s",
				filepath.Base(file), filepath.Base(golden), got, want)
		}
	}
}

// ApplyEdits applies non-overlapping text edits to src, resolving
// positions through fset. It forwards to analysis.ApplyEdits, the same
// engine avd-lint -fix uses to rewrite files on disk.
func ApplyEdits(fset *token.FileSet, src []byte, edits []analysis.TextEdit) []byte {
	return analysis.ApplyEdits(fset, src, edits)
}
