// Package analysis is a self-contained static-analysis framework
// modeled on golang.org/x/tools/go/analysis, built only on the standard
// library so the repo stays dependency-free. It exists to host avdlint,
// the suite of analyzers that statically enforce the instrumentation
// contract of the avd API: the paper's detector is only as sound as the
// event stream it sees, and these analyzers catch — at compile time —
// the mistakes that would silently produce a wrong DPST or a checker
// blind spot (wrong-task captures, uninstrumented shared locals,
// ill-scoped critical sections, cross-session handles).
//
// The shapes mirror go/analysis deliberately (Analyzer, Pass,
// Diagnostic, SuggestedFix) so the suite can be ported to the upstream
// framework wholesale if the dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/taskpar/avd/internal/analysis/avdapi"
)

// Severity classifies a diagnostic. Warnings are contract violations
// that make the dynamic analysis wrong or incomplete; info diagnostics
// are advisory findings (e.g. provably elidable instrumentation) that
// never fail a lint run.
type Severity string

// Diagnostic severities.
const (
	SeverityWarning Severity = "warning"
	SeverityInfo    Severity = "info"
)

// Analyzer describes one static analysis of the suite.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and JSON output.
	Name string
	// Doc is the help text; the first line is the summary.
	Doc string
	// DefaultSeverity applies to diagnostics that do not set their own.
	DefaultSeverity Severity
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function. The Inspector and API facts are built once
// per package and shared by every analyzer in the suite, so the whole
// suite traverses each package a single time per layer.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps positions of Files.
	Fset *token.FileSet
	// Files is the package's syntax.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the type-checker's per-expression results.
	TypesInfo *types.Info
	// Inspector is the shared pre-built traversal of Files.
	Inspector *Inspector
	// API recognizes the avd instrumentation surface.
	API *avdapi.Facts
	// GoVersion is the package's declared language version ("go1.21");
	// empty when unknown, which analyzers must treat as current.
	GoVersion string

	report func(Diagnostic)
}

// Report emits a diagnostic, stamping the analyzer name and default
// severity.
func (p *Pass) Report(d Diagnostic) {
	if d.Analyzer == "" {
		d.Analyzer = p.Analyzer.Name
	}
	if d.Severity == "" {
		if p.Analyzer.DefaultSeverity != "" {
			d.Severity = p.Analyzer.DefaultSeverity
		} else {
			d.Severity = SeverityWarning
		}
	}
	p.report(d)
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos is the primary position; End optionally extends it.
	Pos, End token.Pos
	// Analyzer is the reporting analyzer (filled by Report).
	Analyzer string
	// Severity is the finding class (filled by Report when empty).
	Severity Severity
	// Message describes the finding.
	Message string
	// SuggestedFixes are mechanical rewrites that resolve the finding.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one alternative rewrite.
type SuggestedFix struct {
	// Message describes the rewrite.
	Message string
	// TextEdits are the edits; they must not overlap.
	TextEdits []TextEdit
}

// TextEdit replaces source in [Pos, End) with NewText.
type TextEdit struct {
	Pos, End token.Pos
	NewText  []byte
}

// Run applies every analyzer to one type-checked package and returns
// the diagnostics in source order. The Inspector and API facts are
// constructed once and shared. Diagnostics on a line carrying (or
// directly below) an //avdlint:ignore comment are suppressed — the
// escape hatch for code that misuses the API on purpose, such as tests
// of the runtime's own UsageError paths.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := RunDetailed(fset, files, pkg, info, analyzers, Options{})
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// Options configures a detailed run.
type Options struct {
	// GoVersion is the package's declared language version ("go1.21" or
	// "1.21"); empty means unknown/current.
	GoVersion string
}

// Result is the full outcome of a suite run: the surviving diagnostics
// plus the ones an //avdlint:ignore directive suppressed (kept so
// callers can count or audit suppressions — the differential gate reads
// proofs off suppressed advisory findings without un-silencing them).
type Result struct {
	// Diags are the reported diagnostics in source order.
	Diags []Diagnostic
	// Suppressed are the diagnostics dropped by ignore directives, in
	// source order.
	Suppressed []Diagnostic
}

// RunDetailed is Run with configuration and a full Result.
func RunDetailed(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, opts Options) (*Result, error) {
	insp := NewInspector(files)
	api := avdapi.NewFacts(pkg, info)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Inspector: insp,
			API:       api,
			GoVersion: opts.GoVersion,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	kept, suppressed := suppressIgnored(fset, files, diags)
	sortDiagnostics(kept)
	sortDiagnostics(suppressed)
	return &Result{Diags: kept, Suppressed: suppressed}, nil
}

// GoVersionBefore reports whether the declared language version v is
// known and strictly lower than major.minor. Both "go1.21" and "1.21"
// (with optional patch suffix) parse; an empty or malformed version is
// treated as current, so version-gated checks stay silent when the
// version is unknown.
func GoVersionBefore(v string, major, minor int) bool {
	v = strings.TrimPrefix(strings.TrimSpace(v), "go")
	if v == "" {
		return false
	}
	var maj, min int
	if _, err := fmt.Sscanf(v+".", "%d.%d.", &maj, &min); err != nil {
		return false
	}
	if maj != major {
		return maj < major
	}
	return min < minor
}

// ignoreDirective is the suppression marker: a comment containing it
// silences every diagnostic reported on its own line or on the line
// immediately following it.
const ignoreDirective = "avdlint:ignore"

// suppressIgnored partitions diagnostics into those kept and those
// covered by an ignore directive.
func suppressIgnored(fset *token.FileSet, files []*ast.File, diags []Diagnostic) (kept, suppressed []Diagnostic) {
	if len(diags) == 0 {
		return diags, nil
	}
	ignored := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, ignoreDirective) {
					continue
				}
				posn := fset.Position(c.Pos())
				lines := ignored[posn.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					ignored[posn.Filename] = lines
				}
				lines[posn.Line] = true
				lines[posn.Line+1] = true
			}
		}
	}
	if len(ignored) == 0 {
		return diags, nil
	}
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		if ignored[posn.Filename][posn.Line] {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}

// sortDiagnostics orders findings by position then analyzer name.
func sortDiagnostics(diags []Diagnostic) {
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && less(diags[j], diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}

func less(a, b Diagnostic) bool {
	if a.Pos != b.Pos {
		return a.Pos < b.Pos
	}
	return a.Analyzer < b.Analyzer
}
