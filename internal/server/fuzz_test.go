package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/taskpar/avd/internal/server"
)

// FuzzSubmitUpload drives arbitrary bytes through the full upload and
// validation path — MaxBytesReader, DecodeLimited, structural
// validation, admission — and checks the handler's contract: it never
// panics, answers only the documented statuses, and never admits a body
// that fails validation. Valid-looking inputs that do get admitted must
// then terminate (the worker must survive whatever the trace encodes).
func FuzzSubmitUpload(f *testing.F) {
	_, good := genTrace(f, 4)
	f.Add(good)
	f.Add([]byte(`{"tasks":1,"events":[]}`))
	f.Add([]byte(`{"tasks":-1,"events":[]}`))
	f.Add([]byte(`{"tasks":2000000000,"events":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add(good[:len(good)/2])

	svc := server.New(server.Config{
		Shards:       1,
		MaxBodyBytes: 1 << 16,
		MaxAttempts:  1,
	})
	mux := svc.Handler()
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/checkruns", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusAccepted:
			// Admitted: the run must reach a terminal state. Poll the
			// registry directly (no live server in fuzz mode).
			var v server.View
			if err := json.NewDecoder(rec.Body).Decode(&v); err != nil {
				t.Fatalf("202 with undecodable body: %v", err)
			}
			run, ok := svc.Get(v.ID)
			if !ok {
				t.Fatalf("admitted run %d not registered", v.ID)
			}
			deadline := time.Now().Add(10 * time.Second)
			for !run.Status().Terminal() {
				if time.Now().After(deadline) {
					t.Fatalf("admitted run %d stuck %s", v.ID, run.Status())
				}
				time.Sleep(time.Millisecond)
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// Documented refusals.
		default:
			t.Fatalf("undocumented status %d for %q", rec.Code, truncate(body))
		}
	})
}

func truncate(b []byte) []byte {
	if len(b) > 64 {
		return b[:64]
	}
	return b
}
