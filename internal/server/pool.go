package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	avd "github.com/taskpar/avd"
)

// crashError wraps a recovered worker panic: the transient failure
// class that the retry loop is allowed to re-attempt. Everything else a
// run can return (context interruption, permanent analysis errors) is
// not retried.
type crashError struct {
	val any
}

// Error implements error.
func (e *crashError) Error() string { return fmt.Sprintf("worker panic: %v", e.val) }

// worker is one shard's executor goroutine: it drains the shard queue
// run by run until the queue is closed by Shutdown.
func (s *Service) worker(shard int) {
	defer s.wg.Done()
	for run := range s.shards[shard] {
		s.metrics.queued.Add(-1)
		s.metrics.perShardQueued[shard].Add(-1)
		s.execute(run)
	}
}

// execute moves one run through RUNNING to a terminal state, retrying
// transient worker crashes with jittered backoff up to the attempts
// cap. A panic anywhere in the analysis is contained to this run: the
// worker goroutine itself never dies.
func (s *Service) execute(run *Run) {
	run.mu.Lock()
	if run.status != StatusSubmitted {
		// Canceled while queued; nothing to do.
		run.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), run.opts.Deadline)
	run.status = StatusRunning
	run.started = time.Now()
	run.cancel = cancel
	s.metrics.queueWait.Observe(run.started.Sub(run.created).Nanoseconds())
	run.mu.Unlock()
	defer cancel()
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)
	// Periodic live-analysis frames for stream subscribers, for the
	// run's whole execution (all attempts); the deferred cancel stops it.
	go s.snapshotLoop(ctx, run)

	for attempt := 1; ; attempt++ {
		run.mu.Lock()
		run.attempts = attempt
		run.mu.Unlock()
		if attempt > 1 {
			// The previous attempt crashed after possibly streaming
			// findings; tell subscribers to discard them before the
			// re-execution streams its own.
			run.hub.publish(StreamEvent{Kind: EventReset})
		}
		run.hub.publish(StreamEvent{Kind: EventState, Status: StatusRunning, Attempt: attempt})
		rep, err := s.attempt(ctx, run, attempt)
		var crash *crashError
		switch {
		case err == nil:
			s.finish(run, StatusDone, rep, "", false)
			return
		case errors.Is(err, avd.ErrCanceled):
			s.finishErr(run, StatusCanceled, rep, CodePartial, "canceled by client or drain", true)
			return
		case errors.Is(err, avd.ErrDeadline):
			s.finishErr(run, StatusFailed, rep, CodeDeadline, fmt.Sprintf("deadline %v exceeded", run.opts.Deadline), true)
			return
		case !errors.As(err, &crash):
			// Permanent analysis error: deterministic, retry is useless.
			s.finishErr(run, StatusFailed, rep, CodeWorkerCrash, err.Error(), false)
			return
		}
		s.metrics.workerPanics.Add(1)
		if attempt >= s.cfg.MaxAttempts {
			// The final attempt crashed: whatever it streamed is not in
			// the (empty) terminal report. Reset before the terminal
			// findings so a reduced stream matches /report.
			run.hub.publish(StreamEvent{Kind: EventReset})
			s.finishErr(run, StatusFailed, avd.Report{}, CodeWorkerCrash,
				fmt.Sprintf("worker crashed on all %d attempts: %v", attempt, err), false)
			return
		}
		s.metrics.retries.Add(1)
		select {
		case <-time.After(s.backoff(run.id, attempt)):
		case <-ctx.Done():
			// Cancel or deadline during backoff: the next attempt's
			// entry poll resolves it to the right terminal state.
		}
	}
}

// attempt runs one analysis of the run's trace, converting any panic —
// the checker's own or a chaos-injected worker crash — into a
// *crashError so the caller can classify it as transient.
func (s *Service) attempt(ctx context.Context, run *Run, attempt int) (rep avd.Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &crashError{val: p}
		}
	}()
	// A context that expired between attempts (cancel or deadline during
	// backoff) resolves here, before any chaos draw, so the run reaches
	// the terminal state its context dictates instead of burning the
	// remaining attempts.
	if cerr := ctx.Err(); cerr != nil {
		if errors.Is(cerr, context.DeadlineExceeded) {
			return rep, avd.ErrDeadline
		}
		return rep, avd.ErrCanceled
	}
	if s.plane.CrashWorker(run.id, attempt) {
		panic(fmt.Sprintf("chaos: injected worker crash (run %d, attempt %d)", run.id, attempt))
	}
	kind, _ := run.opts.checkerKind() // validated at admission
	rp, err := avd.NewReplayer(avd.Options{
		Checker:          kind,
		StrictLockChecks: run.opts.Strict,
		MemoryBudget:     s.cfg.MemoryBudget,
		MaxViolations:    s.cfg.MaxViolations,
		// Stream violations as the checker admits them. hub.publish is
		// an append plus non-blocking wakes, satisfying the observer
		// contract (cheap, never blocks, no session re-entry); a slow
		// stream consumer can never slow the analysis down.
		Observer: &avd.Observer{
			OnViolation: func(v avd.Violation) {
				run.hub.publish(StreamEvent{Kind: EventFinding, Finding: streamFinding(v)})
			},
		},
	})
	if err != nil {
		return rep, err
	}
	run.mu.Lock()
	run.replayer = rp
	run.mu.Unlock()
	defer func() {
		run.mu.Lock()
		run.replayer = nil
		run.mu.Unlock()
	}()
	return rp.Replay(ctx, run.tr)
}

// finish records a run's terminal state, findings, and report, and
// counts it in the metrics.
func (s *Service) finish(run *Run, st Status, rep avd.Report, errMsg string, partial bool) {
	s.finishWith(run, st, rep, errMsg, buildResults(rep, partial, run.lint))
}

// finishErr is finish for interrupted and failed runs: the terminal
// cause becomes the leading finding (ERROR for failures, WARN for
// cancellation), ahead of whatever the analyzed prefix found.
func (s *Service) finishErr(run *Run, st Status, rep avd.Report, code, msg string, partial bool) {
	sev := ResultError
	if st == StatusCanceled {
		sev = ResultWarn
	}
	results := append([]Result{{Status: sev, Code: code, Title: msg}}, buildResults(rep, partial, run.lint)...)
	s.finishWith(run, st, rep, msg, results)
}

func (s *Service) finishWith(run *Run, st Status, rep avd.Report, errMsg string, results []Result) {
	run.mu.Lock()
	run.status = st
	run.finished = time.Now()
	run.report = rep
	run.errMsg = errMsg
	run.results = results
	s.metrics.runDuration.Observe(run.finished.Sub(run.started).Nanoseconds())
	run.mu.Unlock()
	switch st {
	case StatusDone:
		// Only a fully completed analysis is memoized: failed and
		// canceled runs describe an interruption, not the trace.
		if run.cacheOK {
			s.cache.put(run.ckey, rep, results)
		}
		s.metrics.done.Add(1)
	case StatusFailed:
		s.metrics.failed.Add(1)
	case StatusCanceled:
		s.metrics.canceled.Add(1)
	}
	// Fold the executed analysis into the server-wide aggregates. Every
	// finishWith caller ran the analysis (cache hits terminate in Admit),
	// so the aggregates mirror exactly what the replayers measured.
	s.metrics.foldReport(rep)
	// Complete the stream: non-violation findings (violations already
	// streamed live from the checker's observer), the terminal
	// transition, then closure so subscribers drain and end.
	publishResults(run.hub, results, true)
	run.hub.publish(StreamEvent{Kind: EventState, Status: st})
	run.hub.close()
	s.notifyFindings(run, results)
}

// foldReport accumulates one executed run's terminal report into the
// server-wide analysis aggregates served on /metrics.
func (m *Metrics) foldReport(rep avd.Report) {
	m.anViolations.Add(rep.ViolationCount)
	m.anDrops.Add(rep.Drops.Locations + rep.Drops.Labels + rep.Drops.LCAEntries + rep.Drops.Violations)
	m.anTaskPanics.Add(rep.PanicCount)
	m.anLocations.Add(rep.Stats.Locations)
	m.anFilterHits.Add(rep.Stats.FilterHits)
	m.anFilterMisses.Add(rep.Stats.FilterMisses)
	m.anBatchFlushes.Add(rep.Stats.BatchFlushes)
	m.anBatchedAccesses.Add(rep.Stats.BatchedAccesses)
	m.anWindowElisions.Add(rep.Stats.WindowElisions)
}

// backoff computes the jittered exponential backoff before the next
// attempt: base<<(attempt-1) capped at one second, plus a deterministic
// jitter in [0, base) derived from (run, attempt) so tests are
// reproducible and a thundering herd of retries decorrelates.
func (s *Service) backoff(run int64, attempt int) time.Duration {
	base := s.cfg.RetryBackoff
	d := base << uint(attempt-1)
	if d > time.Second {
		d = time.Second
	}
	h := mix64(uint64(run)<<8 ^ uint64(attempt))
	return d + time.Duration(h%uint64(base))
}

// mix64 is the splitmix64 finalizer (the same full-avalanche hash the
// chaos plane uses for its decision streams).
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Shutdown gracefully drains the service: admission stops immediately
// (new uploads get 503 + Retry-After), the shard queues are closed, and
// queued plus in-flight runs are given until ctx's deadline to finish.
// When the deadline passes, every remaining run is canceled — queued
// runs turn CANCELED directly, running ones through their replay
// context — and Shutdown still waits for the workers to unwind (prompt,
// because the replay polls its context every few thousand events). On
// return no run is left SUBMITTED or RUNNING.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, ch := range s.shards {
			close(ch)
		}
	}
	s.mu.Unlock()
	s.draining.Store(true)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stopWebhook()
		return nil
	case <-ctx.Done():
	}
	// Drain deadline passed: cancel everything still live.
	for _, r := range s.Runs() {
		r.mu.Lock()
		switch r.status {
		case StatusSubmitted:
			r.canceled = true
			r.status = StatusCanceled
			r.finished = time.Now()
			r.results = []Result{{Status: ResultWarn, Code: CodePartial, Title: "canceled by drain deadline"}}
			s.metrics.canceled.Add(1)
			publishResults(r.hub, r.results, false)
			r.hub.publish(StreamEvent{Kind: EventState, Status: StatusCanceled})
			r.hub.close()
		case StatusRunning:
			if r.cancel != nil {
				r.cancel()
			}
		}
		r.mu.Unlock()
	}
	<-done
	s.stopWebhook()
	return ctx.Err()
}

// Draining reports whether the service has begun shutting down.
func (s *Service) Draining() bool { return s.draining.Load() }
