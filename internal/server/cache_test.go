package server_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/taskpar/avd/internal/server"
)

// reportOf fetches a terminal run's canonical text report.
func reportOf(t *testing.T, ts *httptest.Server, id int64) string {
	t.Helper()
	code, body := getBody(t, fmt.Sprintf("%s/v1/checkruns/%d/report", ts.URL, id))
	if code != http.StatusOK {
		t.Fatalf("report for run %d: status %d", id, code)
	}
	return body
}

// TestReportCacheHitServesIdenticalReport: re-submitting a
// byte-identical trace with the same options completes instantly as
// DONE — no queueing, no re-analysis — and serves the byte-identical
// /report and findings of the original run.
func TestReportCacheHitServesIdenticalReport(t *testing.T) {
	_, body := genTrace(t, 4)
	svc, ts := testServer(t, server.Config{})

	v1, resp := submit(t, ts, body, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: status %d", resp.StatusCode)
	}
	first := poll(t, ts, v1.ID, 10*time.Second)
	if first.Status != server.StatusDone {
		t.Fatalf("run 1 finished %s", first.Status)
	}

	v2, resp := submit(t, ts, body, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: status %d", resp.StatusCode)
	}
	// The hit is resolved at admission: the submit response itself is
	// already terminal.
	if v2.Status != server.StatusDone {
		t.Fatalf("cache-hit run admitted as %s, want DONE", v2.Status)
	}
	if v2.Violations != first.Violations {
		t.Fatalf("cache-hit run reports %d violations, original %d", v2.Violations, first.Violations)
	}
	if got, want := reportOf(t, ts, v2.ID), reportOf(t, ts, v1.ID); got != want {
		t.Fatalf("cached report differs:\n--- cached ---\n%s--- original ---\n%s", got, want)
	}

	m := svc.Metrics()
	if m.ReportCacheHits != 1 || m.ReportCacheMisses != 1 || m.ReportCacheEntries != 1 {
		t.Fatalf("cache gauges: hits=%d misses=%d entries=%d, want 1/1/1",
			m.ReportCacheHits, m.ReportCacheMisses, m.ReportCacheEntries)
	}
	if m.Done != 2 || m.Admitted != 2 {
		t.Fatalf("lifecycle accounting: %+v", m)
	}
}

// TestReportCacheKeyedByOptions: the same trace under different
// analysis options is a different analysis — strict mode and a
// different checker must both miss.
func TestReportCacheKeyedByOptions(t *testing.T) {
	_, body := genTrace(t, 4)
	svc, ts := testServer(t, server.Config{})

	v1, _ := submit(t, ts, body, "")
	poll(t, ts, v1.ID, 10*time.Second)

	for _, query := range []string{"?strict=true", "?checker=velodrome"} {
		v, resp := submit(t, ts, body, query)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: status %d", query, resp.StatusCode)
		}
		if v.Status == server.StatusDone {
			t.Fatalf("submit %s hit the cache of a different analysis", query)
		}
		poll(t, ts, v.ID, 10*time.Second)
	}
	// The explicit default checker name aliases the implicit one.
	v, _ := submit(t, ts, body, "?checker=optimized")
	if v.Status != server.StatusDone {
		t.Fatalf("explicit default checker missed the cache (status %s)", v.Status)
	}
	if m := svc.Metrics(); m.ReportCacheHits != 1 || m.ReportCacheEntries != 3 {
		t.Fatalf("cache gauges: hits=%d entries=%d, want 1/3", m.ReportCacheHits, m.ReportCacheEntries)
	}
}

// TestReportCacheSurvivesRegistryEviction: the cache is independent of
// the run registry, so a report stays servable for re-submissions even
// after its original run was evicted to admit new work.
func TestReportCacheSurvivesRegistryEviction(t *testing.T) {
	_, bodyA := genTrace(t, 4)
	_, bodyB := genTrace(t, 5)
	svc, ts := testServer(t, server.Config{MaxRuns: 1})

	vA, _ := submit(t, ts, bodyA, "")
	poll(t, ts, vA.ID, 10*time.Second)
	reportA := reportOf(t, ts, vA.ID)

	// Admitting B evicts A's terminal run from the one-slot registry.
	vB, _ := submit(t, ts, bodyB, "")
	poll(t, ts, vB.ID, 10*time.Second)
	if _, ok := svc.Get(vA.ID); ok {
		t.Fatalf("run A still registered in a one-slot registry")
	}

	// Re-submitting A still hits the cache and serves the same bytes.
	vA2, _ := submit(t, ts, bodyA, "")
	if vA2.Status != server.StatusDone {
		t.Fatalf("post-eviction resubmit admitted as %s, want DONE", vA2.Status)
	}
	if got := reportOf(t, ts, vA2.ID); got != reportA {
		t.Fatalf("post-eviction cached report differs from the original")
	}
	if m := svc.Metrics(); m.ReportCacheHits != 1 {
		t.Fatalf("cache hits %d, want 1", m.ReportCacheHits)
	}
}

// TestReportCacheFIFOBound: the cache itself is bounded; inserting past
// capacity evicts the oldest entry, whose re-submission then runs
// again.
func TestReportCacheFIFOBound(t *testing.T) {
	_, bodyA := genTrace(t, 4)
	_, bodyB := genTrace(t, 5)
	svc, ts := testServer(t, server.Config{ReportCacheSize: 1})

	vA, _ := submit(t, ts, bodyA, "")
	poll(t, ts, vA.ID, 10*time.Second)
	vB, _ := submit(t, ts, bodyB, "")
	poll(t, ts, vB.ID, 10*time.Second) // evicts A's entry

	vA2, _ := submit(t, ts, bodyA, "")
	if vA2.Status == server.StatusDone {
		t.Fatalf("evicted cache entry still hit")
	}
	if got := poll(t, ts, vA2.ID, 10*time.Second); got.Status != server.StatusDone {
		t.Fatalf("re-run after cache eviction finished %s", got.Status)
	}
	m := svc.Metrics()
	if m.ReportCacheEntries != 1 {
		t.Fatalf("cache holds %d entries, bound is 1", m.ReportCacheEntries)
	}
	if m.ReportCacheHits != 0 || m.ReportCacheMisses != 3 {
		t.Fatalf("cache gauges: hits=%d misses=%d, want 0/3", m.ReportCacheHits, m.ReportCacheMisses)
	}
}

// TestReportCacheDisabled: a negative size turns the cache off —
// identical re-submissions always execute and the gauges stay zero.
func TestReportCacheDisabled(t *testing.T) {
	_, body := genTrace(t, 4)
	svc, ts := testServer(t, server.Config{ReportCacheSize: -1})

	for i := 0; i < 2; i++ {
		v, _ := submit(t, ts, body, "")
		if v.Status == server.StatusDone {
			t.Fatalf("submit %d completed at admission with the cache disabled", i)
		}
		poll(t, ts, v.ID, 10*time.Second)
	}
	m := svc.Metrics()
	if m.ReportCacheHits != 0 || m.ReportCacheMisses != 0 || m.ReportCacheEntries != 0 {
		t.Fatalf("disabled cache moved its gauges: %+v", m)
	}
}
