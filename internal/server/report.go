package server

import (
	"fmt"
	"io"

	avd "github.com/taskpar/avd"
)

// RenderReport writes the canonical text violation report of a Report:
// one line per distinct violation in the reporter's deterministic
// order. Offline replay and the service's report endpoint both render
// through this function, so for the same trace and options the two are
// byte-identical — the differential anchor of the serverd test suite
// and CI smoke job.
func RenderReport(w io.Writer, rep avd.Report) {
	for _, v := range rep.Violations {
		fmt.Fprintln(w, v)
	}
}
