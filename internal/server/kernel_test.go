package server_test

import (
	"bytes"
	"fmt"
	"net/http"
	"testing"
	"time"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/bench"
	"github.com/taskpar/avd/internal/harness"
	"github.com/taskpar/avd/internal/server"
)

// TestKernelTraceThroughService pushes a realistic payload — a recorded
// benchmark-kernel run, thousands of events with parallel-for structure
// — through the full service path and holds the acceptance anchor: the
// served report is byte-identical to offline replay of the same trace.
func TestKernelTraceThroughService(t *testing.T) {
	k, err := bench.ByName("sort")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := harness.RecordKernelTrace(k, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}

	_, ts := testServer(t, server.Config{})
	v, resp := submit(t, ts, buf.Bytes(), "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	final := poll(t, ts, v.ID, 30*time.Second)
	if final.Status != server.StatusDone {
		t.Fatalf("kernel run finished %s (err %q)", final.Status, final.Error)
	}

	_, got := getBody(t, fmt.Sprintf("%s/v1/checkruns/%d/report", ts.URL, v.ID))
	rep, err := avd.ReplayTrace(tr, avd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	server.RenderReport(&want, rep)
	if got != want.String() {
		t.Fatalf("kernel trace: server report differs from offline replay")
	}
}
