package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	avd "github.com/taskpar/avd"
)

// Stream event kinds on the per-run SSE endpoint.
const (
	// EventState announces a lifecycle transition (and, for RUNNING, the
	// attempt number).
	EventState = "state"
	// EventFinding carries one finding: violations stream live while the
	// run executes, the remaining findings (saturation, interruption,
	// success) arrive with the terminal transition.
	EventFinding = "finding"
	// EventSnapshot is a periodic live-analysis frame while the run
	// executes. Snapshot frames are ephemeral: slow subscribers miss
	// frames rather than delay anyone, and reducing the stream ignores
	// them.
	EventSnapshot = "snapshot"
	// EventReset invalidates previously streamed findings: the attempt
	// that produced them crashed and the run is being re-executed (or
	// failed for good). Reducers clear their accumulated findings.
	EventReset = "reset"
)

// StreamFinding is the payload of a finding event: the finding itself
// plus, for violations, the triple identity the canonical report is
// deduplicated and ordered by. Carrying the identity on the wire is
// what lets a consumer reduce the live stream to the exact bytes of
// GET /report without re-running the analysis.
type StreamFinding struct {
	Result
	Loc             int64 `json:"loc,omitempty"`
	PatternStep     int64 `json:"pattern_step,omitempty"`
	InterleaverStep int64 `json:"interleaver_step,omitempty"`
	// Pattern is the triple kind ("R-W-R"); the order tiebreaker.
	Pattern string `json:"pattern,omitempty"`
}

// StreamEvent is one event of a run's live stream. Exactly one of the
// payload fields is set, selected by Kind.
type StreamEvent struct {
	Kind string `json:"kind"`
	// State payload.
	Status  Status `json:"status,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	// Finding payload.
	Finding *StreamFinding `json:"finding,omitempty"`
	// Snapshot payload.
	Live *liveStats `json:"live,omitempty"`
}

// streamSub is one subscriber's mailbox: wake signals durable-log
// growth or closure, snap carries droppable snapshot frames.
type streamSub struct {
	wake chan struct{}
	snap chan StreamEvent
}

// notify is a non-blocking wake signal.
func (s *streamSub) notify() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// streamHub is the bounded per-run broadcast plane. Durable events
// (state transitions, findings, resets) append to an in-memory log that
// subscribers drain at their own pace by cursor — the publisher (the
// checker's observer callback, the lifecycle code) never blocks and
// never waits for a subscriber. The log is naturally bounded: findings
// are capped by the reporter's retention and MaxViolations, state
// transitions by the attempts cap. Snapshot frames bypass the log
// through a one-deep droppable mailbox per subscriber: a slow consumer
// loses frames (counted in droppedFrames), never delays the run.
type streamHub struct {
	mu     sync.Mutex
	log    []StreamEvent
	subs   map[*streamSub]struct{}
	closed bool

	// droppedFrames and subscribers alias the service-level metrics so
	// every hub folds into /metrics without holding a Service reference.
	droppedFrames *atomic.Int64
	subscribers   interface{ Add(int64) int64 }
}

func newStreamHub(dropped *atomic.Int64, subscribers interface{ Add(int64) int64 }) *streamHub {
	return &streamHub{
		subs:          make(map[*streamSub]struct{}),
		droppedFrames: dropped,
		subscribers:   subscribers,
	}
}

// publish appends one durable event and wakes subscribers. Safe to call
// with a Run's mutex held (the hub lock is a leaf).
func (h *streamHub) publish(ev StreamEvent) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.log = append(h.log, ev)
	for sub := range h.subs {
		sub.notify()
	}
	h.mu.Unlock()
}

// publishSnapshot offers an ephemeral frame to every current
// subscriber, dropping it wherever the previous frame is still unread.
func (h *streamHub) publishSnapshot(ev StreamEvent) {
	h.mu.Lock()
	for sub := range h.subs {
		select {
		case sub.snap <- ev:
		default:
			if h.droppedFrames != nil {
				h.droppedFrames.Add(1)
			}
		}
	}
	h.mu.Unlock()
}

// close marks the stream complete (the terminal state event must
// already be published); subscribers drain the log and end.
func (h *streamHub) close() {
	h.mu.Lock()
	h.closed = true
	for sub := range h.subs {
		sub.notify()
	}
	h.mu.Unlock()
}

// hasSubscribers reports whether anyone is listening, so the snapshot
// ticker can idle when nobody is.
func (h *streamHub) hasSubscribers() bool {
	h.mu.Lock()
	n := len(h.subs)
	h.mu.Unlock()
	return n > 0
}

// subscribe registers a mailbox; the caller must unsubscribe.
func (h *streamHub) subscribe() *streamSub {
	sub := &streamSub{wake: make(chan struct{}, 1), snap: make(chan StreamEvent, 1)}
	h.mu.Lock()
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	if h.subscribers != nil {
		h.subscribers.Add(1)
	}
	return sub
}

func (h *streamHub) unsubscribe(sub *streamSub) {
	h.mu.Lock()
	delete(h.subs, sub)
	h.mu.Unlock()
	if h.subscribers != nil {
		h.subscribers.Add(-1)
	}
}

// next returns the durable event at cursor if available, and whether
// the stream is complete (closed with the log fully consumed).
func (h *streamHub) next(cursor int) (ev StreamEvent, ok, done bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if cursor < len(h.log) {
		return h.log[cursor], true, false
	}
	return StreamEvent{}, false, h.closed
}

// streamFinding converts a live violation into its stream payload.
func streamFinding(v avd.Violation) *StreamFinding {
	f := &StreamFinding{
		Result: Result{
			Status: ResultError,
			Code:   CodeViolation,
			Title:  v.String(),
		},
		Loc:             int64(v.Loc),
		PatternStep:     int64(v.PatternStep),
		InterleaverStep: int64(v.InterleaverStep),
		Pattern:         v.Kind(),
	}
	if v.Prov != nil {
		f.Content = v.Explain()
	}
	return f
}

// publishResults publishes findings of a terminal run. When
// skipViolations is set the violation findings are omitted — they
// already streamed live from the checker while the run executed.
func publishResults(h *streamHub, results []Result, skipViolations bool) {
	for _, res := range results {
		if skipViolations && res.Code == CodeViolation {
			continue
		}
		res := res
		h.publish(StreamEvent{Kind: EventFinding, Finding: &StreamFinding{Result: res}})
	}
}

// publishReportViolations publishes the violations of a completed
// report with their triple identity — the cache-hit admission path,
// where no live stream ever ran.
func publishReportViolations(h *streamHub, rep avd.Report) {
	for _, v := range rep.Violations {
		h.publish(StreamEvent{Kind: EventFinding, Finding: streamFinding(v)})
	}
}

// handleEvents serves GET /v1/checkruns/{id}/events: the run's live
// event stream as server-sent events. Durable events (state, finding,
// reset) carry their log index as the SSE id; snapshot frames are
// unnumbered. The stream ends (EOF) once the run is terminal and the
// log is drained, so consuming it to completion is bounded.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	run := s.pathRun(w, r)
	if run == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	hub := run.hub
	sub := hub.subscribe()
	defer hub.unsubscribe(sub)
	cursor := 0
	for {
		ev, ok, done := hub.next(cursor)
		if ok {
			if err := writeSSE(w, ev.Kind, cursor, ev); err != nil {
				return
			}
			cursor++
			fl.Flush()
			continue
		}
		if done {
			return
		}
		select {
		case <-sub.wake:
		case snap := <-sub.snap:
			if err := writeSSE(w, snap.Kind, -1, snap); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE frames one event; id < 0 omits the id field (ephemeral
// frames are not part of the durable sequence).
func writeSSE(w io.Writer, event string, id int, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	if id >= 0 {
		_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", event, id, data)
	} else {
		_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	}
	return err
}

// DecodeSSE reads a server-sent-event stream, invoking fn for every
// event with its name and data payload. It returns on EOF or the first
// fn error.
func DecodeSSE(r io.Reader, fn func(event string, data []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	var event string
	var data bytes.Buffer
	flush := func() error {
		if event == "" && data.Len() == 0 {
			return nil
		}
		err := fn(event, data.Bytes())
		event = ""
		data.Reset()
		return err
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}

// ReduceStream folds a complete SSE event stream back into the
// canonical text report of the run: violation findings are
// deduplicated by triple identity and ordered exactly as the reporter
// orders them (location, pattern step, interleaver step, kind), reset
// events discard findings of crashed attempts, and everything else
// (snapshots, state transitions, non-violation findings) is ignored.
// For a terminal run the result is byte-identical to GET /report —
// the CI-enforced equivalence that makes the live stream trustworthy.
// (Exactness holds while the run's distinct violations fit the
// reporter's retention limit, 65536 by default; beyond it the report
// truncates and the stream does not.)
func ReduceStream(r io.Reader) ([]byte, error) {
	type key struct {
		loc, pat, inter int64
		kind            string
	}
	type entry struct {
		key   key
		title string
	}
	var entries []entry
	seen := make(map[key]struct{})
	err := DecodeSSE(r, func(event string, data []byte) error {
		switch event {
		case EventReset:
			entries = entries[:0]
			seen = make(map[key]struct{})
		case EventFinding:
			var ev StreamEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				return fmt.Errorf("bad finding payload: %w", err)
			}
			f := ev.Finding
			if f == nil || f.Code != CodeViolation || f.Pattern == "" {
				return nil
			}
			k := key{f.Loc, f.PatternStep, f.InterleaverStep, f.Pattern}
			if _, dup := seen[k]; dup {
				return nil
			}
			seen[k] = struct{}{}
			entries = append(entries, entry{key: k, title: f.Title})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].key, entries[j].key
		if a.loc != b.loc {
			return a.loc < b.loc
		}
		if a.pat != b.pat {
			return a.pat < b.pat
		}
		if a.inter != b.inter {
			return a.inter < b.inter
		}
		return a.kind < b.kind
	})
	var buf bytes.Buffer
	for _, e := range entries {
		fmt.Fprintln(&buf, e.title)
	}
	return buf.Bytes(), nil
}

// snapshotLoop publishes periodic live-analysis frames for a running
// run until ctx is done. Frames are only generated while someone is
// subscribed — an unwatched run pays nothing beyond the ticker.
func (s *Service) snapshotLoop(ctx interface{ Done() <-chan struct{} }, run *Run) {
	interval := s.cfg.SnapshotInterval
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if !run.hub.hasSubscribers() {
				continue
			}
			run.mu.Lock()
			rp := run.replayer
			run.mu.Unlock()
			if rp == nil {
				continue
			}
			snap := rp.Snapshot()
			run.hub.publishSnapshot(StreamEvent{Kind: EventSnapshot, Live: newLiveStats(snap)})
		}
	}
}
