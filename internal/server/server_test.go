package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/chaos"
	"github.com/taskpar/avd/internal/server"
	"github.com/taskpar/avd/internal/sptest"
	"github.com/taskpar/avd/internal/trace"
)

// chaosAllCrash configures the chaos plane so every worker attempt
// crashes: the deterministic way to keep a run in the retry loop.
func chaosAllCrash() chaos.Config {
	return chaos.Config{Seed: 1, WorkerCrashProb: 1}
}

// genTrace generates the deterministic random trace of one seed (seed 4
// is known to contain violations; the CI obs-smoke job relies on it
// too) and returns it with its encoding.
func genTrace(t testing.TB, seed int64) (*trace.Trace, []byte) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	p := sptest.Random(r, sptest.GenConfig{
		MaxItems: 4, MaxDepth: 3, MaxSteps: 12,
		Locations: 3, MaxAccess: 4, Locks: 1, LockProb: 0.3,
	})
	tr, err := trace.FromProgram(p, r)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return tr, buf.Bytes()
}

// testServer starts a service plus HTTP front end and arranges cleanup:
// the service is drained (generously) and the listener closed.
func testServer(t *testing.T, cfg server.Config) (*server.Service, *httptest.Server) {
	t.Helper()
	svc := server.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
		ts.Close()
	})
	return svc, ts
}

// submit POSTs body to the submit endpoint and decodes the response.
func submit(t *testing.T, ts *httptest.Server, body []byte, query string) (server.View, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/checkruns"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var v server.View
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("submit decode: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return v, resp
}

// poll fetches the run until it reaches a terminal state (or the
// timeout passes).
func poll(t *testing.T, ts *httptest.Server, id int64, timeout time.Duration) server.View {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/checkruns/%d", ts.URL, id))
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		var v server.View
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("poll decode: %v", err)
		}
		if v.Status.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %d not terminal after %v (status %s)", id, timeout, v.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// getBody fetches a URL and returns status and body.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("get %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// TestLifecycleDoneMatchesOffline is the acceptance anchor: a trace
// checked through the service must produce a byte-identical violation
// report to offline ReplayTrace with the same options, and its findings
// must carry ERROR severity with Explain() provenance.
func TestLifecycleDoneMatchesOffline(t *testing.T) {
	tr, body := genTrace(t, 4)
	_, ts := testServer(t, server.Config{})

	v, resp := submit(t, ts, body, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if v.Status != server.StatusSubmitted && v.Status != server.StatusRunning {
		t.Fatalf("fresh run status %s", v.Status)
	}
	final := poll(t, ts, v.ID, 10*time.Second)
	if final.Status != server.StatusDone {
		t.Fatalf("run finished %s (err %q), want DONE", final.Status, final.Error)
	}
	if final.Violations == 0 {
		t.Fatalf("seed-4 trace reported no violations")
	}

	// Findings: every violation is an ERROR with provenance content.
	nErr := 0
	for _, res := range final.Results {
		if res.Code == server.CodeViolation {
			nErr++
			if res.Status != server.ResultError {
				t.Fatalf("violation finding has severity %s", res.Status)
			}
			if !strings.Contains(res.Content, "pattern") {
				t.Fatalf("violation finding lacks Explain provenance: %q", res.Content)
			}
			if server.ResultWarn.LessThan(res.Status) {
				t.Fatalf("severity order broken: ERROR should be LessThan WARN")
			}
		}
	}
	if int64(nErr) != final.Violations {
		t.Fatalf("%d violation findings, view says %d", nErr, final.Violations)
	}

	// The canonical text report must be byte-identical to offline replay.
	code, got := getBody(t, fmt.Sprintf("%s/v1/checkruns/%d/report", ts.URL, v.ID))
	if code != http.StatusOK {
		t.Fatalf("report status %d", code)
	}
	rep, err := avd.ReplayTrace(tr, avd.Options{})
	if err != nil {
		t.Fatalf("offline replay: %v", err)
	}
	var want bytes.Buffer
	server.RenderReport(&want, rep)
	if got != want.String() {
		t.Fatalf("server report differs from offline replay:\n--- server ---\n%s--- offline ---\n%s", got, want.String())
	}
}

// TestSubmitRejectsBadUploads covers the untrusted-input surface:
// malformed, truncated, and oversized bodies, and bad options, all fail
// cleanly with 4xx — never a panic, never an admission.
func TestSubmitRejectsBadUploads(t *testing.T) {
	_, body := genTrace(t, 4)
	svc, ts := testServer(t, server.Config{MaxBodyBytes: int64(len(body))})

	cases := []struct {
		name  string
		body  []byte
		query string
		want  int
	}{
		{"garbage", []byte("not json at all"), "", http.StatusBadRequest},
		{"truncated", body[:len(body)/2], "", http.StatusBadRequest},
		{"oversized", append(append([]byte{}, body...), ' ', ' ', ' ', ' '), "", http.StatusRequestEntityTooLarge},
		{"negative-tasks", []byte(`{"tasks":-1,"events":[]}`), "", http.StatusBadRequest},
		{"huge-task-claim", []byte(`{"tasks":2000000000,"events":[]}`), "", http.StatusBadRequest},
		{"unknown-checker", body, "?checker=nonesuch", http.StatusBadRequest},
		{"bad-deadline", body, "?deadline_ms=minus-five", http.StatusBadRequest},
	}
	for _, tc := range cases {
		_, resp := submit(t, ts, tc.body, tc.query)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	if m := svc.Metrics(); m.Admitted != 0 {
		t.Fatalf("bad uploads were admitted: %+v", m)
	}
	// The service must still work after all that abuse.
	v, resp := submit(t, ts, body, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("good submit after abuse: status %d", resp.StatusCode)
	}
	if got := poll(t, ts, v.ID, 10*time.Second); got.Status != server.StatusDone {
		t.Fatalf("run after abuse finished %s", got.Status)
	}
}

// TestBackpressure fills a one-deep queue behind a worker pinned in
// retry backoff and checks the next admission is refused with 429 +
// Retry-After instead of queuing unboundedly.
func TestBackpressure(t *testing.T) {
	_, body := genTrace(t, 4)
	svc, ts := testServer(t, server.Config{
		Shards:       1,
		QueueDepth:   1,
		MaxAttempts:  3,
		RetryBackoff: 500 * time.Millisecond,
		Chaos:        chaosAllCrash(),
	})

	v1, resp := submit(t, ts, body, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("run 1: status %d", resp.StatusCode)
	}
	// Wait until the worker has picked run 1 up (it will crash and sit
	// in backoff for ~1s, far longer than this poll needs).
	waitStatus(t, ts, v1.ID, server.StatusRunning, 5*time.Second)

	if _, resp := submit(t, ts, body, ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("run 2 (queued): status %d", resp.StatusCode)
	}
	_, resp = submit(t, ts, body, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("run 3: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}
	if m := svc.Metrics(); m.RejectedQueueFull == 0 {
		t.Fatalf("rejection not counted: %+v", m)
	}
}

// waitStatus polls until the run reports the wanted (non-terminal)
// status.
func waitStatus(t *testing.T, ts *httptest.Server, id int64, want server.Status, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/checkruns/%d", ts.URL, id))
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		var v server.View
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("poll decode: %v", err)
		}
		if v.Status == want {
			return
		}
		if v.Status.Terminal() || time.Now().After(deadline) {
			t.Fatalf("run %d reached %s while waiting for %s", id, v.Status, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCancelQueuedAndRunning exercises both cancellation paths: a
// queued run turns CANCELED without ever running, and a running run is
// interrupted through its replay context.
func TestCancelQueuedAndRunning(t *testing.T) {
	_, body := genTrace(t, 4)
	_, ts := testServer(t, server.Config{
		Shards:       1,
		QueueDepth:   4,
		MaxAttempts:  50,
		RetryBackoff: 200 * time.Millisecond,
		Chaos:        chaosAllCrash(),
	})

	v1, _ := submit(t, ts, body, "")
	waitStatus(t, ts, v1.ID, server.StatusRunning, 5*time.Second)
	v2, _ := submit(t, ts, body, "") // parked behind v1

	// Cancel the queued run: immediate CANCELED, never runs.
	resp, err := http.Post(fmt.Sprintf("%s/v1/checkruns/%d/cancel", ts.URL, v2.ID), "", nil)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	resp.Body.Close()
	if got := poll(t, ts, v2.ID, 2*time.Second); got.Status != server.StatusCanceled {
		t.Fatalf("queued run canceled to %s", got.Status)
	}

	// Cancel the running run: its context unwinds the retry loop.
	resp, err = http.Post(fmt.Sprintf("%s/v1/checkruns/%d/cancel", ts.URL, v1.ID), "", nil)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	resp.Body.Close()
	got := poll(t, ts, v1.ID, 5*time.Second)
	if got.Status != server.StatusCanceled {
		t.Fatalf("running run canceled to %s (err %q)", got.Status, got.Error)
	}
}

// TestDeadlineFailsRun pins the deadline path: a run whose attempts
// never succeed within its deadline turns FAILED with the deadline
// finding, not CANCELED and not stuck.
func TestDeadlineFailsRun(t *testing.T) {
	_, body := genTrace(t, 4)
	_, ts := testServer(t, server.Config{
		Shards:       1,
		MaxAttempts:  1000,
		RetryBackoff: 20 * time.Millisecond,
		Chaos:        chaosAllCrash(),
	})
	v, resp := submit(t, ts, body, "?deadline_ms=100")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	got := poll(t, ts, v.ID, 10*time.Second)
	if got.Status != server.StatusFailed {
		t.Fatalf("deadline run finished %s, want FAILED", got.Status)
	}
	found := false
	for _, r := range got.Results {
		if r.Code == server.CodeDeadline && r.Status == server.ResultError {
			found = true
		}
	}
	if !found {
		t.Fatalf("no deadline finding in %+v", got.Results)
	}
}

// TestDebugEndpoint checks the observability plane: metrics counters
// move, and the debug view parses with per-run entries.
func TestDebugEndpoint(t *testing.T) {
	_, body := genTrace(t, 4)
	svc, ts := testServer(t, server.Config{})
	v, _ := submit(t, ts, body, "")
	poll(t, ts, v.ID, 10*time.Second)

	code, out := getBody(t, ts.URL+"/debug/avd")
	if code != http.StatusOK {
		t.Fatalf("debug status %d", code)
	}
	var dv struct {
		Metrics server.MetricsView `json:"metrics"`
		Runs    []json.RawMessage  `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &dv); err != nil {
		t.Fatalf("debug decode: %v", err)
	}
	if dv.Metrics.Admitted != 1 || dv.Metrics.Done != 1 {
		t.Fatalf("metrics off: %+v", dv.Metrics)
	}
	if len(dv.Runs) != 1 {
		t.Fatalf("%d runs in debug view", len(dv.Runs))
	}
	if m := svc.Metrics(); m.QueuedMax < 1 || m.InFlightMax < 1 {
		t.Fatalf("watermarks never rose: %+v", m)
	}

	if code, body := getBody(t, ts.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
}

// TestRegistryEviction bounds the retained-run registry: old terminal
// runs are evicted to admit new work, so the server's memory does not
// grow with its lifetime.
func TestRegistryEviction(t *testing.T) {
	_, body := genTrace(t, 4)
	_, ts := testServer(t, server.Config{MaxRuns: 2})
	var last int64
	for i := 0; i < 5; i++ {
		v, resp := submit(t, ts, body, "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		poll(t, ts, v.ID, 10*time.Second)
		last = v.ID
	}
	code, out := getBody(t, ts.URL+"/v1/checkruns")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var views []server.View
	if err := json.Unmarshal([]byte(out), &views); err != nil {
		t.Fatalf("list decode: %v", err)
	}
	if len(views) > 2 {
		t.Fatalf("registry holds %d runs, bound is 2", len(views))
	}
	if views[len(views)-1].ID != last {
		t.Fatalf("newest run evicted instead of oldest")
	}
}
