package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/chaos"
	"github.com/taskpar/avd/internal/trace"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/checkruns            submit a trace (body = trace JSON);
//	                              query: checker=optimized|basic|velodrome,
//	                              strict=bool, deadline_ms=int
//	GET  /v1/checkruns            list run summaries
//	GET  /v1/checkruns/{id}       one run, including its findings
//	GET  /v1/checkruns/{id}/report  canonical text violation report
//	GET  /v1/checkruns/{id}/events  live event stream (SSE): state
//	                              transitions, findings as the checker
//	                              admits them, periodic analysis frames
//	POST /v1/checkruns/{id}/cancel  request cancellation
//	GET  /healthz                 liveness (503 while draining)
//	GET  /metrics                 Prometheus text exposition
//	GET  /debug/avd               server metrics + live run snapshots
//	GET  /debug/avd/spans         run-lifecycle spans as a Perfetto trace
//
// Submissions are either a raw trace JSON body or multipart/form-data
// with a "trace" part and an optional "lint" part (avd-lint -json
// output or a JSON array of candidate strings) whose staticavd
// candidates annotate the dynamic findings that confirm them.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/checkruns", s.handleSubmit)
	mux.HandleFunc("GET /v1/checkruns", s.handleList)
	mux.HandleFunc("GET /v1/checkruns/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/checkruns/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/checkruns/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/checkruns/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/avd", s.handleDebug)
	mux.HandleFunc("GET /debug/avd/spans", s.handleSpans)
	return mux
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// handleSubmit admits one uploaded trace as a new check run. The
// untrusted input path is bounded end to end: a read deadline caps how
// long a slow client may dribble (408), MaxBytesReader plus
// DecodeLimited cap the size before any allocation proportional to the
// claimed contents (413), structural validation rejects malformed
// traces (400), and Admit applies backpressure (429 + Retry-After) and
// drain refusal (503).
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.metrics.rejectedDrain.Add(1)
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "service draining"})
		return
	}
	// A slow client must not hold a handler open forever: bound the
	// whole upload read. Ignore the error — transports that cannot set
	// per-request read deadlines (some middleware) just lose this layer.
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(time.Now().Add(s.cfg.UploadTimeout))
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.metrics.rejectedBody.Add(1)
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("upload exceeds %d bytes", s.cfg.MaxBodyBytes)})
		case errors.Is(err, os.ErrDeadlineExceeded):
			writeJSON(w, http.StatusRequestTimeout,
				errorBody{Error: fmt.Sprintf("upload slower than %v", s.cfg.UploadTimeout)})
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading upload: " + err.Error()})
		}
		return
	}
	_ = rc.SetReadDeadline(time.Time{})
	var lint []string
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "multipart/") {
		// Multipart submission: a "trace" part plus an optional "lint"
		// part of staticavd candidates. The whole upload was already
		// size-bounded above, so the parts are too.
		body, lint, err = splitMultipart(ct, body)
		if err != nil {
			s.metrics.rejectedBody.Add(1)
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
	}
	tr, err := trace.DecodeLimited(bytes.NewReader(body), s.cfg.MaxBodyBytes)
	if err != nil {
		s.metrics.rejectedBody.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	opts, err := parseRunOptions(r)
	if err != nil {
		s.metrics.rejectedBody.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	run, err := s.AdmitLint(tr, body, opts, lint)
	if err != nil {
		var ae *AdmitError
		if errors.As(err, &ae) {
			if ae.RetryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(int((ae.RetryAfter+time.Second-1)/time.Second)))
			}
			writeJSON(w, ae.Status, errorBody{Error: ae.Msg})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, run.view(false))
}

// splitMultipart extracts the trace bytes and optional lint candidates
// from a multipart submission.
func splitMultipart(contentType string, body []byte) (traceBody []byte, lint []string, err error) {
	_, params, err := mime.ParseMediaType(contentType)
	if err != nil {
		return nil, nil, fmt.Errorf("bad multipart content type: %v", err)
	}
	boundary := params["boundary"]
	if boundary == "" {
		return nil, nil, errors.New("multipart upload lacks a boundary")
	}
	mr := multipart.NewReader(bytes.NewReader(body), boundary)
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("reading multipart upload: %v", err)
		}
		data, err := io.ReadAll(part)
		part.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("reading part %q: %v", part.FormName(), err)
		}
		switch part.FormName() {
		case "trace":
			traceBody = data
		case "lint":
			lint, err = parseLintUpload(data)
			if err != nil {
				return nil, nil, err
			}
		default:
			return nil, nil, fmt.Errorf("unknown multipart part %q (want trace, lint)", part.FormName())
		}
	}
	if traceBody == nil {
		return nil, nil, errors.New(`multipart upload lacks a "trace" part`)
	}
	return traceBody, lint, nil
}

// parseLintUpload decodes an uploaded lint document into candidate
// messages. Two shapes are accepted: a bare JSON array of message
// strings, and avd-lint -json output (packages → analyzers → findings),
// from which every finding is flattened to "posn: message".
func parseLintUpload(data []byte) ([]string, error) {
	data = bytes.TrimSpace(data)
	if len(data) == 0 {
		return nil, nil
	}
	if data[0] == '[' {
		var msgs []string
		if err := json.Unmarshal(data, &msgs); err != nil {
			return nil, fmt.Errorf("bad lint array: %v", err)
		}
		return msgs, nil
	}
	type lintFinding struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	type lintPackage struct {
		Findings map[string][]lintFinding `json:"findings"`
	}
	var tree map[string]lintPackage
	if err := json.Unmarshal(data, &tree); err != nil {
		return nil, fmt.Errorf("bad lint JSON (want an array of strings or avd-lint -json output): %v", err)
	}
	// Deterministic order: packages, then analyzers, sorted.
	var out []string
	pkgs := make([]string, 0, len(tree))
	for pkg := range tree {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		analyzers := make([]string, 0, len(tree[pkg].Findings))
		for a := range tree[pkg].Findings {
			analyzers = append(analyzers, a)
		}
		sort.Strings(analyzers)
		for _, a := range analyzers {
			for _, f := range tree[pkg].Findings[a] {
				msg := f.Message
				if f.Posn != "" {
					msg = f.Posn + ": " + msg
				}
				out = append(out, msg)
			}
		}
	}
	return out, nil
}

// parseRunOptions reads the per-run knobs from the submit query.
func parseRunOptions(r *http.Request) (RunOptions, error) {
	q := r.URL.Query()
	opts := RunOptions{Checker: q.Get("checker")}
	if v := q.Get("strict"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return opts, fmt.Errorf("bad strict %q", v)
		}
		opts.Strict = b
	}
	if v := q.Get("deadline_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			return opts, fmt.Errorf("bad deadline_ms %q", v)
		}
		opts.Deadline = time.Duration(ms) * time.Millisecond
	}
	if _, ok := opts.checkerKind(); !ok {
		return opts, fmt.Errorf("unknown checker %q", opts.Checker)
	}
	return opts, nil
}

// pathRun resolves the {id} path segment to a run, writing 400/404 on
// failure.
func (s *Service) pathRun(w http.ResponseWriter, r *http.Request) *Run {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad run id"})
		return nil
	}
	run, ok := s.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no run %d", id)})
		return nil
	}
	return run
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	runs := s.Runs()
	views := make([]View, 0, len(runs))
	for _, run := range runs {
		views = append(views, run.view(false))
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	run := s.pathRun(w, r)
	if run == nil {
		return
	}
	writeJSON(w, http.StatusOK, run.view(true))
}

// handleReport serves the canonical text violation report of a terminal
// run: byte-identical to what offline replay (avd.ReplayTrace rendered
// with RenderReport) produces for the same trace and options.
func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	run := s.pathRun(w, r)
	if run == nil {
		return
	}
	if !run.Status().Terminal() {
		writeJSON(w, http.StatusConflict, errorBody{Error: "run not finished"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	RenderReport(w, run.Report())
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	run := s.pathRun(w, r)
	if run == nil {
		return
	}
	if _, ok := s.Cancel(run.ID()); !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "run vanished"})
		return
	}
	writeJSON(w, http.StatusOK, run.view(false))
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// debugView is the payload of the debug endpoint: server-level gauges,
// chaos counters, and a per-run listing where every currently RUNNING
// run carries a live analysis snapshot from its Replayer.
type debugView struct {
	Metrics MetricsView `json:"metrics"`
	Chaos   any         `json:"chaos,omitempty"`
	Runs    []debugRun  `json:"runs"`
}

type debugRun struct {
	View
	Live *liveStats `json:"live,omitempty"`
}

// liveStats is the subset of a Replayer snapshot worth streaming.
type liveStats struct {
	Locations  int64 `json:"locations"`
	DPSTNodes  int   `json:"dpst_nodes"`
	Violations int64 `json:"violations"`
	Drops      int64 `json:"drops"`
	MemoryUsed int64 `json:"memory_used"`
	Saturated  bool  `json:"saturated,omitempty"`
}

// newLiveStats projects a Replayer snapshot onto the streamed subset
// shared by /debug/avd and the SSE snapshot frames.
func newLiveStats(snap avd.Snapshot) *liveStats {
	return &liveStats{
		Locations:  snap.Stats.Locations,
		DPSTNodes:  snap.Stats.DPSTNodes,
		Violations: snap.ViolationCount,
		Drops:      snap.Events.Drops,
		MemoryUsed: snap.MemoryUsed,
		Saturated:  snap.Saturated,
	}
}

func (s *Service) handleDebug(w http.ResponseWriter, r *http.Request) {
	runs := s.Runs()
	out := debugView{Metrics: s.Metrics(), Runs: make([]debugRun, 0, len(runs))}
	if cs := s.ChaosStats(); cs != (chaos.PlaneStats{}) {
		out.Chaos = cs
	}
	for _, run := range runs {
		dr := debugRun{View: run.view(false)}
		run.mu.Lock()
		rp := run.replayer
		run.mu.Unlock()
		if rp != nil {
			dr.Live = newLiveStats(rp.Snapshot())
		}
		out.Runs = append(out.Runs, dr)
	}
	writeJSON(w, http.StatusOK, out)
}
