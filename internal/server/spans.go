package server

import (
	"net/http"
	"time"

	"github.com/taskpar/avd/internal/trace"
)

// RunSpans snapshots every registered run's lifecycle timestamps for
// the Perfetto server timeline.
func (s *Service) RunSpans() []trace.RunSpan {
	runs := s.Runs()
	spans := make([]trace.RunSpan, 0, len(runs))
	for _, r := range runs {
		r.mu.Lock()
		sp := trace.RunSpan{
			ID:         r.id,
			Shard:      r.shard,
			Status:     string(r.status),
			Attempts:   r.attempts,
			Created:    r.created.UnixNano(),
			Violations: r.report.ViolationCount,
		}
		if !r.started.IsZero() {
			sp.Started = r.started.UnixNano()
		}
		if !r.finished.IsZero() {
			sp.Finished = r.finished.UnixNano()
		}
		r.mu.Unlock()
		spans = append(spans, sp)
	}
	return spans
}

// handleSpans serves GET /debug/avd/spans: the run lifecycles as a
// Chrome trace-event / Perfetto JSON timeline — SUBMITTED→queued→
// RUNNING→terminal per run, one track per shard. Load it at
// https://ui.perfetto.dev. ?raw=1 returns the span records themselves
// (JSON array), the form avd-viz -spans converts offline.
func (s *Service) handleSpans(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("raw") != "" {
		writeJSON(w, http.StatusOK, s.RunSpans())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = trace.ExportRunSpans(s.RunSpans(), time.Now().UnixNano(), w)
}
