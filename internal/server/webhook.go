package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// WebhookPayload is the JSON body of one webhook delivery: the run it
// belongs to and the ERROR finding being reported. Violations carry
// their full Explain() provenance in Finding.Content, so a receiver can
// file the report without calling back.
type WebhookPayload struct {
	RunID   int64  `json:"run_id"`
	Status  Status `json:"status"`
	Shard   int    `json:"shard"`
	Finding Result `json:"finding"`
}

// webhookSender fans terminal ERROR findings out to the configured URL
// from a single delivery goroutine, decoupled from the run lifecycle by
// a bounded queue: a slow or dead receiver never delays a worker, and
// notifications beyond the queue bound are dropped and counted rather
// than accumulated. Deliveries are retried with the same jittered
// exponential backoff discipline the run retry loop uses.
type webhookSender struct {
	url      string
	attempts int
	backoff  time.Duration
	client   *http.Client
	m        *Metrics

	ch   chan WebhookPayload
	done chan struct{}
	stop sync.Once
}

// newWebhookSender starts the delivery goroutine.
func newWebhookSender(cfg Config, m *Metrics) *webhookSender {
	w := &webhookSender{
		url:      cfg.WebhookURL,
		attempts: cfg.WebhookAttempts,
		backoff:  cfg.RetryBackoff,
		client:   &http.Client{Timeout: 10 * time.Second},
		m:        m,
		ch:       make(chan WebhookPayload, cfg.WebhookQueue),
		done:     make(chan struct{}),
	}
	go w.loop()
	return w
}

// enqueue offers one notification without blocking; overflow is dropped
// and counted.
func (w *webhookSender) enqueue(p WebhookPayload) {
	select {
	case w.ch <- p:
	default:
		w.m.webhookDropped.Add(1)
	}
}

// close stops intake and waits for the queued deliveries to be
// attempted.
func (w *webhookSender) close() {
	w.stop.Do(func() { close(w.ch) })
	<-w.done
}

// loop drains the queue, delivering each notification with retries.
func (w *webhookSender) loop() {
	defer close(w.done)
	for p := range w.ch {
		if w.deliver(p) {
			w.m.webhookDelivered.Add(1)
		} else {
			w.m.webhookFailed.Add(1)
		}
	}
}

// deliver POSTs one payload, retrying transient failures (transport
// errors, 5xx, 429) with jittered exponential backoff. Other client
// errors (4xx) are permanent: the receiver understood and refused.
func (w *webhookSender) deliver(p WebhookPayload) bool {
	body, err := json.Marshal(p)
	if err != nil {
		return false
	}
	for attempt := 1; ; attempt++ {
		ok, retryable := w.post(body)
		if ok {
			return true
		}
		if !retryable || attempt >= w.attempts {
			return false
		}
		time.Sleep(w.retryDelay(p.RunID, attempt))
	}
}

// post performs one delivery attempt.
func (w *webhookSender) post(body []byte) (ok, retryable bool) {
	resp, err := w.client.Post(w.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return false, true
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return true, false
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		return false, true
	default:
		return false, false
	}
}

// retryDelay mirrors Service.backoff: base<<(attempt-1) capped at one
// second plus deterministic jitter from the (run, attempt) pair.
func (w *webhookSender) retryDelay(run int64, attempt int) time.Duration {
	d := w.backoff << uint(attempt-1)
	if d > time.Second {
		d = time.Second
	}
	h := mix64(uint64(run)<<8 ^ uint64(attempt) ^ 0x9e3779b97f4a7c15)
	return d + time.Duration(h%uint64(w.backoff))
}

// notifyFindings enqueues a webhook delivery for every ERROR finding of
// a terminal run. A no-op unless a webhook is configured.
func (s *Service) notifyFindings(run *Run, results []Result) {
	if s.webhook == nil {
		return
	}
	st := run.Status()
	for _, res := range results {
		if res.Status != ResultError {
			continue
		}
		s.webhook.enqueue(WebhookPayload{
			RunID:   run.ID(),
			Status:  st,
			Shard:   run.shard,
			Finding: res,
		})
	}
}

// stopWebhook flushes and stops the webhook sender at the end of drain.
func (s *Service) stopWebhook() {
	if s.webhook != nil {
		s.webhook.close()
	}
}

// ValidateWebhookURL reports misconfiguration early: the delivery loop
// would otherwise discover a bad URL one failed notification at a time.
func ValidateWebhookURL(raw string) error {
	if raw == "" {
		return nil
	}
	req, err := http.NewRequest(http.MethodPost, raw, nil)
	if err != nil {
		return fmt.Errorf("bad webhook URL %q: %w", raw, err)
	}
	if req.URL.Scheme != "http" && req.URL.Scheme != "https" {
		return fmt.Errorf("bad webhook URL %q: scheme must be http or https", raw)
	}
	return nil
}
