// Package server is the avd trace-checking service: a long-running HTTP
// front end that ingests recorded execution traces from many clients,
// checks each one offline on a sharded worker pool (every run under its
// own memory-budgeted Replayer), and exposes the results through a
// check-run lifecycle API modeled on bytebase's task-check-run state
// machine: SUBMITTED → RUNNING → DONE/FAILED/CANCELED, with per-finding
// WARN/ERROR severities and Explain() provenance.
//
// The robustness surface is the point of the package: bounded admission
// queues that answer 429 + Retry-After instead of growing, per-run
// deadlines and client cancellation threaded as a context through the
// replay, per-run panic containment (a poisoned trace fails its run,
// never the process), retry with jittered backoff for transient worker
// failures, size and validation limits on untrusted uploads before any
// allocation proportional to their claims, graceful drain on shutdown,
// and chaos fault points (worker crashes, injected queue overflow) so
// every failure mode is deterministically testable.
package server

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"time"

	avd "github.com/taskpar/avd"
)

// Status is the lifecycle state of a check run. The machine is
// append-only left to right: SUBMITTED → RUNNING → one of the three
// terminal states; SUBMITTED may also jump straight to CANCELED (client
// cancel while queued) or FAILED (evicted, drain).
type Status string

// Check-run lifecycle states.
const (
	// StatusSubmitted is an admitted run waiting in its shard queue.
	StatusSubmitted Status = "SUBMITTED"
	// StatusRunning is a run currently executing on a shard worker.
	StatusRunning Status = "RUNNING"
	// StatusDone is a completed analysis — the trace was checked, and
	// the results (possibly ERROR-severity violations) are attached.
	StatusDone Status = "DONE"
	// StatusFailed is a run whose analysis could not be completed:
	// worker crashes beyond the retry cap, or a missed deadline.
	StatusFailed Status = "FAILED"
	// StatusCanceled is a run stopped by client cancellation or drain.
	StatusCanceled Status = "CANCELED"
)

// Terminal reports whether the state is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// ResultStatus grades one finding of a completed check run.
type ResultStatus string

// Finding severities.
const (
	// ResultSuccess is a clean finding (no violations).
	ResultSuccess ResultStatus = "SUCCESS"
	// ResultWarn is a degraded-but-usable finding (saturated analysis,
	// partial results at cancellation).
	ResultWarn ResultStatus = "WARN"
	// ResultError is a detected atomicity violation or a run failure.
	ResultError ResultStatus = "ERROR"
)

// level orders severities for LessThan.
func (s ResultStatus) level() int {
	switch s {
	case ResultSuccess:
		return 2
	case ResultWarn:
		return 1
	case ResultError:
		return 0
	}
	return -1
}

// LessThan reports whether s is more severe than r — ERROR is LessThan
// WARN — so callers can gate on a minimum acceptable severity.
func (s ResultStatus) LessThan(r ResultStatus) bool { return s.level() < r.level() }

// Result codes attached to findings.
const (
	// CodeOK marks the single SUCCESS finding of a clean run.
	CodeOK = "avd.ok"
	// CodeViolation marks one detected atomicity violation; Content
	// carries its Explain() provenance.
	CodeViolation = "avd.violation"
	// CodeSaturated warns that the analysis shed metadata or results
	// under its memory budget or violation cap: findings are sound but
	// possibly incomplete.
	CodeSaturated = "avd.saturated"
	// CodePartial warns that the run was interrupted (cancel, drain)
	// and the findings cover only a prefix of the trace.
	CodePartial = "avd.partial"
	// CodeDeadline marks a run failed by its deadline.
	CodeDeadline = "avd.deadline"
	// CodeWorkerCrash marks a run failed by worker crashes beyond the
	// retry cap (a poisoned trace, or injected chaos).
	CodeWorkerCrash = "avd.worker-crash"
)

// Result is one finding of a check run.
type Result struct {
	Status  ResultStatus `json:"status"`
	Code    string       `json:"code"`
	Title   string       `json:"title"`
	Content string       `json:"content,omitempty"`
}

// RunOptions are the per-run analysis knobs a client may set at
// submission (bounded by the service configuration).
type RunOptions struct {
	// Checker names the analysis: "optimized" (default), "basic", or
	// "velodrome".
	Checker string `json:"checker"`
	// Strict enables the strict-lock extension.
	Strict bool `json:"strict,omitempty"`
	// Deadline bounds the run's execution; zero means the service
	// default, and values above the service maximum are clamped.
	Deadline time.Duration `json:"deadline_ns,omitempty"`
}

// checkerKind maps the wire name to the avd option; ok is false for
// unknown names.
func (o RunOptions) checkerKind() (avd.CheckerKind, bool) {
	switch o.Checker {
	case "", "optimized":
		return avd.CheckerOptimized, true
	case "basic":
		return avd.CheckerBasic, true
	case "velodrome":
		return avd.CheckerVelodrome, true
	}
	return 0, false
}

// Run is one check run: an admitted trace moving through the lifecycle.
// All mutable state is guarded by mu; the worker, the HTTP handlers,
// and Cancel may touch a run concurrently.
type Run struct {
	mu sync.Mutex

	id      int64
	shard   int
	status  Status
	tr      *avd.Trace
	traceSz int64 // encoded upload size, for views and shard stats
	opts    RunOptions

	created  time.Time
	started  time.Time
	finished time.Time

	attempts int
	results  []Result
	report   avd.Report
	errMsg   string

	// cancel interrupts the running replay; set while RUNNING. canceled
	// latches a client cancel that arrived while the run was queued.
	cancel   context.CancelFunc
	canceled bool

	// replayer is the live analysis while RUNNING, for debug snapshots.
	replayer *avd.Replayer

	// ckey identifies this run in the cross-run report cache; cacheOK
	// marks it eligible (the cache is enabled and the run was not itself
	// served from it).
	ckey    cacheKey
	cacheOK bool

	// hub is the run's live event stream (created at admission, closed
	// at terminality). It is immutable after Admit, so readers need no
	// lock.
	hub *streamHub

	// lint carries the staticavd candidate messages uploaded alongside
	// the trace; dynamic findings that confirm a candidate are annotated
	// with it.
	lint []string
}

// ID returns the run's identifier.
func (r *Run) ID() int64 { return r.id }

// Status returns the run's current lifecycle state.
func (r *Run) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Results returns the findings of a terminal run (nil before).
func (r *Run) Results() []Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Result(nil), r.results...)
}

// Report returns the analysis report of a terminal run (zero before
// completion; partial for canceled or deadline-failed runs).
func (r *Run) Report() avd.Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.report
}

// View is the JSON representation of a run served by the API.
type View struct {
	ID         int64      `json:"id"`
	Status     Status     `json:"status"`
	Shard      int        `json:"shard"`
	Attempts   int        `json:"attempts"`
	TraceBytes int64      `json:"trace_bytes"`
	Options    RunOptions `json:"options"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	Error      string     `json:"error,omitempty"`
	Results    []Result   `json:"results,omitempty"`
	// Violations is the distinct violation count of a terminal run.
	Violations int64 `json:"violations"`
	// Saturated mirrors Report.Saturated: findings may be incomplete.
	Saturated bool `json:"saturated,omitempty"`
	// StaticCandidates counts the staticavd candidate messages uploaded
	// alongside the trace (0 when none were).
	StaticCandidates int `json:"static_candidates,omitempty"`
}

// view assembles the JSON representation. withResults controls whether
// the (potentially large) findings list is included.
func (r *Run) view(withResults bool) View {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := View{
		ID:               r.id,
		Status:           r.status,
		Shard:            r.shard,
		Attempts:         r.attempts,
		TraceBytes:       r.traceSz,
		Options:          r.opts,
		CreatedAt:        r.created,
		Error:            r.errMsg,
		Violations:       r.report.ViolationCount,
		Saturated:        r.report.Saturated,
		StaticCandidates: len(r.lint),
	}
	if !r.started.IsZero() {
		t := r.started
		v.StartedAt = &t
	}
	if !r.finished.IsZero() {
		t := r.finished
		v.FinishedAt = &t
	}
	if withResults {
		v.Results = append([]Result(nil), r.results...)
	}
	return v
}

// buildResults converts a terminal report into the run's findings list:
// one ERROR per violation (title = the canonical one-line diagnostic,
// content = Explain() provenance), a WARN when the analysis saturated,
// and a single SUCCESS when nothing else was found. partial suppresses
// the SUCCESS finding — an interrupted run's empty prefix proves
// nothing — leaving the caller's interruption finding to lead. lint is
// the run's uploaded staticavd candidate list: a violation whose access
// pattern matches a compile-time candidate is annotated with it, tying
// the dynamic confirmation back to the static prediction.
func buildResults(rep avd.Report, partial bool, lint []string) []Result {
	var out []Result
	for _, v := range rep.Violations {
		res := Result{Status: ResultError, Code: CodeViolation, Title: v.String()}
		if v.Prov != nil {
			res.Content = v.Explain()
		}
		if m := matchCandidates(lint, v.Kind()); len(m) > 0 {
			if res.Content != "" {
				res.Content += "\n"
			}
			res.Content += "confirms static candidate:\n  " + strings.Join(m, "\n  ")
		}
		out = append(out, res)
	}
	if rep.Saturated {
		out = append(out, Result{
			Status: ResultWarn,
			Code:   CodeSaturated,
			Title:  "analysis saturated: results are sound but may be incomplete",
			Content: "drops: locations=" + strconv.FormatInt(rep.Drops.Locations, 10) +
				" labels=" + strconv.FormatInt(rep.Drops.Labels, 10) +
				" lca-entries=" + strconv.FormatInt(rep.Drops.LCAEntries, 10) +
				" violations=" + strconv.FormatInt(rep.Drops.Violations, 10),
		})
	}
	if len(out) == 0 && !partial {
		out = append(out, Result{Status: ResultSuccess, Code: CodeOK, Title: "no atomicity violations"})
	}
	return out
}

// matchCandidates returns the staticavd candidate messages whose
// predicted access pattern matches a dynamic violation's kind. Traces
// carry no variable names, so the join is by pattern: the candidate
// message embeds `pattern R-W-R`-style text produced by the same
// automaton vocabulary the checker's Kind() uses.
func matchCandidates(lint []string, kind string) []string {
	if len(lint) == 0 || kind == "" {
		return nil
	}
	var out []string
	needle := "pattern " + kind
	for _, msg := range lint {
		if strings.Contains(msg, needle) {
			out = append(out, msg)
		}
	}
	return out
}
