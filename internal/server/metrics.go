package server

import (
	"net/http"
	"strconv"

	"github.com/taskpar/avd/internal/obs"
)

// buildRegistry names every server counter, gauge, and histogram for
// the Prometheus /metrics endpoint. Series read the live atomics
// through closures, so registration happens once and scrapes cost a
// load per sample. The name layout:
//
//	avd_server_*    service lifecycle (admission, rejection, runs)
//	avd_stream_*    live event-stream plane
//	avd_webhook_*   notification deliveries
//	avd_analysis_*  per-run analysis counters folded into totals —
//	                the paper's Table 1 measurements as a time series
//	avd_run_*       latency histograms (seconds)
func (s *Service) buildRegistry() *obs.Registry {
	r := obs.NewRegistry()
	m := &s.metrics

	r.Counter("avd_server_admitted_total", "Check runs admitted.", m.admitted.Load)
	r.LabeledCounter("avd_server_rejected_total", "Admissions refused, by reason.", "reason", "queue_full", m.rejectedQueue.Load)
	r.LabeledCounter("avd_server_rejected_total", "Admissions refused, by reason.", "reason", "body", m.rejectedBody.Load)
	r.LabeledCounter("avd_server_rejected_total", "Admissions refused, by reason.", "reason", "draining", m.rejectedDrain.Load)
	r.LabeledCounter("avd_server_rejected_total", "Admissions refused, by reason.", "reason", "injected", m.rejectedChaos.Load)
	r.LabeledCounter("avd_server_runs_total", "Terminal runs, by outcome.", "status", "done", m.done.Load)
	r.LabeledCounter("avd_server_runs_total", "Terminal runs, by outcome.", "status", "failed", m.failed.Load)
	r.LabeledCounter("avd_server_runs_total", "Terminal runs, by outcome.", "status", "canceled", m.canceled.Load)
	r.Counter("avd_server_retries_total", "Run attempts retried after transient worker crashes.", m.retries.Load)
	r.Counter("avd_server_worker_panics_total", "Worker panics contained to their run.", m.workerPanics.Load)
	r.Counter("avd_server_report_cache_hits_total", "Admissions answered from the cross-run report cache.", m.cacheHits.Load)
	r.Counter("avd_server_report_cache_misses_total", "Cacheable admissions that had to execute.", m.cacheMisses.Load)
	r.Gauge("avd_server_report_cache_entries", "Memoized reports currently cached.", func() int64 { return int64(s.cache.size()) })

	r.Gauge("avd_server_in_flight", "Runs executing now.", m.inFlight.Load)
	r.Gauge("avd_server_in_flight_max", "High watermark of concurrently executing runs.", m.inFlight.Max)
	r.Gauge("avd_server_queued", "Runs waiting in shard queues.", m.queued.Load)
	r.Gauge("avd_server_queued_max", "High watermark of queued runs.", m.queued.Max)
	for i := range m.perShardQueued {
		g := &m.perShardQueued[i]
		r.LabeledGauge("avd_server_shard_queue_depth", "Queued runs per shard.", "shard", strconv.Itoa(i), g.Load)
	}

	r.Gauge("avd_stream_subscribers", "Live SSE subscribers across all runs.", m.streamSubs.Load)
	r.Counter("avd_stream_dropped_frames_total", "Snapshot frames dropped to slow subscribers.", m.streamDroppedFrames.Load)

	r.Counter("avd_webhook_delivered_total", "Webhook notifications delivered.", m.webhookDelivered.Load)
	r.Counter("avd_webhook_failed_total", "Webhook notifications that exhausted their delivery attempts.", m.webhookFailed.Load)
	r.Counter("avd_webhook_dropped_total", "Webhook notifications dropped on queue overflow.", m.webhookDropped.Load)

	r.Counter("avd_analysis_violations_total", "Distinct atomicity violations across executed runs.", m.anViolations.Load)
	r.Counter("avd_analysis_drops_total", "Analysis work shed under memory budgets and caps.", m.anDrops.Load)
	r.Counter("avd_analysis_task_panics_total", "Recovered task panics across executed runs.", m.anTaskPanics.Load)
	r.Counter("avd_analysis_locations_total", "Unique instrumented locations across executed runs.", m.anLocations.Load)
	r.Counter("avd_analysis_filter_hits_total", "Accesses skipped by the redundant-access filter.", m.anFilterHits.Load)
	r.Counter("avd_analysis_filter_misses_total", "Accesses that fell through to full checker dispatch.", m.anFilterMisses.Load)
	r.Counter("avd_analysis_batch_flushes_total", "Per-task access batches drained.", m.anBatchFlushes.Load)
	r.Counter("avd_analysis_batched_accesses_total", "Accesses dispatched through batches.", m.anBatchedAccesses.Load)
	r.Counter("avd_analysis_window_elisions_total", "Accesses answered by the window-saturation cache.", m.anWindowElisions.Load)

	r.Histogram("avd_run_queue_wait_seconds", "Time from admission to first execution.", &m.queueWait, 1e9)
	r.Histogram("avd_run_duration_seconds", "Time from first execution to terminal state.", &m.runDuration, 1e9)
	return r
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.registry.WritePrometheus(w)
}
