package server_test

import (
	"context"
	"net/http"
	"testing"
	"time"

	"github.com/taskpar/avd/internal/server"
)

// TestGracefulDrain checks the clean half of shutdown: with time on the
// clock, queued and running work is allowed to finish, and after
// Shutdown returns no run is left SUBMITTED or RUNNING.
func TestGracefulDrain(t *testing.T) {
	_, body := genTrace(t, 4)
	svc, ts := testServer(t, server.Config{Shards: 2})

	var ids []int64
	for i := 0; i < 6; i++ {
		v, resp := submit(t, ts, body, "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("drain within deadline returned %v", err)
	}
	for _, id := range ids {
		run, ok := svc.Get(id)
		if !ok {
			t.Fatalf("run %d vanished", id)
		}
		if st := run.Status(); st != server.StatusDone {
			t.Fatalf("run %d drained to %s, want DONE", id, st)
		}
	}

	// Admission after drain begins is refused with 503 + Retry-After.
	_, resp := submit(t, ts, body, "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("503 without Retry-After")
	}
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", code)
	}
	// Polling still works after drain: lifecycle state stays queryable.
	if got := poll(t, ts, ids[0], time.Second); got.Status != server.StatusDone {
		t.Fatalf("post-drain poll: %s", got.Status)
	}
}

// TestDrainDeadlineCancelsStragglers checks the forced half: when the
// drain deadline passes with runs still queued behind a crash-looping
// worker, every one of them is canceled — none left SUBMITTED or
// RUNNING — and Shutdown still returns.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	_, body := genTrace(t, 4)
	svc, ts := testServer(t, server.Config{
		Shards:       1,
		QueueDepth:   8,
		MaxAttempts:  1 << 20,
		RetryBackoff: 50 * time.Millisecond,
		Chaos:        chaosAllCrash(),
	})

	var ids []int64
	for i := 0; i < 4; i++ {
		v, resp := submit(t, ts, body, "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}
	waitStatus(t, ts, ids[0], server.StatusRunning, 5*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := svc.Shutdown(ctx)
	if err == nil {
		t.Fatalf("crash-looping drain finished cleanly?")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("shutdown took %v after its 150ms deadline", elapsed)
	}
	for _, id := range ids {
		run, ok := svc.Get(id)
		if !ok {
			t.Fatalf("run %d vanished", id)
		}
		st := run.Status()
		if !st.Terminal() {
			t.Fatalf("run %d left %s after drain", id, st)
		}
		if st != server.StatusCanceled {
			t.Fatalf("run %d drained to %s, want CANCELED", id, st)
		}
	}
	if m := svc.Metrics(); m.Canceled != int64(len(ids)) {
		t.Fatalf("canceled metric %d, want %d", m.Canceled, len(ids))
	}
}

// TestShutdownIdempotent: a second Shutdown (the signal handler may race
// the listener error path) must not panic on re-closing queues.
func TestShutdownIdempotent(t *testing.T) {
	svc := server.New(server.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if !svc.Draining() {
		t.Fatalf("not draining after shutdown")
	}
}
