package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/chaos"
	"github.com/taskpar/avd/internal/obs"
	"github.com/taskpar/avd/internal/server"
	"github.com/taskpar/avd/internal/trace"
)

// streamReduced consumes a run's SSE stream to completion and reduces
// it to report form. The GET blocks until the run is terminal and the
// durable log drained, so calling it on a live run exercises the
// streaming path end to end.
func streamReduced(t *testing.T, ts *httptest.Server, id int64) string {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/checkruns/%d/events", ts.URL, id))
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	out, err := server.ReduceStream(resp.Body)
	if err != nil {
		t.Fatalf("reduce: %v", err)
	}
	return string(out)
}

// TestStreamEquivalence is the streaming acceptance anchor: subscribing
// before the run executes and reducing the live SSE stream must yield
// exactly the bytes of the terminal GET /report.
func TestStreamEquivalence(t *testing.T) {
	_, body := genTrace(t, 4)
	_, ts := testServer(t, server.Config{})

	v, resp := submit(t, ts, body, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	// Subscribe immediately — most findings arrive live, not replayed.
	reduced := streamReduced(t, ts, v.ID)

	final := poll(t, ts, v.ID, 10*time.Second)
	if final.Status != server.StatusDone {
		t.Fatalf("run finished %s", final.Status)
	}
	_, report := getBody(t, fmt.Sprintf("%s/v1/checkruns/%d/report", ts.URL, v.ID))
	if reduced != report {
		t.Fatalf("reduced stream differs from /report:\n--- stream ---\n%s--- report ---\n%s", reduced, report)
	}
	if report == "" {
		t.Fatalf("seed-4 report empty; equivalence test is vacuous")
	}

	// A late subscriber replays the same durable log to the same bytes.
	if late := streamReduced(t, ts, v.ID); late != report {
		t.Fatalf("late-subscriber reduction differs:\n%s\nvs\n%s", late, report)
	}
}

// TestStreamEquivalenceAcrossRetries pins the reset protocol: attempts
// that crash mid-run stream findings that a retry then invalidates, and
// the reduction still matches the terminal report exactly.
func TestStreamEquivalenceAcrossRetries(t *testing.T) {
	_, body := genTrace(t, 4)
	_, ts := testServer(t, server.Config{
		Shards:       1,
		MaxAttempts:  100,
		RetryBackoff: time.Millisecond,
		Chaos:        chaos.Config{Seed: 7, WorkerCrashProb: 0.6},
	})

	v, resp := submit(t, ts, body, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	reduced := streamReduced(t, ts, v.ID)
	final := poll(t, ts, v.ID, 20*time.Second)
	if final.Status != server.StatusDone {
		t.Fatalf("run finished %s (err %q), want DONE after retries", final.Status, final.Error)
	}
	if final.Attempts < 2 {
		t.Skipf("chaos produced no crash before success (attempts=%d); retry path not exercised", final.Attempts)
	}
	_, report := getBody(t, fmt.Sprintf("%s/v1/checkruns/%d/report", ts.URL, v.ID))
	if reduced != report {
		t.Fatalf("reduction across %d attempts differs from /report:\n--- stream ---\n%s--- report ---\n%s",
			final.Attempts, reduced, report)
	}
}

// TestStreamCrashToFailure: when every attempt crashes, the stream must
// end with a reset (discarding crashed-attempt findings) and reduce to
// the empty report the FAILED run serves.
func TestStreamCrashToFailure(t *testing.T) {
	_, body := genTrace(t, 4)
	_, ts := testServer(t, server.Config{
		Shards:       1,
		MaxAttempts:  2,
		RetryBackoff: time.Millisecond,
		Chaos:        chaosAllCrash(),
	})
	v, _ := submit(t, ts, body, "")
	reduced := streamReduced(t, ts, v.ID)
	final := poll(t, ts, v.ID, 10*time.Second)
	if final.Status != server.StatusFailed {
		t.Fatalf("run finished %s, want FAILED", final.Status)
	}
	_, report := getBody(t, fmt.Sprintf("%s/v1/checkruns/%d/report", ts.URL, v.ID))
	if reduced != report {
		t.Fatalf("failed-run reduction %q differs from /report %q", reduced, report)
	}
}

// TestStreamCacheHit: a cache-hit admission never executes, yet its
// event stream must synthesize the same findings and reduce to the
// same report bytes as the original run.
func TestStreamCacheHit(t *testing.T) {
	_, body := genTrace(t, 4)
	svc, ts := testServer(t, server.Config{ReportCacheSize: 8})

	v1, _ := submit(t, ts, body, "")
	poll(t, ts, v1.ID, 10*time.Second)
	_, report := getBody(t, fmt.Sprintf("%s/v1/checkruns/%d/report", ts.URL, v1.ID))

	v2, resp := submit(t, ts, body, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d", resp.StatusCode)
	}
	if m := svc.Metrics(); m.ReportCacheHits != 1 {
		t.Fatalf("second admission was not a cache hit: %+v", m)
	}
	if reduced := streamReduced(t, ts, v2.ID); reduced != report {
		t.Fatalf("cache-hit reduction differs from original report:\n%s\nvs\n%s", reduced, report)
	}
}

// TestStreamCanceledQueued: canceling a queued run closes its stream
// with the canceled findings; the reduction (no violations) matches the
// empty /report.
func TestStreamCanceledQueued(t *testing.T) {
	_, body := genTrace(t, 4)
	_, ts := testServer(t, server.Config{
		Shards:       1,
		QueueDepth:   4,
		MaxAttempts:  50,
		RetryBackoff: 200 * time.Millisecond,
		Chaos:        chaosAllCrash(),
	})
	v1, _ := submit(t, ts, body, "")
	waitStatus(t, ts, v1.ID, server.StatusRunning, 5*time.Second)
	v2, _ := submit(t, ts, body, "") // parked behind v1

	done := make(chan string, 1)
	go func() { done <- streamReduced(t, ts, v2.ID) }()
	time.Sleep(20 * time.Millisecond) // let the subscriber attach while queued

	resp, err := http.Post(fmt.Sprintf("%s/v1/checkruns/%d/cancel", ts.URL, v2.ID), "", nil)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	resp.Body.Close()
	if got := poll(t, ts, v2.ID, 5*time.Second); got.Status != server.StatusCanceled {
		t.Fatalf("queued run canceled to %s", got.Status)
	}
	select {
	case reduced := <-done:
		_, report := getBody(t, fmt.Sprintf("%s/v1/checkruns/%d/report", ts.URL, v2.ID))
		if reduced != report {
			t.Fatalf("canceled reduction %q differs from /report %q", reduced, report)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("canceled run's stream never terminated")
	}
}

// TestStreamStateTransitions decodes the raw SSE frames of a completed
// run and pins the event protocol: state events bracket the run,
// durable events carry contiguous ids, and violation findings carry
// their triple identity.
func TestStreamStateTransitions(t *testing.T) {
	_, body := genTrace(t, 4)
	_, ts := testServer(t, server.Config{})
	v, _ := submit(t, ts, body, "")
	poll(t, ts, v.ID, 10*time.Second)

	resp, err := http.Get(fmt.Sprintf("%s/v1/checkruns/%d/events", ts.URL, v.ID))
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	var states []server.Status
	var findings int
	err = server.DecodeSSE(resp.Body, func(event string, data []byte) error {
		var ev server.StreamEvent
		if err := json.Unmarshal(data, &ev); err != nil {
			return fmt.Errorf("bad payload %q: %w", data, err)
		}
		switch event {
		case server.EventState:
			states = append(states, ev.Status)
		case server.EventFinding:
			findings++
			if ev.Finding == nil {
				return fmt.Errorf("finding event without payload")
			}
			if ev.Finding.Code == server.CodeViolation && ev.Finding.Pattern == "" {
				return fmt.Errorf("violation finding lacks identity: %+v", ev.Finding)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) < 3 || states[0] != server.StatusSubmitted || states[len(states)-1] != server.StatusDone {
		t.Fatalf("state sequence %v, want SUBMITTED ... DONE", states)
	}
	sawRunning := false
	for _, st := range states {
		if st == server.StatusRunning {
			sawRunning = true
		}
	}
	if !sawRunning {
		t.Fatalf("no RUNNING transition in %v", states)
	}
	if findings == 0 {
		t.Fatalf("no finding events on a violating run")
	}
}

// TestMetricsEndpoint is the exposition contract: /metrics must parse
// under the validating parser, carry every Snapshot counter family, and
// agree with the JSON metrics view and the summed run reports — the
// snapshot-vs-metrics parity check.
func TestMetricsEndpoint(t *testing.T) {
	_, body := genTrace(t, 4)
	svc, ts := testServer(t, server.Config{ReportCacheSize: 8})

	var wantViolations int64
	const runs = 3
	for i := 0; i < runs; i++ {
		v, resp := submit(t, ts, body, "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		final := poll(t, ts, v.ID, 10*time.Second)
		if final.Status != server.StatusDone {
			t.Fatalf("run %d finished %s", i, final.Status)
		}
		// Cache hits never execute, so they fold nothing into the
		// analysis aggregates.
		if i == 0 {
			wantViolations = final.Violations
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	pm, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}

	m := svc.Metrics()
	// Every counter of the metrics snapshot must appear as a family and
	// agree with the JSON view.
	checks := []struct {
		sample string
		want   int64
	}{
		{`avd_server_admitted_total`, m.Admitted},
		{`avd_server_rejected_total{reason="queue_full"}`, m.RejectedQueueFull},
		{`avd_server_rejected_total{reason="body"}`, m.RejectedBody},
		{`avd_server_rejected_total{reason="draining"}`, m.RejectedDraining},
		{`avd_server_rejected_total{reason="injected"}`, m.RejectedInjected},
		{`avd_server_runs_total{status="done"}`, m.Done},
		{`avd_server_runs_total{status="failed"}`, m.Failed},
		{`avd_server_runs_total{status="canceled"}`, m.Canceled},
		{`avd_server_retries_total`, m.Retries},
		{`avd_server_worker_panics_total`, m.WorkerPanics},
		{`avd_server_report_cache_hits_total`, m.ReportCacheHits},
		{`avd_server_report_cache_misses_total`, m.ReportCacheMisses},
		{`avd_server_report_cache_entries`, m.ReportCacheEntries},
		{`avd_server_in_flight`, m.InFlight},
		{`avd_server_in_flight_max`, m.InFlightMax},
		{`avd_server_queued`, m.Queued},
		{`avd_server_queued_max`, m.QueuedMax},
		{`avd_stream_subscribers`, m.StreamSubscribers},
		{`avd_stream_dropped_frames_total`, m.StreamDroppedFrames},
		{`avd_webhook_delivered_total`, m.WebhookDelivered},
		{`avd_webhook_failed_total`, m.WebhookFailed},
		{`avd_webhook_dropped_total`, m.WebhookDropped},
		{`avd_analysis_violations_total`, m.AnalysisViolations},
		{`avd_analysis_drops_total`, m.AnalysisDrops},
		{`avd_analysis_task_panics_total`, m.AnalysisTaskPanics},
		{`avd_analysis_locations_total`, m.AnalysisLocations},
		{`avd_analysis_filter_hits_total`, m.AnalysisFilterHits},
		{`avd_analysis_filter_misses_total`, m.AnalysisFilterMisses},
		{`avd_analysis_batch_flushes_total`, m.AnalysisBatchFlushes},
		{`avd_analysis_batched_accesses_total`, m.AnalysisBatchedAccesses},
		{`avd_analysis_window_elisions_total`, m.AnalysisWindowElisions},
	}
	for _, c := range checks {
		got, ok := pm.Samples[c.sample]
		if !ok {
			t.Errorf("exposition missing sample %s", c.sample)
			continue
		}
		if int64(got) != c.want {
			t.Errorf("%s = %v, exposition disagrees with snapshot %d", c.sample, got, c.want)
		}
	}
	for i := range m.QueuedPerShard {
		if _, ok := pm.Samples[fmt.Sprintf(`avd_server_shard_queue_depth{shard="%d"}`, i)]; !ok {
			t.Errorf("no shard queue depth sample for shard %d", i)
		}
	}

	// Parity with the summed run reports: only executed runs fold in.
	if m.ReportCacheHits != runs-1 {
		t.Fatalf("expected %d cache hits, got %d", runs-1, m.ReportCacheHits)
	}
	if m.AnalysisViolations != wantViolations {
		t.Fatalf("analysis_violations %d, executed-run sum %d", m.AnalysisViolations, wantViolations)
	}

	// Histograms: one queue wait and one run duration per executed run.
	for _, h := range []string{"avd_run_queue_wait_seconds", "avd_run_duration_seconds"} {
		if typ := pm.Types[h]; typ != "histogram" {
			t.Fatalf("%s type %q, want histogram", h, typ)
		}
		if got := pm.Samples[h+"_count"]; int64(got) != 1 {
			t.Errorf("%s_count = %v, want 1 (one executed run)", h, got)
		}
	}
}

// debugKeys walks one JSON object literal and returns its immediate
// member names in encounter order.
func debugKeys(t *testing.T, raw []byte) []string {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(raw))
	tok, err := dec.Token()
	if err != nil || tok != json.Delim('{') {
		t.Fatalf("not an object: %v %v", tok, err)
	}
	var keys []string
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, tok.(string))
		var skip json.RawMessage
		if err := dec.Decode(&skip); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// TestDebugJSONSchema pins the /debug/avd document shape: top-level and
// metrics member order is deterministic (struct order, not map order),
// so dashboards and diffs see a stable schema.
func TestDebugJSONSchema(t *testing.T) {
	_, body := genTrace(t, 4)
	_, ts := testServer(t, server.Config{})
	v, _ := submit(t, ts, body, "")
	poll(t, ts, v.ID, 10*time.Second)

	_, out := getBody(t, ts.URL+"/debug/avd")
	top := debugKeys(t, []byte(out))
	if want := []string{"metrics", "runs"}; fmt.Sprint(top) != fmt.Sprint(want) {
		t.Fatalf("top-level keys %v, want %v", top, want)
	}

	var doc struct {
		Metrics json.RawMessage `json:"metrics"`
		Runs    []json.RawMessage
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	mkeys := debugKeys(t, doc.Metrics)
	want := []string{
		"admitted", "rejected_queue_full", "rejected_body", "rejected_draining",
		"rejected_injected", "retries", "worker_panics", "done", "failed",
		"canceled", "in_flight", "in_flight_max", "queued", "queued_max",
		"queued_per_shard", "report_cache_hits", "report_cache_misses",
		"report_cache_entries", "stream_subscribers", "stream_dropped_frames",
		"webhook_delivered", "webhook_failed", "webhook_dropped",
		"analysis_violations", "analysis_drops", "analysis_task_panics",
		"analysis_locations", "analysis_filter_hits", "analysis_filter_misses",
		"analysis_batch_flushes", "analysis_batched_accesses", "analysis_window_elisions",
	}
	if fmt.Sprint(mkeys) != fmt.Sprint(want) {
		t.Fatalf("metrics keys changed:\n got %v\nwant %v\n(update this pin deliberately when extending MetricsView)", mkeys, want)
	}

	// Two fetches serialize identically modulo volatile values — the
	// key sequence must repeat exactly.
	_, out2 := getBody(t, ts.URL+"/debug/avd")
	if fmt.Sprint(debugKeys(t, []byte(out2))) != fmt.Sprint(top) {
		t.Fatalf("key order not deterministic across fetches")
	}
}

// TestWebhookDelivery covers the fan-out satellite: every ERROR finding
// is POSTed to the webhook with run identity, transient 5xx responses
// are retried, and the delivered counter lands on /metrics.
func TestWebhookDelivery(t *testing.T) {
	var mu atomic.Int64
	var payloads atomic.Int64
	fail := atomic.Bool{}
	fail.Store(true)
	type seen struct {
		RunID   int64         `json:"run_id"`
		Status  server.Status `json:"status"`
		Finding server.Result `json:"finding"`
	}
	var first atomic.Pointer[seen]
	wh := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.CompareAndSwap(true, false) {
			// One transient failure: the sender must retry it.
			mu.Add(1)
			http.Error(w, "flaky", http.StatusInternalServerError)
			return
		}
		var p seen
		if err := json.NewDecoder(r.Body).Decode(&p); err == nil {
			first.CompareAndSwap(nil, &p)
		}
		payloads.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer wh.Close()

	_, body := genTrace(t, 4)
	svc, ts := testServer(t, server.Config{WebhookURL: wh.URL})
	v, _ := submit(t, ts, body, "")
	final := poll(t, ts, v.ID, 10*time.Second)
	if final.Violations == 0 {
		t.Fatalf("no violations; webhook test is vacuous")
	}

	deadline := time.Now().Add(5 * time.Second)
	for payloads.Load() < final.Violations && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := payloads.Load(); got != final.Violations {
		t.Fatalf("webhook received %d payloads, want %d", got, final.Violations)
	}
	if mu.Load() != 1 {
		t.Fatalf("flaky response was hit %d times, want exactly 1", mu.Load())
	}
	p := first.Load()
	if p == nil || p.RunID != v.ID || p.Status != server.StatusDone || p.Finding.Code != server.CodeViolation {
		t.Fatalf("webhook payload malformed: %+v", p)
	}
	if m := svc.Metrics(); m.WebhookDelivered != final.Violations || m.WebhookFailed != 0 {
		t.Fatalf("webhook counters: %+v", m)
	}
}

// TestWebhookFailure: a webhook that always 500s exhausts its attempts
// and lands in the failed counter — without stalling the run pipeline.
func TestWebhookFailure(t *testing.T) {
	wh := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer wh.Close()

	_, body := genTrace(t, 4)
	svc, ts := testServer(t, server.Config{WebhookURL: wh.URL, WebhookAttempts: 2})
	v, _ := submit(t, ts, body, "")
	final := poll(t, ts, v.ID, 10*time.Second)
	if final.Status != server.StatusDone {
		t.Fatalf("run finished %s despite webhook outage", final.Status)
	}

	deadline := time.Now().Add(5 * time.Second)
	for svc.Metrics().WebhookFailed < final.Violations && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m := svc.Metrics(); m.WebhookFailed != final.Violations || m.WebhookDelivered != 0 {
		t.Fatalf("webhook failure counters: %+v", m)
	}
}

// TestValidateWebhookURL pins the flag validator.
func TestValidateWebhookURL(t *testing.T) {
	if err := server.ValidateWebhookURL(""); err != nil {
		t.Fatalf("empty URL must be allowed (disabled): %v", err)
	}
	if err := server.ValidateWebhookURL("http://example.com/hook"); err != nil {
		t.Fatalf("good URL rejected: %v", err)
	}
	for _, bad := range []string{"ftp://example.com", "://nope", "localhost:8080"} {
		if err := server.ValidateWebhookURL(bad); err == nil {
			t.Errorf("URL %q accepted", bad)
		}
	}
}

// multipartBody builds a trace+lint multipart upload.
func multipartBody(t *testing.T, traceBody []byte, lint any) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("trace", "trace.json")
	if err != nil {
		t.Fatal(err)
	}
	fw.Write(traceBody)
	if lint != nil {
		lw, err := mw.CreateFormFile("lint", "lint.json")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewEncoder(lw).Encode(lint); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	return mw.FormDataContentType(), buf.Bytes()
}

// TestMultipartLintUpload covers the staticavd satellite: a lint-JSON
// part uploaded next to the trace annotates the dynamic findings that
// confirm static candidates, and such runs bypass the report cache.
func TestMultipartLintUpload(t *testing.T) {
	tr, body := genTrace(t, 4)
	rep, err := avd.ReplayTrace(tr, avd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("seed-4 trace has no violations")
	}
	kind := rep.Violations[0].Kind()
	lint := []string{
		"x.go:10:2: unserializable interleaving (pattern " + kind + ") on shared counter",
		"y.go:4:1: candidate for a pattern that never fires Z-Z-Z",
	}

	svc, ts := testServer(t, server.Config{ReportCacheSize: 8})
	ct, mp := multipartBody(t, body, lint)
	resp, err := http.Post(ts.URL+"/v1/checkruns", ct, bytes.NewReader(mp))
	if err != nil {
		t.Fatal(err)
	}
	var v server.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("multipart submit: %d", resp.StatusCode)
	}
	if v.StaticCandidates != len(lint) {
		t.Fatalf("static_candidates %d, want %d", v.StaticCandidates, len(lint))
	}

	final := poll(t, ts, v.ID, 10*time.Second)
	if final.Status != server.StatusDone {
		t.Fatalf("lint run finished %s", final.Status)
	}
	confirmed := 0
	for _, res := range final.Results {
		if res.Code != server.CodeViolation {
			continue
		}
		if strings.Contains(res.Content, "confirms static candidate") {
			confirmed++
			if !strings.Contains(res.Content, "shared counter") {
				t.Fatalf("annotation lost the candidate message: %q", res.Content)
			}
			if strings.Contains(res.Content, "Z-Z-Z") {
				t.Fatalf("non-matching candidate annotated: %q", res.Content)
			}
		}
	}
	if confirmed == 0 {
		t.Fatalf("no finding confirmed the %s candidate: %+v", kind, final.Results)
	}

	// Lint-carrying runs must not be served from (or populate) the
	// report cache: annotations are per-upload, the cache is per-trace.
	ct2, mp2 := multipartBody(t, body, lint)
	resp2, err := http.Post(ts.URL+"/v1/checkruns", ct2, bytes.NewReader(mp2))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if m := svc.Metrics(); m.ReportCacheHits != 0 {
		t.Fatalf("lint run hit the report cache: %+v", m)
	}

	// The canonical report stays pristine — annotations live only in
	// the findings.
	_, report := getBody(t, fmt.Sprintf("%s/v1/checkruns/%d/report", ts.URL, v.ID))
	if strings.Contains(report, "confirms static candidate") {
		t.Fatalf("lint annotation leaked into the canonical report")
	}

	// A multipart upload without the trace part is rejected cleanly.
	ct3, mp3 := multipartBody(t, nil, lint)
	mp3 = bytes.Replace(mp3, []byte(`name="trace"`), []byte(`name="other"`), 1)
	resp3, err := http.Post(ts.URL+"/v1/checkruns", ct3, bytes.NewReader(mp3))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("traceless multipart: %d, want 400", resp3.StatusCode)
	}
}

// TestSpansEndpoint pins the run-lifecycle span export: raw spans carry
// ordered timestamps, and the rendered form is a balanced Perfetto
// trace with the server process and per-shard tracks.
func TestSpansEndpoint(t *testing.T) {
	_, body := genTrace(t, 4)
	_, ts := testServer(t, server.Config{})
	v, _ := submit(t, ts, body, "")
	poll(t, ts, v.ID, 10*time.Second)

	_, raw := getBody(t, ts.URL+"/debug/avd/spans?raw=1")
	var spans []trace.RunSpan
	if err := json.Unmarshal([]byte(raw), &spans); err != nil {
		t.Fatalf("raw spans: %v", err)
	}
	if len(spans) != 1 {
		t.Fatalf("%d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.ID != v.ID || sp.Status != string(server.StatusDone) {
		t.Fatalf("span identity: %+v", sp)
	}
	if !(sp.Created > 0 && sp.Created <= sp.Started && sp.Started <= sp.Finished) {
		t.Fatalf("span timestamps not ordered: %+v", sp)
	}

	code, rendered := getBody(t, ts.URL+"/debug/avd/spans")
	if code != http.StatusOK {
		t.Fatalf("spans status %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Pid  int32  `json:"pid"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(rendered), &doc); err != nil {
		t.Fatalf("rendered spans: %v", err)
	}
	var b, e, ab, ae, inst int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B":
			b++
		case "E":
			e++
		case "b":
			ab++
		case "e":
			ae++
		case "i":
			inst++
		}
	}
	if b != e || ab != ae {
		t.Fatalf("unbalanced spans: B=%d E=%d b=%d e=%d", b, e, ab, ae)
	}
	if b != 1 || ab != 1 || inst != 1 {
		t.Fatalf("span counts: B=%d b=%d i=%d, want 1 each for one DONE run", b, ab, inst)
	}
	if doc.OtherData["terminal"].(float64) != 1 {
		t.Fatalf("otherData: %+v", doc.OtherData)
	}
}
